.PHONY: verify build test race bench bench-host

# verify is the tier-1 gate: vet + build + full tests + short-mode race pass
# over the concurrency-heavy packages (see scripts/verify.sh).
verify:
	sh scripts/verify.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race -short ./internal/simnet/ ./internal/core/ ./internal/spmd/

# bench regenerates every experiment quickly; see EXPERIMENTS.md for the
# full sweeps.
bench:
	go run ./cmd/fompi-bench -exp all

# bench-host regenerates BENCH_host.json: the simulator's own wall-clock
# ns/op and allocs/op per hot-path scenario, compared against the recorded
# pre-optimization baseline (scripts/bench_host_baseline.json).
bench-host:
	sh scripts/bench_host.sh
