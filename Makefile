.PHONY: verify build test race bench

# verify is the tier-1 gate: vet + build + full tests + short-mode race pass
# over the concurrency-heavy packages (see scripts/verify.sh).
verify:
	sh scripts/verify.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race -short ./internal/simnet/ ./internal/core/ ./internal/spmd/

# bench regenerates every experiment quickly; see EXPERIMENTS.md for the
# full sweeps.
bench:
	go run ./cmd/fompi-bench -exp all
