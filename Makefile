.PHONY: verify build test race bench bench-host bench-host-quick bench-check

# verify is the tier-1 gate: vet + build + full tests + short-mode race pass
# over the concurrency-heavy packages (see scripts/verify.sh).
verify:
	sh scripts/verify.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race -short ./internal/simnet/ ./internal/core/ ./internal/spmd/

# bench regenerates every experiment quickly; see EXPERIMENTS.md for the
# full sweeps.
bench:
	go run ./cmd/fompi-bench -exp all

# bench-host regenerates BENCH_host.json: the simulator's own wall-clock
# ns/op and allocs/op per hot-path scenario, compared against the recorded
# pre-optimization baseline (scripts/bench_host_baseline.json).
bench-host:
	sh scripts/bench_host.sh

# bench-check is the CI perf-regression guard: quick host-bench vs the
# committed BENCH_host.json allocs/op ceilings (wall-clock advisory).
bench-check:
	sh scripts/bench_check.sh

# bench-host-quick is the verify-wired smoke: one iteration over a small
# scenario subset into a throwaway file, asserting the perf harness still
# runs and emits well-formed JSON on every verify.
# The && chain matters: the recipe must fail when the bench run or its JSON
# check fails, not report the trailing rm's status. The throwaway report
# lives under scripts/ — CI runners promise no writable $TMPDIR.
bench-host-quick:
	@OUT="scripts/.bench_quick.$$$$.json"; \
	trap 'rm -f "$$OUT"' EXIT; \
	ITERS=1 OUT="$$OUT" sh scripts/bench_host.sh -only 'put_sweep|get_sweep|fence_p64|lockall_p64|coll_p256|stencil_p16' && \
	rm -f "$$OUT"
