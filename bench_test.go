// Benchmarks regenerating the paper's evaluation artifacts: one testing.B
// per table and figure, each running the corresponding experiment from
// internal/bench at a reduced scale and reporting the figure's headline
// numbers as custom metrics (virtual-time results are deterministic; b.N
// repetition exists for harness conformance, wall-clock ns/op measures the
// simulator itself). Run `go run ./cmd/fompi-bench -exp all -full` for the
// full sweeps that EXPERIMENTS.md records.
package fompi_test

import (
	"testing"

	"fompi/internal/bench"
)

// benchCfg keeps every experiment fast enough for `go test -bench`.
func benchCfg() bench.Config {
	return bench.Config{Reps: 11, MaxP: 16, Inserts: 256, Seed: 7}
}

// report emits a Y value of one series at one X as a named metric.
func report(b *testing.B, t *bench.Table, x float64, series, metric string) {
	b.Helper()
	if y, ok := t.Get(x, series); ok {
		b.ReportMetric(y, metric)
	}
}

func BenchmarkFig4aLatencyInterPut(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Fig4a(benchCfg())
	}
	report(b, t, 8, "foMPI", "foMPI_8B_us")
	report(b, t, 8, "CrayUPC", "UPC_8B_us")
	report(b, t, 8, "CrayMPI1", "MPI1_8B_us")
}

func BenchmarkFig4bLatencyInterGet(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Fig4b(benchCfg())
	}
	report(b, t, 8, "foMPI", "foMPI_8B_us")
	report(b, t, 8, "CrayUPC", "UPC_8B_us")
}

func BenchmarkFig4cLatencyIntra(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Fig4c(benchCfg())
	}
	report(b, t, 8, "foMPI", "foMPI_8B_us")
	report(b, t, 8, "CrayMPI1", "MPI1_8B_us")
}

func BenchmarkFig5aOverlap(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Fig5a(benchCfg())
	}
	report(b, t, 64<<10, "foMPI", "foMPI_64KiB_pct")
	report(b, t, 64<<10, "CrayMPI22", "MPI22_64KiB_pct")
}

func BenchmarkFig5bMessageRateInter(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Fig5b(benchCfg())
	}
	report(b, t, 8, "foMPI", "foMPI_Mmsgs")
	report(b, t, 8, "CrayMPI1", "MPI1_Mmsgs")
}

func BenchmarkFig5cMessageRateIntra(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Fig5c(benchCfg())
	}
	report(b, t, 8, "foMPI", "foMPI_Mmsgs")
}

func BenchmarkFig6aAtomics(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Fig6a(benchCfg())
	}
	report(b, t, 1, "foMPI-SUM", "SUM_1el_us")
	report(b, t, 1, "foMPI-CAS", "CAS_us")
	report(b, t, 1, "UPC-aadd", "aadd_us")
}

func BenchmarkFig6bGlobalSync(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Fig6b(benchCfg())
	}
	report(b, t, 16, "foMPI-fence", "fence_p16_us")
	report(b, t, 16, "CrayMPI22-fence", "crayfence_p16_us")
}

func BenchmarkFig6cPSCWRing(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Fig6c(benchCfg())
	}
	report(b, t, 16, "foMPI", "pscw_p16_us")
	report(b, t, 16, "CrayMPI22", "craypscw_p16_us")
}

func BenchmarkFig7aHashtable(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Fig7a(benchCfg())
	}
	report(b, t, 16, "foMPI", "foMPI_p16_Mops")
	report(b, t, 16, "CrayMPI1", "MPI1_p16_Mops")
}

func BenchmarkFig7bDSDE(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Fig7b(benchCfg())
	}
	report(b, t, 16, "RMA-foMPI", "RMA_p16_us")
	report(b, t, 16, "Alltoall", "alltoall_p16_us")
}

func BenchmarkFig7cFFT(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Fig7c(benchCfg())
	}
	report(b, t, 16, "foMPI", "foMPI_p16_gflops")
	report(b, t, 16, "CrayMPI1", "MPI1_p16_gflops")
}

func BenchmarkFig8MILC(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Fig8(benchCfg())
	}
	report(b, t, 16, "foMPI", "foMPI_p16_ms")
	report(b, t, 16, "CrayMPI1", "MPI1_p16_ms")
}

func BenchmarkModelsTable(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Models(benchCfg())
	}
	// P_put intercept (paper: 1.0 µs) and slope (paper: 0.16 ns/B).
	report(b, t, 0, "intercept_or_const_us", "Pput_intercept_us")
	report(b, t, 0, "slope_ns_per_B", "Pput_slope_nsB")
}

func BenchmarkInstrTable(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Instr(benchCfg())
	}
	report(b, t, 1, "soft_steps", "put_steps")
	report(b, t, 3, "soft_steps", "flush_steps")
}

func BenchmarkMemoryTable(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Memory(benchCfg())
	}
	report(b, t, 16, "allocate", "allocate_p16_B")
	report(b, t, 16, "create", "create_p16_B")
}
