#!/bin/sh
# verify.sh — the repository's tier-1 gate plus the race pass. Pure POSIX sh;
# all temporaries live under the repo (CI runners promise no writable TMPDIR
# layout), and every step's failure fails the gate.
#
#   gofmt -l                     formatting is clean
#   go vet ./...                 static checks
#   go build ./...               everything compiles
#   go test ./...                all package suites (includes the transport
#                                conformance suite, which spawns the
#                                multi-process, inter-node, and hybrid
#                                backends' worker processes)
#   go test -race -short <hot>   concurrency check over the packages whose
#                                goroutines share fabric memory
#   examples smoke               build and run every example; quickstart and
#                                stencil must produce identical deterministic
#                                output on the in-process, multi-process,
#                                inter-node (loopback TCP), and hybrid
#                                (shm + TCP) backends
#   make bench-host-quick        one-iteration host-perf smoke; asserts the
#                                emitted JSON is well-formed
#
# Run via `make verify` or directly. Exits nonzero on the first failure.
set -eu

cd "$(dirname "$0")/.."

TMP="scripts/.verify.tmp.$$"
trap 'rm -rf "$TMP"' EXIT INT TERM
mkdir -p "$TMP"

echo "== gofmt"
UNFORMATTED="$(gofmt -l .)"
if [ -n "$UNFORMATTED" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$UNFORMATTED" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race -short (simnet, core, spmd, netrun, rankio)"
go test -race -short ./internal/simnet/ ./internal/core/ ./internal/spmd/ ./internal/netrun/ ./internal/rankio/

echo "== examples smoke (build + run, cross-backend diff)"
for ex in quickstart stencil hashtable dsde; do
	go build -o "$TMP/$ex" "./examples/$ex"
done
go build -o "$TMP/fompi-run" ./cmd/fompi-run

# compare_backends CMDLINE... : run once per backend (proc, mp, net, hybrid)
# and diff against the in-process output. Output lines are sorted (rank
# prints interleave arbitrarily); the figures themselves must be
# bit-identical, in one pass — the stamp-merge reordering that once needed a
# retry here is fixed at the source (the stamp chain lock), and the
# transporttest determinism loop pins it.
compare_backends() {
	# Capture before sorting: a pipeline would report sort's status and
	# let a crashing example (identical empty output on all backends)
	# slip through the gate.
	"$@" -backend=proc >"$TMP/raw.proc"
	sort "$TMP/raw.proc" >"$TMP/cmp.proc"
	for cb in mp net hybrid; do
		"$@" -backend="$cb" >"$TMP/raw.$cb"
		sort "$TMP/raw.$cb" >"$TMP/cmp.$cb"
		cmp -s "$TMP/cmp.proc" "$TMP/cmp.$cb" || {
			echo "examples smoke: $cb backend disagrees for: $*" >&2
			diff "$TMP/cmp.proc" "$TMP/cmp.$cb" >&2 || true
			return 1
		}
	done
}

compare_backends "$TMP/quickstart"
compare_backends "$TMP/stencil" -check -ppn 8
# The external launcher must drive the same world (quickstart is 4 ranks,
# 2 per node) on both cross-process backends. Rank output arrives tagged
# "[rank N] " (the launcher's default); strip the tag before comparing.
# cmp.proc still holds the stencil comparison, so re-derive the quickstart
# reference explicitly.
"$TMP/quickstart" -backend=proc >"$TMP/quickstart.raw"
sort "$TMP/quickstart.raw" >"$TMP/quickstart.ref"
for lb in mp net hybrid; do
	"$TMP/fompi-run" -np 4 -ppn 2 -backend "$lb" "$TMP/quickstart" >"$TMP/launcher.raw"
	sed 's/^\[rank [0-9]*\] //' "$TMP/launcher.raw" | sort >"$TMP/launcher.out"
	cmp "$TMP/quickstart.ref" "$TMP/launcher.out" || {
		echo "examples smoke: fompi-run -backend $lb output diverges from in-process quickstart" >&2
		exit 1
	}
done
# The remaining examples exercise in-process-only layers (MPI-1 mailboxes):
# run them to completion as drift guards.
"$TMP/hashtable" >/dev/null
"$TMP/dsde" >/dev/null
echo "examples smoke: OK"

echo "== bench-host smoke (make bench-host-quick: 1 iteration, JSON well-formed)"
make bench-host-quick

echo "verify: OK"
