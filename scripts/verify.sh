#!/bin/sh
# verify.sh — the repository's tier-1 gate plus the race pass.
#
#   go vet ./...                 static checks
#   go build ./...               everything compiles
#   go test ./...                all package suites
#   go test -race -short <hot>   concurrency check over the packages whose
#                                goroutines share fabric memory
#   make bench-host-quick        one-iteration host-perf smoke; asserts the
#                                emitted JSON is well-formed
#
# Run via `make verify` or directly. Exits nonzero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race -short (simnet, core, spmd)"
go test -race -short ./internal/simnet/ ./internal/core/ ./internal/spmd/

echo "== bench-host smoke (make bench-host-quick: 1 iteration, JSON well-formed)"
make bench-host-quick

echo "verify: OK"
