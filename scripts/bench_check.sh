#!/bin/sh
# bench_check.sh — the CI perf-regression guard. Runs the quick host-bench
# (one iteration over the full scenario set) and compares it against the
# committed BENCH_host.json record:
#
#   - allocs/op must stay under 3x the recorded value (+1 absolute slack for
#     the near-zero-allocation hot paths); a breach fails the script.
#   - wall-clock ns/op ratios are printed but never fail: shared CI runners
#     make wall time advisory.
#
# The fresh report is left at $OUT (default bench_current.json) for the
# workflow to upload as an artifact. Pure POSIX sh; temporaries live under
# the repo, not $TMPDIR. Malformed bench JSON — recorded or fresh — exits
# nonzero via hostperf -check/-guard.
#
#   sh scripts/bench_check.sh
#   OUT=out.json ITERS=2 FACTOR=4 sh scripts/bench_check.sh
set -eu

cd "$(dirname "$0")/.."

OUT="${OUT:-bench_current.json}"
ITERS="${ITERS:-1}"
FACTOR="${FACTOR:-3}"
RECORD="${RECORD:-BENCH_host.json}"

BIN="scripts/.hostperf.bin.$$"
trap 'rm -f "$BIN"' EXIT INT TERM

# Build first, then run the binary: a `go run` compile immediately before
# the timed loops throttles the first scenarios on CPU-quota-limited hosts.
go build -o "$BIN" ./cmd/hostperf

"./$BIN" -iters "$ITERS" -o "$OUT"
"./$BIN" -check "$OUT"
"./$BIN" -guard "$RECORD" -against "$OUT" -allocs-factor "$FACTOR"
