#!/bin/sh
# smoke_net.sh — the inter-node (loopback TCP) backend's example smoke: the
# deterministic examples must produce bit-identical output on the in-process
# and net backends, directly and through the fompi-run launcher. A focused
# subset of scripts/verify.sh's three-way diff, for the CI job that
# exercises netrun in isolation. Pure POSIX sh; temporaries live under the
# repo (CI runners promise no writable TMPDIR layout).
set -eu

cd "$(dirname "$0")/.."

TMP="scripts/.smoke_net.tmp.$$"
trap 'rm -rf "$TMP"' EXIT INT TERM
mkdir -p "$TMP"

echo "== build (quickstart, stencil, fompi-run)"
go build -o "$TMP/quickstart" ./examples/quickstart
go build -o "$TMP/stencil" ./examples/stencil
go build -o "$TMP/fompi-run" ./cmd/fompi-run

# diff_net NAME CMDLINE... : one proc run and one net run, sorted (rank
# prints interleave arbitrarily), must match bit for bit. One retry absorbs
# the rare run-to-run stamp-merge jitter host scheduling can produce.
diff_net() {
	name=$1
	shift
	attempt=1
	while :; do
		"$@" -backend=proc >"$TMP/raw.proc"
		"$@" -backend=net >"$TMP/raw.net"
		sort "$TMP/raw.proc" >"$TMP/cmp.proc"
		sort "$TMP/raw.net" >"$TMP/cmp.net"
		if cmp -s "$TMP/cmp.proc" "$TMP/cmp.net"; then
			echo "smoke_net: $name OK"
			return 0
		fi
		if [ "$attempt" -ge 2 ]; then
			echo "smoke_net: $name diverges between proc and net:" >&2
			diff "$TMP/cmp.proc" "$TMP/cmp.net" >&2 || true
			return 1
		fi
		attempt=$((attempt + 1))
	done
}

echo "== cross-backend diff (proc vs net)"
diff_net quickstart "$TMP/quickstart"
diff_net "stencil -check" "$TMP/stencil" -check -ppn 8

echo "== fompi-run -backend net launcher path"
"$TMP/quickstart" -backend=proc | sort >"$TMP/quickstart.ref"
"$TMP/fompi-run" -np 4 -ppn 2 -backend net "$TMP/quickstart" >"$TMP/launcher.raw"
sed 's/^\[rank [0-9]*\] //' "$TMP/launcher.raw" | sort >"$TMP/launcher.out"
cmp "$TMP/quickstart.ref" "$TMP/launcher.out" || {
	echo "smoke_net: fompi-run -backend net output diverges from in-process quickstart" >&2
	exit 1
}
echo "smoke_net: launcher OK"

echo "smoke_net: OK"
