#!/bin/sh
# smoke_net.sh [backend] — a cross-process backend's example smoke: the
# deterministic examples must produce bit-identical output on the in-process
# backend and the backend under test (default net, the inter-node loopback
# TCP transport; pass hybrid for the shm+TCP topology-aware transport),
# directly and through the fompi-run launcher. A focused subset of
# scripts/verify.sh's four-way diff, for the CI jobs that exercise one
# backend in isolation. The diff is single-pass: the stamp-merge race that
# once needed a retry here is fixed at the source (the stamp chain lock).
# Pure POSIX sh; temporaries live under the repo (CI runners promise no
# writable TMPDIR layout).
set -eu

cd "$(dirname "$0")/.."

BE="${1:-net}"

TMP="scripts/.smoke_net.tmp.$$"
trap 'rm -rf "$TMP"' EXIT INT TERM
mkdir -p "$TMP"

echo "== build (quickstart, stencil, fompi-run)"
go build -o "$TMP/quickstart" ./examples/quickstart
go build -o "$TMP/stencil" ./examples/stencil
go build -o "$TMP/fompi-run" ./cmd/fompi-run

# diff_backend NAME CMDLINE... : one proc run and one $BE run, sorted (rank
# prints interleave arbitrarily), must match bit for bit.
diff_backend() {
	name=$1
	shift
	"$@" -backend=proc >"$TMP/raw.proc"
	"$@" -backend="$BE" >"$TMP/raw.be"
	sort "$TMP/raw.proc" >"$TMP/cmp.proc"
	sort "$TMP/raw.be" >"$TMP/cmp.be"
	cmp -s "$TMP/cmp.proc" "$TMP/cmp.be" || {
		echo "smoke_net: $name diverges between proc and $BE:" >&2
		diff "$TMP/cmp.proc" "$TMP/cmp.be" >&2 || true
		return 1
	}
	echo "smoke_net: $name OK"
}

echo "== cross-backend diff (proc vs $BE)"
diff_backend quickstart "$TMP/quickstart"
diff_backend "stencil -check" "$TMP/stencil" -check -ppn 8

echo "== fompi-run -backend $BE launcher path"
"$TMP/quickstart" -backend=proc | sort >"$TMP/quickstart.ref"
"$TMP/fompi-run" -np 4 -ppn 2 -backend "$BE" "$TMP/quickstart" >"$TMP/launcher.raw"
sed 's/^\[rank [0-9]*\] //' "$TMP/launcher.raw" | sort >"$TMP/launcher.out"
cmp "$TMP/quickstart.ref" "$TMP/launcher.out" || {
	echo "smoke_net: fompi-run -backend $BE output diverges from in-process quickstart" >&2
	exit 1
}
echo "smoke_net: launcher OK"

echo "smoke_net: OK"
