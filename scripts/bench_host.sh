#!/bin/sh
# bench_host.sh — regenerate BENCH_host.json, the simulator's host-side
# performance record (wall ns/op and allocs/op per hot-path scenario; see
# internal/hostperf). When scripts/bench_host_baseline.json exists — the
# pre-optimization numbers recorded by PR 2 — the report embeds it and
# computes per-scenario speedups.
#
#   sh scripts/bench_host.sh                 # full run, 5 iterations
#   ITERS=1 OUT=/tmp/b.json sh scripts/bench_host.sh -only 'put_sweep|fence_p64'
#
# Extra arguments pass through to cmd/hostperf.
set -eu

cd "$(dirname "$0")/.."

# Default matches the iteration count the committed BENCH_host.json and
# the recorded baseline were generated with.
ITERS="${ITERS:-5}"
OUT="${OUT:-BENCH_host.json}"
BASELINE="scripts/bench_host_baseline.json"

# Build first, then run the binary: on CPU-quota-limited hosts a `go run`
# compile immediately before the timed loops throttles the first scenarios.
# The binary lives under the repo: CI runners promise no writable $TMPDIR.
BIN="scripts/.hostperf.bin.$$"
trap 'rm -f "$BIN"' EXIT INT TERM
go build -o "$BIN" ./cmd/hostperf

if [ -f "$BASELINE" ]; then
	"./$BIN" -iters "$ITERS" -o "$OUT" -baseline "$BASELINE" "$@"
else
	"./$BIN" -iters "$ITERS" -o "$OUT" "$@"
fi

# The report must parse back as well-formed JSON with at least one result;
# a malformed report exits nonzero here, failing the caller.
"./$BIN" -check "$OUT"
