#!/bin/sh
# bench_wire.sh — the wire-backend message-rate benchmark and CI gate.
# Runs the transport-latency scenarios (x_msgrate, x_pingpong) twice on a
# cross-process backend: once with FOMPI_NET_WINDOW=1 (every message pays a
# full round trip — the pre-pipelining blocking behavior) and once at the
# default window (the pipelined engine in internal/netrun/session.go). The
# reports land at $OUT_W1 / $OUT for the workflow to upload as artifacts.
#
# Gates:
#   - x_msgrate at the default window must be at least $MIN_SPEEDUP times
#     faster (msgs/sec) than window=1, or the script fails: this is the
#     acceptance check that pipelining actually overlaps round trips.
#   - allocs/op are guarded against scripts/bench_wire_baseline.json via
#     hostperf -guard (factor $FACTOR); wall-clock ratios print advisory
#     only, as in bench_check.sh — shared CI runners make wall time noisy.
#
#   sh scripts/bench_wire.sh            # net backend
#   sh scripts/bench_wire.sh hybrid
#   ITERS=3 MIN_SPEEDUP=2 sh scripts/bench_wire.sh
#
# Pure POSIX sh; temporaries live under the repo, not $TMPDIR.
set -eu

cd "$(dirname "$0")/.."

BACKEND="${1:-net}"
ITERS="${ITERS:-1}"
OUT="${OUT:-bench_wire.json}"
OUT_W1="${OUT_W1:-bench_wire_w1.json}"
BASELINE="${BASELINE:-scripts/bench_wire_baseline.json}"
FACTOR="${FACTOR:-3}"
MIN_SPEEDUP="${MIN_SPEEDUP:-3}"

BIN="scripts/.hostperf.bin.$$"
trap 'rm -f "$BIN"' EXIT INT TERM

# Build first, then run the binary: a `go run` compile immediately before
# the timed loops throttles the first scenarios on CPU-quota-limited hosts,
# and the cross-process scenarios re-execute argv[0] as the worker ranks,
# which must be a real file on disk.
go build -o "$BIN" ./cmd/hostperf

FOMPI_NET_WINDOW=1 "./$BIN" -backend "$BACKEND" -iters "$ITERS" \
	-only '^x_msgrate$|^x_pingpong$' -o "$OUT_W1"
"./$BIN" -backend "$BACKEND" -iters "$ITERS" \
	-only '^x_msgrate$|^x_pingpong$' -o "$OUT"
"./$BIN" -check "$OUT_W1"
"./$BIN" -check "$OUT"

# ns_per_op of one scenario from a report. Results precede the embedded
# baseline in the JSON and fields keep struct order, so the first
# "ns_per_op" after the matching "name" is the fresh measurement.
ns_of() {
	awk -v want="\"$2\"," '
		$1 == "\"name\":" && $2 == want { found = 1; next }
		found && $1 == "\"ns_per_op\":" { sub(/,$/, "", $2); print $2; exit }
	' "$1"
}

W1=$(ns_of "$OUT_W1" x_msgrate)
NOW=$(ns_of "$OUT" x_msgrate)
if [ -z "$W1" ] || [ -z "$NOW" ]; then
	echo "bench_wire: x_msgrate missing from a report" >&2
	exit 1
fi

if ! awk -v a="$W1" -v b="$NOW" -v min="$MIN_SPEEDUP" 'BEGIN {
	r = a / b
	printf "bench_wire: x_msgrate %.0f -> %.0f ns/msg, pipelining speedup x%.2f (gate >= x%g)\n", a, b, r, min
	exit !(r >= min)
}'; then
	echo "bench_wire: FAIL — windowed engine under ${MIN_SPEEDUP}x the window=1 message rate" >&2
	exit 1
fi

if [ -f "$BASELINE" ]; then
	"./$BIN" -guard "$BASELINE" -against "$OUT" -allocs-factor "$FACTOR"
fi
