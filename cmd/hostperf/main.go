// Command hostperf measures the simulator's host-side performance — wall
// nanoseconds and heap allocations per simulated operation — over the
// scenarios in internal/hostperf, and emits a machine-readable JSON report.
// scripts/bench_host.sh wraps it to regenerate BENCH_host.json, embedding
// the recorded pre-optimization baseline for before/after comparison.
//
// Usage:
//
//	hostperf -iters 3 -o BENCH_host.json
//	hostperf -iters 1 -only 'put_sweep|fence' -o -     # smoke, stdout
//	hostperf -check BENCH_host.json                     # validate only
//	hostperf -guard BENCH_host.json -against fresh.json # CI perf guard
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"fompi/internal/hostperf"
	"fompi/internal/netrun"
	"fompi/internal/spmd"
	"fompi/internal/telemetry"
)

// Schema identifies the report layout; bump on incompatible change.
const Schema = "fompi-hostperf/v1"

type result struct {
	Name        string  `json:"name"`
	Unit        string  `json:"unit"`
	OpsPerIter  int64   `json:"ops_per_iter"`
	Iters       int     `json:"iters"`
	WallMs      float64 `json:"wall_ms"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Telemetry embedded from the world aggregate of a cross-process run
	// (scripts/bench_wire.sh keys on name/ns_per_op order, so these stay
	// after ns_per_op). Window quantiles are bucket upper bounds.
	WinP50      uint64 `json:"win_p50,omitempty"`
	WinP99      uint64 `json:"win_p99,omitempty"`
	Retransmits uint64 `json:"retransmits,omitempty"`
}

type report struct {
	Schema     string             `json:"schema"`
	GoVersion  string             `json:"go"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"numcpu"`
	Results    []result           `json:"results"`
	Baseline   []result           `json:"baseline,omitempty"`
	Speedup    map[string]float64 `json:"speedup_vs_baseline,omitempty"`
}

func measure(sc hostperf.Scenario, iters int) result {
	if iters > 1 {
		sc.Run() // warm pools and the scheduler before timing
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		sc.Run()
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	ops := sc.Ops * int64(iters)
	return result{
		Name:        sc.Name,
		Unit:        sc.Unit,
		OpsPerIter:  sc.Ops,
		Iters:       iters,
		WallMs:      float64(wall.Nanoseconds()) / 1e6,
		NsPerOp:     float64(wall.Nanoseconds()) / float64(ops),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(ops),
	}
}

// load parses a report file, tolerating either a full report or a bare
// baseline written by an earlier run.
func load(path string) (report, error) {
	var r report
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func check(path string) error {
	r, err := load(path)
	if err != nil {
		return err
	}
	if r.Schema != Schema {
		return fmt.Errorf("%s: schema %q, want %q", path, r.Schema, Schema)
	}
	if len(r.Results) == 0 {
		return fmt.Errorf("%s: no results", path)
	}
	for _, res := range r.Results {
		if res.Name == "" || res.NsPerOp <= 0 {
			return fmt.Errorf("%s: malformed result %+v", path, res)
		}
	}
	return nil
}

// guard compares a fresh report against the committed record and fails on
// allocation regressions beyond factor. Allocations are deterministic enough
// to gate on; wall-clock on shared CI runners is not, so ns/op ratios are
// reported but never fail the guard (scripts/bench_check.sh wires this into
// the CI workflow).
func guard(recordPath, currentPath string, factor float64) error {
	if err := check(recordPath); err != nil {
		return err
	}
	if err := check(currentPath); err != nil {
		return err
	}
	rec, err := load(recordPath)
	if err != nil {
		return err
	}
	cur, err := load(currentPath)
	if err != nil {
		return err
	}
	byName := map[string]result{}
	for _, r := range cur.Results {
		byName[r.Name] = r
	}
	var failures []string
	for _, b := range rec.Results {
		c, ok := byName[b.Name]
		if !ok {
			// The current run may be a scenario subset (the quick smoke);
			// only scenarios it actually ran are compared.
			continue
		}
		// The +1 absolute slack keeps near-zero baselines (the 0-alloc hot
		// paths) from failing on sub-allocation noise while still catching
		// any real per-op allocation introduced there.
		ceiling := b.AllocsPerOp*factor + 1
		verdict := "ok"
		if c.AllocsPerOp > ceiling {
			verdict = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %.2f allocs/%s exceeds ceiling %.2f (recorded %.2f × factor %g + 1)",
				b.Name, c.AllocsPerOp, b.Unit, ceiling, b.AllocsPerOp, factor))
		}
		fmt.Printf("%-16s allocs %8.2f -> %8.2f (ceiling %8.2f) %-4s  wall x%.2f (advisory)\n",
			b.Name, b.AllocsPerOp, c.AllocsPerOp, ceiling, verdict, c.NsPerOp/b.NsPerOp)
	}
	if len(failures) > 0 {
		return fmt.Errorf("allocation regressions:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func main() {
	iters := flag.Int("iters", 3, "timed iterations per scenario")
	out := flag.String("o", "BENCH_host.json", "output path ('-' for stdout)")
	baseline := flag.String("baseline", "", "baseline report to embed and compare against")
	only := flag.String("only", "", "regexp selecting scenario names")
	checkPath := flag.String("check", "", "validate a report file and exit")
	guardPath := flag.String("guard", "", "committed record to guard against (with -against)")
	against := flag.String("against", "", "fresh report compared to -guard's record")
	factor := flag.Float64("allocs-factor", 3, "allowed allocs/op growth factor for -guard")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the timed runs")
	backend := flag.String("backend", "proc",
		"transport backend to measure: proc runs the full in-process suite; mp or net run the cross-process transport-latency subset (advisory — never guarded). Cross-process runs re-execute this binary as the worker ranks, so it must be a real file on disk")
	flag.Parse()

	if *checkPath != "" {
		if err := check(*checkPath); err != nil {
			fmt.Fprintln(os.Stderr, "hostperf:", err)
			os.Exit(1)
		}
		fmt.Printf("hostperf: %s well-formed\n", *checkPath)
		return
	}
	if *guardPath != "" || *against != "" {
		if *guardPath == "" || *against == "" {
			fmt.Fprintln(os.Stderr, "hostperf: -guard and -against must be given together")
			os.Exit(2)
		}
		if err := guard(*guardPath, *against, *factor); err != nil {
			fmt.Fprintln(os.Stderr, "hostperf:", err)
			os.Exit(1)
		}
		fmt.Println("hostperf: bench guard passed")
		return
	}

	var filter *regexp.Regexp
	if *only != "" {
		filter = regexp.MustCompile(*only)
	}
	rep := report{
		Schema: Schema, GoVersion: runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hostperf:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "hostperf:", err)
			os.Exit(1)
		}
	}
	scenarios := hostperf.Scenarios()
	cross := *backend != "proc" && *backend != ""
	if cross {
		// Cross-process runs carry telemetry: the env flag makes the
		// re-executed worker ranks inherit it, and the coordinator in this
		// process aggregates their STATS frames for the report below.
		os.Setenv(telemetry.EnvVar, "1")
		telemetry.SetEnabled(true)
		// In a worker rank, this same loop reaches the one scenario the
		// launcher anchored -only to, whose spmd world executes the worker
		// body and exits the process.
		scenarios = hostperf.CrossScenarios(spmd.Backend(*backend), func(name string) []string {
			return []string{os.Args[0], "-backend", *backend, "-only", "^" + name + "$"}
		})
	}
	for _, sc := range scenarios {
		if filter != nil && !filter.MatchString(sc.Name) {
			continue
		}
		res := measure(sc, *iters)
		if cross {
			// The netrun coordinator ran inside measure; its last world's
			// aggregate covers this scenario's final iteration (mp worlds
			// have no wire coordinator and report no snapshot).
			if snap, ok := netrun.LastStats(); ok {
				if h, ok := snap.Hists["net.window"]; ok {
					res.WinP50, res.WinP99 = h.Quantile(0.5), h.Quantile(0.99)
				}
				res.Retransmits = snap.Counters["net.retransmits"]
			}
		}
		fmt.Fprintf(os.Stderr, "%-16s %12.1f ns/%s %10.2f allocs/%s %10.1f ms\n",
			res.Name, res.NsPerOp, res.Unit, res.AllocsPerOp, res.Unit, res.WallMs)
		rep.Results = append(rep.Results, res)
	}
	if *cpuprofile != "" {
		// Stop (and flush) immediately after the timed runs: later error
		// paths exit via os.Exit, which would skip a deferred stop and
		// leave the profile truncated.
		pprof.StopCPUProfile()
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "hostperf: no scenarios matched")
		os.Exit(1)
	}

	if *baseline != "" {
		base, err := load(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hostperf:", err)
			os.Exit(1)
		}
		rep.Baseline = base.Results
		rep.Speedup = map[string]float64{}
		byName := map[string]result{}
		for _, r := range base.Results {
			byName[r.Name] = r
		}
		for _, r := range rep.Results {
			if b, ok := byName[r.Name]; ok && r.NsPerOp > 0 {
				rep.Speedup[r.Name] = b.NsPerOp / r.NsPerOp
			}
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "hostperf:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "hostperf:", err)
		os.Exit(1)
	}
}
