// Command fompi-bench regenerates the paper's evaluation artifacts: every
// figure (4a–8) and the model/instruction/memory tables, printed as aligned
// text tables in the paper's units.
//
// Usage:
//
//	fompi-bench -exp fig4a            # one experiment, quick configuration
//	fompi-bench -exp all -full        # everything, paper-scale repetitions
//	fompi-bench -list                 # enumerate experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fompi/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	full := flag.Bool("full", false, "use paper-scale repetitions and rank counts")
	maxP := flag.Int("maxp", 0, "override the largest rank count")
	reps := flag.Int("reps", 0, "override repetitions per configuration")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			fmt.Printf("%-8s %s\n", id, bench.Registry[id].Paper)
		}
		return
	}

	cfg := bench.Quick()
	if *full {
		cfg = bench.Full()
	}
	if *maxP > 0 {
		cfg.MaxP = *maxP
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		t, err := bench.Run(id, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		t.Fprint(os.Stdout)
		fmt.Printf("(%s took %v wall-clock)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
