// Command fompi-run launches an SPMD program on a cross-process backend:
// the mpirun/srun equivalent of the simulated toolchain.
//
//	fompi-run -np 4 -ppn 2 ./myprog args...                    # shared memory (mp)
//	fompi-run -np 4 -backend net ./myprog args...              # TCP, loopback spawn
//	fompi-run -np 4 -backend net -hosts a,b -listen :7077 ./myprog
//	fompi-run -np 4 -ppn 2 -backend hybrid ./myprog args...    # shm within a host, TCP across
//
// With -backend mp (the default) it creates the shared-memory world and
// executes the target binary once per rank; with -backend net it runs the
// inter-node TCP coordinator, spawning the ranks locally (loopback mode) or
// — when -hosts is given (or FOMPI_HOSTS is set) — waiting for workers the
// operator starts on each listed machine with FOMPI_NET_COORD pointing back
// at the coordinator. -backend hybrid runs the same coordinator but groups
// ranks by host key: co-located ranks share an mmap arena (shared-memory
// windows work across their processes), off-host ranks talk TCP. In loopback
// mode the hybrid launcher emulates one host per virtual node; in host-list
// mode each worker's environment carries FOMPI_HYB_WORLD=1 and the host's
// FOMPI_NET_HOST.
//
// The launcher exports FOMPI_BACKEND, so a program that selects its backend
// from the environment (fompi.BackendFromEnv, as the examples do) reaches
// its fompi.Run call with the matching backend and joins the world the
// launcher created. The flags must match the program's fompi.Config (ranks,
// ranks per node, pacing window, arena size): the workers validate their
// config against the world and fail loudly on a mismatch.
//
// Each rank's stdout/stderr is prefixed "[rank N]" (disable with -tag=false)
// and the launcher exits with the first failing rank's exit code.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fompi/internal/faultnet"
	"fompi/internal/hybridrun"
	"fompi/internal/mprun"
	"fompi/internal/netrun"
	"fompi/internal/rankio"
	"fompi/internal/telemetry"
)

func main() {
	np := flag.Int("np", 2, "number of ranks (one OS process each)")
	ppn := flag.Int("ppn", 1, "ranks per (virtual) node; same-node pairs use the intra-node cost profile")
	pace := flag.Int64("pace", 0, "pacing window in virtual ns (0 disables; must match the program's PaceWindowNs)")
	arena := flag.Int("arena", 0, "per-rank registered-memory arena bytes (mp and hybrid backends; 0 = the 16 MiB default)")
	backend := flag.String("backend", "mp", "cross-process backend: mp (shared memory, one machine), net (TCP, inter-node) or hybrid (shm within a host, TCP across)")
	hosts := flag.String("hosts", os.Getenv("FOMPI_HOSTS"),
		"comma-separated machines for the net and hybrid backends; non-empty switches to host-list mode, where the operator starts one worker per rank remotely (default from FOMPI_HOSTS)")
	listen := flag.String("listen", "", "net coordinator listen address (host-list mode defaults to :7077, loopback to 127.0.0.1:0)")
	tag := flag.Bool("tag", true, "prefix each spawned rank's stdout/stderr with [rank N]")
	joinTimeout := flag.Duration("join-timeout", 0,
		"net/hybrid rendezvous deadline: fail with the list of missing ranks if the world has not assembled by then (0 = the 60 s default)")
	faults := flag.String("faults", os.Getenv(faultnet.EnvVar),
		"fault-injection spec for the net/hybrid wire, e.g. 'seed=7,delayp=0.1,delaymax=20ms,resetafter=400' (default from "+faultnet.EnvVar+"; see internal/faultnet)")
	netTimeouts := flag.String("net-timeouts", os.Getenv(netrun.EnvTimeouts),
		"net/hybrid failure-model timing spec, e.g. 'heartbeat=500ms,stale=3s,optimeout=2s,ctlidle=6s' (default from "+netrun.EnvTimeouts+"; zero-value keys keep the defaults)")
	netWindow := flag.String("net-window", os.Getenv(netrun.EnvWindow),
		"net/hybrid outstanding-request window depth per destination, 1-4096 (default from "+netrun.EnvWindow+", then 64; 1 restores blocking one-op-per-round-trip behavior)")
	stats := flag.Bool("stats", os.Getenv(telemetry.EnvVar) != "" && os.Getenv(telemetry.EnvVar) != "0",
		"enable telemetry: each rank dumps a JSON stats line at exit and the coordinator publishes the merged world aggregate (default from "+telemetry.EnvVar+")")
	debugAddr := flag.String("debug-addr", os.Getenv(telemetry.EnvDebugAddr),
		"bind an HTTP observability listener (expvar under /debug/vars, pprof under /debug/pprof/) in every world process, e.g. 127.0.0.1:0 (default from "+telemetry.EnvDebugAddr+")")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fompi-run [flags] program [args...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	if mprun.IsWorker() || netrun.IsWorker() {
		fmt.Fprintln(os.Stderr, "fompi-run: refusing to nest inside a cross-process world")
		os.Exit(2)
	}
	if *faults != "" {
		if _, err := faultnet.Parse(*faults); err != nil {
			fmt.Fprintf(os.Stderr, "fompi-run: -faults: %v\n", err)
			os.Exit(2)
		}
		// Spawned workers inherit the environment, so the whole world —
		// launcher dials included — runs under the same fault profile.
		os.Setenv(faultnet.EnvVar, *faults)
	}
	if *netTimeouts != "" {
		if _, err := netrun.ParseTimeouts(*netTimeouts); err != nil {
			fmt.Fprintf(os.Stderr, "fompi-run: -net-timeouts: %v\n", err)
			os.Exit(2)
		}
		// Same inheritance pattern as -faults: Launch re-resolves and
		// re-exports the fully resolved spec for the spawned workers.
		os.Setenv(netrun.EnvTimeouts, *netTimeouts)
	}
	if *netWindow != "" {
		if _, err := netrun.ParseWindow(*netWindow); err != nil {
			fmt.Fprintf(os.Stderr, "fompi-run: -net-window: %v\n", err)
			os.Exit(2)
		}
		os.Setenv(netrun.EnvWindow, *netWindow)
	}
	if *stats {
		// Same inheritance pattern as -faults: spawned workers read the
		// environment; the launcher-side coordinator flips its own flag too
		// so it aggregates the STATS frames the workers will send.
		os.Setenv(telemetry.EnvVar, "1")
		telemetry.SetEnabled(true)
	}
	if *debugAddr != "" {
		os.Setenv(telemetry.EnvDebugAddr, *debugAddr)
	}

	var hostList []string
	if *hosts != "" {
		hostList = strings.Split(*hosts, ",")
	}
	var err error
	switch *backend {
	case "mp":
		if hostList != nil {
			fmt.Fprintln(os.Stderr, "fompi-run: -hosts requires -backend net (shared memory is one machine)")
			os.Exit(2)
		}
		os.Setenv("FOMPI_BACKEND", "mp")
		err = mprun.Launch(mprun.Options{
			Ranks:        *np,
			RanksPerNode: *ppn,
			PaceWindowNs: *pace,
			ArenaBytes:   *arena,
			Relaunch:     flag.Args(),
			TagOutput:    *tag,
		})
	case "net":
		os.Setenv("FOMPI_BACKEND", "net")
		err = netrun.Launch(netrun.Options{
			Ranks:        *np,
			RanksPerNode: *ppn,
			PaceWindowNs: *pace,
			Listen:       *listen,
			Hosts:        hostList,
			Relaunch:     flag.Args(),
			TagOutput:    *tag,
			JoinTimeout:  *joinTimeout,
		})
	case "hybrid":
		os.Setenv("FOMPI_BACKEND", "hybrid")
		err = hybridrun.Launch(hybridrun.Options{
			Net: netrun.Options{
				Ranks:        *np,
				RanksPerNode: *ppn,
				PaceWindowNs: *pace,
				Listen:       *listen,
				Hosts:        hostList,
				Relaunch:     flag.Args(),
				TagOutput:    *tag,
				JoinTimeout:  *joinTimeout,
			},
			ArenaBytes: *arena,
		})
	default:
		fmt.Fprintf(os.Stderr, "fompi-run: unknown backend %q (want mp, net or hybrid)\n", *backend)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fompi-run: %v\n", err)
		os.Exit(rankio.ExitCode(err))
	}
}
