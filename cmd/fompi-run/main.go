// Command fompi-run launches an SPMD program on the multi-process backend:
// the mpirun/srun equivalent of the simulated toolchain. It creates the
// shared-memory world and executes the target binary once per rank with the
// worker environment set.
//
//	fompi-run -np 4 -ppn 2 ./myprog args...
//
// The launcher exports FOMPI_BACKEND=mp, so a program that selects its
// backend from the environment (fompi.BackendFromEnv, as the examples do)
// reaches its fompi.Run call with BackendMP and joins the world the
// launcher created. The flags must match the program's fompi.Config (ranks,
// ranks per node, pacing window, arena size): the workers validate their
// config against the world and fail loudly on a mismatch.
package main

import (
	"flag"
	"fmt"
	"os"

	"fompi/internal/mprun"
)

func main() {
	np := flag.Int("np", 2, "number of ranks (one OS process each)")
	ppn := flag.Int("ppn", 1, "ranks per node (intra-node pairs use the XPMEM-style fast path)")
	pace := flag.Int64("pace", 0, "pacing window in virtual ns (0 disables; must match the program's PaceWindowNs)")
	arena := flag.Int("arena", 0, "per-rank registered-memory arena bytes (0 = the 16 MiB default)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fompi-run [flags] program [args...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	if mprun.IsWorker() {
		fmt.Fprintln(os.Stderr, "fompi-run: refusing to nest inside a multi-process world")
		os.Exit(2)
	}
	os.Setenv("FOMPI_BACKEND", "mp")
	err := mprun.Launch(mprun.Options{
		Ranks:        *np,
		RanksPerNode: *ppn,
		PaceWindowNs: *pace,
		ArenaBytes:   *arena,
		Relaunch:     flag.Args(),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fompi-run: %v\n", err)
		os.Exit(1)
	}
}
