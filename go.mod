module fompi

go 1.24
