// Distributed hashtable example (the paper's §4.1 motif): every rank
// inserts random keys into a table spread over all ranks using passive-
// target atomics — compare-and-swap into the slot, fetch-and-op to claim
// overflow cells — inside one lock_all epoch. Run it to see the insert
// rates of the MPI-3 RMA, UPC, and MPI-1 active-message implementations
// side by side on identical simulated hardware.
package main

import (
	"fmt"

	"fompi"
	"fompi/internal/apps/hashtable"
	"fompi/internal/spmd"
)

func main() {
	const ranks = 8
	prm := hashtable.Params{InsertsPerRank: 2048, TableSlots: 1 << 15, Seed: 42,
		OverflowCells: 2048 * ranks}
	fompi.MustRun(fompi.Config{Ranks: ranks, RanksPerNode: 4, PaceWindowNs: 20000},
		func(p *fompi.Proc) {
			type variant struct {
				name string
				run  func() hashtable.Result
			}
			for _, v := range []variant{
				{"foMPI MPI-3 RMA", func() hashtable.Result { r, _ := hashtable.RunFoMPI(p, prm); return r }},
				{"Cray UPC       ", func() hashtable.Result { r, _ := hashtable.RunUPC(p, prm); return r }},
				{"MPI-1 active msg", func() hashtable.Result { r, _ := hashtable.RunMPI1(p, prm); return r }},
			} {
				res := v.run()
				worst := p.Allreduce8(spmd.OpMax, uint64(res.Elapsed))
				p.Barrier()
				if p.Rank() == 0 {
					rate := float64(ranks*prm.InsertsPerRank) / float64(worst) * 1e3
					fmt.Printf("%s  %7.2f M inserts/s  (%d inserts, %d ranks)\n",
						v.name, rate, ranks*prm.InsertsPerRank, ranks)
				}
			}
		})
}
