// Stencil example: a MILC-style 4-D lattice conjugate-gradient solve
// (the paper's §4.4 application) with the halo exchange implemented three
// ways — MPI-1 messages, UPC notify+get, and foMPI MPI-3 RMA in a single
// lock_all epoch — followed by the notified-access (foMPI-NA) 2-D Jacobi
// stencil, where PutNotify/WaitNotify replace the per-iteration fences
// entirely. All variants compute bit-identical residuals/checksums; the
// virtual times show the one-sided and notified variants' advantage.
package main

import (
	"fmt"

	"fompi"
	"fompi/internal/apps/milc"
	"fompi/internal/apps/stencil"
	"fompi/internal/spmd"
	"fompi/internal/timing"
)

func main() {
	const ranks = 8
	prm := milc.Params{Local: [4]int{4, 4, 4, 8}, Grid: [4]int{1, 1, 2, 4}, Iters: 25}
	fompi.MustRun(fompi.Config{Ranks: ranks, RanksPerNode: 4}, func(p *fompi.Proc) {
		type variant struct {
			name string
			run  func() milc.Result
		}
		for _, v := range []variant{
			{"MPI-1 send/recv ", func() milc.Result { return milc.RunMPI1(p, prm) }},
			{"UPC notify+get  ", func() milc.Result { return milc.RunUPC(p, prm) }},
			{"foMPI MPI-3 RMA ", func() milc.Result { return milc.RunFoMPI(p, prm) }},
		} {
			res := v.run()
			worst := timing.Time(p.Allreduce8(spmd.OpMax, uint64(res.Elapsed)))
			p.Barrier()
			if p.Rank() == 0 {
				fmt.Printf("%s  %8.2f us   residual %.6e\n",
					v.name, worst.Micros(), res.Residual)
			}
		}

		// Notified access: the same halo-exchange pattern with the consumer's
		// synchronization epoch replaced by a tag-matched single-word poll.
		sprm := stencil.Params{NX: 64, NY: 32, Iters: 10}
		fence := stencil.RunFence(p, sprm)
		wf := timing.Time(p.Allreduce8(spmd.OpMax, uint64(fence.Elapsed)))
		notif := stencil.RunNotify(p, sprm)
		wn := timing.Time(p.Allreduce8(spmd.OpMax, uint64(notif.Elapsed)))
		stencil.Verify(fence, notif, stencil.RunReference(p, sprm))
		p.Barrier()
		if p.Rank() == 0 {
			fmt.Printf("stencil fence     %8.2f us   checksum %.6e\n", wf.Micros(), fence.Checksum)
			fmt.Printf("stencil notified  %8.2f us   checksum %.6e  (%.1fx)\n",
				wn.Micros(), notif.Checksum, float64(wf)/float64(wn))
		}
	})
}
