// Stencil example: a MILC-style 4-D lattice conjugate-gradient solve
// (the paper's §4.4 application) with the halo exchange implemented three
// ways — MPI-1 messages, UPC notify+get, and foMPI MPI-3 RMA in a single
// lock_all epoch — followed by the notified-access (foMPI-NA) 2-D Jacobi
// stencil, where PutNotify/WaitNotify replace the per-iteration fences
// entirely. All variants compute bit-identical residuals/checksums; the
// virtual times show the one-sided and notified variants' advantage.
//
// The -backend flag selects the transport (proc: in-process goroutines, mp:
// one OS process per rank over shared memory); -rma-only restricts the run
// to the backend-portable variants, whose output is bit-identical across
// backends — the CI examples smoke diffs exactly that. The MPI-1 messaging
// layer uses in-process mailboxes and so runs only on the proc backend.
package main

import (
	"flag"
	"fmt"

	"fompi"
	"fompi/internal/apps/milc"
	"fompi/internal/apps/stencil"
	"fompi/internal/spmd"
	"fompi/internal/timing"
)

func main() {
	backend := flag.String("backend", string(fompi.BackendFromEnv()),
		"transport backend: proc (in-process, default), mp (multi-process), net (inter-node TCP) or hybrid (shm within a host, TCP across)")
	rmaOnly := flag.Bool("rma-only", false,
		"run only the backend-portable RMA variants (implied by the cross-process backends)")
	ppn := flag.Int("ppn", 4, "ranks per node; 8 puts the whole world on one node, "+
		"whose virtual times are fully deterministic (no cross-node NIC incast races)")
	check := flag.Bool("check", false,
		"print only run-deterministic figures — residuals and checksums — which must "+
			"be bit-identical across runs and backends (implies -rma-only; the virtual "+
			"times of whole apps vary sub-percent with host scheduling, here and on the "+
			"in-process backend alike, so -check omits them)")
	pace := flag.Int64("pace", 0, "pacing window in virtual ns (0 disables); bounds "+
		"cross-rank clock divergence so real scheduling noise cannot reorder stamp merges")
	flag.Parse()
	be := fompi.Backend(*backend)
	portable := *rmaOnly || *check ||
		be == fompi.BackendMP || be == fompi.BackendNet || be == fompi.BackendHybrid

	const ranks = 8
	prm := milc.Params{Local: [4]int{4, 4, 4, 8}, Grid: [4]int{1, 1, 2, 4}, Iters: 25}
	fompi.MustRun(fompi.Config{Ranks: ranks, RanksPerNode: *ppn, Backend: be, PaceWindowNs: *pace}, func(p *fompi.Proc) {
		type variant struct {
			name string
			run  func() milc.Result
		}
		variants := []variant{
			{"UPC notify+get  ", func() milc.Result { return milc.RunUPC(p, prm) }},
			{"foMPI MPI-3 RMA ", func() milc.Result { return milc.RunFoMPI(p, prm) }},
		}
		if !portable {
			variants = append([]variant{
				{"MPI-1 send/recv ", func() milc.Result { return milc.RunMPI1(p, prm) }},
			}, variants...)
		}
		for _, v := range variants {
			res := v.run()
			worst := timing.Time(p.Allreduce8(spmd.OpMax, uint64(res.Elapsed)))
			p.Barrier()
			if p.Rank() == 0 {
				if *check {
					fmt.Printf("%s  residual %.6e\n", v.name, res.Residual)
				} else {
					fmt.Printf("%s  %8.2f us   residual %.6e\n",
						v.name, worst.Micros(), res.Residual)
				}
			}
		}

		// Notified access: the same halo-exchange pattern with the consumer's
		// synchronization epoch replaced by a tag-matched single-word poll.
		sprm := stencil.Params{NX: 64, NY: 32, Iters: 10}
		fence := stencil.RunFence(p, sprm)
		wf := timing.Time(p.Allreduce8(spmd.OpMax, uint64(fence.Elapsed)))
		notif := stencil.RunNotify(p, sprm)
		wn := timing.Time(p.Allreduce8(spmd.OpMax, uint64(notif.Elapsed)))
		stencil.Verify(fence, notif, stencil.RunReference(p, sprm))
		p.Barrier()
		if p.Rank() == 0 {
			if *check {
				fmt.Printf("stencil fence     checksum %.6e\n", fence.Checksum)
				fmt.Printf("stencil notified  checksum %.6e\n", notif.Checksum)
			} else {
				fmt.Printf("stencil fence     %8.2f us   checksum %.6e\n", wf.Micros(), fence.Checksum)
				fmt.Printf("stencil notified  %8.2f us   checksum %.6e  (%.1fx)\n",
					wn.Micros(), notif.Checksum, float64(wf)/float64(wn))
			}
		}
	})
}
