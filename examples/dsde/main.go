// Dynamic sparse data exchange example (the paper's §4.2 motif): every rank
// has a few words for k random targets and nobody knows who will send to
// them — the communication pattern of graph traversals, n-body methods, and
// adaptive meshes. The example runs all the protocols of Hoefler et al.
// [15] plus the paper's one-sided accumulate protocol and prints their
// virtual-time costs.
package main

import (
	"fmt"

	"fompi"
	"fompi/internal/apps/dsde"
	"fompi/internal/mpi1"
	"fompi/internal/simnet"
	"fompi/internal/spmd"
	"fompi/internal/timing"
)

func main() {
	const ranks = 16
	prm := dsde.Params{K: 6, Seed: 3}
	var fab simnet.Transport
	fompi.MustRun(fompi.Config{Ranks: ranks, RanksPerNode: 4, PaceWindowNs: 20000},
		func(p *fompi.Proc) {
			fab = p.Fabric()
			c := mpi1.Dial(p)
			type variant struct {
				name string
				run  func() dsde.Result
			}
			for _, v := range []variant{
				{"MPI-1 alltoall      ", func() dsde.Result { return dsde.RunAlltoall(c, prm) }},
				{"MPI-1 reduce_scatter", func() dsde.Result { return dsde.RunReduceScatter(c, prm) }},
				{"MPI-1 NBX           ", func() dsde.Result { return dsde.RunNBX(c, prm) }},
				{"foMPI RMA accumulate", func() dsde.Result { return dsde.RunFoMPI(p, prm) }},
			} {
				res := v.run()
				worst := timing.Time(p.Allreduce8(spmd.OpMax, uint64(res.Elapsed)))
				p.Barrier()
				if p.Rank() == 0 {
					fmt.Printf("%s  %8.2f us  (received %d words at rank 0)\n",
						v.name, worst.Micros(), len(res.Received))
				}
			}
		})
	mpi1.Release(fab)
}
