// Quickstart: the smallest useful foMPI program. Four ranks allocate a
// window, exchange data with puts inside fence epochs, read it back with
// passive-target gets, and print their virtual-time cost — everything a new
// user needs to see the one-sided programming model end to end.
// The -backend flag (or FOMPI_BACKEND) selects the transport: proc runs the
// four ranks as goroutines over the in-process fabric, mp runs each rank as
// an OS process over a shared-memory segment — same program, same output,
// bit-identical virtual times.
package main

import (
	"flag"
	"fmt"

	"fompi"
)

func main() {
	backend := flag.String("backend", string(fompi.BackendFromEnv()),
		"transport backend: proc (in-process, default), mp (multi-process), net (inter-node TCP) or hybrid (shm within a host, TCP across)")
	flag.Parse()
	cfg := fompi.Config{Ranks: 4, RanksPerNode: 2, Backend: fompi.Backend(*backend)}
	fompi.MustRun(cfg, func(p *fompi.Proc) {
		// Allocated windows use the symmetric heap: O(1) remote-addressing
		// state per rank (§2.2 of the paper); always prefer them.
		win, mem := fompi.WinAllocate(p, 64)
		defer win.Free()

		// Active target: fences delimit an epoch in which every rank writes
		// a greeting into its right neighbor's window.
		win.Fence()
		right := (p.Rank() + 1) % p.Size()
		msg := fmt.Sprintf("hi from %d", p.Rank())
		win.Put([]byte(msg), right, 0)
		win.Fence()

		fmt.Printf("rank %d received %q (virtual time %v)\n",
			p.Rank(), string(mem[:9]), p.Now())

		// Passive target: lock the left neighbor, read its greeting, flush.
		left := (p.Rank() + p.Size() - 1) % p.Size()
		buf := make([]byte, 9)
		win.Lock(fompi.LockShared, left)
		win.Get(buf, left, 0)
		win.Flush(left)
		win.Unlock(left)

		// One atomic: everyone increments a counter word at rank 0.
		win.Lock(fompi.LockShared, 0)
		old := win.FetchAndOp(fompi.AccSum, 1, 0, 16)
		win.Unlock(0)
		_ = old

		p.Barrier()
		if p.Rank() == 0 {
			win.Lock(fompi.LockShared, 0)
			count := win.FetchAndOp(fompi.AccNoOp, 0, 0, 16)
			win.Unlock(0)
			fmt.Printf("counter at rank 0: %d (expect %d)\n", count, p.Size())
		}
	})
}
