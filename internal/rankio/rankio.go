// Package rankio holds the launcher-side process plumbing shared by the
// multi-process transport backends (internal/mprun, internal/netrun): worker
// spawning with per-rank "[rank N]" output tagging, idempotent exit-status
// reaping, and the error type that carries a failing worker's exit code up
// to cmd/fompi-run.
package rankio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
)

// Logf writes one tagged diagnostic line to stderr: "tag[pid N]: message".
// It is the shared logger for worker- and launcher-side diagnostics (join
// progress, rendezvous banners, stats dumps), formatted like faultnet's
// chaos-log lines so the two streams interleave attributably when several
// processes share a terminal. One Write call per line keeps concurrent
// processes' lines whole.
func Logf(tag, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s[pid %d]: %s\n", tag, os.Getpid(), fmt.Sprintf(format, args...))
}

// RankError reports a failed world launch together with the first non-zero
// worker exit code observed, so launchers can propagate it as their own
// exit status instead of a generic 1.
type RankError struct {
	Err  error
	Code int
	// Rank is the rank whose failure is being reported, -1 when the
	// failure is not attributable to one rank (e.g. a bootstrap error).
	Rank int
}

func (e *RankError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying launch error.
func (e *RankError) Unwrap() error { return e.Err }

// PeerAbortMsg is the canonical FAIL message a worker reports when its rank
// unwound because some *other* rank took the world down — a symptom, not a
// cause. Workers send exactly this text (spmd's recover path); launchers
// convert it back to the typed classification with ClassifyFail. Keep the
// text stable: it crosses the wire between separately built binaries.
const PeerAbortMsg = "aborted by peer rank"

// ErrPeerAbort is the sentinel launchers use (via errors.Is) to recognize a
// worker failure that is a peer-abort symptom, so a later report naming the
// actual cause can displace it as the world's error.
var ErrPeerAbort = errors.New(PeerAbortMsg)

// ClassifyFail builds the launcher-side error for one worker's FAIL
// message: the single point where message text, having crossed the wire,
// is converted back into a typed classification. The returned error
// matches errors.Is(err, ErrPeerAbort) iff msg reports a peer-abort
// symptom.
func ClassifyFail(err error, msg string) error {
	if strings.Contains(msg, PeerAbortMsg) {
		return peerAborted{err}
	}
	return err
}

// peerAborted marks err as a peer-abort symptom without changing its text.
type peerAborted struct{ error }

func (p peerAborted) Is(target error) bool { return target == ErrPeerAbort }
func (p peerAborted) Unwrap() error        { return p.error }

// ExitCode returns the exit status a launcher should propagate for err: the
// first failing worker's code when known, 1 for any other non-nil error, 0
// for nil.
func ExitCode(err error) int {
	if err == nil {
		return 0
	}
	var re *RankError
	if errors.As(err, &re) && re.Code != 0 {
		return re.Code
	}
	return 1
}

// Cmd is one spawned worker process with idempotent reaping.
type Cmd struct {
	cmd      *exec.Cmd
	copyWait sync.WaitGroup
	waitOnce sync.Once
	code     int
}

// Start spawns one worker rank executing argv with extraEnv appended to the
// inherited environment. With tag set, the worker's stdout and stderr are
// line-buffered through this process and each line is prefixed "[rank N] ";
// otherwise the streams pass through directly.
func Start(argv, extraEnv []string, rank int, tag bool) (*Cmd, error) {
	c := &Cmd{cmd: exec.Command(argv[0], argv[1:]...)}
	c.cmd.Env = append(os.Environ(), extraEnv...)
	if !tag {
		c.cmd.Stdout, c.cmd.Stderr = os.Stdout, os.Stderr
		return c, c.cmd.Start()
	}
	outR, err := c.cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	errR, err := c.cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	c.copyWait.Add(2)
	go c.prefixCopy(os.Stdout, outR, rank)
	go c.prefixCopy(os.Stderr, errR, rank)
	return c, c.cmd.Start()
}

// prefixCopy relays one stream line by line with the rank tag. Lines are the
// tagging unit, so interleaved ranks stay readable. On a scanner error (a
// pathological line beyond the buffer cap) it falls back to an untagged
// drain: the pipe must keep flowing or the worker blocks on a full buffer
// and the world hangs.
func (c *Cmd) prefixCopy(dst io.Writer, src io.Reader, rank int) {
	defer c.copyWait.Done()
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		fmt.Fprintf(dst, "[rank %d] %s\n", rank, sc.Bytes())
	}
	if sc.Err() != nil {
		io.Copy(dst, src)
	}
}

// Wait reaps the process (idempotently) and returns its exit code; -1 means
// it was killed by a signal or never ran.
func (c *Cmd) Wait() int {
	c.waitOnce.Do(func() {
		c.copyWait.Wait() // exec.Cmd.Wait requires the pipes drained first
		err := c.cmd.Wait()
		switch e := err.(type) {
		case nil:
			c.code = 0
		case *exec.ExitError:
			c.code = e.ExitCode()
		default:
			c.code = -1
		}
	})
	return c.code
}

// KillAll force-kills every still-running worker (nil entries are skipped).
func KillAll(cmds []*Cmd) {
	for _, c := range cmds {
		if c != nil && c.cmd.Process != nil {
			c.cmd.Process.Kill()
		}
	}
}

// ReapAll waits out every worker's exit status (idempotent; safe after
// KillAll), preventing zombie accumulation in long-lived launchers.
func ReapAll(cmds []*Cmd) {
	for _, c := range cmds {
		if c != nil {
			c.Wait()
		}
	}
}
