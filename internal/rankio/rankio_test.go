package rankio

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestExitCode(t *testing.T) {
	base := errors.New("boom")
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{base, 1},
		{&RankError{Err: base, Code: 3}, 3},
		{&RankError{Err: base, Code: 0}, 1},
		{fmt.Errorf("wrapped: %w", &RankError{Err: base, Code: 7}), 7},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
	re := &RankError{Err: base, Code: 2}
	if !errors.Is(re, base) {
		t.Errorf("RankError does not unwrap to its cause")
	}
}

func TestPrefixCopy(t *testing.T) {
	var out bytes.Buffer
	c := &Cmd{}
	c.copyWait.Add(1)
	c.prefixCopy(&out, strings.NewReader("hello\nworld\n"), 5)
	want := "[rank 5] hello\n[rank 5] world\n"
	if out.String() != want {
		t.Errorf("prefixCopy wrote %q, want %q", out.String(), want)
	}
}
