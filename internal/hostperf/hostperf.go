// Package hostperf measures the simulator's own wall-clock cost: the host
// time and allocations the fabric burns per simulated operation, independent
// of the virtual-time results. The paper's evaluation runs at up to half a
// million cores; the only thing standing between this repository and larger
// rank counts is host-side overhead, so the scenarios here are the hot paths
// that dominate it — bulk put/get (stamp maintenance), global synchronization
// (doorbells), lock epochs (region resolution), and paced contended-word
// workloads (the pacing tracker).
//
// Each Scenario runs a fixed workload to completion; cmd/hostperf times it
// and emits BENCH_host.json (see scripts/bench_host.sh), and the benchmarks
// in hostperf_test.go wrap the same scenarios for `go test -bench`.
package hostperf

import (
	"fompi/internal/apps/hashtable"
	"fompi/internal/apps/stencil"
	"fompi/internal/core"
	"fompi/internal/simnet"
	"fompi/internal/spmd"
)

// Scenario is one host-perf workload: Run executes it once, performing Ops
// operations of the named Unit.
type Scenario struct {
	Name string
	Unit string // what one "op" is: put, get, fence, lockall, insert, iter
	Ops  int64  // units performed per Run
	Run  func()
}

// sweepSizes is the bulk-message size sweep: 4 KiB to 256 KiB doubling, the
// upper half of the Figure 4/5 range where stamp maintenance dominates.
func sweepSizes() []int {
	var out []int
	for s := 4 << 10; s <= 256<<10; s *= 2 {
		out = append(out, s)
	}
	return out
}

const sweepReps = 40

// onesidedSweep runs the passive-target put or get size sweep between two
// inter-node ranks: the paper's Figure 4 pattern (lock, op, flush), sized so
// that per-word stamp work is the dominant host cost.
func onesidedSweep(isGet bool) func() {
	return func() {
		spmd.MustRun(spmd.Config{Ranks: 2, RanksPerNode: 1}, func(p *spmd.Proc) {
			w, _ := core.Allocate(p, 256<<10, core.Config{})
			if p.Rank() == 0 {
				buf := make([]byte, 256<<10)
				w.Lock(core.LockExclusive, 1)
				for _, sz := range sweepSizes() {
					for r := 0; r < sweepReps; r++ {
						if isGet {
							w.Get(buf[:sz], 1, 0)
						} else {
							w.Put(buf[:sz], 1, 0)
						}
						w.Flush(1)
					}
				}
				w.Unlock(1)
			}
			p.Barrier()
			w.Free()
		})
	}
}

// fenceAt runs reps collective fence epochs at rank count p.
func fenceAt(p, reps int) func() {
	return func() {
		spmd.MustRun(spmd.Config{Ranks: p, RanksPerNode: 4}, func(pr *spmd.Proc) {
			w, _ := core.Allocate(pr, 64, core.Config{})
			for r := 0; r < reps; r++ {
				w.Fence()
			}
			w.Free()
		})
	}
}

// lockAllAt runs reps lock_all/flush_all/unlock_all epochs on every rank
// concurrently at rank count p: the region-resolution and doorbell hot path.
func lockAllAt(p, reps int) func() {
	return func() {
		spmd.MustRun(spmd.Config{Ranks: p, RanksPerNode: 4}, func(pr *spmd.Proc) {
			w, _ := core.Allocate(pr, 64, core.Config{})
			for r := 0; r < reps; r++ {
				w.LockAll()
				w.FlushAll()
				w.UnlockAll()
			}
			pr.Barrier()
			w.Free()
		})
	}
}

// hashtableAt runs the paced distributed-hashtable insert workload (§4.1)
// at rank count p: contended CAS chains under a 20 µs pacing window, the
// workload that exercises the pacing min-tracker hardest.
func hashtableAt(p, inserts int) func() {
	prm := hashtable.Params{InsertsPerRank: inserts, Seed: 7,
		TableSlots: 16 * inserts, OverflowCells: inserts * p}
	return func() {
		spmd.MustRun(spmd.Config{Ranks: p, RanksPerNode: 4, PaceWindowNs: 20000},
			func(pr *spmd.Proc) {
				hashtable.RunFoMPI(pr, prm)
				pr.Barrier()
			})
	}
}

// collAt runs reps collective rounds — one Allreduce8 plus one Barrier — at
// rank count p: the batched-issue path of the word collectives (value+flag
// pairs coalesced into one pacing check and one doorbell per peer).
func collAt(p, reps int) func() {
	return func() {
		spmd.MustRun(spmd.Config{Ranks: p, RanksPerNode: 4}, func(pr *spmd.Proc) {
			var acc uint64
			for r := 0; r < reps; r++ {
				acc = pr.Allreduce8(spmd.OpSum, acc+uint64(pr.Rank())+1)
				pr.Barrier()
			}
		})
	}
}

// stencilAt runs the notified-access pipelined halo exchange at rank count p.
func stencilAt(p, iters int) func() {
	prm := stencil.Params{NX: 64, NY: 32, Iters: iters, Seed: 7}
	return func() {
		spmd.MustRun(spmd.Config{Ranks: p, RanksPerNode: 4}, func(pr *spmd.Proc) {
			stencil.RunNotify(pr, prm)
			pr.Barrier()
		})
	}
}

// Per-scenario workload constants. Changing any of these invalidates
// comparisons against recorded baselines (scripts/bench_host_baseline.json).
const (
	fenceReps    = 100
	lockAllReps  = 100
	collReps     = 100
	htInserts    = 256
	stencilIters = 10
)

// Scenarios returns the full host-perf suite in reporting order.
func Scenarios() []Scenario {
	nSweep := int64(len(sweepSizes()) * sweepReps)
	return []Scenario{
		{Name: "put_sweep", Unit: "put", Ops: nSweep, Run: onesidedSweep(false)},
		{Name: "get_sweep", Unit: "get", Ops: nSweep, Run: onesidedSweep(true)},
		{Name: "fence_p64", Unit: "fence", Ops: fenceReps, Run: fenceAt(64, fenceReps)},
		{Name: "fence_p256", Unit: "fence", Ops: fenceReps, Run: fenceAt(256, fenceReps)},
		{Name: "lockall_p64", Unit: "lockall", Ops: lockAllReps, Run: lockAllAt(64, lockAllReps)},
		{Name: "coll_p256", Unit: "round", Ops: collReps, Run: collAt(256, collReps)},
		{Name: "hashtable_p64", Unit: "insert", Ops: 64 * htInserts, Run: hashtableAt(64, htInserts)},
		{Name: "stencil_p16", Unit: "iter", Ops: stencilIters, Run: stencilAt(16, stencilIters)},
	}
}

// Cross-process scenario constants (see the baseline-invalidation note above).
const (
	pingpongRounds = 400
	crossPutReps   = 200
	crossPutBytes  = 32 << 10
	msgrateWindow  = 64
	msgrateMsgs    = 6400
)

// CrossScenarios returns the host-perf subset that measures a cross-process
// backend's transport overhead: the wire (or shared-memory) round-trip cost
// the protocol layers pay per operation, reported advisory alongside the
// in-process suite (cmd/hostperf -backend; never guarded — these numbers
// measure sockets and schedulers, not the simulator's own hot paths).
// relaunch(name) must produce an argv that re-executes this program so that
// its worker ranks reach exactly the named scenario's world (cmd/hostperf
// passes -backend and an anchored -only).
func CrossScenarios(backend spmd.Backend, relaunch func(name string) []string) []Scenario {
	cfg2 := func(name string) spmd.Config {
		return spmd.Config{Ranks: 2, RanksPerNode: 1, Backend: backend,
			MPRelaunch: relaunch(name), MPArenaBytes: 4 << 20}
	}
	return []Scenario{
		// One flag put each way per round: the transport's doorbell + small
		// message latency floor (loopback TCP RTT on the net backend).
		{Name: "x_pingpong", Unit: "rtt", Ops: pingpongRounds, Run: func() {
			spmd.MustRun(cfg2("x_pingpong"), func(p *spmd.Proc) {
				reg := p.EP().Register(64)
				key := reg.Key()
				p.Barrier()
				ep := p.EP()
				peer := 1 - p.Rank()
				for r := uint64(1); r <= pingpongRounds; r++ {
					if p.Rank() == 0 {
						ep.StoreW(simnet.Addr{Rank: peer, Key: key, Off: 0}, r)
						ep.WaitLocal(func() bool { return reg.LocalWord(0) >= r })
					} else {
						ep.WaitLocal(func() bool { return reg.LocalWord(0) >= r })
						ep.StoreW(simnet.Addr{Rank: peer, Key: key, Off: 0}, r)
					}
				}
				p.Barrier()
			})
		}},
		// Back-to-back 8-byte PutNB windows, waited per window: the
		// transport's small-message rate (msgs/sec). On the wire backends
		// this is the scenario the pipelined engine (netrun session.go)
		// exists for — with FOMPI_NET_WINDOW=1 every message pays a full
		// round trip and the rate collapses to 1/RTT.
		{Name: "x_msgrate", Unit: "msg", Ops: msgrateMsgs, Run: func() {
			spmd.MustRun(cfg2("x_msgrate"), func(p *spmd.Proc) {
				reg := p.EP().Register(4096)
				key := reg.Key()
				p.Barrier()
				if p.Rank() == 0 {
					ep := p.EP()
					var word [8]byte
					hs := make([]simnet.Handle, 0, msgrateWindow)
					for sent := 0; sent < msgrateMsgs; {
						hs = hs[:0]
						for i := 0; i < msgrateWindow && sent < msgrateMsgs; i++ {
							off := (sent % 512) * 8
							hs = append(hs, ep.PutNB(simnet.Addr{Rank: 1, Key: key, Off: off}, word[:]))
							sent++
						}
						for _, h := range hs {
							ep.Wait(h)
						}
					}
				}
				p.Barrier()
			})
		}},
		// Bulk puts with per-op flush: wire bandwidth plus stamp shipping.
		{Name: "x_put32k", Unit: "put", Ops: crossPutReps, Run: func() {
			spmd.MustRun(cfg2("x_put32k"), func(p *spmd.Proc) {
				w, _ := core.Allocate(p, crossPutBytes, core.Config{})
				if p.Rank() == 0 {
					buf := make([]byte, crossPutBytes)
					w.Lock(core.LockExclusive, 1)
					for r := 0; r < crossPutReps; r++ {
						w.Put(buf, 1, 0)
						w.Flush(1)
					}
					w.Unlock(1)
				}
				p.Barrier()
				w.Free()
			})
		}},
	}
}
