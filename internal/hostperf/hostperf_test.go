package hostperf

import "testing"

// BenchmarkHost wraps every host-perf scenario as a standard Go benchmark:
//
//	go test -bench BenchmarkHost -benchmem -run '^$' ./internal/hostperf
//
// reports wall ns and allocs per scenario run (divide by Scenario.Ops for
// per-operation figures; cmd/hostperf does that arithmetic and emits JSON).
func BenchmarkHost(b *testing.B) {
	for _, sc := range Scenarios() {
		b.Run(sc.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sc.Run()
			}
			b.ReportMetric(float64(sc.Ops), "ops/run")
		})
	}
}

// TestScenariosSmoke runs the cheap scenarios once so `go test ./...` keeps
// the harness executable; the heavy ones run only without -short.
func TestScenariosSmoke(t *testing.T) {
	heavy := map[string]bool{"fence_p256": true, "coll_p256": true, "hashtable_p64": true}
	for _, sc := range Scenarios() {
		if testing.Short() && heavy[sc.Name] {
			continue
		}
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if sc.Ops <= 0 {
				t.Fatalf("scenario %s declares no ops", sc.Name)
			}
			sc.Run()
		})
	}
}
