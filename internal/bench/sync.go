package bench

import (
	"math"

	"fompi/internal/core"
	"fompi/internal/pgas"
	"fompi/internal/simnet"
	"fompi/internal/spmd"
	"fompi/internal/timing"
)

// maxAcross gathers each rank's sample and returns the maximum (the paper's
// per-repetition bucket). Ranks deposit through a shared slice; the caller
// must synchronize before reading (all experiments barrier between reps).
type perRank struct {
	ts []timing.Time
}

func newPerRank(n int) *perRank { return &perRank{ts: make([]timing.Time, n)} }

// ringGroup returns the (deduplicated) ring neighbors of rank: k=2, or k=1
// when both directions meet the same peer (n = 2).
func ringGroup(rank, n int) []int {
	left, right := (rank+n-1)%n, (rank+1)%n
	if left == right {
		return []int{left}
	}
	return []int{left, right}
}

// Fig6b compares global synchronization latency versus rank count:
// foMPI MPI_Win_fence, UPC barrier, CAF sync_all, and Cray MPI's fence
// (the same protocol over the untuned MPI-2.2 software profile).
func Fig6b(cfg Config) *Table {
	t := NewTable("fig6b", "Latency for Global Synchronization", "ranks", "latency_us",
		serFoMPI+"-fence", "UPC-barrier", "CAF-sync_all", serMPI22+"-fence")
	for _, n := range PSweep(cfg.MaxP) {
		// foMPI fence plus the PGAS barriers, all over one fabric.
		per := newPerRank(n)
		perUPC := newPerRank(n)
		perCAF := newPerRank(n)
		medians := make(map[string][]timing.Time)
		spmd.MustRun(spmd.Config{Ranks: n, RanksPerNode: 4}, func(p *spmd.Proc) {
			w, _ := core.Allocate(p, 64, core.Config{})
			defer w.Free()
			u := pgas.DialUPC(p, 64)
			defer u.Free()
			cf := pgas.DialCAF(p, 64)
			defer cf.Free()
			var fo, uc, ca []timing.Time
			w.Fence() // warm up / align
			for r := 0; r < cfg.Reps; r++ {
				t0 := p.Now()
				w.Fence()
				per.ts[p.Rank()] = p.Now() - t0
				p.Barrier()
				if p.Rank() == 0 {
					fo = append(fo, MaxOf(per.ts))
				}

				t0 = u.Now()
				u.Barrier()
				perUPC.ts[p.Rank()] = u.Now() - t0
				p.Barrier()
				if p.Rank() == 0 {
					uc = append(uc, MaxOf(perUPC.ts))
				}

				t0 = cf.Now()
				cf.Barrier()
				perCAF.ts[p.Rank()] = cf.Now() - t0
				p.Barrier()
				if p.Rank() == 0 {
					ca = append(ca, MaxOf(perCAF.ts))
				}
			}
			if p.Rank() == 0 {
				medians[serFoMPI+"-fence"] = fo
				medians["UPC-barrier"] = uc
				medians["CAF-sync_all"] = ca
			}
		})
		// Cray MPI fence: identical protocol over the MPI-2.2 cost model.
		perM := newPerRank(n)
		spmd.MustRun(spmd.Config{Ranks: n, RanksPerNode: 4, Model: simnet.CrayMPI22()}, func(p *spmd.Proc) {
			w, _ := core.Allocate(p, 64, core.Config{})
			defer w.Free()
			var ms []timing.Time
			w.Fence()
			for r := 0; r < cfg.Reps; r++ {
				t0 := p.Now()
				w.Fence()
				perM.ts[p.Rank()] = p.Now() - t0
				p.Barrier()
				if p.Rank() == 0 {
					ms = append(ms, MaxOf(perM.ts))
				}
			}
			if p.Rank() == 0 {
				medians[serMPI22+"-fence"] = ms
			}
		})
		for name, ts := range medians {
			t.Set(float64(n), name, Median(ts).Micros())
		}
	}
	return t
}

// Fig6c measures General Active Target (PSCW) synchronization around a ring
// (k = 2 neighbors): a full post/start/complete/wait cycle per rank. An
// ideal implementation is flat in p.
func Fig6c(cfg Config) *Table {
	t := NewTable("fig6c", "Latency for PSCW (Ring Topology)", "ranks", "latency_us",
		serFoMPI, serMPI22)
	run := func(n int, model *simnet.CostModel) timing.Time {
		per := newPerRank(n)
		var med timing.Time
		spmd.MustRun(spmd.Config{Ranks: n, RanksPerNode: 4, Model: model}, func(p *spmd.Proc) {
			w, _ := core.Allocate(p, 64, core.Config{})
			defer w.Free()
			group := ringGroup(p.Rank(), n)
			var ts []timing.Time
			for r := 0; r < cfg.Reps; r++ {
				t0 := p.Now()
				w.Post(group)
				w.Start(group)
				w.Complete()
				w.WaitEpoch()
				per.ts[p.Rank()] = p.Now() - t0
				p.Barrier()
				if p.Rank() == 0 {
					ts = append(ts, MaxOf(per.ts))
				}
			}
			if p.Rank() == 0 {
				med = Median(ts)
			}
		})
		return med
	}
	for _, n := range PSweep(cfg.MaxP) {
		t.Set(float64(n), serFoMPI, run(n, nil).Micros())
		t.Set(float64(n), serMPI22, run(n, simnet.CrayMPI22()).Micros())
	}
	return t
}

// Models recovers the paper's closed-form performance models (§3.1, §3.2)
// from measured sweeps: linear fits for the communication calls and direct
// medians for the synchronization constants. X is an enumeration index; the
// series hold slope (ns/B) and intercept (µs) or the constant (µs).
func Models(cfg Config) *Table {
	t := NewTable("models", "Fitted performance models", "model", "per_row",
		"slope_ns_per_B", "intercept_or_const_us")
	row := 0.0
	add := func(_, name string, slope, us float64) {
		t.XName(row, name)
		t.Set(row, "slope_ns_per_B", slope)
		t.Set(row, "intercept_or_const_us", us)
		row++
	}

	// Communication fits from the Figure 4 sweeps (foMPI series).
	put := Fig4a(cfg)
	sl, ic := put.Fit(serFoMPI) // µs per byte, µs
	add("1:P_put", "P_put", sl*1e3, ic)
	get := Fig4b(cfg)
	sl, ic = get.Fit(serFoMPI)
	add("2:P_get", "P_get", sl*1e3, ic)

	// Accumulate fits from the Figure 6a sweep (x in elements of 8 B).
	acc := Fig6a(cfg)
	sl, ic = acc.Fit("foMPI-SUM")
	add("3:P_acc_sum", "P_acc,sum", sl*1e3/8, ic)
	sl, ic = acc.Fit("foMPI-MIN")
	add("4:P_acc_min", "P_acc,min", sl*1e3/8, ic)
	cas, _ := acc.Get(1, "foMPI-CAS")
	add("5:P_cas", "P_CAS", 0, cas)

	// Fence scaling coefficient: P_fence ≈ c · log2 p.
	fence := Fig6b(cfg)
	var cs []float64
	for _, x := range fence.Xs() {
		if y, ok := fence.Get(x, serFoMPI+"-fence"); ok && x > 1 {
			cs = append(cs, y/math.Log2(x))
		}
	}
	var sum float64
	for _, c := range cs {
		sum += c
	}
	if len(cs) > 0 {
		add("6:P_fence_per_log2p", "P_fence/log2(p)", 0, sum/float64(len(cs)))
	}

	// PSCW and passive-target constants at a small fixed world.
	spmd.MustRun(spmd.Config{Ranks: 8, RanksPerNode: 4}, func(p *spmd.Proc) {
		w, _ := core.Allocate(p, 64, core.Config{})
		defer w.Free()
		n := p.Size()
		group := ringGroup(p.Rank(), n)
		var post, start, complete, wait []timing.Time
		for r := 0; r < cfg.Reps; r++ {
			t0 := p.Now()
			w.Post(group)
			t1 := p.Now()
			w.Start(group)
			t2 := p.Now()
			w.Complete()
			t3 := p.Now()
			w.WaitEpoch()
			t4 := p.Now()
			post = append(post, t1-t0)
			start = append(start, t2-t1)
			complete = append(complete, t3-t2)
			wait = append(wait, t4-t3)
			p.Barrier()
		}
		// Lock constants are the paper's uncontended inter-node costs: rank 4
		// (off the master's node) measures against the off-node rank 1;
		// everyone else just keeps the barriers.
		var lockE, lockS, lockA, unlock, flush, syncT []timing.Time
		target := 1
		if p.Rank() != 4 {
			for r := 0; r < cfg.Reps; r++ {
				p.Barrier()
				p.Barrier()
				p.Barrier()
			}
			p.Barrier()
			return
		}
		for r := 0; r < cfg.Reps; r++ {
			t0 := p.Now()
			w.Lock(core.LockExclusive, target)
			t1 := p.Now()
			w.Unlock(target)
			t2 := p.Now()
			p.Barrier()
			t2b := p.Now()
			w.Lock(core.LockShared, target)
			t3 := p.Now()
			w.Unlock(target)
			p.Barrier()
			t4 := p.Now()
			w.LockAll()
			t5 := p.Now()
			w.Flush(target)
			t6 := p.Now()
			w.Sync()
			t7 := p.Now()
			w.UnlockAll()
			p.Barrier()
			lockE = append(lockE, t1-t0)
			unlock = append(unlock, t2-t1)
			lockS = append(lockS, t3-t2b)
			lockA = append(lockA, t5-t4)
			flush = append(flush, t6-t5)
			syncT = append(syncT, t7-t6)
		}
		{
			add("7:P_post_k2", "P_post (k=2)", 0, Median(post).Micros())
			add("8:P_start", "P_start", 0, Median(start).Micros())
			add("9:P_complete_k2", "P_complete (k=2)", 0, Median(complete).Micros())
			add("10:P_wait", "P_wait", 0, Median(wait).Micros())
			add("11:P_lock_excl", "P_lock,excl", 0, Median(lockE).Micros())
			add("12:P_lock_shrd", "P_lock,shrd", 0, Median(lockS).Micros())
			add("13:P_lock_all", "P_lock_all", 0, Median(lockA).Micros())
			add("14:P_unlock", "P_unlock", 0, Median(unlock).Micros())
			add("15:P_flush", "P_flush", 0, Median(flush).Micros())
			add("16:P_sync", "P_sync", 0, Median(syncT).Micros())
		}
		p.Barrier()
	})
	return t
}

// Instr reports the software fast-path cost of the critical calls: the
// paper's instruction-count study (§2.3/§2.4: flush adds 78 instructions,
// put/get 173, sync 17) plus the remote operations each protocol call
// issues. X enumerates the calls.
func Instr(cfg Config) *Table {
	t := NewTable("instr", "Fast-path cost per call", "call", "count",
		"soft_steps", "remote_ops")
	spmd.MustRun(spmd.Config{Ranks: 4, RanksPerNode: 2}, func(p *spmd.Proc) {
		w, _ := core.Allocate(p, 4096, core.Config{})
		defer w.Free()
		if p.Rank() != 0 {
			p.Barrier()
			return
		}
		buf := make([]byte, 8)
		ep := p.EP()
		w.LockAll()
		w.FlushAll()
		type probe struct {
			name string
			fn   func()
		}
		probes := []probe{
			{"1:Put8", func() { w.Put(buf, 1, 0) }},
			{"2:Get8", func() { w.Get(buf, 1, 0) }},
			{"3:Flush", func() { w.Flush(1) }},
			{"4:Sync", func() { w.Sync() }},
			{"5:FetchAndOp", func() { w.FetchAndOp(core.AccSum, 1, 1, 0) }},
			{"6:CAS", func() { w.CompareAndSwap(0, 1, 1, 0) }},
		}
		for i, pr := range probes {
			before := ep.Counters()
			pr.fn()
			d := ep.Counters().Sub(before)
			t.XName(float64(i+1), pr.name)
			t.Set(float64(i+1), "soft_steps", float64(d.SoftSteps))
			t.Set(float64(i+1), "remote_ops", float64(d.RemoteOps()))
		}
		w.UnlockAll()
		// Lock/Unlock issue remote AMOs; count them separately.
		before := ep.Counters()
		w.Lock(core.LockExclusive, 1)
		d := ep.Counters().Sub(before)
		t.XName(7, "7:LockExcl")
		t.Set(7, "soft_steps", float64(d.SoftSteps))
		t.Set(7, "remote_ops", float64(d.RemoteOps()))
		before = ep.Counters()
		w.Unlock(1)
		d = ep.Counters().Sub(before)
		t.XName(8, "8:Unlock")
		t.Set(8, "soft_steps", float64(d.SoftSteps))
		t.Set(8, "remote_ops", float64(d.RemoteOps()))
		p.Barrier()
	})
	return t
}

// Memory reports the per-rank bookkeeping bytes of each window flavour
// versus rank count: the O(1)-allocated versus Ω(p)-traditional storage
// claim of §2.2.
func Memory(cfg Config) *Table {
	t := NewTable("memory", "Per-rank window bookkeeping", "ranks", "bytes",
		"allocate", "create", "dynamic")
	for _, n := range PSweep(cfg.MaxP) {
		foot := make(map[string]int, 3)
		spmd.MustRun(spmd.Config{Ranks: n, RanksPerNode: 4}, func(p *spmd.Proc) {
			small := core.Config{MaxPosts: 64, MaxAttach: 4}
			wa, _ := core.Allocate(p, 64, small)
			wc := core.Create(p, make([]byte, 64), small)
			wd := core.CreateDynamic(p, small)
			if p.Rank() == 0 {
				foot["allocate"] = wa.MemoryFootprint()
				foot["create"] = wc.MemoryFootprint()
				foot["dynamic"] = wd.MemoryFootprint()
			}
			wa.Free()
			wc.Free()
			wd.Free()
		})
		for k, v := range foot {
			t.Set(float64(n), k, float64(v))
		}
	}
	return t
}
