package bench

import (
	"fompi/internal/apps/dsde"
	"fompi/internal/apps/fft"
	"fompi/internal/apps/hashtable"
	"fompi/internal/apps/milc"
	"fompi/internal/mpi1"
	"fompi/internal/simnet"
	"fompi/internal/spmd"
	"fompi/internal/timing"
)

// Fig7a measures distributed-hashtable insert throughput versus rank count
// (§4.1): aggregate inserts per second including synchronization, for the
// foMPI, UPC, and MPI-1 active-message implementations.
func Fig7a(cfg Config) *Table {
	t := NewTable("fig7a", "Hashtable inserts per second", "ranks", "million_inserts_per_s",
		serFoMPI, serUPC, serMPI1)
	for _, n := range PSweep(cfg.MaxP) {
		// TableSlots keeps the load factor low: contended slots couple the
		// ranks' virtual clocks through the overflow counter, and the real
		// Blue Waters runs size the table for the 16k-insert batches too.
		prm := hashtable.Params{InsertsPerRank: cfg.Inserts, Seed: cfg.Seed,
			TableSlots: 16 * cfg.Inserts, OverflowCells: cfg.Inserts * n}
		els := map[string][]timing.Time{}
		var fab simnet.Transport
		// Pacing bounds cross-rank clock divergence: the hashtable's CAS
		// and overflow-counter words couple the ranks' virtual clocks, and
		// unpaced real-time scheduling would turn that into noise.
		spmd.MustRun(spmd.Config{Ranks: n, RanksPerNode: 4, PaceWindowNs: 20000}, func(p *spmd.Proc) {
			fab = p.Fabric()
			type variant struct {
				name string
				run  func() hashtable.Result
			}
			for _, v := range []variant{
				{serFoMPI, func() hashtable.Result { r, _ := hashtable.RunFoMPI(p, prm); return r }},
				{serUPC, func() hashtable.Result { r, _ := hashtable.RunUPC(p, prm); return r }},
				{serMPI1, func() hashtable.Result { r, _ := hashtable.RunMPI1(p, prm); return r }},
			} {
				res := v.run()
				worst := p.Allreduce8(spmd.OpMax, uint64(res.Elapsed))
				p.Barrier()
				if p.Rank() == 0 {
					els[v.name] = append(els[v.name], timing.Time(worst))
				}
			}
		})
		mpi1.Release(fab)
		for _, name := range []string{serFoMPI, serUPC, serMPI1} {
			worst := els[name][0]
			if worst > 0 {
				total := float64(n * cfg.Inserts)
				t.Set(float64(n), name, total/float64(worst)*1e3) // inserts/ns → M/s
			}
		}
	}
	return t
}

// Fig7b measures the dynamic sparse data exchange (§4.2) with k = 6 random
// neighbors: the four protocols of [15] plus the RMA protocol over both
// foMPI and the Cray MPI-2.2 comparator.
func Fig7b(cfg Config) *Table {
	t := NewTable("fig7b", "Dynamic sparse data exchange (k=6)", "ranks", "time_us",
		"Alltoall", "ReduceScatter", "NBX", "RMA-"+serFoMPI, "RMA-"+serMPI22)
	for _, n := range PSweep(cfg.MaxP) {
		if n <= 6 {
			continue // k must be below the rank count
		}
		prm := dsde.Params{K: 6, Seed: cfg.Seed}
		worst := map[string]timing.Time{}
		var fab simnet.Transport
		spmd.MustRun(spmd.Config{Ranks: n, RanksPerNode: 4, PaceWindowNs: 20000}, func(p *spmd.Proc) {
			fab = p.Fabric()
			c := mpi1.Dial(p)
			type variant struct {
				name string
				run  func() dsde.Result
			}
			for _, v := range []variant{
				{"Alltoall", func() dsde.Result { return dsde.RunAlltoall(c, prm) }},
				{"ReduceScatter", func() dsde.Result { return dsde.RunReduceScatter(c, prm) }},
				{"NBX", func() dsde.Result { return dsde.RunNBX(c, prm) }},
				{"RMA-" + serFoMPI, func() dsde.Result { return dsde.RunFoMPI(p, prm) }},
				{"RMA-" + serMPI22, func() dsde.Result { return dsde.RunMPI22(p, prm) }},
			} {
				res := v.run()
				w := p.Allreduce8(spmd.OpMax, uint64(res.Elapsed))
				p.Barrier()
				if p.Rank() == 0 {
					worst[v.name] = timing.Time(w)
				}
			}
		})
		mpi1.Release(fab)
		for name, w := range worst {
			t.Set(float64(n), name, w.Micros())
		}
	}
	return t
}

// Fig7c measures 3-D FFT performance (§4.3): strong scaling of the
// aggregate GFlop/s rate for the MPI-1 bulk, UPC slab, and foMPI slab
// variants. NsPerFlop models a node-rate rank against the same NIC, the
// regime where overlap pays (Blue Waters class D).
func Fig7c(cfg Config) *Table {
	t := NewTable("fig7c", "3D FFT performance", "ranks", "gflops",
		serFoMPI, serUPC, serMPI1)
	maxP := cfg.MaxP
	if maxP > 64 {
		maxP = 64 // NX must divide by p; grid below is 64³
	}
	for _, n := range PSweep(maxP) {
		prm := fft.Params{NX: 64, NY: 64, NZ: 64, Iters: 1, NsPerFlop: 0.02}
		worst := map[string]float64{}
		var fab simnet.Transport
		spmd.MustRun(spmd.Config{Ranks: n, RanksPerNode: 4}, func(p *spmd.Proc) {
			fab = p.Fabric()
			c := mpi1.Dial(p)
			type variant struct {
				name string
				run  func() fft.Result
			}
			for _, v := range []variant{
				{serMPI1, func() fft.Result { return fft.RunMPI1(c, prm) }},
				{serUPC, func() fft.Result { return fft.RunUPC(p, prm) }},
				{serFoMPI, func() fft.Result { return fft.RunFoMPI(p, prm) }},
			} {
				res := v.run()
				w := p.Allreduce8(spmd.OpMax, uint64(res.Elapsed))
				p.Barrier()
				if p.Rank() == 0 {
					// Aggregate rate from the slowest rank's completion.
					worst[v.name] = res.GFlops * float64(res.Elapsed) / float64(w)
				}
			}
		})
		mpi1.Release(fab)
		for name, g := range worst {
			t.Set(float64(n), name, g)
		}
	}
	return t
}

// Fig8 measures the MILC proxy (§4.4): weak scaling of full execution time
// with the paper's 4×4×4×8 local lattice, for MPI-1, UPC, and foMPI.
func Fig8(cfg Config) *Table {
	t := NewTable("fig8", "MILC application completion time", "ranks", "time_ms",
		serFoMPI, serUPC, serMPI1)
	for _, n := range PSweep(cfg.MaxP) {
		grid := milcGrid(n)
		prm := milc.Params{Local: [4]int{4, 4, 4, 8}, Grid: grid, Iters: 20, Seed: cfg.Seed}
		worst := map[string]timing.Time{}
		var fab simnet.Transport
		spmd.MustRun(spmd.Config{Ranks: n, RanksPerNode: 4}, func(p *spmd.Proc) {
			fab = p.Fabric()
			type variant struct {
				name string
				run  func() milc.Result
			}
			for _, v := range []variant{
				{serMPI1, func() milc.Result { return milc.RunMPI1(p, prm) }},
				{serUPC, func() milc.Result { return milc.RunUPC(p, prm) }},
				{serFoMPI, func() milc.Result { return milc.RunFoMPI(p, prm) }},
			} {
				res := v.run()
				w := p.Allreduce8(spmd.OpMax, uint64(res.Elapsed))
				p.Barrier()
				if p.Rank() == 0 {
					worst[v.name] = timing.Time(w)
				}
			}
		})
		mpi1.Release(fab)
		for name, w := range worst {
			t.Set(float64(n), name, float64(w)/1e6) // ns → ms
		}
	}
	return t
}

// milcGrid factors n into a near-square 4-D process grid.
func milcGrid(n int) [4]int {
	grid := [4]int{1, 1, 1, 1}
	d := 3
	for rem := n; rem > 1; {
		f := 2
		for rem%f != 0 {
			f++
		}
		grid[d] *= f
		rem /= f
		d--
		if d < 0 {
			d = 3
		}
	}
	return grid
}
