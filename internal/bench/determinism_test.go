package bench

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden tables")

// goldenCfg is the fixed seed configuration the golden table was generated
// with (PR 2, against the pre-refactor flat-stamp / locked-doorbell fabric).
func goldenCfg() Config { return Config{Reps: 5, MaxP: 16, Inserts: 64, Seed: 7} }

func render(t *Table) string {
	var b bytes.Buffer
	t.Fprint(&b)
	return b.String()
}

// TestVirtualTimeDeterminism asserts that two runs of a seeded Quick
// experiment produce bit-identical virtual-time tables: the benchmark-
// determinism guard for the fabric hot-path rewrites. Fig4a is the
// experiment whose execution is strictly serialized (a two-rank
// passive-target sweep), so its virtual times are independent of host
// scheduling; experiments with concurrently booked NICs (PSCW rings, paced
// hashtables) are reproducible only statistically, in the seed fabric as
// much as in this one.
func TestVirtualTimeDeterminism(t *testing.T) {
	a := render(Fig4a(goldenCfg()))
	b := render(Fig4a(goldenCfg()))
	if a != b {
		t.Fatalf("two seeded Fig4a runs diverged:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestGoldenFig4a compares Fig4a's virtual-time table against the golden
// file captured from the pre-refactor implementation (flat per-word stamps,
// mutex-guarded region map, locked doorbells, O(p) pacing): the hot-path
// rewrite must be bit-identical in virtual time, not merely close.
// Regenerate with -update-golden only when an intentional cost-model or
// protocol change shifts virtual time.
func TestGoldenFig4a(t *testing.T) {
	got := render(Fig4a(goldenCfg()))
	path := filepath.Join("testdata", "golden_fig4a.txt")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("Fig4a virtual-time table diverged from pre-refactor golden:\n--- got\n%s\n--- want\n%s", got, want)
	}
}
