package bench

import "testing"

// TestRegistrySmoke exercises every registered experiment at tiny scale so
// the full catalogue — including the notified-access additions — is covered
// by `go test`, not only by the CLI.
func TestRegistrySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("registry sweep is a few seconds; skipped in -short")
	}
	cfg := Config{Reps: 3, MaxP: 8, Inserts: 32, Seed: 7}
	for _, id := range IDs() {
		t.Run(id, func(t *testing.T) {
			tb, err := Run(id, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if tb.ID != id {
				t.Errorf("experiment %q returned table %q", id, tb.ID)
			}
			if len(tb.Xs()) == 0 {
				t.Errorf("experiment %q produced no rows", id)
			}
			for _, s := range tb.Series {
				found := false
				for _, x := range tb.Xs() {
					if _, ok := tb.Get(x, s); ok {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("experiment %q series %q has no points", id, s)
				}
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("no-such-figure", tiny()); err == nil {
		t.Fatal("unknown experiment id must error")
	}
}

func TestPipelineNotifiedBeatsFence(t *testing.T) {
	tb := Pipeline(Config{Reps: 11, MaxP: 4, Inserts: 32, Seed: 7})
	// The fence baseline pays two O(log p) collective epochs per message;
	// the notified pipeline pays a single-word poll. The gap must hold from
	// flag-sized to bandwidth-sized transfers.
	for _, sz := range []float64{8, 4096, 65536} {
		fence := get(t, tb, sz, "fence")
		notified := get(t, tb, sz, "notified")
		if notified >= fence {
			t.Errorf("%gB: notified %g µs/msg should beat fence %g", sz, notified, fence)
		}
	}
	// At flag size the win should be large (sync dominates the message).
	if fence, notified := get(t, tb, 8, "fence"), get(t, tb, 8, "notified"); notified > fence/2 {
		t.Errorf("8B: notified %g µs/msg should be under half of fence %g", notified, fence)
	}
}

func TestStencilNotifiedBeatsFence(t *testing.T) {
	tb := StencilNA(Config{Reps: 5, MaxP: 16, Inserts: 32, Seed: 7})
	for _, p := range []float64{8, 16} {
		fence := get(t, tb, p, "fence")
		notified := get(t, tb, p, "notified")
		if notified >= fence {
			t.Errorf("p=%g: notified sweep %g µs should beat fence %g", p, notified, fence)
		}
	}
}
