package bench

import (
	"math"
	"testing"
)

// tiny keeps the shape tests fast.
func tiny() Config { return Config{Reps: 11, MaxP: 16, Inserts: 256, Seed: 7} }

func get(t *testing.T, tb *Table, x float64, s string) float64 {
	t.Helper()
	y, ok := tb.Get(x, s)
	if !ok {
		t.Fatalf("%s: missing point x=%g series=%s", tb.ID, x, s)
	}
	return y
}

func TestFig4aShape(t *testing.T) {
	tb := Fig4a(tiny())
	// The paper's ordering at small messages: foMPI < MPI-1 < UPC < CAF
	// < Cray MPI-2.2, with foMPI ≥50% below the PGAS languages.
	fo := get(t, tb, 8, "foMPI")
	if upc := get(t, tb, 8, "CrayUPC"); upc < 1.5*fo {
		t.Errorf("UPC %g should be ≥1.5× foMPI %g at 8 B", upc, fo)
	}
	if caf := get(t, tb, 8, "CrayCAF"); caf <= get(t, tb, 8, "CrayUPC") {
		t.Errorf("CAF should be slightly slower than UPC")
	}
	if m22 := get(t, tb, 8, "CrayMPI22"); m22 < 5*fo {
		t.Errorf("Cray MPI-2.2 %g should be far above foMPI %g", m22, fo)
	}
	// Bandwidth convergence: within 10% at 256 KiB.
	f, m := get(t, tb, 262144, "foMPI"), get(t, tb, 262144, "CrayMPI1")
	if math.Abs(f-m)/m > 0.15 {
		t.Errorf("large-message bandwidth should converge: foMPI %g vs MPI-1 %g", f, m)
	}
	// The DMAPP protocol-change knee: a visible jump between 16 and 32 B.
	if get(t, tb, 32, "foMPI")-get(t, tb, 16, "foMPI") < 0.2 {
		t.Errorf("missing DMAPP knee between 16 and 32 bytes")
	}
}

func TestFig5bShape(t *testing.T) {
	tb := Fig5b(tiny())
	// Message-rate ordering at 8 B: foMPI ≈ 2.4 M/s, MPI-1 ≈ 1 M/s.
	fo := get(t, tb, 8, "foMPI")
	m1 := get(t, tb, 8, "CrayMPI1")
	if fo < 2 || fo > 3 {
		t.Errorf("foMPI inter message rate %g, want ≈2.4 M/s", fo)
	}
	if m1 > 0.6*fo {
		t.Errorf("MPI-1 rate %g should be well below foMPI %g", m1, fo)
	}
}

func TestFig6aShape(t *testing.T) {
	tb := Fig6a(tiny())
	// Single-element latencies near the paper's annotations: SUM 2.41 µs,
	// UPC aadd 3.53 µs; the accelerated SUM is slower per element than the
	// locked MIN at large counts (crossover), per §3.1.3.
	sum := get(t, tb, 1, "foMPI-SUM")
	if sum < 1.5 || sum > 3.5 {
		t.Errorf("SUM 1-element latency %g µs, want ≈2.4", sum)
	}
	aadd := get(t, tb, 1, "UPC-aadd")
	if aadd <= sum {
		t.Errorf("UPC aadd %g should exceed foMPI SUM %g", aadd, sum)
	}
	bigSum := get(t, tb, 16384, "foMPI-SUM")
	bigMin := get(t, tb, 16384, "foMPI-MIN")
	if bigMin >= bigSum {
		t.Errorf("locked MIN (%g) should out-bandwidth chained SUM (%g) at large counts", bigMin, bigSum)
	}
	minSmall := get(t, tb, 1, "foMPI-MIN")
	if minSmall <= sum {
		t.Errorf("accelerated SUM (%g) should beat locked MIN (%g) at one element", sum, minSmall)
	}
}

func TestFig6bShape(t *testing.T) {
	tb := Fig6b(tiny())
	// Fence grows ~log p and stays below the UPC barrier and far below
	// Cray MPI's fence.
	fo4 := get(t, tb, 4, "foMPI-fence")
	fo16 := get(t, tb, 16, "foMPI-fence")
	if fo16 <= fo4 {
		t.Errorf("fence must grow with p: %g → %g", fo4, fo16)
	}
	// Compare two inter-node-dominated points for the log-p check (p=4 is
	// all intra-node at 4 ranks/node, so 4→8 includes the locality step).
	fo8 := get(t, tb, 8, "foMPI-fence")
	if fo16 > 2.5*fo8 {
		t.Errorf("fence growth super-logarithmic: %g (p=8) → %g (p=16)", fo8, fo16)
	}
	if upc := get(t, tb, 16, "UPC-barrier"); upc < fo16 {
		t.Errorf("UPC barrier (%g) should cost at least foMPI fence (%g)", upc, fo16)
	}
	if m22 := get(t, tb, 16, "CrayMPI22-fence"); m22 < 3*fo16 {
		t.Errorf("Cray MPI fence (%g) should be far above foMPI (%g)", m22, fo16)
	}
}

func TestFig6cShape(t *testing.T) {
	tb := Fig6c(tiny())
	// PSCW is O(k), not O(p): the inter-node plateau must be flat (within
	// 2×) from 8 to 16 ranks, and Cray MPI's constant much higher.
	fo8, fo16 := get(t, tb, 8, "foMPI"), get(t, tb, 16, "foMPI")
	if fo16 > 2*fo8 {
		t.Errorf("PSCW should be ~flat in p: %g → %g", fo8, fo16)
	}
	if m := get(t, tb, 16, "CrayMPI22"); m < 3*fo16 {
		t.Errorf("Cray PSCW (%g) should be far above foMPI (%g)", m, fo16)
	}
}

func TestFig7aShape(t *testing.T) {
	tb := Fig7a(tiny())
	// Inter-node: one-sided implementations scale; MPI-1 stagnates.
	fo8, fo16 := get(t, tb, 8, "foMPI"), get(t, tb, 16, "foMPI")
	if fo16 < fo8 {
		t.Errorf("foMPI hashtable rate should grow with p: %g → %g", fo8, fo16)
	}
	m116 := get(t, tb, 16, "CrayMPI1")
	if fo16 < 2*m116 {
		t.Errorf("foMPI (%g) should be well above MPI-1 (%g) inter-node", fo16, m116)
	}
}

func TestFig7bShape(t *testing.T) {
	tb := Fig7b(tiny())
	// Alltoall grows linearly and loses to the RMA protocol by 16 ranks
	// in growth rate; Cray MPI-2.2's accumulate is the slowest RMA.
	a8, a16 := get(t, tb, 8, "Alltoall"), get(t, tb, 16, "Alltoall")
	if a16 < 1.8*a8 {
		t.Errorf("alltoall should grow ~linearly: %g → %g", a8, a16)
	}
	rma8, rma16 := get(t, tb, 8, "RMA-foMPI"), get(t, tb, 16, "RMA-foMPI")
	if rma16 > 3*rma8 {
		t.Errorf("RMA DSDE should grow slowly: %g → %g", rma8, rma16)
	}
	if m22 := get(t, tb, 16, "RMA-CrayMPI22"); m22 < 2*rma16 {
		t.Errorf("Cray MPI-2.2 RMA (%g) should be far above foMPI (%g)", m22, rma16)
	}
}

func TestFig8Shape(t *testing.T) {
	tb := Fig8(tiny())
	// foMPI completes the MILC run faster than MPI-1 at every inter-node
	// scale (the paper's headline full-application result).
	for _, p := range []float64{8, 16} {
		fo, m1 := get(t, tb, p, "foMPI"), get(t, tb, p, "CrayMPI1")
		if fo >= m1 {
			t.Errorf("p=%g: foMPI %g ms should beat MPI-1 %g ms", p, fo, m1)
		}
	}
}

func TestModelsRecoverPaperConstants(t *testing.T) {
	tb := Models(Config{Reps: 21, MaxP: 8, Inserts: 128, Seed: 7})
	// P_put: slope ≈ 0.16 ns/B, intercept ≈ 1 µs (within calibration slack
	// — the knee inflates the small-size intercept).
	slope := get(t, tb, 0, "slope_ns_per_B")
	if slope < 0.12 || slope > 0.22 {
		t.Errorf("P_put slope %g ns/B, want ≈0.16", slope)
	}
	ic := get(t, tb, 0, "intercept_or_const_us")
	if ic < 0.5 || ic > 2.0 {
		t.Errorf("P_put intercept %g µs, want ≈1", ic)
	}
}

func TestInstrMatchesPaperCounts(t *testing.T) {
	tb := Instr(tiny())
	if steps := get(t, tb, 1, "soft_steps"); steps != 173 {
		t.Errorf("put fast path %g steps, want 173", steps)
	}
	if steps := get(t, tb, 3, "soft_steps"); steps != 78 {
		t.Errorf("flush %g steps, want 78", steps)
	}
	if steps := get(t, tb, 4, "soft_steps"); steps != 17 {
		t.Errorf("sync %g steps, want 17", steps)
	}
	if ops := get(t, tb, 1, "remote_ops"); ops != 1 {
		t.Errorf("put issues %g remote ops, want 1", ops)
	}
}

func TestMemoryScaling(t *testing.T) {
	tb := Memory(tiny())
	// Allocated windows: O(1) in p. Traditional windows: Ω(p).
	a2, a16 := get(t, tb, 2, "allocate"), get(t, tb, 16, "allocate")
	if a2 != a16 {
		t.Errorf("allocated-window footprint must be p-independent: %g vs %g", a2, a16)
	}
	c2, c16 := get(t, tb, 2, "create"), get(t, tb, 16, "create")
	if c16-c2 < 14*16 {
		t.Errorf("traditional-window footprint must grow Ω(p): %g → %g", c2, c16)
	}
}
