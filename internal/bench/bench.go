// Package bench is the experiment harness that regenerates every figure and
// table of the paper's evaluation (§3 and §4). Each experiment returns a
// Table whose series mirror the corresponding figure's curves; the
// fompi-bench CLI and the repository-root testing.B benchmarks are thin
// wrappers around this package. All times are virtual nanoseconds produced
// by the protocol code executing over the simulated fabric; EXPERIMENTS.md
// records how the shapes compare with the paper's Blue Waters measurements.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"

	"fompi/internal/timing"
)

// Table is one experiment's result: rows of X values and one Y column per
// series (NaN marks a missing point).
type Table struct {
	ID     string // experiment id, e.g. "fig4a"
	Title  string
	XLabel string
	YLabel string
	Series []string
	rows   map[float64]map[string]float64
	xnames map[float64]string
}

// NewTable creates an empty result table.
func NewTable(id, title, xlabel, ylabel string, series ...string) *Table {
	return &Table{
		ID: id, Title: title, XLabel: xlabel, YLabel: ylabel,
		Series: series, rows: map[float64]map[string]float64{},
	}
}

// XName labels an X value with a display name (model/call tables).
func (t *Table) XName(x float64, name string) {
	if t.xnames == nil {
		t.xnames = map[float64]string{}
	}
	t.xnames[x] = name
}

// Set records one point.
func (t *Table) Set(x float64, series string, y float64) {
	row := t.rows[x]
	if row == nil {
		row = map[string]float64{}
		t.rows[x] = row
	}
	row[series] = y
}

// Get returns the point and whether it exists.
func (t *Table) Get(x float64, series string) (float64, bool) {
	row, ok := t.rows[x]
	if !ok {
		return 0, false
	}
	y, ok := row[series]
	return y, ok
}

// Xs returns the sorted X values.
func (t *Table) Xs() []float64 {
	xs := make([]float64, 0, len(t.rows))
	for x := range t.rows {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	return xs
}

// Fprint renders the table in the paper's units, one row per X value.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "%-12s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(w, " %16s", s)
	}
	fmt.Fprintf(w, "   [%s]\n", t.YLabel)
	for _, x := range t.Xs() {
		if name, ok := t.xnames[x]; ok {
			fmt.Fprintf(w, "%-20s", name)
		} else {
			fmt.Fprintf(w, "%-12.6g", x)
		}
		for _, s := range t.Series {
			if y, ok := t.Get(x, s); ok {
				fmt.Fprintf(w, " %16.4g", y)
			} else {
				fmt.Fprintf(w, " %16s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// Median returns the middle element (averaging even-length middles).
func Median(xs []timing.Time) timing.Time {
	if len(xs) == 0 {
		return 0
	}
	s := append([]timing.Time(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MaxOf returns the maximum of xs (the paper's per-repetition bucket is the
// max across ranks).
func MaxOf(xs []timing.Time) timing.Time {
	var m timing.Time
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Fit performs a least-squares linear fit y = a·x + b over the points of one
// series of t, returning slope and intercept. Used by the models experiment
// to recover the paper's closed-form constants from the measured sweeps.
func (t *Table) Fit(series string) (slope, intercept float64) {
	var sx, sy, sxx, sxy, n float64
	for _, x := range t.Xs() {
		y, ok := t.Get(x, series)
		if !ok || math.IsNaN(y) {
			continue
		}
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	if n < 2 {
		return math.NaN(), math.NaN()
	}
	slope = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// Config scales the experiments: Quick keeps everything laptop-fast, Full
// uses larger rank counts and repetition counts.
type Config struct {
	Reps    int   // repetitions per configuration (paper: 1000)
	MaxP    int   // largest rank count for scaling experiments
	Inserts int   // hashtable inserts per rank (paper: 16384)
	Verbose bool  // unused by experiments; CLI chatter
	Seed    int64 // workload seed
}

// Quick returns the fast default configuration. MaxP rides the fabric's
// host-side throughput: the hot-path overhaul (COW region tables, waiter-
// aware doorbells, block-summary stamps, sharded pacing) raised it 64→256
// within the same wall-clock budget; BENCH_host.json records the headroom.
func Quick() Config { return Config{Reps: 51, MaxP: 256, Inserts: 512, Seed: 7} }

// Full returns a configuration closer to the paper's repetition counts
// (MaxP raised 1024→4096 by the same hot-path work).
func Full() Config { return Config{Reps: 301, MaxP: 4096, Inserts: 4096, Seed: 7} }

// Sizes is the message-size sweep of Figures 4 and 5 (8 B to 256 KiB).
func Sizes(max int) []int {
	var out []int
	for s := 8; s <= max; s *= 2 {
		out = append(out, s)
	}
	return out
}

// PSweep returns rank counts 2, 4, ..., maxP (powers of two).
func PSweep(maxP int) []int {
	var out []int
	for p := 2; p <= maxP; p *= 2 {
		out = append(out, p)
	}
	return out
}
