package bench

import (
	"fmt"
	"sort"
)

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string
	Paper string // the table or figure it reproduces
	Run   func(Config) *Table
}

// Registry lists every experiment, keyed by id.
var Registry = map[string]Experiment{
	"fig4a":    {"fig4a", "Figure 4a: latency inter-node Put", Fig4a},
	"fig4b":    {"fig4b", "Figure 4b: latency inter-node Get", Fig4b},
	"fig4c":    {"fig4c", "Figure 4c: latency intra-node Put/Get", Fig4c},
	"fig5a":    {"fig5a", "Figure 5a: communication/computation overlap", Fig5a},
	"fig5b":    {"fig5b", "Figure 5b: message rate inter-node", Fig5b},
	"fig5c":    {"fig5c", "Figure 5c: message rate intra-node", Fig5c},
	"fig6a":    {"fig6a", "Figure 6a: atomic operation performance", Fig6a},
	"fig6b":    {"fig6b", "Figure 6b: global synchronization latency", Fig6b},
	"fig6c":    {"fig6c", "Figure 6c: PSCW ring latency", Fig6c},
	"fig7a":    {"fig7a", "Figure 7a: hashtable inserts/s", Fig7a},
	"fig7b":    {"fig7b", "Figure 7b: dynamic sparse data exchange", Fig7b},
	"fig7c":    {"fig7c", "Figure 7c: 3D FFT performance", Fig7c},
	"fig8":     {"fig8", "Figure 8: MILC completion time", Fig8},
	"models":   {"models", "§3.1/§3.2: closed-form model constants", Models},
	"instr":    {"instr", "§2.3/§2.4: fast-path instruction counts", Instr},
	"memory":   {"memory", "§2.2: per-rank window memory", Memory},
	"ablation": {"ablation", "design-choice ablations (DESIGN.md §4)", Ablations},
	"pipeline": {"pipeline", "foMPI-NA producer/consumer: fence vs notified sync", Pipeline},
	"stencil":  {"stencil", "foMPI-NA pipelined halo exchange: fence vs notified", StencilNA},
}

// IDs returns the experiment ids in a stable order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config) (*Table, error) {
	e, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
	}
	return e.Run(cfg), nil
}
