package bench

import (
	"fompi/internal/core"
	"fompi/internal/mpi1"
	"fompi/internal/pgas"
	"fompi/internal/spmd"
	"fompi/internal/timing"
)

// Transport-layer display names, matching the paper's legends.
const (
	serFoMPI = "foMPI"
	serUPC   = "CrayUPC"
	serCAF   = "CrayCAF"
	serMPI22 = "CrayMPI22"
	serMPI1  = "CrayMPI1"
)

// maxSweepBytes is the top of the Figure 4/5 size sweep.
const maxSweepBytes = 256 << 10

// latencySweep measures the median put or get latency per message size for
// one one-sided layer: the paper's passive-target pattern (lock, op, flush).
type onesided interface {
	put(rank, off int, src []byte)
	get(dst []byte, rank, off int)
	flush()
	now() timing.Time
}

type fompiOS struct {
	w *core.Win
}

func (f fompiOS) put(rank, off int, src []byte) { f.w.Put(src, rank, off) }
func (f fompiOS) get(dst []byte, rank, off int) { f.w.Get(dst, rank, off) }
func (f fompiOS) flush()                        { f.w.Flush(1) }
func (f fompiOS) now() timing.Time              { return f.w.Proc().Now() }

type langOS struct {
	l *pgas.Lang
}

func (o langOS) put(rank, off int, src []byte) { o.l.Put(rank, off, src) }
func (o langOS) get(dst []byte, rank, off int) { o.l.Get(dst, rank, off) }
func (o langOS) flush()                        { o.l.Fence() }
func (o langOS) now() timing.Time              { return o.l.Now() }

// measureOS returns the median one-sided op latency per size at rank 0.
func measureOS(os onesided, sizes []int, reps int, isGet bool) map[int]timing.Time {
	out := map[int]timing.Time{}
	buf := make([]byte, maxSweepBytes)
	for _, sz := range sizes {
		var ts []timing.Time
		for r := 0; r < reps; r++ {
			t0 := os.now()
			if isGet {
				os.get(buf[:sz], 1, 0)
			} else {
				os.put(1, 0, buf[:sz])
			}
			os.flush()
			ts = append(ts, os.now()-t0)
		}
		out[sz] = Median(ts)
	}
	return out
}

// latencyFigure runs Figures 4a/4b (inter-node) or 4c (intra-node).
func latencyFigure(cfg Config, id, title string, intra bool, isGet bool) *Table {
	t := NewTable(id, title, "bytes", "latency_us",
		serFoMPI, serUPC, serCAF, serMPI22, serMPI1)
	sizes := Sizes(maxSweepBytes)
	rpn := 1
	if intra {
		rpn = 2
	}
	spmd.MustRun(spmd.Config{Ranks: 2, RanksPerNode: rpn}, func(p *spmd.Proc) {
		// foMPI: allocated window, exclusive lock, put/get + flush (§3.1).
		w, _ := core.Allocate(p, maxSweepBytes, core.Config{})
		var fo map[int]timing.Time
		if p.Rank() == 0 {
			w.Lock(core.LockExclusive, 1)
			fo = measureOS(fompiOS{w}, sizes, cfg.Reps, isGet)
			w.Unlock(1)
		}
		p.Barrier()
		w.Free()

		// PGAS layers: memput/memget + fence over their own profiles.
		res := map[string]map[int]timing.Time{}
		for _, lay := range []struct {
			name string
			dial func(*spmd.Proc, int) *pgas.Lang
		}{
			{serUPC, pgas.DialUPC}, {serCAF, pgas.DialCAF}, {serMPI22, pgas.DialMPI22},
		} {
			l := lay.dial(p, maxSweepBytes)
			if p.Rank() == 0 {
				res[lay.name] = measureOS(langOS{l}, sizes, cfg.Reps, isGet)
			}
			l.Free()
		}

		// MPI-1: ping-pong halved (message latency incl. synchronization).
		c := mpi1.Dial(p)
		m1 := map[int]timing.Time{}
		buf := make([]byte, maxSweepBytes)
		for _, sz := range sizes {
			var ts []timing.Time
			for r := 0; r < cfg.Reps; r++ {
				if p.Rank() == 0 {
					t0 := c.Now()
					c.Send(1, 1, buf[:sz])
					c.Recv(1, 2, buf[:sz])
					ts = append(ts, (c.Now()-t0)/2)
				} else {
					c.Recv(0, 1, buf[:sz])
					c.Send(0, 2, buf[:sz])
				}
			}
			if p.Rank() == 0 {
				m1[sz] = Median(ts)
			}
		}
		c.Barrier()

		if p.Rank() == 0 {
			for _, sz := range sizes {
				t.Set(float64(sz), serFoMPI, fo[sz].Micros())
				t.Set(float64(sz), serUPC, res[serUPC][sz].Micros())
				t.Set(float64(sz), serCAF, res[serCAF][sz].Micros())
				t.Set(float64(sz), serMPI22, res[serMPI22][sz].Micros())
				t.Set(float64(sz), serMPI1, m1[sz].Micros())
			}
		}
	})
	return t
}

// Fig4a is the inter-node put latency comparison.
func Fig4a(cfg Config) *Table {
	return latencyFigure(cfg, "fig4a", "Latency inter-node Put", false, false)
}

// Fig4b is the inter-node get latency comparison.
func Fig4b(cfg Config) *Table {
	return latencyFigure(cfg, "fig4b", "Latency inter-node Get", false, true)
}

// Fig4c is the intra-node put latency comparison (XPMEM path).
func Fig4c(cfg Config) *Table {
	return latencyFigure(cfg, "fig4c", "Latency intra-node Put/Get", true, false)
}

// Fig5a measures communication/computation overlap for inter-node puts: how
// much of the communication time disappears behind a calibrated compute
// loop placed between the put and its completion (§3.1.1).
func Fig5a(cfg Config) *Table {
	t := NewTable("fig5a", "Overlap inter-node", "bytes", "overlap_pct",
		serFoMPI, serUPC, serMPI22)
	sizes := Sizes(2 << 20)
	spmd.MustRun(spmd.Config{Ranks: 2, RanksPerNode: 1}, func(p *spmd.Proc) {
		type layer struct {
			name string
			os   onesided
			free func()
		}
		var layers []layer
		w, _ := core.Allocate(p, 2<<20, core.Config{})
		if p.Rank() == 0 {
			w.Lock(core.LockExclusive, 1)
		}
		layers = append(layers, layer{serFoMPI, fompiOS{w}, func() {
			if p.Rank() == 0 {
				w.Unlock(1)
			}
			p.Barrier()
			w.Free()
		}})
		for _, lay := range []struct {
			name string
			dial func(*spmd.Proc, int) *pgas.Lang
		}{{serUPC, pgas.DialUPC}, {serMPI22, pgas.DialMPI22}} {
			l := lay.dial(p, 2<<20)
			layers = append(layers, layer{lay.name, langOS{l}, l.Free})
		}
		buf := make([]byte, 2<<20)
		compute := func(ns timing.Time) { p.Compute(int64(ns)) }
		for _, lay := range layers {
			if p.Rank() == 0 {
				for _, sz := range sizes {
					var lats, combs []timing.Time
					for r := 0; r < cfg.Reps; r++ {
						t0 := lay.os.now()
						lay.os.put(1, 0, buf[:sz])
						lay.os.flush()
						lats = append(lats, lay.os.now()-t0)
					}
					lat := Median(lats)
					comp := lat + lat/10 // slightly more work than the latency
					for r := 0; r < cfg.Reps; r++ {
						t0 := lay.os.now()
						lay.os.put(1, 0, buf[:sz])
						compute(comp)
						lay.os.flush()
						combs = append(combs, lay.os.now()-t0)
					}
					comb := Median(combs)
					ov := float64(lat+comp-comb) / float64(lat) * 100
					if ov < 0 {
						ov = 0
					}
					if ov > 100 {
						ov = 100
					}
					t.Set(float64(sz), lay.name, ov)
				}
			}
			lay.free()
		}
	})
	return t
}

// messageRate runs Figures 5b/5c: the cost of starting one operation,
// measured by injecting bursts of puts without synchronization (§3.1.2).
func messageRate(cfg Config, id, title string, intra bool) *Table {
	t := NewTable(id, title, "bytes", "million_msgs_per_s",
		serFoMPI, serUPC, serCAF, serMPI22, serMPI1)
	sizes := Sizes(maxSweepBytes)
	const burst = 1000
	rpn := 1
	if intra {
		rpn = 2
	}
	spmd.MustRun(spmd.Config{Ranks: 2, RanksPerNode: rpn}, func(p *spmd.Proc) {
		buf := make([]byte, maxSweepBytes)
		rate := func(name string, put func(sz int)) {
			if p.Rank() != 0 {
				return
			}
			for _, sz := range sizes {
				t0 := p.Now()
				for i := 0; i < burst; i++ {
					put(sz)
				}
				el := p.Now() - t0
				if el > 0 {
					t.Set(float64(sz), name, 1e3*burst/float64(el))
				}
			}
		}

		w, _ := core.Allocate(p, maxSweepBytes, core.Config{})
		if p.Rank() == 0 {
			w.Lock(core.LockExclusive, 1)
			// The burst measures injection, but rate uses p.Now() from the
			// shared endpoint; puts are NBI so only issue overhead counts.
			rate(serFoMPI, func(sz int) { w.Put(buf[:sz], 1, 0) })
			w.FlushAll()
			w.Unlock(1)
		}
		p.Barrier()
		w.Free()

		for _, lay := range []struct {
			name string
			dial func(*spmd.Proc, int) *pgas.Lang
		}{
			{serUPC, pgas.DialUPC}, {serCAF, pgas.DialCAF}, {serMPI22, pgas.DialMPI22},
		} {
			l := lay.dial(p, maxSweepBytes)
			if p.Rank() == 0 {
				for _, sz := range sizes {
					t0 := l.Now()
					for i := 0; i < burst; i++ {
						l.Put(1, 0, buf[:sz])
					}
					el := l.Now() - t0
					if el > 0 {
						t.Set(float64(sz), lay.name, 1e3*burst/float64(el))
					}
				}
				l.Fence()
			}
			l.Free()
		}

		// MPI-1: bursts of nonblocking sends; the receiver drains afterward.
		c := mpi1.Dial(p)
		for _, sz := range sizes {
			if p.Rank() == 0 {
				t0 := c.Now()
				reqs := make([]*mpi1.Request, burst)
				for i := 0; i < burst; i++ {
					reqs[i] = c.Isend(1, 3, buf[:sz])
				}
				el := c.Now() - t0
				if el > 0 {
					t.Set(float64(sz), serMPI1, 1e3*burst/float64(el))
				}
				c.WaitAll(reqs)
			} else {
				for i := 0; i < burst; i++ {
					c.Recv(0, 3, buf[:sz])
				}
			}
			c.Barrier()
		}
	})
	return t
}

// Fig5b is the inter-node message-rate comparison.
func Fig5b(cfg Config) *Table {
	return messageRate(cfg, "fig5b", "Message Rate inter-node", false)
}

// Fig5c is the intra-node message-rate comparison.
func Fig5c(cfg Config) *Table {
	return messageRate(cfg, "fig5c", "Message Rate intra-node", true)
}

// Fig6a measures atomic accumulate latency versus element count: the
// DMAPP-accelerated MPI_SUM, the lock-fallback MPI_MIN, single-element CAS,
// and the Cray UPC aadd/CAS extensions (§3.1.3).
func Fig6a(cfg Config) *Table {
	t := NewTable("fig6a", "Atomic Operation Performance", "elements", "latency_us",
		"foMPI-SUM", "foMPI-MIN", "foMPI-CAS", "UPC-aadd", "UPC-CAS")
	var elems []int
	for e := 1; e <= 1<<15; e *= 4 {
		elems = append(elems, e)
	}
	spmd.MustRun(spmd.Config{Ranks: 2, RanksPerNode: 1}, func(p *spmd.Proc) {
		maxB := (1 << 15) * 8
		w, _ := core.Allocate(p, maxB, core.Config{})
		if p.Rank() == 0 {
			w.LockAll()
			src := make([]byte, maxB)
			for i := range src {
				src[i] = byte(i)
			}
			measure := func(name string, op func(n int)) {
				for _, e := range elems {
					var ts []timing.Time
					for r := 0; r < cfg.Reps; r++ {
						t0 := p.Now()
						op(e)
						w.Flush(1)
						ts = append(ts, p.Now()-t0)
					}
					t.Set(float64(e), name, Median(ts).Micros())
				}
			}
			measure("foMPI-SUM", func(n int) { w.Accumulate(core.AccSum, src[:n*8], 1, 0) })
			measure("foMPI-MIN", func(n int) { w.Accumulate(core.AccMin, src[:n*8], 1, 0) })
			// CAS operates on one element; the paper plots it flat.
			var ts []timing.Time
			for r := 0; r < cfg.Reps; r++ {
				t0 := p.Now()
				w.CompareAndSwap(uint64(r), uint64(r+1), 1, 0)
				ts = append(ts, p.Now()-t0)
			}
			t.Set(1, "foMPI-CAS", Median(ts).Micros())
			w.UnlockAll()
		}
		p.Barrier()
		w.Free()

		l := pgas.DialUPC(p, maxB)
		if p.Rank() == 0 {
			for _, e := range elems {
				var ts []timing.Time
				for r := 0; r < cfg.Reps; r++ {
					t0 := l.Now()
					for i := 0; i < e; i++ {
						l.Add(1, i*8, 1)
					}
					l.Fence()
					ts = append(ts, l.Now()-t0)
				}
				t.Set(float64(e), "UPC-aadd", Median(ts).Micros())
			}
			var ts []timing.Time
			for r := 0; r < cfg.Reps; r++ {
				t0 := l.Now()
				l.CompareSwap(1, 0, uint64(r), uint64(r+1))
				ts = append(ts, l.Now()-t0)
			}
			t.Set(1, "UPC-CAS", Median(ts).Micros())
		}
		l.Free()
	})
	return t
}
