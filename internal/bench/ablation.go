package bench

import (
	"fompi/internal/core"
	"fompi/internal/simnet"
	"fompi/internal/spmd"
	"fompi/internal/timing"
)

// Ablations quantifies the design choices DESIGN.md calls out, each as a
// this-design versus alternative pair measured on the same fabric:
//
//  1. Accumulate path: DMAPP-accelerated chained AMOs versus forcing the
//     lock-get-modify-put fallback (§2.4's space of choices) at a small and
//     a large element count — showing why foMPI dispatches per operation.
//  2. PSCW post: pipelined free-list fetch-adds (one round trip for all k
//     neighbors) versus issuing them serially.
//  3. Symmetric-heap addressing: allocated windows (O(1) state, no lookup)
//     versus traditional windows (Ω(p) descriptor table) on the put fast
//     path — the storage-versus-time trade of §2.2.
func Ablations(cfg Config) *Table {
	t := NewTable("ablation", "Design-choice ablations", "case", "per_row",
		"this_design_us", "alternative_us")
	row := 0.0
	add := func(name string, design, alt timing.Time) {
		t.XName(row, name)
		t.Set(row, "this_design_us", design.Micros())
		t.Set(row, "alternative_us", alt.Micros())
		row++
	}

	// 1. Accumulate dispatch: SUM (accelerated) vs MIN (the fallback path
	// executes the identical protocol the accelerated path avoids).
	spmd.MustRun(spmd.Config{Ranks: 2, RanksPerNode: 1}, func(p *spmd.Proc) {
		w, _ := core.Allocate(p, 1<<20, core.Config{})
		defer w.Free()
		if p.Rank() == 0 {
			w.LockAll()
			measure := func(op core.AccOp, elems int) timing.Time {
				src := make([]byte, elems*8)
				var ts []timing.Time
				for r := 0; r < cfg.Reps; r++ {
					t0 := p.Now()
					w.Accumulate(op, src, 1, 0)
					w.Flush(1)
					ts = append(ts, p.Now()-t0)
				}
				return Median(ts)
			}
			add("acc-1el (amo|lock)", measure(core.AccSum, 1), measure(core.AccMin, 1))
			add("acc-8Kel (amo|lock)", measure(core.AccSum, 8192), measure(core.AccMin, 8192))
			w.UnlockAll()
		}
		p.Barrier()
	})

	// 2. PSCW post: pipelined (the implementation) vs serial fetch-adds
	// (simulated by k dependent blocking AMOs plus the stores).
	spmd.MustRun(spmd.Config{Ranks: 8, RanksPerNode: 2}, func(p *spmd.Proc) {
		w, _ := core.Allocate(p, 64, core.Config{})
		defer w.Free()
		n := p.Size()
		group := ringGroup(p.Rank(), n)
		var piped, serial []timing.Time
		for r := 0; r < cfg.Reps; r++ {
			t0 := p.Now()
			w.Post(group)
			piped = append(piped, p.Now()-t0)
			w.Start(group)
			w.Complete()
			w.WaitEpoch()
			p.Barrier()
		}
		// Serial alternative over the raw endpoint against scratch space.
		ep := p.EP()
		reg := ep.Register(1 << 12)
		key := reg.Key()
		p.Barrier()
		for r := 0; r < cfg.Reps; r++ {
			t0 := p.Now()
			for i, j := range group {
				idx := ep.FetchAdd(simnet.Addr{Rank: j, Key: key, Off: 0}, 1)
				_ = idx
				ep.StoreW(simnet.Addr{Rank: j, Key: key, Off: 8 + (int(idx)%400+i)*8}, uint64(p.Rank())+1)
			}
			ep.Gsync()
			serial = append(serial, p.Now()-t0)
			p.Barrier()
		}
		if p.Rank() == 0 {
			add("pscw-post k=2 (piped|serial)", Median(piped), Median(serial))
		}
		p.Barrier()
	})

	// 3. Window addressing: allocated (symmetric) vs traditional (table).
	spmd.MustRun(spmd.Config{Ranks: 8, RanksPerNode: 2}, func(p *spmd.Proc) {
		wa, _ := core.Allocate(p, 4096, core.Config{})
		wc := core.Create(p, make([]byte, 4096), core.Config{})
		buf := make([]byte, 8)
		measure := func(w *core.Win) timing.Time {
			var ts []timing.Time
			if p.Rank() == 0 {
				w.Lock(core.LockExclusive, 1)
				for r := 0; r < cfg.Reps; r++ {
					t0 := p.Now()
					w.Put(buf, 1, 0)
					w.Flush(1)
					ts = append(ts, p.Now()-t0)
				}
				w.Unlock(1)
			}
			p.Barrier()
			return Median(ts)
		}
		da, dc := measure(wa), measure(wc)
		if p.Rank() == 0 {
			add("put8 (allocated|traditional)", da, dc)
		}
		wa.Free()
		wc.Free()
	})
	return t
}
