package bench

import (
	"fompi/internal/apps/stencil"
	"fompi/internal/core"
	"fompi/internal/spmd"
	"fompi/internal/timing"
)

// Notified-access experiments (foMPI-NA, DESIGN.md §7). Neither reproduces a
// figure of the SC'13 paper: they quantify the follow-on IPDPS'15 claim that
// a put-with-notification replaces the consumer's synchronization epoch with
// a single-word poll. Both run the fence-based baseline and the notified
// pipeline over the same fabric and transfer pattern, so the virtual-time
// gap is pure synchronization.

// pipeDepth is the notified pipeline's landing-slot count (and credit
// window): enough to cover the wire latency at every sweep size.
const pipeDepth = 4

// Pipeline streams messages from a producer rank to a consumer rank and
// reports virtual microseconds per message versus message size:
//
//   - fence: each message is published by a full MPI_Win_fence epoch and the
//     consumer's read is protected by a second fence — the only way the
//     SC'13 API can express the pattern without polling user data.
//   - notified: PutNotify into pipeDepth round-robin landing slots, tag-
//     matched WaitNotify at the consumer, credit Notify back to the
//     producer. No collective synchronization at all.
func Pipeline(cfg Config) *Table {
	t := NewTable("pipeline", "Producer/consumer streaming: fence vs notified",
		"bytes", "us_per_msg", "fence", "notified")
	sizes := Sizes(64 << 10)
	msgs := cfg.Reps
	if msgs < 2*pipeDepth {
		msgs = 2 * pipeDepth
	}
	for _, sz := range sizes {
		worst := map[string]timing.Time{}
		spmd.MustRun(spmd.Config{Ranks: 2, RanksPerNode: 1}, func(p *spmd.Proc) {
			src := make([]byte, sz)
			for i := range src {
				src[i] = byte(i)
			}

			// Fence-based baseline: one landing slot, two fences per message.
			w, _ := core.Allocate(p, sz, core.Config{})
			w.Fence()
			p.Barrier()
			t0 := p.Now()
			for m := 0; m < msgs; m++ {
				if p.Rank() == 0 {
					w.Put(src, 1, 0)
				}
				w.Fence() // message visible at the consumer
				w.Fence() // consumer done reading; slot reusable
			}
			el := timing.Time(p.Allreduce8(spmd.OpMax, uint64(p.Now()-t0)))
			if p.Rank() == 0 {
				worst["fence"] = el
			}
			p.Barrier()
			w.Free()

			// Notified pipeline: pipeDepth slots, tags cycle with the slot.
			wn, _ := core.Allocate(p, pipeDepth*sz, core.Config{})
			p.Barrier()
			t0 = p.Now()
			if p.Rank() == 0 {
				wn.LockAll()
				for m := 0; m < msgs; m++ {
					slot := m % pipeDepth
					if m >= pipeDepth {
						wn.WaitNotify(credTag(slot)) // slot recycled by the consumer
					}
					wn.PutNotify(src, 1, slot*sz, msgTag(slot))
				}
				wn.UnlockAll()
			} else {
				for m := 0; m < msgs; m++ {
					slot := m % pipeDepth
					wn.WaitNotify(msgTag(slot))
					wn.Notify(0, credTag(slot))
				}
			}
			el = timing.Time(p.Allreduce8(spmd.OpMax, uint64(p.Now()-t0)))
			if p.Rank() == 0 {
				worst["notified"] = el
			}
			p.Barrier()
			wn.Free()
		})
		for name, el := range worst {
			t.Set(float64(sz), name, el.Micros()/float64(msgs))
		}
	}
	return t
}

func msgTag(slot int) uint32  { return uint32(slot) }
func credTag(slot int) uint32 { return uint32(100 + slot) }

// StencilNA runs the pipelined halo-exchange stencil at increasing rank
// counts and reports virtual microseconds per Jacobi sweep for the
// double-fence baseline versus the notified pipeline. The checksums of both
// variants are verified against a sequential reference solve every run.
func StencilNA(cfg Config) *Table {
	t := NewTable("stencil", "Pipelined halo exchange: fence vs notified",
		"ranks", "us_per_iter", "fence", "notified")
	prm := stencil.Params{NX: 64, NY: 32, Iters: 10, Seed: cfg.Seed}
	for _, n := range PSweep(cfg.MaxP) {
		res := map[string]timing.Time{}
		spmd.MustRun(spmd.Config{Ranks: n, RanksPerNode: 4}, func(p *spmd.Proc) {
			fence := stencil.RunFence(p, prm)
			wf := timing.Time(p.Allreduce8(spmd.OpMax, uint64(fence.Elapsed)))
			notif := stencil.RunNotify(p, prm)
			wn := timing.Time(p.Allreduce8(spmd.OpMax, uint64(notif.Elapsed)))
			stencil.Verify(fence, notif, stencil.RunReference(p, prm))
			p.Barrier()
			if p.Rank() == 0 {
				res["fence"] = wf
				res["notified"] = wn
			}
		})
		for name, el := range res {
			t.Set(float64(n), name, el.Micros()/float64(prm.Iters))
		}
	}
	return t
}
