package bench

import (
	"fompi/internal/apps/stencil"
	"fompi/internal/core"
	"fompi/internal/spmd"
	"fompi/internal/timing"
)

// Notified-access experiments (foMPI-NA, DESIGN.md §7). Neither reproduces a
// figure of the SC'13 paper: they quantify the follow-on IPDPS'15 claim that
// a put-with-notification replaces the consumer's synchronization epoch with
// a single-word poll. Both run the fence-based baseline and the notified
// pipeline over the same fabric and transfer pattern, so the virtual-time
// gap is pure synchronization.

// pipeDepth is the notified pipeline's landing-slot count (and credit
// window): enough to cover the wire latency at every sweep size.
const pipeDepth = 4

// Pipeline streams messages from a producer rank to a consumer rank and
// reports virtual microseconds per message versus message size:
//
//   - fence: each message is published by a full MPI_Win_fence epoch and the
//     consumer's read is protected by a second fence — the only way the
//     SC'13 API can express the pattern without polling user data.
//   - notified: PutNotify into pipeDepth round-robin landing slots, tag-
//     matched WaitNotify at the consumer, credit Notify back to the
//     producer. No collective synchronization at all.
func Pipeline(cfg Config) *Table {
	t := NewTable("pipeline", "Producer/consumer streaming: fence vs notified",
		"bytes", "us_per_msg", "fence", "notified")
	const maxSz = 64 << 10
	sizes := Sizes(maxSz)
	msgs := cfg.Reps
	if msgs < 2*pipeDepth {
		msgs = 2 * pipeDepth
	}
	// One world and one window pair serve the whole size sweep (landing
	// slots are spaced maxSz apart, so every size fits): worlds — and their
	// pooled per-rank scratch — are not re-created per sweep point.
	worst := map[int]map[string]timing.Time{}
	spmd.MustRun(spmd.Config{Ranks: 2, RanksPerNode: 1}, func(p *spmd.Proc) {
		src := make([]byte, maxSz)
		for i := range src {
			src[i] = byte(i)
		}
		w, _ := core.Allocate(p, maxSz, core.Config{})
		wn, _ := core.Allocate(p, pipeDepth*maxSz, core.Config{})
		for _, sz := range sizes {
			// Fence-based baseline: one landing slot, two fences per message.
			w.Fence()
			p.Barrier()
			t0 := p.Now()
			for m := 0; m < msgs; m++ {
				if p.Rank() == 0 {
					w.Put(src[:sz], 1, 0)
				}
				w.Fence() // message visible at the consumer
				w.Fence() // consumer done reading; slot reusable
			}
			el := timing.Time(p.Allreduce8(spmd.OpMax, uint64(p.Now()-t0)))
			if p.Rank() == 0 {
				worst[sz] = map[string]timing.Time{"fence": el}
			}
			p.Barrier()

			// Notified pipeline: pipeDepth slots, tags cycle with the slot.
			p.Barrier()
			t0 = p.Now()
			if p.Rank() == 0 {
				wn.LockAll()
				for m := 0; m < msgs; m++ {
					slot := m % pipeDepth
					if m >= pipeDepth {
						wn.WaitNotify(credTag(slot)) // slot recycled by the consumer
					}
					wn.PutNotify(src[:sz], 1, slot*maxSz, msgTag(slot))
				}
				wn.UnlockAll()
			} else {
				for m := 0; m < msgs; m++ {
					slot := m % pipeDepth
					wn.WaitNotify(msgTag(slot))
					wn.Notify(0, credTag(slot))
				}
			}
			el = timing.Time(p.Allreduce8(spmd.OpMax, uint64(p.Now()-t0)))
			if p.Rank() == 0 {
				worst[sz]["notified"] = el
			}
			// Drain the pipeDepth credits the producer never waited for
			// (outside the timed section — the per-size window used to be
			// freed here, discarding them): leftovers would widen the next
			// size's credit window and creep toward the ring's fault limit.
			if p.Rank() == 0 {
				for slot := 0; slot < pipeDepth; slot++ {
					wn.WaitNotify(credTag(slot))
				}
			}
			p.Barrier()
		}
		w.Free()
		wn.Free()
	})
	for sz, byName := range worst {
		for name, el := range byName {
			t.Set(float64(sz), name, el.Micros()/float64(msgs))
		}
	}
	return t
}

func msgTag(slot int) uint32  { return uint32(slot) }
func credTag(slot int) uint32 { return uint32(100 + slot) }

// StencilNA runs the pipelined halo-exchange stencil at increasing rank
// counts and reports virtual microseconds per Jacobi sweep for the
// double-fence baseline versus the notified pipeline. The checksums of both
// variants are verified against a sequential reference solve every run.
func StencilNA(cfg Config) *Table {
	t := NewTable("stencil", "Pipelined halo exchange: fence vs notified",
		"ranks", "us_per_iter", "fence", "notified")
	prm := stencil.Params{NX: 64, NY: 32, Iters: 10, Seed: cfg.Seed}
	for _, n := range PSweep(cfg.MaxP) {
		res := map[string]timing.Time{}
		spmd.MustRun(spmd.Config{Ranks: n, RanksPerNode: 4}, func(p *spmd.Proc) {
			fence := stencil.RunFence(p, prm)
			wf := timing.Time(p.Allreduce8(spmd.OpMax, uint64(fence.Elapsed)))
			notif := stencil.RunNotify(p, prm)
			wn := timing.Time(p.Allreduce8(spmd.OpMax, uint64(notif.Elapsed)))
			stencil.Verify(fence, notif, stencil.RunReference(p, prm))
			p.Barrier()
			if p.Rank() == 0 {
				res["fence"] = wf
				res["notified"] = wn
			}
		})
		for name, el := range res {
			t.Set(float64(n), name, el.Micros()/float64(prm.Iters))
		}
	}
	return t
}
