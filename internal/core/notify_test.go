package core

import (
	"bytes"
	"testing"

	"fompi/internal/spmd"
	"fompi/internal/timing"
)

func TestPutNotifyDeliversDataAndTag(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		w, mem := Allocate(p, 256, Config{})
		defer w.Free()
		if p.Rank() == 0 {
			w.LockAll()
			w.PutNotify([]byte("pipelined!"), 1, 32, 5)
			w.UnlockAll()
			return
		}
		seq := w.WaitNotify(5)
		if seq != 1 {
			t.Errorf("first notification sequence = %d, want 1", seq)
		}
		// The data must be visible (and causally stamped) after the wait.
		if !bytes.Equal(mem[32:42], []byte("pipelined!")) {
			t.Errorf("data not visible after WaitNotify: %q", mem[32:42])
		}
	})
}

func TestWaitNotifyMergesDataTime(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		w, _ := Allocate(p, 1<<20, Config{})
		defer w.Free()
		if p.Rank() == 0 {
			w.LockAll()
			w.PutNotify(make([]byte, 1<<20), 1, 0, 1)
			w.UnlockAll()
			return
		}
		w.WaitNotify(1)
		// A 1 MiB transfer takes ≥ size/bandwidth virtual time; the consumer
		// clock must reflect it even though it never synchronized an epoch.
		min := timing.Time((1 << 20) / 10) // 0.1 ns/B, well below the model's 0.16
		if p.Now() < min {
			t.Errorf("consumer clock %d ns too low for a 1 MiB notified put (want ≥ %d)", p.Now(), min)
		}
	})
}

func TestGetNotifyNotifiesTarget(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		w, mem := Allocate(p, 64, Config{})
		defer w.Free()
		if p.Rank() == 1 {
			copy(mem, "consume!")
			p.Barrier()
			w.WaitNotify(3) // learn the reader is done; buffer reusable
			return
		}
		p.Barrier()
		dst := make([]byte, 8)
		w.Lock(LockShared, 1)
		w.GetNotify(dst, 1, 0, 3)
		w.Unlock(1)
		if !bytes.Equal(dst, []byte("consume!")) {
			t.Errorf("GetNotify data = %q", dst)
		}
	})
}

func TestTestNotifyNonblocking(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		w, _ := Allocate(p, 64, Config{})
		defer w.Free()
		if p.Rank() == 0 {
			// Nothing can have been sent yet: the producer blocks on the
			// barrier below before notifying.
			if _, ok := w.TestNotify(9); ok {
				t.Error("TestNotify before any send must fail")
			}
			p.Barrier()
			for {
				if seq, ok := w.TestNotify(9); ok {
					if seq != 1 {
						t.Errorf("seq = %d, want 1", seq)
					}
					break
				}
			}
			return
		}
		p.Barrier()
		w.LockAll()
		w.Notify(0, 9)
		w.UnlockAll()
	})
}

func TestNotifyTagMatchingOutOfOrder(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		w, _ := Allocate(p, 64, Config{})
		defer w.Free()
		if p.Rank() == 0 {
			w.Notify(1, 10)
			w.Notify(1, 20)
			w.Notify(1, 30)
			return
		}
		// Consume in reverse tag order: matching is by tag, not arrival.
		if seq := w.WaitNotify(30); seq != 3 {
			t.Errorf("tag 30 seq = %d, want 3", seq)
		}
		if seq := w.WaitNotify(20); seq != 2 {
			t.Errorf("tag 20 seq = %d, want 2", seq)
		}
		if seq := w.WaitNotify(10); seq != 1 {
			t.Errorf("tag 10 seq = %d, want 1", seq)
		}
		if w.PendingNotify() != 0 {
			t.Errorf("pending = %d after consuming all", w.PendingNotify())
		}
	})
}

func TestNotifySameTagFIFO(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		w, _ := Allocate(p, 64, Config{})
		defer w.Free()
		if p.Rank() == 0 {
			for i := 0; i < 5; i++ {
				w.Notify(1, 7)
			}
			return
		}
		for i := 1; i <= 5; i++ {
			if seq := w.WaitNotify(7); int(seq) != i {
				t.Fatalf("same-tag delivery out of order: seq %d, want %d", seq, i)
			}
		}
	})
}

func TestNotifyConcurrentProducersToOneConsumer(t *testing.T) {
	const producers = 7
	run(t, producers+1, 4, func(p *spmd.Proc) {
		w, _ := Allocate(p, 64, Config{MaxNotify: 512})
		defer w.Free()
		const each = 16
		if p.Rank() < producers {
			for i := 0; i < each; i++ {
				w.Notify(producers, uint32(p.Rank()+1))
			}
			p.Barrier()
			return
		}
		// Per-producer FIFO: sequences per tag must come out 1..each.
		for i := 1; i <= each; i++ {
			for pr := 0; pr < producers; pr++ {
				if seq := w.WaitNotify(uint32(pr + 1)); int(seq) != i {
					t.Fatalf("producer %d notification %d carried seq %d", pr, i, seq)
				}
			}
		}
		p.Barrier()
	})
}

func TestNotifyMonotoneVirtualTime(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		w, _ := Allocate(p, 1024, Config{})
		defer w.Free()
		if p.Rank() == 0 {
			w.LockAll()
			for i := 0; i < 10; i++ {
				w.PutNotify(make([]byte, 64), 1, 0, uint32(i))
			}
			w.UnlockAll()
			return
		}
		var prev timing.Time
		for i := 0; i < 10; i++ {
			w.WaitNotify(uint32(i))
			if p.Now() < prev {
				t.Fatalf("consumer clock regressed: %d after %d", p.Now(), prev)
			}
			prev = p.Now()
		}
	})
}

func TestNotifyRingOverflowFaultsLoudly(t *testing.T) {
	err := spmd.Run(spmd.Config{Ranks: 2}, func(p *spmd.Proc) {
		w, _ := Allocate(p, 64, Config{MaxNotify: 4})
		if p.Rank() == 0 {
			for i := 0; i < 8; i++ { // consumer never pops: 5th must fault
				w.Notify(1, 1)
			}
		}
		p.Barrier()
	})
	if err == nil {
		t.Fatal("overflowing a MaxNotify=4 ring must abort the world")
	}
}

func TestNotifyMatchingListOverflowFaults(t *testing.T) {
	err := spmd.Run(spmd.Config{Ranks: 2}, func(p *spmd.Proc) {
		w, _ := Allocate(p, 64, Config{MaxNotify: 4})
		if p.Rank() == 0 {
			for round := 0; round < 3; round++ {
				for i := 0; i < 4; i++ {
					w.Notify(1, 1) // tag 1, never consumed
				}
				p.Barrier() // let the consumer drain the ring
				p.Barrier()
			}
			return
		}
		for round := 0; round < 3; round++ {
			p.Barrier()
			// Drain into the unmatched list looking for a tag that never
			// arrives; after MaxNotify unmatched entries this must fault.
			w.TestNotify(2)
			p.Barrier()
		}
	})
	if err == nil {
		t.Fatal("unbounded unmatched-list growth must fault")
	}
}

func TestNotifyFullRingOfMatchingTagDoesNotFault(t *testing.T) {
	// A consumer keeping up with the tag it waits for must not trip the
	// matching-list bound on entries it is about to consume, even with a
	// stale unmatched notification parked and the ring exactly full.
	run(t, 2, 1, func(p *spmd.Proc) {
		w, _ := Allocate(p, 64, Config{MaxNotify: 4})
		defer w.Free()
		if p.Rank() == 0 {
			w.Notify(1, 1) // the stale tag, parked by the consumer's probe
			p.Barrier()
			p.Barrier()
			for i := 0; i < 4; i++ { // fills the capacity-4 ring
				w.Notify(1, 2)
			}
			p.Barrier()
			return
		}
		p.Barrier()
		if _, ok := w.TestNotify(3); ok { // parks the tag-1 entry unmatched
			t.Error("tag 3 was never sent")
		}
		p.Barrier()
		p.Barrier() // all four tag-2 notifications are now delivered
		for i := 1; i <= 4; i++ {
			if seq := w.WaitNotify(2); int(seq) != i+1 {
				t.Errorf("tag 2 match %d: seq %d, want %d", i, seq, i+1)
			}
		}
		if seq := w.WaitNotify(1); seq != 1 {
			t.Errorf("stale tag 1 seq = %d, want 1", seq)
		}
	})
}

func TestNotifyTagTooLargeFaults(t *testing.T) {
	err := spmd.Run(spmd.Config{Ranks: 2}, func(p *spmd.Proc) {
		w, _ := Allocate(p, 64, Config{})
		if p.Rank() == 0 {
			w.Notify(1, 1<<31)
		}
		p.Barrier()
	})
	if err == nil {
		t.Fatal("32-bit tag beyond 31 bits must fault")
	}
}

func TestPutNotifyRequiresEpoch(t *testing.T) {
	err := spmd.Run(spmd.Config{Ranks: 2}, func(p *spmd.Proc) {
		w, _ := Allocate(p, 64, Config{})
		if p.Rank() == 0 {
			w.PutNotify(make([]byte, 8), 1, 0, 1) // no epoch open
		}
		p.Barrier()
	})
	if err == nil {
		t.Fatal("PutNotify outside an access epoch must fault")
	}
}

func TestNotifyFootprintIncludesRing(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		small, _ := Allocate(p, 64, Config{MaxPosts: 64, MaxNotify: 8})
		big, _ := Allocate(p, 64, Config{MaxPosts: 64, MaxNotify: 512})
		if d := big.MemoryFootprint() - small.MemoryFootprint(); d != (512-8)*8 {
			t.Errorf("footprint delta = %d, want %d", d, (512-8)*8)
		}
		small.Free()
		big.Free()
	})
}
