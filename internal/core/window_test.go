package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"fompi/internal/spmd"
)

// run is the package test harness: n ranks, rpn ranks per node.
func run(t *testing.T, n, rpn int, body func(p *spmd.Proc)) {
	t.Helper()
	if err := spmd.Run(spmd.Config{Ranks: n, RanksPerNode: rpn}, body); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateFencePutGet(t *testing.T) {
	run(t, 4, 2, func(p *spmd.Proc) {
		w, mem := Allocate(p, 1024, Config{})
		defer w.Free()
		for i := range mem {
			mem[i] = byte(p.Rank())
		}
		w.Fence()
		right := (p.Rank() + 1) % p.Size()
		msg := make([]byte, 64)
		for i := range msg {
			msg[i] = byte(p.Rank() + 100)
		}
		w.Put(msg, right, 128)
		w.Fence()
		left := (p.Rank() - 1 + p.Size()) % p.Size()
		for i := 0; i < 64; i++ {
			if mem[128+i] != byte(left+100) {
				t.Errorf("rank %d byte %d: got %d want %d", p.Rank(), i, mem[128+i], left+100)
				break
			}
		}
		got := make([]byte, 64)
		w.Get(got, left, 128)
		w.Fence()
		prev := (left - 1 + p.Size()) % p.Size()
		for i := range got {
			if got[i] != byte(prev+100) {
				t.Errorf("get: rank %d byte %d: got %d want %d", p.Rank(), i, got[i], prev+100)
				break
			}
		}
	})
}

func TestCreateTraditionalWindow(t *testing.T) {
	run(t, 3, 1, func(p *spmd.Proc) {
		// Different sizes per rank: the reason Create needs Ω(p) state.
		buf := make([]byte, 256*(p.Rank()+1))
		w := Create(p, buf, Config{})
		defer w.Free()
		w.Fence()
		if p.Rank() == 0 {
			w.Put([]byte("to-rank-2"), 2, 512) // only fits in rank 2's window
		}
		w.Fence()
		if p.Rank() == 2 && !bytes.Equal(buf[512:521], []byte("to-rank-2")) {
			t.Errorf("traditional window put missing: %q", buf[512:521])
		}
	})
}

func TestCreateWindowBoundsPerRank(t *testing.T) {
	err := spmd.Run(spmd.Config{Ranks: 2}, func(p *spmd.Proc) {
		w := Create(p, make([]byte, 128*(p.Rank()+1)), Config{})
		w.Fence()
		if p.Rank() == 1 {
			w.Put(make([]byte, 8), 0, 200) // rank 0 has only 128 bytes
		}
		w.Fence()
	})
	if err == nil {
		t.Fatal("out-of-bounds access to a smaller peer window must fault")
	}
}

func TestMemoryFootprintScaling(t *testing.T) {
	// Allocated windows: O(1) per-rank state. Traditional: Ω(p).
	foot := func(n int, traditional bool) int {
		var got int
		run(t, n, 4, func(p *spmd.Proc) {
			var w *Win
			if traditional {
				w = Create(p, make([]byte, 64), Config{MaxPosts: 64})
			} else {
				w, _ = Allocate(p, 64, Config{MaxPosts: 64})
			}
			if p.Rank() == 0 {
				got = w.MemoryFootprint()
			}
			w.Free()
		})
		return got
	}
	if a, b := foot(4, false), foot(32, false); a != b {
		t.Errorf("allocated window footprint grew with p: %d -> %d", a, b)
	}
	if a, b := foot(4, true), foot(32, true); b <= a {
		t.Errorf("traditional window footprint did not grow with p: %d -> %d", a, b)
	}
}

func TestSharedWindowDirectAccess(t *testing.T) {
	run(t, 4, 4, func(p *spmd.Proc) {
		w, mem := AllocateShared(p, 64, Config{})
		defer w.Free()
		binary.LittleEndian.PutUint64(mem, uint64(p.Rank()+1)*11)
		w.Fence()
		peer := (p.Rank() + 1) % 4
		s := w.SharedSlice(peer)
		if got := binary.LittleEndian.Uint64(s); got != uint64(peer+1)*11 {
			t.Errorf("shared slice of rank %d = %d", peer, got)
		}
	})
}

func TestSharedWindowRequiresOneNode(t *testing.T) {
	err := spmd.Run(spmd.Config{Ranks: 4, RanksPerNode: 2}, func(p *spmd.Proc) {
		AllocateShared(p, 64, Config{})
	})
	if err == nil {
		t.Fatal("AllocateShared across nodes must fail")
	}
}

func TestDynamicWindowAttachAccess(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		w := CreateDynamic(p, Config{})
		var slot int
		buf := make([]byte, 256)
		if p.Rank() == 1 {
			slot = w.Attach(buf)
		}
		p.Barrier()
		if p.Rank() == 0 {
			w.Lock(LockShared, 1)
			w.PutDyn([]byte("dynamic!"), 1, 0, 16)
			w.Unlock(1)
		}
		p.Barrier()
		if p.Rank() == 1 {
			if !bytes.Equal(buf[16:24], []byte("dynamic!")) {
				t.Errorf("dynamic put missing: %q", buf[16:24])
			}
			w.Detach(slot)
		}
		p.Barrier()
	})
}

func TestDynamicWindowCacheInvalidation(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		w := CreateDynamic(p, Config{})
		bufA := make([]byte, 64)
		bufB := make([]byte, 64)
		if p.Rank() == 1 {
			s := w.Attach(bufA)
			p.Barrier()
			p.Barrier() // rank 0 reads via slot 0 (caches table)
			w.Detach(s)
			w.Attach(bufB) // reuses slot 0 with a new region
			p.Barrier()
			p.Barrier()
			if !bytes.Equal(bufB[:5], []byte("fresh")) {
				t.Errorf("second attach missed write: %q", bufB[:5])
			}
			if bytes.Contains(bufA, []byte("fresh")) {
				t.Error("write went to the detached region")
			}
			return
		}
		p.Barrier()
		w.Lock(LockShared, 1)
		w.PutDyn([]byte("first"), 1, 0, 0)
		w.Unlock(1)
		p.Barrier()
		p.Barrier() // target swapped regions; id counter must invalidate cache
		w.Lock(LockShared, 1)
		w.PutDyn([]byte("fresh"), 1, 0, 0)
		w.Unlock(1)
		p.Barrier()
	})
}

func TestDynamicDetachedAccessFaults(t *testing.T) {
	err := spmd.Run(spmd.Config{Ranks: 2}, func(p *spmd.Proc) {
		w := CreateDynamic(p, Config{})
		if p.Rank() == 1 {
			w.Attach(make([]byte, 64))
			p.Barrier()
			p.Barrier()
			return
		}
		p.Barrier()
		w.Lock(LockShared, 1)
		w.PutDyn(make([]byte, 8), 1, 3, 0) // slot 3 never attached
		w.Unlock(1)
		p.Barrier()
	})
	if err == nil {
		t.Fatal("access to unattached slot must fault")
	}
}

func TestCommunicationOutsideEpochFaults(t *testing.T) {
	err := spmd.Run(spmd.Config{Ranks: 2}, func(p *spmd.Proc) {
		w, _ := Allocate(p, 64, Config{})
		w.Put(make([]byte, 8), (p.Rank()+1)%2, 0) // no epoch open
	})
	if err == nil {
		t.Fatal("communication outside an epoch must fault")
	}
}

func TestWindowFreeIsCollective(t *testing.T) {
	run(t, 4, 2, func(p *spmd.Proc) {
		w, _ := Allocate(p, 64, Config{})
		w.Fence()
		w.Fence()
		w.Free()
	})
}

func TestMultipleWindowsCoexist(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		w1, m1 := Allocate(p, 64, Config{})
		w2, m2 := Allocate(p, 64, Config{})
		w1.Fence()
		w2.Fence()
		peer := (p.Rank() + 1) % 2
		w1.Put([]byte{1, 1, 1, 1, 1, 1, 1, 1}, peer, 0)
		w2.Put([]byte{2, 2, 2, 2, 2, 2, 2, 2}, peer, 0)
		w1.Fence()
		w2.Fence()
		if m1[0] != 1 || m2[0] != 2 {
			t.Errorf("window isolation violated: %d %d", m1[0], m2[0])
		}
		w1.Free()
		w2.Free()
	})
}
