package core

import (
	"fompi/internal/datatype"
)

// Derived-datatype communication (§2.4 "Handling Datatypes"): origin and
// target layouts are flattened into their minimal contiguous block lists
// (the MPITypes substitute in internal/datatype) and the transfer is split
// into the smallest number of contiguous fabric operations covering both.

// splitPairs walks two block lists of equal total size and calls f for each
// maximal contiguous (originOff, targetOff, len) piece.
func splitPairs(origin, target []datatype.Block, f func(oOff, tOff, n int)) {
	oi, ti := 0, 0
	oPos, tPos := 0, 0 // bytes consumed within the current blocks
	for oi < len(origin) && ti < len(target) {
		oRem := origin[oi].Len - oPos
		tRem := target[ti].Len - tPos
		n := oRem
		if tRem < n {
			n = tRem
		}
		f(origin[oi].Off+oPos, target[ti].Off+tPos, n)
		oPos += n
		tPos += n
		if oPos == origin[oi].Len {
			oi, oPos = oi+1, 0
		}
		if tPos == target[ti].Len {
			ti, tPos = ti+1, 0
		}
	}
}

func totalSize(d *datatype.Datatype, count int) int { return d.Size() * count }

// PutD transfers originCount elements of originType from origin into the
// target window laid out as targetCount elements of targetType starting at
// displacement targetDisp (MPI_Put with derived datatypes). One fabric put
// is issued per contiguous block pair.
func (w *Win) PutD(origin []byte, originType *datatype.Datatype, originCount int,
	target, targetDisp int, targetType *datatype.Datatype, targetCount int) {
	w.checkEpochAccess()
	if totalSize(originType, originCount) != totalSize(targetType, targetCount) {
		panic("core: PutD type signatures disagree on total size")
	}
	// Contiguous×contiguous keeps the 173-instruction fast path.
	if originType.Contig() && targetType.Contig() {
		w.Put(origin[:totalSize(originType, originCount)], target, targetDisp+0)
		return
	}
	w.ep.Steps(stepsPutGet)
	ob := datatype.Flatten(originType, originCount, 0)
	tb := datatype.Flatten(targetType, targetCount, targetDisp*w.cfg.DispUnit)
	splitPairs(ob, tb, func(oOff, tOff, n int) {
		w.ep.PutNBI(w.addrOf(target, 0, 0).Add(tOff), origin[oOff:oOff+n])
	})
}

// GetD transfers from the target window into origin with derived datatypes
// on both sides (MPI_Get).
func (w *Win) GetD(origin []byte, originType *datatype.Datatype, originCount int,
	target, targetDisp int, targetType *datatype.Datatype, targetCount int) {
	w.checkEpochAccess()
	if totalSize(originType, originCount) != totalSize(targetType, targetCount) {
		panic("core: GetD type signatures disagree on total size")
	}
	if originType.Contig() && targetType.Contig() {
		w.Get(origin[:totalSize(originType, originCount)], target, targetDisp)
		return
	}
	w.ep.Steps(stepsPutGet)
	ob := datatype.Flatten(originType, originCount, 0)
	tb := datatype.Flatten(targetType, targetCount, targetDisp*w.cfg.DispUnit)
	splitPairs(ob, tb, func(oOff, tOff, n int) {
		w.ep.GetNBI(origin[oOff:oOff+n], w.addrOf(target, 0, 0).Add(tOff))
	})
}
