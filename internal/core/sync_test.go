package core

import (
	"encoding/binary"
	"math/rand"
	"sync/atomic"
	"testing"

	"fompi/internal/spmd"
)

func TestPSCWRing(t *testing.T) {
	// The Fig. 6c pattern: a ring where every rank exposes to and accesses
	// its two neighbors (k=2).
	for _, n := range []int{2, 3, 4, 8, 16} {
		run(t, n, 4, func(p *spmd.Proc) {
			w, mem := Allocate(p, 64, Config{})
			defer w.Free()
			left := (p.Rank() - 1 + n) % n
			right := (p.Rank() + 1) % n
			group := []int{left, right}
			if n == 2 {
				group = []int{left} // left == right
			}
			for iter := 0; iter < 5; iter++ {
				w.Post(group)
				w.Start(group)
				var v [8]byte
				binary.LittleEndian.PutUint64(v[:], uint64(p.Rank()*1000+iter))
				w.Put(v[:], left, 0)
				w.Put(v[:], right, 8)
				w.Complete()
				w.WaitEpoch()
				gotR := binary.LittleEndian.Uint64(mem[0:])
				gotL := binary.LittleEndian.Uint64(mem[8:])
				if gotR != uint64(right*1000+iter) {
					t.Errorf("n=%d iter %d rank %d: from right %d", n, iter, p.Rank(), gotR)
				}
				if gotL != uint64(left*1000+iter) {
					t.Errorf("n=%d iter %d rank %d: from left %d", n, iter, p.Rank(), gotL)
				}
			}
		})
	}
}

func TestPSCWStartBlocksUntilPost(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		w, mem := Allocate(p, 64, Config{})
		defer w.Free()
		if p.Rank() == 1 {
			p.Compute(800_000) // post arrives at t≈800µs
			w.Post([]int{0})
			w.WaitEpoch()
			if binary.LittleEndian.Uint64(mem) != 42 {
				t.Error("data missing after wait")
			}
			return
		}
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], 42)
		w.Start([]int{1})
		if p.Now().Micros() < 800 {
			t.Errorf("start returned at %.1fµs, before the matching post", p.Now().Micros())
		}
		w.Put(v[:], 1, 0)
		w.Complete()
	})
}

func TestPSCWWaitBlocksUntilComplete(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		w, _ := Allocate(p, 64, Config{})
		defer w.Free()
		if p.Rank() == 0 {
			w.Post([]int{1})
			w.WaitEpoch()
			if p.Now().Micros() < 500 {
				t.Errorf("wait returned at %.1fµs before complete", p.Now().Micros())
			}
			return
		}
		w.Start([]int{0})
		p.Compute(500_000)
		w.Complete()
	})
}

func TestPSCWTwoDistinctMatches(t *testing.T) {
	// The paper's Fig. 2a program: process 0 matches {1,2} then {3}.
	run(t, 4, 2, func(p *spmd.Proc) {
		w, mem := Allocate(p, 64, Config{})
		defer w.Free()
		switch p.Rank() {
		case 0:
			w.Start([]int{1, 2})
			w.Put([]byte{1, 0, 0, 0, 0, 0, 0, 1}, 1, 0)
			w.Put([]byte{2, 0, 0, 0, 0, 0, 0, 2}, 2, 0)
			w.Complete()
			w.Start([]int{3})
			w.Put([]byte{3, 0, 0, 0, 0, 0, 0, 3}, 3, 0)
			w.Complete()
		case 1, 2:
			w.Post([]int{0})
			w.WaitEpoch()
			if mem[0] != byte(p.Rank()) {
				t.Errorf("rank %d got %d", p.Rank(), mem[0])
			}
		case 3:
			w.Post([]int{0})
			w.WaitEpoch()
			if mem[0] != 3 {
				t.Errorf("rank 3 got %d", mem[0])
			}
		}
	})
}

func TestPSCWTestEpoch(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		w, _ := Allocate(p, 64, Config{})
		defer w.Free()
		if p.Rank() == 0 {
			w.Post([]int{1})
			for !w.TestEpoch() {
			}
			return
		}
		w.Start([]int{0})
		w.Complete()
	})
}

func TestFenceOrdersEpochs(t *testing.T) {
	run(t, 4, 1, func(p *spmd.Proc) {
		w, mem := Allocate(p, 8, Config{})
		defer w.Free()
		w.Fence()
		for iter := 0; iter < 10; iter++ {
			var v [8]byte
			binary.LittleEndian.PutUint64(v[:], uint64(iter)<<8|uint64(p.Rank()))
			w.Put(v[:], (p.Rank()+1)%4, 0)
			w.Fence()
			got := binary.LittleEndian.Uint64(mem)
			if int(got>>8) != iter || int(got&0xff) != (p.Rank()+3)%4 {
				t.Errorf("iter %d rank %d: got %#x", iter, p.Rank(), got)
			}
			w.Fence()
		}
	})
}

func TestLockSharedExclusiveExclusion(t *testing.T) {
	// Property: no reader may observe the counter mid-update by a writer.
	const n, iters = 8, 50
	run(t, n, 4, func(p *spmd.Proc) {
		w, mem := Allocate(p, 16, Config{})
		defer w.Free()
		w.Fence()
		rng := rand.New(rand.NewSource(int64(p.Rank())))
		for i := 0; i < iters; i++ {
			if rng.Intn(2) == 0 { // writer: keep the two words equal
				w.Lock(LockExclusive, 0)
				var a, b [8]byte
				w.Get(a[:], 0, 0)
				w.Flush(0)
				v := binary.LittleEndian.Uint64(a[:]) + 1
				binary.LittleEndian.PutUint64(b[:], v)
				w.Put(b[:], 0, 0)
				w.Flush(0)
				w.Put(b[:], 0, 8)
				w.Unlock(0)
			} else { // reader: both words must agree under the shared lock
				w.Lock(LockShared, 0)
				var a, b [8]byte
				w.Get(a[:], 0, 0)
				w.Get(b[:], 0, 8)
				w.Flush(0)
				x := binary.LittleEndian.Uint64(a[:])
				y := binary.LittleEndian.Uint64(b[:])
				if x != y {
					t.Errorf("reader saw torn state %d != %d", x, y)
				}
				w.Unlock(0)
			}
		}
		p.Barrier()
		_ = mem
	})
}

func TestLockAllExcludesExclusive(t *testing.T) {
	// While any rank holds lock_all, exclusive locks must wait — and vice
	// versa (the two halves of the global word).
	const n = 6
	var inLockAll, inExcl int64
	run(t, n, 2, func(p *spmd.Proc) {
		w, _ := Allocate(p, 8, Config{})
		defer w.Free()
		for i := 0; i < 30; i++ {
			if p.Rank()%2 == 0 {
				w.LockAll()
				atomic.AddInt64(&inLockAll, 1)
				if atomic.LoadInt64(&inExcl) != 0 {
					t.Error("lock_all and exclusive lock held concurrently")
				}
				atomic.AddInt64(&inLockAll, -1)
				w.UnlockAll()
			} else {
				w.Lock(LockExclusive, 3)
				atomic.AddInt64(&inExcl, 1)
				if atomic.LoadInt64(&inLockAll) != 0 {
					t.Error("exclusive lock and lock_all held concurrently")
				}
				atomic.AddInt64(&inExcl, -1)
				w.Unlock(3)
			}
		}
	})
}

func TestExclusiveLockMutualExclusion(t *testing.T) {
	const n = 8
	var holders int64
	run(t, n, 4, func(p *spmd.Proc) {
		w, _ := Allocate(p, 8, Config{})
		defer w.Free()
		for i := 0; i < 40; i++ {
			w.Lock(LockExclusive, 2)
			if atomic.AddInt64(&holders, 1) != 1 {
				t.Error("two exclusive holders")
			}
			atomic.AddInt64(&holders, -1)
			w.Unlock(2)
		}
	})
}

func TestSharedLocksAdmitManyReaders(t *testing.T) {
	run(t, 4, 2, func(p *spmd.Proc) {
		w, _ := Allocate(p, 8, Config{})
		defer w.Free()
		w.Lock(LockShared, 0) // all four ranks hold it concurrently
		p.Barrier()           // would deadlock if shared locks excluded each other
		w.Unlock(0)
	})
}

func TestSecondExclusiveLockSkipsGlobal(t *testing.T) {
	run(t, 3, 1, func(p *spmd.Proc) {
		w, _ := Allocate(p, 8, Config{})
		defer w.Free()
		if p.Rank() == 0 {
			base := p.EP().Counters()
			w.Lock(LockExclusive, 1)
			first := p.EP().Counters().Sub(base).Amos
			base = p.EP().Counters()
			w.Lock(LockExclusive, 2)
			second := p.EP().Counters().Sub(base).Amos
			if first < 2 {
				t.Errorf("first exclusive lock used %d AMOs, want ≥2 (global+local)", first)
			}
			if second != 1 {
				t.Errorf("second exclusive lock used %d AMOs, want 1 (local CAS only)", second)
			}
			w.Unlock(2)
			w.Unlock(1)
		}
		p.Barrier()
	})
}

func TestLockStateErrors(t *testing.T) {
	cases := []struct {
		name string
		body func(w *Win)
	}{
		{"unlock-without-lock", func(w *Win) { w.Unlock(0) }},
		{"double-lock-same-target", func(w *Win) { w.Lock(LockShared, 0); w.Lock(LockShared, 0) }},
		{"nested-lockall", func(w *Win) { w.LockAll(); w.LockAll() }},
		{"unlockall-without", func(w *Win) { w.UnlockAll() }},
		{"lock-inside-lockall", func(w *Win) { w.LockAll(); w.Lock(LockShared, 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := spmd.Run(spmd.Config{Ranks: 1}, func(p *spmd.Proc) {
				w, _ := Allocate(p, 8, Config{})
				tc.body(w)
			})
			if err == nil {
				t.Fatalf("%s must fault", tc.name)
			}
		})
	}
}

func TestFlushMakesDataVisible(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		w, mem := Allocate(p, 16, Config{})
		defer w.Free()
		if p.Rank() == 0 {
			w.LockAll()
			var v [8]byte
			binary.LittleEndian.PutUint64(v[:], 7777)
			w.Put(v[:], 1, 0)
			w.Flush(1)
			// Notify via an atomic after the flush: the MILC pattern.
			w.FetchAndOp(AccSum, 1, 1, 8)
			w.UnlockAll()
			return
		}
		w.LockAll()
		for w.FetchAndOp(AccNoOp, 0, 1, 8) == 0 {
		}
		if got := binary.LittleEndian.Uint64(mem); got != 7777 {
			t.Errorf("flag visible before flushed data: %d", got)
		}
		w.UnlockAll()
	})
}
