package core

import (
	"fmt"

	"fompi/internal/simnet"
)

// Passive-target synchronization: the paper's two-level lock hierarchy
// (§2.3 "Lock Synchronization", Fig. 3). One global lock word lives at a
// designated master (rank 0); one local lock word lives at every rank.
//
//	global word: high 32 bits = processes registered for exclusive locks,
//	             low 32 bits  = processes holding a lock-all (shared) epoch.
//	local word:  high bit     = writer (exclusive) flag,
//	             low 63 bits  = shared-lock reader count.
//
// Shared locks and lock-all complete in one remote atomic when uncontended;
// the first exclusive lock costs two (global registration + local CAS),
// later ones a single CAS. All waits use ideal exponential back-off.
const (
	lockMaster = 0
	writerBit  = uint64(1) << 63
	exclOne    = uint64(1) << 32 // one exclusive registration in the global word
)

// neg returns the two's-complement of x for subtracting via fetch-add.
func neg(x uint64) uint64 { return ^x + 1 }

// LockMode selects shared or exclusive process locks.
type LockMode int

// Lock modes of MPI_Win_lock.
const (
	LockShared LockMode = iota
	LockExclusive
)

func (w *Win) globalAddr() simnet.Addr { return w.ctlAddr(lockMaster, ctlGlobal) }

// Lock opens a passive-target access epoch on target (MPI_Win_lock).
func (w *Win) Lock(mode LockMode, target int) {
	if w.lockAll {
		panic("core: Lock inside a lock_all epoch")
	}
	if _, dup := w.lockedRanks[target]; dup {
		panic(fmt.Sprintf("core: rank %d already locked", target))
	}
	local := w.ctlAddr(target, ctlLocal)
	switch mode {
	case LockShared:
		// One fetch-and-add registers the reader; if a writer holds the
		// lock, spin (remotely, backed off) until it leaves. The
		// registration stays valid while waiting (§2.3).
		old := w.ep.FetchAdd(local, 1)
		if old&writerBit != 0 {
			w.ep.PollRemoteWord(local, func(v uint64) bool { return v&writerBit == 0 })
		}
	case LockExclusive:
		for {
			// Invariant 1: no lock-all epoch may be active. Skipped when
			// this origin already registered an exclusive wish.
			if w.exclHeld == 0 {
				for {
					old := w.ep.FetchAdd(w.globalAddr(), exclOne)
					if old&0xffffffff == 0 {
						break
					}
					// Back off: withdraw the wish, wait for readers to drain.
					w.ep.AddNBI(w.globalAddr(), neg(exclOne))
					w.ep.PollRemoteWord(w.globalAddr(), func(v uint64) bool {
						return v&0xffffffff == 0
					})
				}
			}
			// Invariant 2: acquire the target's local lock exclusively.
			if old := w.ep.CompareSwap(local, 0, writerBit); old == 0 {
				break
			}
			// Failed: release the global registration (lock-all epochs must
			// not starve) and retry both invariants, as in Fig. 3c.
			if w.exclHeld == 0 {
				w.ep.AddNBI(w.globalAddr(), neg(exclOne))
			}
			w.ep.PollRemoteWord(local, func(v uint64) bool { return v == 0 })
		}
		w.exclHeld++
	default:
		panic("core: unknown lock mode")
	}
	if w.lockedRanks == nil {
		w.lockedRanks = make(map[int]bool)
	}
	w.lockedRanks[target] = mode == LockExclusive
	w.epoch = epochPassive
}

// Unlock closes the passive-target epoch on target (MPI_Win_unlock): it
// completes all outstanding operations, then releases the lock with one
// atomic (plus one more for the last exclusive lock, §2.3).
func (w *Win) Unlock(target int) {
	excl, ok := w.lockedRanks[target]
	if !ok {
		panic(fmt.Sprintf("core: Unlock of rank %d without Lock", target))
	}
	w.ep.MemSync()
	w.ep.Gsync() // remote completion of the epoch's operations
	local := w.ctlAddr(target, ctlLocal)
	// The release atomics (local lock, plus the global registration for the
	// last exclusive lock) issue as one batch: one pacing check, and the
	// master's doorbell rings once even when both words live there.
	w.ep.BeginBatch()
	if excl {
		w.ep.AddNBI(local, neg(writerBit))
		w.exclHeld--
		if w.exclHeld == 0 {
			w.ep.AddNBI(w.globalAddr(), neg(exclOne))
		}
	} else {
		w.ep.AddNBI(local, neg(1))
	}
	w.ep.EndBatch()
	delete(w.lockedRanks, target)
	if len(w.lockedRanks) == 0 && !w.lockAll {
		w.epoch = epochNone
	}
}

// LockAll opens a shared lock on every rank of the window
// (MPI_Win_lock_all): a single atomic on the global word when no exclusive
// locks exist. The MPI-3.0 specification offers no exclusive lock-all.
func (w *Win) LockAll() {
	if w.lockAll {
		panic("core: nested LockAll")
	}
	if len(w.lockedRanks) != 0 {
		panic("core: LockAll while process locks held")
	}
	for {
		old := w.ep.FetchAdd(w.globalAddr(), 1)
		if old>>32 == 0 {
			break
		}
		// An exclusive lock is registered: back off and retry.
		w.ep.AddNBI(w.globalAddr(), neg(1))
		w.ep.PollRemoteWord(w.globalAddr(), func(v uint64) bool { return v>>32 == 0 })
	}
	w.lockAll = true
	w.epoch = epochPassive
}

// UnlockAll closes the lock-all epoch (MPI_Win_unlock_all).
func (w *Win) UnlockAll() {
	if !w.lockAll {
		panic("core: UnlockAll without LockAll")
	}
	w.ep.MemSync()
	w.ep.Gsync()
	w.ep.AddNBI(w.globalAddr(), neg(1))
	w.lockAll = false
	if len(w.lockedRanks) == 0 {
		w.epoch = epochNone
	}
}

// Flush completes all outstanding operations on target at both origin and
// target (MPI_Win_flush). foMPI's flush is a bulk completion regardless of
// target, adding stepsFlush instructions to the critical path (§2.3).
func (w *Win) Flush(target int) {
	_ = target // DMAPP gsync is bulk: per-target flush completes everything
	w.ep.Steps(stepsFlush)
	w.ep.Gsync()
}

// FlushAll completes all outstanding operations on every target.
func (w *Win) FlushAll() {
	w.ep.Steps(stepsFlush)
	w.ep.Gsync()
}

// FlushLocal completes operations locally: origin buffers are reusable but
// remote completion is not guaranteed (MPI_Win_flush_local).
func (w *Win) FlushLocal(target int) {
	_ = target
	w.ep.Steps(stepsFlush)
	w.ep.GsyncLocal()
}

// FlushLocalAll is FlushLocal for every target.
func (w *Win) FlushLocalAll() {
	w.ep.Steps(stepsFlush)
	w.ep.GsyncLocal()
}

// Sync synchronizes the private and public window copies
// (MPI_Win_sync — a processor memory fence in the unified model).
func (w *Win) Sync() {
	w.ep.Steps(stepsSync)
	w.ep.MemSync()
}
