// Package core implements foMPI: the paper's scalable, bufferless MPI-3.0
// one-sided (RMA) protocols over a raw RDMA fabric. The package provides
// the four window flavours (§2.2), all synchronization modes — fence,
// general active target (PSCW) with free-storage-managed matching lists,
// and the two-level global/local lock protocol for passive target (§2.3) —
// and the communication calls with their DMAPP-accelerated and
// lock-fallback accumulate paths (§2.4). Every protocol uses only put, get,
// and 8-byte atomics against bounded per-rank buffers: no remote software
// agent, O(log p) time and space per process.
package core

import (
	"encoding/binary"
	"fmt"

	"fompi/internal/segpool"
	"fompi/internal/simnet"
	"fompi/internal/spmd"
)

// Config bounds the fixed per-window buffers. The zero value gives the
// defaults; the bounds model the paper's "small bounded buffer space at
// each process" assumption and fault loudly when exceeded.
type Config struct {
	// MaxPosts bounds the PSCW matching list: the total number of post
	// notifications a rank can receive over the window's lifetime
	// (k neighbors × epochs). Default 1 << 14.
	MaxPosts int
	// MaxAttach bounds the dynamic-window attach table. Default 64.
	MaxAttach int
	// MaxNotify bounds the notified-access buffers: the delivery ring and
	// the popped-but-unmatched list each hold at most MaxNotify entries, so
	// a rank can hold up to 2×MaxNotify delivered-but-unconsumed
	// notifications before the next arrival (or drain) faults, like
	// matching-list overflow. Default 64.
	MaxNotify int
	// DispUnit scales target displacements, as in MPI_Win_create.
	// Default 1 (byte displacements).
	DispUnit int
}

func (c Config) withDefaults() Config {
	if c.MaxPosts <= 0 {
		c.MaxPosts = 1 << 14
	}
	if c.MaxAttach <= 0 {
		c.MaxAttach = 64
	}
	if c.MaxNotify <= 0 {
		c.MaxNotify = 64
	}
	if c.DispUnit <= 0 {
		c.DispUnit = 1
	}
	return c
}

// winKind discriminates the four window flavours.
type winKind int

const (
	kindCreate winKind = iota
	kindAllocate
	kindDynamic
	kindShared
)

// Control-region word offsets (bytes). The control region is symmetric:
// every rank registers one at window creation in the same program order, so
// the fabric key is identical on all ranks — the symmetric-heap property
// window allocation establishes (§2.2).
const (
	ctlPostCount = 0  // matching-list next-free index (remote fetch-add)
	ctlComplete  = 8  // PSCW completion counter
	ctlGlobal    = 16 // global lock word (meaningful at the master)
	ctlLocal     = 24 // local reader-writer lock word
	ctlAccLock   = 32 // internal lock for non-accelerated accumulates
	ctlDynID     = 40 // dynamic window modification counter
	ctlAttach    = 48 // dynamic attach table: MaxAttach × 2 words
)

func ctlPostList(maxAttach int) int { return ctlAttach + maxAttach*16 }

// ctlNotifyRing places the notified-access ring after the PSCW post list.
func ctlNotifyRing(c Config) int { return ctlPostList(c.MaxAttach) + c.MaxPosts*8 }

// ctlBytes is the full control-region size.
func ctlBytes(c Config) int { return ctlNotifyRing(c) + simnet.NotifyRingBytes(c.MaxNotify) }

// epochKind tracks which synchronization epoch the window is in, so that
// erroneous MPI usage faults instead of corrupting memory.
type epochKind int

const (
	epochNone epochKind = iota
	epochFence
	epochAccess  // PSCW access epoch (start..complete)
	epochPassive // lock/lock_all epoch
)

// Win is one rank's handle of an MPI-3 window. Handles are collective:
// every rank of the world holds one for the same window.
type Win struct {
	p   *spmd.Proc
	ep  *simnet.Endpoint
	cfg Config

	kind winKind
	data *simnet.Region // local window memory (points at dataReg; nil for dynamic)
	ctl  *simnet.Region // local control region (points at ctlReg)

	// Embedded registration and ring state: a window costs one Win
	// allocation, not one per handle it holds.
	dataReg simnet.Region
	ctlReg  simnet.Region

	// Transport-allocated backing segments, recycled by Free. ctlSeg is
	// always transport memory; dataSeg only for library-allocated window
	// memory (on the multi-process backend this is what makes the window
	// remotely reachable at all).
	ctlSeg  *segpool.Seg
	dataSeg *segpool.Seg

	dataKey simnet.Key // symmetric data key (allocate/shared)
	ctlKey  simnet.Key // symmetric control key (all kinds)
	size    int        // local window size in bytes

	// Traditional windows must remember every rank's key and size: the
	// Ω(p) table the paper discourages (§2.2 "Traditional Windows").
	peerKeys  []simnet.Key
	peerSizes []int

	// PSCW state. consumed is allocated on first Start (fence- and
	// lock-only windows never pay for it); groupCache memoizes validated
	// epoch groups, and postIdxs/postHandles are Post's reusable O(k)
	// scratch.
	accessGroup   []int // current access epoch (start..complete)
	exposureQueue []int // outstanding exposure group sizes, FIFO for wait
	waitTarget    uint64
	consumed      []bool // matching-list entries already matched by start
	groupCache    []groupCacheEnt
	groupCacheRR  int
	postIdxs      []uint64
	postHandles   []simnet.Handle

	// Passive-target state.
	epoch       epochKind
	lockedRanks map[int]bool // ranks this origin holds process locks on
	exclHeld    int          // exclusive locks held (global registration)
	lockAll     bool

	// Dynamic-window state: the origin-side cache of each target's attach
	// table (§2.2 "Dynamic Windows"), plus the local attached registrations.
	dynCache   map[int]*dynCache
	attachRegs map[int]*simnet.Region

	// Notified-access state: the local delivery ring, the bounded list of
	// popped-but-unmatched notifications, and the origin-side send counter.
	notifyRing    simnet.NotifyRing
	notifyPending []pendingNotify
	notifySeq     uint32

	freed bool
}

// dynCache is this origin's cached copy of one target's attach table.
type dynCache struct {
	id      uint64
	entries []dynEntry
}

type dynEntry struct {
	key  simnet.Key
	size int
}

// winBase initializes the parts common to all window kinds and verifies the
// control key is symmetric (O(log p) allreduce, no per-rank table). The
// control region — dominated by the MaxPosts matching list — comes from the
// segment pool: per-repetition worlds would otherwise allocate and zero
// ~130 KiB of control state per rank per window. Mode-specific bookkeeping
// (PSCW consumed list, lock and dynamic-window maps) allocates lazily on
// first use.
func winBase(p *spmd.Proc, cfg Config, kind winKind) *Win {
	cfg = cfg.withDefaults()
	w := &Win{p: p, ep: p.EP(), cfg: cfg, kind: kind}
	w.ctlSeg = w.ep.AllocSeg(ctlBytes(cfg))
	w.ep.RegisterBufStampsInto(&w.ctlReg, w.ctlSeg.Buf, w.ctlSeg.St)
	w.ctl = &w.ctlReg
	w.ctlKey = w.ctl.Key()
	w.notifyRing.Bind(w.ctl, ctlNotifyRing(cfg), cfg.MaxNotify)
	assertSymmetric(p, uint64(w.ctlKey), "control region key")
	return w
}

// assertSymmetric checks that v is identical on every rank. It stands in
// for the paper's symmetric-heap allocation loop (broadcast an address,
// mmap, allreduce success): in the simulated address space registration
// order already yields symmetric keys, and this collective check preserves
// both the O(log p) cost and the failure mode.
func assertSymmetric(p *spmd.Proc, v uint64, what string) {
	lo := p.Allreduce8(spmd.OpMin, v)
	hi := p.Allreduce8(spmd.OpMax, v)
	if lo != hi {
		panic(fmt.Sprintf("core: %s not symmetric across ranks (%d..%d); windows must be created collectively in the same order on all ranks", what, lo, hi))
	}
}

// Allocate creates an allocated window (MPI_Win_allocate): the library
// allocates size bytes backed by the symmetric heap, so remote addressing
// needs O(1) state per rank. It returns the window and the local memory.
// The memory is owned by the window, as in MPI: Free recycles it, so the
// returned slice must not be used after Free.
func Allocate(p *spmd.Proc, size int, cfg Config) (*Win, []byte) {
	w := winBase(p, cfg, kindAllocate)
	w.dataSeg = w.ep.AllocSeg(size)
	w.ep.RegisterBufStampsInto(&w.dataReg, w.dataSeg.Buf, w.dataSeg.St)
	w.data = &w.dataReg
	w.size = size
	w.dataKey = w.data.Key()
	assertSymmetric(p, uint64(w.dataKey), "allocated window key")
	p.Barrier()
	return w, w.data.Bytes()
}

// Create creates a traditional window (MPI_Win_create) over existing user
// memory. Each rank may pass a buffer of any size at any address, which
// forces every rank to store all p remote descriptors — the Ω(p) cost that
// makes traditional windows fundamentally non-scalable (§2.2). Prefer
// Allocate.
func Create(p *spmd.Proc, buf []byte, cfg Config) *Win {
	w := winBase(p, cfg, kindCreate)
	w.data = w.ep.RegisterBuf(buf)
	w.size = len(buf)

	// Two allgathers in the paper (DMAPP descriptors then XPMEM intra-node
	// descriptors); the fabric uses one descriptor space for both, so one
	// exchange of (key, size) per rank suffices here.
	var mine [16]byte
	binary.LittleEndian.PutUint64(mine[0:], uint64(w.data.Key()))
	binary.LittleEndian.PutUint64(mine[8:], uint64(len(buf)))
	all := p.Allgather(mine[:])
	w.peerKeys = make([]simnet.Key, p.Size())
	w.peerSizes = make([]int, p.Size())
	for r := 0; r < p.Size(); r++ {
		w.peerKeys[r] = simnet.Key(binary.LittleEndian.Uint64(all[r*16:]))
		w.peerSizes[r] = int(binary.LittleEndian.Uint64(all[r*16+8:]))
	}
	return w
}

// CreateDynamic creates a dynamic window (MPI_Win_create_dynamic) with no
// attached memory; use Attach and Detach to expose regions non-collectively.
func CreateDynamic(p *spmd.Proc, cfg Config) *Win {
	w := winBase(p, cfg, kindDynamic)
	p.Barrier()
	return w
}

// AllocateShared creates a shared-memory window (MPI_Win_allocate_shared).
// All ranks must reside on one node; SharedSlice then gives direct
// load/store access to any rank's segment, the XPMEM fast path. Like
// Allocate, the returned memory is owned by the window and recycled by Free.
// A world spanning several nodes fails with an error wrapping
// simnet.ErrNotSameNode (delivered by panic, as MPI argument errors are;
// recover and errors.Is to test for it).
func AllocateShared(p *spmd.Proc, size int, cfg Config) (*Win, []byte) {
	for r := 0; r < p.Size(); r++ {
		if !p.SameNode(r) {
			panic(fmt.Errorf("core: AllocateShared requires all ranks on one node (rank %d is on node %d, rank %d on node %d): %w",
				p.Rank(), p.Node(), r, p.Fabric().NodeOf(r), simnet.ErrNotSameNode))
		}
	}
	w := winBase(p, cfg, kindShared)
	w.dataSeg = w.ep.AllocSeg(size)
	w.ep.RegisterBufStampsInto(&w.dataReg, w.dataSeg.Buf, w.dataSeg.St)
	w.data = &w.dataReg
	w.size = size
	w.dataKey = w.data.Key()
	assertSymmetric(p, uint64(w.dataKey), "shared window key")
	p.Barrier()
	return w, w.data.Bytes()
}

// SharedSliceErr returns a direct mapping of rank's window segment (shared
// windows only): loads and stores, no fabric operations. A genuinely
// cross-node target fails with an error wrapping simnet.ErrNotSameNode; a
// same-node target whose memory this backend cannot map (pure inter-node
// transport) fails wrapping simnet.ErrNotMapped.
func (w *Win) SharedSliceErr(rank int) ([]byte, error) {
	if w.kind != kindShared {
		panic("core: SharedSlice requires a shared window")
	}
	b, err := w.ep.SharedErr(simnet.Addr{Rank: rank, Key: w.dataKey}, w.size)
	if err != nil {
		return nil, fmt.Errorf("core: SharedSlice(%d) from rank %d: %w", rank, w.p.Rank(), err)
	}
	return b, nil
}

// SharedSlice is SharedSliceErr for callers that treat an unmappable target
// as fatal; it panics with the typed error (errors.Is works on the recovered
// value).
func (w *Win) SharedSlice(rank int) []byte {
	b, err := w.SharedSliceErr(rank)
	if err != nil {
		panic(err)
	}
	return b
}

// Attach exposes buf in a dynamic window and returns its handle index,
// which remote ranks use as the region part of their displacement. Attach
// is non-collective: it registers the memory, appends it to the local
// attach table, and bumps the window's id counter so cached remote copies
// invalidate (§2.2 "Dynamic Windows").
func (w *Win) Attach(buf []byte) int {
	if w.kind != kindDynamic {
		panic("core: Attach requires a dynamic window")
	}
	reg := w.ep.RegisterBuf(buf)
	if w.attachRegs == nil {
		w.attachRegs = make(map[int]*simnet.Region)
	}
	ctl := w.ctl.Bytes()
	slot := -1
	for i := 0; i < w.cfg.MaxAttach; i++ {
		if binary.LittleEndian.Uint64(ctl[ctlAttach+i*16:]) == 0 {
			slot = i
			break
		}
	}
	if slot < 0 {
		panic(fmt.Sprintf("core: attach table full (%d regions)", w.cfg.MaxAttach))
	}
	binary.LittleEndian.PutUint64(ctl[ctlAttach+slot*16:], uint64(reg.Key())+1)
	binary.LittleEndian.PutUint64(ctl[ctlAttach+slot*16+8:], uint64(len(buf)))
	w.attachRegs[slot] = reg
	// Publish, then invalidate caches via the id counter.
	w.ctl.LocalWordStore(ctlDynID, w.ctl.LocalWord(ctlDynID)+1, w.ep.Now())
	return slot
}

// Detach withdraws a previously attached region. Remote accesses in flight
// against a detached region fault, as on the real network.
func (w *Win) Detach(slot int) {
	if w.kind != kindDynamic {
		panic("core: Detach requires a dynamic window")
	}
	ctl := w.ctl.Bytes()
	reg := w.attachRegs[slot]
	if reg == nil {
		panic("core: Detach of unattached slot")
	}
	binary.LittleEndian.PutUint64(ctl[ctlAttach+slot*16:], 0)
	binary.LittleEndian.PutUint64(ctl[ctlAttach+slot*16+8:], 0)
	delete(w.attachRegs, slot)
	w.ep.Unregister(reg)
	w.ctl.LocalWordStore(ctlDynID, w.ctl.LocalWord(ctlDynID)+1, w.ep.Now())
}

// dynResolve translates (target, slot, off) into a fabric address using the
// origin-side cache: one remote read of the target's id counter checks
// validity; on mismatch the attach table is re-fetched with a series of
// one-sided gets — the paper's protocol, no target involvement.
func (w *Win) dynResolve(target, slot, off, n int) simnet.Addr {
	ctlAddr := simnet.Addr{Rank: target, Key: w.ctlKey}
	id := w.ep.LoadW(ctlAddr.Add(ctlDynID))
	c := w.dynCache[target]
	if c == nil || c.id != id {
		raw := make([]byte, w.cfg.MaxAttach*16)
		w.ep.GetNBI(raw, ctlAddr.Add(ctlAttach))
		w.ep.Gsync()
		c = &dynCache{id: id, entries: make([]dynEntry, w.cfg.MaxAttach)}
		for i := 0; i < w.cfg.MaxAttach; i++ {
			c.entries[i] = dynEntry{
				key:  simnet.Key(binary.LittleEndian.Uint64(raw[i*16:])),
				size: int(binary.LittleEndian.Uint64(raw[i*16+8:])),
			}
		}
		if w.dynCache == nil {
			w.dynCache = make(map[int]*dynCache)
		}
		w.dynCache[target] = c
	}
	if slot < 0 || slot >= len(c.entries) || c.entries[slot].key == 0 {
		panic(fmt.Sprintf("core: dynamic access to unattached slot %d at rank %d", slot, target))
	}
	e := c.entries[slot]
	if off+n > e.size {
		panic(fmt.Sprintf("core: dynamic access [%d,%d) exceeds attached region of %d bytes", off, off+n, e.size))
	}
	return simnet.Addr{Rank: target, Key: e.key - 1, Off: off}
}

// addrOf translates (target, disp) into a fabric address for n bytes.
func (w *Win) addrOf(target, disp, n int) simnet.Addr {
	off := disp * w.cfg.DispUnit
	switch w.kind {
	case kindAllocate, kindShared:
		return simnet.Addr{Rank: target, Key: w.dataKey, Off: off}
	case kindCreate:
		if off+n > w.peerSizes[target] {
			panic(fmt.Sprintf("core: access [%d,%d) exceeds window of %d bytes at rank %d",
				off, off+n, w.peerSizes[target], target))
		}
		return simnet.Addr{Rank: target, Key: w.peerKeys[target], Off: off}
	default:
		panic("core: dynamic windows address memory via PutDyn/GetDyn (attach slots)")
	}
}

// ctlAddr returns rank's control word address.
func (w *Win) ctlAddr(rank, word int) simnet.Addr {
	return simnet.Addr{Rank: rank, Key: w.ctlKey, Off: word}
}

// Proc returns the owning rank handle.
func (w *Win) Proc() *spmd.Proc { return w.p }

// Size returns the local window size in bytes.
func (w *Win) Size() int { return w.size }

// Free releases the window collectively. Pooled backing segments — the
// control region always, the data region when the library allocated it —
// are recycled after the closing barrier, when no rank can still address
// them; memory returned by Allocate/AllocateShared is invalid afterwards.
func (w *Win) Free() {
	if w.freed {
		panic("core: double Free")
	}
	w.p.Barrier()
	if w.data != nil {
		w.ep.Unregister(w.data)
	}
	w.ep.Unregister(w.ctl)
	if w.dataSeg != nil {
		// Window memory was exposed to the application as a raw slice, so
		// its writes are untracked: full wipe.
		w.ep.RecycleSegWiped(w.dataSeg)
		w.dataSeg = nil
	}
	// Control-region writes are stamped fabric operations except for the
	// notification ring's unstamped header/pop stores and, on dynamic
	// windows, the locally-written attach table.
	extras := []segpool.Range{{
		Lo: ctlNotifyRing(w.cfg),
		Hi: ctlNotifyRing(w.cfg) + simnet.NotifyRingBytes(w.cfg.MaxNotify),
	}}
	if w.kind == kindDynamic {
		extras = append(extras, segpool.Range{Lo: ctlAttach, Hi: ctlAttach + w.cfg.MaxAttach*16})
	}
	w.ep.RecycleSeg(w.ctlSeg, extras...)
	w.ctlSeg = nil
	w.freed = true
}

// MemoryFootprint reports the per-rank bookkeeping bytes this window handle
// holds, excluding the user's window memory itself: the measurable form of
// the paper's O(1)/O(log p)-versus-Ω(p) storage claims.
func (w *Win) MemoryFootprint() int {
	n := ctlBytes(w.cfg)                        // control region incl. notify ring
	n += len(w.peerKeys)*8 + len(w.peerSizes)*8 // Ω(p) only for Create
	n += len(w.consumed)
	n += len(w.notifyPending) * 16
	for _, c := range w.dynCache {
		n += len(c.entries) * 16
	}
	return n
}

// WaitLocalWord blocks until pred holds for the 8-byte local window word at
// byte offset off, then synchronizes the window (the MPI-3 target-side
// polling pattern: poll own exposed memory, MPI_Win_sync). It returns the
// observed value. Writers ring the rank's doorbell, so no busy spin occurs.
func (w *Win) WaitLocalWord(off int, pred func(uint64) bool) uint64 {
	if w.data == nil {
		panic("core: WaitLocalWord requires window memory")
	}
	w.ep.WaitLocal(func() bool { return pred(w.data.LocalWord(off)) })
	w.ep.MergeStamp(w.data, off, 8)
	w.Sync()
	return w.data.LocalWord(off)
}
