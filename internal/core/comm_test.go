package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fompi/internal/datatype"
	"fompi/internal/spmd"
)

func putU64(b []byte, vs ...uint64) {
	for i, v := range vs {
		binary.LittleEndian.PutUint64(b[i*8:], v)
	}
}

func TestAcceleratedAccumulateSum(t *testing.T) {
	run(t, 3, 1, func(p *spmd.Proc) {
		w, mem := Allocate(p, 64, Config{})
		defer w.Free()
		w.Fence()
		src := make([]byte, 32)
		putU64(src, 1, 2, 3, 4)
		w.Accumulate(AccSum, src, 0, 0) // every rank adds {1,2,3,4}
		w.Fence()
		if p.Rank() == 0 {
			for i := 0; i < 4; i++ {
				if got := binary.LittleEndian.Uint64(mem[i*8:]); got != uint64(i+1)*3 {
					t.Errorf("word %d = %d, want %d", i, got, (i+1)*3)
				}
			}
		}
	})
}

func TestAccumulateFallbackMin(t *testing.T) {
	run(t, 4, 2, func(p *spmd.Proc) {
		w, mem := Allocate(p, 16, Config{})
		defer w.Free()
		putU64(mem, math.MaxUint64, math.MaxUint64)
		w.Fence()
		src := make([]byte, 16)
		putU64(src, uint64(p.Rank()+10), uint64(100-p.Rank()))
		w.Accumulate(AccMin, src, 0, 0)
		w.Fence()
		if p.Rank() == 0 {
			if a := binary.LittleEndian.Uint64(mem); a != 10 {
				t.Errorf("min word0 = %d, want 10", a)
			}
			if b := binary.LittleEndian.Uint64(mem[8:]); b != 97 {
				t.Errorf("min word1 = %d, want 97", b)
			}
		}
	})
}

func TestAccumulateFallbackAtomicUnderContention(t *testing.T) {
	// The lock-based fallback must not lose updates even when all ranks
	// accumulate into the same word concurrently (FSum is not accelerated).
	const n, iters = 6, 20
	run(t, n, 3, func(p *spmd.Proc) {
		w, mem := Allocate(p, 8, Config{})
		defer w.Free()
		w.Fence()
		src := make([]byte, 8)
		putU64(src, math.Float64bits(1.0))
		for i := 0; i < iters; i++ {
			w.Accumulate(AccFSum, src, 0, 0)
		}
		w.Fence()
		if p.Rank() == 0 {
			got := math.Float64frombits(binary.LittleEndian.Uint64(mem))
			if got != float64(n*iters) {
				t.Errorf("fallback lost updates: %g, want %d", got, n*iters)
			}
		}
	})
}

func TestGetAccumulateFetchesOldValue(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		w, mem := Allocate(p, 8, Config{})
		defer w.Free()
		if p.Rank() == 0 {
			putU64(mem, 100)
		}
		w.Fence()
		if p.Rank() == 1 {
			src, res := make([]byte, 8), make([]byte, 8)
			putU64(src, 5)
			w.GetAccumulate(AccSum, src, res, 0, 0)
			w.Flush(0)
			if old := binary.LittleEndian.Uint64(res); old != 100 {
				t.Errorf("old value = %d, want 100", old)
			}
		}
		w.Fence()
		if p.Rank() == 0 {
			if got := binary.LittleEndian.Uint64(mem); got != 105 {
				t.Errorf("value = %d, want 105", got)
			}
		}
	})
}

func TestGetAccumulateNoOpReads(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		w, mem := Allocate(p, 16, Config{})
		defer w.Free()
		if p.Rank() == 0 {
			putU64(mem, 11, 22)
		}
		w.Fence()
		if p.Rank() == 1 {
			src, res := make([]byte, 16), make([]byte, 16)
			w.GetAccumulate(AccNoOp, src, res, 0, 0)
			w.Flush(0)
			if binary.LittleEndian.Uint64(res) != 11 || binary.LittleEndian.Uint64(res[8:]) != 22 {
				t.Errorf("no-op read got %x", res)
			}
		}
		w.Fence()
		if p.Rank() == 0 && binary.LittleEndian.Uint64(mem) != 11 {
			t.Error("no-op must not modify the target")
		}
	})
}

func TestFetchAndOpVariants(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		w, mem := Allocate(p, 8, Config{})
		defer w.Free()
		w.Fence()
		if p.Rank() == 1 {
			w.LockAll()
			if old := w.FetchAndOp(AccSum, 10, 0, 0); old != 0 {
				t.Errorf("sum old = %d", old)
			}
			if old := w.FetchAndOp(AccReplace, 77, 0, 0); old != 10 {
				t.Errorf("replace old = %d", old)
			}
			if old := w.FetchAndOp(AccNoOp, 0, 0, 0); old != 77 {
				t.Errorf("noop read = %d", old)
			}
			if old := w.FetchAndOp(AccMax, 200, 0, 0); old != 77 {
				t.Errorf("max old = %d", old)
			}
			w.UnlockAll()
		}
		w.Fence()
		if p.Rank() == 0 {
			if got := binary.LittleEndian.Uint64(mem); got != 200 {
				t.Errorf("final = %d, want 200", got)
			}
		}
	})
}

func TestCompareAndSwapRace(t *testing.T) {
	// Exactly one rank must win a CAS on the same word.
	const n = 8
	run(t, n, 4, func(p *spmd.Proc) {
		w, mem := Allocate(p, 8, Config{})
		defer w.Free()
		w.Fence()
		w.LockAll()
		won := w.CompareAndSwap(0, uint64(p.Rank())+1, 0, 0) == 0
		w.UnlockAll()
		w.Fence()
		if p.Rank() == 0 {
			winner := binary.LittleEndian.Uint64(mem)
			if winner == 0 || winner > n {
				t.Errorf("no valid winner: %d", winner)
			}
		}
		_ = won
	})
}

func TestRequestBasedOps(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		w, mem := Allocate(p, 1<<16, Config{})
		defer w.Free()
		w.Fence()
		if p.Rank() == 0 {
			data := make([]byte, 32<<10)
			for i := range data {
				data[i] = byte(i)
			}
			h := w.RPut(data, 1, 0)
			w.WaitRequest(h)
		}
		w.Fence()
		if p.Rank() == 1 {
			for i := 0; i < 32<<10; i += 4096 {
				if mem[i] != byte(i) {
					t.Errorf("byte %d = %d", i, mem[i])
				}
			}
		}
	})
}

func TestPutDVectorToContig(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		w, mem := Allocate(p, 256, Config{})
		defer w.Free()
		w.Fence()
		if p.Rank() == 0 {
			// Origin: every other double of a 16-double array.
			src := make([]byte, 128)
			for i := 0; i < 16; i++ {
				binary.LittleEndian.PutUint64(src[i*8:], uint64(i))
			}
			vec := datatype.Vector(8, 1, 2, datatype.Double)
			w.PutD(src, vec, 1, 1, 0, datatype.Contiguous(8, datatype.Double), 1)
		}
		w.Fence()
		if p.Rank() == 1 {
			for i := 0; i < 8; i++ {
				if got := binary.LittleEndian.Uint64(mem[i*8:]); got != uint64(2*i) {
					t.Errorf("elem %d = %d, want %d", i, got, 2*i)
				}
			}
		}
	})
}

func TestGetDContigToIndexed(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		w, mem := Allocate(p, 256, Config{})
		defer w.Free()
		if p.Rank() == 1 {
			for i := 0; i < 8; i++ {
				binary.LittleEndian.PutUint64(mem[i*8:], uint64(100+i))
			}
		}
		w.Fence()
		if p.Rank() == 0 {
			dst := make([]byte, 256)
			idx := datatype.Indexed([]int{2, 2}, []int{0, 6}, datatype.Double)
			w.GetD(dst, idx, 2, 1, 0, datatype.Contiguous(8, datatype.Double), 1)
			w.FlushAll()
			wantAt := map[int]uint64{0: 100, 1: 101, 6: 102, 7: 103, 8: 104, 9: 105, 14: 106, 15: 107}
			for slot, want := range wantAt {
				if got := binary.LittleEndian.Uint64(dst[slot*8:]); got != want {
					t.Errorf("slot %d = %d, want %d", slot, got, want)
				}
			}
		}
		w.Fence()
	})
}

func TestPutDSizeMismatchFaults(t *testing.T) {
	err := spmd.Run(spmd.Config{Ranks: 2}, func(p *spmd.Proc) {
		w, _ := Allocate(p, 64, Config{})
		w.Fence()
		w.PutD(make([]byte, 16), datatype.Double, 2, (p.Rank()+1)%2, 0, datatype.Double, 3)
	})
	if err == nil {
		t.Fatal("mismatched type signatures must fault")
	}
}

func TestInstructionCountFastPath(t *testing.T) {
	// §6: "the MPI interface adds merely between 150 and 200 instructions
	// in the fast path"; flush adds 78.
	run(t, 2, 1, func(p *spmd.Proc) {
		w, _ := Allocate(p, 64, Config{})
		defer w.Free()
		w.LockAll()
		if p.Rank() == 0 {
			base := p.EP().Counters()
			w.Put(make([]byte, 8), 1, 0)
			if d := p.EP().Counters().Sub(base); d.SoftSteps != stepsPutGet || d.Puts != 1 {
				t.Errorf("put fast path: steps=%d puts=%d", d.SoftSteps, d.Puts)
			}
			base = p.EP().Counters()
			w.Flush(1)
			if d := p.EP().Counters().Sub(base); d.SoftSteps != stepsFlush || d.Gsyncs != 1 {
				t.Errorf("flush path: steps=%d gsyncs=%d", d.SoftSteps, d.Gsyncs)
			}
		}
		w.UnlockAll()
	})
}

func TestPropertyAccumulateSumMatchesSequential(t *testing.T) {
	err := quick.Check(func(deltas []uint16) bool {
		if len(deltas) == 0 || len(deltas) > 24 {
			return true
		}
		ok := true
		spmd.MustRun(spmd.Config{Ranks: 2}, func(p *spmd.Proc) {
			w, mem := Allocate(p, 8, Config{})
			w.Fence()
			if p.Rank() == 1 {
				for _, d := range deltas {
					var src [8]byte
					putU64(src[:], uint64(d))
					w.Accumulate(AccSum, src[:], 0, 0)
				}
			}
			w.Fence()
			if p.Rank() == 0 {
				var want uint64
				for _, d := range deltas {
					want += uint64(d)
				}
				if binary.LittleEndian.Uint64(mem) != want {
					ok = false
				}
			}
			w.Free()
		})
		return ok
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPutGetArbitraryRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	err := quick.Check(func(sz uint8, off uint8) bool {
		n := int(sz)%96 + 1
		o := int(off) % 128
		ok := true
		spmd.MustRun(spmd.Config{Ranks: 2}, func(p *spmd.Proc) {
			w, _ := Allocate(p, 256, Config{})
			w.Fence()
			if p.Rank() == 0 {
				data := make([]byte, n)
				rng.Read(data)
				w.Put(data, 1, o)
				w.FlushAll()
				back := make([]byte, n)
				w.Get(back, 1, o)
				w.FlushAll()
				if !bytes.Equal(data, back) {
					ok = false
				}
			}
			w.Fence()
			w.Free()
		})
		return ok
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}
