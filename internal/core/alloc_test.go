package core

import (
	"sync/atomic"
	"testing"

	"fompi/internal/spmd"
)

// TestFenceAllocCeiling is the alloc-regression guard for the collective
// synchronization path: with the window control regions pooled and the
// per-rank handles slab-allocated, a steady-state fence epoch at p=64 must
// stay under a small world-wide allocation ceiling (the pre-pooling cost was
// ~22 allocations per fence, dominated by per-world setup). AllocsPerRun
// counts mallocs process-wide, so every rank's fence work is included; rank
// 0 measures while the other ranks run the same number of fences.
func TestFenceAllocCeiling(t *testing.T) {
	const ranks = 64
	const runs = 5 // AllocsPerRun executes runs+1 calls (one warmup)
	var avg atomic.Uint64
	spmd.MustRun(spmd.Config{Ranks: ranks, RanksPerNode: 4}, func(p *spmd.Proc) {
		w, _ := Allocate(p, 64, Config{})
		defer w.Free()
		p.Barrier()
		if p.Rank() == 0 {
			a := testing.AllocsPerRun(runs, func() { w.Fence() })
			avg.Store(uint64(a * 1000))
		} else {
			for i := 0; i < runs+1; i++ {
				w.Fence()
			}
		}
		p.Barrier()
	})
	// World-wide ceiling per fence: the fence itself is allocation-free;
	// the slack absorbs runtime-internal noise (stack growth, timer churn).
	if got := float64(avg.Load()) / 1000; got > 32 {
		t.Fatalf("fence@p=%d allocates %.1f objects world-wide per call, ceiling 32", ranks, got)
	}
}
