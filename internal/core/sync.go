package core

import (
	"fmt"
	"slices"
	"sort"
)

// Fast-path software-step counts the paper reports (§2.3, §2.4, §6): the
// MPI library layer adds 150–200 x86 instructions above the raw fabric.
// They are charged to the Steps counter so the instruction-count experiment
// can report the critical-path overhead of each call.
const (
	stepsFlush  = 78  // all four flush variants share one implementation
	stepsPutGet = 173 // optimized contiguous fast path of MPI_Put/MPI_Get
	stepsSync   = 17
	stepsNotify = 41 // notified-access bookkeeping above the put/get fast path
)

// Fence finishes the previous access-and-exposure epoch and opens the next
// one for the whole window (MPI_Win_fence): commit all outstanding remote
// operations (mfence + DMAPP gsync), then a barrier. O(1) memory,
// O(log p) time (§2.3 "Fence").
func (w *Win) Fence() {
	if w.epoch == epochPassive {
		panic("core: Fence inside a passive-target epoch")
	}
	w.ep.MemSync()
	w.ep.Gsync()
	w.p.Barrier()
	w.epoch = epochFence
}

// groupCacheEnt memoizes one validated epoch group: arg is the caller's
// group argument as passed, val the sorted validated copy.
type groupCacheEnt struct {
	arg []int
	val []int
}

// groupCacheSize bounds the per-window group memo; epochs cycle through a
// handful of neighbor groups, and a miss only costs re-validation.
const groupCacheSize = 4

// checkGroup validates an epoch group argument and returns a sorted copy.
// Applications pass the same neighbor group to every Post/Start of their
// epoch loop, so validated groups are memoized by content: a hit is one O(k)
// comparison instead of an allocation and a sort per call. Callers must not
// mutate the returned slice.
func (w *Win) checkGroup(group []int) []int {
	for i := range w.groupCache {
		if e := &w.groupCache[i]; slices.Equal(e.arg, group) {
			return e.val
		}
	}
	g := append([]int(nil), group...)
	sort.Ints(g)
	for i, r := range g {
		if r < 0 || r >= w.p.Size() {
			panic(fmt.Sprintf("core: group rank %d out of range", r))
		}
		if i > 0 && g[i-1] == r {
			panic(fmt.Sprintf("core: duplicate rank %d in group", r))
		}
	}
	ent := groupCacheEnt{arg: append([]int(nil), group...), val: g}
	if len(w.groupCache) < groupCacheSize {
		w.groupCache = append(w.groupCache, ent)
	} else {
		w.groupCache[w.groupCacheRR] = ent
		w.groupCacheRR = (w.groupCacheRR + 1) % groupCacheSize
	}
	return g
}

// Post opens an exposure epoch for the ranks in group (MPI_Win_post).
// The poster announces itself by acquiring a free element in each group
// member's matching list — a remote fetch-and-add on the list's next-free
// counter followed by a put of its rank (the free-storage management
// protocol of Fig. 2c) — issuing O(k) messages and blocking never.
func (w *Win) Post(group []int) {
	g := w.checkGroup(group)
	// Acquire all k free-list slots in one round trip: the fetch-adds are
	// independent, so they pipeline. The whole O(k) announcement issues as
	// one batch — one pacing check, and each group member's doorbell rings
	// once, after both its counter bump and its rank word have landed — and
	// draws its ticket/handle scratch from the window's reusable pool.
	idxs := w.postIdxs[:0]
	handles := w.postHandles[:0]
	w.ep.BeginBatch()
	for _, j := range g {
		v, h := w.ep.FetchAddNB(w.ctlAddr(j, ctlPostCount), 1)
		idxs = append(idxs, v)
		handles = append(handles, h)
	}
	for i, j := range g {
		w.ep.Wait(handles[i])
		if idxs[i] >= uint64(w.cfg.MaxPosts) {
			panic(fmt.Sprintf("core: matching list of rank %d exhausted (%d posts); raise Config.MaxPosts", j, w.cfg.MaxPosts))
		}
		w.ep.StoreW(w.ctlAddr(j, ctlPostList(w.cfg.MaxAttach)+int(idxs[i])*8), uint64(w.p.Rank())+1)
	}
	w.ep.EndBatch()
	w.postIdxs, w.postHandles = idxs[:0], handles[:0]
	w.ep.Gsync()
	w.exposureQueue = append(w.exposureQueue, len(g))
}

// Start opens an access epoch to the ranks in group (MPI_Win_start): it
// blocks until every group member's post notification appears in the local
// matching list, consuming the matched entries. Zero remote operations
// (§2.3 "General Active Target Synchronization").
func (w *Win) Start(group []int) {
	if w.accessGroup != nil {
		panic("core: Start while an access epoch is open")
	}
	g := w.checkGroup(group)
	if w.consumed == nil {
		w.consumed = make([]bool, w.cfg.MaxPosts)
	}
	need := make(map[int]int, len(g)) // rank -> outstanding matches needed
	for _, r := range g {
		need[r]++
	}
	listOff := ctlPostList(w.cfg.MaxAttach)
	remaining := len(g)
	w.ep.WaitLocal(func() bool {
		n := int(w.ctl.LocalWord(ctlPostCount))
		if n > w.cfg.MaxPosts {
			n = w.cfg.MaxPosts
		}
		for i := 0; i < n && remaining > 0; i++ {
			if w.consumed[i] {
				continue
			}
			v := w.ctl.LocalWord(listOff + i*8)
			if v == 0 {
				continue // counter raised, rank not yet written
			}
			r := int(v) - 1
			if need[r] > 0 {
				need[r]--
				w.consumed[i] = true
				remaining--
				w.ep.MergeStamp(w.ctl, listOff+i*8, 8)
			}
		}
		return remaining == 0
	})
	w.accessGroup = g
	w.epoch = epochAccess
}

// Complete closes the access epoch (MPI_Win_complete): it guarantees remote
// visibility of all issued RMA operations (gsync), then increments the
// completion counter at every accessed rank. O(k) messages.
func (w *Win) Complete() {
	if w.accessGroup == nil {
		panic("core: Complete without Start")
	}
	w.ep.MemSync()
	w.ep.Gsync()
	// The O(k) completion counters issue as one batch: one pacing check and
	// one memoized control-region lookup per target.
	w.ep.BeginBatch()
	for _, j := range w.accessGroup {
		w.ep.AddNBI(w.ctlAddr(j, ctlComplete), 1)
	}
	w.ep.EndBatch()
	w.ep.Gsync()
	w.accessGroup = nil
	w.epoch = epochNone
}

// WaitEpoch closes the oldest outstanding exposure epoch (MPI_Win_wait):
// it blocks until the local completion counter covers every rank of that
// epoch's group. Zero remote operations.
func (w *Win) WaitEpoch() {
	if len(w.exposureQueue) == 0 {
		panic("core: WaitEpoch without Post")
	}
	w.waitTarget += uint64(w.exposureQueue[0])
	w.exposureQueue = w.exposureQueue[1:]
	target := w.waitTarget
	w.ep.WaitLocal(func() bool { return w.ctl.LocalWord(ctlComplete) >= target })
	w.ep.MergeStamp(w.ctl, ctlComplete, 8)
}

// TestEpoch is the nonblocking MPI_Win_test.
func (w *Win) TestEpoch() bool {
	if len(w.exposureQueue) == 0 {
		panic("core: TestEpoch without Post")
	}
	if w.ctl.LocalWord(ctlComplete) < w.waitTarget+uint64(w.exposureQueue[0]) {
		return false
	}
	w.WaitEpoch() // completes immediately
	return true
}
