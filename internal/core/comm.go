package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"fompi/internal/simnet"
)

// Communication functions (§2.4). The contiguous fast path maps MPI_Put and
// MPI_Get directly onto one fabric operation (adding stepsPutGet software
// steps); accumulates use the DMAPP-accelerated chained atomics for the
// common 8-byte integer operations and fall back to the paper's
// lock-get-accumulate-put protocol for everything else, so true passive
// mode never involves the target CPU.

// AccOp selects an accumulate operator.
type AccOp int

// Accumulate operators. SUM/BAND/BOR/BXOR/REPLACE on 8-byte integers ride
// the hardware atomic unit; MIN, MAX and FSUM (float64 sum) take the
// lock-based fallback, as on Gemini (§2.4, §3.1.3).
const (
	AccSum AccOp = iota
	AccBand
	AccBor
	AccBxor
	AccReplace
	AccMin
	AccMax
	AccFSum
	AccNoOp // fetch-only (MPI_NO_OP)
)

// accelerated reports whether the fabric's atomic unit implements op.
func (op AccOp) accelerated() bool {
	switch op {
	case AccSum, AccBand, AccBor, AccBxor, AccReplace:
		return true
	}
	return false
}

func (op AccOp) amo() simnet.AmoOp {
	switch op {
	case AccSum:
		return simnet.AmoSum
	case AccBand:
		return simnet.AmoBand
	case AccBor:
		return simnet.AmoBor
	case AccBxor:
		return simnet.AmoBxor
	case AccReplace:
		return simnet.AmoReplace
	}
	panic("core: operator not accelerated")
}

// apply computes op(target, operand) for the fallback path.
func (op AccOp) apply(target, operand uint64) uint64 {
	switch op {
	case AccSum:
		return target + operand
	case AccBand:
		return target & operand
	case AccBor:
		return target | operand
	case AccBxor:
		return target ^ operand
	case AccReplace:
		return operand
	case AccMin:
		if operand < target {
			return operand
		}
		return target
	case AccMax:
		if operand > target {
			return operand
		}
		return target
	case AccFSum:
		return math.Float64bits(math.Float64frombits(target) + math.Float64frombits(operand))
	case AccNoOp:
		return target
	default:
		panic("core: unknown accumulate op")
	}
}

// checkEpochAccess faults on communication outside any epoch: bufferless
// protocols have nowhere to queue such operations.
func (w *Win) checkEpochAccess() {
	if w.epoch == epochNone {
		panic("core: RMA communication outside an access epoch (fence, start, or lock first)")
	}
}

// Put transfers src into target's window at displacement disp
// (MPI_Put: nonblocking, completed by the epoch's synchronization).
func (w *Win) Put(src []byte, target, disp int) {
	w.checkEpochAccess()
	w.ep.Steps(stepsPutGet)
	w.ep.PutNBI(w.addrOf(target, disp, len(src)), src)
}

// Get transfers target's window contents at disp into dst (MPI_Get).
func (w *Win) Get(dst []byte, target, disp int) {
	w.checkEpochAccess()
	w.ep.Steps(stepsPutGet)
	w.ep.GetNBI(dst, w.addrOf(target, disp, len(dst)))
}

// RPut is the request-based MPI_Rput: the returned handle completes the
// single operation without a bulk flush.
func (w *Win) RPut(src []byte, target, disp int) simnet.Handle {
	w.checkEpochAccess()
	w.ep.Steps(stepsPutGet)
	return w.ep.PutNB(w.addrOf(target, disp, len(src)), src)
}

// RGet is the request-based MPI_Rget.
func (w *Win) RGet(dst []byte, target, disp int) simnet.Handle {
	w.checkEpochAccess()
	w.ep.Steps(stepsPutGet)
	return w.ep.GetNB(dst, w.addrOf(target, disp, len(dst)))
}

// WaitRequest completes one request-based operation.
func (w *Win) WaitRequest(h simnet.Handle) { w.ep.Wait(h) }

// PutDyn and GetDyn address dynamic windows by (attach slot, offset); the
// origin-side cache protocol of §2.2 resolves them with at most one extra
// remote read per call.

// PutDyn puts src into the attached region slot at target.
func (w *Win) PutDyn(src []byte, target, slot, off int) {
	w.checkEpochAccess()
	w.ep.Steps(stepsPutGet)
	w.ep.PutNBI(w.dynResolve(target, slot, off, len(src)), src)
}

// GetDyn gets from the attached region slot at target.
func (w *Win) GetDyn(dst []byte, target, slot, off int) {
	w.checkEpochAccess()
	w.ep.Steps(stepsPutGet)
	w.ep.GetNBI(dst, w.dynResolve(target, slot, off, len(dst)))
}

// accLockAcquire takes the window-internal accumulate lock of target: the
// serialization point of the fallback protocol. It never involves the
// target CPU (remote CAS spin with back-off).
func (w *Win) accLockAcquire(target int) {
	a := w.ctlAddr(target, ctlAccLock)
	for w.ep.CompareSwap(a, 0, 1) != 0 {
		w.ep.PollRemoteWord(a, func(v uint64) bool { return v == 0 })
	}
}

func (w *Win) accLockRelease(target int) {
	w.ep.AddNBI(w.ctlAddr(target, ctlAccLock), neg(1))
}

// Accumulate applies op element-wise between the 8-byte words of src and
// the target window at disp (MPI_Accumulate with MPI_UINT64_T-sized
// elements, the paper's benchmark configuration). Accelerated operators
// ride the chained atomic unit; others lock, get, accumulate locally, and
// put back (§2.4).
func (w *Win) Accumulate(op AccOp, src []byte, target, disp int) {
	w.checkEpochAccess()
	if len(src)%8 != 0 {
		panic("core: Accumulate needs a multiple of 8 bytes")
	}
	a := w.addrOf(target, disp, len(src))
	if op.accelerated() {
		w.ep.AmoBulkNBI(a, op.amo(), src)
		return
	}
	w.accLockAcquire(target)
	cur := make([]byte, len(src))
	w.ep.GetNBI(cur, a)
	w.ep.Gsync()
	for i := 0; i < len(src); i += 8 {
		t := binary.LittleEndian.Uint64(cur[i:])
		o := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(cur[i:], op.apply(t, o))
	}
	w.ep.Compute(accApplyNs * int64(len(src)/8))
	w.ep.PutNBI(a, cur)
	w.ep.Gsync()
	w.accLockRelease(target)
}

// accApplyNs is the local per-element cost of the fallback's accumulate
// loop; with the wire terms it yields the paper's P_acc,min slope of
// ~0.8 ns per byte.
const accApplyNs = 4

// GetAccumulate fetches the previous target contents into result while
// applying op(src) to the target (MPI_Get_accumulate).
func (w *Win) GetAccumulate(op AccOp, src, result []byte, target, disp int) {
	w.checkEpochAccess()
	if len(src) != len(result) || len(src)%8 != 0 {
		panic("core: GetAccumulate needs equal, 8-byte-multiple buffers")
	}
	a := w.addrOf(target, disp, len(src))
	if op == AccSum && len(src) == 8 {
		// Single-element fetching AMO: the hardware fast path.
		old := w.ep.FetchAdd(a, binary.LittleEndian.Uint64(src))
		binary.LittleEndian.PutUint64(result, old)
		return
	}
	w.accLockAcquire(target)
	w.ep.GetNBI(result, a)
	w.ep.Gsync()
	if op != AccNoOp {
		out := make([]byte, len(src))
		for i := 0; i < len(src); i += 8 {
			t := binary.LittleEndian.Uint64(result[i:])
			o := binary.LittleEndian.Uint64(src[i:])
			binary.LittleEndian.PutUint64(out[i:], op.apply(t, o))
		}
		w.ep.Compute(accApplyNs * int64(len(src)/8))
		w.ep.PutNBI(a, out)
		w.ep.Gsync()
	}
	w.accLockRelease(target)
}

// FetchAndOp is the single-element MPI_Fetch_and_op: op(target, src) with
// the previous value returned. SUM maps to one hardware fetch-add; REPLACE
// to swap; NO_OP to an atomic read; the rest take the fallback.
func (w *Win) FetchAndOp(op AccOp, src uint64, target, disp int) uint64 {
	w.checkEpochAccess()
	a := w.addrOf(target, disp, 8)
	switch op {
	case AccSum:
		return w.ep.FetchAdd(a, src)
	case AccReplace:
		return w.ep.Swap(a, src)
	case AccNoOp:
		return w.ep.LoadW(a)
	default:
		var sb, rb [8]byte
		binary.LittleEndian.PutUint64(sb[:], src)
		w.GetAccumulate(op, sb[:], rb[:], target, disp)
		return binary.LittleEndian.Uint64(rb[:])
	}
}

// CompareAndSwap is MPI_Compare_and_swap on one 8-byte element.
func (w *Win) CompareAndSwap(compare, swap uint64, target, disp int) uint64 {
	w.checkEpochAccess()
	return w.ep.CompareSwap(w.addrOf(target, disp, 8), compare, swap)
}

// boundsErr formats a window access error (used by tests).
func boundsErr(off, n, size, rank int) string {
	return fmt.Sprintf("core: access [%d,%d) exceeds window of %d bytes at rank %d", off, off+n, size, rank)
}
