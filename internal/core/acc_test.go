package core

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"fompi/internal/spmd"
)

// TestAccOpApplyTable drives AccOp.apply through every operator over edge
// values: zero, all-ones, sign/MSB patterns, float64 payloads for FSUM.
func TestAccOpApplyTable(t *testing.T) {
	const (
		ones = ^uint64(0)
		msb  = uint64(1) << 63
	)
	f := math.Float64bits
	cases := []struct {
		name            string
		op              AccOp
		target, operand uint64
		want            uint64
	}{
		{"sum", AccSum, 40, 2, 42},
		{"sum wraps", AccSum, ones, 1, 0},
		{"sum zero", AccSum, 0, 0, 0},
		{"band", AccBand, 0b1100, 0b1010, 0b1000},
		{"band ones", AccBand, ones, msb, msb},
		{"bor", AccBor, 0b1100, 0b1010, 0b1110},
		{"bor zero", AccBor, 0, 0, 0},
		{"bxor", AccBxor, 0b1100, 0b1010, 0b0110},
		{"bxor self-inverse", AccBxor, ones, ones, 0},
		{"replace", AccReplace, 7, 99, 99},
		{"replace with zero", AccReplace, 7, 0, 0},
		{"min takes operand", AccMin, 10, 3, 3},
		{"min keeps target", AccMin, 3, 10, 3},
		{"min equal", AccMin, 5, 5, 5},
		{"min unsigned msb", AccMin, msb, 1, 1}, // unsigned compare: MSB is large
		{"max takes operand", AccMax, 3, 10, 10},
		{"max keeps target", AccMax, 10, 3, 10},
		{"max unsigned msb", AccMax, msb, 1, msb},
		{"fsum", AccFSum, f(1.5), f(2.25), f(3.75)},
		{"fsum negative", AccFSum, f(-1.0), f(1.0), f(0.0)},
		{"fsum inf", AccFSum, f(math.Inf(1)), f(1), f(math.Inf(1))},
		{"noop", AccNoOp, 123, 456, 123},
	}
	for _, tc := range cases {
		if got := tc.op.apply(tc.target, tc.operand); got != tc.want {
			t.Errorf("%s: apply(%#x, %#x) = %#x, want %#x", tc.name, tc.target, tc.operand, got, tc.want)
		}
	}
}

func TestAccOpUnknownFaults(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("apply of an unknown operator must fault")
		}
	}()
	AccOp(99).apply(1, 2)
}

func TestAcceleratedSet(t *testing.T) {
	accel := map[AccOp]bool{AccSum: true, AccBand: true, AccBor: true, AccBxor: true, AccReplace: true}
	for op := AccSum; op <= AccNoOp; op++ {
		if got := op.accelerated(); got != accel[op] {
			t.Errorf("op %d accelerated() = %v, want %v", op, got, accel[op])
		}
	}
}

// TestAccumulateAllOpsOverWindow runs every operator through the full
// Accumulate path (accelerated chained AMOs and the lock-get-modify-put
// fallback) at one- and multi-element operand widths and checks the target
// memory against apply.
func TestAccumulateAllOpsOverWindow(t *testing.T) {
	ops := []AccOp{AccSum, AccBand, AccBor, AccBxor, AccReplace, AccMin, AccMax, AccFSum}
	widths := []int{1, 2, 7, 64}
	run(t, 2, 1, func(p *spmd.Proc) {
		const maxW = 64
		w, mem := Allocate(p, maxW*8, Config{})
		defer w.Free()
		for _, op := range ops {
			for _, width := range widths {
				// Deterministic operands; targets seeded identically everywhere.
				for i := 0; i < maxW; i++ {
					binary.LittleEndian.PutUint64(mem[i*8:], uint64(i)*0x0101010101010101>>3)
				}
				w.Fence()
				if p.Rank() == 0 {
					src := make([]byte, width*8)
					for i := 0; i < width; i++ {
						binary.LittleEndian.PutUint64(src[i*8:], uint64(i)+3)
					}
					w.Accumulate(op, src, 1, 0)
				}
				w.Fence()
				if p.Rank() == 1 {
					for i := 0; i < width; i++ {
						got := binary.LittleEndian.Uint64(mem[i*8:])
						tgt := uint64(i) * 0x0101010101010101 >> 3
						if got != op.apply(tgt, uint64(i)+3) {
							t.Errorf("op %d width %d elem %d: got %#x", op, width, i, got)
						}
					}
				}
				w.Fence()
			}
		}
	})
}

func TestGetAccumulateFetchesOldValues(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		w, mem := Allocate(p, 64, Config{})
		defer w.Free()
		if p.Rank() == 1 {
			for i := 0; i < 4; i++ {
				binary.LittleEndian.PutUint64(mem[i*8:], uint64(10+i))
			}
		}
		w.Fence()
		if p.Rank() == 0 {
			src := make([]byte, 32)
			res := make([]byte, 32)
			for i := 0; i < 4; i++ {
				binary.LittleEndian.PutUint64(src[i*8:], 100)
			}
			w.GetAccumulate(AccMax, src, res, 1, 0)
			w.Flush(1)
			for i := 0; i < 4; i++ {
				if got := binary.LittleEndian.Uint64(res[i*8:]); got != uint64(10+i) {
					t.Errorf("fetched elem %d = %d, want %d", i, got, 10+i)
				}
			}
			// NoOp fetches without modifying.
			w.GetAccumulate(AccNoOp, src, res, 1, 0)
			w.Flush(1)
			for i := 0; i < 4; i++ {
				if got := binary.LittleEndian.Uint64(res[i*8:]); got != 100 {
					t.Errorf("after MAX(100): fetched elem %d = %d, want 100", i, got)
				}
			}
		}
		w.Fence()
	})
}

func TestFetchAndOpAllPaths(t *testing.T) {
	run(t, 2, 1, func(p *spmd.Proc) {
		w, mem := Allocate(p, 64, Config{})
		defer w.Free()
		if p.Rank() == 1 {
			binary.LittleEndian.PutUint64(mem, 50)
		}
		w.Fence()
		if p.Rank() == 0 {
			w.LockAll()
			if old := w.FetchAndOp(AccSum, 5, 1, 0); old != 50 { // hardware fetch-add
				t.Errorf("SUM old = %d, want 50", old)
			}
			if old := w.FetchAndOp(AccNoOp, 0, 1, 0); old != 55 { // atomic read
				t.Errorf("NoOp old = %d, want 55", old)
			}
			if old := w.FetchAndOp(AccReplace, 7, 1, 0); old != 55 { // swap
				t.Errorf("REPLACE old = %d, want 55", old)
			}
			if old := w.FetchAndOp(AccMin, 3, 1, 0); old != 7 { // fallback path
				t.Errorf("MIN old = %d, want 7", old)
			}
			if old := w.FetchAndOp(AccNoOp, 0, 1, 0); old != 3 {
				t.Errorf("after MIN(3): value = %d, want 3", old)
			}
			w.UnlockAll()
		}
		w.Fence()
	})
}

func TestAccumulateOddLengthFaults(t *testing.T) {
	err := spmd.Run(spmd.Config{Ranks: 2}, func(p *spmd.Proc) {
		w, _ := Allocate(p, 64, Config{})
		w.Fence()
		if p.Rank() == 0 {
			w.Accumulate(AccSum, make([]byte, 12), 1, 0) // not a multiple of 8
		}
		w.Fence()
	})
	if err == nil {
		t.Fatal("Accumulate with a non-multiple-of-8 buffer must fault")
	}
}

func TestBoundsErrMessage(t *testing.T) {
	msg := boundsErr(100, 32, 64, 3)
	for _, frag := range []string{"[100,132)", "64 bytes", "rank 3"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("boundsErr %q missing %q", msg, frag)
		}
	}
}

// TestAccumulateBoundsFault checks that an accumulate landing beyond the
// target window faults with the bounds error, on both dispatch paths.
func TestAccumulateBoundsFault(t *testing.T) {
	for _, op := range []AccOp{AccSum /* accelerated */, AccMin /* fallback */} {
		err := spmd.Run(spmd.Config{Ranks: 2}, func(p *spmd.Proc) {
			w := Create(p, make([]byte, 64), Config{})
			w.Fence()
			if p.Rank() == 0 {
				w.Accumulate(op, make([]byte, 16), 1, 56) // [56,72) > 64
			}
			w.Fence()
		})
		if err == nil {
			t.Fatalf("op %d: out-of-bounds accumulate must fault", op)
		}
		if !strings.Contains(err.Error(), "exceeds window of 64 bytes") {
			t.Errorf("op %d: error %q is not the bounds fault", op, err)
		}
	}
}

func TestPutBoundsFaultMatchesBoundsErr(t *testing.T) {
	err := spmd.Run(spmd.Config{Ranks: 2}, func(p *spmd.Proc) {
		w := Create(p, make([]byte, 128), Config{})
		w.Fence()
		if p.Rank() == 0 {
			w.Put(make([]byte, 64), 1, 100) // [100,164) > 128
		}
		w.Fence()
	})
	if err == nil {
		t.Fatal("out-of-bounds put must fault")
	}
	if !strings.Contains(err.Error(), boundsErr(100, 64, 128, 1)) {
		t.Errorf("fault %q does not carry boundsErr text %q", err, boundsErr(100, 64, 128, 1))
	}
}
