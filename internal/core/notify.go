package core

import (
	"fmt"

	"fompi/internal/simnet"
	"fompi/internal/timing"
)

// Notified access (the foMPI-NA extension of Belli & Hoefler, IPDPS'15):
// PutNotify and GetNotify behave like Put and Get but additionally deposit a
// tagged notification into the target's per-window ring once the data has
// landed. The target matches notifications by tag with WaitNotify and
// TestNotify — a single-word local poll — instead of closing a fence, PSCW,
// or lock epoch just to learn "the data has arrived". Both the delivery ring
// and the unmatched list are bounded by Config.MaxNotify, consistent with
// the paper's bounded-buffer discipline: overflow faults loudly.

// maxNotifyTag bounds tags to 31 bits: the notification word packs
// tag(31) | seq(32), with the top bit reserved by the fabric ring.
const maxNotifyTag = 1<<31 - 1

// packNotify builds the wire word from a tag and the origin's send sequence.
func packNotify(tag uint32, seq uint32) uint64 {
	return uint64(tag)<<32 | uint64(seq)
}

// notifyTag extracts the tag of a wire word.
func notifyTag(w uint64) uint32 { return uint32(w >> 32) }

// notifySeq extracts the origin send sequence of a wire word.
func notifySeqOf(w uint64) uint32 { return uint32(w) }

// checkTag validates a user tag.
func checkTag(tag uint32) {
	if tag > maxNotifyTag {
		panic(fmt.Sprintf("core: notification tag %d exceeds 31 bits", tag))
	}
}

// notifyRingAddr returns the fabric address of rank's notification ring.
func (w *Win) notifyRingAddr(rank int) simnet.Addr {
	return w.ctlAddr(rank, ctlNotifyRing(w.cfg))
}

// nextNotifyWord stamps one outgoing notification with this origin's
// monotone send counter (the "epoch counter" of the notification word;
// receivers use it to order or debug deliveries from one origin).
func (w *Win) nextNotifyWord(tag uint32) uint64 {
	checkTag(tag)
	w.notifySeq++
	return packNotify(tag, w.notifySeq)
}

// PutNotify transfers src into target's window at displacement disp and
// delivers a notification carrying tag into target's ring after the data is
// remotely complete (data-before-notification ordering). Like Put it is
// nonblocking and completed by the epoch's synchronization; the target needs
// only WaitNotify(tag) — no epoch close — to consume the data.
func (w *Win) PutNotify(src []byte, target, disp int, tag uint32) {
	w.checkEpochAccess()
	w.ep.Steps(stepsPutGet + stepsNotify)
	w.ep.PutNotify(w.addrOf(target, disp, len(src)), src, w.notifyRingAddr(target), w.nextNotifyWord(tag))
}

// GetNotify transfers target's window contents at disp into dst (blocking,
// like a completed Get) and notifies the *target* that its memory has been
// read — the notified-get that lets a producer reuse a buffer as soon as the
// consumer has fetched it.
func (w *Win) GetNotify(dst []byte, target, disp int, tag uint32) {
	w.checkEpochAccess()
	w.ep.Steps(stepsPutGet + stepsNotify)
	w.ep.GetNotify(dst, w.addrOf(target, disp, len(dst)), w.notifyRingAddr(target), w.nextNotifyWord(tag))
}

// Notify delivers a bare tagged notification with no data: the credit and
// doorbell primitive of pipelined protocols. Unlike PutNotify it needs no
// access epoch — it is a pure signal, like the synchronization protocols'
// own flag updates.
func (w *Win) Notify(target int, tag uint32) {
	w.ep.Steps(stepsNotify)
	w.ep.Notify(w.notifyRingAddr(target), w.nextNotifyWord(tag))
}

// pendingNotify is one popped-but-unmatched notification: its wire word and
// its virtual completion stamp, merged only when the entry is matched (the
// PSCW matching-list discipline — scanning past an entry you are not waiting
// for does not cost its completion time).
type pendingNotify struct {
	word  uint64
	stamp timing.Time
}

// drainNotify pops delivered notifications until the ring is empty or an
// entry matching tag appears; a match is consumed directly (stamp merged)
// rather than parked, so a consumer that is keeping up never faults on
// entries it is about to remove. Non-matching entries go to the bounded
// unmatched list, and exceeding it faults.
func (w *Win) drainNotify(tag uint32) (uint64, bool) {
	for {
		v, stamp, ok := w.notifyRing.TryPopStamped(w.ep)
		if !ok {
			return 0, false
		}
		if notifyTag(v) == tag {
			w.ep.AdvanceTo(stamp)
			return v, true
		}
		if len(w.notifyPending) >= w.cfg.MaxNotify {
			panic(fmt.Sprintf("core: notification matching list exhausted (%d unmatched); raise Config.MaxNotify", w.cfg.MaxNotify))
		}
		w.notifyPending = append(w.notifyPending, pendingNotify{word: v, stamp: stamp})
	}
}

// takePending removes the oldest unmatched notification with the given tag,
// merging its completion stamp into the rank's clock.
func (w *Win) takePending(tag uint32) (uint64, bool) {
	for i, v := range w.notifyPending {
		if notifyTag(v.word) == tag {
			w.notifyPending = append(w.notifyPending[:i], w.notifyPending[i+1:]...)
			w.ep.AdvanceTo(v.stamp)
			return v.word, true
		}
	}
	return 0, false
}

// TestNotify consumes one notification matching tag if one has been
// delivered, returning the origin's send sequence. It never blocks: the
// MPI_Test-shaped half of the notified-access pair.
func (w *Win) TestNotify(tag uint32) (uint32, bool) {
	checkTag(tag)
	// Parked entries are older than anything still in the ring, so they
	// match first to preserve per-origin FIFO order within a tag.
	if v, ok := w.takePending(tag); ok {
		w.Sync()
		return notifySeqOf(v), true
	}
	if v, ok := w.drainNotify(tag); ok {
		w.Sync()
		return notifySeqOf(v), true
	}
	return 0, false
}

// WaitNotify blocks until a notification matching tag is delivered and
// consumes it, returning the origin's send sequence. The wait is a local
// single-word poll (producers ring the doorbell); consuming merges the
// notification's virtual completion stamp, so the announced data is visible
// afterward. Any epoch state is acceptable: the target side of notified
// access needs no epoch at all.
func (w *Win) WaitNotify(tag uint32) uint32 {
	checkTag(tag)
	var seq uint32
	// Drain and match inside the wait predicate: a ring entry whose ticket
	// is reserved but whose word is not yet published must put the consumer
	// back to sleep until the producer's doorbell, not spin.
	w.ep.WaitLocal(func() bool {
		if v, ok := w.takePending(tag); ok {
			seq = notifySeqOf(v)
			return true
		}
		if v, ok := w.drainNotify(tag); ok {
			seq = notifySeqOf(v)
			return true
		}
		return false
	})
	w.Sync()
	return seq
}

// PendingNotify reports how many delivered notifications are waiting
// (matched ring entries plus unmatched list), an instrumentation hook.
func (w *Win) PendingNotify() int {
	return w.notifyRing.Pending() + len(w.notifyPending)
}
