package spmd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"fompi/internal/timing"
)

func TestRunSpawnsAllRanks(t *testing.T) {
	var count int64
	err := Run(Config{Ranks: 17}, func(p *Proc) {
		atomic.AddInt64(&count, 1)
		if p.Size() != 17 {
			t.Errorf("Size = %d", p.Size())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 17 {
		t.Fatalf("ran %d ranks, want 17", count)
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	err := Run(Config{Ranks: 8}, func(p *Proc) {
		if p.Rank() == 3 {
			panic("boom")
		}
		p.Barrier() // the others block; abort must free them
	})
	if err == nil || !errors.Is(err, err) || err.Error() != "rank 3 panicked: boom" {
		t.Fatalf("err = %v", err)
	}
}

func TestNodePlacement(t *testing.T) {
	err := Run(Config{Ranks: 8, RanksPerNode: 4}, func(p *Proc) {
		if want := p.Rank() / 4; p.Node() != want {
			t.Errorf("rank %d on node %d, want %d", p.Rank(), p.Node(), want)
		}
		if p.SameNode((p.Rank() + 4) % 8) {
			t.Errorf("rank %d should not share a node with rank %d", p.Rank(), (p.Rank()+4)%8)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16, 33} {
		var phase int64
		err := Run(Config{Ranks: n, RanksPerNode: 4}, func(p *Proc) {
			atomic.AddInt64(&phase, 1)
			p.Barrier()
			if got := atomic.LoadInt64(&phase); got != int64(n) {
				t.Errorf("n=%d rank %d: saw phase %d after barrier", n, p.Rank(), got)
			}
			p.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestBarrierVirtualTimeGrowsLogP(t *testing.T) {
	lat := func(n int) timing.Time {
		var worst int64
		MustRun(Config{Ranks: n, RanksPerNode: 1}, func(p *Proc) {
			p.Barrier() // warm up, align clocks
			start := p.Now()
			p.Barrier()
			hostatomicMax(&worst, int64(p.Now()-start))
		})
		return timing.Time(worst)
	}
	t4, t64 := lat(4), lat(64)
	if t64 <= t4 {
		t.Fatalf("barrier time must grow with p: %v (p=4) vs %v (p=64)", t4, t64)
	}
	// log2(64)/log2(4) = 3; allow generous slack but reject linear growth (16x).
	if float64(t64)/float64(t4) > 8 {
		t.Fatalf("barrier growth looks super-logarithmic: %v -> %v", t4, t64)
	}
}

func hostatomicMax(p *int64, v int64) {
	for {
		c := atomic.LoadInt64(p)
		if v <= c || atomic.CompareAndSwapInt64(p, c, v) {
			return
		}
	}
}

func TestBcast8AllRoots(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 13, 32} {
		err := Run(Config{Ranks: n, RanksPerNode: 4}, func(p *Proc) {
			for root := 0; root < n; root++ {
				var v uint64
				if p.Rank() == root {
					v = uint64(root)*1000 + 7
				}
				got := p.Bcast8(root, v)
				if got != uint64(root)*1000+7 {
					t.Errorf("n=%d root=%d rank=%d: got %d", n, root, p.Rank(), got)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllreduce8Ops(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 6, 8, 16, 31} {
		err := Run(Config{Ranks: n, RanksPerNode: 4}, func(p *Proc) {
			r := uint64(p.Rank())
			if got, want := p.Allreduce8(OpSum, r+1), uint64(n*(n+1)/2); got != want {
				t.Errorf("n=%d sum: got %d want %d", n, got, want)
			}
			if got := p.Allreduce8(OpMin, r+5); got != 5 {
				t.Errorf("n=%d min: got %d", n, got)
			}
			if got, want := p.Allreduce8(OpMax, r), uint64(n-1); got != want {
				t.Errorf("n=%d max: got %d want %d", n, got, want)
			}
			if got := p.Allreduce8(OpBor, uint64(1)<<(p.Rank()%60)); got == 0 {
				t.Errorf("n=%d bor: got 0", n)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllreduceFloatSum(t *testing.T) {
	const n = 9
	err := Run(Config{Ranks: n}, func(p *Proc) {
		v := math.Float64bits(0.5 * float64(p.Rank()+1))
		got := math.Float64frombits(p.Allreduce8(OpFSum, v))
		want := 0.5 * float64(n*(n+1)/2)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("fsum: got %g want %g", got, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 17} {
		err := Run(Config{Ranks: n, RanksPerNode: 4}, func(p *Proc) {
			mine := []byte(fmt.Sprintf("rank-%03d", p.Rank()))
			all := p.Allgather(mine)
			for r := 0; r < n; r++ {
				want := fmt.Sprintf("rank-%03d", r)
				if got := string(all[r*8 : r*8+8]); got != want {
					t.Errorf("n=%d rank %d block %d: %q != %q", n, p.Rank(), r, got, want)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAlltoall(t *testing.T) {
	for _, n := range []int{1, 2, 4, 9, 16} {
		err := Run(Config{Ranks: n, RanksPerNode: 4}, func(p *Proc) {
			send := make([]byte, n*8)
			for j := 0; j < n; j++ {
				binary.LittleEndian.PutUint64(send[j*8:], uint64(p.Rank()*1000+j))
			}
			got := p.Alltoall(send, 8)
			for i := 0; i < n; i++ {
				want := uint64(i*1000 + p.Rank())
				if v := binary.LittleEndian.Uint64(got[i*8:]); v != want {
					t.Errorf("n=%d rank %d from %d: got %d want %d", n, p.Rank(), i, v, want)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestReduceScatterSum(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32, 6, 12} { // pow2 and fallback paths
		err := Run(Config{Ranks: n, RanksPerNode: 4}, func(p *Proc) {
			vec := make([]uint64, n)
			for i := range vec {
				vec[i] = uint64(p.Rank()*i + 1)
			}
			got := p.ReduceScatterSum(vec)
			var want uint64
			for r := 0; r < n; r++ {
				want += uint64(r*p.Rank() + 1)
			}
			if got != want {
				t.Errorf("n=%d rank %d: got %d want %d", n, p.Rank(), got, want)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestCollectivesComposeRepeatedly(t *testing.T) {
	// Interleaving different collectives many times must not corrupt the
	// shared scratch region (seq-number isolation).
	const n = 8
	err := Run(Config{Ranks: n, RanksPerNode: 2}, func(p *Proc) {
		rng := rand.New(rand.NewSource(99)) // same stream on all ranks
		for i := 0; i < 50; i++ {
			switch rng.Intn(4) {
			case 0:
				p.Barrier()
			case 1:
				root := rng.Intn(n)
				want := uint64(i*31 + root)
				v := uint64(0)
				if p.Rank() == root {
					v = want
				}
				if got := p.Bcast8(root, v); got != want {
					t.Errorf("iter %d bcast: got %d want %d", i, got, want)
				}
			case 2:
				if got, want := p.Allreduce8(OpSum, 1), uint64(n); got != want {
					t.Errorf("iter %d allreduce: got %d want %d", i, got, want)
				}
			case 3:
				all := p.Allgather([]byte{byte(p.Rank())})
				for r := 0; r < n; r++ {
					if all[r] != byte(r) {
						t.Errorf("iter %d allgather: block %d = %d", i, r, all[r])
					}
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAllreduceMatchesSequential(t *testing.T) {
	err := quick.Check(func(vals []uint16, opSel uint8) bool {
		if len(vals) == 0 || len(vals) > 12 {
			return true
		}
		op := []Op{OpSum, OpMin, OpMax, OpBand, OpBor}[int(opSel)%5]
		want := uint64(vals[0])
		for _, v := range vals[1:] {
			want = op.Apply(want, uint64(v))
		}
		ok := true
		MustRun(Config{Ranks: len(vals), RanksPerNode: 3}, func(p *Proc) {
			if got := p.Allreduce8(op, uint64(vals[p.Rank()])); got != want {
				ok = false
			}
		})
		return ok
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScratchOverflowPanics(t *testing.T) {
	err := Run(Config{Ranks: 4, ScratchBytes: 1024}, func(p *Proc) {
		p.Allgather(make([]byte, 4096))
	})
	if err == nil {
		t.Fatal("oversized allgather must fail")
	}
}
