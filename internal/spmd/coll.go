package spmd

import (
	"encoding/binary"
	"fmt"

	"fompi/internal/simnet"
	"fompi/internal/wordcoll"
)

// Scratch-region layout: the wordcoll collective header occupies the first
// HdrBytes; the variable tail holds allgather/alltoall flags (p words)
// followed by the payload area.
const hdrBytes = wordcoll.HdrBytes

// Op identifies a reduction operator for word-sized allreduce.
type Op = wordcoll.Op

// Reduction operators. OpFSum treats the word as float64 bits.
const (
	OpSum  = wordcoll.OpSum
	OpMin  = wordcoll.OpMin
	OpMax  = wordcoll.OpMax
	OpBand = wordcoll.OpBand
	OpBor  = wordcoll.OpBor
	OpFSum = wordcoll.OpFSum
)

func (p *Proc) nextSeq() uint64 { p.seq++; return p.seq }

// coll returns the rank's wordcoll handle over its scratch region.
func (p *Proc) coll() wordcoll.Group {
	return wordcoll.Group{
		EP: p.ep, Reg: p.scratchOf(p.rank), Key: 0, Base: 0,
		Rank: p.rank, Size: p.Size(), Seq: &p.seq,
	}
}

// waitFlagGE blocks until the local scratch word at off reaches seq, then
// merges the writer's completion stamp into the clock (gather-area flags).
func (p *Proc) waitFlagGE(off int, seq uint64) {
	reg := p.scratchOf(p.rank)
	p.ep.WaitLocal(func() bool { return reg.LocalWord(off) >= seq })
	p.ep.MergeStamp(reg, off, 8)
}

// Barrier synchronizes all ranks with a dissemination barrier:
// ceil(log2 p) rounds of one remote flag update each.
func (p *Proc) Barrier() { p.coll().Barrier() }

// Bcast8 broadcasts one word from root with a binomial tree.
func (p *Proc) Bcast8(root int, v uint64) uint64 { return p.coll().Bcast8(root, v) }

// Allreduce8 reduces one word across all ranks (recursive doubling); every
// rank returns the full reduction.
func (p *Proc) Allreduce8(op Op, v uint64) uint64 { return p.coll().Allreduce8(op, v) }

// gatherFlagOff returns the offset of gather-area flag slot i.
func (p *Proc) gatherFlagOff(i int) int { return hdrBytes + i*8 }

// gatherDataOff returns the offset of the gather payload area.
func (p *Proc) gatherDataOff() int { return hdrBytes + p.Size()*8 }

func (p *Proc) checkScratch(need int) {
	have := p.scratchOf(p.rank).Size() - p.gatherDataOff()
	if need > have {
		panic(fmt.Sprintf("spmd: collective payload %d B exceeds scratch %d B; raise Config.ScratchBytes", need, have))
	}
}

// Allgather gathers each rank's fixed-size block into rank order on every
// rank (ring algorithm: p-1 neighbor steps).
func (p *Proc) Allgather(mine []byte) []byte {
	n, each := p.Size(), len(mine)
	out := make([]byte, n*each)
	copy(out[p.rank*each:], mine)
	if n == 1 {
		return out
	}
	p.checkScratch(n * each)
	seq := p.nextSeq()
	reg := p.scratchOf(p.rank)
	right := (p.rank + 1) % n
	dataOff := p.gatherDataOff()
	for s := 0; s < n-1; s++ {
		sendIdx := (p.rank - s + n) % n
		var block []byte
		if sendIdx == p.rank {
			block = mine
		} else {
			block = reg.Bytes()[dataOff+sendIdx*each : dataOff+(sendIdx+1)*each]
		}
		// One batch per ring step: the payload put and its flag cost one
		// pacing check and ring the neighbor's doorbell once.
		p.ep.BeginBatch()
		p.ep.PutNBI(simnet.Addr{Rank: right, Key: 0, Off: dataOff + sendIdx*each}, block)
		p.ep.StoreW(simnet.Addr{Rank: right, Key: 0, Off: p.gatherFlagOff(s)}, seq)
		p.ep.EndBatch()

		recvIdx := (p.rank - s - 1 + n) % n
		p.waitFlagGE(p.gatherFlagOff(s), seq)
		p.ep.MergeStamp(reg, dataOff+recvIdx*each, each)
		copy(out[recvIdx*each:], reg.Bytes()[dataOff+recvIdx*each:dataOff+(recvIdx+1)*each])
	}
	p.Barrier() // protect scratch reuse by the next collective
	return out
}

// Alltoall delivers block j of send (p blocks of each bytes) to rank j;
// the result holds block i from rank i.
func (p *Proc) Alltoall(send []byte, each int) []byte {
	n := p.Size()
	if len(send) != n*each {
		panic("spmd: Alltoall send length must be ranks*each")
	}
	p.checkScratch(n * each)
	seq := p.nextSeq()
	reg := p.scratchOf(p.rank)
	dataOff := p.gatherDataOff()
	out := make([]byte, n*each)
	copy(out[p.rank*each:], send[p.rank*each:(p.rank+1)*each])
	// The whole send phase is one batch: one pacing check for 2(p-1)
	// operations, and each peer's doorbell rings once (after both its
	// payload and flag have landed) instead of twice.
	p.ep.BeginBatch()
	for d := 1; d < n; d++ {
		j := (p.rank + d) % n
		p.ep.PutNBI(simnet.Addr{Rank: j, Key: 0, Off: dataOff + p.rank*each},
			send[j*each:(j+1)*each])
	}
	for d := 1; d < n; d++ {
		j := (p.rank + d) % n
		p.ep.StoreW(simnet.Addr{Rank: j, Key: 0, Off: p.gatherFlagOff(p.rank)}, seq)
	}
	p.ep.EndBatch()
	for d := 1; d < n; d++ {
		i := (p.rank - d + n) % n
		p.waitFlagGE(p.gatherFlagOff(i), seq)
		p.ep.MergeStamp(reg, dataOff+i*each, each)
		copy(out[i*each:], reg.Bytes()[dataOff+i*each:dataOff+(i+1)*each])
	}
	p.Barrier()
	return out
}

// ReduceScatterSum reduces a p-element uint64 vector element-wise across all
// ranks and returns element `rank` of the sum to each rank (the counting
// pattern DSDE uses). Power-of-two rank counts use recursive halving
// (log p rounds); others fall back to alltoall plus local summation.
func (p *Proc) ReduceScatterSum(vec []uint64) uint64 {
	n := p.Size()
	if len(vec) != n {
		panic("spmd: ReduceScatterSum needs one element per rank")
	}
	if n == 1 {
		return vec[0]
	}
	if n&(n-1) != 0 {
		buf := make([]byte, n*8)
		for i, v := range vec {
			binary.LittleEndian.PutUint64(buf[i*8:], v)
		}
		got := p.Alltoall(buf, 8)
		var sum uint64
		for i := 0; i < n; i++ {
			sum += binary.LittleEndian.Uint64(got[i*8:])
		}
		return sum
	}

	acc := make([]uint64, n)
	copy(acc, vec)
	p.checkScratch(n * 8) // per-round slots sum to < n words
	seq := p.nextSeq()
	reg := p.scratchOf(p.rank)
	dataOff := p.gatherDataOff()

	lo, cnt, round, slotOff := 0, n, 0, 0
	for mask := n / 2; mask > 0; mask >>= 1 {
		peer := p.rank ^ mask
		half := cnt / 2
		var sendLo, keepLo int
		if p.rank&mask == 0 {
			keepLo, sendLo = lo, lo+half
		} else {
			keepLo, sendLo = lo+half, lo
		}
		buf := make([]byte, half*8)
		for i := 0; i < half; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], acc[sendLo+i])
		}
		p.ep.BeginBatch()
		p.ep.PutNBI(simnet.Addr{Rank: peer, Key: 0, Off: dataOff + slotOff}, buf)
		p.ep.StoreW(simnet.Addr{Rank: peer, Key: 0, Off: p.gatherFlagOff(round)}, seq)
		p.ep.EndBatch()

		p.waitFlagGE(p.gatherFlagOff(round), seq)
		p.ep.MergeStamp(reg, dataOff+slotOff, half*8)
		in := reg.Bytes()[dataOff+slotOff : dataOff+slotOff+half*8]
		for i := 0; i < half; i++ {
			acc[keepLo+i] += binary.LittleEndian.Uint64(in[i*8:])
		}
		lo, cnt = keepLo, half
		slotOff += half * 8
		round++
	}
	p.Barrier()
	return acc[p.rank]
}
