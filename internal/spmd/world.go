// Package spmd runs single-program-multiple-data rank programs over a
// transport backend: the stand-in for the job launcher plus the process
// runtime that foMPI inherits from Cray MPI. Four backends exist, selected
// by Config.Backend: the default in-process fabric (each rank is a goroutine
// over internal/simnet's Fabric), the multi-process runtime (each rank is an
// OS process over internal/mprun's shared-memory/Unix-socket world), the
// inter-node runtime (OS processes over internal/netrun's TCP wire), and the
// hybrid runtime (internal/hybridrun: netrun's world with same-host ranks
// grouped onto shared-memory arenas).
// Each rank receives a fabric endpoint, a scratch region for the built-in
// collectives, and its own virtual clock. Collectives (dissemination
// barrier, binomial broadcast, recursive-doubling allreduce, ring allgather,
// ...) are implemented with one-sided fabric operations so their virtual
// cost is whatever the executed communication pattern costs — O(log p)
// rounds, not a formula — and is bit-identical across backends.
package spmd

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"fompi/internal/hybridrun"
	"fompi/internal/mprun"
	"fompi/internal/netrun"
	"fompi/internal/rankio"
	"fompi/internal/segpool"
	"fompi/internal/simnet"
	"fompi/internal/telemetry"
	"fompi/internal/timing"
)

// startDebug binds the optional observability HTTP listener (expvar +
// pprof) when FOMPI_DEBUG_ADDR is set. A bind failure is a warning, not a
// world error: several worker processes on one host race for a fixed port,
// and whichever wins serves the host's debug endpoint.
var debugOnce sync.Once

func startDebug() {
	debugOnce.Do(func() {
		addr := os.Getenv(telemetry.EnvDebugAddr)
		if addr == "" {
			return
		}
		if bound, err := telemetry.ServeDebug(addr); err != nil {
			rankio.Logf("spmd", "debug listener %s: %v", addr, err)
		} else {
			rankio.Logf("spmd", "debug listener on http://%s/debug/vars (pprof under /debug/pprof/)", bound)
		}
	})
}

// dumpRankStats emits one rank's telemetry snapshot as a one-line JSON
// stats dump on stderr (the FOMPI_STATS per-rank view; the coordinator's
// merged aggregate is published separately by the launcher).
func dumpRankStats(rank int) {
	if !telemetry.On() {
		return
	}
	rankio.Logf("stats", "%s", telemetry.Capture(rank).JSON())
}

// Backend selects the transport substrate of a world.
type Backend string

const (
	// BackendInProc runs ranks as goroutines over the in-process simnet
	// fabric: the default, and the only backend the perf harness measures.
	BackendInProc Backend = "proc"
	// BackendMP runs each rank as an OS process: registered memory lives in
	// one mmap-shared segment (the XPMEM-style fast path made real) and
	// control/doorbell traffic travels over Unix sockets. Virtual time stays
	// in the timing layer, so results are bit-identical to BackendInProc.
	BackendMP Backend = "mp"
	// BackendNet runs each rank as an OS process on (potentially) a
	// different machine: every remote-memory operation travels as a framed
	// message over TCP to the owning rank's service loop (internal/netrun).
	// Virtual time stays in the timing layer, so results remain
	// bit-identical to the other backends.
	BackendNet Backend = "net"
	// BackendHybrid runs the inter-node world with topology awareness: ranks
	// sharing a physical host (by rendezvoused host key) map one shared
	// arena — direct loads/stores and working shared windows, as on
	// BackendMP — while off-host ranks are reached over BackendNet's wire
	// (internal/hybridrun). Results remain bit-identical to the other
	// backends.
	BackendHybrid Backend = "hybrid"
)

// Config describes a world: the rank count, node width, the cost model of
// the transport layer under test, and the scratch bytes reserved per rank
// for collective payloads.
type Config struct {
	Ranks        int
	RanksPerNode int
	Model        *simnet.CostModel
	ScratchBytes int
	// PaceWindowNs bounds virtual-clock divergence between ranks (see
	// simnet.Fabric.SetPacing); 0 disables pacing.
	PaceWindowNs int64

	// Backend selects the transport substrate; empty means BackendInProc.
	Backend Backend
	// MPArenaBytes sizes each rank's registered-memory arena on the
	// multi-process backend (default 16 MiB; ignored elsewhere).
	MPArenaBytes int
	// MPRelaunch is the argv the multi-process backends (mp and net
	// loopback mode) re-execute as worker ranks; nil re-executes this
	// process's own command line, which is correct for SPMD programs whose
	// main reaches the same Run call. Test harnesses set it to target one
	// test (e.g. os.Args[0] plus a -test.run pattern).
	MPRelaunch []string
	// NetListen is the inter-node coordinator's listen address (BackendNet
	// only); empty selects loopback spawn mode, where the launcher
	// re-executes MPRelaunch once per rank on this machine.
	NetListen string
	// NetHosts, when non-empty, puts BackendNet in host-list mode: the
	// launcher only coordinates, and the operator starts one worker per
	// rank across the listed machines with FOMPI_NET_COORD set (see
	// internal/netrun and cmd/fompi-run).
	NetHosts []string
	// NetTagOutput prefixes spawned ranks' stdout/stderr with "[rank N]"
	// (net loopback spawn mode; cmd/fompi-run sets it).
	NetTagOutput bool
	// NetJoinTimeout bounds the rendezvous on the net/hybrid backends: how
	// long the coordinator waits for all ranks to join before failing with
	// a typed error naming the absent ranks (see netrun.ErrJoinTimeout).
	// Zero keeps netrun's 60 s default.
	NetJoinTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.RanksPerNode <= 0 {
		c.RanksPerNode = 1
	}
	if c.Model == nil {
		c.Model = simnet.FoMPI()
	}
	if c.ScratchBytes <= 0 {
		// The built-in collectives need p words of flags plus the payload
		// area; the layers above exchange at most tens of bytes per rank
		// (window descriptors), so the default scales with the world rather
		// than reserving a fixed megabyte per rank. Workloads with larger
		// collective payloads set ScratchBytes explicitly.
		c.ScratchBytes = 64 << 10
		if need := 64 * c.Ranks; need > c.ScratchBytes {
			c.ScratchBytes = need
		}
	}
	if c.Backend == "" {
		c.Backend = BackendInProc
	}
	if c.MPArenaBytes <= 0 {
		c.MPArenaBytes = 16 << 20
	}
	return c
}

// World is the shared state of one SPMD run. Per-rank collective scratch —
// registered bytes plus shadow stamps — comes from the transport's segment
// allocator (the shared pool in process, the rank's shared-memory arena on
// the multi-process backend), and the per-rank handles (procs, endpoints,
// scratch regions) are slab-allocated: worlds are created per experiment
// repetition in the bench sweeps, so NewWorld costs a handful of
// allocations, not a handful per rank.
type World struct {
	cfg     Config
	fab     simnet.Transport
	scratch []simnet.Region // per-rank collective scratch, fabric key 0
	segs    []*segpool.Seg  // backing of scratch, recycled on exit
}

// recycle returns the world's scratch segments to the transport allocator.
// Only safe after every rank goroutine has exited cleanly (an aborted world
// may still have unwinding goroutines holding region references, so it is
// not recycled). Scratch is written exclusively by stamping fabric
// operations (collective flags and payloads), so the scrubbed recycle wipes
// only the parts a run actually touched.
func (w *World) recycle() {
	for r, s := range w.segs {
		if s != nil {
			w.fab.RecycleSeg(r, s, true)
		}
	}
	w.segs = nil
}

// Proc is one rank's handle: its endpoint, scratch region, and collective
// sequence state. A Proc is confined to its rank's goroutine.
type Proc struct {
	world *World
	rank  int
	ep    *simnet.Endpoint
	seq   uint64 // collective invocation number; identical across ranks
}

// Run launches cfg.Ranks ranks executing body and waits for all of them.
// On the default in-process backend the ranks are goroutines; if any rank
// panics, the fabric is aborted (unblocking the others) and the first panic
// is returned as an error.
//
// On the multi-process backend (cfg.Backend == BackendMP) the calling
// process becomes the launcher: it re-executes itself (or cfg.MPRelaunch)
// once per rank, waits for the worker processes, and returns their collected
// status. In a worker process — a BackendMP Run that finds the launcher
// environment — Run executes body for the worker's single rank and then
// calls os.Exit, so code after a BackendMP Run executes only in the
// launcher. BackendInProc runs are unaffected by the environment, so worker
// bodies may still create nested in-process worlds. Programs meant to be
// launched by cmd/fompi-run therefore select BackendMP themselves,
// conventionally via fompi.BackendFromEnv (the launcher exports
// FOMPI_BACKEND=mp), as the examples do.
//
// On clean exit the per-rank scratch segments are recycled into the
// transport's segment allocator and may back an unrelated future world: body
// must not leak goroutines that touch the world after returning, and callers
// must not retain ScratchRegion (or fabric addresses into it) past Run.
func Run(cfg Config, body func(*Proc)) error {
	cfg = cfg.withDefaults()
	startDebug()
	switch cfg.Backend {
	case BackendInProc:
		return runInProc(cfg, body)
	case BackendMP:
		if mprun.IsWorker() {
			runMPWorker(cfg, body) // calls os.Exit; never returns
		}
		return mprun.Launch(mpOptions(cfg))
	case BackendNet:
		// A hybrid worker also carries the netrun environment; it must not
		// join a pure-net world (the backends disagree on where registered
		// memory lives).
		if netrun.IsWorker() && !hybridrun.IsWorker() {
			runNetWorker(cfg, body) // calls os.Exit; never returns
		}
		return netrun.Launch(netOptions(cfg))
	case BackendHybrid:
		if hybridrun.IsWorker() {
			runHybridWorker(cfg, body) // calls os.Exit; never returns
		}
		return hybridrun.Launch(hybridOptions(cfg))
	default:
		return fmt.Errorf("spmd: unknown backend %q", cfg.Backend)
	}
}

func hybridOptions(cfg Config) hybridrun.Options {
	return hybridrun.Options{
		Net:        netOptions(cfg),
		ArenaBytes: cfg.MPArenaBytes,
	}
}

// runHybridWorker executes body as this process's single rank of a hybrid
// world and exits the process (see runCrossWorker).
func runHybridWorker(cfg Config, body func(*Proc)) {
	hw, err := hybridrun.Join(hybridOptions(cfg))
	if err != nil {
		fmt.Fprintf(os.Stderr, "spmd: worker failed to join hybrid world: %v\n", err)
		os.Exit(1)
	}
	runCrossWorker(cfg, hw, body)
}

func netOptions(cfg Config) netrun.Options {
	return netrun.Options{
		Ranks:        cfg.Ranks,
		RanksPerNode: cfg.RanksPerNode,
		PaceWindowNs: cfg.PaceWindowNs,
		Listen:       cfg.NetListen,
		Hosts:        cfg.NetHosts,
		Relaunch:     cfg.MPRelaunch,
		TagOutput:    cfg.NetTagOutput,
		JoinTimeout:  cfg.NetJoinTimeout,
	}
}

// runNetWorker executes body as this process's single rank of an inter-node
// world and exits the process (see runCrossWorker).
func runNetWorker(cfg Config, body func(*Proc)) {
	nw, err := netrun.Join(netOptions(cfg))
	if err != nil {
		fmt.Fprintf(os.Stderr, "spmd: worker failed to join inter-node world: %v\n", err)
		os.Exit(1)
	}
	runCrossWorker(cfg, nw, body)
}

// crossWorld is the worker-side face shared by the cross-process transports
// (mprun, netrun): the Transport itself plus the launcher protocol.
type crossWorld interface {
	simnet.Transport
	Rank() int
	Ready()
	Finish()
	Fail(msg string)
}

// runCrossWorker executes body as this process's single rank of a joined
// cross-process world and exits the process: status 0 after a clean run,
// nonzero after a panic (reported to the launcher over the control channel
// first).
func runCrossWorker(cfg Config, cw crossWorld, body func(*Proc)) {
	rank := cw.Rank()
	w := &World{cfg: cfg, fab: cw, scratch: make([]simnet.Region, cfg.Ranks)}
	p := &Proc{world: w, rank: rank, ep: simnet.NewEndpoint(cw, rank, cfg.Model)}
	// The scratch registration must be this process's first so its key is 0
	// on every rank, the symmetric-key property the collectives assume.
	seg := cw.AllocSeg(rank, hdrBytes+cfg.ScratchBytes)
	p.ep.RegisterBufStampsInto(&w.scratch[rank], seg.Buf, seg.St)
	cw.Ready() // barrier: every rank's scratch is addressable
	ok := func() (ok bool) {
		defer func() {
			if e := recover(); e != nil {
				// Three shapes of death, reported in launcher terms: a peer
				// failure this rank witnessed first-hand (evidence — the
				// launcher prefers it as the world's error), an abort learned
				// second-hand (a symptom, reported with the canonical text
				// rankio.ClassifyFail recognizes), or this rank's own panic.
				var pf *simnet.ErrPeerFailed
				if err, isErr := e.(error); isErr && errors.As(err, &pf) && pf.Cause != nil {
					cw.Fail(fmt.Sprintf("lost peer rank %d: %v", pf.Rank, pf.Cause))
				} else if simnet.IsAbortPanic(e) {
					cw.Fail(rankio.PeerAbortMsg)
				} else {
					cw.Fail(fmt.Sprintf("rank %d panicked: %v", rank, e))
				}
				ok = false
			}
		}()
		body(p)
		return true
	}()
	// The stderr dump precedes Finish deliberately: Finish ships the STATS
	// control frame and the DONE status line, after which the launcher may
	// tear the world down under us. (On the panic path Fail already ran
	// inside the recover; the dump is the local post-mortem copy.)
	dumpRankStats(rank)
	if !ok {
		os.Exit(1)
	}
	cw.Finish()
	os.Exit(0)
}

func mpOptions(cfg Config) mprun.Options {
	return mprun.Options{
		Ranks:        cfg.Ranks,
		RanksPerNode: cfg.RanksPerNode,
		PaceWindowNs: cfg.PaceWindowNs,
		ArenaBytes:   cfg.MPArenaBytes,
		Relaunch:     cfg.MPRelaunch,
	}
}

func runInProc(cfg Config, body func(*Proc)) error {
	w, procs := NewWorld(cfg)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for r := 0; r < w.cfg.Ranks; r++ {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					mu.Lock()
					if firstErr == nil && !simnet.IsAbortPanic(e) {
						firstErr = fmt.Errorf("rank %d panicked: %v", p.rank, e)
					}
					mu.Unlock()
					w.fab.Abort()
				}
			}()
			body(p)
		}(procs[r])
	}
	wg.Wait()
	if firstErr == nil && !w.fab.Aborted() {
		w.recycle()
	}
	// The in-process world has no coordinator to aggregate per-rank frames:
	// every rank shares this process's registry, so one capture *is* the
	// world total. Publish it the way netrun's coordinator would.
	if telemetry.On() {
		snap := telemetry.Capture(-1)
		if path := os.Getenv(telemetry.EnvOut); path != "" {
			if err := os.WriteFile(path, append(snap.JSON(), '\n'), 0o644); err != nil {
				rankio.Logf("stats", "write %s: %v", path, err)
			}
		} else {
			rankio.Logf("stats", "world stats %s", snap.JSON())
		}
	}
	return firstErr
}

// runMPWorker executes body as this process's single rank of a multi-process
// world and exits the process (see runCrossWorker).
func runMPWorker(cfg Config, body func(*Proc)) {
	mw, err := mprun.Join(mpOptions(cfg))
	if err != nil {
		fmt.Fprintf(os.Stderr, "spmd: worker failed to join multi-process world: %v\n", err)
		os.Exit(1)
	}
	runCrossWorker(cfg, mw, body)
}

// MustRun is Run but panics on error; benchmarks and examples use it.
func MustRun(cfg Config, body func(*Proc)) {
	if err := Run(cfg, body); err != nil {
		panic(err)
	}
}

// NewWorld builds the in-process fabric and per-rank procs without spawning
// goroutines; tests that need direct control use it. Multi-process worlds
// cannot be built this way — they exist only inside Run.
func NewWorld(cfg Config) (*World, []*Proc) {
	cfg = cfg.withDefaults()
	fab := simnet.NewFabric(cfg.Ranks, cfg.RanksPerNode)
	fab.SetPacing(cfg.PaceWindowNs)
	w := &World{cfg: cfg, fab: fab}
	w.scratch = make([]simnet.Region, cfg.Ranks)
	w.segs = make([]*segpool.Seg, cfg.Ranks)
	procs := make([]*Proc, cfg.Ranks)
	procSlab := make([]Proc, cfg.Ranks)
	eps := fab.Endpoints(cfg.Model)
	for r := 0; r < cfg.Ranks; r++ {
		p := &procSlab[r]
		*p = Proc{world: w, rank: r, ep: &eps[r]}
		seg := w.fab.AllocSeg(r, hdrBytes+cfg.ScratchBytes)
		w.segs[r] = seg
		p.ep.RegisterBufStampsInto(&w.scratch[r], seg.Buf, seg.St)
		procs[r] = p
	}
	return w, procs
}

// Rank returns this proc's rank in [0, Size).
func (p *Proc) Rank() int { return p.rank }

// Size returns the number of ranks in the world.
func (p *Proc) Size() int { return p.world.cfg.Ranks }

// Node returns the node index hosting this rank.
func (p *Proc) Node() int { return p.world.fab.NodeOf(p.rank) }

// SameNode reports whether peer shares this rank's node.
func (p *Proc) SameNode(peer int) bool { return p.world.fab.SameNode(p.rank, peer) }

// EP exposes the rank's fabric endpoint to protocol layers.
func (p *Proc) EP() *simnet.Endpoint { return p.ep }

// Fabric returns the world's transport backend (for layers that open extra
// endpoints, e.g. baselines measured over the same hardware).
func (p *Proc) Fabric() simnet.Transport { return p.world.fab }

// Now returns the rank's virtual clock.
func (p *Proc) Now() timing.Time { return p.ep.Now() }

// Compute charges ns nanoseconds of local computation.
func (p *Proc) Compute(ns int64) { p.ep.Compute(ns) }

// scratchOf returns the collective scratch region of rank r. Only the
// caller's own rank's region may be dereferenced (on the multi-process
// backend other ranks' handles are zero); remote scratch is addressed by
// (rank, key 0) fabric addresses.
func (p *Proc) scratchOf(r int) *simnet.Region { return &p.world.scratch[r] }

// ScratchRegion exposes the rank's collective scratch region
// (instrumentation and tests). Its backing memory is recycled into the
// scratch pool when Run returns cleanly — do not retain it past the world.
func (p *Proc) ScratchRegion() *simnet.Region { return &p.world.scratch[p.rank] }
