// Package spmd runs single-program-multiple-data rank programs over the
// simulated fabric: the stand-in for the job launcher plus the process
// runtime that foMPI inherits from Cray MPI. Each rank is a goroutine with a
// fabric endpoint, a scratch region for the built-in collectives, and its
// own virtual clock. Collectives (dissemination barrier, binomial broadcast,
// recursive-doubling allreduce, ring allgather, ...) are implemented with
// one-sided fabric operations so their virtual cost is whatever the executed
// communication pattern costs — O(log p) rounds, not a formula.
package spmd

import (
	"fmt"
	"sync"

	"fompi/internal/segpool"
	"fompi/internal/simnet"
	"fompi/internal/timing"
)

// Config describes a world: the rank count, node width, the cost model of
// the transport layer under test, and the scratch bytes reserved per rank
// for collective payloads.
type Config struct {
	Ranks        int
	RanksPerNode int
	Model        *simnet.CostModel
	ScratchBytes int
	// PaceWindowNs bounds virtual-clock divergence between ranks (see
	// simnet.Fabric.SetPacing); 0 disables pacing.
	PaceWindowNs int64
}

func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.RanksPerNode <= 0 {
		c.RanksPerNode = 1
	}
	if c.Model == nil {
		c.Model = simnet.FoMPI()
	}
	if c.ScratchBytes <= 0 {
		// The built-in collectives need p words of flags plus the payload
		// area; the layers above exchange at most tens of bytes per rank
		// (window descriptors), so the default scales with the world rather
		// than reserving a fixed megabyte per rank. Workloads with larger
		// collective payloads set ScratchBytes explicitly.
		c.ScratchBytes = 64 << 10
		if need := 64 * c.Ranks; need > c.ScratchBytes {
			c.ScratchBytes = need
		}
	}
	return c
}

// World is the shared state of one SPMD run. Per-rank collective scratch —
// registered bytes plus shadow stamps — comes from the shared segment pool
// (internal/segpool), and the per-rank handles (procs, endpoints, scratch
// regions) are slab-allocated: worlds are created per experiment repetition
// in the bench sweeps, so NewWorld costs a handful of allocations, not a
// handful per rank.
type World struct {
	cfg     Config
	fab     *simnet.Fabric
	scratch []simnet.Region // per-rank collective scratch, fabric key 0
	segs    []*segpool.Seg  // pooled backing of scratch, recycled on exit
}

// recycle returns the world's scratch segments to the pool. Only safe after
// every rank goroutine has exited cleanly (an aborted world may still have
// unwinding goroutines holding region references, so it is not recycled).
// Scratch is written exclusively by stamping fabric operations (collective
// flags and payloads), so the scrubbed recycle wipes only the parts a run
// actually touched.
func (w *World) recycle() {
	for _, s := range w.segs {
		segpool.PutScrubbed(s)
	}
	w.segs = nil
}

// Proc is one rank's handle: its endpoint, scratch region, and collective
// sequence state. A Proc is confined to its rank's goroutine.
type Proc struct {
	world *World
	rank  int
	ep    *simnet.Endpoint
	seq   uint64 // collective invocation number; identical across ranks
}

// Run launches cfg.Ranks rank goroutines executing body and waits for all of
// them. If any rank panics, the fabric is aborted (unblocking the others)
// and the first panic is returned as an error.
//
// On clean exit the per-rank scratch segments are recycled into a
// process-wide pool and may back an unrelated future world: body must not
// leak goroutines that touch the world after returning, and callers must
// not retain ScratchRegion (or fabric addresses into it) past Run.
func Run(cfg Config, body func(*Proc)) error {
	w, procs := NewWorld(cfg)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for r := 0; r < w.cfg.Ranks; r++ {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					mu.Lock()
					if firstErr == nil && e != simnet.ErrAborted {
						firstErr = fmt.Errorf("rank %d panicked: %v", p.rank, e)
					}
					mu.Unlock()
					w.fab.Abort()
				}
			}()
			body(p)
		}(procs[r])
	}
	wg.Wait()
	if firstErr == nil && !w.fab.Aborted() {
		w.recycle()
	}
	return firstErr
}

// MustRun is Run but panics on error; benchmarks and examples use it.
func MustRun(cfg Config, body func(*Proc)) {
	if err := Run(cfg, body); err != nil {
		panic(err)
	}
}

// NewWorld builds the fabric and per-rank procs without spawning goroutines;
// tests that need direct control use it.
func NewWorld(cfg Config) (*World, []*Proc) {
	cfg = cfg.withDefaults()
	w := &World{cfg: cfg, fab: simnet.NewFabric(cfg.Ranks, cfg.RanksPerNode)}
	w.fab.SetPacing(cfg.PaceWindowNs)
	w.scratch = make([]simnet.Region, cfg.Ranks)
	w.segs = make([]*segpool.Seg, cfg.Ranks)
	procs := make([]*Proc, cfg.Ranks)
	procSlab := make([]Proc, cfg.Ranks)
	eps := w.fab.Endpoints(cfg.Model)
	for r := 0; r < cfg.Ranks; r++ {
		p := &procSlab[r]
		*p = Proc{world: w, rank: r, ep: &eps[r]}
		seg := segpool.Get(hdrBytes + cfg.ScratchBytes)
		w.segs[r] = seg
		p.ep.RegisterBufStampsInto(&w.scratch[r], seg.Buf, seg.St)
		procs[r] = p
	}
	return w, procs
}

// Rank returns this proc's rank in [0, Size).
func (p *Proc) Rank() int { return p.rank }

// Size returns the number of ranks in the world.
func (p *Proc) Size() int { return p.world.cfg.Ranks }

// Node returns the node index hosting this rank.
func (p *Proc) Node() int { return p.world.fab.NodeOf(p.rank) }

// SameNode reports whether peer shares this rank's node.
func (p *Proc) SameNode(peer int) bool { return p.world.fab.SameNode(p.rank, peer) }

// EP exposes the rank's fabric endpoint to protocol layers.
func (p *Proc) EP() *simnet.Endpoint { return p.ep }

// Fabric returns the shared fabric (for layers that open extra endpoints,
// e.g. baselines measured over the same hardware).
func (p *Proc) Fabric() *simnet.Fabric { return p.world.fab }

// Now returns the rank's virtual clock.
func (p *Proc) Now() timing.Time { return p.ep.Now() }

// Compute charges ns nanoseconds of local computation.
func (p *Proc) Compute(ns int64) { p.ep.Compute(ns) }

// scratchOf returns the collective scratch region of rank r.
func (p *Proc) scratchOf(r int) *simnet.Region { return &p.world.scratch[r] }

// ScratchRegion exposes the rank's collective scratch region
// (instrumentation and tests). Its backing memory is recycled into the
// scratch pool when Run returns cleanly — do not retain it past the world.
func (p *Proc) ScratchRegion() *simnet.Region { return &p.world.scratch[p.rank] }
