package netrun

import (
	"fmt"
	"os"
	"sync"

	"fompi/internal/rankio"
	"fompi/internal/telemetry"
)

// The wire engine's metrics (DESIGN.md §13). Counters and histograms are
// process-global and registered by name, so a loopback test hosting both
// workers in one process reads the whole world's totals from one registry.
// The pacing metrics share names with the other backends' valves (the
// registry is idempotent by name), so an aggregated snapshot reports one
// pacing story however the world was launched.
var (
	mBatches     = telemetry.NewCounter("net.batches")     // opBatch frames flushed
	mFusedOps    = telemetry.NewHistogram("net.fused_ops") // sub-ops per flushed opBatch frame
	mWindow      = telemetry.NewHistogram("net.window")    // window occupancy at frame queue time
	mRetransmits = telemetry.NewCounter("net.retransmits") // in-flight frames re-sent after a reconnect
	mResumes     = telemetry.NewCounter("net.resumes")     // mid-window recoveries (redial + suffix replay)
	mDedupHits   = telemetry.NewCounter("net.dedup_hits")  // owner-side cached-reply replays
	mRTT         = telemetry.NewHistogram("net.rtt_ns")    // per-op wire round trip, first send to reply
	mPaceParks   = telemetry.NewCounter("pace.parks")      // pace blocks that actually waited
	mPaceParkNs  = telemetry.NewHistogram("pace.park_ns")  // duration of each pacing block
	mPaceStalls  = telemetry.NewCounter("pace.stalls")     // stall-valve releases (frozen minimum)
	mDoorRings   = telemetry.NewCounter("door.rings")      // doorbell generation bumps served
)

// sendStatsLocked ships this rank's stats frame on the control stream; the
// caller holds ctlWr and writes it *before* the DONE/FAIL status line, so
// the coordinator's per-worker reader is guaranteed to see the snapshot
// before it can account the rank as finished — and therefore before the
// world can reach BYE, Finish can close the listener, or hybridrun can
// unmap its arena (the stats-vs-teardown ordering of ISSUE 10).
func (w *World) sendStatsLocked() {
	if !telemetry.On() {
		return
	}
	fmt.Fprintf(w.ctl, "STATS %s\n", telemetry.Capture(w.rank).JSON())
}

// Coordinator-side aggregation state: the last completed world's merged
// snapshot, readable in-process (hostperf embeds it into its report).
var (
	lastStatsMu sync.Mutex
	lastStats   *telemetry.Snapshot
)

// LastStats returns the aggregated telemetry snapshot of the last world
// this process coordinated, if any world shipped stats frames.
func LastStats() (telemetry.Snapshot, bool) {
	lastStatsMu.Lock()
	defer lastStatsMu.Unlock()
	if lastStats == nil {
		return telemetry.Snapshot{}, false
	}
	return *lastStats, true
}

// publishStats records and emits the aggregate at the end of coordinate():
// to the FOMPI_STATS_OUT file when set, to stderr otherwise. Failure paths
// publish too — a RANKFAIL post-mortem is exactly when the merged flight
// recorder tails matter most.
func publishStats(agg telemetry.Snapshot) {
	if agg.Ranks == 0 {
		return
	}
	lastStatsMu.Lock()
	cp := agg
	lastStats = &cp
	lastStatsMu.Unlock()
	line := agg.JSON()
	if path := os.Getenv(telemetry.EnvOut); path != "" {
		if err := os.WriteFile(path, append(line, '\n'), 0o644); err != nil {
			rankio.Logf("netrun", "write %s: %v", path, err)
		}
		return
	}
	rankio.Logf("netrun", "world stats %s", line)
}
