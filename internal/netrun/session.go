package netrun

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fompi/internal/faultnet"
	"fompi/internal/simnet"
)

// The data-plane session layer (DESIGN.md §11): every requester→owner
// stream carries a resumable session, so a transient transport fault — a
// mid-op TCP reset, a blackholed write — is recovered by re-dialing and
// retransmitting instead of tearing the world down. The requester stamps
// each data-plane request with (sid, seq, ack); the owner records applied
// seqs with their cached reply bytes in a window bounded by the requester's
// cumulative ack; and the opResume handshake on a fresh connection asks the
// owner whether the in-flight op already applied, replaying the cached
// reply when it did. The op therefore executes exactly once however many
// times the connection under it dies, and — since recovery is pure
// real-time plumbing below the Transport line — virtual time stays
// bit-identical to a fault-free run.
//
// Genuinely dead peers still fail fast: the whole resume loop shares one
// opTimeout budget, every iteration observes the coordinator's abort
// verdict, and exhausting the budget lands in the same netFault
// classification the pre-session code used.

// RemoteFault is a fault reported by an owner's service loop in reply to a
// wire operation this rank issued — the remote half of the "faults surface
// in the process that issued the bad operation" contract. It preserves
// which rank reported the fault and the owner-side message verbatim
// (callErr used to re-panic the bare string, losing both).
type RemoteFault struct {
	Rank int    // rank whose service loop reported the fault
	Msg  string // the owner-side panic message, verbatim
}

func (e *RemoteFault) Error() string {
	return fmt.Sprintf("%s [remote fault reported by rank %d]", e.Msg, e.Rank)
}

// sidFor builds this process's session identity: the rank (shifted clear of
// the entropy bits) so owners can reject a session claimed from the wrong
// connection, plus the pid as a tiebreaker against a stray same-rank
// process from a stale world wandering in through a recycled address.
func sidFor(rank, pid int) uint64 {
	return (uint64(rank)+1)<<32 | uint64(uint32(pid))
}

// sidRank recovers the rank a session identity was minted for.
func sidRank(sid uint64) int { return int(sid>>32) - 1 }

// reqSession is the requester half of one rank-pair session: the sequence
// counter and the frame scratch that owns the in-flight request across
// redials (retransmission must survive dropPeer, so data-plane frames are
// built here, not in the connection's buffer).
type reqSession struct {
	seq uint64
	buf []byte
}

// reqData starts a sessioned data-plane request to rank r: the common
// header plus (sid, seq, ack). ack is seq-1 — the endpoint confinement
// contract means at most one op is in flight, so by the time seq issues,
// every reply below it has been seen — and it lets the owner evict all
// cached replies at or below it.
func (w *World) reqData(r int, op uint8) enc {
	s := &w.rsess[r]
	s.seq++
	e := newEnc(s.buf)
	e.u8(op)
	e.i64(atomic.LoadInt64(&w.clocks[w.rank]))
	e.u64(w.sid)
	e.u64(s.seq)
	e.u64(s.seq - 1)
	return e
}

// callData issues one sessioned data-plane request and blocks for its
// reply, transparently recovering from transient transport faults: a failed
// round trip drops the connection, re-dials, re-attaches the session with
// opResume, and either adopts the replayed reply (the op applied before the
// fault) or retransmits the frame (it never arrived). The whole loop runs
// against one opTimeout budget so a genuinely dead peer still surfaces as a
// typed failure within the PR 7 detection promise.
func (w *World) callData(r int, e enc) dec {
	s := &w.rsess[r]
	frame := e.finish()
	s.buf = frame // keep the backing array for the next request
	deadline := time.Now().Add(w.tm.OpTimeout)
	// Per-attempt reply deadline: a blackholed write must not consume the
	// whole budget waiting for a reply that never left, or there would be
	// no budget left to retransmit in.
	slice := w.tm.OpTimeout / 4
	var lastErr error
	for attempt := 0; ; attempt++ {
		if w.Aborted() {
			panic(w.abortPanic())
		}
		if attempt > 0 && time.Now().After(deadline) {
			panic(w.netFault(r, lastErr))
		}
		p, err := w.peerErr(r)
		if err != nil {
			lastErr = err // peerErr already backed off across its dial attempts
			continue
		}
		if attempt > 0 {
			reply, applied, err := w.sendResume(r, p, s, attemptDeadline(deadline, slice))
			if err != nil {
				lastErr = err
				w.dropPeer(r, p)
				continue
			}
			if applied {
				faultnet.Logf("netrun: rank %d resumed session to rank %d, seq %d replayed from cache", w.rank, r, s.seq)
				return w.replyDec(r, reply)
			}
			faultnet.Logf("netrun: rank %d resumed session to rank %d, seq %d retransmitting", w.rank, r, s.seq)
		}
		reply, err := w.wireCall(p, frame, attemptDeadline(deadline, slice))
		if err != nil {
			lastErr = err
			w.dropPeer(r, p)
			faultnet.Logf("netrun: rank %d lost rank %d mid-op (seq %d): %v; reconnecting", w.rank, r, s.seq, err)
			continue
		}
		return w.replyDec(r, reply)
	}
}

// attemptDeadline bounds one attempt: the per-attempt slice, clipped to the
// overall budget.
func attemptDeadline(deadline time.Time, slice time.Duration) time.Time {
	if d := time.Now().Add(slice); d.Before(deadline) {
		return d
	}
	return deadline
}

// wireCall runs one framed round trip on p under a deadline. On success the
// reply buffer is retained in p.rbuf for reuse; on any error the caller
// must drop the connection (its stream may be desynced).
func (w *World) wireCall(p *peerConn, frame []byte, deadline time.Time) ([]byte, error) {
	p.c.SetDeadline(deadline)
	if _, err := p.c.Write(frame); err != nil {
		return nil, err
	}
	reply, err := readFrame(p.rd, p.rbuf)
	if err != nil {
		return nil, err
	}
	p.c.SetDeadline(time.Time{})
	p.rbuf = reply
	if len(reply) == 0 {
		return nil, fmt.Errorf("empty reply")
	}
	return reply, nil
}

// sendResume re-attaches this rank's session on a fresh connection to r and
// asks after the in-flight seq. applied=true means the owner already
// executed it and reply holds the cached reply payload (status byte first —
// a replayed fault is re-delivered byte-identically).
func (w *World) sendResume(r int, p *peerConn, s *reqSession, deadline time.Time) (reply []byte, applied bool, err error) {
	e := newEnc(p.buf)
	e.u8(opResume)
	e.i64(atomic.LoadInt64(&w.clocks[w.rank]))
	e.u64(w.sid)
	e.u64(s.seq)
	e.u64(s.seq - 1)
	frame := e.finish()
	p.buf = frame[:0]
	raw, err := w.wireCall(p, frame, deadline)
	if err != nil {
		return nil, false, err
	}
	if raw[0] == stFault {
		panic(w.remoteFault(r, raw)) // session mismatch: a protocol violation, not a transient
	}
	d := dec{b: raw, pos: 1}
	have := d.boolVal()
	if d.bad {
		return nil, false, fmt.Errorf("truncated resume reply")
	}
	if !have {
		return nil, false, nil
	}
	return raw[2:], true, nil
}

// replyDec classifies one reply payload: faults re-panic typed (RemoteFault
// preserving the owner's rank and message, composed with the abort
// machinery per the fault kind), successes decode past the status byte.
func (w *World) replyDec(owner int, reply []byte) dec {
	if reply[0] == stFault {
		panic(w.remoteFault(owner, reply))
	}
	return dec{b: reply, pos: 1}
}

// remoteFault decodes a structured fault reply into the value the requester
// unwinds with: ErrAborted for an owner that was itself unwinding the world
// abort, *simnet.ErrPeerFailed carrying the blamed rank (recorded locally
// too, so this rank's own abort panic names it), and *RemoteFault for a
// genuine program fault at the owner.
func (w *World) remoteFault(owner int, reply []byte) any {
	d := dec{b: reply, pos: 1}
	kind := d.u8()
	rank := int(d.u32())
	msg := string(d.rest())
	if d.bad {
		return &RemoteFault{Rank: owner, Msg: string(reply[1:])}
	}
	switch kind {
	case faultAborted:
		return simnet.ErrAborted
	case faultPeerFailed:
		w.noteFailedRank(rank)
		return &simnet.ErrPeerFailed{Rank: rank, Cause: &RemoteFault{Rank: owner, Msg: msg}}
	}
	return &RemoteFault{Rank: owner, Msg: msg}
}

// faultReply builds a structured fault reply frame.
func faultReply(scratch []byte, kind uint8, rank int, msg string) []byte {
	f := newEnc(scratch)
	f.u8(stFault)
	f.u8(kind)
	f.u32(uint32(rank))
	f.bytes([]byte(msg))
	return f.finish()
}

// ownerSession is the owner half of one requester's session: the highest
// applied sequence and the cached reply frames not yet covered by the
// requester's cumulative ack. The window stays tiny — the requester has at
// most one op in flight, so at most the current op's reply (plus, briefly,
// its predecessor's) is retained.
type ownerSession struct {
	mu      sync.Mutex
	applied uint64
	replies map[uint64][]byte // seq -> full reply frame, evicted once acked
}

// evictLocked drops every cached reply the requester has acknowledged.
func (s *ownerSession) evictLocked(ack uint64) {
	for k := range s.replies {
		if k <= ack {
			delete(s.replies, k)
		}
	}
}

// session resolves (creating on first use) the state of one session.
func (w *World) session(sid uint64) *ownerSession {
	w.sessMu.Lock()
	defer w.sessMu.Unlock()
	s := w.sessions[sid]
	if s == nil {
		s = &ownerSession{replies: make(map[uint64][]byte)}
		w.sessions[sid] = s
	}
	return s
}

// sessionApply executes one sessioned request exactly once: a seq already
// in the window replays its cached reply byte-identically (fromCache=true —
// the caller must not recycle it as scratch); a fresh seq executes under
// the session lock — held across check, execute, and record, so a zombie
// connection's handler can never interleave a second execution of the same
// seq — and its reply is cached until the requester acks past it.
func (w *World) sessionApply(src int, sid, seq, ack uint64, op uint8, d *dec, scratch []byte) (reply []byte, fromCache bool) {
	if r := sidRank(sid); r != src {
		return faultReply(scratch, faultGeneric, w.rank,
			fmt.Sprintf("netrun: session %#x claims rank %d but its connection said HELLO as rank %d", sid, r, src)), false
	}
	s := w.session(sid)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictLocked(ack)
	if cached, ok := s.replies[seq]; ok {
		return cached, true
	}
	if seq <= s.applied {
		// Applied, acked, evicted — and now re-sent: the requester broke the
		// cumulative-ack contract, and replaying is no longer possible.
		return faultReply(scratch, faultGeneric, w.rank,
			fmt.Sprintf("netrun: session %#x replayed seq %d past its own ack", sid, seq)), false
	}
	reply = w.handle(op, d, scratch)
	s.applied = seq
	s.replies[seq] = append([]byte(nil), reply...)
	return reply, false
}

// sessionResume answers an opResume handshake: whether the named in-flight
// seq already applied, with the cached reply payload inlined when it did.
func (w *World) sessionResume(src int, sid, seq, ack uint64, scratch []byte) []byte {
	if r := sidRank(sid); r != src {
		return faultReply(scratch, faultGeneric, w.rank,
			fmt.Sprintf("netrun: resume of session %#x claims rank %d but its connection said HELLO as rank %d", sid, r, src))
	}
	s := w.session(sid)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictLocked(ack)
	e := newEnc(scratch)
	e.u8(stOK)
	if cached, ok := s.replies[seq]; ok {
		e.u8(1)
		e.bytes(cached[4:]) // the cached frame's payload, inlined past the have byte
	} else {
		e.u8(0)
	}
	return e.finish()
}
