package netrun

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fompi/internal/faultnet"
	"fompi/internal/simnet"
	"fompi/internal/telemetry"
	"fompi/internal/timing"
)

// The data-plane session layer (DESIGN.md §11) and the pipelined wire
// engine riding on it (DESIGN.md §12): every requester→owner stream
// carries a resumable session, so a transient transport fault — a mid-op
// TCP reset, a blackholed write — is recovered by re-dialing and
// retransmitting instead of tearing the world down. The requester stamps
// each data-plane request with (sid, seq, ack) and keeps up to the window
// depth of them in flight; the owner records applied seqs with their
// cached reply bytes in a window bounded by the requester's cumulative
// ack. After a reset the requester retransmits the whole unacked suffix
// verbatim on a fresh connection: every frame it still retains was built
// with an ack below the suffix, so the owner's cache necessarily covers
// the already-applied prefix and answers it byte-identically, in order,
// while the rest executes fresh — each op therefore executes exactly once
// however many times the connection under it dies, and, since recovery is
// pure real-time plumbing below the Transport line, virtual time stays
// bit-identical to a fault-free run.
//
// Genuinely dead peers still fail fast: each drained reply shares one
// opTimeout budget across its retransmissions, every iteration observes
// the coordinator's abort verdict, and exhausting the budget lands in the
// same netFault classification the pre-session code used.

// RemoteFault is a fault reported by an owner's service loop in reply to a
// wire operation this rank issued — the remote half of the "faults surface
// in the process that issued the bad operation" contract. It preserves
// which rank reported the fault and the owner-side message verbatim
// (callErr used to re-panic the bare string, losing both).
type RemoteFault struct {
	Rank int    // rank whose service loop reported the fault
	Msg  string // the owner-side panic message, verbatim
}

func (e *RemoteFault) Error() string {
	return fmt.Sprintf("%s [remote fault reported by rank %d]", e.Msg, e.Rank)
}

// sidFor builds this process's session identity: the rank (shifted clear of
// the entropy bits) so owners can reject a session claimed from the wrong
// connection, plus the pid as a tiebreaker against a stray same-rank
// process from a stale world wandering in through a recycled address.
func sidFor(rank, pid int) uint64 {
	return (uint64(rank)+1)<<32 | uint64(uint32(pid))
}

// sidRank recovers the rank a session identity was minted for.
func sidRank(sid uint64) int { return int(sid>>32) - 1 }

// sinkRef records where one fused sub-op's completion time lands when its
// reply drains: folded with timing.Max (the implicit-completion
// accumulator) or assigned (an explicit handle's slot).
type sinkRef struct {
	p    *timing.Time
	fold bool
}

// pendOp is one window entry: a frame queued or in flight to an owner. The
// frame bytes are retained verbatim until its reply is processed — a
// reconnect retransmits the whole unacked suffix byte-identically, and the
// owner's session cache answers the already-applied prefix in order.
// sinks is nil for a synchronous op (its reply goes back to the caller)
// and one entry per sub-op for an opBatch frame.
type pendOp struct {
	seq   uint64
	frame []byte
	sinks []sinkRef
	// sentAt stamps the first wire write (unix ns; telemetry only, 0 when
	// disabled): a later write of the same entry is a retransmission, and
	// the reply pop records first-send-to-reply as the op's wire RTT.
	sentAt int64
}

// reqSession is the requester half of one rank-pair session: the sequence
// counters, the outstanding-request window, and the fused-frame builder.
// All of it is confined to the rank's goroutine (the Endpoint confinement
// contract), like the proxies table.
type reqSession struct {
	seq   uint64 // last sequence issued
	acked uint64 // last sequence whose reply this rank has processed
	buf   []byte // synchronous-frame build scratch, reused across requests

	inflight []*pendOp // oldest-first frames awaiting replies
	free     []*pendOp // recycled batch entries (frame + sink storage reuse)
	bytes    int       // total frame bytes in flight (window byte cap)
	conn     *peerConn // connection the sent prefix was written to
	sent     int       // frames of inflight written to conn (a prefix)

	// Fused-frame builder: put-shaped async sub-ops accumulate here until
	// a window slot flushes them as one opBatch frame.
	bops   int
	bstart int    // offset of the sub-op being built (subOp/subDone)
	bbuf   []byte // encoded sub-ops, each length-prefixed
	bsinks []sinkRef
	bring  bool // a doorbell ring rides the next flush
}

// Window caps beyond the configured depth: winBytesCap bounds the bytes in
// flight per destination (replies are tiny, so bounding requests bounds
// both TCP buffers — the socket can never fill in a way deadlines cannot
// recover), and batchBuildMax flushes an oversized builder early.
const (
	winBytesCap   = 1 << 20
	batchBuildMax = 256 << 10
)

// reqData starts a sessioned data-plane request to rank r: the common
// header plus (sid, seq, ack). The builder flushes first so fused sub-ops
// issued before this op keep their place in the stream order the owner
// applies. ack is cumulative — under the outstanding-request window it may
// trail seq by up to the window depth — and lets the owner evict all
// cached replies at or below it.
func (w *World) reqData(r int, op uint8) enc {
	w.flushFused(r)
	s := &w.rsess[r]
	s.seq++
	e := newEnc(s.buf)
	e.u8(op)
	e.i64(atomic.LoadInt64(&w.clocks[w.rank]))
	e.u64(w.sid)
	e.u64(s.seq)
	e.u64(s.acked)
	return e
}

// callData issues one sessioned data-plane request and blocks for its
// reply, draining every window frame ahead of it first (replies match
// requests by order). Transient transport faults recover inside drainOne;
// fault replies re-panic typed via replyDec.
func (w *World) callData(r int, e enc) dec {
	s := &w.rsess[r]
	frame := e.finish()
	s.buf = frame // keep the backing array for the next request
	w.winRoom(r, len(frame))
	// The pendOp aliases s.buf, which is safe: this call does not return
	// until the op's reply pops it from the window, and only then can the
	// next reqData reuse the scratch.
	s.inflight = append(s.inflight, &pendOp{seq: s.seq, frame: frame})
	s.bytes += len(frame)
	mWindow.Record(uint64(len(s.inflight)))
	w.sendPending(r) // best effort: a failure is recovered in drainOne
	for {
		if reply := w.drainOne(r); reply != nil {
			return w.replyDec(r, reply)
		}
	}
}

// winDepth is the configured outstanding-request window depth (window=1
// degrades to one-in-flight, the pre-v5 blocking behavior).
func (w *World) winDepth() int {
	if w.win > 0 {
		return w.win
	}
	return defaultNetWindow
}

// winRoom drains the oldest in-flight frames until the window to r has
// room — in depth and in bytes — for one more frame of size add.
func (w *World) winRoom(r int, add int) {
	s := &w.rsess[r]
	for len(s.inflight) > 0 &&
		(len(s.inflight) >= w.winDepth() || s.bytes+add > winBytesCap) {
		w.drainOne(r)
	}
}

// subOp begins one fused sub-op to rank r, recording where its completion
// time will land when the reply drains. The returned enc is positioned
// after the sub-op's opcode; the caller appends the op fields (the exact
// layout the unfused request carries after its session header) and seals
// with subDone.
func (w *World) subOp(r int, op uint8, sink *timing.Time, fold bool) enc {
	s := &w.rsess[r]
	s.bsinks = append(s.bsinks, sinkRef{p: sink, fold: fold})
	s.bops++
	s.bstart = len(s.bbuf)
	e := enc{append(s.bbuf, 0, 0, 0, 0)} // sub-op length, patched by subDone
	e.u8(op)
	return e
}

// subDone seals the sub-op begun by subOp, flushing the builder once it
// crosses the build cap (several opBatch frames per issue burst then). At
// window depth 1 every sub-op flushes into its own frame: with at most one
// frame in flight, each op then waits out a full round trip before the
// next is queued — the blocking escape hatch of the pre-v5 wire.
func (w *World) subDone(r int, e enc) {
	s := &w.rsess[r]
	binary.LittleEndian.PutUint32(e.b[s.bstart:], uint32(len(e.b)-s.bstart-4))
	s.bbuf = e.b
	if len(s.bbuf) >= batchBuildMax || w.winDepth() == 1 {
		w.flushFused(r)
	}
}

// flushFused seals the accumulated sub-ops into one opBatch frame and
// queues it on the window to r — the send is pipelined: nothing blocks for
// the reply until a drain needs it.
func (w *World) flushFused(r int) {
	s := &w.rsess[r]
	if s.bops == 0 {
		if s.bring {
			s.bring = false
			w.sendRing(r)
		}
		return
	}
	var po *pendOp
	if n := len(s.free); n > 0 {
		po, s.free = s.free[n-1], s.free[:n-1]
	} else {
		po = &pendOp{}
	}
	w.winRoom(r, len(s.bbuf)+64)
	mBatches.Inc()
	mFusedOps.Record(uint64(s.bops))
	s.seq++
	e := newEnc(po.frame)
	e.u8(opBatch)
	e.i64(atomic.LoadInt64(&w.clocks[w.rank]))
	e.u64(w.sid)
	e.u64(s.seq)
	e.u64(s.acked)
	e.boolByte(s.bring)
	e.u32(uint32(s.bops))
	e.bytes(s.bbuf)
	po.frame = e.finish()
	po.seq = s.seq
	po.sentAt = 0 // recycled entries must not inherit the old send stamp
	po.sinks = append(po.sinks[:0], s.bsinks...)
	s.bbuf = s.bbuf[:0]
	s.bsinks = s.bsinks[:0]
	s.bops = 0
	s.bring = false
	s.inflight = append(s.inflight, po)
	s.bytes += len(po.frame)
	mWindow.Record(uint64(len(s.inflight)))
	w.sendPending(r) // best effort: a failure is recovered in drainOne
}

// sendPending writes every queued-but-unsent window frame to r's current
// connection. A fresh connection restarts the whole unacked suffix (the
// retransmission that makes resets recoverable); a write failure drops the
// connection and leaves the frames queued for drainOne's recovery loop.
func (w *World) sendPending(r int) error {
	s := &w.rsess[r]
	p, err := w.peerErr(r)
	if err != nil {
		return err
	}
	if p != s.conn {
		s.conn, s.sent = p, 0
	}
	for s.sent < len(s.inflight) {
		po := s.inflight[s.sent]
		if telemetry.On() {
			if po.sentAt == 0 {
				po.sentAt = time.Now().UnixNano()
			} else {
				mRetransmits.Inc()
				telemetry.RecordEvent(telemetry.EvRetransmit, uint64(r), po.seq)
			}
		}
		p.c.SetWriteDeadline(time.Now().Add(w.tm.OpTimeout))
		_, err := p.c.Write(po.frame)
		p.c.SetWriteDeadline(time.Time{})
		if err != nil {
			w.dropPeer(r, p)
			s.conn, s.sent = nil, 0
			return err
		}
		s.sent++
	}
	return nil
}

// drainOne blocks for the oldest in-flight frame's reply and delivers it:
// fused completion times into their recorded sinks (returns nil), a
// synchronous op's reply to the caller (returned). Transient transport
// faults recover by redialing and retransmitting the unacked suffix
// verbatim: every retained frame was built with an ack below the suffix,
// so the owner never evicted a cached reply the replay needs — the
// applied prefix replays byte-identically and the rest executes fresh,
// in order, exactly once. One opTimeout budget bounds the recovery so a
// genuinely dead peer still surfaces as a typed failure within the PR 7
// detection promise.
func (w *World) drainOne(r int) []byte {
	s := &w.rsess[r]
	po := s.inflight[0]
	deadline := time.Now().Add(w.tm.OpTimeout)
	// Per-attempt reply deadline: a blackholed write must not consume the
	// whole budget waiting for a reply that never left, or there would be
	// no budget left to retransmit in.
	slice := w.tm.OpTimeout / 4
	var lastErr error
	for attempt := 0; ; attempt++ {
		if w.Aborted() {
			panic(w.abortPanic())
		}
		if attempt > 0 && time.Now().After(deadline) {
			panic(w.netFault(r, lastErr))
		}
		if err := w.sendPending(r); err != nil {
			lastErr = err // peerErr already backed off across its dial attempts
			continue
		}
		p := s.conn
		p.c.SetReadDeadline(attemptDeadline(deadline, slice))
		reply, err := readFrame(p.rd, p.rbuf)
		if err == nil && len(reply) == 0 {
			err = fmt.Errorf("empty reply")
		}
		if err != nil {
			lastErr = err
			w.dropPeer(r, p)
			s.conn, s.sent = nil, 0
			mResumes.Inc()
			telemetry.RecordEvent(telemetry.EvReconnect, uint64(r), po.seq)
			faultnet.Logf("netrun: rank %d lost rank %d mid-window (head seq %d, %d in flight): %v; reconnecting",
				w.rank, r, po.seq, len(s.inflight), err)
			continue
		}
		p.c.SetReadDeadline(time.Time{})
		p.rbuf = reply
		// The head is answered: pop it and advance the cumulative ack
		// before delivery, so a fault reply re-panics with the window in
		// its post-op state.
		s.inflight = s.inflight[:copy(s.inflight, s.inflight[1:])]
		s.sent--
		s.acked = po.seq
		s.bytes -= len(po.frame)
		if po.sentAt != 0 && telemetry.On() {
			mRTT.Record(uint64(time.Now().UnixNano() - po.sentAt))
		}
		if po.sinks == nil {
			return reply
		}
		w.deliverBatch(r, po, reply)
		s.free = append(s.free, po)
		return nil
	}
}

// deliverBatch decodes one opBatch reply — the owner's per-sub-op reply
// frames concatenated behind a count — landing each completion time in its
// recorded sink. A faulting sub-op re-panics typed exactly as its unfused
// call would have; a reply that accounts for fewer sub-ops than were sent
// without reporting a fault is a protocol violation.
func (w *World) deliverBatch(r int, po *pendOp, reply []byte) {
	if reply[0] == stFault {
		panic(w.remoteFault(r, reply))
	}
	d := dec{b: reply, pos: 1}
	n := int(d.u32())
	if d.bad || n > len(po.sinks) {
		panic(&RemoteFault{Rank: r, Msg: fmt.Sprintf("netrun: batch reply claims %d of %d sub-ops", n, len(po.sinks))})
	}
	for i := 0; i < n; i++ {
		sub := d.n(int(d.u32()))
		if d.bad || len(sub) == 0 {
			panic(&RemoteFault{Rank: r, Msg: "netrun: truncated batch reply"})
		}
		if sub[0] == stFault {
			panic(w.remoteFault(r, sub))
		}
		sd := dec{b: sub, pos: 1}
		comp := timing.Time(sd.i64())
		if sd.bad {
			panic(&RemoteFault{Rank: r, Msg: "netrun: truncated batch sub-reply"})
		}
		if sk := po.sinks[i]; sk.fold {
			*sk.p = timing.Max(*sk.p, comp)
		} else {
			*sk.p = comp
		}
	}
	if n < len(po.sinks) {
		panic(&RemoteFault{Rank: r, Msg: fmt.Sprintf("netrun: batch reply answered %d of %d sub-ops without a fault", n, len(po.sinks))})
	}
}

// drainDst flushes r's fused-frame builder and drains its window to empty.
// Control-plane calls (callIdem) run it first: their replies share the
// stream with pending data replies, and reply matching is by order.
func (w *World) drainDst(r int) {
	if len(w.rsess) == 0 || r == w.rank {
		return
	}
	w.flushFused(r)
	for len(w.rsess[r].inflight) > 0 {
		w.drainOne(r)
	}
}

// DrainWire implements simnet.WireDrainer: it flushes every destination's
// fused-frame builder and blocks until every window is empty, so all async
// completion times have landed in their sinks. Endpoints call it at every
// blocking point (Gsync, Wait, doorbell parks).
func (w *World) DrainWire() {
	for r := range w.rsess {
		w.drainDst(r)
	}
}

// attemptDeadline bounds one attempt: the per-attempt slice, clipped to the
// overall budget.
func attemptDeadline(deadline time.Time, slice time.Duration) time.Time {
	if d := time.Now().Add(slice); d.Before(deadline) {
		return d
	}
	return deadline
}

// wireCall runs one framed round trip on p under a deadline. On success the
// reply buffer is retained in p.rbuf for reuse; on any error the caller
// must drop the connection (its stream may be desynced).
func (w *World) wireCall(p *peerConn, frame []byte, deadline time.Time) ([]byte, error) {
	p.c.SetDeadline(deadline)
	if _, err := p.c.Write(frame); err != nil {
		return nil, err
	}
	reply, err := readFrame(p.rd, p.rbuf)
	if err != nil {
		return nil, err
	}
	p.c.SetDeadline(time.Time{})
	p.rbuf = reply
	if len(reply) == 0 {
		return nil, fmt.Errorf("empty reply")
	}
	return reply, nil
}

// replyDec classifies one reply payload: faults re-panic typed (RemoteFault
// preserving the owner's rank and message, composed with the abort
// machinery per the fault kind), successes decode past the status byte.
func (w *World) replyDec(owner int, reply []byte) dec {
	if reply[0] == stFault {
		panic(w.remoteFault(owner, reply))
	}
	return dec{b: reply, pos: 1}
}

// remoteFault decodes a structured fault reply into the value the requester
// unwinds with: ErrAborted for an owner that was itself unwinding the world
// abort, *simnet.ErrPeerFailed carrying the blamed rank (recorded locally
// too, so this rank's own abort panic names it), and *RemoteFault for a
// genuine program fault at the owner.
func (w *World) remoteFault(owner int, reply []byte) any {
	d := dec{b: reply, pos: 1}
	kind := d.u8()
	rank := int(d.u32())
	msg := string(d.rest())
	if d.bad {
		return &RemoteFault{Rank: owner, Msg: string(reply[1:])}
	}
	switch kind {
	case faultAborted:
		return simnet.ErrAborted
	case faultPeerFailed:
		w.noteFailedRank(rank)
		return &simnet.ErrPeerFailed{Rank: rank, Cause: &RemoteFault{Rank: owner, Msg: msg}}
	}
	return &RemoteFault{Rank: owner, Msg: msg}
}

// faultReply builds a structured fault reply frame.
func faultReply(scratch []byte, kind uint8, rank int, msg string) []byte {
	f := newEnc(scratch)
	f.u8(stFault)
	f.u8(kind)
	f.u32(uint32(rank))
	f.bytes([]byte(msg))
	return f.finish()
}

// ownerSession is the owner half of one requester's session: the highest
// applied sequence and the cached reply frames not yet covered by the
// requester's cumulative ack. The window stays tiny — the requester has at
// most one op in flight, so at most the current op's reply (plus, briefly,
// its predecessor's) is retained.
type ownerSession struct {
	mu      sync.Mutex
	applied uint64
	replies map[uint64][]byte // seq -> full reply frame, evicted once acked
}

// evictLocked drops every cached reply the requester has acknowledged.
func (s *ownerSession) evictLocked(ack uint64) {
	for k := range s.replies {
		if k <= ack {
			delete(s.replies, k)
		}
	}
}

// session resolves (creating on first use) the state of one session.
func (w *World) session(sid uint64) *ownerSession {
	w.sessMu.Lock()
	defer w.sessMu.Unlock()
	s := w.sessions[sid]
	if s == nil {
		s = &ownerSession{replies: make(map[uint64][]byte)}
		w.sessions[sid] = s
	}
	return s
}

// sessionApply executes one sessioned request exactly once: a seq already
// in the window replays its cached reply byte-identically (fromCache=true —
// the caller must not recycle it as scratch); a fresh seq executes under
// the session lock — held across check, execute, and record, so a zombie
// connection's handler can never interleave a second execution of the same
// seq — and its reply is cached until the requester acks past it.
func (w *World) sessionApply(src int, sid, seq, ack uint64, op uint8, d *dec, scratch []byte) (reply []byte, fromCache bool) {
	if r := sidRank(sid); r != src {
		return faultReply(scratch, faultGeneric, w.rank,
			fmt.Sprintf("netrun: session %#x claims rank %d but its connection said HELLO as rank %d", sid, r, src)), false
	}
	s := w.session(sid)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictLocked(ack)
	if cached, ok := s.replies[seq]; ok {
		mDedupHits.Inc()
		telemetry.RecordEvent(telemetry.EvDedupHit, uint64(src), seq)
		return cached, true
	}
	if seq <= s.applied {
		// Applied, acked, evicted — and now re-sent: the requester broke the
		// cumulative-ack contract, and replaying is no longer possible.
		return faultReply(scratch, faultGeneric, w.rank,
			fmt.Sprintf("netrun: session %#x replayed seq %d past its own ack", sid, seq)), false
	}
	reply = w.handle(op, d, scratch)
	s.applied = seq
	s.replies[seq] = append([]byte(nil), reply...)
	return reply, false
}

// sessionResume answers an opResume handshake: whether the named in-flight
// seq already applied, with the cached reply payload inlined when it did.
func (w *World) sessionResume(src int, sid, seq, ack uint64, scratch []byte) []byte {
	if r := sidRank(sid); r != src {
		return faultReply(scratch, faultGeneric, w.rank,
			fmt.Sprintf("netrun: resume of session %#x claims rank %d but its connection said HELLO as rank %d", sid, r, src))
	}
	s := w.session(sid)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictLocked(ack)
	e := newEnc(scratch)
	e.u8(stOK)
	if cached, ok := s.replies[seq]; ok {
		e.u8(1)
		e.bytes(cached[4:]) // the cached frame's payload, inlined past the have byte
	} else {
		e.u8(0)
	}
	return e.finish()
}
