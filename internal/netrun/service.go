package netrun

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"slices"
	"sync/atomic"
	"time"

	"fompi/internal/hostatomic"
	"fompi/internal/simnet"
	"fompi/internal/timing"
)

// Owner side of the wire protocol: one goroutine per inbound connection
// reads request frames in order and executes them against this rank's
// regions through simnet.RegionExec — the paper's "no remote software
// agent" property necessarily softens to a service loop here, but the loop
// runs only transport work (byte movement, stamps, NIC booking, doorbells),
// never protocol logic, and applies each source's operations in that
// source's issue order (TCP in-order delivery plus blocking requesters).
// Cross-source interleaving is governed by the same word-atomic primitives
// the in-process fabric uses, so concurrency semantics match.

// acceptLoop admits peer connections until the listener closes (abort or
// process exit).
func (w *World) acceptLoop() {
	for {
		c, err := w.ln.Accept()
		if err != nil {
			return
		}
		// Interface assert, not *net.TCPConn: faultnet may have wrapped the
		// accepted connection.
		if tc, ok := c.(interface{ SetNoDelay(bool) error }); ok {
			tc.SetNoDelay(true)
		}
		w.svcMu.Lock()
		if w.svcClosed {
			w.svcMu.Unlock()
			c.Close()
			continue
		}
		w.svcConns[c] = struct{}{}
		w.svcWg.Add(1)
		w.svcMu.Unlock()
		go func() {
			defer w.svcWg.Done()
			w.serveConn(c)
			w.svcMu.Lock()
			delete(w.svcConns, c)
			w.svcMu.Unlock()
		}()
	}
}

// stopService closes the data-plane listener and every inbound service
// connection, then waits for their goroutines to drain. After it returns no
// remote operation can touch this rank's memory, so callers (hybridrun) may
// safely release arena-backed regions. Called only once the world is over —
// after BYE or abort — when any frame still buffered on an inbound stream is
// a fire-and-forget straggler (a doorbell ring) nobody is waiting on.
func (w *World) stopService() {
	w.ln.Close()
	w.svcMu.Lock()
	w.svcClosed = true
	for c := range w.svcConns {
		c.Close()
	}
	w.svcMu.Unlock()
	w.svcWg.Wait()
}

// serveConn runs one peer's request stream.
func (w *World) serveConn(c net.Conn) {
	defer c.Close()
	rd := bufio.NewReader(c)
	var inBuf, outBuf []byte
	src := -1 // rank behind this connection, learned from opHello
	for {
		frame, err := readFrame(rd, inBuf)
		if err != nil {
			return // EOF: peer finished, died, or the world aborted
		}
		inBuf = frame
		d := dec{b: frame}
		op := d.u8()
		clk := d.i64()
		if w.opts.PaceWindowNs != 0 && src >= 0 {
			hostatomic.MaxI64(&w.clocks[src], clk)
		}
		switch op {
		case opHello:
			// Bound the claimed rank: the data listener is reachable by
			// anything on the network in host-list mode, and a stray
			// connection must not be able to crash the clock table.
			if r := int(d.u32()); r >= 0 && r < len(w.clocks) {
				src = r
				continue
			}
			return
		case opRing:
			w.ringDoor()
			continue
		}
		var reply []byte
		var cached bool
		switch {
		case sessioned(op) || op == opResume:
			if src < 0 {
				// An anonymous connection (its HELLO was lost — faultnet can
				// blackhole it) must not touch session state: drop it so the
				// requester's resume path redials and re-identifies.
				return
			}
			sid, seq, ack := d.u64(), d.u64(), d.u64()
			if d.bad {
				return // truncated session header: the stream is desynced
			}
			if op == opResume {
				reply = w.sessionResume(src, sid, seq, ack, outBuf)
			} else {
				reply, cached = w.sessionApply(src, sid, seq, ack, op, &d, outBuf)
			}
		default:
			reply = w.handle(op, &d, outBuf)
		}
		// Bound the reply write: a requester that vanished mid-read must not
		// park this service goroutine on a full TCP buffer forever.
		c.SetWriteDeadline(time.Now().Add(w.tm.OpTimeout))
		_, err = c.Write(reply)
		c.SetWriteDeadline(time.Time{})
		if err != nil {
			return
		}
		if !cached {
			// A cached reply is the session window's property — recycling it
			// as scratch would corrupt a future replay.
			outBuf = reply[:0]
		}
	}
}

// handle executes one request and builds its reply frame. Faults — bounds
// violations, dead registrations, ring overflow — are the same panics the
// inline path raises; they are caught here and shipped back for the
// requester to re-panic, so the fault surfaces in the process that issued
// the bad operation.
func (w *World) handle(op uint8, d *dec, scratch []byte) (reply []byte) {
	e := newEnc(scratch)
	e.u8(stOK)
	defer func() {
		if r := recover(); r != nil {
			// Classify before shipping: the requester re-panics a typed value
			// (abort, peer failure with its culprit rank, or a RemoteFault
			// carrying this rank and the message) instead of a bare string.
			kind, rank := faultGeneric, w.rank
			if pf, ok := r.(*simnet.ErrPeerFailed); ok {
				kind, rank = faultPeerFailed, pf.Rank
			} else if simnet.IsAbortPanic(r) {
				kind = faultAborted
			}
			reply = faultReply(e.b[:0], kind, rank, fmt.Sprint(r))
		}
	}()
	switch op {
	case opPut:
		x := w.exec(d)
		off := int(d.u64())
		arrival := timing.Time(d.i64())
		xfer := d.i64()
		reserve := d.boolVal()
		src := d.rest()
		d.must()
		e.i64(int64(x.Put(off, src, reserve, arrival, xfer)))
	case opGet:
		x := w.exec(d)
		off := int(d.u64())
		n := int(d.u64())
		clockIn := timing.Time(d.i64())
		tail := d.i64()
		xfer := d.i64()
		reserve := d.boolVal()
		d.must()
		if n < 0 || n > maxFrame {
			panic(fmt.Sprintf("netrun: malformed get length %d", n))
		}
		// Copy the bytes straight into the reply frame (comp is patched in
		// once known): no per-request buffer on the service loop.
		compAt := len(e.b)
		e.i64(0)
		start := len(e.b)
		e.b = slices.Grow(e.b, n)[:start+n]
		comp := x.Get(e.b[start:start+n], off, clockIn, reserve, tail, xfer)
		binary.LittleEndian.PutUint64(e.b[compAt:], uint64(comp))
	case opStoreW:
		x := w.exec(d)
		off := int(d.u64())
		v := d.u64()
		arrival := timing.Time(d.i64())
		xfer := d.i64()
		reserve := d.boolVal()
		d.must()
		e.i64(int64(x.StoreWord(off, v, reserve, arrival, xfer)))
	case opLoadW:
		x := w.exec(d)
		off := int(d.u64())
		d.must()
		v, st := x.LoadWord(off)
		e.u64(v)
		e.i64(int64(st))
	case opWordAmo:
		x := w.exec(d)
		off := int(d.u64())
		wop := simnet.WordOp(d.u8())
		o1, o2 := d.u64(), d.u64()
		clockIn := timing.Time(d.i64())
		srcFree := timing.Time(d.i64())
		lat, xfer := d.i64(), d.i64()
		reserve := d.boolVal()
		d.must()
		old, land, base, free := x.WordAmo(wop, off, o1, o2, clockIn, srcFree, reserve, lat, xfer)
		e.u64(old)
		e.i64(int64(land))
		e.i64(int64(base))
		e.i64(int64(free))
	case opBulkAmo:
		x := w.exec(d)
		off := int(d.u64())
		aop := simnet.AmoOp(d.u8())
		clockIn := timing.Time(d.i64())
		srcFree := timing.Time(d.i64())
		lat, xfer := d.i64(), d.i64()
		reserve := d.boolVal()
		src := d.rest()
		d.must()
		comp, free := x.BulkAmo(aop, off, src, clockIn, srcFree, reserve, lat, xfer)
		e.i64(int64(comp))
		e.i64(int64(free))
	case opNotify:
		x := w.exec(d)
		off := int(d.u64())
		word := d.u64()
		arrival := timing.Time(d.i64())
		xfer := d.i64()
		reserve := d.boolVal()
		d.must()
		e.i64(int64(x.Notify(off, word, reserve, arrival, xfer)))
	case opBatch:
		// A fused frame (DESIGN.md §12): execute the sub-ops in order —
		// each through this same handler, so its arithmetic and its fault
		// behavior are exactly the unfused op's — and concatenate their
		// reply frames behind a count. A faulting sub-op ends the batch
		// with its fault frame as the last sub-reply; the requester
		// re-panics it when the batch drains. A malformed frame faults as
		// a whole before any sub-op executes.
		ring, subs, err := parseBatch(d.rest())
		if err != nil {
			panic(err.Error())
		}
		nAt := len(e.b)
		e.u32(0) // sub-reply count, patched below
		n := 0
		var scratch2 []byte // sub-reply scratch, reused across sub-ops
		for _, sub := range subs {
			sd := dec{b: sub, pos: 1}
			sr := w.handle(sub[0], &sd, scratch2)
			e.bytes(sr)
			scratch2 = sr[:0]
			n++
			if sr[4] == stFault {
				break
			}
		}
		binary.LittleEndian.PutUint32(e.b[nAt:], uint32(n))
		if ring {
			// The piggybacked doorbell ring, ordered behind the data it
			// announces (the ring that would otherwise be its own opRing).
			w.ringDoor()
		}
	case opRegQuery:
		k := simnet.Key(d.u32())
		w.mineMu.RLock()
		var state uint8
		var size int
		switch {
		case int(k) >= len(w.mine):
			state = regUnknown
		case w.mine[k] == nil:
			state = regDead
		default:
			state = regLive
			size = w.mine[k].Size()
		}
		w.mineMu.RUnlock()
		e.u8(state)
		e.u64(uint64(size))
	case opNicReserve:
		arrival := timing.Time(d.i64())
		xfer := d.i64()
		d.must()
		e.i64(int64(w.reserveLocalNIC(arrival, xfer)))
	case opDoorGen:
		e.u64(w.doorGenSelf())
	case opDoorWait:
		gen := d.u64()
		slice := time.Duration(d.u32()) * time.Microsecond
		if slice <= 0 || slice > doorWaitSlice {
			slice = doorWaitSlice
		}
		e.u64(w.doorWaitAny(gen, slice))
	case opClock:
		e.i64(atomic.LoadInt64(&w.clocks[w.rank]))
	default:
		panic(fmt.Sprintf("netrun: unknown opcode %d", op))
	}
	return e.finish()
}

// exec resolves the request's region key into an executor over this rank's
// memory. Dead or unknown keys fault with the unregistered-region message
// the inline path uses.
func (w *World) exec(d *dec) simnet.RegionExec {
	k := simnet.Key(d.u32())
	reg := w.ownRegion(k)
	if reg == nil {
		panic(fmt.Sprintf("simnet: access to unregistered region (rank %d key %d)", w.rank, k))
	}
	return simnet.RegionExec{Reg: reg, ReserveNIC: w.reserveFn}
}

// doorWaitSliced parks a remote waiter at this rank's doorbell for at most
// slice and returns the then-current generation; spurious (timeout) returns
// are allowed by the WaitDoor contract, and an abort answers immediately so
// the requester can unwind.
func (w *World) doorWaitSliced(gen uint64, slice time.Duration) uint64 {
	ch, ok := w.door.waitCh(gen)
	if !ok {
		return w.door.gen.Load()
	}
	t := time.NewTimer(slice)
	defer t.Stop()
	select {
	case <-ch:
	case <-t.C:
	case <-w.done:
	}
	return w.door.gen.Load()
}
