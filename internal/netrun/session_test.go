package netrun

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"testing"
	"time"

	"fompi/internal/faultnet"
	"fompi/internal/simnet"
)

// sessionWorld builds the minimal owner-side World the session layer needs:
// a rank, a clock table, the NIC booking state, and an empty session table.
func sessionWorld() *World {
	w := &World{
		rank:     1,
		clocks:   make([]int64, 4),
		sessions: make(map[uint64]*ownerSession),
	}
	w.reserveFn = w.reserveLocalNIC
	return w
}

// nicReserveFields encodes the opNicReserve payload past the session header:
// with arrival 0 and xfer 1, every execution advances the owner's busy
// interval by exactly one — a counter that detects double application.
func nicReserveFields() []byte {
	b := binary.LittleEndian.AppendUint64(nil, 0) // arrival
	return binary.LittleEndian.AppendUint64(b, 1) // xfer
}

func TestSessionDuplicateSeqReplaysCachedReply(t *testing.T) {
	w := sessionWorld()
	sid := sidFor(0, 4242)

	d1 := dec{b: nicReserveFields()}
	r1, cached := w.sessionApply(0, sid, 1, 0, opNicReserve, &d1, nil)
	if cached {
		t.Fatalf("first application of seq 1 claimed to come from cache")
	}
	first := append([]byte(nil), r1...)

	d2 := dec{b: nicReserveFields()}
	r2, cached := w.sessionApply(0, sid, 1, 0, opNicReserve, &d2, nil)
	if !cached {
		t.Fatalf("duplicate seq 1 was not served from cache")
	}
	if !bytes.Equal(first, r2) {
		t.Fatalf("replayed reply differs from the original:\n  first  %x\n  replay %x", first, r2)
	}
	if w.nicBusy != 1 {
		t.Fatalf("owner NIC busy = %d after a duplicated seq, want 1 (applied exactly once)", w.nicBusy)
	}
}

func TestSessionReplaysFaultReplyByteIdentically(t *testing.T) {
	w := sessionWorld()
	sid := sidFor(0, 7)

	// opPut against an unregistered region faults in handle; the fault reply
	// must be cached and replayed like any other, so a retransmitted bad op
	// re-delivers the same fault instead of re-executing.
	putFields := binary.LittleEndian.AppendUint32(nil, 9) // unknown key
	d1 := dec{b: putFields}
	r1, cached := w.sessionApply(0, sid, 1, 0, opPut, &d1, nil)
	if cached || r1[4] != stFault {
		t.Fatalf("expected a fresh fault reply, got cached=%v status=%d", cached, r1[4])
	}
	first := append([]byte(nil), r1...)
	d2 := dec{b: putFields}
	r2, cached := w.sessionApply(0, sid, 1, 0, opPut, &d2, nil)
	if !cached || !bytes.Equal(first, r2) {
		t.Fatalf("fault reply not replayed byte-identically (cached=%v)", cached)
	}
}

func TestSessionEvictionHonorsAck(t *testing.T) {
	w := sessionWorld()
	sid := sidFor(0, 9)

	apply := func(seq, ack uint64) {
		t.Helper()
		d := dec{b: nicReserveFields()}
		if _, cached := w.sessionApply(0, sid, seq, ack, opNicReserve, &d, nil); cached {
			t.Fatalf("seq %d unexpectedly served from cache", seq)
		}
	}
	cachedSeqs := func() []uint64 {
		s := w.sessions[sid]
		s.mu.Lock()
		defer s.mu.Unlock()
		var got []uint64
		for k := range s.replies {
			got = append(got, k)
		}
		return got
	}

	apply(1, 0)
	apply(2, 0) // ack stuck at 0: nothing may be evicted
	if got := cachedSeqs(); len(got) != 2 {
		t.Fatalf("window holds %v, want both unacked replies {1, 2}", got)
	}
	apply(3, 1) // acks seq 1 only: 2 must survive
	s := w.sessions[sid]
	s.mu.Lock()
	_, have1 := s.replies[1]
	_, have2 := s.replies[2]
	_, have3 := s.replies[3]
	s.mu.Unlock()
	if have1 || !have2 || !have3 {
		t.Fatalf("after ack=1 window holds {1:%v 2:%v 3:%v}, want only 2 and 3", have1, have2, have3)
	}
	apply(4, 3) // cumulative ack clears everything below
	if got := cachedSeqs(); len(got) != 1 {
		t.Fatalf("after ack=3 window holds %v, want only {4}", got)
	}

	// A resume for a seq still in the window replays it; an evicted or
	// never-applied seq answers have=0 (retransmit).
	rr := w.sessionResume(0, sid, 4, 3, nil)
	if rr[4] != stOK || rr[5] != 1 {
		t.Fatalf("resume of cached seq 4: status %d have %d, want replay", rr[4], rr[5])
	}
	rr = w.sessionResume(0, sid, 99, 3, nil)
	if rr[4] != stOK || rr[5] != 0 {
		t.Fatalf("resume of unknown seq 99: status %d have %d, want retransmit", rr[4], rr[5])
	}
}

func TestSessionRejectsRankMismatch(t *testing.T) {
	w := sessionWorld()
	sid := sidFor(0, 11) // minted for rank 0

	d := dec{b: nicReserveFields()}
	reply, cached := w.sessionApply(2, sid, 1, 0, opNicReserve, &d, nil) // conn said HELLO as rank 2
	if cached || reply[4] != stFault {
		t.Fatalf("rank-mismatched session was not rejected (cached=%v status=%d)", cached, reply[4])
	}
	if w.nicBusy != 0 {
		t.Fatalf("rank-mismatched request executed anyway (nicBusy=%d)", w.nicBusy)
	}
	v := w.remoteFault(1, reply[4:])
	rf, ok := v.(*RemoteFault)
	if !ok {
		t.Fatalf("mismatch fault decoded as %T (%v), want *RemoteFault", v, v)
	}
	if rf.Rank != 1 {
		t.Fatalf("RemoteFault blames rank %d, want the owner rank 1", rf.Rank)
	}

	rr := w.sessionResume(2, sid, 1, 0, nil)
	if rr[4] != stFault {
		t.Fatalf("rank-mismatched resume was not rejected (status %d)", rr[4])
	}
}

func TestRemoteFaultKinds(t *testing.T) {
	w := sessionWorld()
	w.failedRank.Store(-1)

	generic := faultReply(nil, faultGeneric, 1, "simnet: access to unregistered region")
	if v, ok := w.remoteFault(1, generic[4:]).(*RemoteFault); !ok || v.Rank != 1 {
		t.Fatalf("generic fault decoded as %#v, want *RemoteFault{Rank: 1}", v)
	}

	aborted := faultReply(nil, faultAborted, 1, "aborted")
	if v := w.remoteFault(1, aborted[4:]); v != simnet.ErrAborted {
		t.Fatalf("aborted fault decoded as %#v, want simnet.ErrAborted", v)
	}

	pf := faultReply(nil, faultPeerFailed, 3, "no heartbeat")
	v, ok := w.remoteFault(1, pf[4:]).(*simnet.ErrPeerFailed)
	if !ok || v.Rank != 3 {
		t.Fatalf("peer-failed fault decoded as %#v, want *ErrPeerFailed{Rank: 3}", v)
	}
	if w.FailedRank() != 3 {
		t.Fatalf("peer-failed fault did not record the blamed rank (got %d)", w.FailedRank())
	}
	if !simnet.IsAbortPanic(v) {
		t.Fatalf("*ErrPeerFailed must compose with the abort classification")
	}
}

func TestParseTimeouts(t *testing.T) {
	tm, err := ParseTimeouts("heartbeat=500ms, stale=3s,optimeout=2s,ctlidle=6s")
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	want := Timeouts{500 * time.Millisecond, 3 * time.Second, 2 * time.Second, 6 * time.Second}
	if tm != want {
		t.Fatalf("parsed %+v, want %+v", tm, want)
	}
	if rt, err := ParseTimeouts(tm.spec()); err != nil || rt != tm {
		t.Fatalf("spec round trip: %+v (%v), want %+v", rt, err, tm)
	}
	for _, bad := range []string{"heartbeat", "stale=-1s", "optimeout=0s", "warp=9s", "heartbeat=fast"} {
		if _, err := ParseTimeouts(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
	// stale must exceed the heartbeat cadence or every rank is "dead".
	t.Setenv(EnvTimeouts, "heartbeat=2s,stale=1s")
	if _, err := resolveTimeouts(Timeouts{}); err == nil {
		t.Fatalf("stale < heartbeat resolved without error")
	}
	t.Setenv(EnvTimeouts, "heartbeat=250ms")
	got, err := resolveTimeouts(Timeouts{OpTimeout: 4 * time.Second})
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if got.HeartbeatEvery != 250*time.Millisecond || got.OpTimeout != 4*time.Second ||
		got.HeartbeatStale != heartbeatStale || got.CtlIdleTimeout != ctlIdleTimeout {
		t.Fatalf("resolution layered wrong: %+v", got)
	}
}

// TestResumeExactlyOnceUnderRecurringResets runs a real two-rank loopback
// world under recurring data-plane connection resets and proves the session
// layer's exactly-once contract end to end: each rank books the peer's NIC
// `rounds` times with (arrival 0, xfer 1), so the i-th booking must return
// exactly i. A lost request that was silently re-executed would skip a value;
// a reply replayed from the wrong seq would repeat one. The faultnet spec
// scopes resets to the data plane, so the coordinator's failure detector
// keeps running — exactly the regime the resume protocol is for.
func TestResumeExactlyOnceUnderRecurringResets(t *testing.T) {
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("probe listen: %v", err)
	}
	addr := probe.Addr().String()
	probe.Close()

	t.Setenv(faultnet.EnvVar, "seed=3,reseteveryn=25,plane=data")
	t.Setenv(EnvTimeouts, "heartbeat=500ms,stale=5s,optimeout=5s,ctlidle=10s")
	t.Setenv(envCoord, addr)
	t.Setenv(envRank, "")

	o := Options{Ranks: 2, RanksPerNode: 1, Hosts: []string{"localhost"}, Listen: addr}
	launchErr := make(chan error, 1)
	go func() { launchErr <- Launch(o) }()
	for i := 0; ; i++ {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			break
		}
		if i > 100 {
			t.Fatalf("coordinator never started listening: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	const rounds = 300
	workerErr := make(chan error, 2)
	worker := func() {
		defer func() {
			if r := recover(); r != nil {
				workerErr <- errFromPanic(r)
			}
		}()
		w, err := Join(Options{Ranks: 2, RanksPerNode: 1})
		if err != nil {
			workerErr <- err
			return
		}
		w.Ready()
		peer := 1 - w.Rank()
		var mismatch error
		for i := int64(1); i <= rounds; i++ {
			if got := int64(w.ReserveNIC(peer, 0, 1)); got != i {
				mismatch = fmt.Errorf("rank %d booking %d returned %d: an op was lost or applied twice", w.Rank(), i, got)
				break
			}
		}
		w.Finish()
		workerErr <- mismatch
	}
	go worker()
	go worker()

	for i := 0; i < 2; i++ {
		select {
		case err := <-workerErr:
			if err != nil {
				t.Fatalf("worker: %v", err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("workers did not finish under recurring resets")
		}
	}
	select {
	case err := <-launchErr:
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("coordinator did not return")
	}
}
