package netrun

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"testing"
	"time"

	"fompi/internal/faultnet"
	"fompi/internal/simnet"
	"fompi/internal/timing"
)

// sessionWorld builds the minimal owner-side World the session layer needs:
// a rank, a clock table, the NIC booking state, and an empty session table.
func sessionWorld() *World {
	w := &World{
		rank:     1,
		clocks:   make([]int64, 4),
		sessions: make(map[uint64]*ownerSession),
	}
	w.reserveFn = w.reserveLocalNIC
	return w
}

// nicReserveFields encodes the opNicReserve payload past the session header:
// with arrival 0 and xfer 1, every execution advances the owner's busy
// interval by exactly one — a counter that detects double application.
func nicReserveFields() []byte {
	b := binary.LittleEndian.AppendUint64(nil, 0) // arrival
	return binary.LittleEndian.AppendUint64(b, 1) // xfer
}

func TestSessionDuplicateSeqReplaysCachedReply(t *testing.T) {
	w := sessionWorld()
	sid := sidFor(0, 4242)

	d1 := dec{b: nicReserveFields()}
	r1, cached := w.sessionApply(0, sid, 1, 0, opNicReserve, &d1, nil)
	if cached {
		t.Fatalf("first application of seq 1 claimed to come from cache")
	}
	first := append([]byte(nil), r1...)

	d2 := dec{b: nicReserveFields()}
	r2, cached := w.sessionApply(0, sid, 1, 0, opNicReserve, &d2, nil)
	if !cached {
		t.Fatalf("duplicate seq 1 was not served from cache")
	}
	if !bytes.Equal(first, r2) {
		t.Fatalf("replayed reply differs from the original:\n  first  %x\n  replay %x", first, r2)
	}
	if w.nicBusy != 1 {
		t.Fatalf("owner NIC busy = %d after a duplicated seq, want 1 (applied exactly once)", w.nicBusy)
	}
}

func TestSessionReplaysFaultReplyByteIdentically(t *testing.T) {
	w := sessionWorld()
	sid := sidFor(0, 7)

	// opPut against an unregistered region faults in handle; the fault reply
	// must be cached and replayed like any other, so a retransmitted bad op
	// re-delivers the same fault instead of re-executing.
	putFields := binary.LittleEndian.AppendUint32(nil, 9) // unknown key
	d1 := dec{b: putFields}
	r1, cached := w.sessionApply(0, sid, 1, 0, opPut, &d1, nil)
	if cached || r1[4] != stFault {
		t.Fatalf("expected a fresh fault reply, got cached=%v status=%d", cached, r1[4])
	}
	first := append([]byte(nil), r1...)
	d2 := dec{b: putFields}
	r2, cached := w.sessionApply(0, sid, 1, 0, opPut, &d2, nil)
	if !cached || !bytes.Equal(first, r2) {
		t.Fatalf("fault reply not replayed byte-identically (cached=%v)", cached)
	}
}

func TestSessionEvictionHonorsAck(t *testing.T) {
	w := sessionWorld()
	sid := sidFor(0, 9)

	apply := func(seq, ack uint64) {
		t.Helper()
		d := dec{b: nicReserveFields()}
		if _, cached := w.sessionApply(0, sid, seq, ack, opNicReserve, &d, nil); cached {
			t.Fatalf("seq %d unexpectedly served from cache", seq)
		}
	}
	cachedSeqs := func() []uint64 {
		s := w.sessions[sid]
		s.mu.Lock()
		defer s.mu.Unlock()
		var got []uint64
		for k := range s.replies {
			got = append(got, k)
		}
		return got
	}

	apply(1, 0)
	apply(2, 0) // ack stuck at 0: nothing may be evicted
	if got := cachedSeqs(); len(got) != 2 {
		t.Fatalf("window holds %v, want both unacked replies {1, 2}", got)
	}
	apply(3, 1) // acks seq 1 only: 2 must survive
	s := w.sessions[sid]
	s.mu.Lock()
	_, have1 := s.replies[1]
	_, have2 := s.replies[2]
	_, have3 := s.replies[3]
	s.mu.Unlock()
	if have1 || !have2 || !have3 {
		t.Fatalf("after ack=1 window holds {1:%v 2:%v 3:%v}, want only 2 and 3", have1, have2, have3)
	}
	apply(4, 3) // cumulative ack clears everything below
	if got := cachedSeqs(); len(got) != 1 {
		t.Fatalf("after ack=3 window holds %v, want only {4}", got)
	}

	// A resume for a seq still in the window replays it; an evicted or
	// never-applied seq answers have=0 (retransmit).
	rr := w.sessionResume(0, sid, 4, 3, nil)
	if rr[4] != stOK || rr[5] != 1 {
		t.Fatalf("resume of cached seq 4: status %d have %d, want replay", rr[4], rr[5])
	}
	rr = w.sessionResume(0, sid, 99, 3, nil)
	if rr[4] != stOK || rr[5] != 0 {
		t.Fatalf("resume of unknown seq 99: status %d have %d, want retransmit", rr[4], rr[5])
	}
}

func TestSessionRejectsRankMismatch(t *testing.T) {
	w := sessionWorld()
	sid := sidFor(0, 11) // minted for rank 0

	d := dec{b: nicReserveFields()}
	reply, cached := w.sessionApply(2, sid, 1, 0, opNicReserve, &d, nil) // conn said HELLO as rank 2
	if cached || reply[4] != stFault {
		t.Fatalf("rank-mismatched session was not rejected (cached=%v status=%d)", cached, reply[4])
	}
	if w.nicBusy != 0 {
		t.Fatalf("rank-mismatched request executed anyway (nicBusy=%d)", w.nicBusy)
	}
	v := w.remoteFault(1, reply[4:])
	rf, ok := v.(*RemoteFault)
	if !ok {
		t.Fatalf("mismatch fault decoded as %T (%v), want *RemoteFault", v, v)
	}
	if rf.Rank != 1 {
		t.Fatalf("RemoteFault blames rank %d, want the owner rank 1", rf.Rank)
	}

	rr := w.sessionResume(2, sid, 1, 0, nil)
	if rr[4] != stFault {
		t.Fatalf("rank-mismatched resume was not rejected (status %d)", rr[4])
	}
}

func TestRemoteFaultKinds(t *testing.T) {
	w := sessionWorld()
	w.failedRank.Store(-1)

	generic := faultReply(nil, faultGeneric, 1, "simnet: access to unregistered region")
	if v, ok := w.remoteFault(1, generic[4:]).(*RemoteFault); !ok || v.Rank != 1 {
		t.Fatalf("generic fault decoded as %#v, want *RemoteFault{Rank: 1}", v)
	}

	aborted := faultReply(nil, faultAborted, 1, "aborted")
	if v := w.remoteFault(1, aborted[4:]); v != simnet.ErrAborted {
		t.Fatalf("aborted fault decoded as %#v, want simnet.ErrAborted", v)
	}

	pf := faultReply(nil, faultPeerFailed, 3, "no heartbeat")
	v, ok := w.remoteFault(1, pf[4:]).(*simnet.ErrPeerFailed)
	if !ok || v.Rank != 3 {
		t.Fatalf("peer-failed fault decoded as %#v, want *ErrPeerFailed{Rank: 3}", v)
	}
	if w.FailedRank() != 3 {
		t.Fatalf("peer-failed fault did not record the blamed rank (got %d)", w.FailedRank())
	}
	if !simnet.IsAbortPanic(v) {
		t.Fatalf("*ErrPeerFailed must compose with the abort classification")
	}
}

func TestParseTimeouts(t *testing.T) {
	tm, err := ParseTimeouts("heartbeat=500ms, stale=3s,optimeout=2s,ctlidle=6s")
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	want := Timeouts{500 * time.Millisecond, 3 * time.Second, 2 * time.Second, 6 * time.Second}
	if tm != want {
		t.Fatalf("parsed %+v, want %+v", tm, want)
	}
	if rt, err := ParseTimeouts(tm.spec()); err != nil || rt != tm {
		t.Fatalf("spec round trip: %+v (%v), want %+v", rt, err, tm)
	}
	for _, bad := range []string{"heartbeat", "stale=-1s", "optimeout=0s", "warp=9s", "heartbeat=fast"} {
		if _, err := ParseTimeouts(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
	// stale must exceed the heartbeat cadence or every rank is "dead".
	t.Setenv(EnvTimeouts, "heartbeat=2s,stale=1s")
	if _, err := resolveTimeouts(Timeouts{}); err == nil {
		t.Fatalf("stale < heartbeat resolved without error")
	}
	t.Setenv(EnvTimeouts, "heartbeat=250ms")
	got, err := resolveTimeouts(Timeouts{OpTimeout: 4 * time.Second})
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if got.HeartbeatEvery != 250*time.Millisecond || got.OpTimeout != 4*time.Second ||
		got.HeartbeatStale != heartbeatStale || got.CtlIdleTimeout != ctlIdleTimeout {
		t.Fatalf("resolution layered wrong: %+v", got)
	}
}

// mkNotifyBatch builds an opBatch payload of ring deposits (word values) the
// way flushFused + NotifyAsync would: no piggybacked doorbell, each sub-op
// carrying (key 0, off 0, word, arrival 0, xfer 1, reserve).
func mkNotifyBatch(words ...uint64) []byte {
	b := []byte{0}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(words)))
	for _, v := range words {
		sub := []byte{opNotify}
		sub = binary.LittleEndian.AppendUint32(sub, 0) // key
		sub = binary.LittleEndian.AppendUint64(sub, 0) // off
		sub = binary.LittleEndian.AppendUint64(sub, v) // word
		sub = binary.LittleEndian.AppendUint64(sub, 0) // arrival
		sub = binary.LittleEndian.AppendUint64(sub, 1) // xfer
		sub = append(sub, 1)                           // reserve
		b = binary.LittleEndian.AppendUint32(b, uint32(len(sub)))
		b = append(b, sub...)
	}
	return b
}

// TestSessionBatchSuffixReplay is the owner half of a reset mid-window: a
// requester with three batch frames in flight loses its connection after
// processing only the first reply, and retransmits the unacked suffix
// {seq 2, seq 3} verbatim — acks frozen at build time. The owner must
// replay both from cache byte-identically and apply nothing twice: the
// notify ring's producer ticket is a perfect double-apply counter (every
// execution fetch-adds it).
func TestSessionBatchSuffixReplay(t *testing.T) {
	w := sessionWorld()
	buf := make([]byte, simnet.NotifyRingBytes(8))
	reg := simnet.MakeRegion(1, 0, buf, timing.NewStamps(len(buf)))
	reg.LocalWordStore(16, 8, 0) // bind the ring: capacity word
	w.mine = []*simnet.Region{&reg}
	sid := sidFor(0, 77)

	apply := func(seq, ack uint64, payload []byte) ([]byte, bool) {
		d := dec{b: payload}
		return w.sessionApply(0, sid, seq, ack, opBatch, &d, nil)
	}
	// The in-flight window: seq 1 (two deposits), seq 2 (one), seq 3 (two).
	// Each frame's ack is the cumulative ack at build time: 0, 0, then 1
	// (seq 1's reply was processed before seq 3 was built).
	r1, _ := apply(1, 0, mkNotifyBatch(10, 11))
	if r1[4] != stOK {
		t.Fatalf("batch seq 1 faulted: %x", r1)
	}
	r2, _ := apply(2, 0, mkNotifyBatch(12))
	r3, _ := apply(3, 1, mkNotifyBatch(13, 14))
	first2 := append([]byte(nil), r2...)
	first3 := append([]byte(nil), r3...)
	if got := reg.LocalWord(0); got != 5 {
		t.Fatalf("producer ticket = %d after 5 deposits, want 5", got)
	}

	// Reset: the requester saw only seq 1's reply, so it retransmits the
	// suffix {2, 3} byte-identically on a fresh connection.
	rr2, c2 := apply(2, 0, mkNotifyBatch(12))
	rr3, c3 := apply(3, 1, mkNotifyBatch(13, 14))
	if !c2 || !c3 {
		t.Fatalf("suffix replay not served from cache (seq2=%v seq3=%v)", c2, c3)
	}
	if !bytes.Equal(first2, rr2) || !bytes.Equal(first3, rr3) {
		t.Fatalf("replayed suffix replies differ from the originals")
	}
	if got := reg.LocalWord(0); got != 5 {
		t.Fatalf("producer ticket = %d after suffix replay, want still 5 (no re-execution)", got)
	}

	// Recovery done: a fresh frame executes once and its ack evicts the
	// replayed window.
	r4, c4 := apply(4, 3, mkNotifyBatch(15))
	if c4 || r4[4] != stOK {
		t.Fatalf("post-recovery batch: cached=%v status=%d, want a fresh OK", c4, r4[4])
	}
	if got := reg.LocalWord(0); got != 6 {
		t.Fatalf("producer ticket = %d, want 6", got)
	}
	s := w.sessions[sid]
	s.mu.Lock()
	_, have2 := s.replies[2]
	_, have3 := s.replies[3]
	s.mu.Unlock()
	if have2 || have3 {
		t.Fatalf("ack=3 did not evict the replayed window (2:%v 3:%v)", have2, have3)
	}
}

func TestParseWindow(t *testing.T) {
	for spec, want := range map[string]int{"": 0, "1": 1, " 64 ": 64, "4096": 4096} {
		if got, err := ParseWindow(spec); err != nil || got != want {
			t.Errorf("ParseWindow(%q) = %d, %v; want %d", spec, got, err, want)
		}
	}
	for _, bad := range []string{"0", "-3", "4097", "many", "64x"} {
		if _, err := ParseWindow(bad); err == nil {
			t.Errorf("ParseWindow(%q) parsed without error", bad)
		}
	}
	t.Setenv(EnvWindow, "8")
	if got, err := resolveWindow(0); err != nil || got != 8 {
		t.Errorf("resolveWindow(0) with env 8 = %d, %v; want 8", got, err)
	}
	if got, err := resolveWindow(2); err != nil || got != 2 {
		t.Errorf("resolveWindow(2) must override the env (got %d, %v)", got, err)
	}
	t.Setenv(EnvWindow, "")
	if got, err := resolveWindow(0); err != nil || got != defaultNetWindow {
		t.Errorf("resolveWindow(0) with no env = %d, %v; want the %d default", got, err, defaultNetWindow)
	}
	t.Setenv(EnvWindow, "boom")
	if _, err := resolveWindow(0); err == nil {
		t.Errorf("bad env spec resolved without error")
	}
}

// TestResumeExactlyOnceUnderRecurringResets runs a real two-rank loopback
// world under recurring data-plane connection resets and proves the session
// layer's exactly-once contract end to end: each rank books the peer's NIC
// `rounds` times with (arrival 0, xfer 1), so the i-th booking must return
// exactly i. A lost request that was silently re-executed would skip a value;
// a reply replayed from the wrong seq would repeat one. The faultnet spec
// scopes resets to the data plane, so the coordinator's failure detector
// keeps running — exactly the regime the resume protocol is for.
func TestResumeExactlyOnceUnderRecurringResets(t *testing.T) {
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("probe listen: %v", err)
	}
	addr := probe.Addr().String()
	probe.Close()

	t.Setenv(faultnet.EnvVar, "seed=3,reseteveryn=25,plane=data")
	t.Setenv(EnvTimeouts, "heartbeat=500ms,stale=5s,optimeout=5s,ctlidle=10s")
	t.Setenv(envCoord, addr)
	t.Setenv(envRank, "")
	base := enableTelemetry(t)

	o := Options{Ranks: 2, RanksPerNode: 1, Hosts: []string{"localhost"}, Listen: addr}
	launchErr := make(chan error, 1)
	go func() { launchErr <- Launch(o) }()
	for i := 0; ; i++ {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			break
		}
		if i > 100 {
			t.Fatalf("coordinator never started listening: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	const rounds = 300
	workerErr := make(chan error, 2)
	worker := func() {
		defer func() {
			if r := recover(); r != nil {
				workerErr <- errFromPanic(r)
			}
		}()
		w, err := Join(Options{Ranks: 2, RanksPerNode: 1})
		if err != nil {
			workerErr <- err
			return
		}
		w.Ready()
		peer := 1 - w.Rank()
		var mismatch error
		for i := int64(1); i <= rounds; i++ {
			if got := int64(w.ReserveNIC(peer, 0, 1)); got != i {
				mismatch = fmt.Errorf("rank %d booking %d returned %d: an op was lost or applied twice", w.Rank(), i, got)
				break
			}
		}
		w.Finish()
		workerErr <- mismatch
	}
	go worker()
	go worker()

	for i := 0; i < 2; i++ {
		select {
		case err := <-workerErr:
			if err != nil {
				t.Fatalf("worker: %v", err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("workers did not finish under recurring resets")
		}
	}
	select {
	case err := <-launchErr:
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("coordinator did not return")
	}

	// The run proved the values arrived exactly once; the counters must now
	// tell the same story in telemetry terms. Every injected reset forces
	// at least one mid-window recovery somewhere, every recovery retransmits
	// at least the head of its window, and a dedup hit can only come from a
	// retransmitted frame the owner had already executed.
	resets := counterDelta(base, "fault.reset")
	resumes := counterDelta(base, "net.resumes")
	retrans := counterDelta(base, "net.retransmits")
	dedup := counterDelta(base, "net.dedup_hits")
	if resets == 0 {
		t.Fatalf("fault.reset = 0: the chaos spec injected nothing")
	}
	if resumes == 0 {
		t.Fatalf("net.resumes = 0 with %d injected resets: recoveries went uncounted", resets)
	}
	if retrans < resumes {
		t.Fatalf("net.retransmits (%d) < net.resumes (%d): each recovery must retransmit at least its head frame", retrans, resumes)
	}
	if dedup > retrans {
		t.Fatalf("net.dedup_hits (%d) > net.retransmits (%d): a cached reply replayed without a re-sent frame", dedup, retrans)
	}
}

// TestWindowReplayUnderRecurringResets is the wire-level half of the
// mid-window replay proof: each rank streams fused notify windows at its
// peer — ten NotifyAsync deposits per DrainWire, thirty windows — while
// faultnet resets the data plane every 25 frames, so resets land with
// batches genuinely in flight and the engine must retransmit unacked
// suffixes across fresh connections. The notify ring's producer ticket
// counts executions: exactly `windows*perWindow` at the end means every
// deposit applied exactly once despite the replays.
func TestWindowReplayUnderRecurringResets(t *testing.T) {
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("probe listen: %v", err)
	}
	addr := probe.Addr().String()
	probe.Close()

	t.Setenv(faultnet.EnvVar, "seed=5,reseteveryn=25,plane=data")
	t.Setenv(EnvTimeouts, "heartbeat=500ms,stale=5s,optimeout=5s,ctlidle=10s")
	t.Setenv(envCoord, addr)
	t.Setenv(envRank, "")
	base := enableTelemetry(t)

	o := Options{Ranks: 2, RanksPerNode: 1, Hosts: []string{"localhost"}, Listen: addr}
	launchErr := make(chan error, 1)
	go func() { launchErr <- Launch(o) }()
	for i := 0; ; i++ {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			break
		}
		if i > 100 {
			t.Fatalf("coordinator never started listening: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	const (
		ringCap   = 512
		windows   = 30
		perWindow = 10
		flagOff   = 24 + ringCap*8 // first word past the ring
	)
	workerErr := make(chan error, 2)
	worker := func() {
		defer func() {
			if r := recover(); r != nil {
				workerErr <- errFromPanic(r)
			}
		}()
		w, err := Join(Options{Ranks: 2, RanksPerNode: 1})
		if err != nil {
			workerErr <- err
			return
		}
		buf := make([]byte, flagOff+8)
		reg := simnet.MakeRegion(w.Rank(), 0, buf, timing.NewStamps(len(buf)))
		reg.LocalWordStore(16, ringCap, 0) // bind the ring before peers deposit
		w.RegisterRegion(w.Rank(), &reg)
		w.Ready()
		peer := 1 - w.Rank()
		m := &remoteMem{w: w, rank: peer, key: 0, size: len(buf)}
		var sink timing.Time
		for b := 0; b < windows; b++ {
			for i := 0; i < perWindow; i++ {
				m.NotifyAsync(0, uint64(b*perWindow+i), true, 0, 1, &sink, true)
			}
			w.DrainWire()
		}
		// Announce completion with a sessioned store (ordered behind the
		// drained windows), then wait for the peer's announcement before
		// reading the local ticket.
		m.StoreWord(flagOff, 1, true, 0, 1)
		for reg.LocalWord(flagOff) == 0 {
			time.Sleep(time.Millisecond)
		}
		var mismatch error
		if got := reg.LocalWord(0); got != windows*perWindow {
			mismatch = fmt.Errorf("rank %d ring ticket = %d, want %d: a deposit was lost or applied twice",
				w.Rank(), got, windows*perWindow)
		}
		w.Finish()
		workerErr <- mismatch
	}
	go worker()
	go worker()

	for i := 0; i < 2; i++ {
		select {
		case err := <-workerErr:
			if err != nil {
				t.Fatalf("worker: %v", err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("workers did not finish under recurring resets")
		}
	}
	select {
	case err := <-launchErr:
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("coordinator did not return")
	}

	// Counter invariants for the batched regime: the fused windows must show
	// up as flushed batches, and the reset/recovery relations from the
	// single-op test hold unchanged for window suffix replay.
	if batches := counterDelta(base, "net.batches"); batches == 0 {
		t.Fatalf("net.batches = 0 after %d fused windows per rank", windows)
	}
	resets := counterDelta(base, "fault.reset")
	retrans := counterDelta(base, "net.retransmits")
	dedup := counterDelta(base, "net.dedup_hits")
	if resets == 0 {
		t.Fatalf("fault.reset = 0: the chaos spec injected nothing")
	}
	if resumes := counterDelta(base, "net.resumes"); resumes == 0 || retrans < resumes {
		t.Fatalf("net.resumes = %d, net.retransmits = %d: every mid-window recovery must count and retransmit at least its head", resumes, retrans)
	}
	if dedup > retrans {
		t.Fatalf("net.dedup_hits (%d) > net.retransmits (%d): a cached reply replayed without a re-sent frame", dedup, retrans)
	}
}
