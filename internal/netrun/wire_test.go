package netrun

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	e := newEnc(nil)
	e.u8(opPut)
	e.i64(-42)
	e.u32(7)
	e.u64(1 << 40)
	e.boolByte(true)
	e.bytes([]byte("payload"))
	frame := e.finish()

	rd := bufio.NewReader(bytes.NewReader(frame))
	payload, err := readFrame(rd, nil)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	d := dec{b: payload}
	if op := d.u8(); op != opPut {
		t.Errorf("op = %d, want %d", op, opPut)
	}
	if v := d.i64(); v != -42 {
		t.Errorf("i64 = %d, want -42", v)
	}
	if v := d.u32(); v != 7 {
		t.Errorf("u32 = %d, want 7", v)
	}
	if v := d.u64(); v != 1<<40 {
		t.Errorf("u64 = %d, want %d", v, uint64(1)<<40)
	}
	if !d.boolVal() {
		t.Errorf("bool = false, want true")
	}
	if got := string(d.rest()); got != "payload" {
		t.Errorf("rest = %q, want %q", got, "payload")
	}
	if d.bad {
		t.Errorf("decoder marked bad on a well-formed frame")
	}
}

func TestDecTruncation(t *testing.T) {
	d := dec{b: []byte{1, 2}}
	_ = d.u64()
	if !d.bad {
		t.Errorf("reading 8 bytes from a 2-byte frame did not mark the decoder bad")
	}
}

func TestReadFrameLimit(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], maxFrame+1)
	rd := bufio.NewReader(bytes.NewReader(hdr[:]))
	if _, err := readFrame(rd, nil); err == nil {
		t.Fatalf("oversized frame length accepted")
	}
}

// buildBatch assembles an opBatch payload the way flushFused does: the ring
// flag, the sub-op count, and each sub-frame length-prefixed.
func buildBatch(ring bool, subs ...[]byte) []byte {
	b := []byte{0}
	if ring {
		b[0] = 1
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(subs)))
	for _, s := range subs {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
		b = append(b, s...)
	}
	return b
}

func TestParseBatchRoundTrip(t *testing.T) {
	sub1 := append([]byte{opPut}, bytes.Repeat([]byte{7}, 29)...)
	sub2 := append([]byte{opStoreW}, bytes.Repeat([]byte{9}, 37)...)
	sub3 := []byte{opNotify}
	in := buildBatch(true, sub1, sub2, sub3)
	ring, subs, err := parseBatch(in)
	if err != nil {
		t.Fatalf("parseBatch: %v", err)
	}
	if !ring || len(subs) != 3 ||
		!bytes.Equal(subs[0], sub1) || !bytes.Equal(subs[1], sub2) || !bytes.Equal(subs[2], sub3) {
		t.Fatalf("parsed (ring=%v, %d subs), want the three sub-ops back verbatim", ring, len(subs))
	}
	if _, subs, err := parseBatch(buildBatch(false)); err != nil || len(subs) != 0 {
		t.Fatalf("empty batch: subs=%d err=%v, want a valid zero-op frame", len(subs), err)
	}
}

// TestParseBatchErrors pins the typed-error contract: every malformed shape
// yields its sentinel (wrapped with position detail), never a panic and
// never a silently truncated parse.
func TestParseBatchErrors(t *testing.T) {
	sub := append([]byte{opPut}, 1, 2, 3)
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrBatchHeader},
		{"short header", []byte{0, 1, 0}, ErrBatchHeader},
		{"count exceeds frame", buildBatch(false)[:5:5], ErrBatchCount},
		{"huge count", append([]byte{0}, 0xff, 0xff, 0xff, 0xff), ErrBatchCount},
		{"sub-op length overrun", func() []byte {
			b := buildBatch(false, sub)
			binary.LittleEndian.PutUint32(b[5:], 1000)
			return b
		}(), ErrBatchOpLen},
		{"empty sub-op", buildBatch(false, sub, []byte{}), ErrBatchOpEmpty},
		{"unbatchable opcode", buildBatch(false, []byte{opGet, 1, 2}), ErrBatchOpCode},
		{"nested batch", buildBatch(false, []byte{opBatch, 0}), ErrBatchOpCode},
		{"trailing bytes", append(buildBatch(false, sub), 0xaa), ErrBatchTrailing},
	}
	for _, c := range cases {
		if c.name == "count exceeds frame" {
			// A one-op count with zero payload bytes behind it.
			c.in = append([]byte{0}, 1, 0, 0, 0)
		}
		_, _, err := parseBatch(c.in)
		if !errors.Is(err, c.want) {
			t.Errorf("%s: parseBatch(%x) = %v, want %v", c.name, c.in, err, c.want)
		}
	}
}

// FuzzParseBatch holds parseBatch total over arbitrary frames: no panic, no
// silent truncation (a successful parse must re-encode to the exact input),
// and every rejection is one of the typed sentinels.
func FuzzParseBatch(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(buildBatch(false))
	f.Add(buildBatch(true, append([]byte{opPut}, bytes.Repeat([]byte{3}, 29)...)))
	f.Add(buildBatch(false, []byte{opNotify, 1}, []byte{opStoreW, 2, 3}))
	f.Add(append([]byte{2}, 0xff, 0xff, 0xff, 0x7f, 1, 2, 3))
	f.Fuzz(func(t *testing.T, in []byte) {
		ring, subs, err := parseBatch(in)
		if err != nil {
			for _, want := range []error{ErrBatchHeader, ErrBatchCount, ErrBatchOpLen,
				ErrBatchOpEmpty, ErrBatchOpCode, ErrBatchTrailing} {
				if errors.Is(err, want) {
					return
				}
			}
			t.Fatalf("parseBatch(%x) rejected with an untyped error: %v", in, err)
		}
		for i, s := range subs {
			if len(s) == 0 || !batchable(s[0]) {
				t.Fatalf("parseBatch(%x) accepted invalid sub-op %d: %x", in, i, s)
			}
		}
		// Any nonzero ring byte is truthy, so compare the re-encoding past
		// byte 0 and the flag by value.
		if out := buildBatch(ring, subs...); !bytes.Equal(out[1:], in[1:]) || ring != (in[0] != 0) {
			t.Fatalf("parseBatch(%x) re-encodes to %x: silent truncation or reordering", in, out)
		}
	})
}

// TestEncScratchReuse pins the zero-allocation reuse contract request paths
// rely on: building into recycled scratch must not grow for same-size frames.
func TestEncScratchReuse(t *testing.T) {
	e := newEnc(nil)
	e.u8(opClock)
	e.i64(1)
	first := e.finish()
	e2 := newEnc(first[:0])
	e2.u8(opClock)
	e2.i64(2)
	second := e2.finish()
	if &first[0] != &second[0] {
		t.Errorf("same-size rebuild reallocated the scratch buffer")
	}
}
