package netrun

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	e := newEnc(nil)
	e.u8(opPut)
	e.i64(-42)
	e.u32(7)
	e.u64(1 << 40)
	e.boolByte(true)
	e.bytes([]byte("payload"))
	frame := e.finish()

	rd := bufio.NewReader(bytes.NewReader(frame))
	payload, err := readFrame(rd, nil)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	d := dec{b: payload}
	if op := d.u8(); op != opPut {
		t.Errorf("op = %d, want %d", op, opPut)
	}
	if v := d.i64(); v != -42 {
		t.Errorf("i64 = %d, want -42", v)
	}
	if v := d.u32(); v != 7 {
		t.Errorf("u32 = %d, want 7", v)
	}
	if v := d.u64(); v != 1<<40 {
		t.Errorf("u64 = %d, want %d", v, uint64(1)<<40)
	}
	if !d.boolVal() {
		t.Errorf("bool = false, want true")
	}
	if got := string(d.rest()); got != "payload" {
		t.Errorf("rest = %q, want %q", got, "payload")
	}
	if d.bad {
		t.Errorf("decoder marked bad on a well-formed frame")
	}
}

func TestDecTruncation(t *testing.T) {
	d := dec{b: []byte{1, 2}}
	_ = d.u64()
	if !d.bad {
		t.Errorf("reading 8 bytes from a 2-byte frame did not mark the decoder bad")
	}
}

func TestReadFrameLimit(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], maxFrame+1)
	rd := bufio.NewReader(bytes.NewReader(hdr[:]))
	if _, err := readFrame(rd, nil); err == nil {
		t.Fatalf("oversized frame length accepted")
	}
}

// TestEncScratchReuse pins the zero-allocation reuse contract request paths
// rely on: building into recycled scratch must not grow for same-size frames.
func TestEncScratchReuse(t *testing.T) {
	e := newEnc(nil)
	e.u8(opClock)
	e.i64(1)
	first := e.finish()
	e2 := newEnc(first[:0])
	e2.u8(opClock)
	e2.i64(2)
	second := e2.finish()
	if &first[0] != &second[0] {
		t.Errorf("same-size rebuild reallocated the scratch buffer")
	}
}
