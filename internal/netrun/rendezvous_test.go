package netrun

import (
	"errors"
	"net"
	"testing"
	"time"

	"fompi/internal/simnet"
)

// TestHostListRendezvous exercises the host-list bootstrap path end to end
// inside one process: the coordinator runs in wait-join mode (Hosts set, so
// it spawns nothing), and two worker goroutines Join without FOMPI_NET_RANK
// — the coordinator must assign ranks in join order, broadcast the catalog,
// run the READY/GO barrier, and carry one real put-and-flag exchange over
// loopback TCP before the DONE/BYE teardown.
func TestHostListRendezvous(t *testing.T) {
	// Reserve an ephemeral port for the coordinator: workers need a dialable
	// address before Launch can report the one it bound.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("probe listen: %v", err)
	}
	addr := probe.Addr().String()
	probe.Close()

	o := Options{Ranks: 2, RanksPerNode: 1, Hosts: []string{"localhost"}, Listen: addr}
	t.Setenv(envCoord, addr)
	t.Setenv(envRank, "") // unassigned: the coordinator picks join order

	launchErr := make(chan error, 1)
	go func() { launchErr <- Launch(o) }()

	// Wait for the coordinator's listener before starting workers; the
	// coordinator ignores connections that send no JOIN line, so probing is
	// harmless.
	for i := 0; ; i++ {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			break
		}
		if i > 100 {
			t.Fatalf("coordinator never started listening: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	workerErr := make(chan error, 2)
	seen := make(chan int, 2)
	worker := func() {
		defer func() {
			if r := recover(); r != nil {
				workerErr <- errFromPanic(r)
			}
		}()
		w, err := Join(Options{Ranks: 2, RanksPerNode: 1})
		if err != nil {
			workerErr <- err
			return
		}
		ep := simnet.NewEndpoint(w, w.Rank(), simnet.FoMPI())
		reg := ep.Register(64)
		w.Ready()
		seen <- w.Rank()
		peer := 1 - w.Rank()
		ep.StoreW(simnet.Addr{Rank: peer, Key: reg.Key(), Off: 0}, uint64(w.Rank())+1)
		ep.WaitLocal(func() bool { return reg.LocalWord(0) == uint64(peer)+1 })
		w.Finish()
		workerErr <- nil
	}
	go worker()
	go worker()

	ranks := map[int]bool{}
	for i := 0; i < 2; i++ {
		select {
		case err := <-workerErr:
			t.Fatalf("worker failed before the barrier: %v", err)
		case r := <-seen:
			ranks[r] = true
		case <-time.After(30 * time.Second):
			t.Fatalf("rendezvous barrier did not complete")
		}
	}
	if !ranks[0] || !ranks[1] {
		t.Fatalf("join-order assignment produced ranks %v, want {0, 1}", ranks)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-workerErr:
			if err != nil {
				t.Fatalf("worker: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("workers did not finish")
		}
	}
	select {
	case err := <-launchErr:
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("coordinator did not return after all DONEs")
	}
}

// TestJoinTimeout exercises the rendezvous deadline: a 2-rank world in
// host-list mode where only one worker ever shows up must fail with a typed
// *ErrJoinTimeout naming the absent rank, instead of hanging for the full
// bootstrap window.
func TestJoinTimeout(t *testing.T) {
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("probe listen: %v", err)
	}
	addr := probe.Addr().String()
	probe.Close()

	o := Options{Ranks: 2, RanksPerNode: 1, Hosts: []string{"localhost"},
		Listen: addr, JoinTimeout: 2 * time.Second}
	t.Setenv(envCoord, addr)
	t.Setenv(envRank, "") // join order assigns the lone worker rank 0

	launchErr := make(chan error, 1)
	go func() { launchErr <- Launch(o) }()
	for i := 0; ; i++ {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			break
		}
		if i > 100 {
			t.Fatalf("coordinator never started listening: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The one worker that does appear: its Join blocks on the WORLD
	// broadcast and unblocks with an error when the coordinator gives up.
	go func() {
		defer func() { recover() }()
		if w, err := Join(Options{Ranks: 2, RanksPerNode: 1}); err == nil {
			w.Ready()
		}
	}()

	select {
	case err := <-launchErr:
		var jt *ErrJoinTimeout
		if !errors.As(err, &jt) {
			t.Fatalf("Launch error %v (%T), want *ErrJoinTimeout", err, err)
		}
		if jt.Joined != 1 || jt.Ranks != 2 {
			t.Fatalf("ErrJoinTimeout counted %d of %d joined, want 1 of 2", jt.Joined, jt.Ranks)
		}
		if len(jt.Missing) != 1 || jt.Missing[0] != 1 {
			t.Fatalf("ErrJoinTimeout.Missing = %v, want [1]", jt.Missing)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("join timeout never fired")
	}
}

func errFromPanic(r any) error {
	if err, ok := r.(error); ok {
		return err
	}
	return &panicErr{r}
}

type panicErr struct{ v any }

func (p *panicErr) Error() string { return "panic: " + sprint(p.v) }

func sprint(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	return "non-string panic value"
}
