package netrun

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire protocol of the inter-node backend (DESIGN.md §9). Every message is a
// length-prefixed little-endian frame on a TCP stream:
//
//	u32 length   of the payload that follows
//	payload      request: op byte, src clock i64, op-specific fields
//	             reply:   status byte, op-specific fields (fault: message)
//
// Each rank pair uses one stream per direction: rank A's requests to rank B
// travel on the connection A dialed to B's data listener, and the replies
// return on it. A requester keeps a bounded window of requests in flight
// (DESIGN.md §12) but replies still match requests by order — the stream
// needs no tags — and TCP's in-order delivery makes the owner apply A's
// operations in A's issue order, the property the put-then-flag ordering
// contract rides on. Value-returning operations (gets, loads, AMOs) block
// for their reply, which drains every frame ahead of them first. opRing is
// the one fire-and-forget message (no reply), which keeps doorbell rings
// cheap while still ordered behind the data they announce.
//
// Every request carries the sender's current virtual clock; the owner folds
// it into its pacing table, so data traffic doubles as clock gossip (the
// piggyback half of the pacing discipline; opClock is the heartbeat half).
//
// Since v4 the data-plane ops ride a resumable session (DESIGN.md §11): after
// the clock, each carries (sid u64, seq u64, ack u64) — a session identity
// encoding the requester's rank, a per-owner monotonically increasing
// sequence number, and the cumulative sequence the requester has seen a
// reply for. The owner keeps a bounded per-session window of applied seqs
// with their cached reply bytes (evicted once acked), so a request
// retransmitted after a connection reset is answered from the cache instead
// of re-executed — ops apply exactly once no matter how many times the TCP
// stream under them dies. opResume is the re-attach handshake on a fresh
// connection: it names the in-flight (sid, seq) and the owner answers
// whether that seq was already applied, replaying the cached reply inline
// when it was.
const (
	// protoVersion gates the JOIN handshake; bump on any frame change.
	// v2: JOIN carries a host key and WORLD a host catalog (hybrid topology).
	// v3: the control stream speaks PING/PONG heartbeats and RANKFAIL
	// verdicts after GO; a v2 peer would neither answer probes nor
	// understand the verdict lines.
	// v4: data-plane requests carry the session header (sid, seq, ack),
	// opResume re-attaches a session after a reset, and fault replies are
	// structured (kind byte + rank + message) instead of a bare string.
	// v5: opBatch fuses put-shaped data-plane ops into one sessioned frame
	// (per-op replies concatenated in one reply frame) and requesters keep
	// an outstanding-request window per destination, so the cumulative ack
	// may trail seq by up to the window depth and a resumed connection
	// retransmits the whole unacked suffix in order instead of probing a
	// single in-flight seq with opResume.
	protoVersion = 5

	// maxFrame bounds a frame against stream corruption: the largest
	// legitimate payload is a bulk put of a whole region, and regions are
	// arena-scale (MBs), not GBs.
	maxFrame = 1 << 28
)

// Request opcodes.
const (
	opHello      uint8 = iota + 1 // rank u32 (once per connection; no reply)
	opPut                         // key u32, off u64, arrival i64, xfer i64, reserve u8, bytes
	opGet                         // key u32, off u64, n u64, clockIn i64, tail i64, xfer i64, reserve u8
	opStoreW                      // key u32, off u64, val u64, arrival i64, xfer i64, reserve u8
	opLoadW                       // key u32, off u64
	opWordAmo                     // key u32, off u64, wop u8, o1 u64, o2 u64, clockIn i64, srcFree i64, lat i64, xfer i64, reserve u8
	opBulkAmo                     // key u32, off u64, aop u8, clockIn i64, srcFree i64, lat i64, xfer i64, reserve u8, bytes
	opNotify                      // key u32, off u64, word u64, arrival i64, xfer i64, reserve u8
	opRegQuery                    // key u32
	opNicReserve                  // arrival i64, xfer i64
	opDoorGen                     // -
	opDoorWait                    // gen u64, timeoutUs u32
	opRing                        // - (no reply)
	opClock                       // - (reply: owner's published clock)
	opResume                      // sid u64, seq u64, ack u64 (session re-attach after a reset)
	opBatch                       // ring u8, nops u32, nops × (len u32, op u8, op fields) — fused data-plane ops
)

// sessioned reports whether op carries the session header (sid, seq, ack)
// after its clock: exactly the data-plane ops, whose execution mutates owner
// state (bytes, stamps, AMO results, NIC bookings) and therefore must never
// be applied twice. The control ops (opRegQuery, opDoorGen, opDoorWait,
// opClock) are idempotent and keep the bare header — callIdem simply
// re-issues them.
func sessioned(op uint8) bool {
	switch op {
	case opPut, opGet, opStoreW, opLoadW, opWordAmo, opBulkAmo, opNotify, opNicReserve, opBatch:
		return true
	}
	return false
}

// batchable reports whether op may ride inside an opBatch frame: exactly
// the put-shaped data-plane ops, whose reply is a single completion time
// the requester can absorb asynchronously (simnet.AsyncMem). Value-
// returning ops (gets, loads, AMOs) block their caller anyway and stay
// unfused; opBatch itself is excluded, so frames cannot nest.
func batchable(op uint8) bool {
	switch op {
	case opPut, opStoreW, opNotify:
		return true
	}
	return false
}

// Typed opBatch parse errors. parseBatch must reject malformed frames with
// one of these (wrapped with position detail) and never panic or silently
// truncate: batch frames cross a process trust boundary, and the owner
// turns the error into a structured fault reply for the requester.
var (
	ErrBatchHeader   = errors.New("netrun: batch frame truncated before its op count")
	ErrBatchCount    = errors.New("netrun: batch op count exceeds its frame")
	ErrBatchOpLen    = errors.New("netrun: batch sub-op length overruns its frame")
	ErrBatchOpEmpty  = errors.New("netrun: batch sub-op has no opcode")
	ErrBatchOpCode   = errors.New("netrun: batch sub-op opcode is not batchable")
	ErrBatchTrailing = errors.New("netrun: trailing bytes after the last batch sub-op")
)

// parseBatch splits an opBatch payload — everything after the session
// header — into its doorbell-ring flag and per-op sub-frames (each op byte
// + op fields, exactly the layout the unfused request carries after its
// session header). Pure and total: any malformed input yields a typed
// error, never a panic.
func parseBatch(p []byte) (ring bool, subs [][]byte, err error) {
	if len(p) < 5 {
		return false, nil, fmt.Errorf("%w (%d bytes)", ErrBatchHeader, len(p))
	}
	ring = p[0] != 0
	n := int(binary.LittleEndian.Uint32(p[1:5]))
	p = p[5:]
	// Each sub-op needs at least its length prefix and opcode, which bounds
	// a sane count by the bytes actually present.
	if n < 0 || n > len(p)/5 {
		return false, nil, fmt.Errorf("%w (%d ops in %d bytes)", ErrBatchCount, n, len(p))
	}
	subs = make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		k := int(binary.LittleEndian.Uint32(p[:4]))
		if k < 0 || k > len(p)-4 {
			return false, nil, fmt.Errorf("%w (op %d claims %d of %d bytes)", ErrBatchOpLen, i, k, len(p)-4)
		}
		sub := p[4 : 4+k]
		if len(sub) == 0 {
			return false, nil, fmt.Errorf("%w (op %d)", ErrBatchOpEmpty, i)
		}
		if !batchable(sub[0]) {
			return false, nil, fmt.Errorf("%w (op %d has opcode %d)", ErrBatchOpCode, i, sub[0])
		}
		subs = append(subs, sub)
		p = p[4+k:]
		if i < n-1 && len(p) < 4 {
			return false, nil, fmt.Errorf("%w (op %d)", ErrBatchOpLen, i+1)
		}
	}
	if len(p) != 0 {
		return false, nil, fmt.Errorf("%w (%d bytes)", ErrBatchTrailing, len(p))
	}
	return ring, subs, nil
}

// Reply status bytes.
const (
	stOK    uint8 = 0
	stFault uint8 = 1 // payload: kind u8, rank u32, message bytes (see faultKind)
)

// Fault kinds: the typed classification of an owner-reported fault, so the
// requester re-panics a value that composes with the abort machinery instead
// of a bare string.
const (
	faultGeneric    uint8 = 0 // program fault at the owner: *RemoteFault
	faultAborted    uint8 = 1 // owner was unwinding a world abort: ErrAborted
	faultPeerFailed uint8 = 2 // owner blamed a dead rank: *simnet.ErrPeerFailed
)

// Region-query states (opRegQuery replies).
const (
	regUnknown uint8 = 0
	regLive    uint8 = 1
	regDead    uint8 = 2
)

// enc is an append-style frame builder. The first 4 bytes are reserved for
// the length prefix, patched by finish.
type enc struct{ b []byte }

func newEnc(scratch []byte) enc { return enc{append(scratch[:0], 0, 0, 0, 0)} }
func (e *enc) u8(v uint8)       { e.b = append(e.b, v) }
func (e *enc) u32(v uint32)     { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)     { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)      { e.b = binary.LittleEndian.AppendUint64(e.b, uint64(v)) }
func (e *enc) bytes(p []byte)   { e.b = append(e.b, p...) }
func (e *enc) boolByte(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) finish() []byte {
	binary.LittleEndian.PutUint32(e.b[:4], uint32(len(e.b)-4))
	return e.b
}

// dec is a cursor over a received frame payload; out-of-bounds reads mark
// the decoder bad instead of panicking mid-handler.
type dec struct {
	b   []byte
	pos int
	bad bool
}

func (d *dec) n(k int) []byte {
	if d.pos+k > len(d.b) {
		d.bad = true
		return make([]byte, k)
	}
	p := d.b[d.pos : d.pos+k]
	d.pos += k
	return p
}

// must panics if any read overran the frame. Handlers call it after
// decoding every field and before executing: a truncated request must fault
// before any owner state mutates (zero-filled fields would otherwise write
// real bytes and stamps).
func (d *dec) must() {
	if d.bad {
		panic("netrun: truncated request frame")
	}
}

func (d *dec) u8() uint8     { return d.n(1)[0] }
func (d *dec) u32() uint32   { return binary.LittleEndian.Uint32(d.n(4)) }
func (d *dec) u64() uint64   { return binary.LittleEndian.Uint64(d.n(8)) }
func (d *dec) i64() int64    { return int64(d.u64()) }
func (d *dec) boolVal() bool { return d.u8() != 0 }
func (d *dec) rest() []byte  { p := d.b[d.pos:]; d.pos = len(d.b); return p }

// readFrame reads one length-prefixed frame into buf (grown as needed) and
// returns the payload slice.
func readFrame(r *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > maxFrame {
		return nil, fmt.Errorf("netrun: frame of %d bytes exceeds limit (corrupt stream?)", n)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
