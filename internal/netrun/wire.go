package netrun

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Wire protocol of the inter-node backend (DESIGN.md §9). Every message is a
// length-prefixed little-endian frame on a TCP stream:
//
//	u32 length   of the payload that follows
//	payload      request: op byte, src clock i64, op-specific fields
//	             reply:   status byte, op-specific fields (fault: message)
//
// Each rank pair uses one stream per direction: rank A's requests to rank B
// travel on the connection A dialed to B's data listener, and the replies
// return on it. A requester issues at most one request at a time (endpoints
// are confined to their rank's goroutine and block for the reply), so the
// stream needs no tags: replies match requests by order, and TCP's in-order
// delivery makes the owner apply A's operations in A's issue order — the
// property the put-then-flag ordering contract rides on. opRing is the one
// fire-and-forget message (no reply), which keeps doorbell rings cheap while
// still ordered behind the data they announce.
//
// Every request carries the sender's current virtual clock; the owner folds
// it into its pacing table, so data traffic doubles as clock gossip (the
// piggyback half of the pacing discipline; opClock is the heartbeat half).
//
// Since v4 the data-plane ops ride a resumable session (DESIGN.md §11): after
// the clock, each carries (sid u64, seq u64, ack u64) — a session identity
// encoding the requester's rank, a per-owner monotonically increasing
// sequence number, and the cumulative sequence the requester has seen a
// reply for. The owner keeps a bounded per-session window of applied seqs
// with their cached reply bytes (evicted once acked), so a request
// retransmitted after a connection reset is answered from the cache instead
// of re-executed — ops apply exactly once no matter how many times the TCP
// stream under them dies. opResume is the re-attach handshake on a fresh
// connection: it names the in-flight (sid, seq) and the owner answers
// whether that seq was already applied, replaying the cached reply inline
// when it was.
const (
	// protoVersion gates the JOIN handshake; bump on any frame change.
	// v2: JOIN carries a host key and WORLD a host catalog (hybrid topology).
	// v3: the control stream speaks PING/PONG heartbeats and RANKFAIL
	// verdicts after GO; a v2 peer would neither answer probes nor
	// understand the verdict lines.
	// v4: data-plane requests carry the session header (sid, seq, ack),
	// opResume re-attaches a session after a reset, and fault replies are
	// structured (kind byte + rank + message) instead of a bare string.
	protoVersion = 4

	// maxFrame bounds a frame against stream corruption: the largest
	// legitimate payload is a bulk put of a whole region, and regions are
	// arena-scale (MBs), not GBs.
	maxFrame = 1 << 28
)

// Request opcodes.
const (
	opHello      uint8 = iota + 1 // rank u32 (once per connection; no reply)
	opPut                         // key u32, off u64, arrival i64, xfer i64, reserve u8, bytes
	opGet                         // key u32, off u64, n u64, clockIn i64, tail i64, xfer i64, reserve u8
	opStoreW                      // key u32, off u64, val u64, arrival i64, xfer i64, reserve u8
	opLoadW                       // key u32, off u64
	opWordAmo                     // key u32, off u64, wop u8, o1 u64, o2 u64, clockIn i64, srcFree i64, lat i64, xfer i64, reserve u8
	opBulkAmo                     // key u32, off u64, aop u8, clockIn i64, srcFree i64, lat i64, xfer i64, reserve u8, bytes
	opNotify                      // key u32, off u64, word u64, arrival i64, xfer i64, reserve u8
	opRegQuery                    // key u32
	opNicReserve                  // arrival i64, xfer i64
	opDoorGen                     // -
	opDoorWait                    // gen u64, timeoutUs u32
	opRing                        // - (no reply)
	opClock                       // - (reply: owner's published clock)
	opResume                      // sid u64, seq u64, ack u64 (session re-attach after a reset)
)

// sessioned reports whether op carries the session header (sid, seq, ack)
// after its clock: exactly the data-plane ops, whose execution mutates owner
// state (bytes, stamps, AMO results, NIC bookings) and therefore must never
// be applied twice. The control ops (opRegQuery, opDoorGen, opDoorWait,
// opClock) are idempotent and keep the bare header — callIdem simply
// re-issues them.
func sessioned(op uint8) bool {
	switch op {
	case opPut, opGet, opStoreW, opLoadW, opWordAmo, opBulkAmo, opNotify, opNicReserve:
		return true
	}
	return false
}

// Reply status bytes.
const (
	stOK    uint8 = 0
	stFault uint8 = 1 // payload: kind u8, rank u32, message bytes (see faultKind)
)

// Fault kinds: the typed classification of an owner-reported fault, so the
// requester re-panics a value that composes with the abort machinery instead
// of a bare string.
const (
	faultGeneric    uint8 = 0 // program fault at the owner: *RemoteFault
	faultAborted    uint8 = 1 // owner was unwinding a world abort: ErrAborted
	faultPeerFailed uint8 = 2 // owner blamed a dead rank: *simnet.ErrPeerFailed
)

// Region-query states (opRegQuery replies).
const (
	regUnknown uint8 = 0
	regLive    uint8 = 1
	regDead    uint8 = 2
)

// enc is an append-style frame builder. The first 4 bytes are reserved for
// the length prefix, patched by finish.
type enc struct{ b []byte }

func newEnc(scratch []byte) enc { return enc{append(scratch[:0], 0, 0, 0, 0)} }
func (e *enc) u8(v uint8)       { e.b = append(e.b, v) }
func (e *enc) u32(v uint32)     { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)     { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)      { e.b = binary.LittleEndian.AppendUint64(e.b, uint64(v)) }
func (e *enc) bytes(p []byte)   { e.b = append(e.b, p...) }
func (e *enc) boolByte(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) finish() []byte {
	binary.LittleEndian.PutUint32(e.b[:4], uint32(len(e.b)-4))
	return e.b
}

// dec is a cursor over a received frame payload; out-of-bounds reads mark
// the decoder bad instead of panicking mid-handler.
type dec struct {
	b   []byte
	pos int
	bad bool
}

func (d *dec) n(k int) []byte {
	if d.pos+k > len(d.b) {
		d.bad = true
		return make([]byte, k)
	}
	p := d.b[d.pos : d.pos+k]
	d.pos += k
	return p
}

// must panics if any read overran the frame. Handlers call it after
// decoding every field and before executing: a truncated request must fault
// before any owner state mutates (zero-filled fields would otherwise write
// real bytes and stamps).
func (d *dec) must() {
	if d.bad {
		panic("netrun: truncated request frame")
	}
}

func (d *dec) u8() uint8     { return d.n(1)[0] }
func (d *dec) u32() uint32   { return binary.LittleEndian.Uint32(d.n(4)) }
func (d *dec) u64() uint64   { return binary.LittleEndian.Uint64(d.n(8)) }
func (d *dec) i64() int64    { return int64(d.u64()) }
func (d *dec) boolVal() bool { return d.u8() != 0 }
func (d *dec) rest() []byte  { p := d.b[d.pos:]; d.pos = len(d.b); return p }

// readFrame reads one length-prefixed frame into buf (grown as needed) and
// returns the payload slice.
func readFrame(r *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > maxFrame {
		return nil, fmt.Errorf("netrun: frame of %d bytes exceeds limit (corrupt stream?)", n)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
