// Package netrun is the inter-node transport backend: each rank of an SPMD
// world is an OS process on (potentially) a different machine, and every
// remote-memory operation — put, get, atomics, notified access — travels as
// a length-prefixed message over TCP to a per-rank service loop that
// executes it against locally owned segments (simnet.RegionExec). It is the
// backend that removes the single-machine ceiling of internal/mprun: the
// same simnet.Transport contract, with the shared mmap replaced by a wire
// protocol (DESIGN.md §9).
//
// A world bootstraps through one coordinator socket. In loopback mode (the
// CI mode) the launcher spawns the worker processes itself, exactly like
// mprun; in host-list mode the launcher only listens, and the operator
// starts one worker per rank on each machine with FOMPI_NET_COORD pointing
// at it. Workers JOIN with their data-listener address, the coordinator
// broadcasts the rank/address catalog, and after a READY/GO barrier the
// ranks dial each other lazily as traffic demands.
//
// Everything virtual-time stays above the Transport line: the requester-side
// halves of each operation (cost-model charges, source-NIC serialization)
// run in simnet.Endpoint, the owner-side halves (byte movement, stamps,
// target-NIC booking) replay through simnet.RegionExec, and the conformance
// suite in internal/transporttest pins the results bit-identical to the
// in-process and multi-process backends.
package netrun

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fompi/internal/faultnet"
	"fompi/internal/rankio"
	"fompi/internal/segpool"
	"fompi/internal/simnet"
	"fompi/internal/telemetry"
	"fompi/internal/timing"
)

const (
	envCoord = "FOMPI_NET_COORD"
	envRank  = "FOMPI_NET_RANK"
	envHost  = "FOMPI_NET_HOST"
	// EnvTimeouts overrides the failure-model timing knobs (see Timeouts);
	// worker processes inherit it, so one setting governs a whole world.
	EnvTimeouts = "FOMPI_NET_TIMEOUTS"
	// EnvWindow overrides the per-destination outstanding-request window
	// depth of the pipelined wire engine (DESIGN.md §12); like EnvTimeouts
	// it is re-exported by Launch so one setting governs a whole world.
	// window=1 degrades to the pre-v5 one-op-one-RTT blocking behavior (the
	// escape hatch); empty keeps the default.
	EnvWindow = "FOMPI_NET_WINDOW"

	// defaultNetWindow is the outstanding-request window depth when neither
	// EnvWindow nor Options.NetWindow picks one; maxNetWindow bounds a
	// configured depth (the byte cap in session.go binds long before this
	// for realistic frames).
	defaultNetWindow = 64
	maxNetWindow     = 4096

	bootTimeout = 60 * time.Second
	// abortGrace bounds the time between the abort broadcast and the
	// coordinator force-dropping unaccounted ranks; together with the
	// requester-side deadlines it is what makes "a dead rank surfaces as a
	// typed error within ten seconds" a testable promise.
	abortGrace = 8 * time.Second
	// byeTimeout is a failsafe only: a finished rank must keep serving its
	// memory until every rank is done (coordinator death is caught by the
	// control-stream watcher), so this bounds nothing but a wedged-alive
	// coordinator and is deliberately generous.
	byeTimeout    = 10 * time.Minute
	doorWaitSlice = 100 * time.Millisecond
	paceSleepMin  = 50 * time.Microsecond
	paceSleepMax  = 2 * time.Millisecond

	// opTimeout is the per-request deadline on every data-plane wire call:
	// a peer that neither answers nor resets within it is treated as dead.
	opTimeout = 15 * time.Second
	// Idempotent control requests (opRegQuery, opClock, opDoorGen,
	// opDoorWait re-arm) retry up to idemAttempts times across fresh
	// connections, backing off from idemBackoff.
	idemAttempts = 4
	idemBackoff  = 25 * time.Millisecond
	// Peer dials retry inside peerErr (the listener may not be reachable
	// for a moment on a congested fabric, and faultnet injects exactly
	// that); dialAttempts bounds them.
	dialAttempts = 5
	dialBackoff  = 50 * time.Millisecond

	// The coordinator PINGs every heartbeatEvery once the world is running;
	// a rank whose PONG is older than heartbeatStale is declared dead. The
	// worker mirrors the check: a control stream idle past ctlIdleTimeout
	// means the coordinator (or its host) vanished without a FIN.
	heartbeatEvery  = 2 * time.Second
	heartbeatStale  = 10 * time.Second
	ctlIdleTimeout  = 30 * time.Second
	joinProgressDot = 5 * time.Second
)

// Options describes an inter-node world. Launcher and workers must agree on
// the world-shape fields (the JOIN handshake validates them).
type Options struct {
	Ranks        int
	RanksPerNode int
	PaceWindowNs int64
	// Listen is the coordinator's listen address. Empty means loopback
	// spawn mode: listen on 127.0.0.1:0 and re-execute the worker argv once
	// per rank locally.
	Listen string
	// Hosts, when non-empty, selects host-list mode: the coordinator does
	// not spawn anything and instead waits for Ranks workers — started on
	// the listed machines with FOMPI_NET_COORD set — to join. The list is
	// advisory placement documentation (rank assignment follows explicit
	// FOMPI_NET_RANK values, then join order); it mainly sizes the
	// operator's expectations and the launch banner.
	Hosts []string
	// Relaunch is the worker argv for loopback spawn mode; nil re-executes
	// os.Args.
	Relaunch []string
	// TagOutput prefixes each spawned rank's stdout/stderr with "[rank N]"
	// (loopback spawn mode only; remote workers own their streams).
	TagOutput bool

	// HostKey names the physical host of this worker for topology-aware
	// backends (the hybrid backend groups ranks whose keys match into one
	// shared-memory arena). Empty falls back to $FOMPI_NET_HOST, then
	// os.Hostname(). Spaces and commas are rewritten on join (the key rides
	// space-separated control lines and a comma-joined catalog).
	HostKey string
	// HostKeys, in loopback spawn mode, assigns rank r the host key
	// HostKeys[r] through the spawn environment; the hybrid backend's
	// loopback mode uses it to emulate a multi-host placement on one
	// machine. Empty leaves the workers to their own defaults (one shared
	// hostname). Must be empty or exactly Ranks long.
	HostKeys []string
	// ExtraEnv is appended to each spawned worker's environment (loopback
	// spawn mode; the hybrid backend uses it to mark its workers).
	ExtraEnv []string

	// JoinTimeout bounds the rendezvous: how long the coordinator waits for
	// all Ranks workers to JOIN before giving up with an *ErrJoinTimeout
	// naming the absent ranks. Zero means bootTimeout (60 s). In host-list
	// mode the coordinator also prints a "still waiting for ranks […]"
	// progress line every few seconds while short of quorum.
	JoinTimeout time.Duration

	// Timeouts overrides the failure-model timing knobs; zero fields fall
	// back to the EnvTimeouts environment spec, then to the defaults.
	// Launch re-exports the resolved values through EnvTimeouts so spawned
	// workers agree with the coordinator.
	Timeouts Timeouts

	// NetWindow overrides the outstanding-request window depth (DESIGN.md
	// §12); zero falls back to the EnvWindow environment spec, then to
	// defaultNetWindow. Launch re-exports the resolved value through
	// EnvWindow so spawned workers agree with the coordinator.
	NetWindow int
}

// ParseWindow parses an EnvWindow spec: an integer window depth in
// [1, maxNetWindow]. An empty spec is valid and selects the default.
func ParseWindow(spec string) (int, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(spec)
	if err != nil || n < 1 || n > maxNetWindow {
		return 0, fmt.Errorf("netrun: bad window depth %q (want an integer in [1,%d])", spec, maxNetWindow)
	}
	return n, nil
}

// resolveWindow layers default ← environment ← Options, like
// resolveTimeouts: both the coordinator and every worker resolve the same
// way, so a depth exported through the environment keeps the world in
// agreement.
func resolveWindow(o int) (int, error) {
	n, err := ParseWindow(os.Getenv(EnvWindow))
	if err != nil {
		return 0, err
	}
	if o > 0 {
		if o > maxNetWindow {
			return 0, fmt.Errorf("netrun: bad window depth %d (want an integer in [1,%d])", o, maxNetWindow)
		}
		n = o
	}
	if n == 0 {
		n = defaultNetWindow
	}
	return n, nil
}

// Timeouts are the failure-model timing knobs (DESIGN.md §11), configurable
// per world so chaos tests and latency-sensitive deployments need not wait
// out the conservative defaults. The environment spec (EnvTimeouts,
// `fompi-run -net-timeouts`) is a comma-separated key=value list of Go
// durations:
//
//	heartbeat=500ms   coordinator PING cadence after GO
//	stale=3s          missing-PONG budget before a rank is declared dead
//	optimeout=2s      per-request data-plane budget (also the whole
//	                  reconnect-and-resume budget of one op)
//	ctlidle=6s        worker-side idle-control-stream cutoff (a vanished
//	                  coordinator)
//
// Zero fields keep the defaults (2s / 10s / 15s / 30s). Malformed or
// inconsistent specs fail the launch, like a bad -faults spec.
type Timeouts struct {
	HeartbeatEvery time.Duration // heartbeat=
	HeartbeatStale time.Duration // stale=
	OpTimeout      time.Duration // optimeout=
	CtlIdleTimeout time.Duration // ctlidle=
}

// ParseTimeouts parses an EnvTimeouts spec; an empty spec is a valid
// all-defaults Timeouts.
func ParseTimeouts(spec string) (Timeouts, error) {
	var t Timeouts
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return t, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return t, fmt.Errorf("netrun: timeout spec %q is not key=value", kv)
		}
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return t, fmt.Errorf("netrun: bad timeout %s=%q (want a positive duration)", k, v)
		}
		switch k {
		case "heartbeat":
			t.HeartbeatEvery = d
		case "stale":
			t.HeartbeatStale = d
		case "optimeout":
			t.OpTimeout = d
		case "ctlidle":
			t.CtlIdleTimeout = d
		default:
			return t, fmt.Errorf("netrun: unknown timeout key %q (want heartbeat, stale, optimeout, ctlidle)", k)
		}
	}
	return t, nil
}

// spec renders t as a ParseTimeouts round-trippable string (all fields must
// be resolved).
func (t Timeouts) spec() string {
	return fmt.Sprintf("heartbeat=%s,stale=%s,optimeout=%s,ctlidle=%s",
		t.HeartbeatEvery, t.HeartbeatStale, t.OpTimeout, t.CtlIdleTimeout)
}

// resolveTimeouts layers defaults ← environment ← Options and validates the
// result; both the coordinator and every worker resolve the same way, so a
// spec exported through the environment keeps the world in agreement.
func resolveTimeouts(o Timeouts) (Timeouts, error) {
	t, err := ParseTimeouts(os.Getenv(EnvTimeouts))
	if err != nil {
		return t, err
	}
	if o.HeartbeatEvery > 0 {
		t.HeartbeatEvery = o.HeartbeatEvery
	}
	if o.HeartbeatStale > 0 {
		t.HeartbeatStale = o.HeartbeatStale
	}
	if o.OpTimeout > 0 {
		t.OpTimeout = o.OpTimeout
	}
	if o.CtlIdleTimeout > 0 {
		t.CtlIdleTimeout = o.CtlIdleTimeout
	}
	if t.HeartbeatEvery <= 0 {
		t.HeartbeatEvery = heartbeatEvery
	}
	if t.HeartbeatStale <= 0 {
		t.HeartbeatStale = heartbeatStale
	}
	if t.OpTimeout <= 0 {
		t.OpTimeout = opTimeout
	}
	if t.CtlIdleTimeout <= 0 {
		t.CtlIdleTimeout = ctlIdleTimeout
	}
	if t.HeartbeatStale <= t.HeartbeatEvery {
		return t, fmt.Errorf("netrun: stale budget %v must exceed the heartbeat cadence %v", t.HeartbeatStale, t.HeartbeatEvery)
	}
	if t.CtlIdleTimeout <= t.HeartbeatEvery {
		return t, fmt.Errorf("netrun: ctl idle cutoff %v must exceed the heartbeat cadence %v (PINGs are what keep the stream busy)", t.CtlIdleTimeout, t.HeartbeatEvery)
	}
	return t, nil
}

func (o Options) withDefaults() Options {
	if o.Ranks <= 0 {
		o.Ranks = 1
	}
	if o.RanksPerNode <= 0 {
		o.RanksPerNode = 1
	}
	return o
}

// IsWorker reports whether this process was launched as a worker rank of an
// inter-node world (the coordinator environment is present).
func IsWorker() bool { return os.Getenv(envCoord) != "" }

// World is one process's attachment to an inter-node world; in a worker it
// implements simnet.Transport for that worker's rank.
type World struct {
	opts Options
	rank int // -1 in the launcher

	ctl   net.Conn // stream to the coordinator (workers only)
	ctlRd *bufio.Reader
	ctlWr sync.Mutex // serializes status lines against the abort sender

	ln    net.Listener // this rank's data listener
	addrs []string     // rank -> data address
	hosts []string     // rank -> host key (from the WORLD catalog)

	// peers are this rank's requester connections, dialed lazily; guarded
	// by peerMu only against the abort path's close-all (requests
	// themselves are confined to the rank's goroutine).
	peerMu sync.Mutex
	peers  []*peerConn

	// mine is this rank's region directory (index = key; slots are nilled
	// on unregister, never reused). proxies caches materialized remote
	// views per (rank, key); it is touched only by the rank's goroutine.
	mineMu  sync.RWMutex
	mine    []*simnet.Region
	proxies [][]*simnet.Region

	// Owner-side virtual-hardware state served to peers: NIC busy interval,
	// doorbell, published pace clocks. reserveFn is the bound method value,
	// made once so the per-request executor carries no allocation.
	nicMu     sync.Mutex
	nicStart  int64
	nicBusy   int64
	reserveFn func(timing.Time, int64) timing.Time
	door      doorbell
	doorOps   atomic.Pointer[DoorOps] // non-nil: external doorbell (hybrid)
	clocks    []int64                 // atomically accessed; clocks[r] = last known clock of r

	// Session layer (session.go): this process's session identity, the
	// requester half of each per-owner session, and the owner-side session
	// table serving resumes from every peer.
	sid      uint64
	rsess    []reqSession
	sessMu   sync.Mutex
	sessions map[uint64]*ownerSession

	// Inbound service tracking: every accepted data-plane connection and
	// its serveConn goroutine, so Finish/Fail can stop the service and
	// guarantee no remote op touches local memory afterwards.
	svcMu     sync.Mutex
	svcConns  map[net.Conn]struct{}
	svcClosed bool
	svcWg     sync.WaitGroup

	// tm holds the resolved failure-model timing knobs (Timeouts); win is
	// the resolved outstanding-request window depth (session.go).
	tm  Timeouts
	win int

	aborted atomic.Bool
	// failedRank is the rank the RANKFAIL verdict (or first-hand transport
	// evidence) blamed for the abort; -1 while the world is healthy or the
	// abort has no known culprit. It upgrades the abort panic from the bare
	// ErrAborted to *simnet.ErrPeerFailed.
	failedRank atomic.Int32
	done       chan struct{}
	bye        chan struct{}
	finished   atomic.Bool
	abortOnce  sync.Once
	hookMu     sync.Mutex
	hooks      []func()
}

// noteFailedRank records the first rank blamed for the world's death.
func (w *World) noteFailedRank(r int) {
	w.failedRank.CompareAndSwap(-1, int32(r))
}

// FailedRank returns the rank blamed for the world's death, or -1 while the
// world is healthy or the abort has no known culprit. Layered transports
// (hybridrun) read it from their abort hooks to propagate the verdict into
// their own wait paths.
func (w *World) FailedRank() int { return int(w.failedRank.Load()) }

// abortPanic is the value blocked primitives unwind with after an abort:
// *simnet.ErrPeerFailed when a RANKFAIL verdict (or local evidence) named
// the dead rank, the bare simnet.ErrAborted otherwise. Both satisfy
// errors.Is(err, simnet.ErrAborted).
func (w *World) abortPanic() any {
	if r := w.failedRank.Load(); r >= 0 {
		return &simnet.ErrPeerFailed{Rank: int(r)}
	}
	return simnet.ErrAborted
}

// ErrJoinTimeout reports a rendezvous that ran out its join timeout with
// ranks still absent. Missing lists the rank slots no worker claimed,
// under the same assignment rule a completed join would have used
// (explicit FOMPI_NET_RANK claims first, join-order workers filling the
// lowest free slots).
type ErrJoinTimeout struct {
	Joined  int
	Ranks   int
	Timeout time.Duration
	Missing []int
}

func (e *ErrJoinTimeout) Error() string {
	return fmt.Sprintf("netrun: rendezvous timed out after %v with %d of %d ranks joined; missing ranks %v",
		e.Timeout, e.Joined, e.Ranks, e.Missing)
}

// doorbell is the generation-counted wakeup channel of one rank, shared by
// its local waiter and the service handlers parking remote DoorWait
// requests: ring closes the current channel, waking everyone at once.
type doorbell struct {
	mu  sync.Mutex
	gen atomic.Uint64
	ch  chan struct{}
}

func (d *doorbell) init() { d.ch = make(chan struct{}) }

func (d *doorbell) ring() {
	d.mu.Lock()
	d.gen.Add(1)
	close(d.ch)
	d.ch = make(chan struct{})
	d.mu.Unlock()
}

// waitCh returns the channel to park on, or ok=false when gen is already
// stale (no park needed).
func (d *doorbell) waitCh(gen uint64) (<-chan struct{}, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.gen.Load() != gen {
		return nil, false
	}
	return d.ch, true
}

// DoorOps substitutes an external doorbell for this rank's in-process one in
// the owner-side service loop. The hybrid backend installs it so that an
// off-host peer's ring or wait, arriving over the wire, lands on the same
// shared-memory doorbell the co-located ranks touch directly — one doorbell
// per rank, wherever the waiter lives.
type DoorOps struct {
	// Ring bumps this rank's doorbell generation and wakes its waiters.
	Ring func()
	// Gen samples this rank's doorbell generation.
	Gen func() uint64
	// WaitSliced parks at this rank's doorbell for at most slice and
	// returns the then-current generation (spurious returns allowed).
	WaitSliced func(gen uint64, slice time.Duration) uint64
}

// SetDoorOps installs ops as this rank's owner-side doorbell; call before
// Ready so no peer traffic races the handoff.
func (w *World) SetDoorOps(ops *DoorOps) { w.doorOps.Store(ops) }

// ringDoor, doorGenSelf and doorWaitAny are the owner-side doorbell entry
// points, indirected through DoorOps when one is installed.
func (w *World) ringDoor() {
	mDoorRings.Inc()
	if ops := w.doorOps.Load(); ops != nil {
		ops.Ring()
		return
	}
	w.door.ring()
}

func (w *World) doorGenSelf() uint64 {
	if ops := w.doorOps.Load(); ops != nil {
		return ops.Gen()
	}
	return w.door.gen.Load()
}

func (w *World) doorWaitAny(gen uint64, slice time.Duration) uint64 {
	if ops := w.doorOps.Load(); ops != nil {
		return ops.WaitSliced(gen, slice)
	}
	return w.doorWaitSliced(gen, slice)
}

// Launch creates an inter-node world. In loopback spawn mode it re-executes
// the worker argv once per rank on this machine and blocks until every
// worker exits; in host-list mode (Options.Hosts) it waits for the workers
// the operator starts remotely. It returns nil only if every rank finished
// cleanly; the first failure is reported as a *rankio.RankError carrying the
// first non-zero worker exit code observed.
func Launch(o Options) error {
	o = o.withDefaults()
	if len(o.HostKeys) != 0 && len(o.HostKeys) != o.Ranks {
		return fmt.Errorf("netrun: %d host keys for %d ranks", len(o.HostKeys), o.Ranks)
	}
	spawn := len(o.Hosts) == 0
	listen := o.Listen
	if listen == "" {
		if !spawn {
			listen = ":7077"
		} else {
			listen = "127.0.0.1:0"
		}
	}
	if err := faultnet.Check(); err != nil {
		return fmt.Errorf("netrun: %w", err)
	}
	tm, err := resolveTimeouts(o.Timeouts)
	if err != nil {
		return err // a bad timeout spec fails the launch, like a bad -faults spec
	}
	// Re-export the resolved knobs so spawned workers (which re-resolve from
	// the environment) agree with the coordinator — the same pattern -faults
	// uses for its spec.
	os.Setenv(EnvTimeouts, tm.spec())
	win, err := resolveWindow(o.NetWindow)
	if err != nil {
		return err
	}
	os.Setenv(EnvWindow, strconv.Itoa(win))
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return fmt.Errorf("netrun: listen coordinator socket %s: %w", listen, err)
	}
	defer ln.Close()
	ln = faultnet.WrapListener(ln)
	coordAddr := ln.Addr().String()

	var cmds []*rankio.Cmd
	if spawn {
		argv := o.Relaunch
		if len(argv) == 0 {
			argv = os.Args
		}
		cmds = make([]*rankio.Cmd, o.Ranks)
		for r := 0; r < o.Ranks; r++ {
			env := []string{
				envCoord + "=" + coordAddr,
				fmt.Sprintf("%s=%d", envRank, r),
			}
			if len(o.HostKeys) > 0 {
				env = append(env, envHost+"="+o.HostKeys[r])
			}
			env = append(env, o.ExtraEnv...)
			c, err := rankio.Start(argv, env, r, o.TagOutput)
			if err != nil {
				rankio.KillAll(cmds[:r])
				return fmt.Errorf("netrun: spawn rank %d (%s): %w", r, argv[0], err)
			}
			cmds[r] = c
		}
	} else {
		// A wildcard bind address is not dialable from another machine;
		// tell the operator to substitute this host's name.
		dial := coordAddr
		if host, port, err := net.SplitHostPort(coordAddr); err == nil {
			if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
				dial = net.JoinHostPort("<this-host>", port)
			}
		}
		rankio.Logf("netrun",
			"coordinator listening on %s; start %d workers across {%s} with\n"+
				"  %s=%s [%s=<rank>] [%s=<host-key>] <program> ...",
			coordAddr, o.Ranks, strings.Join(o.Hosts, ", "), envCoord, dial, envRank, envHost)
	}

	err = coordinate(ln, o, tm, cmds)
	if err != nil {
		// Redundant after a completed status phase (everyone has exited),
		// load-bearing after a bootstrap failure: don't leave orphans.
		rankio.KillAll(cmds)
		rankio.ReapAll(cmds)
	}
	return err
}

// worker is the coordinator's view of one joined rank.
type worker struct {
	conn net.Conn
	rd   *bufio.Reader
	rank int
	addr string
	host string // host key from JOIN
}

// wkEvent is one line (or stream end) of a worker's control conversation
// after GO, funneled to coordinate's single-threaded status loop.
type wkEvent struct {
	rank int
	kind uint8  // 'D'one, 'F'ail, 'A'bort request, 'X' stream ended
	msg  string // FAIL message
	code int    // process exit status ('X' in spawn mode)
}

// missingRanks lists the rank slots still unclaimed if the join phase ended
// now: explicit claims hold their slots, and the unassigned (join-order)
// workers would fill the lowest free slots first.
func missingRanks(workers []*worker, unassigned int) []int {
	var free []int
	for r, w := range workers {
		if w == nil {
			free = append(free, r)
		}
	}
	if unassigned >= len(free) {
		return nil
	}
	return free[unassigned:]
}

// coordinate runs the rendezvous, barrier, and status collection of one
// world from the coordinator side.
func coordinate(ln net.Listener, o Options, tm Timeouts, cmds []*rankio.Cmd) error {
	joinTO := bootTimeout
	if o.JoinTimeout > 0 {
		joinTO = o.JoinTimeout
	}
	deadline := time.Now().Add(joinTO)
	progress := time.Now().Add(joinProgressDot)
	workers := make([]*worker, o.Ranks)
	var unassigned []*worker

	// Phase 1 — JOIN: collect one connection per rank and its data address.
	for i := 0; i < o.Ranks; i++ {
		// Wake before the final deadline in host-list mode so the operator
		// sees who the world is waiting for while they bring hosts up.
		next := deadline
		if len(o.Hosts) > 0 && progress.Before(next) {
			next = progress
		}
		if tl, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
			tl.SetDeadline(next)
		}
		c, err := ln.Accept()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && time.Now().Before(deadline) {
				rankio.Logf("netrun", "still waiting for ranks %v (%d of %d joined)",
					missingRanks(workers, len(unassigned)), i, o.Ranks)
				progress = time.Now().Add(joinProgressDot)
				i--
				continue
			}
			return &ErrJoinTimeout{Joined: i, Ranks: o.Ranks, Timeout: joinTO,
				Missing: missingRanks(workers, len(unassigned))}
		}
		c.SetDeadline(deadline)
		w := &worker{conn: c, rd: bufio.NewReader(c)}
		line, err := w.rd.ReadString('\n')
		if err != nil {
			// Not a worker: a liveness probe, a port scan, or a connection
			// dropped mid-handshake. Ignore it without consuming a rank slot
			// (the join deadline still bounds the wait).
			c.Close()
			i--
			continue
		}
		var rank, ranks, rpn, proto int
		var pace int64
		// The host key is the 7th field (protocol v2); a v1 worker's JOIN
		// parses six fields, so version skew reaches the protoVersion check
		// below instead of being dropped as a malformed probe.
		n, err := fmt.Sscanf(line, "JOIN %d %s %d %d %d %d %s", &rank, &w.addr, &ranks, &rpn, &pace, &proto, &w.host)
		if err != nil && n < 6 {
			c.Close()
			i--
			continue
		}
		switch {
		case proto != protoVersion:
			return fmt.Errorf("netrun: worker speaks wire protocol %d, coordinator %d (mixed binaries?)", proto, protoVersion)
		case ranks != o.Ranks || rpn != o.RanksPerNode || pace != o.PaceWindowNs:
			return fmt.Errorf("netrun: worker config (ranks %d, ppn %d, pace %d) does not match the coordinator's (ranks %d, ppn %d, pace %d); launcher and workers must run the same configuration",
				ranks, rpn, pace, o.Ranks, o.RanksPerNode, o.PaceWindowNs)
		case rank >= o.Ranks:
			return fmt.Errorf("netrun: worker claims rank %d outside world of %d", rank, o.Ranks)
		}
		w.rank = rank
		if rank >= 0 {
			if workers[rank] != nil {
				return fmt.Errorf("netrun: two workers claim rank %d", rank)
			}
			workers[rank] = w
		} else {
			unassigned = append(unassigned, w)
		}
		w.conn.SetDeadline(time.Time{})
	}
	// Assign join-order workers to the free slots, lowest rank first.
	next := 0
	for _, w := range unassigned {
		for workers[next] != nil {
			next++
		}
		w.rank = next
		workers[next] = w
	}
	addrs := make([]string, o.Ranks)
	hosts := make([]string, o.Ranks)
	for r, w := range workers {
		addrs[r] = w.addr
		hosts[r] = w.host
	}

	// Phase 2 — WORLD broadcast, then the READY/GO barrier. The barrier gets
	// a fresh deadline: the join phase may have consumed most of its own.
	deadline = time.Now().Add(bootTimeout)
	catalog := strings.Join(addrs, ",")
	hostCatalog := strings.Join(hosts, ",")
	for r, w := range workers {
		if _, err := fmt.Fprintf(w.conn, "WORLD %d %s %s\n", r, catalog, hostCatalog); err != nil {
			return fmt.Errorf("netrun: send world catalog to rank %d: %w", r, err)
		}
	}
	for r, w := range workers {
		w.conn.SetReadDeadline(deadline)
		var rr int
		if _, err := fmt.Fscanf(w.rd, "READY %d\n", &rr); err != nil || rr != r {
			return fmt.Errorf("netrun: rank %d READY handshake failed: %v", r, err)
		}
		w.conn.SetReadDeadline(time.Time{})
	}
	for _, w := range workers {
		if _, err := w.conn.Write([]byte("GO\n")); err != nil {
			return fmt.Errorf("netrun: release workers: %w", err)
		}
	}

	// Phase 3 — status collection. The first FAIL/ABORT/early-exit
	// broadcasts ABORT to every rank; once every rank has reported DONE the
	// coordinator broadcasts BYE — a finished rank keeps serving its memory
	// until then, matching the shared-segment lifetime of the mmap backend.
	events := make(chan wkEvent, 8*o.Ranks)
	for r := range workers {
		go func(r int, w *worker) {
			for {
				line, err := w.rd.ReadString('\n')
				line = strings.TrimSpace(line)
				switch {
				case strings.HasPrefix(line, "DONE "):
					events <- wkEvent{rank: r, kind: 'D'}
					continue
				case strings.HasPrefix(line, "FAIL "):
					msg := strings.TrimSpace(strings.TrimPrefix(line, fmt.Sprintf("FAIL %d", r)))
					events <- wkEvent{rank: r, kind: 'F', msg: msg}
					continue
				case strings.HasPrefix(line, "ABORT "):
					events <- wkEvent{rank: r, kind: 'A'}
					continue
				case strings.HasPrefix(line, "PONG "):
					events <- wkEvent{rank: r, kind: 'P'}
					continue
				case strings.HasPrefix(line, "STATS "):
					// One telemetry snapshot, shipped before the worker's
					// DONE/FAIL line — stream order guarantees the status
					// loop merges it before accounting the rank finished.
					events <- wkEvent{rank: r, kind: 'S', msg: strings.TrimPrefix(line, "STATS ")}
					continue
				}
				code := 0
				if cmds != nil {
					code = cmds[r].Wait()
				}
				events <- wkEvent{rank: r, kind: 'X', code: code, msg: fmt.Sprint(err)}
				return
			}
		}(r, workers[r])
	}

	broadcast := func(line string) {
		for _, w := range workers {
			w.conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
			w.conn.Write([]byte(line))
			w.conn.SetWriteDeadline(time.Time{})
		}
	}
	var firstErr error
	firstCode, firstRank := 0, -1
	fail := func(rank int, msg string, code int) {
		err := rankio.ClassifyFail(fmt.Errorf("netrun: rank %d: %s", rank, msg), msg)
		// A peer-abort report is a symptom; keep looking for the cause. Any
		// later report that is not a symptom displaces a symptom-only error.
		if firstErr == nil || (errors.Is(firstErr, rankio.ErrPeerAbort) && !errors.Is(err, rankio.ErrPeerAbort)) {
			firstErr = err
			firstRank = rank
		}
		if firstCode == 0 && code != 0 {
			firstCode = code
		}
	}
	statsAgg := telemetry.Snapshot{Rank: -1}
	doneSet := make([]bool, o.Ranks)
	exitedSet := make([]bool, o.Ranks)
	lastPong := make([]time.Time, o.Ranks)
	now := time.Now()
	for r := range lastPong {
		lastPong[r] = now
	}
	doneCount, exited := 0, 0
	aborting, byeSent := false, false
	// abort tears the world down exactly once: a RANKFAIL verdict naming the
	// culprit (when one is known) so every survivor's blocked primitive can
	// unwind with *simnet.ErrPeerFailed, then the ABORT broadcast itself.
	grace := time.NewTimer(24 * time.Hour)
	defer grace.Stop()
	abort := func(culprit int, msg string) {
		if aborting {
			return
		}
		if culprit >= 0 {
			broadcast(fmt.Sprintf("RANKFAIL %d %s\n", culprit, msg))
		}
		broadcast("ABORT\n")
		aborting = true
		grace.Reset(abortGrace)
	}
	heartbeat := time.NewTicker(tm.HeartbeatEvery)
	defer heartbeat.Stop()
	for exited < o.Ranks {
		select {
		case ev := <-events:
			switch ev.kind {
			case 'D':
				if !doneSet[ev.rank] {
					doneSet[ev.rank] = true
					doneCount++
				}
				if doneCount == o.Ranks && !aborting && !byeSent {
					broadcast("BYE\n")
					byeSent = true
				}
			case 'P':
				lastPong[ev.rank] = time.Now()
			case 'S':
				if snap, err := telemetry.ParseSnapshot([]byte(ev.msg)); err == nil {
					statsAgg.Merge(snap)
				}
			case 'F':
				fail(ev.rank, ev.msg, 0)
				if strings.Contains(ev.msg, rankio.PeerAbortMsg) {
					abort(-1, "") // symptom: the culprit's own report names it
				} else {
					abort(ev.rank, ev.msg)
				}
			case 'A':
				if firstErr == nil {
					fail(ev.rank, "aborted the world", 0)
				}
				abort(-1, "")
			case 'X':
				exited++
				exitedSet[ev.rank] = true
				if !doneSet[ev.rank] && ev.msg != "" && firstErr == nil && !aborting {
					// Crashed without a FAIL line (e.g. killed): report the
					// exit and abort the survivors.
					msg := fmt.Sprintf("control channel closed before DONE: %s", ev.msg)
					if ev.code != 0 {
						msg = fmt.Sprintf("exited with status %d before DONE", ev.code)
					}
					fail(ev.rank, msg, ev.code)
					abort(ev.rank, msg)
				} else if ev.code != 0 && firstCode == 0 {
					firstCode = ev.code
				}
			}
		case <-heartbeat.C:
			// Liveness probe: catches the silent deaths the control stream
			// cannot — a host that vanished without a FIN (power loss,
			// network partition) leaves its TCP conn apparently healthy.
			if !aborting {
				broadcast("PING\n")
				for r := range lastPong {
					if !doneSet[r] && !exitedSet[r] && time.Since(lastPong[r]) > tm.HeartbeatStale {
						msg := fmt.Sprintf("no heartbeat for %v (host dead or partitioned?)", tm.HeartbeatStale)
						fail(r, msg, 0)
						abort(r, msg)
						break
					}
				}
			}
		case <-grace.C:
			// The grace period after an abort expired with ranks still
			// unaccounted for. Kill local processes and drop every control
			// connection — in host-list mode there is nothing to kill, and
			// closing the conns is what forces the per-worker readers to
			// deliver their final events so the loop can drain.
			rankio.KillAll(cmds)
			for _, w := range workers {
				w.conn.Close()
			}
		}
	}
	publishStats(statsAgg)
	if firstErr != nil {
		if firstCode == 0 {
			firstCode = 1
		}
		return &rankio.RankError{Err: firstErr, Code: firstCode, Rank: firstRank}
	}
	if !byeSent {
		broadcast("BYE\n")
	}
	return nil
}

// Join attaches a worker process to its world: it dials the coordinator,
// starts this rank's data service, runs the JOIN/WORLD handshake, and
// returns the Transport for the assigned rank. The caller registers its
// setup regions and then calls Ready to enter the bootstrap barrier.
func Join(o Options) (*World, error) {
	o = o.withDefaults()
	coord := os.Getenv(envCoord)
	if coord == "" {
		return nil, fmt.Errorf("netrun: not a worker process (%s unset)", envCoord)
	}
	rank := -1
	if s := os.Getenv(envRank); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &rank); err != nil || rank < 0 || rank >= o.Ranks {
			return nil, fmt.Errorf("netrun: bad %s=%q for world of %d ranks", envRank, s, o.Ranks)
		}
	}
	if err := faultnet.Check(); err != nil {
		return nil, fmt.Errorf("netrun: %w", err)
	}
	tm, err := resolveTimeouts(o.Timeouts)
	if err != nil {
		return nil, err
	}
	win, err := resolveWindow(o.NetWindow)
	if err != nil {
		return nil, err
	}
	// The coordinator may come up after the workers in host-list mode, and
	// faultnet injects refused dials; retry with backoff inside the boot
	// window rather than failing the whole rank on the first RST.
	var ctl net.Conn
	for d, until := dialBackoff, time.Now().Add(bootTimeout); ; d *= 2 {
		ctl, err = faultnet.Dial("tcp", coord, bootTimeout)
		if err == nil {
			break
		}
		if time.Now().Add(d).After(until) {
			return nil, fmt.Errorf("netrun: dial coordinator %s: %w", coord, err)
		}
		time.Sleep(d)
	}
	// Listen for peers on the interface that reaches the coordinator: the
	// address peers can reach this process at, on loopback and multi-machine
	// deployments alike.
	ip := ctl.LocalAddr().(*net.TCPAddr).IP
	ln, err := net.Listen("tcp", net.JoinHostPort(ip.String(), "0"))
	if err != nil {
		ctl.Close()
		return nil, fmt.Errorf("netrun: listen data socket: %w", err)
	}
	// The data listener is data-plane: faultnet's plane=data scoping targets
	// it (and the requester conns dialed to it) while sparing the control
	// streams the failure detector rides on.
	ln = faultnet.WrapListenerData(ln)

	w := &World{
		opts: o, rank: rank, ctl: ctl, ctlRd: bufio.NewReader(ctl), ln: ln,
		peers:    make([]*peerConn, o.Ranks),
		proxies:  make([][]*simnet.Region, o.Ranks),
		clocks:   make([]int64, o.Ranks),
		rsess:    make([]reqSession, o.Ranks),
		sessions: make(map[uint64]*ownerSession),
		svcConns: make(map[net.Conn]struct{}),
		tm:       tm,
		win:      win,
		done:     make(chan struct{}),
		bye:      make(chan struct{}),
	}
	w.failedRank.Store(-1)
	w.door.init()
	w.reserveFn = w.reserveLocalNIC
	go w.acceptLoop()

	if _, err := fmt.Fprintf(ctl, "JOIN %d %s %d %d %d %d %s\n",
		rank, ln.Addr().String(), o.Ranks, o.RanksPerNode, o.PaceWindowNs, protoVersion,
		hostKeyOf(o)); err != nil {
		w.teardown()
		return nil, fmt.Errorf("netrun: send JOIN: %w", err)
	}
	// The catalog arrives only once every rank has joined, so this wait is
	// bounded by the coordinator's join timeout, not the boot timeout.
	worldTO := bootTimeout
	if o.JoinTimeout > bootTimeout {
		worldTO = o.JoinTimeout + 10*time.Second
	}
	ctl.SetReadDeadline(time.Now().Add(worldTO))
	var catalog, hostCatalog string
	if _, err := fmt.Fscanf(w.ctlRd, "WORLD %d %s %s\n", &w.rank, &catalog, &hostCatalog); err != nil {
		w.teardown()
		return nil, fmt.Errorf("netrun: world catalog handshake: %w", err)
	}
	ctl.SetReadDeadline(time.Time{})
	w.addrs = strings.Split(catalog, ",")
	w.hosts = strings.Split(hostCatalog, ",")
	if len(w.addrs) != o.Ranks || len(w.hosts) != o.Ranks || w.rank < 0 || w.rank >= o.Ranks {
		w.teardown()
		return nil, fmt.Errorf("netrun: malformed world catalog (%d addrs, %d hosts, rank %d)", len(w.addrs), len(w.hosts), w.rank)
	}
	// The session identity is minted once the WORLD reply has fixed the rank
	// (host-list workers may join rankless and be assigned one here).
	w.sid = sidFor(w.rank, os.Getpid())
	return w, nil
}

// hostKeyOf resolves this worker's host key: Options, then the environment
// (set per rank by the spawn path or the operator), then the hostname. The
// key rides space-separated control lines and the comma-joined WORLD
// catalog, so those separators are rewritten.
func hostKeyOf(o Options) string {
	h := o.HostKey
	if h == "" {
		h = os.Getenv(envHost)
	}
	if h == "" {
		h, _ = os.Hostname()
	}
	h = strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', ',', '\n', '\r':
			return '-'
		}
		return r
	}, h)
	if h == "" {
		h = "host0"
	}
	return h
}

// Hosts returns the rank -> host-key catalog from the rendezvous: ranks with
// equal keys run on one physical host. Callers must not modify it.
func (w *World) Hosts() []string { return w.hosts }

// Addrs returns the rank -> data-address catalog from the rendezvous. The
// ports are ephemeral, so the joined catalog is world-unique — the hybrid
// backend keys its per-host arena files on it. Callers must not modify it.
func (w *World) Addrs() []string { return w.addrs }

// teardown closes a partially joined world's sockets.
func (w *World) teardown() {
	w.ln.Close()
	w.ctl.Close()
}

// Rank returns this process's rank (-1 in the launcher).
func (w *World) Rank() int { return w.rank }

// Ready enters the bootstrap barrier: it tells the coordinator this rank's
// setup registrations are addressable and blocks until every rank's are,
// then starts watching the control stream for aborts.
func (w *World) Ready() {
	if _, err := fmt.Fprintf(w.ctl, "READY %d\n", w.rank); err != nil {
		panic(fmt.Sprintf("netrun: report READY: %v", err))
	}
	w.ctl.SetReadDeadline(time.Now().Add(bootTimeout))
	line, err := w.ctlRd.ReadString('\n')
	w.ctl.SetReadDeadline(time.Time{})
	if err != nil || strings.TrimSpace(line) != "GO" {
		panic(fmt.Sprintf("netrun: bootstrap barrier failed (%q, %v)", line, err))
	}
	go w.watchCtl()
}

// watchCtl surfaces coordinator-pushed events after GO: PING answers the
// liveness probe, RANKFAIL records which rank the verdict blamed (so blocked
// primitives unwind with *simnet.ErrPeerFailed instead of the bare
// ErrAborted), ABORT aborts this process, BYE releases Finish. A dead
// coordinator — read error, or a control stream idle long past the
// heartbeat cadence (its host vanished without a FIN) — aborts too, so no
// rank hangs on a vanished world.
func (w *World) watchCtl() {
	for {
		w.ctl.SetReadDeadline(time.Now().Add(w.tm.CtlIdleTimeout))
		line, err := w.ctlRd.ReadString('\n')
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == "PING":
			w.ctlWr.Lock()
			fmt.Fprintf(w.ctl, "PONG %d\n", w.rank)
			w.ctlWr.Unlock()
			continue
		case strings.HasPrefix(trimmed, "RANKFAIL "):
			var r int
			if _, serr := fmt.Sscanf(trimmed, "RANKFAIL %d", &r); serr == nil {
				w.noteFailedRank(r)
				telemetry.RecordEvent(telemetry.EvRankFail, uint64(r), 0)
			}
			continue // the ABORT that follows the verdict tears down
		case trimmed == "ABORT":
			w.localAbort()
			return
		case trimmed == "BYE":
			close(w.bye)
			return
		}
		if err != nil {
			if !w.finished.Load() || !w.Aborted() {
				w.localAbort()
			}
			return
		}
	}
}

// Finish reports clean completion and blocks until the coordinator releases
// the world (BYE): this rank's memory stays remotely addressable until every
// rank is done, matching the shared-segment lifetime of the mmap backend.
func (w *World) Finish() {
	w.finished.Store(true)
	w.ctlWr.Lock()
	w.sendStatsLocked() // before DONE: the snapshot must precede teardown
	fmt.Fprintf(w.ctl, "DONE %d\n", w.rank)
	w.ctlWr.Unlock()
	select {
	case <-w.bye:
	case <-w.done:
	case <-time.After(byeTimeout):
	}
	w.ctl.Close()
	w.stopService()
}

// Fail aborts the world and reports msg to the coordinator; the caller exits
// nonzero afterwards.
func (w *World) Fail(msg string) {
	w.finished.Store(true)
	msg = strings.ReplaceAll(msg, "\n", " ")
	w.ctlWr.Lock()
	// Before FAIL, so the victim's flight-recorder tail (the snapshot's
	// events) reaches the coordinator with the failure it explains.
	w.sendStatsLocked()
	fmt.Fprintf(w.ctl, "FAIL %d %s\n", w.rank, msg)
	w.ctlWr.Unlock()
	w.localAbort()
	w.ctl.Close()
	w.stopService()
}

// localAbort runs this process's abort consequences exactly once: waiters
// wake, in-flight requests fail fast, service connections drop.
func (w *World) localAbort() {
	w.abortOnce.Do(func() {
		telemetry.RecordEvent(telemetry.EvAbort, uint64(w.rank), 0)
		w.aborted.Store(true)
		close(w.done)
		w.door.ring()
		w.ln.Close()
		w.peerMu.Lock()
		for _, p := range w.peers {
			if p != nil {
				p.c.Close()
			}
		}
		w.peerMu.Unlock()
		w.hookMu.Lock()
		hooks := append([]func(){}, w.hooks...)
		w.hookMu.Unlock()
		for _, fn := range hooks {
			fn()
		}
	})
}

// Abort marks the world dead: this process unwinds immediately and the
// coordinator broadcasts the abort to every other rank.
func (w *World) Abort() {
	if w.aborted.Load() {
		return
	}
	w.ctlWr.Lock()
	w.ctl.SetWriteDeadline(time.Now().Add(2 * time.Second))
	fmt.Fprintf(w.ctl, "ABORT %d\n", w.rank)
	w.ctl.SetWriteDeadline(time.Time{})
	w.ctlWr.Unlock()
	w.localAbort()
}

// Aborted reports whether the world has been torn down.
func (w *World) Aborted() bool { return w.aborted.Load() }

// Done returns a channel closed when this process observes the abort.
func (w *World) Done() <-chan struct{} { return w.done }

// OnAbort registers fn to run when this process observes the abort; if the
// world already aborted, fn runs immediately.
func (w *World) OnAbort(fn func()) {
	w.hookMu.Lock()
	w.hooks = append(w.hooks, fn)
	w.hookMu.Unlock()
	if w.Aborted() {
		fn()
	}
}

// ---- simnet.Transport: topology, segments, regions ----

var _ simnet.Transport = (*World)(nil)

// Size returns the number of ranks.
func (w *World) Size() int { return w.opts.Ranks }

// RanksPerNode returns the node width.
func (w *World) RanksPerNode() int { return w.opts.RanksPerNode }

// NodeOf returns the node index hosting rank r. The mapping is virtual —
// rank/RanksPerNode, identical on every backend — so the cost model (and
// with it every virtual time) does not depend on physical placement.
func (w *World) NodeOf(r int) int { return r / w.opts.RanksPerNode }

// SameNode reports whether ranks a and b share a (virtual) node.
func (w *World) SameNode(a, b int) bool { return w.NodeOf(a) == w.NodeOf(b) }

// AllocSeg returns a zeroed registrable segment from this process's heap:
// remote ranks reach it through the service loop, so any local memory is
// registrable and the process-wide pool serves directly (as on the
// in-process fabric — only the mmap backend needs a private arena).
func (w *World) AllocSeg(rank, size int) *segpool.Seg {
	if rank != w.rank {
		panic("netrun: AllocSeg for a foreign rank")
	}
	return segpool.Get(size)
}

// RecycleSeg returns a segment to the pool (see Transport).
func (w *World) RecycleSeg(rank int, s *segpool.Seg, scrubbed bool, extra ...segpool.Range) {
	if rank != w.rank {
		panic("netrun: RecycleSeg for a foreign rank")
	}
	if scrubbed {
		segpool.PutScrubbed(s, extra...)
		return
	}
	segpool.Put(s)
}

// RegisterRegion installs a registration in this rank's directory and
// returns its key. Peers resolve it lazily over the wire (opRegQuery), so
// no broadcast is needed; programs synchronize registration before
// distributing addresses, exactly as on the other backends.
func (w *World) RegisterRegion(rank int, reg *simnet.Region) simnet.Key {
	if rank != w.rank {
		panic("netrun: RegisterRegion for a foreign rank")
	}
	w.mineMu.Lock()
	defer w.mineMu.Unlock()
	k := simnet.Key(len(w.mine))
	w.mine = append(w.mine, reg)
	return k
}

// UnregisterRegion marks a registration dead; later remote accesses fault.
func (w *World) UnregisterRegion(rank int, k simnet.Key) {
	if rank != w.rank {
		panic("netrun: UnregisterRegion for a foreign rank")
	}
	w.mineMu.Lock()
	defer w.mineMu.Unlock()
	if int(k) < len(w.mine) {
		w.mine[k] = nil
	}
}

// ownRegion resolves one of this rank's own keys for the service loop.
func (w *World) ownRegion(k simnet.Key) *simnet.Region {
	w.mineMu.RLock()
	defer w.mineMu.RUnlock()
	if int(k) >= len(w.mine) || w.mine[k] == nil {
		return nil
	}
	return w.mine[k]
}

// LookupRegion resolves an address: this rank's own registrations resolve
// locally; foreign ranks' resolve to cached proxy regions whose data plane
// is the wire protocol. A cached proxy may outlive the owner's
// unregistration — the staleness contract of the other backends' lookup
// caches — in which case its operations fault at the owner.
func (w *World) LookupRegion(a simnet.Addr) *simnet.Region {
	if a.Rank < 0 || a.Rank >= w.opts.Ranks {
		panic(fmt.Sprintf("simnet: address names rank %d outside fabric of %d", a.Rank, w.opts.Ranks))
	}
	if a.Rank == w.rank {
		if reg := w.ownRegion(a.Key); reg != nil {
			return reg
		}
		panic(fmt.Sprintf("simnet: access to unregistered region (rank %d key %d)", a.Rank, a.Key))
	}
	regs := w.proxies[a.Rank]
	if int(a.Key) < len(regs) && regs[a.Key] != nil {
		return regs[a.Key]
	}
	state, size := w.queryRegion(a.Rank, a.Key)
	if state != regLive {
		panic(fmt.Sprintf("simnet: access to unregistered region (rank %d key %d)", a.Rank, a.Key))
	}
	reg := simnet.MakeRemoteRegion(a.Rank, a.Key, &remoteMem{w: w, rank: a.Rank, key: a.Key, size: size})
	for int(a.Key) >= len(w.proxies[a.Rank]) {
		w.proxies[a.Rank] = append(w.proxies[a.Rank], nil)
	}
	w.proxies[a.Rank][a.Key] = &reg
	return &reg
}

// ---- simnet.Transport: virtual-hardware services ----

// reserveLocalNIC books this rank's NIC busy interval; the interval logic is
// identical to the in-process fabric's (including hole service for tardy
// bookings — see Fabric.reserveNIC).
func (w *World) reserveLocalNIC(arrival timing.Time, xfer int64) timing.Time {
	a := int64(arrival)
	w.nicMu.Lock()
	defer w.nicMu.Unlock()
	switch {
	case a >= w.nicBusy:
		w.nicStart, w.nicBusy = a, a+xfer
	case a+xfer <= w.nicStart:
		return timing.Time(a + xfer)
	default:
		w.nicBusy += xfer
	}
	return timing.Time(w.nicBusy)
}

// ReserveNIC books the target rank's NIC: locally for this rank, over the
// wire for peers. (Endpoint operations on proxy regions reserve the owner
// NIC inside their fused message instead; this direct path serves layers
// that book NICs explicitly.)
func (w *World) ReserveNIC(rank int, arrival timing.Time, xfer int64) timing.Time {
	if rank == w.rank {
		return w.reserveLocalNIC(arrival, xfer)
	}
	return w.rpcNicReserve(rank, arrival, xfer)
}

// PublishClock records this rank's virtual clock; peers learn it from the
// piggybacked clock on every request and from opClock heartbeats.
func (w *World) PublishClock(rank int, t timing.Time) {
	if w.opts.PaceWindowNs == 0 {
		return
	}
	atomic.StoreInt64(&w.clocks[rank], int64(t))
}

// PaceWindow returns the configured pacing window.
func (w *World) PaceWindow() int64 { return w.opts.PaceWindowNs }

// Pace blocks rank while its clock runs more than the window ahead of the
// slowest known clock. Peer clocks arrive as piggybacks on data traffic; a
// pace-blocked rank refreshes the laggards' entries with opClock heartbeats
// between backoff sleeps. The stall valve matches the other backends: a
// minimum frozen across two heartbeats releases the rank for one operation.
func (w *World) Pace(rank int, t timing.Time) {
	if w.opts.PaceWindowNs == 0 {
		return
	}
	w.PublishClock(rank, t)
	me := int64(t)
	last, idle, d := int64(-1), 0, paceSleepMin
	var parkStart time.Time
	defer func() {
		if !parkStart.IsZero() {
			mPaceParkNs.Record(uint64(time.Since(parkStart)))
		}
	}()
	for {
		min := w.paceMinRefresh(me)
		if me <= min+w.opts.PaceWindowNs || w.Aborted() {
			return
		}
		if min == last {
			if idle++; idle >= 2 {
				mPaceStalls.Inc()
				telemetry.RecordEvent(telemetry.EvStall, uint64(rank), uint64(me-min))
				return
			}
		} else {
			last, idle = min, 0
		}
		if parkStart.IsZero() && telemetry.On() {
			parkStart = time.Now()
			mPaceParks.Inc()
		}
		time.Sleep(d)
		if d < paceSleepMax {
			d *= 2
		}
	}
}

// paceMinRefresh folds the local clock table, refreshing over the wire the
// entries stale enough to be the ones blocking us (cached clock below our
// window threshold). Clocks are monotone, so a cached value is always a
// safe (conservative) lower bound.
func (w *World) paceMinRefresh(me int64) int64 {
	min := int64(1) << 62
	for r := 0; r < w.opts.Ranks; r++ {
		c := atomic.LoadInt64(&w.clocks[r])
		if r != w.rank && me > c+w.opts.PaceWindowNs && !w.Aborted() {
			if got, ok := w.rpcClock(r); ok {
				c = got
			}
		}
		if c < min {
			min = c
		}
	}
	return min
}

// RingDoorbell bumps rank's doorbell generation, waking its waiters: local
// waiters directly, the owner's waiters through a fire-and-forget message
// that the owner applies after every operation already sent on that stream.
// When fused sub-ops are still accumulating toward rank, the ring rides the
// opBatch frame itself (the owner rings after applying the data), saving
// the separate message.
func (w *World) RingDoorbell(rank int) {
	if rank == w.rank {
		mDoorRings.Inc()
		w.door.ring()
		return
	}
	if len(w.rsess) > 0 {
		s := &w.rsess[rank]
		s.bring = true
		// With sub-ops still accumulating, the ring waits for them: the
		// data it announces has not been sent either, so a waiter could
		// not have been satisfied any earlier — it wakes exactly when the
		// bytes land. An empty builder sends the ring now.
		if s.bops == 0 {
			w.flushFused(rank)
		}
		return
	}
	w.sendRing(rank)
}

// DoorGen samples rank's doorbell generation.
func (w *World) DoorGen(rank int) uint64 {
	if rank == w.rank {
		return w.door.gen.Load()
	}
	return w.rpcDoorGen(rank)
}

// WaitDoor blocks until rank's doorbell generation exceeds gen. Local waits
// park on the doorbell channel; remote waits park inside the owner's
// service loop in time slices, so a dropped connection or an abort can
// never strand the waiter (spurious returns are allowed by the contract).
// Local parks are sliced too: RING frames are fire-and-forget and outside
// the session layer, so a data-plane reset can eat one — the slice turns a
// lost wakeup into a bounded re-check instead of a stranded waiter.
func (w *World) WaitDoor(rank int, gen uint64) uint64 {
	if rank != w.rank {
		for {
			g := w.rpcDoorWait(rank, gen, doorWaitSlice)
			if g != gen {
				return g
			}
			if w.Aborted() {
				panic(w.abortPanic())
			}
		}
	}
	for {
		if g := w.door.gen.Load(); g != gen {
			return g
		}
		ch, ok := w.door.waitCh(gen)
		if !ok {
			return w.door.gen.Load()
		}
		slice := time.NewTimer(doorWaitSlice)
		select {
		case <-ch:
		case <-slice.C:
			// Spurious return with gen unchanged: the caller re-checks its
			// predicate, which a write whose RING was lost may satisfy.
			return gen
		case <-w.done:
			if w.door.gen.Load() == gen {
				slice.Stop()
				panic(w.abortPanic())
			}
		}
		slice.Stop()
	}
}
