package netrun

import (
	"bufio"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"fompi/internal/faultnet"
	"fompi/internal/simnet"
	"fompi/internal/timing"
)

// Requester side of the wire protocol: every Endpoint operation on a region
// owned by another rank becomes one request frame on this rank's connection
// to the owner. Requests are confined to the rank's goroutine — the
// Endpoint confinement contract — so replies match requests by order with
// no tags. Since v5 the put-shaped operations pipeline through the
// per-destination window (session.go): PutAsync and friends fuse into
// opBatch frames and deliver their completion times at the next drain,
// while value-returning operations still block — after draining every
// window frame ahead of them, which is what keeps the stream's
// request/reply order aligned.

// peerConn is one lazily dialed requester connection.
type peerConn struct {
	c    net.Conn
	rd   *bufio.Reader
	buf  []byte // request frame scratch, reused across requests
	rbuf []byte // reply frame scratch
}

// peerErr returns the connection to rank r, dialing it on first use. The
// dial retries with backoff inside dialAttempts — a peer's listener can be
// briefly unreachable on a congested fabric, and faultnet injects exactly
// that refusal — so one lost SYN never kills a world.
func (w *World) peerErr(r int) (*peerConn, error) {
	w.peerMu.Lock()
	p := w.peers[r]
	w.peerMu.Unlock()
	if p != nil {
		return p, nil
	}
	if w.Aborted() {
		panic(w.abortPanic())
	}
	var c net.Conn
	var err error
	for attempt, back := 0, dialBackoff; attempt < dialAttempts; attempt, back = attempt+1, back*2 {
		c, err = faultnet.DialData("tcp", w.addrs[r], bootTimeout)
		if err == nil {
			break
		}
		if w.Aborted() {
			panic(w.abortPanic())
		}
		if attempt < dialAttempts-1 {
			time.Sleep(back)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("cannot reach rank %d at %s: %w", r, w.addrs[r], err)
	}
	if tc, ok := c.(interface{ SetNoDelay(bool) error }); ok {
		tc.SetNoDelay(true) // requests are latency-bound RPCs, not bulk streams
	}
	p = &peerConn{c: c, rd: bufio.NewReader(c)}
	e := newEnc(nil)
	e.u8(opHello)
	e.i64(0)
	e.u32(uint32(w.rank))
	c.SetWriteDeadline(time.Now().Add(w.tm.OpTimeout))
	_, err = c.Write(e.finish())
	c.SetWriteDeadline(time.Time{})
	if err != nil {
		c.Close()
		return nil, err
	}
	w.peerMu.Lock()
	if w.peers[r] == nil {
		w.peers[r] = p
	} else {
		c.Close()
		p = w.peers[r]
	}
	w.peerMu.Unlock()
	return p, nil
}

// peer is peerErr for the non-retryable paths: a dial that exhausted its
// attempts is a peer failure.
func (w *World) peer(r int) *peerConn {
	p, err := w.peerErr(r)
	if err != nil {
		panic(w.netFault(r, err))
	}
	return p
}

// dropPeer discards a connection whose stream may be desynced (torn frame,
// timed-out round trip): the next use must redial with a fresh HELLO.
func (w *World) dropPeer(r int, p *peerConn) {
	w.peerMu.Lock()
	if w.peers[r] == p {
		w.peers[r] = nil
	}
	w.peerMu.Unlock()
	p.c.Close()
}

// req starts a request frame to rank r with the piggybacked clock.
func (w *World) req(p *peerConn, op uint8) enc {
	e := newEnc(p.buf)
	e.u8(op)
	e.i64(atomic.LoadInt64(&w.clocks[w.rank]))
	return e
}

// callErr sends the built frame under the per-op deadline and returns the
// reply payload (past the status byte). Faults reported by the owner
// re-panic here typed (see remoteFault — they are world-level, not
// transport-level); transport failures — write error, reset, a round trip
// exceeding the op timeout — drop the connection (its stream may be
// desynced) and are returned for the caller to classify or retry.
func (w *World) callErr(r int, p *peerConn, e enc) (dec, error) {
	frame := e.finish()
	reply, err := w.wireCall(p, frame, time.Now().Add(w.tm.OpTimeout))
	p.buf = frame[:0]
	if err != nil {
		w.dropPeer(r, p)
		return dec{}, err
	}
	return w.replyDec(r, reply), nil
}

// callIdem issues one idempotent control request — a pure read or a
// re-armable wait (opRegQuery, opDoorGen, opDoorWait, opClock) — retrying
// with backoff across fresh connections: transient transport trouble on
// the control plane must not kill a world. Data-plane ops never come
// through here — they ride the session layer (reqData/callData), which
// recovers by resume-and-replay instead of blind reissue.
func (w *World) callIdem(r int, op uint8, args func(e *enc)) dec {
	// Control replies share the stream with pending data replies, and reply
	// matching is by order: the window to r must be empty before a control
	// request goes out. (Every callIdem caller runs on the rank's goroutine,
	// the same confinement the window state relies on.)
	w.drainDst(r)
	var lastErr error
	for attempt, back := 0, idemBackoff; attempt < idemAttempts; attempt, back = attempt+1, back*2 {
		if w.Aborted() {
			panic(w.abortPanic())
		}
		if attempt > 0 {
			time.Sleep(back)
		}
		p, err := w.peerErr(r)
		if err != nil {
			lastErr = err
			continue
		}
		e := w.req(p, op)
		if args != nil {
			args(&e)
		}
		d, err := w.callErr(r, p, e)
		if err != nil {
			lastErr = err
			continue
		}
		return d
	}
	panic(w.netFault(r, lastErr))
}

// netFault classifies a connection failure: after an abort every blocked
// requester unwinds through the abort panic (the Transport contract);
// otherwise this rank holds first-hand evidence that r is gone and unwinds
// with a typed *simnet.ErrPeerFailed naming it.
func (w *World) netFault(r int, err error) any {
	// A failure often races the abort broadcast: give the control stream a
	// moment to deliver the verdict so unwinding keeps the right reason.
	for i := 0; i < 100 && !w.Aborted(); i++ {
		time.Sleep(2 * time.Millisecond)
	}
	if w.Aborted() {
		return w.abortPanic()
	}
	w.noteFailedRank(r)
	return &simnet.ErrPeerFailed{Rank: r,
		Cause: fmt.Errorf("rank %d lost rank %d: %w", w.rank, r, err)}
}

// sendRing delivers a fire-and-forget doorbell ring to rank r's owner loop.
// Send errors are swallowed — a vanished peer either finished cleanly (its
// waiters are gone) or crashed (the abort broadcast is on its way) — but
// the connection is dropped: a deadline can tear a frame mid-write, and a
// torn frame desyncs the stream for every later request, so the next use
// must redial with a fresh HELLO.
func (w *World) sendRing(r int) {
	defer func() { recover() }()
	// Best effort: push any queued window frames out first so the ring
	// stays ordered behind the data it announces. (A reconnect can still
	// reorder them; waiters tolerate that — WaitDoor allows spurious
	// wakeups and re-polls on a timeout slice.)
	if len(w.rsess) > 0 && r != w.rank {
		w.sendPending(r)
	}
	p := w.peer(r)
	e := w.req(p, opRing)
	frame := e.finish()
	p.c.SetWriteDeadline(time.Now().Add(2 * time.Second))
	_, err := p.c.Write(frame)
	p.c.SetWriteDeadline(time.Time{})
	if err != nil {
		w.dropPeer(r, p)
		return
	}
	p.buf = frame[:0]
}

// queryRegion resolves a foreign registration's liveness and size (a pure
// read: retried transparently).
func (w *World) queryRegion(r int, k simnet.Key) (uint8, int) {
	d := w.callIdem(r, opRegQuery, func(e *enc) { e.u32(uint32(k)) })
	state := d.u8()
	size := int(d.u64())
	return state, size
}

// rpcNicReserve books rank r's NIC over the wire (Transport.ReserveNIC). A
// booking mutates the owner's busy interval, so it rides the session layer.
func (w *World) rpcNicReserve(r int, arrival timing.Time, xfer int64) timing.Time {
	e := w.reqData(r, opNicReserve)
	e.i64(int64(arrival))
	e.i64(xfer)
	d := w.callData(r, e)
	return timing.Time(d.i64())
}

// rpcDoorGen samples rank r's doorbell generation over the wire (a pure
// read: retried transparently).
func (w *World) rpcDoorGen(r int) uint64 {
	d := w.callIdem(r, opDoorGen, nil)
	return d.u64()
}

// rpcDoorWait parks at rank r's doorbell for at most slice and returns the
// generation current when the owner answered. The wait re-arms on a fresh
// connection after transient trouble — a timed-out slice answers with the
// current generation either way, so a retry is indistinguishable from a
// spurious wakeup (which the WaitDoor contract allows).
func (w *World) rpcDoorWait(r int, gen uint64, slice time.Duration) uint64 {
	d := w.callIdem(r, opDoorWait, func(e *enc) {
		e.u64(gen)
		e.u32(uint32(slice / time.Microsecond))
	})
	return d.u64()
}

// rpcClock exchanges clocks with rank r (the pacing heartbeat); ok=false
// when the peer is unreachable while the world is still alive (the caller's
// cached value stands and the abort, if any, surfaces on the next fold).
func (w *World) rpcClock(r int) (clock int64, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	d := w.callIdem(r, opClock, nil)
	c := d.i64()
	if old := atomic.LoadInt64(&w.clocks[r]); c > old {
		atomic.StoreInt64(&w.clocks[r], c)
	}
	return c, true
}

// remoteMem is the simnet.RemoteMem proxy for one foreign registration: the
// requester-side stub whose methods are single wire round trips executed by
// the owner's RegionExec.
type remoteMem struct {
	w    *World
	rank int
	key  simnet.Key
	size int
}

var (
	_ simnet.RemoteMem = (*remoteMem)(nil)
	_ simnet.AsyncMem  = (*remoteMem)(nil)
)

// Size returns the registered length learned at materialization.
func (m *remoteMem) Size() int { return m.size }

// addrHdr appends the (key, off) prefix shared by all data-plane ops.
func (m *remoteMem) addrHdr(e *enc, off int) {
	e.u32(uint32(m.key))
	e.u64(uint64(off))
}

// Put ships the bytes and stamp work to the owner (see simnet.RemoteMem).
func (m *remoteMem) Put(off int, src []byte, reserve bool, arrival timing.Time, xfer int64) timing.Time {
	e := m.w.reqData(m.rank, opPut)
	m.addrHdr(&e, off)
	e.i64(int64(arrival))
	e.i64(xfer)
	e.boolByte(reserve)
	e.bytes(src)
	d := m.w.callData(m.rank, e)
	return timing.Time(d.i64())
}

// Get fetches the bytes and their completion time.
func (m *remoteMem) Get(dst []byte, off int, clockIn timing.Time, reserve bool, tail, xfer int64) timing.Time {
	e := m.w.reqData(m.rank, opGet)
	m.addrHdr(&e, off)
	e.u64(uint64(len(dst)))
	e.i64(int64(clockIn))
	e.i64(tail)
	e.i64(xfer)
	e.boolByte(reserve)
	d := m.w.callData(m.rank, e)
	comp := timing.Time(d.i64())
	copy(dst, d.rest())
	return comp
}

// StoreWord ships one word store (see simnet.RemoteMem).
func (m *remoteMem) StoreWord(off int, v uint64, reserve bool, arrival timing.Time, xfer int64) timing.Time {
	e := m.w.reqData(m.rank, opStoreW)
	m.addrHdr(&e, off)
	e.u64(v)
	e.i64(int64(arrival))
	e.i64(xfer)
	e.boolByte(reserve)
	d := m.w.callData(m.rank, e)
	return timing.Time(d.i64())
}

// LoadWord reads one word and its stamp in one round trip. (A pure read,
// but it rides the session layer with the rest of the data plane: one
// recovery path, and the reply cache keeps a retried load coherent with
// the interleaving it originally observed.)
func (m *remoteMem) LoadWord(off int) (uint64, timing.Time) {
	e := m.w.reqData(m.rank, opLoadW)
	m.addrHdr(&e, off)
	d := m.w.callData(m.rank, e)
	v := d.u64()
	return v, timing.Time(d.i64())
}

// WordAmo ships one word atomic (see simnet.RemoteMem).
func (m *remoteMem) WordAmo(op simnet.WordOp, off int, o1, o2 uint64, clockIn, srcFree timing.Time, reserve bool, lat, xfer int64) (old uint64, land, base, newFree timing.Time) {
	e := m.w.reqData(m.rank, opWordAmo)
	m.addrHdr(&e, off)
	e.u8(uint8(op))
	e.u64(o1)
	e.u64(o2)
	e.i64(int64(clockIn))
	e.i64(int64(srcFree))
	e.i64(lat)
	e.i64(xfer)
	e.boolByte(reserve)
	d := m.w.callData(m.rank, e)
	old = d.u64()
	land = timing.Time(d.i64())
	base = timing.Time(d.i64())
	newFree = timing.Time(d.i64())
	return old, land, base, newFree
}

// BulkAmo ships one chained atomic (see simnet.RemoteMem).
func (m *remoteMem) BulkAmo(op simnet.AmoOp, off int, src []byte, clockIn, srcFree timing.Time, reserve bool, lat, xfer int64) (comp, newFree timing.Time) {
	e := m.w.reqData(m.rank, opBulkAmo)
	m.addrHdr(&e, off)
	e.u8(uint8(op))
	e.i64(int64(clockIn))
	e.i64(int64(srcFree))
	e.i64(lat)
	e.i64(xfer)
	e.boolByte(reserve)
	e.bytes(src)
	d := m.w.callData(m.rank, e)
	comp = timing.Time(d.i64())
	newFree = timing.Time(d.i64())
	return comp, newFree
}

// Notify ships one ring deposit (see simnet.RemoteMem).
func (m *remoteMem) Notify(off int, word uint64, reserve bool, arrival timing.Time, xfer int64) timing.Time {
	e := m.w.reqData(m.rank, opNotify)
	m.addrHdr(&e, off)
	e.u64(word)
	e.i64(int64(arrival))
	e.i64(xfer)
	e.boolByte(reserve)
	d := m.w.callData(m.rank, e)
	return timing.Time(d.i64())
}

// PutAsync queues one put as a fused sub-op on the window to the owner (see
// simnet.AsyncMem): the field layout past the opcode is exactly Put's, and
// the completion time lands in sink at the next drain.
func (m *remoteMem) PutAsync(off int, src []byte, reserve bool, arrival timing.Time, xfer int64, sink *timing.Time, fold bool) {
	e := m.w.subOp(m.rank, opPut, sink, fold)
	m.addrHdr(&e, off)
	e.i64(int64(arrival))
	e.i64(xfer)
	e.boolByte(reserve)
	e.bytes(src)
	m.w.subDone(m.rank, e)
}

// StoreWordAsync queues one word store as a fused sub-op (see PutAsync).
func (m *remoteMem) StoreWordAsync(off int, v uint64, reserve bool, arrival timing.Time, xfer int64, sink *timing.Time, fold bool) {
	e := m.w.subOp(m.rank, opStoreW, sink, fold)
	m.addrHdr(&e, off)
	e.u64(v)
	e.i64(int64(arrival))
	e.i64(xfer)
	e.boolByte(reserve)
	m.w.subDone(m.rank, e)
}

// NotifyAsync queues one ring deposit as a fused sub-op (see PutAsync).
func (m *remoteMem) NotifyAsync(off int, word uint64, reserve bool, arrival timing.Time, xfer int64, sink *timing.Time, fold bool) {
	e := m.w.subOp(m.rank, opNotify, sink, fold)
	m.addrHdr(&e, off)
	e.u64(word)
	e.i64(int64(arrival))
	e.i64(xfer)
	e.boolByte(reserve)
	m.w.subDone(m.rank, e)
}
