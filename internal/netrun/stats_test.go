package netrun

import (
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fompi/internal/simnet"
	"fompi/internal/telemetry"
)

// enableTelemetry flips telemetry on for one test and restores the prior
// state. It returns a baseline capture: counters are process-global and
// cumulative, so assertions must diff against it.
func enableTelemetry(t *testing.T) telemetry.Snapshot {
	t.Helper()
	was := telemetry.On()
	telemetry.SetEnabled(true)
	t.Cleanup(func() { telemetry.SetEnabled(was) })
	return telemetry.Capture(-1)
}

// counterDelta returns how much the named counter grew since base.
func counterDelta(base telemetry.Snapshot, name string) uint64 {
	return telemetry.Capture(-1).Counters[name] - base.Counters[name]
}

// reserveAddr picks an ephemeral port for a coordinator: workers need a
// dialable address before Launch can report the one it bound.
func reserveAddr(t *testing.T) string {
	t.Helper()
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("probe listen: %v", err)
	}
	addr := probe.Addr().String()
	probe.Close()
	return addr
}

// waitListening blocks until the coordinator at addr accepts connections.
func waitListening(t *testing.T, addr string) {
	t.Helper()
	for i := 0; ; i++ {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			return
		}
		if i > 100 {
			t.Fatalf("coordinator never started listening: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStatsAggregationBeforeTeardown extends the shutdown-sequence proof to
// the stats plane: each worker's STATS frame rides the control stream under
// the same writer lock immediately before its DONE line, so by the time the
// coordinator has accounted both ranks finished — the precondition for BYE,
// listener close, and (on hybrid) arena unmap — the merged aggregate must
// already hold both snapshots. The test closes the loop from the outside:
// after Launch returns, the FOMPI_STATS_OUT file and LastStats must both
// report Ranks == 2 with the wire counters the exchange implies. A missing
// rank here would mean a snapshot raced teardown.
func TestStatsAggregationBeforeTeardown(t *testing.T) {
	enableTelemetry(t)
	outPath := filepath.Join(t.TempDir(), "agg.json")
	t.Setenv(telemetry.EnvOut, outPath)

	addr := reserveAddr(t)
	o := Options{Ranks: 2, RanksPerNode: 1, Hosts: []string{"localhost"}, Listen: addr}
	t.Setenv(envCoord, addr)
	t.Setenv(envRank, "")

	launchErr := make(chan error, 1)
	go func() { launchErr <- Launch(o) }()
	waitListening(t, addr)

	workerErr := make(chan error, 2)
	worker := func() {
		defer func() {
			if r := recover(); r != nil {
				workerErr <- errFromPanic(r)
			}
		}()
		w, err := Join(Options{Ranks: 2, RanksPerNode: 1})
		if err != nil {
			workerErr <- err
			return
		}
		ep := simnet.NewEndpoint(w, w.Rank(), simnet.FoMPI())
		reg := ep.Register(64)
		w.Ready()
		peer := 1 - w.Rank()
		ep.StoreW(simnet.Addr{Rank: peer, Key: reg.Key(), Off: 0}, uint64(w.Rank())+1)
		ep.WaitLocal(func() bool { return reg.LocalWord(0) == uint64(peer)+1 })
		w.Finish()
		workerErr <- nil
	}
	go worker()
	go worker()

	for i := 0; i < 2; i++ {
		select {
		case err := <-workerErr:
			if err != nil {
				t.Fatalf("worker: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("workers did not finish")
		}
	}
	select {
	case err := <-launchErr:
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("coordinator did not return")
	}

	// Launch has returned: teardown is complete, so the aggregate is final.
	agg, ok := LastStats()
	if !ok {
		t.Fatalf("LastStats reported no aggregate after a telemetry-enabled world")
	}
	if agg.Ranks != 2 {
		t.Fatalf("aggregate merged %d rank snapshots, want 2 (a STATS frame raced teardown)", agg.Ranks)
	}
	if agg.Rank != -1 {
		t.Fatalf("aggregate rank = %d, want -1", agg.Rank)
	}
	if h := agg.Hists["net.window"]; h.Count == 0 {
		t.Fatalf("aggregate window histogram is empty after a real exchange: %+v", agg.Hists)
	}

	b, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("published stats file: %v", err)
	}
	snap, err := telemetry.ParseSnapshot(b)
	if err != nil {
		t.Fatalf("published stats file does not parse: %v\n%s", err, b)
	}
	if snap.Ranks != 2 {
		t.Fatalf("published aggregate has ranks=%d, want 2:\n%s", snap.Ranks, b)
	}
}

// TestStatsShippedOnFail covers the post-mortem half of the stats plane: a
// failing rank ships its snapshot — flight-recorder tail included — under
// the writer lock right before its FAIL line, so even a world that dies
// still publishes a merged aggregate. Both workers fail (deterministically;
// one Fail plus one teardown race would make the second snapshot's arrival
// timing-dependent) after recording a marker event, and the aggregate must
// carry both snapshots and surface the markers.
func TestStatsShippedOnFail(t *testing.T) {
	enableTelemetry(t)
	t.Setenv(telemetry.EnvOut, filepath.Join(t.TempDir(), "agg.json"))

	addr := reserveAddr(t)
	o := Options{Ranks: 2, RanksPerNode: 1, Hosts: []string{"localhost"}, Listen: addr}
	t.Setenv(envCoord, addr)
	t.Setenv(envRank, "")

	launchErr := make(chan error, 1)
	go func() { launchErr <- Launch(o) }()
	waitListening(t, addr)

	workerErr := make(chan error, 2)
	worker := func() {
		defer func() {
			if r := recover(); r != nil {
				workerErr <- errFromPanic(r)
			}
		}()
		w, err := Join(Options{Ranks: 2, RanksPerNode: 1})
		if err != nil {
			workerErr <- err
			return
		}
		w.Ready()
		telemetry.RecordEvent(telemetry.EvRankFail, uint64(w.Rank()), 0xdead)
		w.Fail("injected failure for the stats post-mortem test")
		workerErr <- nil
	}
	go worker()
	go worker()

	for i := 0; i < 2; i++ {
		select {
		case err := <-workerErr:
			if err != nil {
				t.Fatalf("worker: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("workers did not finish")
		}
	}
	select {
	case err := <-launchErr:
		if err == nil {
			t.Fatalf("coordinator returned nil for a failed world")
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("coordinator did not return")
	}

	agg, ok := LastStats()
	if !ok {
		t.Fatalf("no aggregate published for the failed world")
	}
	if agg.Ranks != 2 {
		t.Fatalf("failed-world aggregate merged %d rank snapshots, want 2", agg.Ranks)
	}
	marker := false
	for _, ev := range agg.Events {
		if ev.Kind == telemetry.EvRankFail.String() && ev.B == 0xdead {
			marker = true
		}
	}
	if !marker {
		t.Fatalf("flight-recorder marker event missing from the post-mortem aggregate: %+v", agg.Events)
	}
}
