// Package mpi1 is the message-passing comparator: a Cray-MPI-like MPI-1
// point-to-point layer (plus the collectives the applications need) built
// over the same simulated fabric as foMPI. It deliberately implements the
// mechanisms that make message passing over RDMA more expensive than native
// RMA (§1 of the paper): software tag matching on the receiver, an eager
// protocol with receiver-side buffering (an extra copy), and a rendezvous
// protocol for large messages (an extra round trip that synchronizes the
// sender). Those costs are charged where they structurally occur, so the
// baseline loses for the paper's reasons, not by fiat.
package mpi1

import (
	"fmt"
	"sync"

	"fompi/internal/simnet"
	"fompi/internal/spmd"
	"fompi/internal/timing"
)

// AnyTag matches any tag in Recv and Probe.
const AnyTag = -1

// AnySource matches any sender in Recv and Probe.
const AnySource = -1

// message is one in-flight point-to-point message.
type message struct {
	src, tag   int
	data       []byte           // eager payload (copied at send)
	sendTime   timing.Time      // virtual time the payload becomes visible
	rendezvous bool             // payload pulled by receiver on match
	srcBuf     []byte           // rendezvous source buffer
	matched    chan timing.Time // completion notification back to the sender
}

// mailbox is the per-rank matching engine (the receiver-side software Cray
// MPI runs; its cost is charged via Profile.MatchNs).
type mailbox struct {
	mu         sync.Mutex
	cond       *sync.Cond
	unexpected []*message
}

func (mb *mailbox) push(m *message) {
	mb.mu.Lock()
	mb.unexpected = append(mb.unexpected, m)
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// match scans the unexpected queue; scanned counts the entries examined
// before the hit, charged by the receiver (matching is a linear search in
// real MPI implementations — the cost that grows with message pressure).
func (mb *mailbox) match(src, tag int, remove bool) (m *message, scanned int) {
	for i, m := range mb.unexpected {
		if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
			if remove {
				mb.unexpected = append(mb.unexpected[:i], mb.unexpected[i+1:]...)
			}
			return m, i
		}
	}
	return nil, len(mb.unexpected)
}

// world holds the mailboxes shared by all ranks attached to one fabric.
type world struct {
	boxes []*mailbox
	model *simnet.CostModel
}

var (
	worldsMu sync.Mutex
	worlds   = map[simnet.Transport]*world{}
)

// Comm is one rank's communicator handle over the MPI-1 layer.
type Comm struct {
	proc *spmd.Proc
	ep   *simnet.Endpoint
	w    *world
	seq  int // collective invocation counter (tag isolation)
}

// Dial attaches the MPI-1 layer to p's fabric (idempotent per fabric) and
// returns this rank's communicator. All communicating ranks must Dial.
// Release the fabric only after every rank has finished communicating
// (typically after spmd.Run returns).
func Dial(p *spmd.Proc) *Comm {
	fab := p.Fabric()
	worldsMu.Lock()
	w := worlds[fab]
	if w == nil {
		w = &world{boxes: make([]*mailbox, p.Size()), model: simnet.CrayMPI1()}
		for i := range w.boxes {
			mb := &mailbox{}
			mb.cond = sync.NewCond(&mb.mu)
			w.boxes[i] = mb
		}
		worlds[fab] = w
		// Wake matching waiters when a peer rank dies so they unwind
		// instead of deadlocking the world.
		fab.OnAbort(func() {
			for _, mb := range w.boxes {
				mb.mu.Lock()
				mb.cond.Broadcast()
				mb.mu.Unlock()
			}
		})
	}
	worldsMu.Unlock()
	return &Comm{proc: p, ep: simnet.NewEndpoint(fab, p.Rank(), w.model), w: w}
}

// Release detaches the layer from a fabric so benchmark fabrics are not
// retained after their world exits.
func Release(f simnet.Transport) {
	worldsMu.Lock()
	delete(worlds, f)
	worldsMu.Unlock()
}

// Rank returns the caller's rank.
func (c *Comm) Rank() int { return c.proc.Rank() }

// Size returns the world size.
func (c *Comm) Size() int { return c.proc.Size() }

// Now returns this layer's virtual clock for the rank.
func (c *Comm) Now() timing.Time { return c.ep.Now() }

// Compute charges local computation to this layer's clock.
func (c *Comm) Compute(ns int64) { c.ep.Compute(ns) }

// EP exposes the layer endpoint (bench instrumentation).
func (c *Comm) EP() *simnet.Endpoint { return c.ep }

func (c *Comm) profile(peer int) *simnet.Profile {
	return c.w.model.For(c.proc.SameNode(peer))
}

// Request tracks a nonblocking send until completion.
type Request struct {
	done chan timing.Time // nil: already complete
	at   timing.Time
	got  bool
}

// Isend starts a nonblocking standard-mode send. Small messages go eager
// (locally complete immediately); large ones rendezvous (complete when the
// receiver pulls the payload — buf must stay untouched until Wait).
func (c *Comm) Isend(dst, tag int, buf []byte) *Request {
	return c.isend(dst, tag, buf, false)
}

// Issend starts a nonblocking synchronous-mode send: it completes only once
// the receiver has matched the message (the NBX/DSDE building block).
func (c *Comm) Issend(dst, tag int, buf []byte) *Request {
	return c.isend(dst, tag, buf, true)
}

func (c *Comm) isend(dst, tag int, buf []byte, synchronous bool) *Request {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("mpi1: send to invalid rank %d", dst))
	}
	pr := c.profile(dst)
	m := &message{src: c.Rank(), tag: tag}
	req := &Request{}
	if len(buf) > simnet.EagerMax {
		m.rendezvous = true
		m.srcBuf = buf
		m.matched = make(chan timing.Time, 1)
		c.ep.Compute(pr.InjectNs)
		m.sendTime = c.ep.Now() + timing.Time(pr.PutLatNs) // RTS arrival
		req.done = m.matched
	} else {
		m.data = append([]byte(nil), buf...)
		c.ep.Compute(pr.InjectNs + int64(float64(len(buf))*pr.CopyNsPB))
		m.sendTime = c.ep.Now() + timing.Time(pr.PutLatNs) +
			timing.Time(float64(len(buf))*pr.NsPerByte)
		if synchronous {
			m.matched = make(chan timing.Time, 1)
			req.done = m.matched
		}
	}
	c.w.boxes[dst].push(m)
	return req
}

// Wait blocks until the request completes and merges its completion time.
func (c *Comm) Wait(r *Request) {
	if r.done != nil && !r.got {
		select {
		case r.at = <-r.done:
			r.got = true
		case <-c.proc.Fabric().Done():
			panic(simnet.ErrAborted)
		}
	}
	c.ep.AdvanceTo(r.at)
}

// Test reports (without blocking) whether the request has completed.
func (c *Comm) Test(r *Request) bool {
	if r.done == nil || r.got {
		return true
	}
	select {
	case r.at = <-r.done:
		r.got = true
		return true
	default:
		return false
	}
}

// WaitAll waits for every request.
func (c *Comm) WaitAll(rs []*Request) {
	for _, r := range rs {
		c.Wait(r)
	}
}

// Send transmits buf to dst with tag (standard mode, blocking).
func (c *Comm) Send(dst, tag int, buf []byte) { c.Wait(c.Isend(dst, tag, buf)) }

// Ssend transmits in synchronous mode: it returns only after the receiver
// has matched the message.
func (c *Comm) Ssend(dst, tag int, buf []byte) { c.Wait(c.Issend(dst, tag, buf)) }

// Recv receives a message matching (src, tag) into buf, returning the
// sender, the tag, and the byte count.
func (c *Comm) Recv(src, tag int, buf []byte) (from, gotTag, n int) {
	fab := c.proc.Fabric()
	mb := c.w.boxes[c.Rank()]
	mb.mu.Lock()
	var m *message
	for {
		if fab.Aborted() {
			mb.mu.Unlock()
			panic(simnet.ErrAborted)
		}
		var scanned int
		if m, scanned = mb.match(src, tag, true); m != nil {
			c.ep.Compute(int64(scanned) * scanNs)
			break
		}
		mb.cond.Wait()
	}
	mb.mu.Unlock()
	return c.deliver(m, buf)
}

// scanNs is the charge per unexpected-queue entry examined during matching.
const scanNs = 150

// TryRecv receives a matching message if one is immediately available.
func (c *Comm) TryRecv(src, tag int, buf []byte) (from, gotTag, n int, ok bool) {
	mb := c.w.boxes[c.Rank()]
	mb.mu.Lock()
	m, scanned := mb.match(src, tag, true)
	mb.mu.Unlock()
	if m == nil {
		// A miss costs no virtual time: a real progress loop spins until
		// the message physically arrives, and that waiting shows up as the
		// receiver's clock advancing to the arrival time on the hit —
		// charging per real iteration would couple virtual time to host
		// scheduling noise.
		return -1, 0, 0, false
	}
	c.ep.Compute(int64(scanned)*scanNs + c.profile(c.Rank()).PollNs)
	from, gotTag, n = c.deliver(m, buf)
	return from, gotTag, n, true
}

// deliver completes a matched message and charges the receiver-side costs.
func (c *Comm) deliver(m *message, buf []byte) (from, gotTag, n int) {
	pr := c.profile(m.src)
	c.ep.Compute(pr.MatchNs) // software matching on the critical path
	if m.rendezvous {
		// CTS round trip plus the pull of the payload.
		n = copy(buf, m.srcBuf)
		arrive := timing.Max(c.ep.Now(), m.sendTime) +
			timing.Time(pr.GetLatNs) + timing.Time(float64(n)*pr.NsPerByte)
		c.ep.AdvanceTo(arrive)
		m.matched <- arrive
	} else {
		n = copy(buf, m.data)
		// Copy out of the eager pool: the receiver-side copy RMA avoids.
		c.ep.AdvanceTo(timing.Max(c.ep.Now(), m.sendTime) +
			timing.Time(float64(n)*pr.CopyNsPB))
		if m.matched != nil {
			m.matched <- c.ep.Now()
		}
	}
	return m.src, m.tag, n
}

// Probe reports whether a message matching (src, tag) is available, without
// receiving it.
func (c *Comm) Probe(src, tag int) (from int, ok bool) {
	mb := c.w.boxes[c.Rank()]
	mb.mu.Lock()
	m, scanned := mb.match(src, tag, false)
	mb.mu.Unlock()
	if m == nil {
		return -1, false
	}
	c.ep.Compute(c.w.model.Intra.PollNs + int64(scanned)*scanNs)
	return m.src, true
}

// SendRecv exchanges messages (deadlock-free: the send is nonblocking).
func (c *Comm) SendRecv(dst, sendTag int, sendBuf []byte, src, recvTag int, recvBuf []byte) int {
	req := c.Isend(dst, sendTag, sendBuf)
	_, _, n := c.Recv(src, recvTag, recvBuf)
	c.Wait(req)
	return n
}
