package mpi1

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"fompi/internal/simnet"
	"fompi/internal/spmd"
)

// run launches an n-rank world with the MPI-1 layer dialed on every rank.
func run(t *testing.T, n, rpn int, body func(c *Comm)) {
	t.Helper()
	var fab simnet.Transport
	err := spmd.Run(spmd.Config{Ranks: n, RanksPerNode: rpn}, func(p *spmd.Proc) {
		fab = p.Fabric()
		body(Dial(p))
	})
	Release(fab) // after all ranks finished: releasing early would give late
	// dialers a fresh, empty world and strand their peers' messages
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvSmall(t *testing.T) {
	run(t, 2, 1, func(c *Comm) {
		msg := []byte("eager path payload")
		if c.Rank() == 0 {
			c.Send(1, 7, msg)
		} else {
			buf := make([]byte, 64)
			from, tag, n := c.Recv(0, 7, buf)
			if from != 0 || tag != 7 || !bytes.Equal(buf[:n], msg) {
				t.Errorf("got from=%d tag=%d %q", from, tag, buf[:n])
			}
		}
	})
}

func TestSendRecvRendezvous(t *testing.T) {
	big := make([]byte, simnet.EagerMax*3)
	for i := range big {
		big[i] = byte(i * 31)
	}
	run(t, 2, 1, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, big)
		} else {
			buf := make([]byte, len(big))
			_, _, n := c.Recv(0, 1, buf)
			if n != len(big) || !bytes.Equal(buf, big) {
				t.Errorf("rendezvous corrupted payload (n=%d)", n)
			}
		}
	})
}

func TestRendezvousSynchronizesSender(t *testing.T) {
	// The sender of a large message must not complete before the receiver
	// matched it — the structural cost the paper attributes to rendezvous.
	run(t, 2, 1, func(c *Comm) {
		big := make([]byte, simnet.EagerMax+1)
		if c.Rank() == 0 {
			c.Send(1, 1, big)
			if c.Now().Micros() < 400 {
				t.Errorf("sender completed at %.1fµs, before the delayed receiver", c.Now().Micros())
			}
		} else {
			c.Compute(500_000) // receiver arrives 500 µs late
			c.Recv(0, 1, big)
		}
	})
}

func TestEagerDoesNotSynchronize(t *testing.T) {
	run(t, 2, 1, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, make([]byte, 64))
			if c.Now().Micros() > 100 {
				t.Errorf("eager sender blocked: %.1fµs", c.Now().Micros())
			}
		} else {
			c.Compute(500_000)
			c.Recv(0, 1, make([]byte, 64))
		}
	})
}

func TestSsendSynchronizes(t *testing.T) {
	run(t, 2, 1, func(c *Comm) {
		if c.Rank() == 0 {
			c.Ssend(1, 1, make([]byte, 8))
			if c.Now().Micros() < 400 {
				t.Errorf("ssend returned at %.1fµs before match", c.Now().Micros())
			}
		} else {
			c.Compute(500_000)
			c.Recv(0, 1, make([]byte, 8))
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	run(t, 3, 1, func(c *Comm) {
		if c.Rank() != 0 {
			var w [8]byte
			binary.LittleEndian.PutUint64(w[:], uint64(c.Rank()))
			c.Send(0, c.Rank()*10, w[:])
			return
		}
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			var w [8]byte
			from, tag, _ := c.Recv(AnySource, AnyTag, w[:])
			if tag != from*10 || binary.LittleEndian.Uint64(w[:]) != uint64(from) {
				t.Errorf("mismatched message from %d tag %d", from, tag)
			}
			seen[from] = true
		}
		if !seen[1] || !seen[2] {
			t.Errorf("missing senders: %v", seen)
		}
	})
}

func TestProbeAndTryRecv(t *testing.T) {
	run(t, 2, 1, func(c *Comm) {
		if c.Rank() == 0 {
			if _, ok := c.Probe(1, 5); ok {
				t.Error("probe matched nonexistent message")
			}
			c.Send(1, 5, []byte{42})
			return
		}
		var b [1]byte
		for {
			if _, ok := c.Probe(0, 5); ok {
				break
			}
		}
		if _, _, _, ok := c.TryRecv(0, 5, b[:]); !ok || b[0] != 42 {
			t.Errorf("TryRecv after probe failed (ok=%v v=%d)", ok, b[0])
		}
		if _, _, _, ok := c.TryRecv(0, 5, b[:]); ok {
			t.Error("message delivered twice")
		}
	})
}

func TestIsendTestCompletion(t *testing.T) {
	run(t, 2, 1, func(c *Comm) {
		if c.Rank() == 0 {
			req := c.Issend(1, 3, []byte{1})
			if c.Test(req) {
				t.Error("issend complete before receiver matched")
			}
			for !c.Test(req) {
			}
		} else {
			c.Recv(0, 3, make([]byte, 1))
		}
	})
}

func TestBarrier(t *testing.T) {
	for _, n := range []int{2, 3, 8, 13} {
		var phase int64
		run(t, n, 4, func(c *Comm) {
			atomic.AddInt64(&phase, 1)
			c.Barrier()
			if got := atomic.LoadInt64(&phase); got != int64(n) {
				t.Errorf("n=%d: phase %d after barrier", n, got)
			}
		})
		phase = 0
	}
}

func TestIbarrierCompletesOnlyAfterAll(t *testing.T) {
	run(t, 4, 2, func(c *Comm) {
		ib := c.IbarrierBegin()
		if c.Rank() == 0 {
			// Rank 0 polls; it cannot complete until everyone began.
			for i := 0; i < 3 && c.TestIB(ib); i++ {
			}
		}
		c.WaitIB(ib)
	})
}

func TestAllreduce8(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		run(t, n, 4, func(c *Comm) {
			if got, want := c.Allreduce8(Sum, uint64(c.Rank()+1)), uint64(n*(n+1)/2); got != want {
				t.Errorf("n=%d sum=%d want %d", n, got, want)
			}
			if got := c.Allreduce8(Max, uint64(c.Rank())); got != uint64(n-1) {
				t.Errorf("n=%d max=%d", n, got)
			}
			want := 0.0
			for r := 0; r < n; r++ {
				want += float64(r) * 1.5
			}
			got := math.Float64frombits(c.Allreduce8(FSum, math.Float64bits(float64(c.Rank())*1.5)))
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("n=%d fsum=%g want %g", n, got, want)
			}
		})
	}
}

func TestBcast(t *testing.T) {
	run(t, 9, 4, func(c *Comm) {
		buf := make([]byte, 32)
		if c.Rank() == 4 {
			for i := range buf {
				buf[i] = byte(i + 1)
			}
		}
		c.Bcast(4, buf)
		for i := range buf {
			if buf[i] != byte(i+1) {
				t.Errorf("rank %d byte %d = %d", c.Rank(), i, buf[i])
				break
			}
		}
	})
}

func TestAllgatherAlltoall(t *testing.T) {
	run(t, 6, 2, func(c *Comm) {
		all := c.Allgather([]byte{byte(c.Rank() + 1)})
		for r := 0; r < 6; r++ {
			if all[r] != byte(r+1) {
				t.Errorf("allgather[%d] = %d", r, all[r])
			}
		}
		send := make([]byte, 6*8)
		for j := 0; j < 6; j++ {
			binary.LittleEndian.PutUint64(send[j*8:], uint64(c.Rank()*100+j))
		}
		got := c.Alltoall(send, 8)
		for i := 0; i < 6; i++ {
			if v := binary.LittleEndian.Uint64(got[i*8:]); v != uint64(i*100+c.Rank()) {
				t.Errorf("alltoall from %d = %d", i, v)
			}
		}
	})
}

func TestReduceScatterSum(t *testing.T) {
	for _, n := range []int{2, 4, 8, 6} {
		run(t, n, 2, func(c *Comm) {
			vec := make([]uint64, n)
			for i := range vec {
				vec[i] = uint64(c.Rank() + i)
			}
			got := c.ReduceScatterSum(vec)
			var want uint64
			for r := 0; r < n; r++ {
				want += uint64(r + c.Rank())
			}
			if got != want {
				t.Errorf("n=%d rank %d: %d != %d", n, c.Rank(), got, want)
			}
		})
	}
}

func TestPropertyMessagesDeliverExactly(t *testing.T) {
	// Any multiset of tagged messages sent 1->0 arrives exactly once, FIFO
	// per tag.
	err := quick.Check(func(payloads [][]byte) bool {
		if len(payloads) == 0 || len(payloads) > 20 {
			return true
		}
		ok := true
		var fab simnet.Transport
		spmd.MustRun(spmd.Config{Ranks: 2}, func(p *spmd.Proc) {
			fab = p.Fabric()
			c := Dial(p)
			if p.Rank() == 1 {
				for i, pl := range payloads {
					c.Send(0, i, pl)
				}
				return
			}
			for i, pl := range payloads {
				buf := make([]byte, len(pl)+8)
				_, _, n := c.Recv(1, i, buf)
				if n != len(pl) || !bytes.Equal(buf[:n], pl) {
					ok = false
				}
			}
		})
		Release(fab)
		return ok
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManyToOneStress(t *testing.T) {
	const n, msgs = 8, 200
	run(t, n, 4, func(c *Comm) {
		rng := rand.New(rand.NewSource(int64(c.Rank())))
		if c.Rank() != 0 {
			for i := 0; i < msgs; i++ {
				var w [8]byte
				binary.LittleEndian.PutUint64(w[:], uint64(c.Rank())<<32|uint64(i))
				c.Send(0, rng.Intn(4), w[:])
			}
			return
		}
		next := make([]uint64, n)
		for i := 0; i < (n-1)*msgs; i++ {
			var w [8]byte
			from, _, _ := c.Recv(AnySource, AnyTag, w[:])
			v := binary.LittleEndian.Uint64(w[:])
			if int(v>>32) != from {
				t.Errorf("message %x claims wrong sender %d", v, from)
			}
			_ = next
		}
	})
}
