package mpi1

import (
	"encoding/binary"
	"math"
)

// Collective tag space: user code must keep tags below collTagBase. Each
// collective invocation consumes a distinct tag block so back-to-back
// collectives cannot cross-match (all ranks call collectives in the same
// order, as MPI requires).
const collTagBase = 1 << 24

func (c *Comm) collTag(round int) int {
	return collTagBase + c.seq*256 + round
}

// Barrier blocks until all ranks arrive (dissemination algorithm).
func (c *Comm) Barrier() {
	n := c.Size()
	if n == 1 {
		return
	}
	c.seq++
	var one [1]byte
	round := 0
	for dist := 1; dist < n; dist <<= 1 {
		to := (c.Rank() + dist) % n
		from := (c.Rank() - dist + n) % n
		c.SendRecv(to, c.collTag(round), one[:], from, c.collTag(round), one[:])
		round++
	}
}

// IBarrier is a nonblocking barrier in the LibNBC style: progress happens
// inside Test/WaitIB calls, one dissemination round at a time.
type IBarrier struct {
	round, dist int
	pending     *Request
	done        bool
}

// IbarrierBegin starts a nonblocking barrier.
func (c *Comm) IbarrierBegin() *IBarrier {
	c.seq++
	ib := &IBarrier{dist: 1}
	if c.Size() == 1 {
		ib.done = true
		return ib
	}
	ib.pending = c.Isend((c.Rank()+1)%c.Size(), c.collTag(0), []byte{1})
	return ib
}

// TestIB advances the barrier as far as possible without blocking and
// reports whether it completed.
func (c *Comm) TestIB(ib *IBarrier) bool {
	n := c.Size()
	for !ib.done {
		from := (c.Rank() - ib.dist + n) % n
		var b [1]byte
		if _, _, _, ok := c.TryRecv(from, c.collTag(ib.round), b[:]); !ok {
			return false
		}
		c.Wait(ib.pending)
		ib.dist <<= 1
		ib.round++
		if ib.dist >= n {
			ib.done = true
			break
		}
		ib.pending = c.Isend((c.Rank()+ib.dist)%n, c.collTag(ib.round), []byte{1})
	}
	return true
}

// WaitIB blocks until the nonblocking barrier completes.
func (c *Comm) WaitIB(ib *IBarrier) {
	n := c.Size()
	for !ib.done {
		from := (c.Rank() - ib.dist + n) % n
		var b [1]byte
		c.Recv(from, c.collTag(ib.round), b[:])
		c.Wait(ib.pending)
		ib.dist <<= 1
		ib.round++
		if ib.dist >= n {
			ib.done = true
			break
		}
		ib.pending = c.Isend((c.Rank()+ib.dist)%n, c.collTag(ib.round), []byte{1})
	}
}

// ReduceOp selects the operator of Allreduce8.
type ReduceOp int

// Supported reduction operators; FSum treats words as float64 bits.
const (
	Sum ReduceOp = iota
	Min
	Max
	FSum
)

func (o ReduceOp) apply(a, b uint64) uint64 {
	switch o {
	case Sum:
		return a + b
	case Min:
		if b < a {
			return b
		}
		return a
	case Max:
		if b > a {
			return b
		}
		return a
	case FSum:
		return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
	default:
		panic("mpi1: unknown reduce op")
	}
}

// Allreduce8 reduces one word over all ranks (recursive doubling with
// fold-in for non-power-of-two sizes).
func (c *Comm) Allreduce8(op ReduceOp, v uint64) uint64 {
	n := c.Size()
	if n == 1 {
		return v
	}
	c.seq++
	pow2 := 1
	for pow2*2 <= n {
		pow2 *= 2
	}
	rem := n - pow2
	var w [8]byte
	if c.Rank() >= pow2 {
		binary.LittleEndian.PutUint64(w[:], v)
		c.Send(c.Rank()-pow2, c.collTag(62), w[:])
		c.Recv(c.Rank()-pow2, c.collTag(63), w[:])
		return binary.LittleEndian.Uint64(w[:])
	}
	if c.Rank() < rem {
		c.Recv(c.Rank()+pow2, c.collTag(62), w[:])
		v = op.apply(v, binary.LittleEndian.Uint64(w[:]))
	}
	round := 0
	for mask := 1; mask < pow2; mask <<= 1 {
		peer := c.Rank() ^ mask
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:], v)
		c.SendRecv(peer, c.collTag(round), out[:], peer, c.collTag(round), w[:])
		v = op.apply(v, binary.LittleEndian.Uint64(w[:]))
		round++
	}
	if c.Rank() < rem {
		binary.LittleEndian.PutUint64(w[:], v)
		c.Send(c.Rank()+pow2, c.collTag(63), w[:])
	}
	return v
}

// Bcast broadcasts buf from root (binomial tree); all ranks pass equal-size
// buffers.
func (c *Comm) Bcast(root int, buf []byte) {
	n := c.Size()
	if n == 1 {
		return
	}
	c.seq++
	vrank := (c.Rank() - root + n) % n
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			c.Recv((vrank-mask+root)%n, c.collTag(40), buf)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if child := vrank + mask; child < n {
			c.Send((child+root)%n, c.collTag(40), buf)
		}
	}
}

// Allgather gathers fixed-size blocks into rank order on every rank (ring).
func (c *Comm) Allgather(mine []byte) []byte {
	n, each := c.Size(), len(mine)
	out := make([]byte, n*each)
	copy(out[c.Rank()*each:], mine)
	if n == 1 {
		return out
	}
	c.seq++
	right, left := (c.Rank()+1)%n, (c.Rank()-1+n)%n
	for s := 0; s < n-1; s++ {
		sendIdx := (c.Rank() - s + n) % n
		recvIdx := (c.Rank() - s - 1 + n) % n
		c.SendRecv(right, c.collTag(s%200), out[sendIdx*each:(sendIdx+1)*each],
			left, c.collTag(s%200), out[recvIdx*each:(recvIdx+1)*each])
	}
	return out
}

// Alltoall delivers block j of send (Size blocks of each bytes) to rank j.
func (c *Comm) Alltoall(send []byte, each int) []byte {
	n := c.Size()
	if len(send) != n*each {
		panic("mpi1: Alltoall send length must be ranks*each")
	}
	c.seq++
	out := make([]byte, n*each)
	copy(out[c.Rank()*each:], send[c.Rank()*each:(c.Rank()+1)*each])
	for d := 1; d < n; d++ {
		dst := (c.Rank() + d) % n
		src := (c.Rank() - d + n) % n
		c.SendRecv(dst, c.collTag(d%200), send[dst*each:(dst+1)*each],
			src, c.collTag(d%200), out[src*each:(src+1)*each])
	}
	return out
}

// ReduceScatterSum reduces a Size-element vector element-wise and returns
// element `rank` to each rank (recursive halving for powers of two,
// alltoall fallback otherwise).
func (c *Comm) ReduceScatterSum(vec []uint64) uint64 {
	n := c.Size()
	if len(vec) != n {
		panic("mpi1: ReduceScatterSum needs one element per rank")
	}
	if n == 1 {
		return vec[0]
	}
	if n&(n-1) != 0 {
		buf := make([]byte, n*8)
		for i, v := range vec {
			binary.LittleEndian.PutUint64(buf[i*8:], v)
		}
		got := c.Alltoall(buf, 8)
		var sum uint64
		for i := 0; i < n; i++ {
			sum += binary.LittleEndian.Uint64(got[i*8:])
		}
		return sum
	}
	c.seq++
	acc := make([]uint64, n)
	copy(acc, vec)
	lo, cnt, round := 0, n, 0
	for mask := n / 2; mask > 0; mask >>= 1 {
		peer := c.Rank() ^ mask
		half := cnt / 2
		var sendLo, keepLo int
		if c.Rank()&mask == 0 {
			keepLo, sendLo = lo, lo+half
		} else {
			keepLo, sendLo = lo+half, lo
		}
		out := make([]byte, half*8)
		for i := 0; i < half; i++ {
			binary.LittleEndian.PutUint64(out[i*8:], acc[sendLo+i])
		}
		in := make([]byte, half*8)
		c.SendRecv(peer, c.collTag(round), out, peer, c.collTag(round), in)
		for i := 0; i < half; i++ {
			acc[keepLo+i] += binary.LittleEndian.Uint64(in[i*8:])
		}
		lo, cnt = keepLo, half
		round++
	}
	return acc[c.Rank()]
}
