// Package transporttest is the Transport conformance suite: every backend
// must pass the same ordering, notification-delivery, atomicity, doorbell-
// wakeup, abort-propagation, and virtual-time-identity checks, so a new
// backend can be dropped in behind simnet.Transport and validated by
// running this package.
//
// Each test runs its body over every backend: the in-process fabric, the
// multi-process shared-memory world (internal/mprun), the inter-node TCP
// world in loopback mode (internal/netrun), and the hybrid shm+TCP world
// (internal/hybridrun, one emulated host per virtual node). The cross-process runs
// re-execute this test binary as the worker ranks (spmd.Config.MPRelaunch
// targets the one test by name), so the body literally runs in separate OS
// processes; a worker process skips straight to its own backend's run.
// Assertions panic, which aborts the world and fails the launcher-side test
// on any backend.
package transporttest

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"fompi/internal/core"
	"fompi/internal/hybridrun"
	"fompi/internal/mprun"
	"fompi/internal/netrun"
	"fompi/internal/simnet"
	"fompi/internal/spmd"
	"fompi/internal/timing"
)

// check panics with a formatted message; the suite's assertion primitive
// (bodies run in worker processes where *testing.T does not reach).
func check(cond bool, format string, args ...any) {
	if !cond {
		panic(fmt.Sprintf(format, args...))
	}
}

// EnvBackends scopes the suite to a subset of backend legs: a
// comma-separated list of leg labels (in-process, multi-process,
// inter-node, hybrid). Empty (the default) runs all four. CI uses it to
// give each backend-specific job its own leg instead of every job
// repeating the whole matrix; the verify job keeps the canonical
// all-backends run. Worker processes inherit the variable, which is
// harmless: a worker only ever runs the leg of the world that launched it,
// and that leg was enabled in the launcher.
const EnvBackends = "FOMPI_TT_BACKENDS"

// legEnabled consults EnvBackends for one leg label.
func legEnabled(label string) bool {
	spec := strings.TrimSpace(os.Getenv(EnvBackends))
	if spec == "" {
		return true
	}
	for _, l := range strings.Split(spec, ",") {
		if strings.TrimSpace(l) == label {
			return true
		}
	}
	return false
}

// eachBackendLeg invokes leg once per backend this process should run: all
// four in the launcher (minus any EnvBackends scoping), only its own in a
// worker process — a worker's job is to be one rank of the world that
// re-executed it, never to launch the other backends' worlds. name must be
// the calling test's exact function name: the cross-process launchers
// re-execute the test binary with -test.run anchored to it, and the re-run
// must reach the same spmd.Run call for its backend (which is also why
// each conformance test contains exactly one run per cross-process
// backend). The cfg handed to leg is ready to run (backend and relaunch
// argv set). Hybrid workers satisfy netrun.IsWorker too (they join through
// the same coordinator), so the inter-node leg checks hybridrun.IsWorker
// explicitly.
func eachBackendLeg(t *testing.T, name string, cfg spmd.Config, leg func(label string, cfg spmd.Config)) {
	t.Helper()
	if !mprun.IsWorker() && !netrun.IsWorker() && legEnabled("in-process") {
		leg("in-process", cfg)
	}
	if runtime.GOOS == "windows" {
		t.Skip("cross-process backends need mmap + unix sockets")
	}
	relaunch := []string{os.Args[0], "-test.run=^" + name + "$"}
	if !netrun.IsWorker() && legEnabled("multi-process") {
		mp := cfg
		mp.Backend = spmd.BackendMP
		mp.MPRelaunch = relaunch
		leg("multi-process", mp)
	}
	if !mprun.IsWorker() && !hybridrun.IsWorker() && legEnabled("inter-node") {
		nt := cfg
		nt.Backend = spmd.BackendNet
		nt.MPRelaunch = relaunch
		leg("inter-node", nt)
	}
	if !mprun.IsWorker() && (hybridrun.IsWorker() || !netrun.IsWorker()) && legEnabled("hybrid") {
		hy := cfg
		hy.Backend = spmd.BackendHybrid
		hy.MPRelaunch = relaunch
		leg("hybrid", hy)
	}
}

// runAll executes body over every backend (see eachBackendLeg), failing the
// test on the first backend whose world errors.
func runAll(t *testing.T, name string, cfg spmd.Config, body func(p *spmd.Proc)) {
	t.Helper()
	eachBackendLeg(t, name, cfg, func(label string, c spmd.Config) {
		if err := spmd.Run(c, body); err != nil {
			t.Fatalf("%s backend: %v", label, err)
		}
	})
}

// setupRegion registers a dedicated conformance region (the same size and
// program order on every rank, so its key is symmetric) and barriers so
// every rank's region is addressable.
func setupRegion(p *spmd.Proc, size int) (*simnet.Region, simnet.Key) {
	reg := p.EP().Register(size)
	k := reg.Key()
	lo := p.Allreduce8(spmd.OpMin, uint64(k))
	hi := p.Allreduce8(spmd.OpMax, uint64(k))
	check(lo == hi, "conformance region key not symmetric: %d..%d", lo, hi)
	p.Barrier()
	return reg, k
}

// TestConformanceOrdering checks put-then-flag ordering: once a poller has
// observed the flag and merged its stamp, the payload bytes are present and
// no payload word's stamp exceeds the poller's merged clock (data lands
// causally before the flag that announces it).
func TestConformanceOrdering(t *testing.T) {
	const rounds = 8
	cfg := spmd.Config{Ranks: 2, RanksPerNode: 1} // inter-node: the NIC path
	runAll(t, "TestConformanceOrdering", cfg, func(p *spmd.Proc) {
		const payloadOff, flagOff, payloadLen = 0, 1024, 996 // odd length: edge blocks
		reg, key := setupRegion(p, 2048)
		ep := p.EP()
		if p.Rank() == 0 {
			for r := 1; r <= rounds; r++ {
				buf := make([]byte, payloadLen)
				for i := range buf {
					buf[i] = byte(r + i)
				}
				ep.BeginBatch()
				ep.PutNBI(simnet.Addr{Rank: 1, Key: key, Off: payloadOff}, buf)
				ep.StoreW(simnet.Addr{Rank: 1, Key: key, Off: flagOff}, uint64(r))
				ep.EndBatch()
				// Wait for the consumer's ack before reusing the payload area.
				ep.WaitLocal(func() bool { return reg.LocalWord(flagOff) >= uint64(r) })
			}
		} else {
			for r := 1; r <= rounds; r++ {
				ep.WaitLocal(func() bool { return reg.LocalWord(flagOff) >= uint64(r) })
				ep.MergeStamp(reg, flagOff, 8)
				for i := 0; i < payloadLen; i++ {
					check(reg.Bytes()[payloadOff+i] == byte(r+i),
						"round %d: payload byte %d corrupt", r, i)
				}
				check(reg.StampMax(payloadOff, payloadLen) <= ep.Now(),
					"round %d: payload stamped after the flag that announced it", r)
				ep.StoreW(simnet.Addr{Rank: 0, Key: key, Off: flagOff}, uint64(r))
			}
		}
		p.Barrier()
	})
}

// TestConformanceAtomics checks cross-rank atomicity: a fetch-add counter
// accumulates exactly, fetch-add tickets are unique, and a CAS spinlock
// provides mutual exclusion around a non-atomic read-modify-write.
func TestConformanceAtomics(t *testing.T) {
	const perRank = 200
	cfg := spmd.Config{Ranks: 4, RanksPerNode: 2}
	runAll(t, "TestConformanceAtomics", cfg, func(p *spmd.Proc) {
		const ctrOff, lockOff, cellOff = 0, 8, 16
		reg, key := setupRegion(p, 64)
		ep := p.EP()
		ctr := simnet.Addr{Rank: 0, Key: key, Off: ctrOff}
		seen := map[uint64]bool{}
		for i := 0; i < perRank; i++ {
			old := ep.FetchAdd(ctr, 1)
			check(!seen[old], "fetch-add ticket %d seen twice by rank %d", old, p.Rank())
			seen[old] = true
		}
		lock := simnet.Addr{Rank: 0, Key: key, Off: lockOff}
		cell := simnet.Addr{Rank: 0, Key: key, Off: cellOff}
		for i := 0; i < 32; i++ {
			for ep.CompareSwap(lock, 0, uint64(p.Rank())+1) != 0 {
			}
			v := ep.LoadW(cell)
			ep.StoreW(cell, v+1)
			ep.Gsync()
			check(ep.Swap(lock, 0) == uint64(p.Rank())+1, "lock stolen from rank %d", p.Rank())
		}
		p.Barrier()
		if p.Rank() == 0 {
			check(reg.LocalWord(ctrOff) == uint64(p.Size()*perRank),
				"fetch-add counter %d, want %d", reg.LocalWord(ctrOff), p.Size()*perRank)
			check(reg.LocalWord(cellOff) == uint64(p.Size()*32),
				"CAS-locked counter %d, want %d (mutual exclusion violated)",
				reg.LocalWord(cellOff), p.Size()*32)
		}
		p.Barrier()
	})
}

// TestConformanceNotify checks notified-access delivery: the notification
// word arrives intact, after its data, and with a stamp no earlier than the
// data's (the data-before-notification contract rings are built on).
func TestConformanceNotify(t *testing.T) {
	const rounds = 6
	cfg := spmd.Config{Ranks: 2, RanksPerNode: 2} // intra-node fast path
	runAll(t, "TestConformanceNotify", cfg, func(p *spmd.Proc) {
		ringBytes := simnet.NotifyRingBytes(8)
		reg, key := setupRegion(p, 512+ringBytes)
		ep := p.EP()
		ring := simnet.BindNotifyRing(reg, 512, 8)
		p.Barrier()
		if p.Rank() == 0 {
			for r := 1; r <= rounds; r++ {
				buf := []byte(fmt.Sprintf("payload %02d", r))
				ep.PutNotify(simnet.Addr{Rank: 1, Key: key, Off: 0}, buf,
					simnet.Addr{Rank: 1, Key: key, Off: 512}, uint64(r))
				ep.Gsync()
				w := ring.Pop(ep) // credit back from the consumer
				check(w == uint64(r)+100, "credit %d, want %d", w, r+100)
			}
		} else {
			for r := 1; r <= rounds; r++ {
				w, stamp, okPop := popBlocking(ep, ring)
				check(okPop && w == uint64(r), "notification %d, want %d", w, r)
				want := fmt.Sprintf("payload %02d", r)
				check(string(reg.Bytes()[:len(want)]) == want, "round %d: data missing at notify time", r)
				check(stamp >= reg.StampMax(0, len(want)),
					"round %d: notification stamped before its data", r)
				ep.AdvanceTo(stamp)
				ep.Notify(simnet.Addr{Rank: 0, Key: key, Off: 512}, uint64(r)+100)
			}
		}
		p.Barrier()
	})
}

// popBlocking waits for one notification and returns it with its stamp.
func popBlocking(ep *simnet.Endpoint, ring *simnet.NotifyRing) (uint64, timing.Time, bool) {
	var w uint64
	var st timing.Time
	var ok bool
	ep.WaitLocal(func() bool {
		w, st, ok = ring.TryPopStamped(ep)
		return ok
	})
	return w, st, ok
}

// TestConformanceDoorbell checks that a parked waiter is woken by a remote
// write — no lost wakeups, no reliance on the waiter polling fast — by
// making the writer sleep in real time while the waiter is parked.
func TestConformanceDoorbell(t *testing.T) {
	cfg := spmd.Config{Ranks: 2, RanksPerNode: 1}
	runAll(t, "TestConformanceDoorbell", cfg, func(p *spmd.Proc) {
		reg, key := setupRegion(p, 64)
		ep := p.EP()
		if p.Rank() == 0 {
			time.Sleep(250 * time.Millisecond) // let the waiter park for real
			ep.StoreW(simnet.Addr{Rank: 1, Key: key, Off: 0}, 42)
			ep.PollRemoteWord(simnet.Addr{Rank: 1, Key: key, Off: 8},
				func(v uint64) bool { return v == 43 })
		} else {
			t0 := time.Now()
			ep.WaitLocal(func() bool { return reg.LocalWord(0) == 42 })
			check(time.Since(t0) < 30*time.Second, "doorbell wait hung")
			reg.LocalWordStore(8, 43, ep.Now())
			p.EP().Transport().RingDoorbell(p.Rank()) // announce the local store
		}
		p.Barrier()
	})
}

// TestConformanceSharedWindow checks the shared-memory window contract on
// every backend: with all ranks on one (virtual) node, AllocateShared
// succeeds everywhere, and SharedSlice either maps the peer's segment for
// direct load/store access (in-process, multi-process, hybrid — any backend
// whose processes share the owner's memory) or fails with the typed
// simnet.ErrNotMapped (the pure inter-node transport — the panic this
// suite's backends used to die with). Where the mapping exists, a raw
// write-through store must be visible both to the owner's direct mapping
// and to the fabric's own Get of the same bytes.
func TestConformanceSharedWindow(t *testing.T) {
	cfg := spmd.Config{Ranks: 2, RanksPerNode: 2} // one (virtual) node
	runAll(t, "TestConformanceSharedWindow", cfg, func(p *spmd.Proc) {
		w, mem := core.AllocateShared(p, 64, core.Config{})
		defer w.Free()
		mem[0] = byte(0x40 + p.Rank()) // tag the own segment by direct store
		w.Fence()
		peer := 1 - p.Rank()
		s, err := w.SharedSliceErr(peer)
		if err != nil {
			check(errors.Is(err, simnet.ErrNotMapped),
				"SharedSlice(%d) failed with %v, want simnet.ErrNotMapped", peer, err)
			own, oerr := w.SharedSliceErr(p.Rank())
			check(oerr == nil, "own-segment SharedSlice must keep working: %v", oerr)
			check(own[0] == byte(0x40+p.Rank()), "own-segment mapping corrupt")
		} else {
			check(s[0] == byte(0x40+peer),
				"peer segment tag %#x, want %#x", s[0], 0x40+peer)
			s[8] = 0x7e // write-through into the peer process's memory
		}
		w.Fence() // order the raw stores before the owner-side reads
		if err == nil {
			check(mem[8] == 0x7e, "peer's write-through store not visible in the owner's mapping")
			got := make([]byte, 1)
			w.Get(got, p.Rank(), 8)
			check(got[0] == 0x7e, "peer's write-through store invisible to the owner's Get")
		}
		p.Barrier()
	})
}

// TestConformanceSharedCrossNode checks that a genuinely cross-node shared
// mapping is refused with the typed simnet.ErrNotSameNode on every backend —
// from SharedErr directly and from core.AllocateShared's argument check
// (delivered by panic, recoverable and errors.Is-testable).
func TestConformanceSharedCrossNode(t *testing.T) {
	cfg := spmd.Config{Ranks: 4, RanksPerNode: 2}
	runAll(t, "TestConformanceSharedCrossNode", cfg, func(p *spmd.Proc) {
		_, key := setupRegion(p, 64)
		cross := (p.Rank() + 2) % 4 // the other virtual node, on every backend
		_, err := p.EP().SharedErr(simnet.Addr{Rank: cross, Key: key}, 64)
		check(err != nil && errors.Is(err, simnet.ErrNotSameNode),
			"SharedErr(cross-node rank %d) = %v, want simnet.ErrNotSameNode", cross, err)
		func() {
			defer func() {
				rec := recover()
				err, ok := rec.(error)
				check(ok && errors.Is(err, simnet.ErrNotSameNode),
					"AllocateShared across nodes: recovered %v, want a panic wrapping simnet.ErrNotSameNode", rec)
			}()
			core.AllocateShared(p, 64, core.Config{})
		}()
		p.Barrier()
	})
}

// vtimeWorkload is a token-serialized tour of every endpoint operation:
// the token hand-off imposes a total order on all remote operations, so
// clocks and stamps are fully protocol-ordered and the final per-rank
// virtual times are deterministic — across runs and across backends.
func vtimeWorkload(p *spmd.Proc, key simnet.Key, reg *simnet.Region) timing.Time {
	ep := p.EP()
	n := p.Size()
	const tokOff, dataOff = 0, 64
	payload := make([]byte, 700) // crosses stamp-block edges
	for lap := 0; lap < 3; lap++ {
		turn := uint64(lap*n) + 1
		if p.Rank() == 0 && lap == 0 {
			// Kick off the ring.
			ep.StoreW(simnet.Addr{Rank: 0, Key: key, Off: tokOff}, turn)
		}
		myTurn := turn + uint64(p.Rank())
		ep.WaitLocal(func() bool { return reg.LocalWord(tokOff) >= myTurn })
		ep.MergeStamp(reg, tokOff, 8)
		next := (p.Rank() + 1) % n
		for i := range payload {
			payload[i] = byte(lap + i + p.Rank())
		}
		ep.Put(simnet.Addr{Rank: next, Key: key, Off: dataOff}, payload)
		got := make([]byte, 256)
		ep.Get(got, simnet.Addr{Rank: next, Key: key, Off: dataOff})
		ep.FetchAdd(simnet.Addr{Rank: next, Key: key, Off: 32}, 7)
		ep.CompareSwap(simnet.Addr{Rank: next, Key: key, Off: 40}, 0, uint64(lap))
		ep.AddNBI(simnet.Addr{Rank: next, Key: key, Off: 48}, 1)
		ep.GetNBI(got, simnet.Addr{Rank: next, Key: key, Off: dataOff})
		ep.Gsync()
		ep.Compute(500)
		// Pass the token.
		ep.StoreW(simnet.Addr{Rank: next, Key: key, Off: tokOff}, myTurn+1)
	}
	if p.Rank() == 0 {
		// The ring closes at rank 0: absorb the final hand-off before the
		// barrier so every hand-off stamp is merged somewhere.
		ep.WaitLocal(func() bool { return reg.LocalWord(tokOff) >= uint64(3*n)+1 })
		ep.MergeStamp(reg, tokOff, 8)
	}
	// Concurrent-AMO phase: the node-0 ranks race unordered non-fetching
	// adds at one word of rank 0's region with nothing serializing them.
	// The word's final stamp is order-independent (t+I+nL however the host
	// scheduler interleaves the racing AMOs) exactly because every AMO
	// holds the stamp chain lock across its read-apply-stamp sequence; a
	// lost lock — the stamp-merge race verify.sh once papered over with a
	// retry — lets an earlier landing overwrite a later one, and the stamp
	// flaps with the schedule. Each rank's own completion legitimately
	// depends on its chain position, so the clocks are re-anchored on a
	// fixed ceiling afterwards: the chain-end stamp, folded into rank 0's
	// anchor and spread by the final barrier, is the phase's only
	// contribution to the returned times.
	const amoOff, amoPerRank = 56, 8
	p.Barrier()
	t0 := p.Now()
	if p.Node() == 0 {
		for i := 0; i < amoPerRank; i++ {
			ep.AddNBI(simnet.Addr{Rank: 0, Key: key, Off: amoOff}, 1)
		}
		ep.Gsync()
	}
	p.Barrier()                  // every racing AMO is chained before the stamp is read
	anchor := t0 + 1_000_000_000 // dominates every phase-local completion
	if p.Rank() == 0 {
		anchor += reg.StampMax(amoOff, 8) - t0
	}
	ep.AdvanceTo(anchor)
	p.Barrier()
	return p.Now()
}

// TestConformanceVirtualTime pins the tentpole claim: a protocol-ordered
// workload yields bit-identical per-rank virtual times on every backend.
// The expected clocks are computed by two in-process runs (which also guards
// run-to-run determinism); the multi-process run then re-derives them inside
// each worker process and compares its own rank's clock exactly.
func TestConformanceVirtualTime(t *testing.T) {
	cfg := spmd.Config{Ranks: 4, RanksPerNode: 2} // both intra- and inter-node hops
	clocksOnce := func() []timing.Time {
		clocks := make([]timing.Time, cfg.Ranks)
		if err := spmd.Run(cfg, func(p *spmd.Proc) {
			reg, key := setupRegion(p, 1024)
			clocks[p.Rank()] = vtimeWorkload(p, key, reg)
		}); err != nil {
			t.Fatalf("in-process reference run: %v", err)
		}
		return clocks
	}
	want := clocksOnce()
	for r := range want {
		if want[r] == 0 {
			t.Fatalf("rank %d clock stayed 0; workload did not run", r)
		}
	}
	// Ten repeat runs pin the stamp-merge race the workload's concurrent-AMO
	// phase provokes: one bad interleaving with a lost chain lock shifts a
	// stamp, and with it a rank's final clock. (This determinism loop is what
	// replaced the retry hack scripts/verify.sh used to carry.)
	for run := 1; run < 10; run++ {
		again := clocksOnce()
		for r := range want {
			if want[r] != again[r] {
				t.Fatalf("in-process workload is not run-deterministic at rank %d (repeat %d): %d vs %d — the cross-backend comparison below would be meaningless", r, run, want[r], again[r])
			}
		}
	}
	// Worker processes re-execute this test: they recompute `want` with
	// their own in-process runs above, then reach their backend's Run below
	// as workers and assert their rank's clock matches it bit for bit. The
	// in-process leg re-asserts the reference against a third run for free.
	eachBackendLeg(t, "TestConformanceVirtualTime", cfg, func(label string, c spmd.Config) {
		if err := spmd.Run(c, func(p *spmd.Proc) {
			reg, key := setupRegion(p, 1024)
			got := vtimeWorkload(p, key, reg)
			check(got == want[p.Rank()],
				"rank %d virtual time %d on the %s backend, %d in process",
				p.Rank(), got, label, want[p.Rank()])
		}); err != nil {
			t.Fatalf("%s backend: %v", label, err)
		}
	})
}

// TestConformanceAbortPropagation checks that one rank's failure tears down
// the whole world on every backend: blocked peers unwind instead of hanging,
// the launcher-side Run reports the originating failure, and (on the
// cross-process backends) the worker processes exit. The non-failing ranks
// park in a doorbell wait that nothing will ever satisfy — only abort
// propagation can release them.
func TestConformanceAbortPropagation(t *testing.T) {
	cfg := spmd.Config{Ranks: 4, RanksPerNode: 2}
	const failMsg = "deliberate conformance failure"
	body := func(p *spmd.Proc) {
		reg, _ := setupRegion(p, 64)
		if p.Rank() == 1 {
			p.Compute(100) // let the others park first in real time, sometimes
			panic(failMsg)
		}
		p.EP().WaitLocal(func() bool { return reg.LocalWord(0) == 0xdead })
		panic("unreachable: the wait above can only end by abort")
	}
	expectAbort := func(backend string, run func() error) {
		t.Helper()
		errc := make(chan error, 1)
		go func() { errc <- run() }()
		select {
		case err := <-errc:
			if err == nil {
				t.Fatalf("%s backend: world with a failing rank reported success", backend)
			}
			if !strings.Contains(err.Error(), failMsg) {
				t.Fatalf("%s backend: abort error %q does not carry the originating failure %q",
					backend, err, failMsg)
			}
		case <-time.After(90 * time.Second):
			t.Fatalf("%s backend: abort did not propagate (launcher still waiting)", backend)
		}
	}
	eachBackendLeg(t, "TestConformanceAbortPropagation", cfg, func(label string, c spmd.Config) {
		expectAbort(label, func() error { return spmd.Run(c, body) })
	})
}

// TestConformanceDoorbellChurn checks doorbell delivery under concurrent
// waiter churn: several ranks repeatedly register and deregister as waiters
// on one rank's doorbell (every PollRemoteWord iteration is one
// register/wait/deregister cycle) while the owner posts a fast sequence of
// updates. Any lost wakeup deadlocks the test; the per-rank final values
// prove every waiter observed the full sequence.
func TestConformanceDoorbellChurn(t *testing.T) {
	const steps = 200
	cfg := spmd.Config{Ranks: 5, RanksPerNode: 2}
	runAll(t, "TestConformanceDoorbellChurn", cfg, func(p *spmd.Proc) {
		reg, key := setupRegion(p, 128)
		ep := p.EP()
		n := p.Size()
		if p.Rank() == 0 {
			// ackOff(r) is rank r's private ack word in rank 0's region.
			for s := 1; s <= steps; s++ {
				reg.LocalWordStore(0, uint64(s), ep.Now())
				ep.Transport().RingDoorbell(0)
				if s%16 == 0 {
					// Let waiters genuinely park between bursts.
					time.Sleep(time.Millisecond)
				}
			}
			for r := 1; r < n; r++ {
				ep.PollRemoteWord(simnet.Addr{Rank: 0, Key: key, Off: 8 * r},
					func(v uint64) bool { return v == steps })
			}
		} else {
			// Chase the counter one step at a time: maximal churn on rank
			// 0's waiter set, never skipping a wakeup window.
			next := uint64(1)
			for next <= steps {
				got := ep.PollRemoteWord(simnet.Addr{Rank: 0, Key: key, Off: 0},
					func(v uint64) bool { return v >= next })
				next = got + 1
			}
			ep.StoreW(simnet.Addr{Rank: 0, Key: key, Off: 8 * p.Rank()}, steps)
		}
		p.Barrier()
	})
}

// TestConformanceManyRanks is the >64-rank regression test for the doorbell
// waiter bitsets: a 96-rank neighbor ring where every rank's flag write must
// wake a parked waiter whose rank index lives beyond the first 64-bit mask
// word (the multi-process backend's waiter set was one word — and the world
// capped at 64 ranks — until the bitset widened).
func TestConformanceManyRanks(t *testing.T) {
	if testing.Short() {
		t.Skip("96 worker processes per backend is not -short material")
	}
	const p96 = 96
	cfg := spmd.Config{
		Ranks: p96, RanksPerNode: 8,
		// Keep 96 concurrent processes lean: the ring needs only flags.
		ScratchBytes: 8 << 10, MPArenaBytes: 1 << 20,
	}
	runAll(t, "TestConformanceManyRanks", cfg, func(p *spmd.Proc) {
		reg, key := setupRegion(p, 64)
		ep := p.EP()
		n := p.Size()
		right := (p.Rank() + 1) % n
		// Two laps so every rank both rings a sleeping waiter and is rung.
		for lap := uint64(1); lap <= 2; lap++ {
			ep.StoreW(simnet.Addr{Rank: right, Key: key, Off: 0}, lap)
			ep.WaitLocal(func() bool { return reg.LocalWord(0) >= lap })
			ep.MergeStamp(reg, 0, 8)
		}
		p.Barrier()
	})
}
