//go:build !windows

package transporttest

import (
	"errors"
	"os"
	"syscall"
	"testing"
	"time"

	"fompi/internal/faultnet"
	"fompi/internal/mprun"
	"fompi/internal/netrun"
	"fompi/internal/rankio"
	"fompi/internal/simnet"
	"fompi/internal/spmd"
	"fompi/internal/timing"
)

// The chaos half of the conformance suite: the same workloads as the clean
// tests, run under internal/faultnet's injected faults and real rank death.
// Two claims are pinned here. Transient faults — delays, torn writes,
// refused first dials, and (since the session layer) mid-stream data-plane
// resets and periodic blackholes — must be invisible to virtual time: the
// vtime workload's clocks stay bit-identical to a fault-free run, because
// recovery is pure real-time plumbing below the Transport line. Fatal
// faults (a dead control plane, a SIGKILLed rank) must tear the world down
// promptly with typed errors — never a hang, never an untyped string.

// chaosTimeouts tightens the failure-model knobs for every chaos leg: the
// per-op budget bounds each injected blackhole stall, and the heartbeat /
// idle cutoffs keep the fatal legs' detection latency (and so the CI job)
// small without loosening the promises under test.
const chaosTimeouts = "heartbeat=500ms,stale=4s,optimeout=2s,ctlidle=8s"

// chaosSpec appends the shared chaos log to a fault spec when the runner
// asked for one (FOMPI_CHAOS_LOG=/path — CI uploads it as an artifact).
func chaosSpec(base string) string {
	if p := os.Getenv("FOMPI_CHAOS_LOG"); p != "" {
		return base + ",log=" + p
	}
	return base
}

// chaosRun runs one backend leg in a goroutine with a hard deadline, so a
// failure-detection bug reads as a test failure rather than a hung suite.
func chaosRun(t *testing.T, label string, budget time.Duration, run func() error) (error, time.Duration) {
	t.Helper()
	start := time.Now()
	errc := make(chan error, 1)
	go func() { errc <- run() }()
	select {
	case err := <-errc:
		return err, time.Since(start)
	case <-time.After(budget):
		t.Fatalf("%s backend: world never tore down (launcher still waiting after %v)", label, budget)
		return nil, 0
	}
}

// TestKillMidRun pins crash detection: one rank is SIGKILLed mid-run — no
// FAIL line, no control-channel goodbye, just a vanished process — and the
// launcher must still exit with a typed *rankio.RankError within 10 seconds,
// with every surviving rank released from its blocked primitive. Only the
// cross-process backends run (SIGKILLing a goroutine-rank would take the
// test binary with it).
func TestKillMidRun(t *testing.T) {
	cfg := spmd.Config{Ranks: 4, RanksPerNode: 2}
	body := func(p *spmd.Proc) {
		reg, key := setupRegion(p, 128)
		ep := p.EP()
		if p.Rank() == 1 {
			// Prove the world was live, then vanish without a trace.
			ep.StoreW(simnet.Addr{Rank: 0, Key: key, Off: 0}, 1)
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}
		// Survivors park on a word nothing will ever write: only failure
		// detection and abort propagation can release them.
		ep.WaitLocal(func() bool { return reg.LocalWord(64) == 0xdead })
		panic("unreachable: the wait above can only end by abort")
	}
	eachBackendLeg(t, "TestKillMidRun", cfg, func(label string, c spmd.Config) {
		if label == "in-process" {
			return
		}
		err, elapsed := chaosRun(t, label, 60*time.Second, func() error { return spmd.Run(c, body) })
		if err == nil {
			t.Fatalf("%s backend: world with a SIGKILLed rank reported success", label)
		}
		var re *rankio.RankError
		if !errors.As(err, &re) {
			t.Fatalf("%s backend: kill error %v (%T) is not a rankio.RankError", label, err, err)
		}
		if elapsed > 10*time.Second {
			t.Fatalf("%s backend: rank death took %v to surface, want under 10s", label, elapsed)
		}
	})
}

// The transient scenarios: fixed-seed fault schedules the session layer
// must absorb without perturbing virtual time. The first injects only
// byte-level trouble (delays, torn writes, refused first dials); the
// recurring two keep re-breaking the data plane — every fresh connection is
// reset again, every conn periodically blackholes writes — so one run
// crosses the reconnect/resume/replay path many times. plane=data confines
// the conn-killing modes to the resumable streams; killing the control
// plane is the *fatal* test's job.
var chaosTransientScenarios = []struct{ name, spec string }{
	{"transient", "seed=11,delayp=0.08,delaymax=2ms,partialp=0.15,dialfailn=1"},
	{"recurring-resets", "seed=17,reseteveryn=40,plane=data"},
	{"periodic-blackholes", "seed=23,dropeveryn=60,dropfor=2,plane=data,delayp=0.05,delaymax=1ms"},
}

// TestChaosTransientVirtualTime pins the tentpole's robustness corollary:
// virtual time is invariant under transient real-time faults — including
// mid-op connection resets and blackholed writes, which the session layer
// recovers by resume-and-replay. The expected clocks come from a fault-free
// in-process run; the TCP-carrying backends then run the same workload under
// each fixed-seed fault scenario, and every rank's final virtual time must
// match bit for bit.
func TestChaosTransientVirtualTime(t *testing.T) {
	cfg := spmd.Config{Ranks: 4, RanksPerNode: 2}
	want := make([]timing.Time, cfg.Ranks)
	if err := spmd.Run(cfg, func(p *spmd.Proc) {
		reg, key := setupRegion(p, 1024)
		want[p.Rank()] = vtimeWorkload(p, key, reg)
	}); err != nil {
		t.Fatalf("fault-free reference run: %v", err)
	}
	// A worker process serves exactly one world of one scenario: it must
	// keep the fault spec it inherited from its launcher (not rewind the
	// matrix to scenario one) and stop after its single backend leg — a
	// second spmd.Run would try to re-join a coordinator that is done.
	worker := mprun.IsWorker() || netrun.IsWorker()
	if !worker {
		t.Setenv(netrun.EnvTimeouts, chaosTimeouts)
	}
	for _, sc := range chaosTransientScenarios {
		if !worker {
			t.Setenv(faultnet.EnvVar, chaosSpec(sc.spec))
		}
		eachBackendLeg(t, "TestChaosTransientVirtualTime", cfg, func(label string, c spmd.Config) {
			if label == "in-process" || label == "multi-process" {
				return // no TCP: nothing to inject
			}
			if err := spmd.Run(c, func(p *spmd.Proc) {
				reg, key := setupRegion(p, 1024)
				got := vtimeWorkload(p, key, reg)
				check(got == want[p.Rank()],
					"rank %d virtual time %d under %s faults on the %s backend, %d fault-free",
					p.Rank(), got, sc.name, label, want[p.Rank()])
			}); err != nil {
				t.Fatalf("%s backend under %s faults: %v", label, sc.name, err)
			}
		})
		if worker {
			break
		}
	}
}

// TestChaosFatalTeardown pins the other half of the fault split: a fault
// the protocol cannot retry must end in a prompt, typed teardown — the
// launcher returns *rankio.RankError and no rank is left hanging — not in a
// stall or an unclassified crash. Since the session layer made data-plane
// resets survivable, the unretryable fault is a dead *control* plane: the
// spec resets every connection (plane=all) after a small op budget, so the
// heartbeat traffic kills the coordinator↔worker streams a few seconds
// after GO while the ranks sit parked on a wait only an abort can release.
func TestChaosFatalTeardown(t *testing.T) {
	cfg := spmd.Config{Ranks: 4, RanksPerNode: 2}
	body := func(p *spmd.Proc) {
		reg, _ := setupRegion(p, 1024)
		// Park forever: teardown must come from failure detection, never
		// from the workload winning a race against the injected faults.
		p.EP().WaitLocal(func() bool { return reg.LocalWord(64) == 0xdead })
		panic("unreachable: the wait above can only end by abort")
	}
	if !mprun.IsWorker() && !netrun.IsWorker() {
		t.Setenv(netrun.EnvTimeouts, chaosTimeouts)
	}
	eachBackendLeg(t, "TestChaosFatalTeardown", cfg, func(label string, c spmd.Config) {
		if label == "in-process" || label == "multi-process" {
			return // no TCP: nothing to reset
		}
		// Setenv inside the leg: the reference-free test still must not
		// leak resets into another leg's bootstrap on a worker re-run.
		t.Setenv(faultnet.EnvVar, chaosSpec("seed=5,resetafter=20"))
		err, elapsed := chaosRun(t, label, 60*time.Second, func() error { return spmd.Run(c, body) })
		if err == nil {
			t.Fatalf("%s backend: control plane reset mid-run, yet the world reported success", label)
		}
		var re *rankio.RankError
		if !errors.As(err, &re) {
			t.Fatalf("%s backend: fatal-fault error %v (%T) is not a rankio.RankError", label, err, err)
		}
		if elapsed > 30*time.Second {
			t.Fatalf("%s backend: control-plane death took %v to surface, want well under the chaos budget", label, elapsed)
		}
	})
}
