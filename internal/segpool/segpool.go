// Package segpool recycles registered-memory backing segments — a byte
// buffer plus its shadow-stamp arrays — across simulated worlds. Host-perf
// scenarios (and any benchmark sweep) create and destroy a world per
// repetition; without pooling every repetition allocates, page-faults, and
// garbage-collects hundreds of kilobytes per rank (window control regions
// alone are ~130 KiB each), which dominates the host cost of short-lived
// worlds. Segments are pooled per size; sync.Pool drains under GC pressure,
// so idle pools do not pin memory.
package segpool

import (
	"sync"

	"fompi/internal/telemetry"
	"fompi/internal/timing"
)

// Pool traffic metrics: how many segments worlds requested, and how the
// recycled ones were wiped — full clear (seg.put) versus stamp-directed
// scrub (seg.put_scrubbed), the cheap path whose hit rate these counters
// exist to make visible.
var (
	mGet         = telemetry.NewCounter("seg.get")
	mPut         = telemetry.NewCounter("seg.put")
	mPutScrubbed = telemetry.NewCounter("seg.put_scrubbed")
)

// Seg is one recyclable backing segment: the registered bytes and their
// shadow stamps, both in the all-zero state when obtained from Get.
type Seg struct {
	Buf []byte
	St  *timing.Stamps
}

// pools maps segment size to its *sync.Pool.
var pools sync.Map

func poolFor(size int) *sync.Pool {
	if p, ok := pools.Load(size); ok {
		return p.(*sync.Pool)
	}
	p, _ := pools.LoadOrStore(size, &sync.Pool{})
	return p.(*sync.Pool)
}

// Get returns an all-zero segment of the given size, recycled if one is
// pooled and freshly allocated otherwise.
func Get(size int) *Seg {
	mGet.Inc()
	if s, ok := poolFor(size).Get().(*Seg); ok && s != nil {
		return s
	}
	return &Seg{Buf: make([]byte, size), St: timing.NewStamps(size)}
}

// Put zeroes a segment and returns it to its pool. The caller must guarantee
// that no goroutine still reaches the segment's memory — for a registered
// region that means the region is unregistered and every rank that could
// address it has synchronized (the world exited cleanly, or the collective
// free completed).
func Put(s *Seg) {
	mPut.Inc()
	clear(s.Buf)
	s.St.Reset()
	poolFor(len(s.Buf)).Put(s)
}

// Range is a byte extent [Lo, Hi) a PutScrubbed caller dirtied outside the
// stamp discipline.
type Range struct{ Lo, Hi int }

// Scrub wipes a stamp-disciplined segment back to the all-zero state: the
// stamped blocks (clamped to the buffer, which may be shorter than the
// 8-byte-rounded extent the stamps cover) plus the declared extra ranges,
// then resets the stamps. Both backends' recyclers — the pool below and the
// multi-process arena free lists — share it. The caller must guarantee no
// concurrent writers.
func Scrub(s *Seg, extra ...Range) {
	s.St.DirtyBlocks(func(lo, hi int) {
		if hi > len(s.Buf) {
			hi = len(s.Buf)
		}
		clear(s.Buf[lo:hi])
	})
	for _, r := range extra {
		clear(s.Buf[r.Lo:r.Hi])
	}
	s.St.Reset()
}

// PutScrubbed recycles a segment whose buffer writes are tracked: every
// write either went through a stamping fabric operation (put, AMO, store,
// notification delivery) or lies inside one of the declared extra ranges
// (local unstamped stores, e.g. a notification ring's header words). Only
// the stamped blocks and the extras are wiped, so recycling a mostly-idle
// region — a fence-only window's 130 KiB control region, a barely-used
// collective scratch — costs proportional to what was actually written.
// Callers whose buffers receive untracked writes (user-held window memory)
// must use Put.
func PutScrubbed(s *Seg, extra ...Range) {
	mPutScrubbed.Inc()
	Scrub(s, extra...)
	poolFor(len(s.Buf)).Put(s)
}
