package segpool

import "testing"

func TestGetReturnsZeroedSegment(t *testing.T) {
	s := Get(1 << 10)
	if len(s.Buf) != 1<<10 || s.St.Bytes() < 1<<10 {
		t.Fatalf("segment sized %d/%d, want 1024", len(s.Buf), s.St.Bytes())
	}
	for i, b := range s.Buf {
		if b != 0 {
			t.Fatalf("fresh segment byte %d = %d, want 0", i, b)
		}
	}
	if m := s.St.MaxRange(0, len(s.Buf)); m != 0 {
		t.Fatalf("fresh segment stamp max %d, want 0", m)
	}
}

func TestPutScrubsForReuse(t *testing.T) {
	s := Get(512)
	s.Buf[17] = 0xab
	s.St.Set(16, 42)
	Put(s)
	// The recycled segment (whether or not it is the same object) must come
	// back all-zero.
	r := Get(512)
	for i, b := range r.Buf {
		if b != 0 {
			t.Fatalf("recycled segment byte %d = %d, want 0", i, b)
		}
	}
	if m := r.St.MaxRange(0, len(r.Buf)); m != 0 {
		t.Fatalf("recycled segment stamp max %d, want 0", m)
	}
}

func TestSizesDoNotMix(t *testing.T) {
	Put(Get(256))
	if s := Get(1024); len(s.Buf) != 1024 {
		t.Fatalf("pool returned %d-byte segment for 1024-byte request", len(s.Buf))
	}
}

// TestPutScrubbedCoversZeroStampedWrites guards the scrub contract against
// writes stamped at virtual time 0 (ops issued during world setup): such a
// write raises no block summary, so the scrubbed recycle must fall back to
// a full wipe rather than hand out a dirty "all-zero" segment.
func TestPutScrubbedCoversZeroStampedWrites(t *testing.T) {
	s := Get(1 << 10)
	s.Buf[40] = 7
	s.St.Set(40, 0) // stamped store at virtual time 0
	PutScrubbed(s)
	r := Get(1 << 10)
	for i, b := range r.Buf {
		if b != 0 {
			t.Fatalf("recycled segment byte %d = %d after zero-stamped write, want 0", i, b)
		}
	}
}

// TestScrubbedOddSize recycles a segment whose byte length is not a multiple
// of 8: the stamp summaries cover the 8-byte-rounded extent, and the scrub's
// wipe must clamp to the real buffer instead of running past it.
func TestScrubbedOddSize(t *testing.T) {
	s := Get(1001)
	s.St.Set(996, 5) // stamps the final, partially-covered word
	PutScrubbed(s)   // must not panic
	s2 := Get(1001)
	for i, b := range s2.Buf {
		if b != 0 {
			t.Fatalf("recycled odd-size buffer dirty at %d", i)
		}
	}
	if s2.St.MaxRange(0, 1001) != 0 {
		t.Fatal("recycled odd-size stamps not reset")
	}
}
