package mprun

import (
	"fmt"
	"sync/atomic"
	"unsafe"
)

// Shared-memory world layout. One file, mapped MAP_SHARED by the launcher
// and every worker process, holds everything two ranks ever both touch:
//
//	header   (1 page)   world parameters + the abort flag
//	rank[i]  (128 B)    doorbell generation, published pace clock, NIC busy
//	                    interval + its spinlock
//	wait[i]  (ceil(ranks/64) × 8 B per rank)
//	                    the doorbell waiter bitset: bit r of rank i's words
//	                    is set while rank r is blocked in WaitDoor on i (a
//	                    multi-word mask, so worlds are not capped at 64
//	                    ranks by the waiter bookkeeping)
//	pace     (ceil(ranks/64) × 8 B, one global bitset)
//	                    the pacing waiter bitset: bit r is set while rank r
//	                    is parked in Pace waiting for the slowest clock to
//	                    advance; PublishClock pokes the set bits when its
//	                    rank's clock has moved half a window
//	dir[i]   (32 B × maxRegions per rank)
//	                    the region directory: each owner publishes its
//	                    registrations here in key order
//	arena[i] (ArenaBytes per rank)
//	                    registered memory. Every segment is laid out as
//	                    [buffer][stamp int64 slab][stamp uint32 slab], so a
//	                    directory entry needs only (offset, length): peers
//	                    derive the stamp slabs with timing.StampSlabLens.
//
// All multi-word fields are 8-byte aligned; cross-process synchronization
// uses sync/atomic on the mapped words, which on a cache-coherent machine
// gives the same acquire/release ordering between processes as between
// goroutines. DESIGN.md §8 documents the layout and its ordering contracts.
const (
	shmMagic   = 0x666f4d50_72756e31 // "foMPrun1"
	shmVersion = 4                   // v4: hdrFailRank blames the abort on a rank

	hdrMagic      = 0  // u64
	hdrVersion    = 8  // u64
	hdrRanks      = 16 // u64
	hdrRPN        = 24 // u64
	hdrPaceWindow = 32 // i64
	hdrArenaBytes = 40 // u64
	hdrMaxRegions = 48 // u64
	hdrAbort      = 56 // u32
	// hdrFailRank carries the world rank blamed for the abort, biased by one
	// (0 = no culprit known); first blame wins via CAS. Waiters parked in the
	// arena read it to upgrade their abort panic to *simnet.ErrPeerFailed.
	hdrFailRank = 60 // u32
	hdrBytes    = 4096

	rankStride  = 128
	rnDoorGen   = 0  // u64
	rnPaceClock = 16 // i64
	rnNicLock   = 24 // u32 spinlock
	rnNicStart  = 32 // i64
	rnNicBusy   = 40 // i64

	entryStride = 32
	enState     = 0  // u32: entryEmpty/entryLive/entryDead
	enBufOff    = 8  // u64, arena-relative
	enBufLen    = 16 // u64

	entryEmpty = 0
	entryLive  = 1
	entryDead  = 2

	// maxRegions bounds each rank's registrations over the world lifetime
	// (keys are never reused). Worlds register a handful of regions per
	// window; 1024 is two orders of magnitude of headroom.
	maxRegions = 1024

	// MaxRanks bounds a multi-process world. The waiter bitset scales with
	// the rank count, so the cap is no longer the mask width; what remains
	// is a sanity bound on how many OS processes one launcher should drive
	// (the in-process backend is the one that runs simulation-scale worlds,
	// p=4096).
	MaxRanks = 1024

	pageAlign = 4096
)

func alignUp(n, a int) int { return (n + a - 1) &^ (a - 1) }

// layout computes the section offsets of a world's shared file.
type layout struct {
	ranks      int
	arenaBytes int
	maskWords  int // 64-bit words per waiter bitset: ceil(ranks/64)
	waitOff    int
	paceOff    int
	dirOff     int
	arenaOff   int
	total      int
}

func layoutFor(ranks, arenaBytes int) layout {
	l := layout{ranks: ranks, arenaBytes: arenaBytes, maskWords: (ranks + 63) / 64}
	l.waitOff = hdrBytes + ranks*rankStride
	l.paceOff = l.waitOff + ranks*l.maskWords*8
	l.dirOff = l.paceOff + l.maskWords*8
	l.arenaOff = alignUp(l.dirOff+ranks*maxRegions*entryStride, pageAlign)
	l.total = l.arenaOff + ranks*arenaBytes
	return l
}

func (l layout) rankOff(r int) int { return hdrBytes + r*rankStride }

// waiterOff returns the offset of word w of rank r's doorbell waiter bitset.
func (l layout) waiterOff(r, w int) int { return l.waitOff + (r*l.maskWords+w)*8 }

// paceWaiterOff returns the offset of word w of the global pacing waiter
// bitset.
func (l layout) paceWaiterOff(w int) int { return l.paceOff + w*8 }

func (l layout) entryOff(r, k int) int { return l.dirOff + (r*maxRegions+k)*entryStride }
func (l layout) arenaBase(r int) int   { return l.arenaOff + r*l.arenaBytes }
func (l layout) arena(m []byte, r int) []byte {
	base := l.arenaBase(r)
	return m[base : base+l.arenaBytes : base+l.arenaBytes]
}

// Typed views of aligned words inside the mapping. The byte offsets above
// are all 4- or 8-aligned and the mapping is page-aligned, so the casts
// satisfy sync/atomic's alignment requirements.
func u64at(m []byte, off int) *uint64 { return (*uint64)(unsafe.Pointer(&m[off])) }
func i64at(m []byte, off int) *int64  { return (*int64)(unsafe.Pointer(&m[off])) }
func u32at(m []byte, off int) *uint32 { return (*uint32)(unsafe.Pointer(&m[off])) }

// i64slice and u32slice view a byte extent as a typed slab (stamp arrays).
func i64slice(m []byte, off, n int) []int64 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&m[off])), n)
}

func u32slice(m []byte, off, n int) []uint32 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&m[off])), n)
}

// arenaOffset locates buf inside arena, or reports that it is foreign.
func arenaOffset(arena, buf []byte) (int, bool) {
	if len(buf) == 0 {
		return 0, true
	}
	base := uintptr(unsafe.Pointer(&arena[0]))
	p := uintptr(unsafe.Pointer(&buf[0]))
	if p < base || p+uintptr(len(buf)) > base+uintptr(len(arena)) {
		return 0, false
	}
	return int(p - base), true
}

// checkHeader validates a mapped world against the joiner's expectations.
func checkHeader(m []byte, o ArenaConfig) error {
	if len(m) < hdrBytes {
		return fmt.Errorf("mprun: shared segment truncated (%d bytes)", len(m))
	}
	if g := atomic.LoadUint64(u64at(m, hdrMagic)); g != shmMagic {
		return fmt.Errorf("mprun: bad shared-segment magic %#x", g)
	}
	if v := atomic.LoadUint64(u64at(m, hdrVersion)); v != shmVersion {
		return fmt.Errorf("mprun: shared-segment layout version %d, want %d", v, shmVersion)
	}
	for _, c := range []struct {
		name string
		off  int
		want uint64
	}{
		{"rank count", hdrRanks, uint64(o.Ranks)},
		{"ranks per node", hdrRPN, uint64(o.RanksPerNode)},
		{"pacing window", hdrPaceWindow, uint64(o.PaceWindowNs)},
		{"arena bytes", hdrArenaBytes, uint64(o.ArenaBytes)},
		{"region directory size", hdrMaxRegions, maxRegions},
	} {
		if g := atomic.LoadUint64(u64at(m, c.off)); g != c.want {
			return fmt.Errorf("mprun: %s mismatch: launcher created the world with %d, this program wants %d (the worker binary must run the same spmd.Config as the launcher)", c.name, g, c.want)
		}
	}
	return nil
}
