// Package mprun is the multi-process transport backend: each rank of an
// SPMD world is an OS process, registered memory lives in one mmap-shared
// file (the paper's XPMEM-style same-node fast path made real — remote puts
// and gets are memcpys into the target's mapped segment), and control plus
// doorbell traffic travels over Unix-domain sockets. The package has two
// faces:
//
//   - Launch, called in the launcher process (a program whose spmd.Config
//     selected BackendMP, or cmd/fompi-run), creates the world — the shared
//     segment, the control socket — and re-executes the worker argv once per
//     rank with FOMPI_MP_DIR/FOMPI_MP_RANK in the environment.
//   - Join, called in a worker (detected by IsWorker), maps the segment and
//     returns a World implementing simnet.Transport for its rank.
//
// Everything virtual-time lives above the Transport line in simnet.Endpoint
// and internal/timing, and the shadow-stamp arrays themselves are laid out
// inside the shared segment, so a multi-process run's clocks, stamps, and
// checksums are bit-identical to the in-process backend's (the conformance
// suite in internal/transporttest pins this). See DESIGN.md §8 for the wire
// layout and the cross-process ordering argument.
package mprun

import (
	"bufio"
	"fmt"
	"math/bits"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"fompi/internal/rankio"
	"fompi/internal/segpool"
	"fompi/internal/simnet"
	"fompi/internal/timing"
)

const (
	envDir  = "FOMPI_MP_DIR"
	envRank = "FOMPI_MP_RANK"

	bootTimeout  = 60 * time.Second
	abortGrace   = 20 * time.Second
	doorWaitMin  = 200 * time.Microsecond
	doorWaitMax  = 5 * time.Millisecond
	paceSleepMin = 50 * time.Microsecond
	paceSleepMax = 2 * time.Millisecond
)

// Options describes a multi-process world. Launcher and workers must agree
// on every field (Join validates against the header the launcher wrote).
type Options struct {
	Ranks        int
	RanksPerNode int
	PaceWindowNs int64
	// ArenaBytes is each rank's registered-memory arena inside the shared
	// segment; AllocSeg carves registrations from it.
	ArenaBytes int
	// Relaunch is the worker argv; nil re-executes os.Args.
	Relaunch []string
	// TagOutput prefixes each worker's stdout/stderr with "[rank N]"
	// (cmd/fompi-run sets it).
	TagOutput bool
}

func (o Options) withDefaults() Options {
	if o.Ranks <= 0 {
		o.Ranks = 1
	}
	if o.RanksPerNode <= 0 {
		o.RanksPerNode = 1
	}
	if o.ArenaBytes <= 0 {
		o.ArenaBytes = 16 << 20
	}
	o.ArenaBytes = alignUp(o.ArenaBytes, pageAlign)
	return o
}

// IsWorker reports whether this process was launched as a worker rank of a
// multi-process world (the launcher environment is present).
func IsWorker() bool { return os.Getenv(envRank) != "" }

func shmPath(dir string) string { return filepath.Join(dir, "shm") }
func ctlPath(dir string) string { return filepath.Join(dir, "ctl") }
func doorPath(dir string, r int) string {
	return filepath.Join(dir, fmt.Sprintf("door.%d", r))
}

// World is one process's attachment to a multi-process world; in a worker it
// implements simnet.Transport for that worker's rank.
type World struct {
	opts Options
	rank int // -1 in the launcher
	dir  string
	m    []byte
	lay  layout

	ctl   *net.UnixConn // stream to the launcher (workers only)
	ctlRd *bufio.Reader
	door  *net.UnixConn   // this rank's bound doorbell socket
	peers []*net.UnixConn // lazily dialed per-destination doorbell conns

	arenaPos int
	freeSegs map[int][]*segpool.Seg
	nextKey  uint32
	regions  [][]*simnet.Region // lazily built (rank, key) views

	done      chan struct{}
	abortOnce sync.Once
	hookMu    sync.Mutex
	hooks     []func()
	watchStop chan struct{}
}

func (w *World) mapWorld(o Options, dir string, create bool) error {
	w.opts, w.dir = o, dir
	w.lay = layoutFor(o.Ranks, o.ArenaBytes)
	flags := os.O_RDWR
	if create {
		flags |= os.O_CREATE | os.O_EXCL
	}
	f, err := os.OpenFile(shmPath(dir), flags, 0o600)
	if err != nil {
		return fmt.Errorf("mprun: open shared segment: %w", err)
	}
	defer f.Close()
	if create {
		if err := f.Truncate(int64(w.lay.total)); err != nil {
			return fmt.Errorf("mprun: size shared segment: %w", err)
		}
	} else if st, err := f.Stat(); err != nil || st.Size() != int64(w.lay.total) {
		return fmt.Errorf("mprun: shared segment is %v bytes, want %d (launcher/worker config mismatch?)", fileSize(st, err), w.lay.total)
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, w.lay.total,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return fmt.Errorf("mprun: mmap shared segment: %w", err)
	}
	w.m = m
	if create {
		atomic.StoreUint64(u64at(m, hdrRanks), uint64(o.Ranks))
		atomic.StoreUint64(u64at(m, hdrRPN), uint64(o.RanksPerNode))
		atomic.StoreInt64(i64at(m, hdrPaceWindow), o.PaceWindowNs)
		atomic.StoreUint64(u64at(m, hdrArenaBytes), uint64(o.ArenaBytes))
		atomic.StoreUint64(u64at(m, hdrMaxRegions), maxRegions)
		atomic.StoreUint64(u64at(m, hdrVersion), shmVersion)
		atomic.StoreUint64(u64at(m, hdrMagic), shmMagic)
	} else if err := checkHeader(m, o); err != nil {
		return err
	}
	w.peers = make([]*net.UnixConn, o.Ranks)
	w.regions = make([][]*simnet.Region, o.Ranks)
	w.freeSegs = map[int][]*segpool.Seg{}
	w.done = make(chan struct{})
	w.watchStop = make(chan struct{})
	return nil
}

func fileSize(st os.FileInfo, err error) any {
	if err != nil {
		return err
	}
	return st.Size()
}

// Launch creates a multi-process world and runs worker processes through it.
// It blocks until every worker exits and returns nil only if all of them
// finished cleanly. Worker stdout/stderr pass through to this process.
func Launch(o Options) error {
	o = o.withDefaults()
	if o.Ranks > MaxRanks {
		return fmt.Errorf("mprun: %d ranks exceed the multi-process backend's limit of %d (use the in-process backend for large worlds)", o.Ranks, MaxRanks)
	}
	argv := o.Relaunch
	if len(argv) == 0 {
		argv = os.Args
	}
	dir, err := os.MkdirTemp("", "fompi-mp-*")
	if err != nil {
		return fmt.Errorf("mprun: create world dir: %w", err)
	}
	defer os.RemoveAll(dir)

	w := &World{rank: -1}
	if err := w.mapWorld(o, dir, true); err != nil {
		return err
	}
	defer syscall.Munmap(w.m)

	ln, err := net.ListenUnix("unix", &net.UnixAddr{Name: ctlPath(dir), Net: "unix"})
	if err != nil {
		return fmt.Errorf("mprun: listen control socket: %w", err)
	}
	defer ln.Close()

	cmds := make([]*rankio.Cmd, o.Ranks)
	for r := 0; r < o.Ranks; r++ {
		env := []string{envDir + "=" + dir, fmt.Sprintf("%s=%d", envRank, r)}
		cmd, err := rankio.Start(argv, env, r, o.TagOutput)
		if err != nil {
			w.abortWorld()
			rankio.KillAll(cmds[:r])
			rankio.ReapAll(cmds[:r])
			return fmt.Errorf("mprun: spawn rank %d (%s): %w", r, argv[0], err)
		}
		cmds[r] = cmd
	}

	// Bootstrap barrier: accept one control connection per rank, collect the
	// READY lines (sent after each worker registered its setup regions), then
	// release everyone with GO.
	conns := make([]*net.UnixConn, o.Ranks)
	deadline := time.Now().Add(bootTimeout)
	for i := 0; i < o.Ranks; i++ {
		ln.SetDeadline(deadline)
		c, err := ln.AcceptUnix()
		if err != nil {
			w.abortWorld()
			rankio.KillAll(cmds)
			rankio.ReapAll(cmds)
			return fmt.Errorf("mprun: worker bootstrap timed out (%d of %d connected): %w", i, o.Ranks, err)
		}
		c.SetReadDeadline(deadline)
		var r int
		if _, err := fmt.Fscanf(bufio.NewReader(c), "READY %d\n", &r); err != nil || r < 0 || r >= o.Ranks || conns[r] != nil {
			w.abortWorld()
			rankio.KillAll(cmds)
			rankio.ReapAll(cmds)
			return fmt.Errorf("mprun: bad READY handshake from a worker: %v", err)
		}
		c.SetReadDeadline(time.Time{})
		conns[r] = c
	}
	for _, c := range conns {
		if _, err := c.Write([]byte("GO\n")); err != nil {
			w.abortWorld()
			rankio.KillAll(cmds)
			rankio.ReapAll(cmds)
			return fmt.Errorf("mprun: release workers: %w", err)
		}
	}

	// Collect final status lines and process exits. On the first failure,
	// abort the world so blocked peers unwind, give them a grace period, and
	// kill whatever is left. The first non-zero worker exit code rides the
	// returned error (rankio.RankError) so launchers can propagate it.
	type status struct {
		rank int
		msg  string // "" = clean
		code int
	}
	results := make(chan status, o.Ranks)
	for r := range conns {
		go func(r int, c *net.UnixConn) {
			line, err := bufio.NewReader(c).ReadString('\n')
			line = strings.TrimSpace(line)
			code := cmds[r].Wait()
			switch {
			case strings.HasPrefix(line, "FAIL "):
				msg := strings.TrimSpace(strings.TrimPrefix(line, fmt.Sprintf("FAIL %d", r)))
				results <- status{r, msg, code}
			case strings.HasPrefix(line, "DONE ") && code == 0:
				results <- status{r, "", 0}
			case err != nil && code == 0:
				results <- status{r, fmt.Sprintf("control channel closed early: %v", err), 0}
			default:
				results <- status{r, fmt.Sprintf("exited with status %d without DONE", code), code}
			}
		}(r, conns[r])
	}
	var firstErr error
	firstCode := 0
	killed := false
	for i := 0; i < o.Ranks; i++ {
		var st status
		if firstErr == nil {
			st = <-results
		} else {
			select {
			case st = <-results:
			case <-time.After(abortGrace):
				if !killed {
					rankio.KillAll(cmds)
					killed = true
				}
				st = <-results
			}
		}
		if st.msg != "" {
			if firstErr == nil || !strings.Contains(st.msg, "aborted by peer") {
				err := fmt.Errorf("mprun: rank %d: %s", st.rank, st.msg)
				if firstErr == nil || strings.Contains(firstErr.Error(), "aborted by peer") {
					firstErr = err
				}
			}
			if firstCode == 0 && st.code != 0 {
				firstCode = st.code
			}
			w.abortWorld()
		}
	}
	if firstErr != nil {
		if firstCode == 0 {
			firstCode = 1
		}
		return &rankio.RankError{Err: firstErr, Code: firstCode}
	}
	return nil
}

// Join attaches a worker process (spawned by Launch) to its world and
// returns the Transport for its rank. The caller registers its setup regions
// and then calls Ready to enter the bootstrap barrier.
func Join(o Options) (*World, error) {
	o = o.withDefaults()
	dir := os.Getenv(envDir)
	var rank int
	if _, err := fmt.Sscanf(os.Getenv(envRank), "%d", &rank); err != nil || dir == "" {
		return nil, fmt.Errorf("mprun: not a worker process (%s/%s unset)", envDir, envRank)
	}
	if rank < 0 || rank >= o.Ranks {
		return nil, fmt.Errorf("mprun: worker rank %d outside world of %d (launcher/worker config mismatch)", rank, o.Ranks)
	}
	w := &World{rank: rank}
	if err := w.mapWorld(o, dir, false); err != nil {
		return nil, err
	}
	door, err := net.ListenUnixgram("unixgram", &net.UnixAddr{Name: doorPath(dir, rank), Net: "unixgram"})
	if err != nil {
		return nil, fmt.Errorf("mprun: bind doorbell socket: %w", err)
	}
	w.door = door
	ctl, err := net.DialUnix("unix", nil, &net.UnixAddr{Name: ctlPath(dir), Net: "unix"})
	if err != nil {
		return nil, fmt.Errorf("mprun: dial control socket: %w", err)
	}
	w.ctl, w.ctlRd = ctl, bufio.NewReader(ctl)
	go w.watchAbort()
	return w, nil
}

// watchAbort surfaces a peer- or launcher-initiated abort to this process:
// it closes Done and runs the OnAbort hooks. Doorbell and pacing waits check
// the flag themselves on every heartbeat.
func (w *World) watchAbort() {
	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-w.watchStop:
			return
		case <-t.C:
			if atomic.LoadUint32(u32at(w.m, hdrAbort)) != 0 {
				w.localAbort()
				return
			}
		}
	}
}

// localAbort runs this process's abort consequences exactly once.
func (w *World) localAbort() {
	w.abortOnce.Do(func() {
		close(w.done)
		w.hookMu.Lock()
		hooks := append([]func(){}, w.hooks...)
		w.hookMu.Unlock()
		for _, fn := range hooks {
			fn()
		}
	})
}

// abortWorld marks the whole world aborted and wakes every rank.
func (w *World) abortWorld() {
	atomic.StoreUint32(u32at(w.m, hdrAbort), 1)
	for r := 0; r < w.opts.Ranks; r++ {
		atomic.AddUint64(u64at(w.m, w.lay.rankOff(r)+rnDoorGen), 1)
		w.sendDoor(r)
	}
	w.localAbort()
}

// Rank returns this process's rank (-1 in the launcher).
func (w *World) Rank() int { return w.rank }

// Ready enters the bootstrap barrier: it tells the launcher this rank's
// setup registrations are addressable and blocks until every rank's are.
func (w *World) Ready() {
	if _, err := fmt.Fprintf(w.ctl, "READY %d\n", w.rank); err != nil {
		panic(fmt.Sprintf("mprun: report READY: %v", err))
	}
	// A dead or wedged launcher must not strand workers: bound the wait.
	w.ctl.SetReadDeadline(time.Now().Add(bootTimeout))
	line, err := w.ctlRd.ReadString('\n')
	w.ctl.SetReadDeadline(time.Time{})
	if err != nil || strings.TrimSpace(line) != "GO" {
		panic(fmt.Sprintf("mprun: bootstrap barrier failed (%q, %v)", line, err))
	}
}

// Finish reports clean completion to the launcher.
func (w *World) Finish() {
	fmt.Fprintf(w.ctl, "DONE %d\n", w.rank)
	w.ctl.Close()
	close(w.watchStop)
}

// Fail aborts the world and reports msg to the launcher; the caller exits
// nonzero afterwards.
func (w *World) Fail(msg string) {
	w.abortWorld()
	msg = strings.ReplaceAll(msg, "\n", " ")
	fmt.Fprintf(w.ctl, "FAIL %d %s\n", w.rank, msg)
	w.ctl.Close()
}

// ---- simnet.Transport ----

var _ simnet.Transport = (*World)(nil)

// Size returns the number of ranks.
func (w *World) Size() int { return w.opts.Ranks }

// RanksPerNode returns the node width.
func (w *World) RanksPerNode() int { return w.opts.RanksPerNode }

// NodeOf returns the node index hosting rank r.
func (w *World) NodeOf(r int) int { return r / w.opts.RanksPerNode }

// SameNode reports whether ranks a and b share a node.
func (w *World) SameNode(a, b int) bool { return w.NodeOf(a) == w.NodeOf(b) }

// AllocSeg carves a zeroed segment — buffer plus shadow-stamp slabs, laid
// out contiguously so the region directory needs only (offset, length) —
// from this rank's shared-memory arena, reusing a recycled segment of the
// same size when one is free.
func (w *World) AllocSeg(rank, size int) *segpool.Seg {
	if rank != w.rank {
		panic("mprun: AllocSeg for a foreign rank")
	}
	if l := w.freeSegs[size]; len(l) > 0 {
		s := l[len(l)-1]
		w.freeSegs[size] = l[:len(l)-1]
		return s
	}
	n64, n32 := timing.StampSlabLens(size)
	bufLen := alignUp(size, 8)
	total := alignUp(bufLen+n64*8+n32*4, 64)
	if w.arenaPos+total > w.opts.ArenaBytes {
		panic(fmt.Sprintf("mprun: rank %d arena exhausted (%d of %d bytes used); raise Config.MPArenaBytes",
			w.rank, w.arenaPos, w.opts.ArenaBytes))
	}
	base := w.arenaPos
	w.arenaPos += total
	a := w.lay.arena(w.m, w.rank)
	buf := a[base : base+size : base+size]
	st := timing.NewStampsOver(
		i64slice(a, base+bufLen, n64),
		u32slice(a, base+bufLen+n64*8, n32), size)
	return &segpool.Seg{Buf: buf, St: st}
}

// RecycleSeg returns a segment to this rank's free list (see Transport).
func (w *World) RecycleSeg(rank int, s *segpool.Seg, scrubbed bool, extra ...segpool.Range) {
	if rank != w.rank {
		panic("mprun: RecycleSeg for a foreign rank")
	}
	if scrubbed {
		segpool.Scrub(s, extra...)
	} else {
		clear(s.Buf)
		s.St.Reset()
	}
	w.freeSegs[len(s.Buf)] = append(w.freeSegs[len(s.Buf)], s)
}

// RegisterRegion publishes a registration in the shared directory. The
// buffer must come from AllocSeg: remote processes can only reach the shared
// segment, so arbitrary heap memory (traditional windows over user buffers)
// is rejected with a clear fault.
func (w *World) RegisterRegion(rank int, reg *simnet.Region) simnet.Key {
	if rank != w.rank {
		panic("mprun: RegisterRegion for a foreign rank")
	}
	buf := reg.Bytes()
	a := w.lay.arena(w.m, w.rank)
	off, ok := arenaOffset(a, buf)
	if !ok {
		panic("mprun: the multi-process backend can only register transport-allocated memory (Endpoint.AllocSeg / Register); traditional windows over user buffers are in-process only")
	}
	k := w.nextKey
	if k >= maxRegions {
		panic(fmt.Sprintf("mprun: rank %d region directory full (%d registrations)", w.rank, maxRegions))
	}
	w.nextKey++
	e := w.lay.entryOff(w.rank, int(k))
	atomic.StoreUint64(u64at(w.m, e+enBufOff), uint64(off))
	atomic.StoreUint64(u64at(w.m, e+enBufLen), uint64(len(buf)))
	// The state store publishes the fields: peers load it with acquire
	// ordering before reading them.
	atomic.StoreUint32(u32at(w.m, e+enState), entryLive)
	w.regionsFor(w.rank)[k] = reg
	return simnet.Key(k)
}

// UnregisterRegion marks a registration dead; later remote accesses fault.
func (w *World) UnregisterRegion(rank int, k simnet.Key) {
	if rank != w.rank {
		panic("mprun: UnregisterRegion for a foreign rank")
	}
	atomic.StoreUint32(u32at(w.m, w.lay.entryOff(rank, int(k))+enState), entryDead)
	if int(k) < maxRegions {
		w.regionsFor(rank)[k] = nil
	}
}

func (w *World) regionsFor(rank int) []*simnet.Region {
	if w.regions[rank] == nil {
		w.regions[rank] = make([]*simnet.Region, maxRegions)
	}
	return w.regions[rank]
}

// LookupRegion resolves an address, materializing (and caching) a local view
// of the owner's registration: the buffer and stamp slabs are slices of the
// shared mapping, so stamp arithmetic runs on the same words in every
// process. Cached views carry the same staleness contract as the in-process
// fabric's copy-on-write table: a concurrent unregister may leave a reader
// holding the prior registration briefly.
func (w *World) LookupRegion(a simnet.Addr) *simnet.Region {
	if a.Rank < 0 || a.Rank >= w.opts.Ranks {
		panic(fmt.Sprintf("simnet: address names rank %d outside fabric of %d", a.Rank, w.opts.Ranks))
	}
	regs := w.regionsFor(a.Rank)
	if int(a.Key) >= maxRegions {
		panic(fmt.Sprintf("simnet: access to unregistered region (rank %d key %d)", a.Rank, a.Key))
	}
	e := w.lay.entryOff(a.Rank, int(a.Key))
	if atomic.LoadUint32(u32at(w.m, e+enState)) != entryLive {
		// Checked on cache hits too: the owner may have unregistered (and
		// its arena recycled the bytes) since this view was materialized —
		// the access must fault like the in-process fabric's nilled slot,
		// not silently write through a stale view.
		regs[a.Key] = nil
		panic(fmt.Sprintf("simnet: access to unregistered region (rank %d key %d)", a.Rank, a.Key))
	}
	if r := regs[a.Key]; r != nil {
		return r
	}
	off := int(atomic.LoadUint64(u64at(w.m, e+enBufOff)))
	ln := int(atomic.LoadUint64(u64at(w.m, e+enBufLen)))
	ar := w.lay.arena(w.m, a.Rank)
	buf := ar[off : off+ln : off+ln]
	n64, n32 := timing.StampSlabLens(ln)
	bufLen := alignUp(ln, 8)
	st := timing.NewStampsOver(
		i64slice(ar, off+bufLen, n64),
		u32slice(ar, off+bufLen+n64*8, n32), ln)
	reg := simnet.MakeRegion(a.Rank, a.Key, buf, st)
	regs[a.Key] = &reg
	return &reg
}

// ReserveNIC books the target rank's NIC busy interval under a shared-memory
// spinlock; the interval logic is identical to the in-process fabric's
// (including hole service for tardy bookings — see Fabric.reserveNIC).
func (w *World) ReserveNIC(rank int, arrival timing.Time, xfer int64) timing.Time {
	ro := w.lay.rankOff(rank)
	lk := u32at(w.m, ro+rnNicLock)
	for !atomic.CompareAndSwapUint32(lk, 0, 1) {
		runtime.Gosched()
	}
	start, busy := i64at(w.m, ro+rnNicStart), i64at(w.m, ro+rnNicBusy)
	a := int64(arrival)
	var res int64
	switch {
	case a >= *busy:
		*start, *busy = a, a+xfer
		res = *busy
	case a+xfer <= *start:
		res = a + xfer
	default:
		*busy += xfer
		res = *busy
	}
	atomic.StoreUint32(lk, 0)
	return timing.Time(res)
}

// PublishClock records a rank's virtual clock in the shared pacing table.
func (w *World) PublishClock(rank int, t timing.Time) {
	if w.opts.PaceWindowNs == 0 {
		return
	}
	atomic.StoreInt64(i64at(w.m, w.lay.rankOff(rank)+rnPaceClock), int64(t))
}

// PaceWindow returns the configured pacing window.
func (w *World) PaceWindow() int64 { return w.opts.PaceWindowNs }

func (w *World) paceMin() int64 {
	min := int64(1) << 62
	for r := 0; r < w.opts.Ranks; r++ {
		if c := atomic.LoadInt64(i64at(w.m, w.lay.rankOff(r)+rnPaceClock)); c < min {
			min = c
		}
	}
	return min
}

// Pace blocks rank while its clock runs more than the window ahead of the
// slowest published clock, sleeping with backoff between folds (worlds are
// at most MaxRanks wide, so a fold is one short scan). The stall valve
// matches the in-process discipline: a minimum that stays frozen across two
// heartbeats releases the rank for one operation.
func (w *World) Pace(rank int, t timing.Time) {
	if w.opts.PaceWindowNs == 0 {
		return
	}
	w.PublishClock(rank, t)
	me := int64(t)
	last, idle, d := int64(-1), 0, paceSleepMin
	for {
		min := w.paceMin()
		if me <= min+w.opts.PaceWindowNs || w.Aborted() {
			return
		}
		if min == last {
			if idle++; idle >= 2 {
				return
			}
		} else {
			last, idle = min, 0
		}
		time.Sleep(d)
		if d < paceSleepMax {
			d *= 2
		}
	}
}

// RingDoorbell bumps rank's doorbell generation and pokes every rank
// currently registered as waiting on it (one datagram each; a full socket
// buffer means wakeups are already pending, so send errors are ignored).
// The waiter set is a multi-word bitset — ceil(ranks/64) words — so worlds
// wider than 64 ranks ring exactly the parked ranks, wherever their bit
// lives; the common no-waiter case stays one atomic load per word.
func (w *World) RingDoorbell(rank int) {
	atomic.AddUint64(u64at(w.m, w.lay.rankOff(rank)+rnDoorGen), 1)
	for wd := 0; wd < w.lay.maskWords; wd++ {
		mask := atomic.LoadUint64(u64at(w.m, w.lay.waiterOff(rank, wd)))
		for mask != 0 {
			r := bits.TrailingZeros64(mask)
			mask &^= 1 << r
			w.sendDoor(wd*64 + r)
		}
	}
}

var doorByte = []byte{1}

func (w *World) sendDoor(r int) {
	c := w.peers[r]
	if c == nil {
		var err error
		c, err = net.DialUnix("unixgram", nil, &net.UnixAddr{Name: doorPath(w.dir, r), Net: "unixgram"})
		if err != nil {
			return // not bound yet or gone; the waiter's heartbeat covers it
		}
		w.peers[r] = c
	}
	c.SetWriteDeadline(time.Now().Add(2 * time.Millisecond))
	c.Write(doorByte)
}

// DoorGen samples rank's doorbell generation.
func (w *World) DoorGen(rank int) uint64 {
	return atomic.LoadUint64(u64at(w.m, w.lay.rankOff(rank)+rnDoorGen))
}

// WaitDoor blocks until rank's doorbell generation exceeds gen. The waiter
// registers itself in the watched rank's waiter bitset (its rank's bit in
// word rank/64) before re-checking the generation — the store/load pairing
// with RingDoorbell's bump-then-read makes lost wakeups impossible — then
// sleeps on its own doorbell socket with a heartbeat deadline (dropped
// datagrams and aborts are caught by the heartbeat re-check).
func (w *World) WaitDoor(rank int, gen uint64) uint64 {
	ro := w.lay.rankOff(rank)
	genp := u64at(w.m, ro+rnDoorGen)
	if g := atomic.LoadUint64(genp); g != gen {
		return g
	}
	wp := u64at(w.m, w.lay.waiterOff(rank, w.rank/64))
	bit := uint64(1) << uint(w.rank%64)
	for {
		old := atomic.LoadUint64(wp)
		if atomic.CompareAndSwapUint64(wp, old, old|bit) {
			break
		}
	}
	defer func() {
		for {
			old := atomic.LoadUint64(wp)
			if atomic.CompareAndSwapUint64(wp, old, old&^bit) {
				break
			}
		}
	}()
	var scratch [8]byte
	d := doorWaitMin
	for {
		if g := atomic.LoadUint64(genp); g != gen {
			return g
		}
		if w.Aborted() {
			panic(simnet.ErrAborted)
		}
		w.door.SetReadDeadline(time.Now().Add(d))
		w.door.Read(scratch[:])
		if d < doorWaitMax {
			d *= 2
		}
	}
}

// Abort marks the world dead and wakes every blocked waiter in every process.
func (w *World) Abort() { w.abortWorld() }

// Aborted reports whether the world has been torn down.
func (w *World) Aborted() bool { return atomic.LoadUint32(u32at(w.m, hdrAbort)) != 0 }

// Done returns a channel closed when this process observes the abort flag.
func (w *World) Done() <-chan struct{} { return w.done }

// OnAbort registers fn to run when this process observes the abort flag; if
// the world already aborted, fn runs immediately.
func (w *World) OnAbort(fn func()) {
	w.hookMu.Lock()
	w.hooks = append(w.hooks, fn)
	w.hookMu.Unlock()
	if w.Aborted() {
		w.localAbort()
	}
}
