// Package mprun is the multi-process transport backend: each rank of an
// SPMD world is an OS process, registered memory lives in one mmap-shared
// file (the paper's XPMEM-style same-node fast path made real — remote puts
// and gets are memcpys into the target's mapped segment), and control plus
// doorbell traffic travels over Unix-domain sockets. The package has two
// faces:
//
//   - Launch, called in the launcher process (a program whose spmd.Config
//     selected BackendMP, or cmd/fompi-run), creates the world — the shared
//     segment, the control socket — and re-executes the worker argv once per
//     rank with FOMPI_MP_DIR/FOMPI_MP_RANK in the environment.
//   - Join, called in a worker (detected by IsWorker), maps the segment and
//     returns a World implementing simnet.Transport for its rank.
//
// Everything virtual-time lives above the Transport line in simnet.Endpoint
// and internal/timing, and the shadow-stamp arrays themselves are laid out
// inside the shared segment, so a multi-process run's clocks, stamps, and
// checksums are bit-identical to the in-process backend's (the conformance
// suite in internal/transporttest pins this). See DESIGN.md §8 for the wire
// layout and the cross-process ordering argument.
package mprun

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"fompi/internal/rankio"
	"fompi/internal/segpool"
	"fompi/internal/simnet"
	"fompi/internal/timing"
)

const (
	envDir  = "FOMPI_MP_DIR"
	envRank = "FOMPI_MP_RANK"

	bootTimeout = 60 * time.Second
	// abortGrace bounds how long the launcher waits, after the first failure
	// report, for the surviving ranks to unwind through the abort flag on
	// their own before it force-kills them. Short enough that a SIGKILLed
	// rank still turns into a launcher exit within the ~10 s failure budget.
	abortGrace   = 8 * time.Second
	doorWaitMin  = 200 * time.Microsecond
	doorWaitMax  = 5 * time.Millisecond
	paceSleepMin = 50 * time.Microsecond
	paceSleepMax = 2 * time.Millisecond
)

// Options describes a multi-process world. Launcher and workers must agree
// on every field (Join validates against the header the launcher wrote).
type Options struct {
	Ranks        int
	RanksPerNode int
	PaceWindowNs int64
	// ArenaBytes is each rank's registered-memory arena inside the shared
	// segment; AllocSeg carves registrations from it.
	ArenaBytes int
	// Relaunch is the worker argv; nil re-executes os.Args.
	Relaunch []string
	// TagOutput prefixes each worker's stdout/stderr with "[rank N]"
	// (cmd/fompi-run sets it).
	TagOutput bool
}

func (o Options) withDefaults() Options {
	if o.Ranks <= 0 {
		o.Ranks = 1
	}
	if o.RanksPerNode <= 0 {
		o.RanksPerNode = 1
	}
	if o.ArenaBytes <= 0 {
		o.ArenaBytes = 16 << 20
	}
	o.ArenaBytes = alignUp(o.ArenaBytes, pageAlign)
	return o
}

// IsWorker reports whether this process was launched as a worker rank of a
// multi-process world (the launcher environment is present).
func IsWorker() bool { return os.Getenv(envRank) != "" }

func shmPath(dir string) string { return filepath.Join(dir, "shm") }
func ctlPath(dir string) string { return filepath.Join(dir, "ctl") }

// arenaCfg translates launcher options into the shared-arena header contract.
func arenaCfg(o Options) ArenaConfig {
	return ArenaConfig{
		Ranks:        o.Ranks,
		RanksPerNode: o.RanksPerNode,
		PaceWindowNs: o.PaceWindowNs,
		ArenaBytes:   o.ArenaBytes,
	}
}

// World is one process's attachment to a multi-process world; in a worker it
// implements simnet.Transport for that worker's rank. The shared-memory data
// plane lives in Arena (local index == global rank on this backend); World
// adds the launcher protocol and the abort plumbing.
type World struct {
	opts Options
	rank int // -1 in the launcher
	dir  string
	ar   *Arena

	ctl   *net.UnixConn // stream to the launcher (workers only)
	ctlRd *bufio.Reader

	done      chan struct{}
	abortOnce sync.Once
	hookMu    sync.Mutex
	hooks     []func()
	watchStop chan struct{}
}

func fileSize(st os.FileInfo, err error) any {
	if err != nil {
		return err
	}
	return st.Size()
}

// Launch creates a multi-process world and runs worker processes through it.
// It blocks until every worker exits and returns nil only if all of them
// finished cleanly. Worker stdout/stderr pass through to this process.
func Launch(o Options) error {
	o = o.withDefaults()
	if o.Ranks > MaxRanks {
		return fmt.Errorf("mprun: %d ranks exceed the multi-process backend's limit of %d (use the in-process backend for large worlds)", o.Ranks, MaxRanks)
	}
	argv := o.Relaunch
	if len(argv) == 0 {
		argv = os.Args
	}
	SweepStaleWorlds(staleWorldAge)
	dir, err := os.MkdirTemp("", "fompi-mp-*")
	if err != nil {
		return fmt.Errorf("mprun: create world dir: %w", err)
	}
	defer os.RemoveAll(dir)

	w := &World{opts: o, rank: -1, dir: dir,
		done: make(chan struct{}), watchStop: make(chan struct{})}
	ar, err := CreateArena(shmPath(dir), arenaCfg(o))
	if err != nil {
		return err
	}
	w.ar = ar
	defer ar.Close()

	ln, err := net.ListenUnix("unix", &net.UnixAddr{Name: ctlPath(dir), Net: "unix"})
	if err != nil {
		return fmt.Errorf("mprun: listen control socket: %w", err)
	}
	defer ln.Close()

	cmds := make([]*rankio.Cmd, o.Ranks)
	for r := 0; r < o.Ranks; r++ {
		env := []string{envDir + "=" + dir, fmt.Sprintf("%s=%d", envRank, r)}
		cmd, err := rankio.Start(argv, env, r, o.TagOutput)
		if err != nil {
			w.abortWorld()
			rankio.KillAll(cmds[:r])
			rankio.ReapAll(cmds[:r])
			return fmt.Errorf("mprun: spawn rank %d (%s): %w", r, argv[0], err)
		}
		cmds[r] = cmd
	}

	// Bootstrap barrier: accept one control connection per rank, collect the
	// READY lines (sent after each worker registered its setup regions), then
	// release everyone with GO.
	conns := make([]*net.UnixConn, o.Ranks)
	deadline := time.Now().Add(bootTimeout)
	for i := 0; i < o.Ranks; i++ {
		ln.SetDeadline(deadline)
		c, err := ln.AcceptUnix()
		if err != nil {
			w.abortWorld()
			rankio.KillAll(cmds)
			rankio.ReapAll(cmds)
			return fmt.Errorf("mprun: worker bootstrap timed out (%d of %d connected): %w", i, o.Ranks, err)
		}
		c.SetReadDeadline(deadline)
		var r int
		if _, err := fmt.Fscanf(bufio.NewReader(c), "READY %d\n", &r); err != nil || r < 0 || r >= o.Ranks || conns[r] != nil {
			w.abortWorld()
			rankio.KillAll(cmds)
			rankio.ReapAll(cmds)
			return fmt.Errorf("mprun: bad READY handshake from a worker: %v", err)
		}
		c.SetReadDeadline(time.Time{})
		conns[r] = c
	}
	for _, c := range conns {
		if _, err := c.Write([]byte("GO\n")); err != nil {
			w.abortWorld()
			rankio.KillAll(cmds)
			rankio.ReapAll(cmds)
			return fmt.Errorf("mprun: release workers: %w", err)
		}
	}

	// Collect final status lines and process exits. On the first failure,
	// abort the world so blocked peers unwind, give them a grace period, and
	// kill whatever is left. The first non-zero worker exit code rides the
	// returned error (rankio.RankError) so launchers can propagate it.
	type status struct {
		rank int
		msg  string // "" = clean
		code int
	}
	results := make(chan status, o.Ranks)
	for r := range conns {
		go func(r int, c *net.UnixConn) {
			line, err := bufio.NewReader(c).ReadString('\n')
			line = strings.TrimSpace(line)
			code := cmds[r].Wait()
			switch {
			case strings.HasPrefix(line, "FAIL "):
				msg := strings.TrimSpace(strings.TrimPrefix(line, fmt.Sprintf("FAIL %d", r)))
				results <- status{r, msg, code}
			case strings.HasPrefix(line, "DONE ") && code == 0:
				results <- status{r, "", 0}
			case err != nil && code == 0:
				results <- status{r, fmt.Sprintf("control channel closed early: %v", err), 0}
			default:
				results <- status{r, fmt.Sprintf("exited with status %d without DONE", code), code}
			}
		}(r, conns[r])
	}
	var firstErr error
	firstCode := 0
	firstRank := -1
	killed := false
	for i := 0; i < o.Ranks; i++ {
		var st status
		if firstErr == nil {
			st = <-results
		} else {
			select {
			case st = <-results:
			case <-time.After(abortGrace):
				if !killed {
					rankio.KillAll(cmds)
					killed = true
				}
				st = <-results
			}
		}
		if st.msg != "" {
			// Peer-abort symptoms never displace a causal report, and a
			// causal report displaces an earlier symptom: the world's error
			// should name the rank that died, not a rank that noticed.
			err := rankio.ClassifyFail(fmt.Errorf("mprun: rank %d: %s", st.rank, st.msg), st.msg)
			causal := !errors.Is(err, rankio.ErrPeerAbort)
			if firstErr == nil || (causal && errors.Is(firstErr, rankio.ErrPeerAbort)) {
				firstErr = err
				if causal {
					firstRank = st.rank
				}
			}
			if firstCode == 0 && st.code != 0 {
				firstCode = st.code
			}
			if causal {
				w.blameAbort(st.rank)
			} else {
				w.abortWorld()
			}
		}
	}
	if firstErr != nil {
		if firstCode == 0 {
			firstCode = 1
		}
		return &rankio.RankError{Err: firstErr, Code: firstCode, Rank: firstRank}
	}
	return nil
}

// staleWorldAge is how old an orphaned world directory must be before the
// sweeper touches it: far beyond any bootstrap window, so an in-flight
// Launch can never be mistaken for wreckage.
const staleWorldAge = 15 * time.Minute

// SweepStaleWorlds removes world directories (shared segment + sockets) that
// a killed launcher left under os.TempDir — Launch normally RemoveAlls its
// dir, so anything old with a dead control socket is wreckage. A directory
// is removed only if it is at least minAge old AND nothing answers on its
// control socket (a live world's launcher is always listening there). Runs
// best-effort at every Launch; returns the number of directories removed.
func SweepStaleWorlds(minAge time.Duration) int {
	dirs, _ := filepath.Glob(filepath.Join(os.TempDir(), "fompi-mp-*"))
	removed := 0
	for _, dir := range dirs {
		st, err := os.Stat(dir)
		if err != nil || !st.IsDir() || time.Since(st.ModTime()) < minAge {
			continue
		}
		if c, err := net.DialTimeout("unix", ctlPath(dir), 100*time.Millisecond); err == nil {
			c.Close()
			continue
		}
		if os.RemoveAll(dir) == nil {
			rankio.Logf("mprun", "removed stale world dir %s (left by a crashed launcher)", dir)
			removed++
		}
	}
	return removed
}

// Join attaches a worker process (spawned by Launch) to its world and
// returns the Transport for its rank. The caller registers its setup regions
// and then calls Ready to enter the bootstrap barrier.
func Join(o Options) (*World, error) {
	o = o.withDefaults()
	dir := os.Getenv(envDir)
	var rank int
	if _, err := fmt.Sscanf(os.Getenv(envRank), "%d", &rank); err != nil || dir == "" {
		return nil, fmt.Errorf("mprun: not a worker process (%s/%s unset)", envDir, envRank)
	}
	if rank < 0 || rank >= o.Ranks {
		return nil, fmt.Errorf("mprun: worker rank %d outside world of %d (launcher/worker config mismatch)", rank, o.Ranks)
	}
	w := &World{opts: o, rank: rank, dir: dir,
		done: make(chan struct{}), watchStop: make(chan struct{})}
	ar, err := OpenArena(shmPath(dir), arenaCfg(o), 0)
	if err != nil {
		return nil, err
	}
	if err := ar.Bind(rank); err != nil {
		return nil, err
	}
	w.ar = ar
	ctl, err := net.DialUnix("unix", nil, &net.UnixAddr{Name: ctlPath(dir), Net: "unix"})
	if err != nil {
		return nil, fmt.Errorf("mprun: dial control socket: %w", err)
	}
	w.ctl, w.ctlRd = ctl, bufio.NewReader(ctl)
	go w.watchAbort()
	return w, nil
}

// watchAbort surfaces a peer- or launcher-initiated abort to this process:
// it closes Done and runs the OnAbort hooks. Doorbell and pacing waits check
// the flag themselves on every heartbeat.
func (w *World) watchAbort() {
	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-w.watchStop:
			return
		case <-t.C:
			if w.ar.AbortFlag() {
				w.localAbort()
				return
			}
		}
	}
}

// localAbort runs this process's abort consequences exactly once.
func (w *World) localAbort() {
	w.abortOnce.Do(func() {
		close(w.done)
		w.hookMu.Lock()
		hooks := append([]func(){}, w.hooks...)
		w.hookMu.Unlock()
		for _, fn := range hooks {
			fn()
		}
	})
}

// abortWorld marks the whole world aborted and wakes every rank.
func (w *World) abortWorld() {
	w.ar.SetAbortFlag()
	w.localAbort()
}

// blameAbort is abortWorld plus a verdict: rank r's failure killed the
// world, so waiters in every process unwind with *simnet.ErrPeerFailed.
func (w *World) blameAbort(r int) {
	w.ar.SetAbortFlagBlaming(r)
	w.localAbort()
}

// Rank returns this process's rank (-1 in the launcher).
func (w *World) Rank() int { return w.rank }

// Ready enters the bootstrap barrier: it tells the launcher this rank's
// setup registrations are addressable and blocks until every rank's are.
func (w *World) Ready() {
	if _, err := fmt.Fprintf(w.ctl, "READY %d\n", w.rank); err != nil {
		panic(fmt.Sprintf("mprun: report READY: %v", err))
	}
	// A dead or wedged launcher must not strand workers: bound the wait.
	w.ctl.SetReadDeadline(time.Now().Add(bootTimeout))
	line, err := w.ctlRd.ReadString('\n')
	w.ctl.SetReadDeadline(time.Time{})
	if err != nil || strings.TrimSpace(line) != "GO" {
		panic(fmt.Sprintf("mprun: bootstrap barrier failed (%q, %v)", line, err))
	}
}

// Finish reports clean completion to the launcher.
func (w *World) Finish() {
	fmt.Fprintf(w.ctl, "DONE %d\n", w.rank)
	w.ctl.Close()
	close(w.watchStop)
}

// Fail aborts the world and reports msg to the launcher; the caller exits
// nonzero afterwards. A failure that is not itself a peer-abort symptom
// blames this rank, so peers unwind with a typed error naming it.
func (w *World) Fail(msg string) {
	if strings.Contains(msg, rankio.PeerAbortMsg) {
		w.abortWorld()
	} else {
		w.blameAbort(w.rank)
	}
	msg = strings.ReplaceAll(msg, "\n", " ")
	fmt.Fprintf(w.ctl, "FAIL %d %s\n", w.rank, msg)
	w.ctl.Close()
}

// ---- simnet.Transport ----

var _ simnet.Transport = (*World)(nil)

// Size returns the number of ranks.
func (w *World) Size() int { return w.opts.Ranks }

// RanksPerNode returns the node width.
func (w *World) RanksPerNode() int { return w.opts.RanksPerNode }

// NodeOf returns the node index hosting rank r.
func (w *World) NodeOf(r int) int { return r / w.opts.RanksPerNode }

// SameNode reports whether ranks a and b share a node.
func (w *World) SameNode(a, b int) bool { return w.NodeOf(a) == w.NodeOf(b) }

// AllocSeg carves a zeroed segment — buffer plus shadow-stamp slabs, laid
// out contiguously so the region directory needs only (offset, length) —
// from this rank's shared-memory arena, reusing a recycled segment of the
// same size when one is free.
func (w *World) AllocSeg(rank, size int) *segpool.Seg {
	if rank != w.rank {
		panic("mprun: AllocSeg for a foreign rank")
	}
	return w.ar.AllocSeg(rank, size)
}

// RecycleSeg returns a segment to this rank's free list (see Transport).
func (w *World) RecycleSeg(rank int, s *segpool.Seg, scrubbed bool, extra ...segpool.Range) {
	if rank != w.rank {
		panic("mprun: RecycleSeg for a foreign rank")
	}
	w.ar.Recycle(s, scrubbed, extra...)
}

// RegisterRegion publishes a registration in the shared directory. The
// buffer must come from AllocSeg: remote processes can only reach the shared
// segment, so arbitrary heap memory (traditional windows over user buffers)
// is rejected with a clear fault.
func (w *World) RegisterRegion(rank int, reg *simnet.Region) simnet.Key {
	if rank != w.rank {
		panic("mprun: RegisterRegion for a foreign rank")
	}
	return simnet.Key(w.ar.Register(rank, reg))
}

// UnregisterRegion marks a registration dead; later remote accesses fault.
func (w *World) UnregisterRegion(rank int, k simnet.Key) {
	if rank != w.rank {
		panic("mprun: UnregisterRegion for a foreign rank")
	}
	w.ar.Unregister(rank, uint32(k))
}

// LookupRegion resolves an address, materializing (and caching) a local view
// of the owner's registration (see Arena.Lookup; on this backend local index
// and world rank coincide).
func (w *World) LookupRegion(a simnet.Addr) *simnet.Region {
	if a.Rank < 0 || a.Rank >= w.opts.Ranks {
		panic(fmt.Sprintf("simnet: address names rank %d outside fabric of %d", a.Rank, w.opts.Ranks))
	}
	return w.ar.Lookup(a.Rank, uint32(a.Key), a.Rank)
}

// ReserveNIC books the target rank's NIC busy interval under a shared-memory
// spinlock; the interval logic is identical to the in-process fabric's
// (including hole service for tardy bookings — see Fabric.reserveNIC).
func (w *World) ReserveNIC(rank int, arrival timing.Time, xfer int64) timing.Time {
	return w.ar.ReserveNIC(rank, arrival, xfer)
}

// PublishClock records a rank's virtual clock in the shared pacing table.
func (w *World) PublishClock(rank int, t timing.Time) { w.ar.PublishClock(rank, t) }

// PaceWindow returns the configured pacing window.
func (w *World) PaceWindow() int64 { return w.opts.PaceWindowNs }

// Pace blocks rank while its clock runs more than the window ahead of the
// slowest published clock, parked on the doorbell socket until an advancing
// peer's PublishClock pokes it (see Arena.Pace for the valve discipline).
func (w *World) Pace(rank int, t timing.Time) { w.ar.Pace(rank, t, w.Aborted) }

// RingDoorbell bumps rank's doorbell generation and pokes every rank
// currently registered as waiting on it (see Arena.Ring).
func (w *World) RingDoorbell(rank int) { w.ar.Ring(rank) }

// DoorGen samples rank's doorbell generation.
func (w *World) DoorGen(rank int) uint64 { return w.ar.DoorGen(rank) }

// WaitDoor blocks until rank's doorbell generation exceeds gen (see
// Arena.WaitDoor for the lost-wakeup argument).
func (w *World) WaitDoor(rank int, gen uint64) uint64 {
	return w.ar.WaitDoor(rank, gen, w.Aborted)
}

// Abort marks the world dead and wakes every blocked waiter in every process.
func (w *World) Abort() { w.abortWorld() }

// Aborted reports whether the world has been torn down.
func (w *World) Aborted() bool { return w.ar.AbortFlag() }

// Done returns a channel closed when this process observes the abort flag.
func (w *World) Done() <-chan struct{} { return w.done }

// OnAbort registers fn to run when this process observes the abort flag; if
// the world already aborted, fn runs immediately.
func (w *World) OnAbort(fn func()) {
	w.hookMu.Lock()
	w.hooks = append(w.hooks, fn)
	w.hookMu.Unlock()
	if w.Aborted() {
		w.localAbort()
	}
}
