package mprun

import (
	"fmt"
	"math/bits"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"fompi/internal/segpool"
	"fompi/internal/simnet"
	"fompi/internal/telemetry"
	"fompi/internal/timing"
)

// Arena-side telemetry. The pacing and doorbell names are shared with the
// other backends (the registry is idempotent by name); the recycle counters
// mirror segpool's in-process pool for arena-backed segments.
var (
	mPaceParks   = telemetry.NewCounter("pace.parks")
	mPaceParkNs  = telemetry.NewHistogram("pace.park_ns")
	mPaceStalls  = telemetry.NewCounter("pace.stalls")
	mPacePokes   = telemetry.NewCounter("pace.pokes")
	mDoorRings   = telemetry.NewCounter("door.rings")
	mRecycles    = telemetry.NewCounter("seg.recycle")
	mRecycleScrb = telemetry.NewCounter("seg.recycle_scrubbed")
)

// ArenaConfig describes one shared-memory arena: how many local ranks map it,
// how much registered memory each gets, and the world parameters the header
// validates (every mapper must agree on all of them).
type ArenaConfig struct {
	Ranks        int // ranks sharing this mapping (local indices 0..Ranks-1)
	RanksPerNode int
	PaceWindowNs int64
	ArenaBytes   int // registered-memory bytes per local rank
}

func (c ArenaConfig) withDefaults() ArenaConfig {
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.RanksPerNode <= 0 {
		c.RanksPerNode = 1
	}
	if c.ArenaBytes <= 0 {
		c.ArenaBytes = 16 << 20
	}
	c.ArenaBytes = alignUp(c.ArenaBytes, pageAlign)
	return c
}

// Arena is the mmap-shared data plane of the process-based backends, factored
// so it can serve two masters: the multi-process backend maps one Arena across
// its whole world (local index == global rank), and the hybrid backend maps
// one Arena per physical host (local indices are the host's ranks in ascending
// global-rank order, and the off-host half of the world travels over TCP).
// Everything two co-located ranks ever both touch lives in the mapping — the
// region directory, the stamp slabs, doorbell generations, NIC intervals,
// pacing clocks — plus one Unix datagram socket per local rank for wakeups.
type Arena struct {
	cfg  ArenaConfig
	path string
	m    []byte
	lay  layout
	self int // local index of this process, -1 until Bind

	door    *net.UnixConn // this rank's bound doorbell socket
	peersMu sync.Mutex
	peers   []*net.UnixConn // lazily dialed per-destination doorbell conns

	arenaPos int
	freeSegs map[int][]*segpool.Seg
	nextKey  uint32
	regions  [][]*simnet.Region // lazily built (local, key) views

	lastPoke int64 // pacing: own clock at the last waiter poke
}

// doorSockPath returns the doorbell socket path of local rank n, derived from
// the arena path so a world needs no directory of its own.
func doorSockPath(path string, n int) string {
	return fmt.Sprintf("%s.door.%d", path, n)
}

func (a *Arena) initMaps() {
	a.peers = make([]*net.UnixConn, a.cfg.Ranks)
	a.regions = make([][]*simnet.Region, a.cfg.Ranks)
	a.freeSegs = map[int][]*segpool.Seg{}
	a.self = -1
}

// CreateArena creates and maps the shared file at path (which must not
// exist). The header's magic word is stored last, so concurrent OpenArena
// callers never observe a half-initialized mapping.
func CreateArena(path string, cfg ArenaConfig) (*Arena, error) {
	cfg = cfg.withDefaults()
	a := &Arena{cfg: cfg, path: path, lay: layoutFor(cfg.Ranks, cfg.ArenaBytes)}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, fmt.Errorf("mprun: create shared segment: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(int64(a.lay.total)); err != nil {
		os.Remove(path)
		return nil, fmt.Errorf("mprun: size shared segment: %w", err)
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, a.lay.total,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		os.Remove(path)
		return nil, fmt.Errorf("mprun: mmap shared segment: %w", err)
	}
	a.m = m
	atomic.StoreUint64(u64at(m, hdrRanks), uint64(cfg.Ranks))
	atomic.StoreUint64(u64at(m, hdrRPN), uint64(cfg.RanksPerNode))
	atomic.StoreInt64(i64at(m, hdrPaceWindow), cfg.PaceWindowNs)
	atomic.StoreUint64(u64at(m, hdrArenaBytes), uint64(cfg.ArenaBytes))
	atomic.StoreUint64(u64at(m, hdrMaxRegions), maxRegions)
	atomic.StoreUint64(u64at(m, hdrVersion), shmVersion)
	atomic.StoreUint64(u64at(m, hdrMagic), shmMagic)
	a.initMaps()
	return a, nil
}

// OpenArena maps the shared file at path created by a CreateArena peer,
// retrying for up to wait (zero means the file must already be complete, the
// launcher-creates-before-spawn case). The magic word published last by the
// creator is the readiness signal.
func OpenArena(path string, cfg ArenaConfig, wait time.Duration) (*Arena, error) {
	cfg = cfg.withDefaults()
	a := &Arena{cfg: cfg, path: path, lay: layoutFor(cfg.Ranks, cfg.ArenaBytes)}
	deadline := time.Now().Add(wait)
	var lastErr error
	for {
		lastErr = a.tryOpen()
		if lastErr == nil {
			a.initMaps()
			return a, nil
		}
		if time.Now().After(deadline) {
			return nil, lastErr
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (a *Arena) tryOpen() error {
	f, err := os.OpenFile(a.path, os.O_RDWR, 0o600)
	if err != nil {
		return fmt.Errorf("mprun: open shared segment: %w", err)
	}
	defer f.Close()
	if st, err := f.Stat(); err != nil || st.Size() != int64(a.lay.total) {
		return fmt.Errorf("mprun: shared segment is %v bytes, want %d (launcher/worker config mismatch?)", fileSize(st, err), a.lay.total)
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, a.lay.total,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return fmt.Errorf("mprun: mmap shared segment: %w", err)
	}
	if err := checkHeader(m, a.cfg); err != nil {
		syscall.Munmap(m)
		return err
	}
	a.m = m
	return nil
}

// Bind attaches this process as local rank self: it binds the rank's doorbell
// socket (removing a stale one from a crashed earlier world first). Mappers
// that only ring or abort (the mp launcher) skip it.
func (a *Arena) Bind(self int) error {
	os.Remove(doorSockPath(a.path, self))
	door, err := net.ListenUnixgram("unixgram",
		&net.UnixAddr{Name: doorSockPath(a.path, self), Net: "unixgram"})
	if err != nil {
		return fmt.Errorf("mprun: bind doorbell socket: %w", err)
	}
	a.self, a.door = self, door
	return nil
}

// Unlink removes the shared file (mappings survive); the creator calls it
// once every local rank has mapped, so a crashed world leaves nothing behind.
func (a *Arena) Unlink() { os.Remove(a.path) }

// Close unmaps the arena and closes this process's sockets.
func (a *Arena) Close() {
	if a.door != nil {
		a.door.Close()
		os.Remove(doorSockPath(a.path, a.self))
	}
	a.peersMu.Lock()
	for _, c := range a.peers {
		if c != nil {
			c.Close()
		}
	}
	a.peersMu.Unlock()
	if a.m != nil {
		syscall.Munmap(a.m)
		a.m = nil
	}
}

// ---- segments and the region directory ----

// AllocSeg carves a zeroed segment — buffer plus shadow-stamp slabs, laid out
// contiguously so the region directory needs only (offset, length) — from
// local rank's arena, reusing a recycled segment of the same size when one is
// free. Only this process's own local rank may allocate.
func (a *Arena) AllocSeg(local, size int) *segpool.Seg {
	if l := a.freeSegs[size]; len(l) > 0 {
		s := l[len(l)-1]
		a.freeSegs[size] = l[:len(l)-1]
		return s
	}
	n64, n32 := timing.StampSlabLens(size)
	bufLen := alignUp(size, 8)
	total := alignUp(bufLen+n64*8+n32*4, 64)
	if a.arenaPos+total > a.cfg.ArenaBytes {
		panic(fmt.Sprintf("mprun: rank arena exhausted (%d of %d bytes used); raise Config.MPArenaBytes",
			a.arenaPos, a.cfg.ArenaBytes))
	}
	base := a.arenaPos
	a.arenaPos += total
	ar := a.lay.arena(a.m, local)
	buf := ar[base : base+size : base+size]
	st := timing.NewStampsOver(
		i64slice(ar, base+bufLen, n64),
		u32slice(ar, base+bufLen+n64*8, n32), size)
	return &segpool.Seg{Buf: buf, St: st}
}

// Recycle returns a segment to the local free list (see Transport.RecycleSeg).
func (a *Arena) Recycle(s *segpool.Seg, scrubbed bool, extra ...segpool.Range) {
	if scrubbed {
		mRecycleScrb.Inc()
		segpool.Scrub(s, extra...)
	} else {
		mRecycles.Inc()
		clear(s.Buf)
		s.St.Reset()
	}
	a.freeSegs[len(s.Buf)] = append(a.freeSegs[len(s.Buf)], s)
}

// Register publishes local rank's registration in the shared directory and
// returns its key (per-owner, dense from 0 in registration order). The buffer
// must come from AllocSeg: remote processes can only reach the shared
// mapping, so arbitrary heap memory is rejected with a clear fault.
func (a *Arena) Register(local int, reg *simnet.Region) uint32 {
	buf := reg.Bytes()
	ar := a.lay.arena(a.m, local)
	off, ok := arenaOffset(ar, buf)
	if !ok {
		panic("mprun: the process-based backends can only register transport-allocated memory (Endpoint.AllocSeg / Register); traditional windows over user buffers are in-process only")
	}
	k := a.nextKey
	if k >= maxRegions {
		panic(fmt.Sprintf("mprun: region directory full (%d registrations)", maxRegions))
	}
	a.nextKey++
	e := a.lay.entryOff(local, int(k))
	atomic.StoreUint64(u64at(a.m, e+enBufOff), uint64(off))
	atomic.StoreUint64(u64at(a.m, e+enBufLen), uint64(len(buf)))
	// The state store publishes the fields: peers load it with acquire
	// ordering before reading them.
	atomic.StoreUint32(u32at(a.m, e+enState), entryLive)
	a.regionsFor(local)[k] = reg
	return k
}

// Unregister marks a registration dead; later remote accesses fault.
func (a *Arena) Unregister(local int, k uint32) {
	atomic.StoreUint32(u32at(a.m, a.lay.entryOff(local, int(k))+enState), entryDead)
	if int(k) < maxRegions {
		a.regionsFor(local)[k] = nil
	}
}

func (a *Arena) regionsFor(local int) []*simnet.Region {
	if a.regions[local] == nil {
		a.regions[local] = make([]*simnet.Region, maxRegions)
	}
	return a.regions[local]
}

// Lookup resolves (ownerLocal, key), materializing (and caching) a local view
// of the owner's registration: the buffer and stamp slabs are slices of the
// shared mapping, so stamp arithmetic runs on the same words in every
// process. ownerGlobal is the owner's world rank, the identity the view (and
// its fault messages) carries. Cached views have the same staleness contract
// as the in-process fabric's copy-on-write table.
func (a *Arena) Lookup(ownerLocal int, key uint32, ownerGlobal int) *simnet.Region {
	regs := a.regionsFor(ownerLocal)
	if int(key) >= maxRegions {
		panic(fmt.Sprintf("simnet: access to unregistered region (rank %d key %d)", ownerGlobal, key))
	}
	e := a.lay.entryOff(ownerLocal, int(key))
	if atomic.LoadUint32(u32at(a.m, e+enState)) != entryLive {
		// Checked on cache hits too: the owner may have unregistered (and
		// its arena recycled the bytes) since this view was materialized —
		// the access must fault like the in-process fabric's nilled slot,
		// not silently write through a stale view.
		regs[key] = nil
		panic(fmt.Sprintf("simnet: access to unregistered region (rank %d key %d)", ownerGlobal, key))
	}
	if r := regs[key]; r != nil {
		return r
	}
	off := int(atomic.LoadUint64(u64at(a.m, e+enBufOff)))
	ln := int(atomic.LoadUint64(u64at(a.m, e+enBufLen)))
	ar := a.lay.arena(a.m, ownerLocal)
	buf := ar[off : off+ln : off+ln]
	n64, n32 := timing.StampSlabLens(ln)
	bufLen := alignUp(ln, 8)
	st := timing.NewStampsOver(
		i64slice(ar, off+bufLen, n64),
		u32slice(ar, off+bufLen+n64*8, n32), ln)
	reg := simnet.MakeRegion(ownerGlobal, simnet.Key(key), buf, st)
	regs[key] = &reg
	return &reg
}

// ---- NIC intervals ----

// ReserveNIC books local rank's NIC busy interval under a shared-memory
// spinlock; the interval logic is identical to the in-process fabric's
// (including hole service for tardy bookings — see Fabric.reserveNIC).
func (a *Arena) ReserveNIC(local int, arrival timing.Time, xfer int64) timing.Time {
	ro := a.lay.rankOff(local)
	lk := u32at(a.m, ro+rnNicLock)
	for !atomic.CompareAndSwapUint32(lk, 0, 1) {
		runtime.Gosched()
	}
	start, busy := i64at(a.m, ro+rnNicStart), i64at(a.m, ro+rnNicBusy)
	v := int64(arrival)
	var res int64
	switch {
	case v >= *busy:
		*start, *busy = v, v+xfer
		res = *busy
	case v+xfer <= *start:
		res = v + xfer
	default:
		*busy += xfer
		res = *busy
	}
	atomic.StoreUint32(lk, 0)
	return timing.Time(res)
}

// ---- pacing ----

// PublishClock records local rank's virtual clock in the shared pacing table
// and, when the clock has advanced at least half a window since the last
// poke, wakes the ranks parked in Pace — the publisher may be the slowest
// clock they are waiting on.
func (a *Arena) PublishClock(local int, t timing.Time) {
	if a.cfg.PaceWindowNs == 0 {
		return
	}
	atomic.StoreInt64(i64at(a.m, a.lay.rankOff(local)+rnPaceClock), int64(t))
	if int64(t)-a.lastPoke < a.cfg.PaceWindowNs/2 {
		return
	}
	a.lastPoke = int64(t)
	for wd := 0; wd < a.lay.maskWords; wd++ {
		mask := atomic.LoadUint64(u64at(a.m, a.lay.paceWaiterOff(wd)))
		if wd == local/64 {
			mask &^= 1 << uint(local%64)
		}
		for mask != 0 {
			r := bits.TrailingZeros64(mask)
			mask &^= 1 << r
			mPacePokes.Inc()
			a.sendDoor(wd*64 + r)
		}
	}
}

func (a *Arena) paceMin() int64 {
	min := int64(1) << 62
	for r := 0; r < a.cfg.Ranks; r++ {
		if c := atomic.LoadInt64(i64at(a.m, a.lay.rankOff(r)+rnPaceClock)); c < min {
			min = c
		}
	}
	return min
}

// Pace blocks local rank while its clock runs more than the window ahead of
// the slowest published clock. The waiter parks in the pacing bitset and
// sleeps on its doorbell socket — PublishClock on an advancing peer pokes it
// — with a backoff deadline as the heartbeat against dropped datagrams. The
// stall valve matches the in-process discipline: a minimum that stays frozen
// across two heartbeat timeouts releases the rank for one operation (datagram
// receipts do not count as heartbeats, so a poke storm cannot spring the
// valve early).
func (a *Arena) Pace(local int, t timing.Time, aborted func() bool) {
	if a.cfg.PaceWindowNs == 0 {
		return
	}
	a.PublishClock(local, t)
	me := int64(t)
	if me <= a.paceMin()+a.cfg.PaceWindowNs {
		return
	}
	wp := u64at(a.m, a.lay.paceWaiterOff(local/64))
	bit := uint64(1) << uint(local%64)
	setBit(wp, bit)
	defer clearBit(wp, bit)
	if telemetry.On() {
		mPaceParks.Inc()
		start := time.Now()
		defer func() { mPaceParkNs.Record(uint64(time.Since(start))) }()
	}
	var scratch [8]byte
	last, idle, d := int64(-1), 0, paceSleepMin
	for {
		min := a.paceMin()
		if me <= min+a.cfg.PaceWindowNs || aborted() {
			return
		}
		if min != last {
			last, idle = min, 0
		} else if idle >= 2 {
			mPaceStalls.Inc()
			telemetry.RecordEvent(telemetry.EvStall, uint64(local), uint64(me-min))
			return
		}
		a.door.SetReadDeadline(time.Now().Add(d))
		if _, err := a.door.Read(scratch[:]); err != nil {
			// Heartbeat timeout: only these advance the frozen-min valve.
			if min == last {
				idle++
			}
		}
		if d < paceSleepMax {
			d *= 2
		}
	}
}

// ---- doorbells ----

// Ring bumps local rank's doorbell generation and pokes every rank currently
// registered as waiting on it (one datagram each; a full socket buffer means
// wakeups are already pending, so send errors are ignored). The waiter set is
// a multi-word bitset — ceil(ranks/64) words — so worlds wider than 64 ranks
// ring exactly the parked ranks, wherever their bit lives; the common
// no-waiter case stays one atomic load per word.
func (a *Arena) Ring(local int) {
	mDoorRings.Inc()
	atomic.AddUint64(u64at(a.m, a.lay.rankOff(local)+rnDoorGen), 1)
	for wd := 0; wd < a.lay.maskWords; wd++ {
		mask := atomic.LoadUint64(u64at(a.m, a.lay.waiterOff(local, wd)))
		for mask != 0 {
			r := bits.TrailingZeros64(mask)
			mask &^= 1 << r
			a.sendDoor(wd*64 + r)
		}
	}
}

var doorByte = []byte{1}

func (a *Arena) sendDoor(r int) {
	a.peersMu.Lock()
	c := a.peers[r]
	if c == nil {
		var err error
		c, err = net.DialUnix("unixgram", nil,
			&net.UnixAddr{Name: doorSockPath(a.path, r), Net: "unixgram"})
		if err != nil {
			a.peersMu.Unlock()
			return // not bound yet or gone; the waiter's heartbeat covers it
		}
		a.peers[r] = c
	}
	a.peersMu.Unlock()
	c.SetWriteDeadline(time.Now().Add(2 * time.Millisecond))
	c.Write(doorByte)
}

// DoorGen samples local rank's doorbell generation.
func (a *Arena) DoorGen(local int) uint64 {
	return atomic.LoadUint64(u64at(a.m, a.lay.rankOff(local)+rnDoorGen))
}

// WaitDoor blocks until local rank's doorbell generation exceeds gen, or
// panics simnet.ErrAborted when aborted reports true. The waiter registers
// itself in the watched rank's waiter bitset before re-checking the
// generation — the store/load pairing with Ring's bump-then-read makes lost
// wakeups impossible — then sleeps on its own doorbell socket with a
// heartbeat deadline (dropped datagrams and aborts are caught by the
// heartbeat re-check).
func (a *Arena) WaitDoor(local int, gen uint64, aborted func() bool) uint64 {
	genp := u64at(a.m, a.lay.rankOff(local)+rnDoorGen)
	if g := atomic.LoadUint64(genp); g != gen {
		return g
	}
	wp := u64at(a.m, a.lay.waiterOff(local, a.self/64))
	bit := uint64(1) << uint(a.self%64)
	setBit(wp, bit)
	defer clearBit(wp, bit)
	var scratch [8]byte
	d := doorWaitMin
	for {
		if g := atomic.LoadUint64(genp); g != gen {
			return g
		}
		if aborted() {
			panic(a.abortPanic())
		}
		a.door.SetReadDeadline(time.Now().Add(d))
		a.door.Read(scratch[:])
		if d < doorWaitMax {
			d *= 2
		}
	}
}

// WaitDoorSliced parks at local rank's doorbell for at most slice and returns
// the then-current generation; spurious (timeout) returns are allowed by the
// WaitDoor contract. The hybrid backend's service loop uses it to park
// off-host waiters in bounded slices, so a dropped connection or an abort can
// never strand the requester. Unlike WaitDoor it returns (rather than
// panicking) on abort — the requester re-checks its own abort state.
func (a *Arena) WaitDoorSliced(local int, gen uint64, slice time.Duration, aborted func() bool) uint64 {
	genp := u64at(a.m, a.lay.rankOff(local)+rnDoorGen)
	if g := atomic.LoadUint64(genp); g != gen {
		return g
	}
	wp := u64at(a.m, a.lay.waiterOff(local, a.self/64))
	bit := uint64(1) << uint(a.self%64)
	setBit(wp, bit)
	defer clearBit(wp, bit)
	deadline := time.Now().Add(slice)
	var scratch [8]byte
	d := doorWaitMin
	for {
		if g := atomic.LoadUint64(genp); g != gen {
			return g
		}
		rem := time.Until(deadline)
		if rem <= 0 || aborted() {
			return atomic.LoadUint64(genp)
		}
		if d > rem {
			d = rem
		}
		a.door.SetReadDeadline(time.Now().Add(d))
		a.door.Read(scratch[:])
		if d < doorWaitMax {
			d *= 2
		}
	}
}

func setBit(wp *uint64, bit uint64) {
	for {
		old := atomic.LoadUint64(wp)
		if atomic.CompareAndSwapUint64(wp, old, old|bit) {
			return
		}
	}
}

func clearBit(wp *uint64, bit uint64) {
	for {
		old := atomic.LoadUint64(wp)
		if atomic.CompareAndSwapUint64(wp, old, old&^bit) {
			return
		}
	}
}

// ---- the abort flag ----

// SetAbortFlag marks the arena's world aborted and wakes every local waiter
// (doorbell and pacing parks alike — every park reads the same socket).
func (a *Arena) SetAbortFlag() {
	atomic.StoreUint32(u32at(a.m, hdrAbort), 1)
	for r := 0; r < a.cfg.Ranks; r++ {
		atomic.AddUint64(u64at(a.m, a.lay.rankOff(r)+rnDoorGen), 1)
		a.sendDoor(r)
	}
}

// SetAbortFlagBlaming is SetAbortFlag plus a verdict: it records global (a
// world rank) as the rank whose failure killed the world, so every local
// waiter unwinds with *simnet.ErrPeerFailed instead of the bare ErrAborted.
// The first blame wins; later calls only set the flag.
func (a *Arena) SetAbortFlagBlaming(global int) {
	atomic.CompareAndSwapUint32(u32at(a.m, hdrFailRank), 0, uint32(global)+1)
	a.SetAbortFlag()
}

// AbortFlag reports whether the arena's world has been marked aborted.
func (a *Arena) AbortFlag() bool {
	return atomic.LoadUint32(u32at(a.m, hdrAbort)) != 0
}

// FailedRank returns the world rank blamed for the abort, or -1 when no
// verdict has been recorded.
func (a *Arena) FailedRank() int {
	return int(atomic.LoadUint32(u32at(a.m, hdrFailRank))) - 1
}

// abortPanic is the value arena waits unwind with: typed with the blamed
// rank when a verdict is recorded, the bare sentinel otherwise.
func (a *Arena) abortPanic() any {
	if r := a.FailedRank(); r >= 0 {
		return &simnet.ErrPeerFailed{Rank: r}
	}
	return simnet.ErrAborted
}
