package datatype

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBaseTypes(t *testing.T) {
	cases := []struct {
		dt   *Datatype
		size int
	}{{Byte, 1}, {Int32, 4}, {Int64, 8}, {Double, 8}, {Float32, 4}, {Uint64, 8}}
	for _, c := range cases {
		if c.dt.Size() != c.size || c.dt.Extent() != c.size || !c.dt.Contig() {
			t.Errorf("%s: size=%d extent=%d contig=%v", c.dt.Name(), c.dt.Size(), c.dt.Extent(), c.dt.Contig())
		}
	}
}

func TestContiguousMergesToOneBlock(t *testing.T) {
	d := Contiguous(16, Double)
	if !d.Contig() || d.Size() != 128 || d.Extent() != 128 {
		t.Fatalf("contig(16,double): %+v", d)
	}
	if bs := Flatten(d, 2, 0); len(bs) != 1 || bs[0] != (Block{0, 256}) {
		t.Fatalf("flatten: %v", bs)
	}
}

func TestVectorLayout(t *testing.T) {
	// 3 blocks of 2 doubles every 4 doubles: |XX..|XX..|XX|
	d := Vector(3, 2, 4, Double)
	if d.Size() != 48 {
		t.Fatalf("size=%d", d.Size())
	}
	if d.Extent() != (2*4+2)*8 {
		t.Fatalf("extent=%d", d.Extent())
	}
	want := []Block{{0, 16}, {32, 16}, {64, 16}}
	got := Flatten(d, 1, 0)
	if len(got) != 3 {
		t.Fatalf("blocks: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("block %d: %v want %v", i, got[i], want[i])
		}
	}
}

func TestVectorDenseCollapses(t *testing.T) {
	d := Vector(5, 3, 3, Int32) // blocklen == stride → contiguous
	if !d.Contig() {
		t.Fatalf("dense vector should collapse to one block: %v", Flatten(d, 1, 0))
	}
}

func TestIndexed(t *testing.T) {
	d := Indexed([]int{2, 1, 3}, []int{0, 4, 8}, Int32)
	if d.Size() != 6*4 {
		t.Fatalf("size=%d", d.Size())
	}
	got := Flatten(d, 1, 0)
	want := []Block{{0, 8}, {16, 4}, {32, 12}}
	if len(got) != len(want) {
		t.Fatalf("blocks %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("block %d: %v want %v", i, got[i], want[i])
		}
	}
}

func TestStruct(t *testing.T) {
	// struct { int32 a; double b; } with C padding: displs 0 and 8.
	d := Struct([]int{1, 1}, []int{0, 8}, []*Datatype{Int32, Double})
	if d.Size() != 12 || d.Extent() != 16 {
		t.Fatalf("size=%d extent=%d", d.Size(), d.Extent())
	}
	got := Flatten(d, 2, 0)
	// Element 1 starts at the 16-byte extent, so its int32 {16,4} merges
	// with element 0's trailing double {8,8}: minimal flattening is 3 blocks.
	want := []Block{{0, 4}, {8, 12}, {24, 8}}
	if len(got) != len(want) {
		t.Fatalf("blocks %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("block %d: %v want %v", i, got[i], want[i])
		}
	}
}

func TestResized(t *testing.T) {
	col := Resized(Vector(3, 1, 4, Double), 8) // one matrix column, unit stride
	bs := Flatten(col, 2, 0)
	want := []Block{{0, 8}, {8, 8}, {32, 8}, {40, 8}, {64, 8}, {72, 8}}
	// Columns 0 and 1 of a 3x4 row-major double matrix.
	got := map[Block]bool{}
	for _, b := range bs {
		got[b] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Fatalf("missing block %v in %v", w, bs)
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	d := Vector(4, 3, 5, Int32)
	src := make([]byte, d.Extent()+64)
	for i := range src {
		src[i] = byte(i)
	}
	packed := make([]byte, d.Size())
	if n := Pack(packed, src, d, 1); n != d.Size() {
		t.Fatalf("pack n=%d", n)
	}
	dst := make([]byte, len(src))
	if n := Unpack(dst, packed, d, 1); n != d.Size() {
		t.Fatalf("unpack n=%d", n)
	}
	for _, b := range Flatten(d, 1, 0) {
		if !bytes.Equal(dst[b.Off:b.Off+b.Len], src[b.Off:b.Off+b.Len]) {
			t.Fatalf("block %v differs", b)
		}
	}
}

func TestFlattenOffsets(t *testing.T) {
	d := Vector(2, 1, 2, Double)
	bs := Flatten(d, 1, 100)
	if bs[0].Off != 100 || bs[1].Off != 116 {
		t.Fatalf("offset flatten: %v", bs)
	}
}

func TestOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping vector must panic")
		}
	}()
	Vector(2, 3, 2, Double)
}

// naiveExtract mirrors Flatten with a per-byte bitmap — the reference model
// for the property test.
func naiveExtract(d *Datatype, count int) []bool {
	covered := make([]bool, count*d.Extent()+1)
	for _, b := range Flatten(d, count, 0) {
		for i := b.Off; i < b.Off+b.Len; i++ {
			covered[i] = true
		}
	}
	return covered
}

func TestPropertyFlattenCoversSizeBytes(t *testing.T) {
	err := quick.Check(func(count8, blocklen8, stride8, n8 uint8) bool {
		count := int(count8)%6 + 1
		blocklen := int(blocklen8)%4 + 1
		stride := blocklen + int(stride8)%4
		n := int(n8)%3 + 1
		d := Vector(count, blocklen, stride, Int32)
		covered := naiveExtract(d, n)
		total := 0
		for _, c := range covered {
			if c {
				total++
			}
		}
		return total == n*d.Size()
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPackUnpackIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	err := quick.Check(func(lens []uint8) bool {
		if len(lens) == 0 || len(lens) > 8 {
			return true
		}
		blocklens := make([]int, len(lens))
		displs := make([]int, len(lens))
		at := 0
		for i, l := range lens {
			blocklens[i] = int(l)%3 + 1
			displs[i] = at + rng.Intn(3)
			at = displs[i] + blocklens[i]
		}
		d := Indexed(blocklens, displs, Int64)
		src := make([]byte, d.Extent())
		rng.Read(src)
		packed := make([]byte, d.Size())
		Pack(packed, src, d, 1)
		dst := make([]byte, d.Extent())
		Unpack(dst, packed, d, 1)
		for _, b := range Flatten(d, 1, 0) {
			if !bytes.Equal(dst[b.Off:b.Off+b.Len], src[b.Off:b.Off+b.Len]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBlocksDisjointSorted(t *testing.T) {
	err := quick.Check(func(c, bl, st uint8) bool {
		count := int(c)%5 + 1
		blocklen := int(bl)%4 + 1
		stride := blocklen + int(st)%5
		d := Vector(count, blocklen, stride, Double)
		prevEnd := -1
		for _, b := range Flatten(d, 2, 0) {
			if b.Off <= prevEnd || b.Len <= 0 { // strictly after previous (merged otherwise)
				return false
			}
			prevEnd = b.Off + b.Len
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
