// Package datatype is the MPI derived-datatype engine: the stand-in for the
// MPITypes library [32] foMPI uses. A datatype describes a (possibly
// non-contiguous) memory layout; communication flattens origin and target
// layouts into the smallest number of contiguous blocks and issues one
// fabric operation per block pair, exactly as §2.4 of the paper describes.
package datatype

import "fmt"

// Block is one contiguous piece of a flattened datatype: Off bytes from the
// layout's base address, Len bytes long.
type Block struct {
	Off, Len int
}

// Datatype describes a memory layout. Datatypes are immutable once built.
type Datatype struct {
	name   string
	size   int     // bytes actually transferred
	extent int     // span between consecutive elements in arrays of this type
	blocks []Block // normalized layout of ONE element, base-relative
}

// Name returns a diagnostic name.
func (d *Datatype) Name() string { return d.name }

// Size returns the number of payload bytes in one element.
func (d *Datatype) Size() int { return d.size }

// Extent returns the span one element occupies (stride in arrays).
func (d *Datatype) Extent() int { return d.extent }

// Contig reports whether one element is a single contiguous block starting
// at offset 0 covering the full extent — the fast-path test in MPI_Put.
func (d *Datatype) Contig() bool {
	return len(d.blocks) == 1 && d.blocks[0].Off == 0 && d.blocks[0].Len == d.extent
}

// normalize sorts nothing (layouts are built in order) but merges adjacent
// blocks so the flattening is minimal.
func normalize(bs []Block) []Block {
	out := bs[:0:0]
	for _, b := range bs {
		if b.Len == 0 {
			continue
		}
		if n := len(out); n > 0 && out[n-1].Off+out[n-1].Len == b.Off {
			out[n-1].Len += b.Len
			continue
		}
		out = append(out, b)
	}
	return out
}

// base constructs a named predefined type of n bytes.
func base(name string, n int) *Datatype {
	return &Datatype{name: name, size: n, extent: n, blocks: []Block{{0, n}}}
}

// Predefined types (sizes follow the usual C ABI the paper's codes assume).
var (
	Byte    = base("MPI_BYTE", 1)
	Int32   = base("MPI_INT", 4)
	Int64   = base("MPI_LONG_LONG", 8)
	Uint64  = base("MPI_UINT64_T", 8)
	Float32 = base("MPI_FLOAT", 4)
	Double  = base("MPI_DOUBLE", 8)
)

// Contiguous builds count repetitions of elem with no padding.
func Contiguous(count int, elem *Datatype) *Datatype {
	if count < 0 {
		panic("datatype: negative count")
	}
	bs := make([]Block, 0, count*len(elem.blocks))
	for i := 0; i < count; i++ {
		for _, b := range elem.blocks {
			bs = append(bs, Block{b.Off + i*elem.extent, b.Len})
		}
	}
	return &Datatype{
		name:   fmt.Sprintf("contig(%d,%s)", count, elem.name),
		size:   count * elem.size,
		extent: count * elem.extent,
		blocks: normalize(bs),
	}
}

// Vector builds count blocks of blocklen elements separated by stride
// elements (stride measured in elements, as MPI_Type_vector does).
func Vector(count, blocklen, stride int, elem *Datatype) *Datatype {
	if blocklen > stride && count > 1 {
		panic("datatype: vector blocks overlap")
	}
	bs := make([]Block, 0, count*blocklen*len(elem.blocks))
	for i := 0; i < count; i++ {
		start := i * stride * elem.extent
		for j := 0; j < blocklen; j++ {
			for _, b := range elem.blocks {
				bs = append(bs, Block{start + j*elem.extent + b.Off, b.Len})
			}
		}
	}
	extent := 0
	if count > 0 {
		extent = ((count-1)*stride + blocklen) * elem.extent
	}
	return &Datatype{
		name:   fmt.Sprintf("vector(%d,%d,%d,%s)", count, blocklen, stride, elem.name),
		size:   count * blocklen * elem.size,
		extent: extent,
		blocks: normalize(bs),
	}
}

// Indexed builds blocks of blocklens[i] elements at element displacements
// displs[i] (MPI_Type_indexed). Displacements must be non-decreasing.
func Indexed(blocklens, displs []int, elem *Datatype) *Datatype {
	if len(blocklens) != len(displs) {
		panic("datatype: indexed length mismatch")
	}
	bs := make([]Block, 0, len(blocklens))
	size, extent := 0, 0
	prevEnd := -1
	for i := range blocklens {
		if displs[i]*elem.extent < prevEnd {
			panic("datatype: indexed displacements must be non-decreasing and non-overlapping")
		}
		start := displs[i] * elem.extent
		for j := 0; j < blocklens[i]; j++ {
			for _, b := range elem.blocks {
				bs = append(bs, Block{start + j*elem.extent + b.Off, b.Len})
			}
		}
		size += blocklens[i] * elem.size
		if end := start + blocklens[i]*elem.extent; end > extent {
			extent = end
		}
		prevEnd = start + blocklens[i]*elem.extent
	}
	return &Datatype{
		name:   fmt.Sprintf("indexed(%d,%s)", len(blocklens), elem.name),
		size:   size,
		extent: extent,
		blocks: normalize(bs),
	}
}

// Struct builds a heterogeneous layout: blocklens[i] elements of types[i] at
// byte displacement displs[i] (MPI_Type_create_struct). Displacements must
// be non-decreasing and non-overlapping.
func Struct(blocklens []int, displs []int, types []*Datatype) *Datatype {
	if len(blocklens) != len(displs) || len(displs) != len(types) {
		panic("datatype: struct length mismatch")
	}
	var bs []Block
	size, extent := 0, 0
	prevEnd := -1
	for i := range types {
		if displs[i] < prevEnd {
			panic("datatype: struct displacements must be non-decreasing and non-overlapping")
		}
		for j := 0; j < blocklens[i]; j++ {
			start := displs[i] + j*types[i].extent
			for _, b := range types[i].blocks {
				bs = append(bs, Block{start + b.Off, b.Len})
			}
		}
		size += blocklens[i] * types[i].size
		end := displs[i] + blocklens[i]*types[i].extent
		if end > extent {
			extent = end
		}
		prevEnd = end
	}
	return &Datatype{
		name:   fmt.Sprintf("struct(%d)", len(types)),
		size:   size,
		extent: extent,
		blocks: normalize(bs),
	}
}

// Resized overrides the extent (MPI_Type_create_resized). Shrinking the
// extent below the layout span is the standard MPI idiom for interleaved
// layouts — e.g. a matrix-column type whose consecutive array elements are
// the next columns, not the next column-heights apart.
func Resized(d *Datatype, extent int) *Datatype {
	if extent <= 0 {
		panic("datatype: resized extent must be positive")
	}
	return &Datatype{name: d.name + "+resized", size: d.size, extent: extent, blocks: d.blocks}
}

// Flatten returns the minimal contiguous block list of count consecutive
// elements starting at byte offset off.
func Flatten(d *Datatype, count, off int) []Block {
	bs := make([]Block, 0, count*len(d.blocks))
	for i := 0; i < count; i++ {
		basei := off + i*d.extent
		for _, b := range d.blocks {
			bs = append(bs, Block{basei + b.Off, b.Len})
		}
	}
	return normalize(bs)
}

// Pack gathers count elements laid out by d in src into the dense dst
// buffer and returns the bytes written.
func Pack(dst, src []byte, d *Datatype, count int) int {
	n := 0
	for _, b := range Flatten(d, count, 0) {
		n += copy(dst[n:n+b.Len], src[b.Off:b.Off+b.Len])
	}
	return n
}

// Unpack scatters the dense src buffer into count elements laid out by d in
// dst and returns the bytes consumed.
func Unpack(dst, src []byte, d *Datatype, count int) int {
	n := 0
	for _, b := range Flatten(d, count, 0) {
		n += copy(dst[b.Off:b.Off+b.Len], src[n:n+b.Len])
	}
	return n
}
