package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar registration: Publish panics on duplicate
// names, and tests may start more than one debug server per process.
var publishOnce sync.Once

// ServeDebug starts an HTTP listener on addr serving the live-profiling
// surface for long soaks:
//
//	/debug/vars          expvar (includes the "fompi" snapshot variable)
//	/debug/stats         this process's Snapshot as one line of JSON
//	/debug/pprof/...     net/http/pprof (profile, heap, trace, ...)
//
// It returns the bound address (addr may carry port 0) and never blocks;
// the server runs until the process exits. A private mux keeps the
// process's default mux clean for programs that run their own.
func ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	publishOnce.Do(func() {
		expvar.Publish("fompi", expvar.Func(func() any { return Capture(-1) }))
	})
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(Capture(-1).JSON())
		w.Write([]byte("\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go http.Serve(ln, mux)
	return ln.Addr().String(), nil
}
