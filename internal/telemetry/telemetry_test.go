package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

// withTelemetry runs f with telemetry enabled, restoring the prior state.
func withTelemetry(t *testing.T, f func()) {
	t.Helper()
	was := On()
	SetEnabled(true)
	defer SetEnabled(was)
	f()
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram("test.boundaries")
	withTelemetry(t, func() {
		// Bucket i holds values of bit length i: 0 -> bucket 0, 1 -> 1,
		// [2,3] -> 2, [4,7] -> 3, ..., and the powers of two are the lower
		// edges of their buckets.
		for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1 << 20, math.MaxUint64} {
			h.Record(v)
		}
	})
	s := h.snapshot()
	if s.Count != 9 {
		t.Fatalf("count = %d, want 9", s.Count)
	}
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 2, 4: 1, 21: 1, 64: 1}
	for i, n := range s.Buckets {
		if n != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
	if len(s.Buckets) != 65 {
		t.Fatalf("MaxUint64 must land in bucket 64 (got %d buckets)", len(s.Buckets))
	}
	if got := BucketMax(3); got != 7 {
		t.Fatalf("BucketMax(3) = %d, want 7", got)
	}
	if got := BucketMax(64); got != math.MaxUint64 {
		t.Fatalf("BucketMax(64) = %d, want MaxUint64", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("test.quantile")
	withTelemetry(t, func() {
		for i := 0; i < 90; i++ {
			h.Record(3) // bucket 2, max 3
		}
		for i := 0; i < 10; i++ {
			h.Record(1000) // bucket 10, max 1023
		}
	})
	s := h.snapshot()
	if got := s.Quantile(0.5); got != 3 {
		t.Fatalf("p50 = %d, want 3", got)
	}
	if got := s.Quantile(0.99); got != 1023 {
		t.Fatalf("p99 = %d, want 1023 (the tail bucket's max)", got)
	}
	if got := (Hist{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty-hist quantile = %d, want 0", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := Hist{Count: 2, Sum: 5, Buckets: []uint64{1, 0, 1}}
	b := Hist{Count: 3, Sum: 30, Buckets: []uint64{0, 1, 1, 0, 1}}
	a.merge(b)
	if a.Count != 5 || a.Sum != 35 {
		t.Fatalf("merged count/sum = %d/%d, want 5/35", a.Count, a.Sum)
	}
	want := []uint64{1, 1, 2, 0, 1}
	for i, n := range want {
		if a.Buckets[i] != n {
			t.Fatalf("merged buckets = %v, want %v", a.Buckets, want)
		}
	}
}

func TestConcurrentRecord(t *testing.T) {
	c := NewCounter("test.concurrent")
	h := NewHistogram("test.concurrent_hist")
	before, beforeHist := c.Load(), h.snapshot().Count
	withTelemetry(t, func() {
		const workers, per = 8, 1000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					c.Inc()
					h.Record(uint64(i))
					RecordEvent(EvStall, uint64(w), uint64(i))
				}
			}(w)
		}
		wg.Wait()
		if got := c.Load() - before; got != workers*per {
			t.Fatalf("counter = %d after %d concurrent Incs", got, workers*per)
		}
		if got := h.snapshot().Count - beforeHist; got != workers*per {
			t.Fatalf("histogram count = %d after %d concurrent Records", got, workers*per)
		}
	})
}

func TestRegistryIdempotent(t *testing.T) {
	a := NewCounter("test.shared")
	b := NewCounter("test.shared")
	if a != b {
		t.Fatalf("two registrations of one name returned distinct counters")
	}
	if NewHistogram("test.sharedh") != NewHistogram("test.sharedh") {
		t.Fatalf("two registrations of one name returned distinct histograms")
	}
}

func TestFlightRecorderOverwrite(t *testing.T) {
	withTelemetry(t, func() {
		// Overfill the ring: only the newest ringSlots events survive, and a
		// tail request returns the last EventTail of those, oldest first.
		for i := 0; i < ringSlots+50; i++ {
			RecordEvent(EvReconnect, uint64(i), 0)
		}
		tail := eventTail(EventTail)
		if len(tail) != EventTail {
			t.Fatalf("tail has %d events, want %d", len(tail), EventTail)
		}
		last := tail[len(tail)-1]
		if last.Kind != EvReconnect.String() {
			t.Fatalf("last event kind %q, want %q", last.Kind, EvReconnect)
		}
		for i := 1; i < len(tail); i++ {
			if tail[i].A != tail[i-1].A+1 {
				t.Fatalf("tail not in order at %d: %d after %d", i, tail[i].A, tail[i-1].A)
			}
		}
	})
}

func TestSnapshotMergeAndJSONRoundTrip(t *testing.T) {
	a := Snapshot{Rank: 0, Ranks: 1,
		Counters: map[string]uint64{"net.retransmits": 3},
		Hists:    map[string]Hist{"net.window": {Count: 2, Sum: 9, Buckets: []uint64{0, 1, 1}}},
		Events:   []Event{{T: 10, Kind: "net.reconnect", A: 1}},
	}
	b := Snapshot{Rank: 1, Ranks: 1,
		Counters: map[string]uint64{"net.retransmits": 2, "fault.reset": 5},
		Events:   []Event{{T: 5, Kind: "fault.reset", A: 7}},
	}
	agg := Snapshot{Rank: -1}
	agg.Merge(a)
	agg.Merge(b)
	if agg.Ranks != 2 || agg.Counters["net.retransmits"] != 5 || agg.Counters["fault.reset"] != 5 {
		t.Fatalf("bad aggregate: %+v", agg)
	}
	if agg.Events[0].T != 5 || agg.Events[0].Rank != 1 || agg.Events[1].Rank != 0 {
		t.Fatalf("merged events not time-ordered and rank-stamped: %+v", agg.Events)
	}
	line := agg.JSON()
	if bytes.ContainsRune(line, '\n') {
		t.Fatalf("snapshot JSON must be one line: %q", line)
	}
	back, err := ParseSnapshot(line)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.Ranks != 2 || back.Counters["net.retransmits"] != 5 ||
		back.Hists["net.window"].Count != 2 || len(back.Events) != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestCaptureSkipsZeroMetrics(t *testing.T) {
	NewCounter("test.never_touched")
	s := Capture(3)
	if _, ok := s.Counters["test.never_touched"]; ok {
		t.Fatalf("zero counter leaked into the snapshot")
	}
	if s.Rank != 3 {
		t.Fatalf("rank = %d, want 3", s.Rank)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("capture not marshalable: %v", err)
	}
}

// TestDisabledZeroAlloc is the CI bench gate (ISSUE 10): with telemetry
// disabled — the default — every hot-path entry point must cost zero
// allocations, so instrumented transports keep their existing allocs/op
// guards without build tags. The enabled paths are zero-alloc too.
func TestDisabledZeroAlloc(t *testing.T) {
	c := NewCounter("test.zeroalloc")
	h := NewHistogram("test.zeroalloc_hist")
	var nilC *Counter
	var nilH *Histogram
	check := func(name string, f func()) {
		t.Helper()
		if n := testing.AllocsPerRun(100, f); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, n)
		}
	}
	was := On()
	defer SetEnabled(was)
	SetEnabled(false)
	check("disabled Counter.Add", func() { c.Add(2) })
	check("disabled Histogram.Record", func() { h.Record(7) })
	check("disabled RecordEvent", func() { RecordEvent(EvRetransmit, 1, 2) })
	check("nil Counter.Add", func() { nilC.Add(1) })
	check("nil Histogram.Record", func() { nilH.Record(1) })
	SetEnabled(true)
	check("enabled Counter.Add", func() { c.Add(2) })
	check("enabled Histogram.Record", func() { h.Record(7) })
	check("enabled RecordEvent", func() { RecordEvent(EvRetransmit, 1, 2) })
}
