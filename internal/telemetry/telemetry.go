// Package telemetry is the runtime observability substrate shared by every
// transport backend (DESIGN.md §13): sharded atomic counters, fixed-bucket
// log2 histograms, and a lock-free per-process ring-buffer flight recorder
// of timestamped typed events. All hot-path entry points are zero-alloc and
// compile down to one atomic load when telemetry is disabled (the default),
// so instrumented code needs no build tags and no call-site guards.
//
// Telemetry is enabled by FOMPI_STATS (or `fompi-run -stats`, which sets it
// so worker processes inherit it). Three exposure paths share one Snapshot
// shape:
//
//   - a per-rank one-line JSON dump at Finish/Fail (internal/spmd),
//   - coordinator-side aggregation: netrun workers ship a STATS control
//     line at teardown and the coordinator merges them (FOMPI_STATS_OUT
//     writes the aggregate to a file),
//   - an optional -debug-addr HTTP listener serving expvar + net/http/pprof
//     (debug.go).
//
// Metrics are registered by name at package init of the instrumented
// packages; registration is idempotent, so two packages naming the same
// metric share it (the pacing counters are shared across backends this way).
package telemetry

import (
	"encoding/json"
	"math"
	"math/bits"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

const (
	// EnvVar enables telemetry when set non-empty (and not "0"); worker
	// processes inherit it from the launcher, like FOMPI_FAULTS.
	EnvVar = "FOMPI_STATS"
	// EnvOut names a file the netrun coordinator writes the aggregated
	// world snapshot to (one line of JSON); empty prints it to stderr.
	EnvOut = "FOMPI_STATS_OUT"
	// EnvDebugAddr, when set, makes spmd workers serve expvar + pprof on
	// the given listen address (see ServeDebug).
	EnvDebugAddr = "FOMPI_DEBUG_ADDR"
)

// enabled is the single hot-path gate: every Record/Add/RecordEvent loads it
// first and returns when unset, so disabled-mode cost is one atomic load and
// a branch (gated at 0 allocs/op by the bench check in telemetry_test.go).
var enabled atomic.Bool

func init() {
	if v := os.Getenv(EnvVar); v != "" && v != "0" {
		enabled.Store(true)
	}
}

// On reports whether telemetry is enabled. Instrumentation that must do
// extra work beyond a metric call (e.g. stamping a send time) checks it
// explicitly; plain metric calls need not — they gate internally.
func On() bool { return enabled.Load() }

// SetEnabled flips telemetry at runtime (tests, and launchers that resolve
// their -stats flag after init).
func SetEnabled(v bool) { enabled.Store(v) }

// ---- counters ----

// counterShards spreads concurrent Add traffic across cache lines; a power
// of two so the shard pick is a mask.
const counterShards = 8

// Counter is a sharded monotonic counter: each shard owns a cache line, and
// Add picks a shard from the caller's stack address — goroutines land on
// different lines without any per-goroutine state.
type Counter struct {
	name   string
	shards [counterShards]struct {
		v atomic.Uint64
		_ [56]byte // pad to a cache line
	}
}

// Add adds n. Nil receivers and disabled telemetry are no-ops.
func (c *Counter) Add(n uint64) {
	if c == nil || !enabled.Load() {
		return
	}
	var probe byte
	i := (uintptr(unsafe.Pointer(&probe)) >> 10) & (counterShards - 1)
	c.shards[i].v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Load folds the shards into the counter's current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// ---- histograms ----

// histBuckets is bits.Len64's range: bucket i counts values whose bit
// length is i, i.e. bucket 0 holds exactly 0 and bucket i>0 holds
// [2^(i-1), 2^i).
const histBuckets = 65

// Histogram is a fixed-bucket log2 histogram. Record is wait-free (two
// atomic adds); precision is one power of two per bucket, which is what
// latency and occupancy distributions need at zero allocation cost.
type Histogram struct {
	name string
	sum  atomic.Uint64
	b    [histBuckets]atomic.Uint64
}

// Record records one observation. Nil receivers and disabled telemetry are
// no-ops.
func (h *Histogram) Record(v uint64) {
	if h == nil || !enabled.Load() {
		return
	}
	h.sum.Add(v)
	h.b[bits.Len64(v)].Add(1)
}

// snapshot folds the buckets into a Hist (trailing zero buckets trimmed).
func (h *Histogram) snapshot() Hist {
	var s Hist
	last := -1
	var buckets [histBuckets]uint64
	for i := range h.b {
		n := h.b[i].Load()
		buckets[i] = n
		s.Count += n
		if n > 0 {
			last = i
		}
	}
	s.Sum = h.sum.Load()
	if last >= 0 {
		s.Buckets = append([]uint64(nil), buckets[:last+1]...)
	}
	return s
}

// Hist is a histogram snapshot: Buckets[i] counts values of bit length i
// (see histBuckets), trailing zeros trimmed.
type Hist struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// BucketMax returns the largest value bucket i can hold.
func BucketMax(i int) uint64 {
	switch {
	case i <= 0:
		return 0
	case i >= 64:
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the max
// of the bucket where the cumulative count crosses q·Count.
func (h Hist) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	want := uint64(q * float64(h.Count))
	if want >= h.Count {
		want = h.Count - 1
	}
	var cum uint64
	for i, n := range h.Buckets {
		cum += n
		if cum > want {
			return BucketMax(i)
		}
	}
	return BucketMax(len(h.Buckets) - 1)
}

// merge folds o into h bucket-wise.
func (h *Hist) merge(o Hist) {
	h.Count += o.Count
	h.Sum += o.Sum
	for len(h.Buckets) < len(o.Buckets) {
		h.Buckets = append(h.Buckets, 0)
	}
	for i, n := range o.Buckets {
		h.Buckets[i] += n
	}
}

// ---- the flight recorder ----

// EventKind is the type tag of one flight-recorder event. Faults and the
// recoveries they provoke share the stream, so a post-mortem tail reads as
// cause → effect.
type EventKind uint8

const (
	EvNone         EventKind = iota
	EvFaultReset             // faultnet tripped a connection reset; a=conn id, b=op count
	EvFaultDrop              // faultnet dropped a write; a=conn id, b=bytes
	EvFaultDelay             // faultnet delayed a write; a=conn id, b=delay ns
	EvFaultPartial           // faultnet tore a write in two; a=conn id, b=bytes
	EvFaultDial              // faultnet refused a dial; a=attempt number
	EvReconnect              // netrun lost a peer mid-window and is resuming; a=peer rank, b=head seq
	EvRetransmit             // netrun retransmitted an in-flight frame; a=peer rank, b=seq
	EvDedupHit               // owner served a replayed seq from the session cache; a=src rank, b=seq
	EvStall                  // a pacing stall valve released a rank; a=rank
	EvRankFail               // a RANKFAIL verdict arrived; a=blamed rank
	EvAbort                  // this process observed the world abort
)

var kindNames = [...]string{
	"", "fault.reset", "fault.drop", "fault.delay", "fault.partial",
	"fault.dial", "net.reconnect", "net.retransmit", "net.dedup_hit",
	"pace.stall", "rankfail", "abort",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// ringSlots sizes the flight recorder (a power of two); older events are
// overwritten in place.
const ringSlots = 256

// EventTail is how many trailing events Capture includes in a snapshot —
// the "last N events" that ride the stats frame to the coordinator.
const EventTail = 32

// ringSlot holds one event as four independently-atomic words. A reader
// racing the cursor's wrap can observe a torn event (fields from two
// writes); that is acceptable by design — the recorder is a post-mortem
// diagnostic, and word-atomicity keeps it exact under -race where a plain
// write would be a data race.
type ringSlot struct {
	t, kind, a, b atomic.Uint64
}

var ring struct {
	cur   atomic.Uint64
	slots [ringSlots]ringSlot
}

// RecordEvent appends one typed event to the flight recorder: a cursor
// fetch-add claims a slot, four atomic stores fill it. Zero-alloc,
// lock-free, and a single atomic load when disabled.
func RecordEvent(kind EventKind, a, b uint64) {
	if !enabled.Load() {
		return
	}
	i := ring.cur.Add(1) - 1
	s := &ring.slots[i&(ringSlots-1)]
	s.t.Store(uint64(time.Now().UnixNano()))
	s.kind.Store(uint64(kind))
	s.a.Store(a)
	s.b.Store(b)
}

// Event is one decoded flight-recorder entry. Rank is 0 in a per-rank
// snapshot (the enclosing Snapshot names the rank) and is stamped during
// aggregation so merged tails stay attributable.
type Event struct {
	Rank int    `json:"rank,omitempty"`
	T    int64  `json:"t"` // unix nanoseconds
	Kind string `json:"kind"`
	A    uint64 `json:"a,omitempty"`
	B    uint64 `json:"b,omitempty"`
}

// eventTail decodes the recorder's last n events, oldest first.
func eventTail(n int) []Event {
	cur := ring.cur.Load()
	if cur == 0 {
		return nil
	}
	avail := cur
	if avail > ringSlots {
		avail = ringSlots
	}
	if uint64(n) < avail {
		avail = uint64(n)
	}
	out := make([]Event, 0, avail)
	for i := cur - avail; i < cur; i++ {
		s := &ring.slots[i&(ringSlots-1)]
		k := EventKind(s.kind.Load())
		if k == EvNone {
			continue // claimed but not yet (or never) filled
		}
		out = append(out, Event{T: int64(s.t.Load()), Kind: k.String(), A: s.a.Load(), B: s.b.Load()})
	}
	return out
}

// ---- the registry ----

var registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewCounter returns the counter registered under name, creating it on
// first use. Registration is idempotent: packages that instrument the same
// logical metric (the pacing valve exists in three backends) share one
// counter by naming it identically.
func NewCounter(name string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.counters == nil {
		registry.counters = make(map[string]*Counter)
	}
	c := registry.counters[name]
	if c == nil {
		c = &Counter{name: name}
		registry.counters[name] = c
	}
	return c
}

// NewHistogram returns the histogram registered under name, creating it on
// first use (idempotent, like NewCounter).
func NewHistogram(name string) *Histogram {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.hists == nil {
		registry.hists = make(map[string]*Histogram)
	}
	h := registry.hists[name]
	if h == nil {
		h = &Histogram{name: name}
		registry.hists[name] = h
	}
	return h
}

// ---- snapshots and aggregation ----

// Snapshot is one process's (or one aggregated world's) telemetry state:
// the non-zero counters and histograms by name, plus the flight recorder's
// trailing events. It marshals to a single line of JSON (the control-plane
// stats frame and the per-rank dump are both one line by construction).
type Snapshot struct {
	Rank     int               `json:"rank"`            // -1: launcher/aggregate
	Ranks    int               `json:"ranks,omitempty"` // per-rank snapshots merged in
	Counters map[string]uint64 `json:"counters,omitempty"`
	Hists    map[string]Hist   `json:"hists,omitempty"`
	Events   []Event           `json:"events,omitempty"`
}

// mergedEventsMax bounds an aggregate's event tail so a large world's
// merged snapshot stays one bounded line.
const mergedEventsMax = 1024

// Capture snapshots the registry and the flight recorder's last EventTail
// events for the given rank. It allocates (maps, slices) and is meant for
// teardown, stats frames, and debug handlers — never hot paths.
func Capture(rank int) Snapshot {
	s := Snapshot{Rank: rank, Ranks: 1}
	registry.mu.Lock()
	for name, c := range registry.counters {
		if v := c.Load(); v > 0 {
			if s.Counters == nil {
				s.Counters = make(map[string]uint64)
			}
			s.Counters[name] = v
		}
	}
	for name, h := range registry.hists {
		if hs := h.snapshot(); hs.Count > 0 {
			if s.Hists == nil {
				s.Hists = make(map[string]Hist)
			}
			s.Hists[name] = hs
		}
	}
	registry.mu.Unlock()
	s.Events = eventTail(EventTail)
	for i := range s.Events {
		s.Events[i].Rank = rank
	}
	return s
}

// Merge folds o into s: counters sum, histograms merge bucket-wise, event
// tails concatenate (stamped with o's rank, oldest dropped past the cap).
func (s *Snapshot) Merge(o Snapshot) {
	s.Ranks += o.Ranks
	if o.Counters != nil && s.Counters == nil {
		s.Counters = make(map[string]uint64)
	}
	for k, v := range o.Counters {
		s.Counters[k] += v
	}
	if o.Hists != nil && s.Hists == nil {
		s.Hists = make(map[string]Hist)
	}
	for k, v := range o.Hists {
		h := s.Hists[k]
		h.merge(v)
		s.Hists[k] = h
	}
	for _, e := range o.Events {
		if e.Rank == 0 {
			e.Rank = o.Rank
		}
		s.Events = append(s.Events, e)
	}
	if len(s.Events) > mergedEventsMax {
		s.Events = s.Events[len(s.Events)-mergedEventsMax:]
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].T < s.Events[j].T })
}

// JSON renders the snapshot as one line (json.Marshal emits no newlines and
// sorts map keys, so equal snapshots render identically).
func (s Snapshot) JSON() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		return []byte(`{"rank":-1}`)
	}
	return b
}

// ParseSnapshot decodes one JSON snapshot line.
func ParseSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	err := json.Unmarshal(b, &s)
	return s, err
}
