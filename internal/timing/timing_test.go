package timing

import (
	"testing"
	"testing/quick"
	"time"
)

func TestConversions(t *testing.T) {
	if FromDuration(3*time.Microsecond) != 3000 {
		t.Fatal("FromDuration")
	}
	if Time(1500).Duration() != 1500*time.Nanosecond {
		t.Fatal("Duration")
	}
	if Time(2500).Micros() != 2.5 {
		t.Fatal("Micros")
	}
}

func TestMax(t *testing.T) {
	if Max(3, 7) != 7 || Max(7, 3) != 7 || Max(5, 5) != 5 {
		t.Fatal("Max")
	}
}

func TestStampsSetGet(t *testing.T) {
	s := NewStamps(64)
	s.Set(8, 100)
	s.Set(16, 50)
	if s.Get(8) != 100 || s.Get(16) != 50 || s.Get(24) != 0 {
		t.Fatal("point stamps")
	}
	if s.MaxRange(0, 64) != 100 {
		t.Fatal("max over range")
	}
}

func TestStampsSetRangeCoversPartialWords(t *testing.T) {
	s := NewStamps(64)
	s.SetRange(4, 8, 77) // straddles words 0 and 1
	if s.MaxRange(0, 8) != 77 || s.MaxRange(8, 8) != 77 {
		t.Fatal("straddling range must stamp both words")
	}
	if s.MaxRange(16, 8) != 0 {
		t.Fatal("untouched word stamped")
	}
}

func TestStampsMonotoneUnderOverlappingWrites(t *testing.T) {
	// Property: MaxRange never decreases as later (higher) stamps land.
	f := func(offs []uint8, stamps []uint16) bool {
		s := NewStamps(256)
		var hi Time
		n := len(offs)
		if len(stamps) < n {
			n = len(stamps)
		}
		for i := 0; i < n; i++ {
			off := int(offs[i]) % 31 * 8
			st := Time(stamps[i])
			if st > hi {
				hi = st
			}
			s.Set(off, st)
			if s.MaxRange(0, 256) > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
