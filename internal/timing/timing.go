// Package timing provides the virtual-time primitives used by the simulated
// RDMA fabric. Every rank carries a logical clock (nanoseconds); remote
// memory words carry shadow timestamps so that causality (poll-until-flag,
// lock hand-off, counters) merges clocks deterministically regardless of the
// host's real scheduling. See DESIGN.md §6.
package timing

import (
	"sync/atomic"
	"time"
)

// Time is a virtual-time instant in nanoseconds since program start.
type Time int64

// FromDuration converts a wall-clock duration into a virtual duration.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Duration converts a virtual instant/interval back to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Micros reports t in microseconds as a float, the unit used by the paper's
// latency figures.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Stamps tracks one shadow timestamp per 8-byte-aligned word of a registered
// memory region. All accesses are atomic: stamps are written by remote ranks
// concurrently with owner reads.
type Stamps struct {
	w []int64
}

// NewStamps creates shadow timestamps covering size bytes.
func NewStamps(size int) *Stamps {
	return &Stamps{w: make([]int64, (size+7)/8)}
}

// Set records that the word containing byte offset off was written by an
// operation completing at t.
func (s *Stamps) Set(off int, t Time) {
	atomic.StoreInt64(&s.w[off/8], int64(t))
}

// SetRange stamps every word overlapping [off, off+n) with completion time t.
func (s *Stamps) SetRange(off, n int, t Time) {
	if n <= 0 {
		return
	}
	first, last := off/8, (off+n-1)/8
	for i := first; i <= last; i++ {
		atomic.StoreInt64(&s.w[i], int64(t))
	}
}

// Get returns the stamp of the word containing byte offset off.
func (s *Stamps) Get(off int) Time {
	return Time(atomic.LoadInt64(&s.w[off/8]))
}

// MaxRange returns the latest stamp of any word overlapping [off, off+n).
func (s *Stamps) MaxRange(off, n int) Time {
	if n <= 0 {
		return 0
	}
	var m int64
	first, last := off/8, (off+n-1)/8
	for i := first; i <= last; i++ {
		if v := atomic.LoadInt64(&s.w[i]); v > m {
			m = v
		}
	}
	return Time(m)
}
