// Package timing provides the virtual-time primitives used by the simulated
// RDMA fabric. Every rank carries a logical clock (nanoseconds); remote
// memory words carry shadow timestamps so that causality (poll-until-flag,
// lock hand-off, counters) merges clocks deterministically regardless of the
// host's real scheduling. See DESIGN.md §6.
package timing

import (
	"runtime"
	"sync/atomic"
	"time"

	"fompi/internal/hostatomic"
)

// Time is a virtual-time instant in nanoseconds since program start.
type Time int64

// FromDuration converts a wall-clock duration into a virtual duration.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Duration converts a virtual instant/interval back to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Micros reports t in microseconds as a float, the unit used by the paper's
// latency figures.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// BlockWords is the width of one stamp summary block: 64 words = 512 bytes
// of registered memory per block.
const BlockWords = 64

// Stamps tracks one shadow timestamp per 8-byte-aligned word of a registered
// memory region. All accesses are atomic: stamps are written by remote ranks
// concurrently with owner reads.
//
// The layout is two-level so that bulk transfers do not pay one atomic per
// word. Words are grouped into blocks of BlockWords. A full-block SetRange
// — the put/get bulk path — records a single (fill stamp, fill epoch) pair
// per block instead of storing 64 word stamps; single-word writes record
// (stamp, epoch) in the word's own slots. A word's effective stamp is its
// own stamp when its epoch is at least the block's fill epoch (the word was
// written after the last covering fill), and the block's fill stamp
// otherwise. Epochs come from one per-Stamps counter bumped by each filling
// SetRange, so a fill logically supersedes every earlier word write in its
// blocks without touching them.
//
// Two per-block summaries keep range queries cheap: blockMax is a monotone
// upper bound on every stamp ever written to the block (MaxRange skips a
// block whose bound cannot raise the running maximum), and blockEpoch is
// the highest epoch of any single-word write in the block (when it is below
// the fill epoch, the fill stamp covers the whole block and MaxRange reads
// one value instead of scanning 64).
//
// Concurrent writers to the same word race exactly as they did with the
// flat one-word-one-slot layout: last writer wins, and a reader may observe
// either side of an in-flight write. Sequential (protocol-ordered) histories
// are observationally identical to the flat layout; TestStampsEquivalence
// checks that property against a reference implementation.
type Stamps struct {
	words  []int64  // per-word stamp, live iff wordEpoch >= its block's fill epoch
	wEpoch []uint32 // per-word epoch of the last single-word write

	fill   []int64  // per-block fill stamp (last covering SetRange)
	fEpoch []uint32 // per-block fill epoch (0 = never filled)

	blockMax   []int64  // per-block monotone upper bound of all stamps written
	blockEpoch []uint32 // per-block max epoch of single-word writes

	// epoch is the fill-epoch source; single-word writes sample it. It lives
	// in the uint32 slab (not the struct) so that stamps laid over a shared
	// memory segment share one counter across the processes of a
	// multi-process world.
	epoch *uint32

	// zeroStamped (0/1, same slab as epoch) records that some write carried
	// stamp 0 (an op issued at virtual time 0, e.g. a local store during
	// world setup): such a write raises no block summary, so the
	// summary-guided Reset/DirtyBlocks fast paths would miss the block —
	// they fall back to treating everything dirty instead.
	zeroStamped *uint32

	// chain (same slab) is the AMO serialization lock. Atomic read-modify-
	// write operations chain through their word's stamp — each reads the
	// prior stamp, bases its landing time on it, and writes the new stamp —
	// so two concurrent AMOs that both read the same prior stamp would break
	// the chain: the real-time loser's Set overwrites the winner's later
	// landing with an earlier one, and any rank that later merges the word's
	// stamp inherits the host scheduler's interleaving. Holding chain across
	// the read-apply-stamp sequence makes every chain link atomic, which
	// makes the stamp strictly monotone (land = max(clock, prev) + latency >
	// prev). It lives in the shared slab so the discipline spans the
	// processes of a multi-process or hybrid world.
	chain *uint32
}

// StampSlabLens returns the lengths of the two backing slabs — int64 words
// and uint32 words — that shadow stamps covering size bytes occupy. Backends
// that place stamps in shared memory carve slabs of exactly these lengths.
func StampSlabLens(size int) (n64, n32 int) {
	nw := (size + 7) / 8
	nb := (nw + BlockWords - 1) / BlockWords
	return nw + 2*nb, nw + 2*nb + 3 // +3: the shared epoch, zeroStamped, and chain-lock words
}

// NewStamps creates shadow timestamps covering size bytes. The six arrays
// are views into two backing slabs (one per element width) so a region's
// shadow state costs two allocations, not six.
func NewStamps(size int) *Stamps {
	n64, n32 := StampSlabLens(size)
	return NewStampsOver(make([]int64, n64), make([]uint32, n32), size)
}

// NewStampsOver lays shadow timestamps covering size bytes over caller-
// provided backing slabs, which must have exactly the StampSlabLens lengths
// and be all zero (or hold a previous layout's state: every process of a
// multi-process world builds its own view over the same shared slabs). The
// int64 slab must be 8-byte aligned, as atomic int64 access requires.
func NewStampsOver(i64 []int64, u32 []uint32, size int) *Stamps {
	n64, n32 := StampSlabLens(size)
	if len(i64) != n64 || len(u32) != n32 {
		panic("timing: stamp slab lengths do not match StampSlabLens")
	}
	nw := (size + 7) / 8
	nb := (nw + BlockWords - 1) / BlockWords
	return &Stamps{
		words: i64[:nw:nw], fill: i64[nw : nw+nb : nw+nb], blockMax: i64[nw+nb : nw+2*nb],
		wEpoch: u32[:nw:nw], fEpoch: u32[nw : nw+nb : nw+nb], blockEpoch: u32[nw+nb : nw+2*nb],
		epoch: &u32[nw+2*nb], zeroStamped: &u32[nw+2*nb+1], chain: &u32[nw+2*nb+2],
	}
}

// LockChain acquires the stamp-chain lock: every read-modify-stamp sequence
// (the AMO paths) must hold it from reading the word's prior stamp through
// writing the new one, so concurrent atomics serialize into one well-formed
// chain instead of racing on the prior stamp. The critical sections are a few
// loads and stores, so contention is resolved by spinning; the lock word
// lives in the shared slab, making the discipline effective across the
// processes of a shared-memory world.
func (s *Stamps) LockChain() {
	for !atomic.CompareAndSwapUint32(s.chain, 0, 1) {
		runtime.Gosched()
	}
}

// UnlockChain releases the stamp-chain lock.
func (s *Stamps) UnlockChain() { atomic.StoreUint32(s.chain, 0) }

// Reset returns the stamps to the all-zero state so the shadow arrays can be
// recycled across worlds (see internal/segpool). The per-block summaries
// make it cost proportional to what was written: a block whose summaries
// are all zero was never stamped with a nonzero value (every stamping path
// raises blockMax, blockEpoch, or fEpoch first), so its word arrays are
// still zero and are skipped. The caller must guarantee no concurrent
// writers, as with any recycling.
func (s *Stamps) Reset() {
	if atomic.LoadUint32(s.zeroStamped) != 0 {
		clear(s.words)
		clear(s.wEpoch)
		clear(s.fill)
		clear(s.fEpoch)
		clear(s.blockMax)
		clear(s.blockEpoch)
		atomic.StoreUint32(s.epoch, 0)
		atomic.StoreUint32(s.zeroStamped, 0)
		atomic.StoreUint32(s.chain, 0)
		return
	}
	for b := range s.fill {
		if s.blockMax[b] == 0 && s.fEpoch[b] == 0 && s.blockEpoch[b] == 0 {
			continue
		}
		lo := b * BlockWords
		hi := lo + BlockWords
		if hi > len(s.words) {
			hi = len(s.words)
		}
		clear(s.words[lo:hi])
		clear(s.wEpoch[lo:hi])
		s.fill[b], s.fEpoch[b] = 0, 0
		s.blockMax[b], s.blockEpoch[b] = 0, 0
	}
	atomic.StoreUint32(s.epoch, 0)
}

// DirtyBlocks calls fn for each block that may have been stamped since the
// last Reset, passing the block's byte extent [lo, hi) within the covered
// region. Recyclers use it to wipe only the written parts of a backing
// buffer whose writers all follow the stamp discipline.
func (s *Stamps) DirtyBlocks(fn func(lo, hi int)) {
	if atomic.LoadUint32(s.zeroStamped) != 0 {
		// A stamp-0 write is invisible to the summaries: everything may be
		// dirty.
		fn(0, len(s.words)*8)
		return
	}
	for b := range s.fill {
		if s.blockMax[b] == 0 && s.fEpoch[b] == 0 && s.blockEpoch[b] == 0 {
			continue
		}
		lo := b * BlockWords * 8
		hi := lo + BlockWords*8
		if n := len(s.words) * 8; hi > n {
			hi = n
		}
		fn(lo, hi)
	}
}

// Bytes returns the registered size the stamps cover (for pool lookups).
func (s *Stamps) Bytes() int { return len(s.words) * 8 }

// Set records that the word containing byte offset off was written by an
// operation completing at t.
func (s *Stamps) Set(off int, t Time) {
	if t == 0 {
		atomic.StoreUint32(s.zeroStamped, 1)
	}
	i := off / 8
	b := i / BlockWords
	e := atomic.LoadUint32(s.epoch)
	hostatomic.MaxI64(&s.blockMax[b], int64(t))
	hostatomic.MaxU32(&s.blockEpoch[b], e)
	// Stamp before epoch: a reader that observes the new epoch observes the
	// new stamp (or a yet newer one).
	atomic.StoreInt64(&s.words[i], int64(t))
	atomic.StoreUint32(&s.wEpoch[i], e)
}

// SetRange stamps every word overlapping [off, off+n) with completion time t.
// Fully covered blocks record one fill instead of per-word stamps; only the
// partially covered edge blocks pay per-word work.
func (s *Stamps) SetRange(off, n int, t Time) {
	if n <= 0 {
		return
	}
	if t == 0 {
		atomic.StoreUint32(s.zeroStamped, 1)
	}
	v := int64(t)
	first, last := off/8, (off+n-1)/8
	fb, lb := first/BlockWords, last/BlockWords
	firstFull, lastFull := fb, lb
	if first > fb*BlockWords {
		firstFull = fb + 1
	}
	if last < lb*BlockWords+BlockWords-1 {
		lastFull = lb - 1
	}
	var fillEpoch uint32
	if firstFull <= lastFull {
		// At least one block is fully covered: take a fresh fill epoch.
		// Exhausting the 32-bit counter would make old word epochs compare
		// as current again (silently stale stamps), so fault loudly first —
		// it takes 2^32 covering fills on one registration to get here.
		if fillEpoch = atomic.AddUint32(s.epoch, 1); fillEpoch == 0 {
			panic("timing: stamp fill-epoch counter exhausted; re-register the region")
		}
	}
	edgeEpoch := atomic.LoadUint32(s.epoch)
	for b := fb; b <= lb; b++ {
		lo := b * BlockWords
		hi := lo + BlockWords - 1
		hostatomic.MaxI64(&s.blockMax[b], v)
		if first <= lo && last >= hi {
			// Fill stamp before fill epoch: a reader observing the new
			// epoch observes the new stamp (or a newer one).
			atomic.StoreInt64(&s.fill[b], v)
			atomic.StoreUint32(&s.fEpoch[b], fillEpoch)
			continue
		}
		w0, w1 := lo, hi
		if first > w0 {
			w0 = first
		}
		if last < w1 {
			w1 = last
		}
		hostatomic.MaxU32(&s.blockEpoch[b], edgeEpoch)
		for i := w0; i <= w1; i++ {
			atomic.StoreInt64(&s.words[i], v)
			atomic.StoreUint32(&s.wEpoch[i], edgeEpoch)
		}
	}
}

// Get returns the stamp of the word containing byte offset off.
func (s *Stamps) Get(off int) Time {
	i := off / 8
	b := i / BlockWords
	fe := atomic.LoadUint32(&s.fEpoch[b])
	if atomic.LoadUint32(&s.wEpoch[i]) >= fe {
		return Time(atomic.LoadInt64(&s.words[i]))
	}
	return Time(atomic.LoadInt64(&s.fill[b]))
}

// MaxRange returns the latest stamp of any word overlapping [off, off+n).
func (s *Stamps) MaxRange(off, n int) Time {
	if n <= 0 {
		return 0
	}
	var m int64
	first, last := off/8, (off+n-1)/8
	if first == last {
		// Single word — the flag-merge hot path of every synchronization
		// protocol: resolve it like Get instead of walking block summaries.
		return s.Get(off)
	}
	fb, lb := first/BlockWords, last/BlockWords
	for b := fb; b <= lb; b++ {
		lo := b * BlockWords
		hi := lo + BlockWords - 1
		full := first <= lo && last >= hi
		if full && atomic.LoadInt64(&s.blockMax[b]) <= m {
			continue // the bound proves nothing in this block can raise m
		}
		fe := atomic.LoadUint32(&s.fEpoch[b])
		uniform := atomic.LoadUint32(&s.blockEpoch[b]) < fe
		if uniform {
			// No single-word write since the last fill: the fill stamp
			// covers every word of the block, in or out of range.
			if f := atomic.LoadInt64(&s.fill[b]); f > m {
				m = f
			}
			continue
		}
		w0, w1 := lo, hi
		if first > w0 {
			w0 = first
		}
		if last < w1 {
			w1 = last
		}
		fillCounted := false
		for i := w0; i <= w1; i++ {
			if atomic.LoadUint32(&s.wEpoch[i]) >= fe {
				if v := atomic.LoadInt64(&s.words[i]); v > m {
					m = v
				}
			} else if !fillCounted {
				if f := atomic.LoadInt64(&s.fill[b]); f > m {
					m = f
				}
				fillCounted = true
			}
		}
	}
	return Time(m)
}
