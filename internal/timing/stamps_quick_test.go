package timing

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// flatStamps is the reference implementation the block-summary layout must
// be observationally equivalent to: one slot per word, no summaries.
type flatStamps struct {
	w []int64
}

func newFlatStamps(size int) *flatStamps { return &flatStamps{w: make([]int64, (size+7)/8)} }

func (s *flatStamps) Set(off int, t Time) { s.w[off/8] = int64(t) }

func (s *flatStamps) SetRange(off, n int, t Time) {
	if n <= 0 {
		return
	}
	for i := off / 8; i <= (off+n-1)/8; i++ {
		s.w[i] = int64(t)
	}
}

func (s *flatStamps) Get(off int) Time { return Time(s.w[off/8]) }

func (s *flatStamps) MaxRange(off, n int) Time {
	if n <= 0 {
		return 0
	}
	var m int64
	for i := off / 8; i <= (off+n-1)/8; i++ {
		if s.w[i] > m {
			m = s.w[i]
		}
	}
	return Time(m)
}

// stampOp is one step of a random history. Fields are clamped in apply, so
// any random values testing/quick generates form a valid program.
type stampOp struct {
	Kind uint8 // %3: 0 Set, 1 SetRange, 2 MaxRange
	Off  uint16
	N    uint16
	T    uint16
}

// stampsIface lets apply drive both implementations identically.
type stampsIface interface {
	Set(off int, t Time)
	SetRange(off, n int, t Time)
	Get(off int) Time
	MaxRange(off, n int) Time
}

// apply runs op against s over a region of size bytes and returns the value
// the op observed (0 for writes).
func apply(s stampsIface, op stampOp, size int) Time {
	off := int(op.Off) % size
	n := int(op.N) % (size - off + 1)
	t := Time(op.T)
	switch op.Kind % 3 {
	case 0:
		s.Set(off-off%8, t)
		return 0
	case 1:
		s.SetRange(off, n, t)
		return 0
	default:
		return s.MaxRange(off, n)
	}
}

// TestStampsEquivalence drives random sequential histories of Set, SetRange,
// and MaxRange through the block-summary Stamps and the flat reference, and
// requires every observation — including a final per-word Get sweep — to
// match. This is the observational-equivalence property DESIGN.md §6 claims
// for the two-level layout.
func TestStampsEquivalence(t *testing.T) {
	// Sizes straddle the BlockWords boundary: sub-block, exactly one block,
	// and multi-block with a ragged tail.
	for _, size := range []int{40, 8 * BlockWords, 8*3*BlockWords + 24} {
		size := size
		f := func(ops []stampOp) bool {
			a := NewStamps(size)
			b := newFlatStamps(size)
			for _, op := range ops {
				if got, want := apply(a, op, size), apply(b, op, size); got != want {
					t.Logf("size %d: op %+v observed %d, flat %d", size, op, got, want)
					return false
				}
			}
			for off := 0; off+8 <= size; off += 8 {
				if got, want := a.Get(off), b.Get(off); got != want {
					t.Logf("size %d: final Get(%d) = %d, flat %d", size, off, got, want)
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{
			MaxCount: 400,
			Rand:     rand.New(rand.NewSource(int64(size))),
		}); err != nil {
			t.Errorf("size %d: %v", size, err)
		}
	}
}

// TestStampsResetRecycles checks that Reset returns a used Stamps to the
// all-zero state the pool contract requires.
func TestStampsResetRecycles(t *testing.T) {
	s := NewStamps(8 * 4 * BlockWords)
	s.SetRange(0, 8*4*BlockWords, 99)
	s.Set(16, 123)
	s.Reset()
	if got := s.MaxRange(0, 8*4*BlockWords); got != 0 {
		t.Fatalf("MaxRange after Reset = %d, want 0", got)
	}
	if got := s.Get(16); got != 0 {
		t.Fatalf("Get after Reset = %d, want 0", got)
	}
	if s.Bytes() != 8*4*BlockWords {
		t.Fatalf("Bytes = %d", s.Bytes())
	}
}
