// Package wordcoll implements word-sized collectives (dissemination
// barrier, recursive-doubling allreduce, binomial broadcast) over raw
// one-sided fabric operations. Both the SPMD runtime (internal/spmd) and
// the PGAS comparator layers (internal/pgas) instantiate it over their own
// endpoints and cost models, so a "upc_barrier" and an "MPI barrier" run
// the identical communication pattern and differ only by their calibrated
// software overheads — the property the paper's Figure 6b comparison needs.
//
// # Channel reuse discipline
//
// Flag channels are matched with monotonic ">= seq" waits (a writer may
// never be waited on with equality: overwrites could skip values). Because
// ranks may run one collective ahead of a peer — a dissemination round
// sends before it waits — each allreduce and barrier channel is
// double-buffered by invocation parity: writing invocation k+2 on a slot
// requires completing k+1, which requires the peer's k+1 message, which the
// peer sends only after fully finishing k. The parity argument needs
// consecutive same-primitive invocations to alternate parity OR be
// separated by a fully-synchronizing collective; Barrier is fully
// synchronizing and Bcast8 ends with one, so a shared sequence counter
// across all primitives preserves the invariant.
package wordcoll

import (
	"math"

	"fompi/internal/simnet"
)

// Layout of the collective header area within the backing region.
const (
	maxRounds = 40 // supports up to 2^40 ranks
	barOff    = 0
	redOff    = barOff + 2*maxRounds*8    // barrier flags, parity-doubled
	redSlot   = 16                        // flag word + value word
	redSlots  = 2*maxRounds + 4           // parity-doubled rounds + fold-in/out pairs
	bcOff     = redOff + redSlots*redSlot // bcast flag + value channel

	// HdrBytes is the size of the collective header a backing region must
	// reserve at Base.
	HdrBytes = bcOff + 16
)

// Op identifies a reduction operator for Allreduce8.
type Op int

// Reduction operators. OpFSum treats words as float64 bits.
const (
	OpSum Op = iota
	OpMin
	OpMax
	OpBand
	OpBor
	OpFSum
)

// Apply combines two words under the operator.
func (o Op) Apply(a, b uint64) uint64 {
	switch o {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpBand:
		return a & b
	case OpBor:
		return a | b
	case OpFSum:
		return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
	default:
		panic("wordcoll: unknown reduction op")
	}
}

// Group is one rank's handle of a collective channel set. All ranks of the
// group must build Groups over symmetric regions: the same Key and Base on
// every rank, with HdrBytes of space reserved.
type Group struct {
	EP   *simnet.Endpoint
	Reg  *simnet.Region // this rank's backing region
	Key  simnet.Key     // symmetric region key
	Base int            // byte offset of the collective header in the region
	Rank int
	Size int
	Seq  *uint64 // shared invocation counter (owned by the caller's layer)
}

func (g Group) nextSeq() uint64 { *g.Seq++; return *g.Seq }

// addr names a header byte at a peer.
func (g Group) addr(rank, off int) simnet.Addr {
	return simnet.Addr{Rank: rank, Key: g.Key, Off: g.Base + off}
}

// waitFlagGE blocks until the local flag at off reaches seq and merges the
// writer's virtual completion stamp into the clock.
func (g Group) waitFlagGE(off int, seq uint64) {
	aoff := g.Base + off
	g.EP.WaitLocal(func() bool { return g.Reg.LocalWord(aoff) >= seq })
	g.EP.MergeStamp(g.Reg, aoff, 8)
}

// barSlotOff returns the parity-doubled barrier flag offset for a round.
func barSlotOff(round int, seq uint64) int { return barOff + (round*2+int(seq&1))*8 }

// Barrier synchronizes all ranks of the group: ceil(log2 p) dissemination
// rounds of one remote flag update each. O(1) memory, O(log p) time.
func (g Group) Barrier() {
	if g.Size == 1 {
		return
	}
	seq := g.nextSeq()
	round := 0
	for dist := 1; dist < g.Size; dist <<= 1 {
		peer := (g.Rank + dist) % g.Size
		off := barSlotOff(round, seq)
		// A dissemination round is a single store, so it already issues
		// with one pacing check and one doorbell; a batch scope would add
		// only bookkeeping.
		g.EP.StoreW(g.addr(peer, off), seq)
		g.waitFlagGE(off, seq)
		round++
	}
}

func redSlotIdx(round int, seq uint64) int { return round*2 + int(seq&1) }
func foldInSlot(seq uint64) int            { return 2*maxRounds + int(seq&1) }
func foldOutSlot(seq uint64) int           { return 2*maxRounds + 2 + int(seq&1) }

// sendRed writes (value, flag=seq) into a peer's allreduce channel as one
// issue batch: the pair costs one pacing check, one region lookup, and one
// doorbell. No completion call separates the two stores: the receiver merges
// both words' virtual completion stamps, which orders value-before-flag
// causally without stalling the sender for a round trip per round.
func (g Group) sendRed(peer, slot int, seq, v uint64) {
	base := redOff + slot*redSlot
	g.EP.BeginBatch()
	g.EP.StoreW(g.addr(peer, base+8), v)
	g.EP.StoreW(g.addr(peer, base), seq)
	g.EP.EndBatch()
}

// recvRed waits for the channel's flag and returns the delivered value,
// merging the value word's stamp as well as the flag's.
func (g Group) recvRed(slot int, seq uint64) uint64 {
	base := redOff + slot*redSlot
	g.waitFlagGE(base, seq)
	g.EP.MergeStamp(g.Reg, g.Base+base+8, 8)
	return g.Reg.LocalWord(g.Base + base + 8)
}

// Allreduce8 reduces one word across the group (recursive doubling with
// fold-in/fold-out for non-power-of-two sizes); every rank returns the full
// reduction. O(log p) time and messages.
func (g Group) Allreduce8(op Op, v uint64) uint64 {
	if g.Size == 1 {
		return v
	}
	seq := g.nextSeq()
	pow2 := 1
	for pow2*2 <= g.Size {
		pow2 *= 2
	}
	rem := g.Size - pow2

	// Fold-in: extra ranks contribute to their partner and wait for the
	// folded-out result.
	if g.Rank >= pow2 {
		g.sendRed(g.Rank-pow2, foldInSlot(seq), seq, v)
		return g.recvRed(foldOutSlot(seq), seq)
	}
	if g.Rank < rem {
		v = op.Apply(v, g.recvRed(foldInSlot(seq), seq))
	}
	round := 0
	for mask := 1; mask < pow2; mask <<= 1 {
		peer := g.Rank ^ mask
		g.sendRed(peer, redSlotIdx(round, seq), seq, v)
		v = op.Apply(v, g.recvRed(redSlotIdx(round, seq), seq))
		round++
	}
	if g.Rank < rem {
		g.sendRed(g.Rank+pow2, foldOutSlot(seq), seq, v)
	}
	return v
}

// Bcast8 broadcasts one word from root with a binomial tree, closed by a
// Barrier. The barrier is what makes channel reuse safe here: with varying
// roots the channel's writer changes between invocations, and without full
// synchronization a parent (which otherwise never waits) could start a
// later broadcast and overwrite the value before a slow child read it.
func (g Group) Bcast8(root int, v uint64) uint64 {
	if g.Size == 1 {
		return v
	}
	seq := g.nextSeq()
	vrank := (g.Rank - root + g.Size) % g.Size

	mask := 1
	for mask < g.Size {
		if vrank&mask != 0 {
			g.waitFlagGE(bcOff, seq)
			g.EP.MergeStamp(g.Reg, g.Base+bcOff+8, 8)
			v = g.Reg.LocalWord(g.Base + bcOff + 8)
			break
		}
		mask <<= 1
	}
	// All child sends issue as one batch: one pacing check and one doorbell
	// per child instead of two of each.
	g.EP.BeginBatch()
	for mask >>= 1; mask > 0; mask >>= 1 {
		if child := vrank + mask; vrank&(mask-1) == 0 && vrank&mask == 0 && child < g.Size {
			peer := (child + root) % g.Size
			g.EP.StoreW(g.addr(peer, bcOff+8), v)
			g.EP.StoreW(g.addr(peer, bcOff), seq)
		}
	}
	g.EP.EndBatch()
	g.Barrier()
	return v
}

// FAllreduce reduces a float64 with OpFSum (convenience).
func (g Group) FAllreduce(x float64) float64 {
	return math.Float64frombits(g.Allreduce8(OpFSum, math.Float64bits(x)))
}
