package wordcoll

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"fompi/internal/simnet"
)

// world builds n rank goroutines with wordcoll groups over a fresh fabric
// and runs body on each.
func world(n int, body func(g Group)) {
	fab := simnet.NewFabric(n, 4)
	regs := make([]*simnet.Region, n)
	eps := make([]*simnet.Endpoint, n)
	for r := 0; r < n; r++ {
		eps[r] = fab.Endpoint(r, simnet.FoMPI())
		regs[r] = eps[r].Register(HdrBytes)
	}
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			seq := uint64(0)
			body(Group{EP: eps[r], Reg: regs[r], Key: regs[r].Key(), Base: 0,
				Rank: r, Size: n, Seq: &seq})
		}(r)
	}
	wg.Wait()
}

func TestBarrierAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16, 33} {
		var entered int64
		var mu sync.Mutex
		world(n, func(g Group) {
			mu.Lock()
			entered++
			mu.Unlock()
			g.Barrier()
			mu.Lock()
			if entered != int64(n) {
				t.Errorf("n=%d: rank %d passed barrier with %d entries", n, g.Rank, entered)
			}
			mu.Unlock()
			g.Barrier()
		})
	}
}

func TestAllreduceAllOps(t *testing.T) {
	for _, n := range []int{2, 3, 7, 8, 16} {
		world(n, func(g Group) {
			if got, want := g.Allreduce8(OpSum, uint64(g.Rank)+1), uint64(n*(n+1)/2); got != want {
				t.Errorf("n=%d sum: got %d want %d", n, got, want)
			}
			if got := g.Allreduce8(OpMin, uint64(g.Rank)+3); got != 3 {
				t.Errorf("n=%d min: got %d", n, got)
			}
			if got, want := g.Allreduce8(OpMax, uint64(g.Rank)), uint64(n-1); got != want {
				t.Errorf("n=%d max: got %d want %d", n, got, want)
			}
			if got := g.FAllreduce(0.5); math.Abs(got-0.5*float64(n)) > 1e-9 {
				t.Errorf("n=%d fsum: got %g", n, got)
			}
		})
	}
}

func TestBcastRotatingRoots(t *testing.T) {
	const n = 9
	world(n, func(g Group) {
		for root := 0; root < n; root++ {
			v := uint64(0)
			if g.Rank == root {
				v = uint64(root*100 + 7)
			}
			if got := g.Bcast8(root, v); got != uint64(root*100+7) {
				t.Errorf("root %d rank %d: got %d", root, g.Rank, got)
			}
		}
	})
}

func TestInterleavedCollectivesStress(t *testing.T) {
	// Many back-to-back collectives exercise the parity double-buffering:
	// without it, a rank racing one invocation ahead corrupts values.
	const n = 8
	world(n, func(g Group) {
		for i := 0; i < 200; i++ {
			if got, want := g.Allreduce8(OpSum, 1), uint64(n); got != want {
				t.Errorf("iter %d: got %d want %d", i, got, want)
				return
			}
		}
	})
}

func TestOpApplyProperties(t *testing.T) {
	// All operators are commutative and associative — the property that
	// makes recursive doubling correct regardless of combine order.
	f := func(a, b, c uint64, sel uint8) bool {
		op := []Op{OpSum, OpMin, OpMax, OpBand, OpBor}[int(sel)%5]
		if op.Apply(a, b) != op.Apply(b, a) {
			return false
		}
		return op.Apply(op.Apply(a, b), c) == op.Apply(a, op.Apply(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMatchesSequentialProperty(t *testing.T) {
	f := func(vals []uint32, sel uint8) bool {
		if len(vals) < 2 || len(vals) > 10 {
			return true
		}
		op := []Op{OpSum, OpMin, OpMax, OpBand, OpBor}[int(sel)%5]
		want := uint64(vals[0])
		for _, v := range vals[1:] {
			want = op.Apply(want, uint64(v))
		}
		ok := true
		world(len(vals), func(g Group) {
			if got := g.Allreduce8(op, uint64(vals[g.Rank])); got != want {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
