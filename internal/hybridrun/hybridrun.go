// Package hybridrun is the topology-aware transport backend: the inter-node
// world of internal/netrun, with ranks that share a physical host grouped
// onto one mmap-shared arena (internal/mprun's Arena). It is the shape of the
// paper's actual deployment — foMPI drives XPMEM mappings between same-node
// ranks and DMAPP messages between nodes — where the pure backends are the
// two halves in isolation.
//
// The rendezvous rides netrun's coordinator: every JOIN carries a host key
// (Options.Net.HostKey, $FOMPI_NET_HOST, or the hostname), the WORLD catalog
// broadcasts all of them, and each rank derives its host group locally — the
// ranks with its key, in ascending rank order, become the local indices of
// one per-host arena file keyed on the (world-unique) address catalog. The
// lowest co-located rank creates the arena; the rest map it; the creator
// unlinks it once the GO barrier proves everyone has.
//
// Data-plane routing is by host group: a co-located peer's region resolves
// through the arena — direct loads and stores on shared buffers and stamp
// slabs, exactly the mmap backend's fast path, which is what makes
// Endpoint.Shared (MPI-3 shared-memory windows) work across processes — and
// an off-host peer's region resolves to netrun's wire proxy with fused
// one-message execution. Doorbells are unified per rank: co-located ranks
// ring and wait on the arena doorbell directly, and off-host rings/waits
// arriving over the wire are redirected into the same doorbell through
// netrun's DoorOps hook. NIC intervals and pacing stay single-homed in the
// owner's process (netrun's discipline), so virtual times remain
// bit-identical to every other backend (internal/transporttest pins this).
//
// In loopback spawn mode the launcher assigns rank r the host key
// "h<r/RanksPerNode>": the emulated placement matches the virtual topology,
// so same-(virtual-)node ranks share an arena and cross-node ranks exercise
// the wire — both paths of a real multi-host deployment on one machine. In
// host-list mode the operator exports FOMPI_HYB_WORLD=1 and a per-host
// FOMPI_NET_HOST alongside netrun's variables.
package hybridrun

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"fompi/internal/mprun"
	"fompi/internal/netrun"
	"fompi/internal/rankio"
	"fompi/internal/segpool"
	"fompi/internal/simnet"
)

const (
	// envWorld marks a process as a hybrid worker. netrun's environment alone
	// cannot: a hybrid worker also satisfies netrun.IsWorker, and launch-path
	// dispatch (spmd.Run, the conformance harness) must tell them apart.
	envWorld = "FOMPI_HYB_WORLD"

	// arenaWait bounds how long a non-creator rank polls for the creator's
	// arena file (the creator may still be between JOIN and create).
	arenaWait = 60 * time.Second

	// doorWaitSlice bounds a local arena doorbell park (WaitDoor): wire
	// RINGs are fire-and-forget, so a data-plane reset can lose the bump —
	// the slice converts that into a bounded predicate re-check.
	doorWaitSlice = 100 * time.Millisecond
)

// Options describes a hybrid world: the inter-node rendezvous plus the
// per-host arena size.
type Options struct {
	// Net is the inter-node world (coordinator, ranks, pacing). Launch marks
	// the spawned workers with FOMPI_HYB_WORLD=1 through Net.ExtraEnv.
	Net netrun.Options
	// ArenaBytes is each rank's registered-memory arena inside its host
	// group's shared mapping (default 16 MiB).
	ArenaBytes int
}

func (o Options) withDefaults() Options {
	if o.Net.Ranks <= 0 {
		o.Net.Ranks = 1
	}
	if o.Net.RanksPerNode <= 0 {
		o.Net.RanksPerNode = 1
	}
	if o.ArenaBytes <= 0 {
		o.ArenaBytes = 16 << 20
	}
	return o
}

// IsWorker reports whether this process was launched as a worker rank of a
// hybrid world. Hybrid workers also satisfy netrun.IsWorker (the coordinator
// environment is present); dispatchers must check this predicate first.
func IsWorker() bool { return os.Getenv(envWorld) != "" }

// Launch creates a hybrid world over netrun's coordinator. In loopback spawn
// mode, ranks get emulated host keys matching the virtual topology (one host
// per virtual node) unless Options.Net.HostKeys overrides the placement; in
// host-list mode the operator's workers must export FOMPI_HYB_WORLD=1 and
// their host's FOMPI_NET_HOST.
func Launch(o Options) error {
	o = o.withDefaults()
	n := o.Net
	if len(n.Hosts) == 0 && len(n.HostKeys) == 0 {
		keys := make([]string, n.Ranks)
		for r := range keys {
			keys[r] = fmt.Sprintf("h%d", r/n.RanksPerNode)
		}
		n.HostKeys = keys
	}
	n.ExtraEnv = append(append([]string{}, n.ExtraEnv...), envWorld+"=1")
	if len(n.Hosts) != 0 {
		rankio.Logf("hybridrun", "host-list mode: also export %s=1 (and per-host %s) in each worker's environment",
			envWorld, "FOMPI_NET_HOST")
	}
	return netrun.Launch(n)
}

// staleArenaAge is how old a leftover arena file or doorbell socket must be
// before the sweeper touches it: far beyond any bootstrap window (the
// creator unlinks its file at Ready, within arenaWait), so an in-flight
// world's file is never mistaken for wreckage.
const staleArenaAge = 15 * time.Minute

// SweepStaleArenas removes arena files and doorbell sockets that hybrid
// worlds killed mid-bootstrap left under os.TempDir (a world that reached
// Ready unlinked its file itself). A doorbell socket is removed only when
// nothing is bound behind its inode — a live long-running world still
// answers on its sockets however old they are. Runs best-effort at each
// creator's attach; returns the number of paths removed.
func SweepStaleArenas(minAge time.Duration) int {
	paths, _ := filepath.Glob(filepath.Join(os.TempDir(), "fompi-hyb-*"))
	removed := 0
	for _, p := range paths {
		st, err := os.Lstat(p)
		if err != nil || time.Since(st.ModTime()) < minAge {
			continue
		}
		if st.Mode()&os.ModeSocket != 0 && doorAlive(p) {
			continue
		}
		if os.Remove(p) == nil {
			rankio.Logf("hybridrun", "removed stale arena path %s (left by a crashed world)", p)
			removed++
		}
	}
	return removed
}

// doorAlive probes a doorbell socket path: sending a datagram to a dead
// socket's leftover inode is refused, while a live waiter's socket accepts
// it (at worst as a spurious doorbell poke, which waiters tolerate by
// design). Any error other than a connection refusal is read as "alive" —
// the sweeper must never kill a working world's doorbell.
func doorAlive(path string) bool {
	c, err := net.DialUnix("unixgram", nil, &net.UnixAddr{Name: path, Net: "unixgram"})
	if err != nil {
		return !errors.Is(err, syscall.ECONNREFUSED)
	}
	defer c.Close()
	c.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
	_, err = c.Write([]byte{1})
	return !errors.Is(err, syscall.ECONNREFUSED)
}

// World is one worker's attachment to a hybrid world: the netrun world for
// everything inter-node, with the host group's arena layered over segments,
// regions, and doorbells.
type World struct {
	*netrun.World
	ar      *mprun.Arena
	local   []int // global ranks of this host group, ascending
	lidx    []int // global rank -> local index, -1 off-host
	self    int   // this rank's local index
	creator bool
}

var _ simnet.Transport = (*World)(nil)

// Join attaches a worker process to its world: the netrun rendezvous first,
// then the host group's shared arena (created by the group's lowest rank,
// mapped by the rest).
func Join(o Options) (*World, error) {
	o = o.withDefaults()
	nw, err := netrun.Join(o.Net)
	if err != nil {
		return nil, err
	}
	w := &World{World: nw}
	if err := w.attachArena(o); err != nil {
		return nil, err
	}
	// Off-host rings and waits arriving over the wire must land on the same
	// doorbell the co-located ranks touch directly. Installed before Ready,
	// so no peer traffic races the handoff.
	nw.SetDoorOps(&netrun.DoorOps{
		Ring: func() { w.ar.Ring(w.self) },
		Gen:  func() uint64 { return w.ar.DoorGen(w.self) },
		WaitSliced: func(gen uint64, slice time.Duration) uint64 {
			return w.ar.WaitDoorSliced(w.self, gen, slice, nw.Aborted)
		},
	})
	// An abort (local panic or coordinator broadcast) must wake the arena
	// parks too: bump every local doorbell so waiters re-check Aborted. The
	// RANKFAIL verdict rides along when there is one, so ranks parked in the
	// arena unwind with the same typed error as ranks parked on the wire.
	nw.OnAbort(func() {
		if r := nw.FailedRank(); r >= 0 {
			w.ar.SetAbortFlagBlaming(r)
		} else {
			w.ar.SetAbortFlag()
		}
	})
	return w, nil
}

// attachArena derives this rank's host group from the WORLD catalog and maps
// the group's shared arena.
func (w *World) attachArena(o Options) error {
	hosts := w.World.Hosts()
	rank := w.World.Rank()
	key := hosts[rank]
	w.lidx = make([]int, len(hosts))
	for r, h := range hosts {
		w.lidx[r] = -1
		if h == key {
			w.lidx[r] = len(w.local)
			w.local = append(w.local, r)
		}
	}
	w.self = w.lidx[rank]
	w.creator = rank == w.local[0]
	// The arena file is keyed on the world's address catalog (ephemeral
	// ports: unique per world) plus the host key, so concurrent worlds on
	// one machine never collide and a stale file is from a dead world.
	sum := sha256.Sum256([]byte(strings.Join(w.World.Addrs(), ",") + "|" +
		strings.Join(hosts, ",") + "|" + key))
	path := filepath.Join(os.TempDir(), "fompi-hyb-"+hex.EncodeToString(sum[:6]))
	cfg := mprun.ArenaConfig{
		Ranks:        len(w.local),
		RanksPerNode: o.Net.RanksPerNode,
		PaceWindowNs: o.Net.PaceWindowNs,
		ArenaBytes:   o.ArenaBytes,
	}
	var err error
	if w.creator {
		SweepStaleArenas(staleArenaAge) // hygiene: other dead worlds' leftovers
		os.Remove(path)                 // a leftover of a crashed world, never a live one
		w.ar, err = mprun.CreateArena(path, cfg)
	} else {
		w.ar, err = mprun.OpenArena(path, cfg, arenaWait)
	}
	if err != nil {
		return fmt.Errorf("hybridrun: host group %q arena: %w", key, err)
	}
	if err := w.ar.Bind(w.self); err != nil {
		return fmt.Errorf("hybridrun: host group %q arena: %w", key, err)
	}
	return nil
}

// Ready enters the bootstrap barrier (netrun's READY/GO); once it returns,
// every co-located rank has mapped the arena, so the creator unlinks the
// file — nothing is left behind however the world later dies.
func (w *World) Ready() {
	w.World.Ready()
	if w.creator {
		w.ar.Unlink()
	}
}

// Finish reports clean completion and releases the arena mapping.
func (w *World) Finish() {
	w.World.Finish()
	w.ar.Close()
}

// Fail aborts the world, reports msg, and releases the arena mapping.
func (w *World) Fail(msg string) {
	w.World.Fail(msg)
	w.ar.Close()
}

// ---- simnet.Transport overrides: segments and regions ----

// AllocSeg carves a registrable segment from this rank's slice of the host
// group's arena — the memory co-located peers can map — rather than the
// process heap netrun would use.
func (w *World) AllocSeg(rank, size int) *segpool.Seg {
	if rank != w.World.Rank() {
		panic("hybridrun: AllocSeg for a foreign rank")
	}
	return w.ar.AllocSeg(w.self, size)
}

// RecycleSeg returns a segment to this rank's arena free list.
func (w *World) RecycleSeg(rank int, s *segpool.Seg, scrubbed bool, extra ...segpool.Range) {
	if rank != w.World.Rank() {
		panic("hybridrun: RecycleSeg for a foreign rank")
	}
	w.ar.Recycle(s, scrubbed, extra...)
}

// RegisterRegion publishes a registration on both planes: netrun's directory
// (the service loop resolves off-host requests against it) and the arena
// directory (co-located peers map it). Both assign keys densely in
// registration order, so the two directories agree by construction; the
// assert guards the invariant every address in the world relies on.
func (w *World) RegisterRegion(rank int, reg *simnet.Region) simnet.Key {
	k := w.World.RegisterRegion(rank, reg)
	if ak := w.ar.Register(w.self, reg); ak != uint32(k) {
		panic(fmt.Sprintf("hybridrun: key divergence between wire (%d) and arena (%d) directories", k, ak))
	}
	return k
}

// UnregisterRegion marks the registration dead on both planes.
func (w *World) UnregisterRegion(rank int, k simnet.Key) {
	w.World.UnregisterRegion(rank, k)
	w.ar.Unregister(w.self, uint32(k))
}

// LookupRegion resolves an address by host group: this rank's own
// registrations resolve locally, a co-located peer's through the shared
// arena (direct loads/stores — the XPMEM path, so Endpoint.Shared works
// across these processes), an off-host peer's to netrun's wire proxy.
func (w *World) LookupRegion(a simnet.Addr) *simnet.Region {
	if a.Rank < 0 || a.Rank >= len(w.lidx) {
		panic(fmt.Sprintf("simnet: address names rank %d outside fabric of %d", a.Rank, len(w.lidx)))
	}
	if a.Rank != w.World.Rank() {
		if l := w.lidx[a.Rank]; l >= 0 {
			return w.ar.Lookup(l, uint32(a.Key), a.Rank)
		}
	}
	return w.World.LookupRegion(a)
}

// ---- simnet.Transport overrides: doorbells ----
//
// Each rank has exactly one doorbell — its slot in the host group's arena.
// Co-located ranks ring and wait on it directly; off-host ranks reach it over
// the wire, where the owner's DoorOps redirect lands on the same slot. NIC
// intervals and pacing deliberately stay on netrun's inherited paths: that
// state is single-homed in the owner's process, and same-host cross-(virtual-)
// node operations must book the same NIC the off-host ones do.

// RingDoorbell bumps rank's doorbell: on the arena for the host group
// (including this rank), over the wire otherwise.
func (w *World) RingDoorbell(rank int) {
	if l := w.lidx[rank]; l >= 0 {
		w.ar.Ring(l)
		return
	}
	w.World.RingDoorbell(rank)
}

// DoorGen samples rank's doorbell generation.
func (w *World) DoorGen(rank int) uint64 {
	if l := w.lidx[rank]; l >= 0 {
		return w.ar.DoorGen(l)
	}
	return w.World.DoorGen(rank)
}

// WaitDoor blocks until rank's doorbell generation exceeds gen: an arena park
// for the host group, sliced wire waits otherwise. The arena park is sliced
// too — an off-host writer's RING rides the wire outside the session layer,
// so a data-plane reset can eat the frame that would have bumped the arena
// generation; the spurious return lets the caller re-check its predicate.
func (w *World) WaitDoor(rank int, gen uint64) uint64 {
	if l := w.lidx[rank]; l >= 0 {
		return w.ar.WaitDoorSliced(l, gen, doorWaitSlice, w.World.Aborted)
	}
	return w.World.WaitDoor(rank, gen)
}
