package pgas

import (
	"bytes"
	"testing"

	"fompi/internal/spmd"
)

func TestPutGetRoundTrip(t *testing.T) {
	for _, dial := range []func(*spmd.Proc, int) *Lang{DialUPC, DialCAF, DialMPI22} {
		spmd.MustRun(spmd.Config{Ranks: 4, RanksPerNode: 2}, func(p *spmd.Proc) {
			l := dial(p, 1024)
			defer l.Free()
			right := (p.Rank() + 1) % p.Size()
			msg := []byte{byte(p.Rank()), 0xAB, 0xCD}
			l.Put(right, 16, msg)
			l.Barrier()
			want := []byte{byte((p.Rank() + 3) % 4), 0xAB, 0xCD}
			if got := l.Local()[16:19]; !bytes.Equal(got, want) {
				t.Errorf("%s rank %d: local %v want %v", l.Name(), p.Rank(), got, want)
			}
			buf := make([]byte, 3)
			l.Get(buf, right, 16)
			if !bytes.Equal(buf, []byte{byte(p.Rank()), 0xAB, 0xCD}) {
				t.Errorf("%s rank %d: get %v", l.Name(), p.Rank(), buf)
			}
		})
	}
}

func TestAtomicsAndAllreduce(t *testing.T) {
	spmd.MustRun(spmd.Config{Ranks: 8, RanksPerNode: 4}, func(p *spmd.Proc) {
		l := DialUPC(p, 64)
		defer l.Free()
		l.FetchAdd(0, 0, 1) // everyone increments word 0 at rank 0
		l.Barrier()
		if p.Rank() == 0 {
			if got := l.LocalWord(0); got != 8 {
				t.Errorf("counter = %d, want 8", got)
			}
		}
		if got := l.Allreduce8(spmd.OpSum, 2); got != 16 {
			t.Errorf("allreduce = %d, want 16", got)
		}
		// CAS: exactly one rank wins an empty slot.
		won := l.CompareSwap(0, 8, 0, uint64(p.Rank())+100) == 0
		l.Barrier()
		winners := l.Allreduce8(spmd.OpSum, map[bool]uint64{true: 1, false: 0}[won])
		if winners != 1 {
			t.Errorf("%d CAS winners, want 1", winners)
		}
	})
}

func TestGetNBOverlap(t *testing.T) {
	spmd.MustRun(spmd.Config{Ranks: 2, RanksPerNode: 1}, func(p *spmd.Proc) {
		l := DialUPC(p, 4096)
		defer l.Free()
		for i := range l.Local()[:256] {
			l.Local()[i] = byte(p.Rank() + 1)
		}
		l.Barrier()
		buf := make([]byte, 256)
		h := l.GetNB(buf, (p.Rank()+1)%2, 0)
		t0 := l.Now()
		l.Compute(100000) // overlap window
		l.WaitNB(h)
		// The get should complete within the compute window: waiting must
		// not add (much) beyond the 100 µs of compute.
		if l.Now()-t0 > 101000 {
			t.Errorf("nonblocking get did not overlap: %v", l.Now()-t0)
		}
		if buf[0] != byte((p.Rank()+1)%2+1) {
			t.Errorf("got %d", buf[0])
		}
	})
}

func TestLayerCostOrdering(t *testing.T) {
	// The calibrated profiles must preserve the paper's ordering for a
	// small put+fence: foMPI-profile layers are cheapest, Cray MPI-2.2 is
	// by far the most expensive (Fig. 4a).
	spmd.MustRun(spmd.Config{Ranks: 2, RanksPerNode: 1}, func(p *spmd.Proc) {
		cost := map[string]int64{}
		for _, dial := range []func(*spmd.Proc, int) *Lang{DialUPC, DialCAF, DialMPI22} {
			l := dial(p, 64)
			if p.Rank() == 0 {
				t0 := l.Now()
				l.Put(1, 0, make([]byte, 8))
				l.Fence()
				cost[l.Name()] = int64(l.Now() - t0)
			}
			l.Free()
		}
		if p.Rank() == 0 {
			if !(cost["UPC"] < cost["CAF"] && cost["CAF"] < cost["CrayMPI22"]) {
				t.Errorf("cost ordering violated: %v", cost)
			}
		}
	})
}
