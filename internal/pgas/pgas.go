// Package pgas implements the compiled-language comparators of the paper's
// evaluation: Cray UPC (shared arrays, upc_memput/upc_memget, upc_barrier,
// upc_fence, and the Cray-specific atomic extensions aadd/CAS) and Fortran
// 2008 coarrays (remote assignment, sync all, sync memory), plus Cray MPI's
// relatively untuned MPI-2.2 one-sided path. All three drive the same
// simulated fabric as foMPI, differing only in their calibrated software
// cost profiles, so every comparison in the figures runs over identical
// hardware. Their communication patterns mirror the paper's code snippets
// (§3.1).
package pgas

import (
	"fompi/internal/simnet"
	"fompi/internal/spmd"
	"fompi/internal/timing"
	"fompi/internal/wordcoll"
)

// Header layout of the shared segment: the wordcoll collective channels
// (barrier, allreduce, bcast) run over the layer's own endpoint so language
// synchronization costs the language's own profile.
const hdrBytes = wordcoll.HdrBytes

// Lang is one rank's handle of a PGAS-style global address space: a
// symmetric shared segment per rank plus language-level synchronization.
type Lang struct {
	name string
	p    *spmd.Proc
	ep   *simnet.Endpoint
	reg  *simnet.Region
	key  simnet.Key
	seq  uint64
}

// dial allocates the symmetric shared segment collectively.
func dial(name string, p *spmd.Proc, model *simnet.CostModel, userBytes int) *Lang {
	l := &Lang{name: name, p: p, ep: simnet.NewEndpoint(p.Fabric(), p.Rank(), model)}
	l.reg = l.ep.Register(hdrBytes + userBytes)
	l.key = l.reg.Key()
	lo := p.Allreduce8(spmd.OpMin, uint64(l.key))
	hi := p.Allreduce8(spmd.OpMax, uint64(l.key))
	if lo != hi {
		panic("pgas: shared segment key not symmetric; dial collectively in the same order")
	}
	p.Barrier()
	return l
}

// DialUPC attaches a UPC-like layer with userBytes of shared array per rank
// (the `shared [SZ] double *buf` pattern of §3.1).
func DialUPC(p *spmd.Proc, userBytes int) *Lang {
	return dial("UPC", p, simnet.UPC(), userBytes)
}

// DialCAF attaches a Fortran-coarray-like layer: the shared segment is the
// coarray (`double precision buf(SZ)[*]`).
func DialCAF(p *spmd.Proc, userBytes int) *Lang {
	return dial("CAF", p, simnet.CAF(), userBytes)
}

// DialMPI22 attaches the Cray MPI-2.2 one-sided comparator over a window of
// userBytes per rank.
func DialMPI22(p *spmd.Proc, userBytes int) *Lang {
	return dial("CrayMPI22", p, simnet.CrayMPI22(), userBytes)
}

// Name returns the layer's display name.
func (l *Lang) Name() string { return l.name }

// Local returns the rank's own shared segment.
func (l *Lang) Local() []byte { return l.reg.Bytes()[hdrBytes:] }

// Addr names a byte of rank's shared segment.
func (l *Lang) Addr(rank, off int) simnet.Addr {
	return simnet.Addr{Rank: rank, Key: l.key, Off: hdrBytes + off}
}

// EP exposes the layer endpoint for instrumentation.
func (l *Lang) EP() *simnet.Endpoint { return l.ep }

// Now returns the layer's virtual clock for this rank.
func (l *Lang) Now() timing.Time { return l.ep.Now() }

// Compute charges local work.
func (l *Lang) Compute(ns int64) { l.ep.Compute(ns) }

// Put is upc_memput / coarray remote assignment: nonblocking with deferred
// completion (the defer_sync mode used for full optimization in §3.1.2).
func (l *Lang) Put(rank, off int, src []byte) { l.ep.PutNBI(l.Addr(rank, off), src) }

// Get is the blocking upc_memget / coarray remote read.
func (l *Lang) Get(dst []byte, rank, off int) { l.ep.Get(dst, l.Addr(rank, off)) }

// GetNB is Cray's upc_memget_nb: explicit-handle nonblocking get.
func (l *Lang) GetNB(dst []byte, rank, off int) simnet.Handle {
	return l.ep.GetNB(dst, l.Addr(rank, off))
}

// WaitNB completes an explicit-handle operation.
func (l *Lang) WaitNB(h simnet.Handle) { l.ep.Wait(h) }

// Fence is upc_fence / sync memory: completes outstanding accesses.
func (l *Lang) Fence() {
	l.ep.Gsync()
	l.ep.MemSync()
}

// coll returns the layer's wordcoll handle over the segment header.
func (l *Lang) coll() wordcoll.Group {
	return wordcoll.Group{
		EP: l.ep, Reg: l.reg, Key: l.key, Base: 0,
		Rank: l.p.Rank(), Size: l.p.Size(), Seq: &l.seq,
	}
}

// Barrier is upc_barrier / sync all: a dissemination barrier over the
// layer's own cost profile, plus memory synchronization.
func (l *Lang) Barrier() {
	l.Fence()
	l.coll().Barrier()
}

// Allreduce8 reduces one word across all ranks over the layer's own
// endpoint (a UPC/CAF collective library call).
func (l *Lang) Allreduce8(op wordcoll.Op, v uint64) uint64 {
	return l.coll().Allreduce8(op, v)
}

// FAllreduce sums a float64 across all ranks.
func (l *Lang) FAllreduce(x float64) float64 { return l.coll().FAllreduce(x) }

// FetchAdd is Cray UPC's proprietary atomic add extension (aadd).
func (l *Lang) FetchAdd(rank, off int, delta uint64) uint64 {
	return l.ep.FetchAdd(l.Addr(rank, off), delta)
}

// CompareSwap is Cray UPC's proprietary atomic compare-and-swap extension.
func (l *Lang) CompareSwap(rank, off int, compare, swap uint64) uint64 {
	return l.ep.CompareSwap(l.Addr(rank, off), compare, swap)
}

// AmoBulk applies a chained accumulate (used by the MPI-2.2 accumulate
// comparator in the DSDE experiment).
func (l *Lang) AmoBulk(rank, off int, op simnet.AmoOp, src []byte) {
	l.ep.AmoBulkNBI(l.Addr(rank, off), op, src)
}

// LoadW atomically reads one remote word.
func (l *Lang) LoadW(rank, off int) uint64 { return l.ep.LoadW(l.Addr(rank, off)) }

// StoreW atomically writes one remote word (deferred completion).
func (l *Lang) StoreW(rank, off int, v uint64) { l.ep.StoreW(l.Addr(rank, off), v) }

// PollWord blocks until pred holds for the remote word.
func (l *Lang) PollWord(rank, off int, pred func(uint64) bool) uint64 {
	return l.ep.PollRemoteWord(l.Addr(rank, off), pred)
}

// WaitLocalWord blocks until pred holds for a word of the local segment,
// merging the writer's stamp.
func (l *Lang) WaitLocalWord(off int, pred func(uint64) bool) uint64 {
	aoff := hdrBytes + off
	l.ep.WaitLocal(func() bool { return pred(l.reg.LocalWord(aoff)) })
	l.ep.MergeStamp(l.reg, aoff, 8)
	return l.reg.LocalWord(aoff)
}

// LocalWord reads a word of the local segment without fabric cost.
func (l *Lang) LocalWord(off int) uint64 { return l.reg.LocalWord(hdrBytes + off) }

// LocalWordStore writes a word of the local segment (stamped at local time).
func (l *Lang) LocalWordStore(off int, v uint64) {
	l.reg.LocalWordStore(hdrBytes+off, v, l.ep.Now())
}

// Free releases the segment collectively.
func (l *Lang) Free() {
	l.p.Barrier()
	l.ep.Unregister(l.reg)
}

// Add is the nonblocking flavour of Cray UPC's atomic add extension
// (deferred completion, like upc put with defer_sync): the notification
// primitive of the MILC UPC port [34].
func (l *Lang) Add(rank, off int, delta uint64) { l.ep.AddNBI(l.Addr(rank, off), delta) }
