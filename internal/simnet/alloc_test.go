package simnet

import "testing"

// Alloc-regression guards: the per-operation fabric hot paths must stay
// allocation-free, or the pooled-scratch work rots silently. The fixture
// drives remote operations from rank 0 with no peer goroutines (issue-side
// semantics need none), so AllocsPerRun measures only the op itself.

func allocFixture() (*Endpoint, Addr, []byte) {
	f := NewFabric(2, 1) // inter-node: the full NIC/stamp path
	ep := f.Endpoint(0, FoMPI())
	tgt := f.Endpoint(1, FoMPI()).Register(1 << 12)
	return ep, tgt.Base(), make([]byte, 1<<10)
}

func TestPutNBAllocFree(t *testing.T) {
	ep, a, buf := allocFixture()
	if avg := testing.AllocsPerRun(200, func() {
		ep.Wait(ep.PutNB(a, buf))
	}); avg > 0 {
		t.Fatalf("PutNB allocates %.2f objects per op, want 0", avg)
	}
}

func TestGetNBAllocFree(t *testing.T) {
	ep, a, buf := allocFixture()
	if avg := testing.AllocsPerRun(200, func() {
		ep.Wait(ep.GetNB(buf, a))
	}); avg > 0 {
		t.Fatalf("GetNB allocates %.2f objects per op, want 0", avg)
	}
}

func TestFetchAddAllocFree(t *testing.T) {
	ep, a, _ := allocFixture()
	if avg := testing.AllocsPerRun(200, func() {
		ep.FetchAdd(a, 3)
	}); avg > 0 {
		t.Fatalf("FetchAdd allocates %.2f objects per op, want 0", avg)
	}
}

// TestBatchedIssueAllocFree pins the batch engine itself: scopes, dedup
// marks, and the region memo must reuse endpoint-owned storage after the
// first batch.
func TestBatchedIssueAllocFree(t *testing.T) {
	ep, a, buf := allocFixture()
	ep.BeginBatch() // first batch allocates dstMark/pendDst
	ep.StoreW(a, 1)
	ep.EndBatch()
	if avg := testing.AllocsPerRun(200, func() {
		ep.BeginBatch()
		ep.PutNBI(a, buf)
		ep.StoreW(a.Add(2048), 7)
		ep.EndBatch()
	}); avg > 0 {
		t.Fatalf("batched issue allocates %.2f objects per batch, want 0", avg)
	}
}
