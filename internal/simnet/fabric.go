// Package simnet is a software RDMA fabric: the stand-in for Cray DMAPP
// (inter-node) and XPMEM (intra-node) that the foMPI protocols in
// internal/core are layered on. Ranks are goroutines in a single address
// space; each rank registers memory regions that other ranks address by
// (rank, key, offset) and accesses with put, get, and 8-byte atomic memory
// operations, each available with blocking, explicit-nonblocking (handle),
// and implicit-nonblocking (bulk gsync) completion — exactly DMAPP's
// contract. There is no remote software agent: the target CPU is never
// involved in any operation.
//
// Besides moving real bytes, every operation advances the issuing rank's
// virtual clock according to a calibrated cost model, and stamps the written
// words with the operation's virtual completion time so that polling ranks
// merge time causally (see DESIGN.md §6).
package simnet

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"fompi/internal/timing"
)

// Key identifies a registered memory region within its owner rank.
type Key uint32

// Addr names one byte of remote memory.
type Addr struct {
	Rank int
	Key  Key
	Off  int
}

// Add returns a copy of a displaced by n bytes.
func (a Addr) Add(n int) Addr { a.Off += n; return a }

// node is the per-rank fabric state: the registered-region table, the NIC
// occupancy used for bandwidth/incast modelling, and the waiter doorbell.
type node struct {
	mu      sync.RWMutex
	regions map[Key]*Region
	nextKey Key

	// NIC busy interval [nicStart, nicBusy) in virtual time (see reserveNIC).
	nicMu    sync.Mutex
	nicStart int64
	nicBusy  int64

	doorMu  sync.Mutex
	doorGen uint64
	door    *sync.Cond
}

func (nd *node) notify() {
	nd.doorMu.Lock()
	nd.doorGen++
	nd.door.Broadcast()
	nd.doorMu.Unlock()
}

// Fabric connects n ranks arranged as nodes of ranksPerNode consecutive
// ranks. It is shared by all transport layers (foMPI, PGAS baselines, MPI-1)
// so that comparisons run over identical hardware.
type Fabric struct {
	n            int
	ranksPerNode int
	nodes        []*node
	aborted      atomic.Bool
	abortOnce    sync.Once
	done         chan struct{}

	hookMu     sync.Mutex
	abortHooks []func()

	// Conservative pacing (SetPacing): per-rank published clocks and a
	// progress generation counter.
	paceWindow int64
	paceClocks []int64
	paceGen    atomic.Uint64
}

// ErrAborted is the panic value delivered to goroutines blocked in fabric
// waits when Abort tears the fabric down (e.g. after a peer rank panicked).
var ErrAborted = fmt.Errorf("simnet: fabric aborted")

// Abort marks the fabric dead and wakes every blocked waiter; they unwind by
// panicking with ErrAborted. Used to avoid deadlock when one rank fails.
func (f *Fabric) Abort() {
	f.aborted.Store(true)
	f.abortOnce.Do(func() { close(f.done) })
	f.hookMu.Lock()
	hooks := append([]func(){}, f.abortHooks...)
	f.hookMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	for _, nd := range f.nodes {
		nd.notify()
	}
}

// SetPacing bounds the virtual-clock divergence between ranks to window
// nanoseconds: before issuing a fabric operation, a rank whose clock runs
// more than window ahead of the slowest published clock yields until the
// laggards catch up. Execution otherwise follows real goroutine scheduling,
// so a rank that races far ahead in real time stamps shared words with
// far-future virtual times, and contended-word workloads (hashtable CAS
// chains, DSDE counters) inherit host-scheduler noise as virtual-time
// jumps. Pacing makes the interleaving approximate virtual-time order.
// window 0 disables pacing (the default: uncontended microbenchmarks do
// not need it). A stall detector keeps pacing deadlock-free: if nothing in
// the world makes progress while a rank is pace-blocked, it proceeds.
func (f *Fabric) SetPacing(window int64) { f.paceWindow = window }

// PaceWindow returns the configured pacing window.
func (f *Fabric) PaceWindow() int64 { return f.paceWindow }

// publishClock records a rank's virtual clock for pacing and signals
// progress.
func (f *Fabric) publishClock(rank int, t timing.Time) {
	if f.paceWindow == 0 {
		return
	}
	atomic.StoreInt64(&f.paceClocks[rank], int64(t))
	f.paceGen.Add(1)
}

// pace blocks rank (by yielding) while its clock is more than the pacing
// window ahead of the slowest published clock.
func (f *Fabric) pace(rank int, t timing.Time) {
	if f.paceWindow == 0 {
		return
	}
	f.publishClock(rank, t)
	me := int64(t)
	var lastGen uint64
	stall := 0
	for {
		min := int64(1) << 62
		for i := range f.paceClocks {
			if c := atomic.LoadInt64(&f.paceClocks[i]); c < min {
				min = c
			}
		}
		if me <= min+f.paceWindow || f.aborted.Load() {
			return
		}
		if g := f.paceGen.Load(); g == lastGen {
			if stall++; stall > 2000 {
				return // nothing else is progressing: do not deadlock
			}
		} else {
			lastGen, stall = g, 0
		}
		runtime.Gosched()
	}
}

// Aborted reports whether the fabric has been torn down.
func (f *Fabric) Aborted() bool { return f.aborted.Load() }

// Done returns a channel closed when the fabric aborts; layers blocked on
// their own channels select on it to unwind instead of deadlocking.
func (f *Fabric) Done() <-chan struct{} { return f.done }

// OnAbort registers fn to run when the fabric aborts (layers with private
// condition variables use it to wake their waiters). If the fabric already
// aborted, fn runs immediately.
func (f *Fabric) OnAbort(fn func()) {
	f.hookMu.Lock()
	f.abortHooks = append(f.abortHooks, fn)
	f.hookMu.Unlock()
	if f.aborted.Load() {
		fn()
	}
}

// NewFabric creates a fabric for n ranks with the given node width.
func NewFabric(n, ranksPerNode int) *Fabric {
	if n <= 0 {
		panic("simnet: fabric needs at least one rank")
	}
	if ranksPerNode <= 0 {
		ranksPerNode = 1
	}
	f := &Fabric{
		n: n, ranksPerNode: ranksPerNode, nodes: make([]*node, n),
		done: make(chan struct{}), paceClocks: make([]int64, n),
	}
	for i := range f.nodes {
		nd := &node{regions: make(map[Key]*Region)}
		nd.door = sync.NewCond(&nd.doorMu)
		f.nodes[i] = nd
	}
	return f
}

// Size returns the number of ranks.
func (f *Fabric) Size() int { return f.n }

// RanksPerNode returns the node width.
func (f *Fabric) RanksPerNode() int { return f.ranksPerNode }

// NodeOf returns the node index hosting rank r.
func (f *Fabric) NodeOf(r int) int { return r / f.ranksPerNode }

// SameNode reports whether ranks a and b share a node (XPMEM reachable).
func (f *Fabric) SameNode(a, b int) bool { return f.NodeOf(a) == f.NodeOf(b) }

// register installs a region owned by rank and returns its key.
func (f *Fabric) register(rank int, reg *Region) Key {
	nd := f.nodes[rank]
	nd.mu.Lock()
	defer nd.mu.Unlock()
	k := nd.nextKey
	nd.nextKey++
	reg.key = k
	nd.regions[k] = reg
	return k
}

// unregister removes a region; subsequent accesses panic, modelling a DMAPP
// memory-registration fault.
func (f *Fabric) unregister(rank int, k Key) {
	nd := f.nodes[rank]
	nd.mu.Lock()
	defer nd.mu.Unlock()
	delete(nd.regions, k)
}

// region resolves an address to its registered region.
func (f *Fabric) region(a Addr) *Region {
	if a.Rank < 0 || a.Rank >= f.n {
		panic(fmt.Sprintf("simnet: address names rank %d outside fabric of %d", a.Rank, f.n))
	}
	nd := f.nodes[a.Rank]
	nd.mu.RLock()
	reg := nd.regions[a.Key]
	nd.mu.RUnlock()
	if reg == nil {
		panic(fmt.Sprintf("simnet: access to unregistered region (rank %d key %d)", a.Rank, a.Key))
	}
	return reg
}

// reserveNIC reserves the target rank's NIC for xfer virtual nanoseconds
// starting no earlier than arrival, and returns the transfer's completion
// time. This serializes concurrent senders into one target (incast).
//
// Reservations are made in real execution order, which need not match
// virtual arrival order: a goroutine that runs ahead in real time may book
// late-virtual-time transfers before a slower goroutine books a
// virtually-earlier one. The NIC therefore tracks its current busy interval
// [nicStart, nicBusy): an arrival that overlaps the interval queues behind
// it (true incast — colliding senders serialize), while a transfer that
// ends before the interval even starts is served in the idle time its tardy
// booking left behind. Without the hole-serving rule, scheduler noise would
// queue microsecond-scale flag updates behind unrelated future bulk traffic
// and distort every synchronization latency.
func (f *Fabric) reserveNIC(rank int, arrival timing.Time, xfer int64) timing.Time {
	nd := f.nodes[rank]
	a := int64(arrival)
	nd.nicMu.Lock()
	defer nd.nicMu.Unlock()
	switch {
	case a >= nd.nicBusy:
		// NIC idle at arrival: start a fresh busy interval.
		nd.nicStart, nd.nicBusy = a, a+xfer
	case a+xfer <= nd.nicStart:
		// Entirely before the booked interval: the NIC was idle then.
		return timing.Time(a + xfer)
	default:
		// Overlaps the busy interval: queue behind it.
		nd.nicBusy += xfer
	}
	return timing.Time(nd.nicBusy)
}

// waitDoor blocks until rank's doorbell generation exceeds gen, i.e. until
// some fabric operation has modified that rank's memory. It returns the new
// generation.
func (f *Fabric) waitDoor(rank int, gen uint64) uint64 {
	nd := f.nodes[rank]
	nd.doorMu.Lock()
	for nd.doorGen == gen && !f.aborted.Load() {
		nd.door.Wait()
	}
	g := nd.doorGen
	nd.doorMu.Unlock()
	if f.aborted.Load() && g == gen {
		panic(ErrAborted)
	}
	return g
}

// doorGen samples rank's doorbell generation.
func (f *Fabric) doorGenOf(rank int) uint64 {
	nd := f.nodes[rank]
	nd.doorMu.Lock()
	g := nd.doorGen
	nd.doorMu.Unlock()
	return g
}
