// Package simnet is a software RDMA fabric: the stand-in for Cray DMAPP
// (inter-node) and XPMEM (intra-node) that the foMPI protocols in
// internal/core are layered on. Ranks are goroutines in a single address
// space; each rank registers memory regions that other ranks address by
// (rank, key, offset) and accesses with put, get, and 8-byte atomic memory
// operations, each available with blocking, explicit-nonblocking (handle),
// and implicit-nonblocking (bulk gsync) completion — exactly DMAPP's
// contract. There is no remote software agent: the target CPU is never
// involved in any operation.
//
// Besides moving real bytes, every operation advances the issuing rank's
// virtual clock according to a calibrated cost model, and stamps the written
// words with the operation's virtual completion time so that polling ranks
// merge time causally (see DESIGN.md §6).
//
// The per-operation host costs are kept allocation-free and (nearly)
// lock-free: region resolution is one atomic pointer load into a
// copy-on-write table, doorbells ring without a lock when nobody is parked,
// and pacing folds sharded minimum caches instead of scanning every rank.
// Groups of operations issue through Endpoint.BeginBatch/EndBatch, which
// coalesce the per-operation disciplines — one pacing check, one doorbell
// per distinct destination, memoized region lookups — without changing
// virtual time by a single bit (DESIGN.md §6.2).
package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fompi/internal/telemetry"
	"fompi/internal/timing"
)

// Pacing and doorbell metrics. The names are shared with the other
// backends' pacing valves (internal/netrun, internal/mprun) — the telemetry
// registry is idempotent by name, so whichever transports a world composes,
// an aggregated snapshot reports one pacing story.
var (
	mPaceParks  = telemetry.NewCounter("pace.parks")
	mPaceParkNs = telemetry.NewHistogram("pace.park_ns")
	mPaceStalls = telemetry.NewCounter("pace.stalls")
	mPacePokes  = telemetry.NewCounter("pace.pokes")
	mDoorRings  = telemetry.NewCounter("door.rings")
)

// Key identifies a registered memory region within its owner rank.
type Key uint32

// Addr names one byte of remote memory.
type Addr struct {
	Rank int
	Key  Key
	Off  int
}

// Add returns a copy of a displaced by n bytes.
func (a Addr) Add(n int) Addr { a.Off += n; return a }

// node is the per-rank fabric state: the registered-region table, the NIC
// occupancy used for bandwidth/incast modelling, and the waiter doorbell.
type node struct {
	// regions is a copy-on-write dense table indexed by Key (keys are
	// handed out sequentially and never reused, so the table only grows;
	// unregistered slots hold nil). The hot path — region() on every
	// put/get/AMO — is one atomic load plus a bounds-checked index; mu
	// serializes only the cold register/unregister copy.
	mu      sync.Mutex
	regions atomic.Pointer[[]*Region]
	initTbl []*Region // initial header, carved from the fabric's setup slab
	nextKey Key

	// NIC busy interval [nicStart, nicBusy) in virtual time (see reserveNIC).
	nicMu    sync.Mutex
	nicStart int64
	nicBusy  int64

	// Futex-style doorbell: writers bump doorGen on every modification of
	// this rank's memory, but take doorMu and broadcast only when a waiter
	// has registered itself in doorWaiters — the overwhelmingly common
	// nobody-is-waiting case is one atomic add plus one atomic load.
	doorGen     atomic.Uint64
	doorWaiters atomic.Int32
	doorMu      sync.Mutex
	door        *sync.Cond
}

// notify rings the rank's doorbell. The generation bump is sequentially
// consistent with the waiter's registration (doorWaiters.Add before its
// locked re-check of doorGen), so a waiter either observes the new
// generation without sleeping or is registered in doorWaiters before the
// writer decides whether to broadcast — no lost wakeups.
func (nd *node) notify() {
	mDoorRings.Inc()
	nd.doorGen.Add(1)
	if nd.doorWaiters.Load() == 0 {
		return
	}
	nd.doorMu.Lock()
	nd.door.Broadcast()
	nd.doorMu.Unlock()
}

// paceShardBits sizes the pacing tracker's shards: 64 ranks per shard keeps
// a shard rescan one cache-line-friendly sweep while the global fold touches
// only p/64 cached minimums.
const paceShardBits = 6

// Fabric connects n ranks arranged as nodes of ranksPerNode consecutive
// ranks. It is shared by all transport layers (foMPI, PGAS baselines, MPI-1)
// so that comparisons run over identical hardware.
type Fabric struct {
	n            int
	ranksPerNode int
	nodes        []*node
	aborted      atomic.Bool
	abortOnce    sync.Once
	done         chan struct{}

	hookMu     sync.Mutex
	abortHooks []func()

	// Conservative pacing (SetPacing): per-rank published clocks, a
	// per-shard cached minimum, and a progress generation counter. Shard
	// caches may transiently run below the true minimum (a concurrent
	// rescan can store a stale result) but never above it, so pacing only
	// ever over-waits; pace() re-rescans the governing shard while blocked,
	// which repairs any staleness.
	paceWindow    int64
	paceClocks    []int64
	paceShardMins []int64
	paceGen       atomic.Uint64

	// Pacing wait heap: blocked ranks park on a wakeup threshold instead
	// of spinning; laggard rescans wake them when the minimum folds past
	// it. paceParked and paceNextTgt let publishers skip the heap lock
	// entirely when nobody is parked or no threshold is reachable.
	paceMu      sync.Mutex
	paceHeap    []paceEntry
	paceSlots   []paceSlot
	paceParked  atomic.Int32
	paceNextTgt atomic.Int64
}

// ErrAborted is the panic value delivered to goroutines blocked in fabric
// waits when Abort tears the fabric down (e.g. after a peer rank panicked).
var ErrAborted = fmt.Errorf("simnet: fabric aborted")

// Abort marks the fabric dead and wakes every blocked waiter; they unwind by
// panicking with ErrAborted. Used to avoid deadlock when one rank fails.
func (f *Fabric) Abort() {
	f.aborted.Store(true)
	f.abortOnce.Do(func() { close(f.done) })
	f.hookMu.Lock()
	hooks := append([]func(){}, f.abortHooks...)
	f.hookMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	for _, nd := range f.nodes {
		nd.notify()
	}
}

// SetPacing bounds the virtual-clock divergence between ranks to window
// nanoseconds: before issuing a fabric operation, a rank whose clock runs
// more than window ahead of the slowest published clock yields until the
// laggards catch up. Execution otherwise follows real goroutine scheduling,
// so a rank that races far ahead in real time stamps shared words with
// far-future virtual times, and contended-word workloads (hashtable CAS
// chains, DSDE counters) inherit host-scheduler noise as virtual-time
// jumps. Pacing makes the interleaving approximate virtual-time order.
// window 0 disables pacing (the default: uncontended microbenchmarks do
// not need it). A stall detector keeps pacing deadlock-free: if nothing in
// the world makes progress while a rank is pace-blocked, it proceeds.
func (f *Fabric) SetPacing(window int64) { f.paceWindow = window }

// PaceWindow returns the configured pacing window.
func (f *Fabric) PaceWindow() int64 { return f.paceWindow }

// publishClock records a rank's virtual clock for pacing and signals
// progress. When the publisher was at or below its shard's cached minimum —
// it was (one of) the laggard(s) whose clock the cache tracks — it rescans
// the shard itself, so the O(shard) sweep runs once per laggard operation
// instead of once per blocked-rank poll; with nobody parked, every other
// publisher pays one store, three loads, and a counter bump.
//
// While ranks are parked the laggard test alone is not reliable enough to
// carry their wakeups: concurrent rescans can leave a shard cache stale-low
// (below every live clock), and then no publisher ever matches `old <=
// cache` again until a parked rank's heartbeat repairs it — turning every
// hand-off into a timer wait. So any publish that finds parked ranks rescans
// its own shard unconditionally (~one cache line of atomic loads) and runs
// the wake check; active publishers in each shard keep every cache fresh.
func (f *Fabric) publishClock(rank int, t timing.Time) {
	if f.paceWindow == 0 {
		return
	}
	old := atomic.LoadInt64(&f.paceClocks[rank])
	atomic.StoreInt64(&f.paceClocks[rank], int64(t))
	s := rank >> paceShardBits
	if old <= atomic.LoadInt64(&f.paceShardMins[s]) || f.paceParked.Load() > 0 {
		f.rescanShard(s)
		min, _ := f.paceMinCached()
		f.wakeWaiters(min)
	}
	f.paceGen.Add(1)
}

// rescanShard recomputes one shard's cached minimum from its ranks' clocks
// and returns it. Clocks are monotone, so the scanned minimum can never
// exceed the true current minimum; a racing rescan may overwrite with an
// older (lower) result, which is conservative.
func (f *Fabric) rescanShard(s int) int64 {
	lo := s << paceShardBits
	hi := lo + (1 << paceShardBits)
	if hi > f.n {
		hi = f.n
	}
	m := int64(1) << 62
	for i := lo; i < hi; i++ {
		if c := atomic.LoadInt64(&f.paceClocks[i]); c < m {
			m = c
		}
	}
	atomic.StoreInt64(&f.paceShardMins[s], m)
	return m
}

// paceMinCached folds the per-shard cached minimums: O(p/64), no rescans.
func (f *Fabric) paceMinCached() (min int64, argShard int) {
	min = int64(1) << 62
	for s := range f.paceShardMins {
		if v := atomic.LoadInt64(&f.paceShardMins[s]); v < min {
			min, argShard = v, s
		}
	}
	return min, argShard
}

// paceParkHeartbeat is the parked-rank heartbeat: how long a pace-blocked
// rank sleeps before re-checking whether the world still makes progress. It
// starts short — the heartbeat doubles as the stall valve, and prompt stall
// release matters for active-message hand-offs — and backs off exponentially
// to paceParkMax so long-parked ranks do not saturate the timer wheel.
const (
	paceParkHeartbeat = 50 * time.Microsecond
	paceParkMax       = 2 * time.Millisecond
)

// paceEntry is one parked rank's wakeup threshold in the pacing wait heap.
type paceEntry struct {
	target int64 // release when the folded minimum reaches this
	rank   int32
	seq    uint32 // live while it matches paceSlots[rank].seq
}

// paceSlot is a rank's reusable parking state: allocated once, so parking
// is allocation-free after a rank's first block. seq is guarded by paceMu;
// ch and timer are touched only by the rank's own goroutine after creation
// (publishers send on ch under paceMu).
type paceSlot struct {
	ch    chan struct{}
	timer *time.Timer
	seq   uint32
}

// wakeWaiters pops every live heap entry whose target the folded minimum
// has reached and signals its rank. The two atomic guards make the
// nobody-parked case — every unpaced or in-window operation — two loads.
func (f *Fabric) wakeWaiters(min int64) {
	if f.paceParked.Load() == 0 || f.paceNextTgt.Load() > min {
		return
	}
	f.paceMu.Lock()
	for len(f.paceHeap) > 0 {
		e := f.paceHeap[0]
		live := f.paceSlots[e.rank].seq == e.seq
		if live && e.target > min {
			break
		}
		f.heapPop()
		if live {
			select {
			case f.paceSlots[e.rank].ch <- struct{}{}:
				mPacePokes.Inc()
			default:
			}
		}
	}
	f.updateNextTgt()
	f.paceMu.Unlock()
}

func (f *Fabric) updateNextTgt() {
	if len(f.paceHeap) == 0 {
		f.paceNextTgt.Store(int64(1) << 62)
		return
	}
	f.paceNextTgt.Store(f.paceHeap[0].target)
}

func (f *Fabric) heapPush(e paceEntry) {
	h := append(f.paceHeap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].target <= h[i].target {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	f.paceHeap = h
}

func (f *Fabric) heapPop() {
	h := f.paceHeap
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r, s := 2*i+1, 2*i+2, i
		if l < n && h[l].target < h[s].target {
			s = l
		}
		if r < n && h[r].target < h[s].target {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	f.paceHeap = h
}

// pace blocks rank while its clock is more than the pacing window ahead of
// the slowest published clock. The fast path is one fold of the shard
// caches; a blocked rank parks on a wakeup threshold (its clock minus the
// window) in the pacing wait heap and sleeps until a laggard's rescan folds
// the minimum past it — no spinning, which matters doubly when the host has
// fewer cores than the world has ranks, since a spinning waiter starves the
// very laggard it waits for.
func (f *Fabric) pace(rank int, t timing.Time) {
	if f.paceWindow == 0 {
		return
	}
	f.publishClock(rank, t)
	me := int64(t)
	if min, _ := f.paceMinCached(); me <= min+f.paceWindow {
		return
	}
	f.paceBlock(rank, me)
}

func (f *Fabric) paceBlock(rank int, me int64) {
	target := me - f.paceWindow
	slot := &f.paceSlots[rank]
	lastMin := int64(-1) // minimum observed at the previous heartbeat
	idleBeats := 0
	parkDur := paceParkHeartbeat
	var parkStart time.Time
	defer func() {
		if !parkStart.IsZero() {
			mPaceParkNs.Record(uint64(time.Since(parkStart)))
		}
	}()
	for {
		min, arg := f.paceMinCached()
		if me <= min+f.paceWindow || f.aborted.Load() {
			return
		}
		// Authoritative check: rescan the governing shard to a fixpoint so
		// we never park against a stale-low cached minimum.
		if m := f.rescanShard(arg); m != min {
			continue
		}
		// Park immediately — never spin. On an oversubscribed host (cores
		// scarcer than ranks) a yielding waiter drags every other blocked
		// rank through the scheduler once per laggard operation; parked
		// ranks leave the run queue to the ranks that can make progress.
		// Publish the heap entry, then re-check the fold so a wakeup that
		// folded before the push cannot be missed (the publisher's
		// shard-min store precedes its heap scan; if the scan missed our
		// entry, this fold sees its store).
		f.paceMu.Lock()
		if slot.ch == nil {
			slot.ch = make(chan struct{}, 1)
		}
		slot.seq++
		f.heapPush(paceEntry{target: target, rank: int32(rank), seq: slot.seq})
		f.updateNextTgt()
		f.paceParked.Add(1)
		f.paceMu.Unlock()
		eligible := false
		if min, _ := f.paceMinCached(); min >= target || f.aborted.Load() {
			eligible = true
		}
		woken := false
		if !eligible {
			if parkStart.IsZero() && telemetry.On() {
				parkStart = time.Now()
				mPaceParks.Inc()
			}
			if slot.timer == nil {
				slot.timer = time.NewTimer(parkDur)
			} else {
				slot.timer.Reset(parkDur)
			}
			select {
			case <-slot.ch:
				woken = true
			case <-slot.timer.C: // heartbeat: recheck progress via paceGen
			case <-f.done:
			}
			slot.timer.Stop()
		}
		f.paceMu.Lock()
		slot.seq++ // invalidate our heap entry (reaped lazily)
		f.paceParked.Add(-1)
		f.paceMu.Unlock()
		select { // drain a wake that raced the timeout
		case <-slot.ch:
		default:
		}
		if f.aborted.Load() {
			return
		}
		if woken || eligible {
			idleBeats, parkDur = 0, paceParkHeartbeat
			continue
		}
		// Heartbeat expired with no channel wake: the stall check. The
		// trustworthy freeze signal is the folded MINIMUM staying put — a
		// laggard parked in a doorbell or mailbox wait pins it, and only
		// ranks released past the window keep publishing, which moves their
		// own clocks but never the minimum. (Counting publishes instead
		// would let those releases mask a real freeze forever.) After two
		// silent beats release this rank past the window for ONE operation;
		// its next pace call re-detects, so frozen-minimum drains progress
		// at the heartbeat rate rather than freely — an intentional
		// real-time throttle that keeps ranks' relative rates (and so their
		// stamp interleavings) tame while the window cannot be enforced.
		if cur, _ := f.paceMinCached(); cur != lastMin {
			lastMin, idleBeats = cur, 0
		} else if idleBeats++; idleBeats >= 2 {
			mPaceStalls.Inc()
			telemetry.RecordEvent(telemetry.EvStall, uint64(rank), uint64(me-target))
			return
		}
		if parkDur < paceParkMax {
			parkDur *= 2
		}
	}
}

// Aborted reports whether the fabric has been torn down.
func (f *Fabric) Aborted() bool { return f.aborted.Load() }

// Done returns a channel closed when the fabric aborts; layers blocked on
// their own channels select on it to unwind instead of deadlocking.
func (f *Fabric) Done() <-chan struct{} { return f.done }

// OnAbort registers fn to run when the fabric aborts (layers with private
// condition variables use it to wake their waiters). If the fabric already
// aborted, fn runs immediately.
func (f *Fabric) OnAbort(fn func()) {
	f.hookMu.Lock()
	f.abortHooks = append(f.abortHooks, fn)
	f.hookMu.Unlock()
	if f.aborted.Load() {
		fn()
	}
}

// NewFabric creates a fabric for n ranks with the given node width.
func NewFabric(n, ranksPerNode int) *Fabric {
	if n <= 0 {
		panic("simnet: fabric needs at least one rank")
	}
	if ranksPerNode <= 0 {
		ranksPerNode = 1
	}
	nShards := (n + (1 << paceShardBits) - 1) >> paceShardBits
	f := &Fabric{
		n: n, ranksPerNode: ranksPerNode, nodes: make([]*node, n),
		done: make(chan struct{}), paceClocks: make([]int64, n),
		paceShardMins: make([]int64, nShards),
		paceSlots:     make([]paceSlot, n),
	}
	f.paceNextTgt.Store(int64(1) << 62)
	// Per-node state comes from three slabs (node structs, initial table
	// headers via node.initTbl, table backing arrays): world setup is a few
	// allocations, not a few per rank.
	slab := make([]node, n)
	backing := make([]*Region, initialRegionCap*n)
	for i := range f.nodes {
		nd := &slab[i]
		nd.initTbl = backing[i*initialRegionCap : i*initialRegionCap : (i+1)*initialRegionCap]
		nd.regions.Store(&nd.initTbl)
		nd.door = sync.NewCond(&nd.doorMu)
		f.nodes[i] = nd
	}
	return f
}

// initialRegionCap is each rank's pre-carved region-table capacity; typical
// worlds register a handful of regions per rank (scratch, window data and
// control), and tables growing past it just reallocate.
const initialRegionCap = 8

// Size returns the number of ranks.
func (f *Fabric) Size() int { return f.n }

// RanksPerNode returns the node width.
func (f *Fabric) RanksPerNode() int { return f.ranksPerNode }

// NodeOf returns the node index hosting rank r.
func (f *Fabric) NodeOf(r int) int { return r / f.ranksPerNode }

// SameNode reports whether ranks a and b share a node (XPMEM reachable).
func (f *Fabric) SameNode(a, b int) bool { return f.NodeOf(a) == f.NodeOf(b) }

// register installs a region owned by rank and returns its key. Cold path:
// it extends the dense table and publishes a new header atomically. When the
// backing array has spare capacity the new slot is written in place — the
// store lands beyond every published header's length, so concurrent readers
// (who hold the old header) cannot observe it — and only a full array
// reallocates and copies.
func (f *Fabric) register(rank int, reg *Region) Key {
	nd := f.nodes[rank]
	nd.mu.Lock()
	defer nd.mu.Unlock()
	k := nd.nextKey
	nd.nextKey++
	reg.key = k
	old := *nd.regions.Load()
	tbl := append(old, reg) // in-place when capacity allows (mu serializes writers)
	nd.regions.Store(&tbl)
	return k
}

// unregister removes a region; subsequent accesses panic, modelling a DMAPP
// memory-registration fault. The key's slot is nilled, never reused.
func (f *Fabric) unregister(rank int, k Key) {
	nd := f.nodes[rank]
	nd.mu.Lock()
	defer nd.mu.Unlock()
	old := *nd.regions.Load()
	tbl := append([]*Region(nil), old...)
	if int(k) < len(tbl) {
		tbl[k] = nil
	}
	nd.regions.Store(&tbl)
}

// region resolves an address to its registered region: one atomic load and
// a bounds-checked index on the hot path of every remote operation.
func (f *Fabric) region(a Addr) *Region {
	if a.Rank < 0 || a.Rank >= f.n {
		panic(fmt.Sprintf("simnet: address names rank %d outside fabric of %d", a.Rank, f.n))
	}
	tbl := *f.nodes[a.Rank].regions.Load()
	if int(a.Key) >= len(tbl) || tbl[a.Key] == nil {
		panic(fmt.Sprintf("simnet: access to unregistered region (rank %d key %d)", a.Rank, a.Key))
	}
	return tbl[a.Key]
}

// reserveNIC reserves the target rank's NIC for xfer virtual nanoseconds
// starting no earlier than arrival, and returns the transfer's completion
// time. This serializes concurrent senders into one target (incast).
//
// Reservations are made in real execution order, which need not match
// virtual arrival order: a goroutine that runs ahead in real time may book
// late-virtual-time transfers before a slower goroutine books a
// virtually-earlier one. The NIC therefore tracks its current busy interval
// [nicStart, nicBusy): an arrival that overlaps the interval queues behind
// it (true incast — colliding senders serialize), while a transfer that
// ends before the interval even starts is served in the idle time its tardy
// booking left behind. Without the hole-serving rule, scheduler noise would
// queue microsecond-scale flag updates behind unrelated future bulk traffic
// and distort every synchronization latency.
func (f *Fabric) reserveNIC(rank int, arrival timing.Time, xfer int64) timing.Time {
	nd := f.nodes[rank]
	a := int64(arrival)
	nd.nicMu.Lock()
	defer nd.nicMu.Unlock()
	switch {
	case a >= nd.nicBusy:
		// NIC idle at arrival: start a fresh busy interval.
		nd.nicStart, nd.nicBusy = a, a+xfer
	case a+xfer <= nd.nicStart:
		// Entirely before the booked interval: the NIC was idle then.
		return timing.Time(a + xfer)
	default:
		// Overlaps the busy interval: queue behind it.
		nd.nicBusy += xfer
	}
	return timing.Time(nd.nicBusy)
}

// waitDoor blocks until rank's doorbell generation exceeds gen, i.e. until
// some fabric operation has modified that rank's memory. It returns the new
// generation. The caller registers itself in doorWaiters before the locked
// re-check, pairing with notify's post-bump load of the waiter count.
func (f *Fabric) waitDoor(rank int, gen uint64) uint64 {
	nd := f.nodes[rank]
	if g := nd.doorGen.Load(); g != gen {
		return g // doorbell already rung: no lock, no sleep
	}
	nd.doorWaiters.Add(1)
	nd.doorMu.Lock()
	for nd.doorGen.Load() == gen && !f.aborted.Load() {
		nd.door.Wait()
	}
	nd.doorMu.Unlock()
	nd.doorWaiters.Add(-1)
	g := nd.doorGen.Load()
	if f.aborted.Load() && g == gen {
		panic(ErrAborted)
	}
	return g
}

// doorGenOf samples rank's doorbell generation.
func (f *Fabric) doorGenOf(rank int) uint64 {
	return f.nodes[rank].doorGen.Load()
}
