package simnet

import (
	"fompi/internal/segpool"
	"fompi/internal/timing"
)

// Transport is the substrate contract an Endpoint drives: the services of
// foMPI's interchangeable fabrics (the paper's DMAPP and XPMEM) that involve
// memory or state shared between ranks. Everything above this line — cost
// models, virtual clocks, stamps arithmetic, batching — lives in Endpoint
// and is byte-identical across backends; a Transport only moves bytes,
// resolves registrations, books NIC occupancy, rings doorbells, and carries
// the published clocks that pacing folds. Two implementations exist: the
// in-process *Fabric below (ranks are goroutines in one address space) and
// internal/mprun's multi-process world (ranks are OS processes, regions live
// in one mmap-shared segment, doorbells travel over Unix sockets). A third
// backend drops in by implementing this interface and passing the
// conformance suite in internal/transporttest.
//
// Contracts a backend must honor, in the terms the conformance suite checks:
//
//   - Registered memory is byte-addressable by (rank, key, offset) from every
//     rank; keys are assigned per owner in registration order starting at 0
//     and never reused. A region's stamps share the registration's lifetime.
//   - AllocSeg returns zeroed memory that RegisterRegion accepts; backends
//     whose remote ranks cannot reach arbitrary host memory (mprun) may
//     reject RegisterRegion calls on buffers they did not allocate.
//   - RingDoorbell(r) wakes every WaitDoor(r, gen) waiter whose gen is stale,
//     with no lost wakeups (a waiter re-checks its predicate after every
//     return). Waiters may be woken spuriously.
//   - PublishClock/Pace implement the conservative pacing discipline of
//     DESIGN.md §6.1; with PaceWindow() == 0 both may be no-ops.
//   - Abort wakes every blocked waiter; WaitDoor panics with ErrAborted —
//     or with *ErrPeerFailed, which matches errors.Is(err, ErrAborted) and
//     additionally names the dead rank — when the world died while it
//     slept. Recover sites classify with IsAbortPanic, not value equality.
type Transport interface {
	// Topology.
	Size() int
	RanksPerNode() int
	NodeOf(rank int) int
	SameNode(a, b int) bool

	// Registered memory. RegisterRegion installs reg (whose owner, buffer and
	// stamps the caller has initialized) and returns its key; LookupRegion
	// resolves an address on the hot path of every remote operation.
	RegisterRegion(rank int, reg *Region) Key
	UnregisterRegion(rank int, key Key)
	LookupRegion(a Addr) *Region

	// Segment allocation: registrable backing memory plus shadow stamps, in
	// the all-zero state. RecycleSeg returns a segment after its registration
	// is gone and every rank that could address it has synchronized; scrubbed
	// recycling wipes only stamped blocks plus the declared extra extents
	// (see segpool.PutScrubbed), non-scrubbed recycling wipes everything.
	AllocSeg(rank, size int) *segpool.Seg
	RecycleSeg(rank int, s *segpool.Seg, scrubbed bool, extra ...segpool.Range)

	// Virtual-time services. ReserveNIC serializes transfers into one
	// target's NIC (incast); PublishClock and Pace carry the pacing
	// discipline (no-ops when PaceWindow is 0).
	ReserveNIC(rank int, arrival timing.Time, xfer int64) timing.Time
	PublishClock(rank int, t timing.Time)
	Pace(rank int, t timing.Time)
	PaceWindow() int64

	// Doorbells: the generation-counted wakeup channel of WaitLocal,
	// PollRemoteWord and the notification rings.
	RingDoorbell(rank int)
	DoorGen(rank int) uint64
	WaitDoor(rank int, gen uint64) uint64

	// Lifecycle.
	Abort()
	Aborted() bool
	Done() <-chan struct{}
	OnAbort(fn func())
}

// Fabric implements Transport; the exported wrappers below are the carve
// line between the in-process fabric's internals and the backend-neutral
// Endpoint layer.
var _ Transport = (*Fabric)(nil)

// RegisterRegion installs a region owned by rank and returns its key.
func (f *Fabric) RegisterRegion(rank int, reg *Region) Key { return f.register(rank, reg) }

// UnregisterRegion removes a registration; later remote accesses fault.
func (f *Fabric) UnregisterRegion(rank int, k Key) { f.unregister(rank, k) }

// LookupRegion resolves an address to its registered region.
func (f *Fabric) LookupRegion(a Addr) *Region { return f.region(a) }

// AllocSeg returns a zeroed registrable segment from the process-wide pool.
// The in-process fabric has one address space, so rank only names the future
// owner and every segment comes from the same pool.
func (f *Fabric) AllocSeg(rank, size int) *segpool.Seg { return segpool.Get(size) }

// RecycleSeg returns a segment to the pool (see Transport).
func (f *Fabric) RecycleSeg(rank int, s *segpool.Seg, scrubbed bool, extra ...segpool.Range) {
	if scrubbed {
		segpool.PutScrubbed(s, extra...)
		return
	}
	segpool.Put(s)
}

// ReserveNIC books the target rank's NIC (see reserveNIC).
func (f *Fabric) ReserveNIC(rank int, arrival timing.Time, xfer int64) timing.Time {
	return f.reserveNIC(rank, arrival, xfer)
}

// PublishClock records a rank's virtual clock for pacing.
func (f *Fabric) PublishClock(rank int, t timing.Time) { f.publishClock(rank, t) }

// Pace blocks rank while it runs ahead of the pacing window.
func (f *Fabric) Pace(rank int, t timing.Time) { f.pace(rank, t) }

// RingDoorbell rings rank's doorbell, waking its waiters.
func (f *Fabric) RingDoorbell(rank int) { f.nodes[rank].notify() }

// DoorGen samples rank's doorbell generation.
func (f *Fabric) DoorGen(rank int) uint64 { return f.doorGenOf(rank) }

// WaitDoor blocks until rank's doorbell generation exceeds gen.
func (f *Fabric) WaitDoor(rank int, gen uint64) uint64 { return f.waitDoor(rank, gen) }
