package simnet

// Calibrated cost models. The constants are fitted to the closed-form
// performance models and annotated data points the paper reports for Blue
// Waters (Cray XE6, Gemini):
//
//	foMPI:  P_put = 0.16 ns·s + 1.0 µs      (§3.1)
//	        P_get = 0.17 ns·s + 1.9 µs
//	        injection 416 ns inter-node, 80 ns intra-node (§3.1.2)
//	        P_acc,sum = 28 ns·s + 2.4 µs, P_CAS = 2.4 µs (§3.1.3)
//	        P_flush = 76 ns, P_sync = 17 ns (§3.2)
//	UPC:    ≥50 % higher small-message latency than foMPI (§3.1, Fig. 4),
//	        aadd ≈ 3.5 µs (Fig. 6a annotation)
//	CAF:    tracks UPC closely, slightly slower small messages (Fig. 4)
//	Cray MPI-2.2 one-sided: "much higher latency up to 64 kB" (Fig. 5
//	        caption); ≈10 µs small-message software path
//	Cray MPI-1 p2p: ping-pong ≈1.5 µs small (Fig. 4a), eager→rendezvous
//	        switch at 8 KiB with an extra round trip and sender sync
//
// Only these constants tie the simulation to the testbed; every latency the
// harness reports is produced by the protocol code actually executing over
// the fabric.

// FoMPI returns the cost model of the paper's implementation layer
// (direct DMAPP inter-node, XPMEM load/store intra-node).
func FoMPI() *CostModel {
	return &CostModel{
		Name: "foMPI",
		Inter: Profile{
			InjectNs: 416, PutLatNs: 584, GetLatNs: 1484,
			// AmoPerElNs fits P_acc,sum = 28 ns·s(bytes) + 2.4 µs (§3.1.3):
			// 28 ns/B × 8 B/element. The chained unit is slower per byte
			// than the lock-get-modify-put fallback (0.8 ns/B), which is
			// why the paper notes the locked path's higher bandwidth.
			NsPerByte: 0.16, AmoNs: 1984, AmoPerElNs: 224,
			SmallMax: 16, SmallKneeNs: 350,
			GsyncNs: 76, SyncNs: 17, PollNs: 10, NotifyNs: 60,
		},
		Intra: Profile{
			InjectNs: 80, PutLatNs: 240, GetLatNs: 280,
			NsPerByte: 0.05, AmoNs: 140, AmoPerElNs: 20,
			SmallMax: 1 << 30, SmallKneeNs: 0,
			GsyncNs: 17, SyncNs: 17, PollNs: 5, NotifyNs: 20,
		},
	}
}

// UPC returns the cost model of Cray's UPC compiled PGAS layer: same wire,
// more software on the injection path than foMPI's 173-instruction fast path.
func UPC() *CostModel {
	return &CostModel{
		Name: "UPC",
		Inter: Profile{
			InjectNs: 900, PutLatNs: 1250, GetLatNs: 2300,
			NsPerByte: 0.16, AmoNs: 3100, AmoPerElNs: 260,
			SmallMax: 16, SmallKneeNs: 350,
			GsyncNs: 150, SyncNs: 40, PollNs: 10, NotifyNs: 120,
		},
		Intra: Profile{
			InjectNs: 160, PutLatNs: 420, GetLatNs: 460,
			NsPerByte: 0.055, AmoNs: 260, AmoPerElNs: 30,
			SmallMax: 1 << 30,
			GsyncNs:  40, SyncNs: 40, PollNs: 5, NotifyNs: 40,
		},
	}
}

// CAF returns the cost model of Cray Fortran 2008 coarrays; it tracks UPC
// with slightly higher small-message overhead (Fig. 4).
func CAF() *CostModel {
	return &CostModel{
		Name: "CAF",
		Inter: Profile{
			InjectNs: 1050, PutLatNs: 1500, GetLatNs: 2600,
			NsPerByte: 0.165, AmoNs: 3400,
			SmallMax: 16, SmallKneeNs: 350,
			GsyncNs: 180, SyncNs: 45, PollNs: 10, NotifyNs: 140,
		},
		Intra: Profile{
			InjectNs: 190, PutLatNs: 500, GetLatNs: 540,
			NsPerByte: 0.06, AmoNs: 300,
			SmallMax: 1 << 30,
			GsyncNs:  45, SyncNs: 45, PollNs: 5, NotifyNs: 45,
		},
	}
}

// CrayMPI22 returns the cost model of Cray MPI's (relatively untuned)
// MPI-2.2 one-sided path: a thick software layer above the same NIC.
func CrayMPI22() *CostModel {
	return &CostModel{
		Name: "CrayMPI22",
		Inter: Profile{
			InjectNs: 4200, PutLatNs: 6000, GetLatNs: 9500,
			NsPerByte: 0.18, AmoNs: 11000, AmoPerElNs: 300,
			SmallMax: 16, SmallKneeNs: 500,
			GsyncNs: 2500, SyncNs: 400, PollNs: 20, NotifyNs: 500,
		},
		Intra: Profile{
			InjectNs: 1500, PutLatNs: 2500, GetLatNs: 2800,
			NsPerByte: 0.08, AmoNs: 2200, AmoPerElNs: 90,
			SmallMax: 1 << 30,
			GsyncNs:  900, SyncNs: 200, PollNs: 10, NotifyNs: 150,
		},
	}
}

// CrayMPI1 returns the cost model of Cray MPI's highly tuned point-to-point
// path. MatchNs and CopyNsPB feed the eager/rendezvous protocol in
// internal/mpi1; EagerMax is exported separately below.
func CrayMPI1() *CostModel {
	return &CostModel{
		Name: "CrayMPI1",
		Inter: Profile{
			// InjectNs fits Fig. 5b: ~1.0 M messages/s inter-node for MPI-1
			// versus foMPI's 2.4 M/s (416 ns).
			InjectNs: 950, PutLatNs: 700, GetLatNs: 1700,
			NsPerByte: 0.16, AmoNs: 2400,
			SmallMax: 16, SmallKneeNs: 350,
			GsyncNs: 100, SyncNs: 30, PollNs: 15, NotifyNs: 100,
			MatchNs: 450, CopyNsPB: 0.12,
		},
		Intra: Profile{
			InjectNs: 120, PutLatNs: 300, GetLatNs: 340,
			NsPerByte: 0.05, AmoNs: 200,
			SmallMax: 1 << 30,
			GsyncNs:  30, SyncNs: 20, PollNs: 8, NotifyNs: 30,
			MatchNs: 250, CopyNsPB: 0.06,
		},
	}
}

// EagerMax is the eager→rendezvous protocol switch size of the Cray MPI-1
// model (bytes). Messages larger than this pay a rendezvous round trip.
const EagerMax = 8192
