package simnet

import (
	"math/rand"
	"testing"
)

// batchWorld is a deterministic three-rank fixture (two nodes, so inter- and
// intra-node paths both run) with one region per rank, driven entirely from
// the test goroutine: issue-side semantics need no peer goroutines.
type batchWorld struct {
	fab  *Fabric
	eps  []*Endpoint
	regs []*Region
}

func newBatchWorld() *batchWorld {
	f := NewFabric(3, 2)
	w := &batchWorld{fab: f}
	for r := 0; r < 3; r++ {
		ep := f.Endpoint(r, FoMPI())
		w.eps = append(w.eps, ep)
		w.regs = append(w.regs, ep.Register(1<<12))
	}
	return w
}

// batchOp is one step of a randomized issue sequence.
type batchOp struct {
	kind int // 0 put, 1 get, 2 storew, 3 addnbi, 4 fetchaddnb, 5 bulkamo, 6 compute, 7 gsync
	dst  int
	off  int
	size int
	val  uint64
}

func randOps(rng *rand.Rand, n int) []batchOp {
	ops := make([]batchOp, n)
	for i := range ops {
		ops[i] = batchOp{
			kind: rng.Intn(8),
			dst:  1 + rng.Intn(2), // remote ranks only; rank 0 issues
			off:  8 * rng.Intn(256),
			size: 8 * (1 + rng.Intn(64)),
			val:  rng.Uint64() >> 1,
		}
	}
	return ops
}

// run issues ops from rank 0, wrapping [batchLo, batchHi) spans in batch
// scopes when batches is non-nil.
func (w *batchWorld) run(ops []batchOp, batches [][2]int) {
	ep := w.eps[0]
	buf := make([]byte, 8*64)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	inBatch := func(i int) bool {
		for _, b := range batches {
			if i == b[0] {
				ep.BeginBatch()
			}
			if i >= b[0] && i < b[1] {
				return true
			}
		}
		return false
	}
	endBatch := func(i int) {
		for _, b := range batches {
			if i == b[1]-1 {
				ep.EndBatch()
			}
		}
	}
	for i, op := range ops {
		_ = inBatch(i)
		a := Addr{Rank: op.dst, Key: w.regs[op.dst].Key(), Off: op.off}
		switch op.kind {
		case 0:
			ep.PutNBI(a, buf[:op.size])
		case 1:
			ep.GetNBI(buf[:op.size], a)
		case 2:
			ep.StoreW(a, op.val)
		case 3:
			ep.AddNBI(a, op.val)
		case 4:
			old, h := ep.FetchAddNB(a, op.val)
			_ = old
			ep.Wait(h)
		case 5:
			ep.AmoBulkNBI(a, AmoSum, buf[:op.size])
		case 6:
			ep.Compute(int64(op.size))
		case 7:
			ep.Gsync()
		}
		endBatch(i)
	}
}

// TestBatchEquivalence drives identical randomized issue sequences through
// two fabrics — one plain, one with randomized batch scopes — and requires
// bit-identical virtual time: clocks, implicit completion, counters, stamps,
// and memory contents. This is the tentpole guarantee of the batched issue
// engine: batching coalesces host-side disciplines only.
func TestBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		ops := randOps(rng, 1+rng.Intn(24))
		// Random non-overlapping batch spans (possibly none).
		var batches [][2]int
		for i := 0; i < len(ops); {
			if rng.Intn(2) == 0 {
				end := i + 1 + rng.Intn(len(ops)-i)
				batches = append(batches, [2]int{i, end})
				i = end
			} else {
				i++
			}
		}
		plain, batched := newBatchWorld(), newBatchWorld()
		plain.run(ops, nil)
		batched.run(ops, batches)

		pe, be := plain.eps[0], batched.eps[0]
		if pe.Now() != be.Now() {
			t.Fatalf("trial %d: clock diverged: plain %d batched %d (ops %+v batches %v)",
				trial, pe.Now(), be.Now(), ops, batches)
		}
		pe.Gsync()
		be.Gsync()
		if pe.Now() != be.Now() {
			t.Fatalf("trial %d: implicit completion diverged: plain %d batched %d",
				trial, pe.Now(), be.Now())
		}
		if pc, bc := pe.Counters(), be.Counters(); pc != bc {
			t.Fatalf("trial %d: counters diverged: plain %+v batched %+v", trial, pc, bc)
		}
		for r := 1; r < 3; r++ {
			pr, br := plain.regs[r], batched.regs[r]
			for off := 0; off < pr.Size(); off += 8 {
				if pr.StampMax(off, 8) != br.StampMax(off, 8) {
					t.Fatalf("trial %d: stamp diverged at rank %d off %d: plain %d batched %d",
						trial, r, off, pr.StampMax(off, 8), br.StampMax(off, 8))
				}
				if pr.LocalWord(off) != br.LocalWord(off) {
					t.Fatalf("trial %d: memory diverged at rank %d off %d", trial, r, off)
				}
			}
		}
	}
}

// TestBatchCoalescesDoorbells checks the dedup contract: a batch of writes
// to one destination rings its doorbell exactly once, at EndBatch.
func TestBatchCoalescesDoorbells(t *testing.T) {
	w := newBatchWorld()
	ep := w.eps[0]
	a := Addr{Rank: 1, Key: w.regs[1].Key()}
	g0 := w.fab.doorGenOf(1)
	ep.BeginBatch()
	ep.StoreW(a, 1)
	ep.StoreW(a.Add(8), 2)
	ep.AddNBI(a.Add(16), 3)
	if g := w.fab.doorGenOf(1); g != g0 {
		t.Fatalf("doorbell rang mid-batch: gen %d -> %d", g0, g)
	}
	ep.EndBatch()
	if g := w.fab.doorGenOf(1); g != g0+1 {
		t.Fatalf("EndBatch rang doorbell %d times, want 1", g-g0)
	}
}

// TestBatchFlushesBeforeBlocking checks that a wait inside a batch releases
// the deferred doorbells first: the batched write must be able to wake a
// peer before this rank parks.
func TestBatchFlushesBeforeBlocking(t *testing.T) {
	w := newBatchWorld()
	ep := w.eps[0]
	a := Addr{Rank: 1, Key: w.regs[1].Key()}
	g0 := w.fab.doorGenOf(1)
	ep.BeginBatch()
	ep.StoreW(a, 42)
	if g := w.fab.doorGenOf(1); g != g0 {
		t.Fatal("doorbell rang before the blocking wait")
	}
	// A wait whose predicate is immediately true still flushes first.
	ep.WaitLocal(func() bool { return true })
	if g := w.fab.doorGenOf(1); g != g0+1 {
		t.Fatalf("blocking wait did not flush the deferred doorbell (gen %d, want %d)", w.fab.doorGenOf(1), g0+1)
	}
	// Later writes in the same batch re-arm their destination.
	ep.StoreW(a.Add(8), 43)
	ep.EndBatch()
	if g := w.fab.doorGenOf(1); g != g0+2 {
		t.Fatalf("post-flush write lost its doorbell (gen %d, want %d)", w.fab.doorGenOf(1), g0+2)
	}
}

// TestBatchNesting checks nested scopes flush only at the outermost end, and
// that an unmatched EndBatch faults.
func TestBatchNesting(t *testing.T) {
	w := newBatchWorld()
	ep := w.eps[0]
	a := Addr{Rank: 2, Key: w.regs[2].Key()}
	g0 := w.fab.doorGenOf(2)
	ep.BeginBatch()
	ep.BeginBatch()
	ep.StoreW(a, 7)
	ep.EndBatch()
	if g := w.fab.doorGenOf(2); g != g0 {
		t.Fatal("inner EndBatch flushed")
	}
	ep.EndBatch()
	if g := w.fab.doorGenOf(2); g != g0+1 {
		t.Fatal("outer EndBatch did not flush")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unmatched EndBatch did not panic")
		}
	}()
	ep.EndBatch()
}

// TestBatchRegionMemoServesCurrentTable checks the memo is (re)filled per
// batch: a region registered after one batch is visible to the next.
func TestBatchRegionMemoServesCurrentTable(t *testing.T) {
	w := newBatchWorld()
	ep := w.eps[0]
	ep.BeginBatch()
	ep.StoreW(Addr{Rank: 1, Key: w.regs[1].Key()}, 1)
	ep.EndBatch()
	fresh := w.eps[1].Register(64)
	ep.BeginBatch()
	ep.StoreW(Addr{Rank: 1, Key: fresh.Key(), Off: 8}, 9)
	ep.EndBatch()
	if got := fresh.LocalWord(8); got != 9 {
		t.Fatalf("write through fresh region = %d, want 9", got)
	}
}
