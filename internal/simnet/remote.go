package simnet

import (
	"encoding/binary"
	"fmt"

	"fompi/internal/hostatomic"
	"fompi/internal/timing"
)

// This file is the carve line for backends whose remote memory is NOT
// addressable from the issuing process (inter-node backends: internal/netrun).
// The in-process fabric and the mmap-shared multi-process backend hand
// Endpoint a *Region whose buf and stamps are real local memory, and every
// operation runs the data/stamp half inline. An inter-node backend instead
// returns proxy regions (MakeRemoteRegion) carrying a RemoteMem, and Endpoint
// routes the data/stamp/NIC half of each operation through it as one message
// to the owner, where a RegionExec replays exactly the arithmetic the inline
// path would have run. The requester-local half — cost-model charges, source
// NIC serialization, clock merges — never leaves Endpoint, which is what
// keeps virtual times bit-identical across all backends (the conformance
// suite in internal/transporttest pins this).

// WordOp selects the read-modify-write operator of a single-word remote
// atomic (the AMO set behind Endpoint.FetchAdd/CompareSwap/Swap/AddNBI).
type WordOp uint8

// Word-atomic operators.
const (
	WordAdd WordOp = iota
	WordCas
	WordSwap
)

// applyWordOp performs one word atomic on buf and returns the prior value.
func applyWordOp(buf []byte, off int, op WordOp, o1, o2 uint64) uint64 {
	switch op {
	case WordAdd:
		return hostatomic.Add(buf, off, o1)
	case WordCas:
		return hostatomic.Cas(buf, off, o1, o2)
	case WordSwap:
		return hostatomic.Swap(buf, off, o1)
	}
	panic("simnet: unknown word-atomic operator")
}

// RemoteMem executes the owner-side half of Endpoint operations against a
// region the issuing process cannot address. Times crossing this interface
// are virtual; the `reserve` flag of each transfer-shaped method selects the
// inter-node path (completion = owner-NIC reservation of xfer virtual ns
// starting at arrival, the reserveNIC discipline) versus the intra-node path
// (completion = arrival, precomputed by the caller). Implementations must
// apply each call atomically enough that bytes, stamps, and NIC state mutate
// with the same interleaving guarantees the in-process fabric gives
// concurrently issuing ranks; RegionExec provides the canonical execution.
type RemoteMem interface {
	// Size returns the registered length (bounds checks on the proxy).
	Size() int
	// Put copies src into [off,off+len(src)) and stamps the range with the
	// transfer's completion time, which it returns.
	Put(off int, src []byte, reserve bool, arrival timing.Time, xfer int64) timing.Time
	// Get copies [off,off+len(dst)) into dst. base is max(clockIn, the
	// range's stamp maximum); completion is base+tail intra-node or the NIC
	// reservation of xfer at base+tail inter-node.
	Get(dst []byte, off int, clockIn timing.Time, reserve bool, tail, xfer int64) timing.Time
	// StoreWord atomically stores the 8-byte word and stamps it with the
	// returned completion time (Put-shaped timing).
	StoreWord(off int, v uint64, reserve bool, arrival timing.Time, xfer int64) timing.Time
	// LoadWord atomically reads the 8-byte word and its stamp.
	LoadWord(off int) (uint64, timing.Time)
	// WordAmo applies op to the word at off. base = max(clockIn, the word's
	// prior stamp); the update lands intra-node at base+lat, or inter-node
	// through source-NIC serialization (srcFree) and an owner-NIC
	// reservation; the word is stamped with land. newFree is the advanced
	// source-NIC cursor (meaningful only when reserve is true).
	WordAmo(op WordOp, off int, o1, o2 uint64, clockIn, srcFree timing.Time, reserve bool, lat, xfer int64) (old uint64, land, base, newFree timing.Time)
	// BulkAmo applies op element-wise between src and the remote words
	// (WordAmo-shaped timing over the whole range, stamped with comp).
	BulkAmo(op AmoOp, off int, src []byte, clockIn, srcFree timing.Time, reserve bool, lat, xfer int64) (comp, newFree timing.Time)
	// Notify runs the notification-ring deposit protocol at off (capacity
	// and overflow checks, ticket, slot store) with Put-shaped timing for
	// the 8-byte flag.
	Notify(off int, word uint64, reserve bool, arrival timing.Time, xfer int64) timing.Time
}

// AsyncMem is the optional pipelined extension of RemoteMem: a backend
// whose wire can keep several requests in flight implements it so Endpoint
// may issue the put-shaped operations (put, word store, ring deposit)
// without blocking one round trip each. The owner must apply the
// operations with semantics identical to the synchronous methods and in
// this rank's issue order — interleaved with the synchronous calls exactly
// as issued. The completion time is delivered later, on the issuing rank's
// goroutine, during the next WireDrainer.DrainWire (or any synchronous
// call on the same destination, which drains everything ahead of it): the
// backend writes through sink, folding with timing.Max when fold is true
// (the implicit-completion accumulator discipline — commutative, so
// delivery order cannot leak into virtual time) and assigning when false.
// sink must stay valid until the delivery happens.
type AsyncMem interface {
	RemoteMem
	PutAsync(off int, src []byte, reserve bool, arrival timing.Time, xfer int64, sink *timing.Time, fold bool)
	StoreWordAsync(off int, v uint64, reserve bool, arrival timing.Time, xfer int64, sink *timing.Time, fold bool)
	NotifyAsync(off int, word uint64, reserve bool, arrival timing.Time, xfer int64, sink *timing.Time, fold bool)
}

// WireDrainer is the Transport extension paired with AsyncMem: DrainWire
// blocks until every async operation this rank issued has executed at its
// owner and delivered its completion time to its sink. Endpoint calls it
// at every blocking point (Gsync, Wait, Test, WaitLocal, PollRemoteWord)
// so no virtual-time read can observe a partially delivered window.
type WireDrainer interface {
	DrainWire()
}

// RegionExec executes RemoteMem-shaped operations against a locally
// addressable region on behalf of a remote requester: the owner-side half of
// an inter-node backend's service loop. ReserveNIC books the owner rank's
// NIC busy interval (ignored by calls whose reserve flag is false). Methods
// panic on faults — out-of-bounds access, ring overflow — with the same
// messages the inline path produces; the backend forwards the panic to the
// requester.
type RegionExec struct {
	Reg        *Region
	ReserveNIC func(arrival timing.Time, xfer int64) timing.Time
}

// Put copies src and stamps the range (see RemoteMem.Put).
func (x RegionExec) Put(off int, src []byte, reserve bool, arrival timing.Time, xfer int64) timing.Time {
	x.Reg.check(off, len(src))
	comp := arrival
	if reserve {
		comp = x.ReserveNIC(arrival, xfer)
	}
	copy(x.Reg.buf[off:off+len(src)], src)
	x.Reg.stamps.SetRange(off, len(src), comp)
	return comp
}

// Get copies the range out and resolves its completion (see RemoteMem.Get).
func (x RegionExec) Get(dst []byte, off int, clockIn timing.Time, reserve bool, tail, xfer int64) timing.Time {
	x.Reg.check(off, len(dst))
	copy(dst, x.Reg.buf[off:off+len(dst)])
	base := timing.Max(clockIn, x.Reg.stamps.MaxRange(off, len(dst)))
	if !reserve {
		return base + timing.Time(tail)
	}
	return x.ReserveNIC(base+timing.Time(tail), xfer)
}

// StoreWord stores and stamps one word (see RemoteMem.StoreWord).
func (x RegionExec) StoreWord(off int, v uint64, reserve bool, arrival timing.Time, xfer int64) timing.Time {
	x.Reg.check(off, 8)
	comp := arrival
	if reserve {
		comp = x.ReserveNIC(arrival, xfer)
	}
	hostatomic.Store(x.Reg.buf, off, v)
	x.Reg.stamps.Set(off, comp)
	return comp
}

// LoadWord reads one word and its stamp (see RemoteMem.LoadWord).
func (x RegionExec) LoadWord(off int) (uint64, timing.Time) {
	v := x.Reg.atomicLoad(off)
	return v, x.Reg.stamps.Get(off)
}

// WordAmo applies one word atomic (see RemoteMem.WordAmo).
func (x RegionExec) WordAmo(op WordOp, off int, o1, o2 uint64, clockIn, srcFree timing.Time, reserve bool, lat, xfer int64) (old uint64, land, base, newFree timing.Time) {
	x.Reg.check(off, 8)
	// Chain lock as on the inline path: service goroutines execute requests
	// from different requesters concurrently, and on a hybrid world same-host
	// ranks run the inline path against the same shared stamps.
	x.Reg.stamps.LockChain()
	prev := x.Reg.stamps.Get(off)
	old = applyWordOp(x.Reg.buf, off, op, o1, o2)
	base = timing.Max(clockIn, prev)
	land, newFree = x.landAt(base, srcFree, reserve, lat, xfer)
	x.Reg.stamps.Set(off, land)
	x.Reg.stamps.UnlockChain()
	return old, land, base, newFree
}

// BulkAmo applies a chained atomic over the range (see RemoteMem.BulkAmo).
func (x RegionExec) BulkAmo(op AmoOp, off int, src []byte, clockIn, srcFree timing.Time, reserve bool, lat, xfer int64) (comp, newFree timing.Time) {
	x.Reg.check(off, len(src))
	n := len(src) / 8
	x.Reg.stamps.LockChain() // see WordAmo
	for i := 0; i < n; i++ {
		v := binary.LittleEndian.Uint64(src[i*8:])
		o := off + i*8
		switch op {
		case AmoSum:
			hostatomic.Add(x.Reg.buf, o, v)
		case AmoBand:
			hostatomic.And(x.Reg.buf, o, v)
		case AmoBor:
			hostatomic.Or(x.Reg.buf, o, v)
		case AmoBxor:
			hostatomic.Xor(x.Reg.buf, o, v)
		case AmoReplace:
			hostatomic.Swap(x.Reg.buf, o, v)
		default:
			x.Reg.stamps.UnlockChain()
			panic("simnet: unknown bulk AMO op")
		}
	}
	prev := x.Reg.stamps.MaxRange(off, len(src))
	base := timing.Max(clockIn, prev)
	comp, newFree = x.landAt(base, srcFree, reserve, lat, xfer)
	x.Reg.stamps.SetRange(off, len(src), comp)
	x.Reg.stamps.UnlockChain()
	return comp, newFree
}

// landAt resolves a transfer departing at base: the owner-side replay of
// Endpoint.schedXferOn when the departure time itself depends on remote
// stamps (AMO paths), including the requester's source-NIC cursor.
func (x RegionExec) landAt(base, srcFree timing.Time, reserve bool, lat, xfer int64) (land, newFree timing.Time) {
	if !reserve {
		return base + timing.Time(lat), srcFree
	}
	depart := base
	if srcFree > depart {
		depart = srcFree
	}
	newFree = depart + timing.Time(xfer)
	return x.ReserveNIC(depart+timing.Time(lat), xfer), newFree
}

// Notify runs the ring deposit protocol (see RemoteMem.Notify and the ring
// layout in notify.go).
func (x RegionExec) Notify(off int, word uint64, reserve bool, arrival timing.Time, xfer int64) timing.Time {
	reg := x.Reg
	reg.check(off, notifyHeaderBytes)
	capacity := hostatomic.Load(reg.buf, off+16)
	if capacity == 0 {
		panic(fmt.Sprintf("simnet: notification into unbound ring (rank %d key %d off %d)",
			reg.owner, reg.key, off))
	}
	reg.check(off, NotifyRingBytes(int(capacity)))
	ticket := hostatomic.Add(reg.buf, off, 1)
	cons := hostatomic.Load(reg.buf, off+8)
	if ticket-cons >= capacity {
		panic(fmt.Sprintf("simnet: notification ring of rank %d overflowed (%d in flight, capacity %d)",
			reg.owner, ticket-cons+1, capacity))
	}
	slot := off + notifyHeaderBytes + int(ticket%capacity)*8
	comp := arrival
	if reserve {
		comp = x.ReserveNIC(arrival, xfer)
	}
	reg.stamps.Set(slot, comp)
	hostatomic.Store(reg.buf, slot, word|notifyValid)
	return comp
}
