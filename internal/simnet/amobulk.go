package simnet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"fompi/internal/hostatomic"
	"fompi/internal/timing"
)

// AmoOp selects the element-wise operator of a chained atomic.
type AmoOp int

// Chained-atomic operators (the DMAPP-accelerated accumulate set: common
// integer operations on 8-byte data, §2.4 of the paper).
const (
	AmoSum AmoOp = iota
	AmoBand
	AmoBor
	AmoBxor
	AmoReplace
)

// AmoBulkNBI applies op element-wise between src (a multiple of 8 bytes)
// and the remote words starting at a, atomically per word, with implicit
// completion. It models DMAPP's chained AMOs: one injection, then
// AmoPerElNs per element through the target's atomic unit — which is why
// accelerated accumulates cost 28 ns per element rather than a full
// injection each (P_acc,sum = 28 ns·s + 2.4 µs).
func (ep *Endpoint) AmoBulkNBI(a Addr, op AmoOp, src []byte) {
	if len(src)%8 != 0 {
		panic("simnet: bulk AMO length must be a multiple of 8")
	}
	ep.paceOp()
	same := ep.sameNodeTo(a.Rank)
	pr := ep.cm.For(same)
	reg := ep.region(a)
	reg.check(a.Off, len(src))
	ep.clock += timing.Time(pr.InjectNs)
	n := len(src) / 8
	if rm := reg.rmt; rm != nil {
		comp, free := rm.BulkAmo(op, a.Off, src, ep.clock, ep.nicFree, !same,
			pr.AmoNs+int64(n)*pr.AmoPerElNs, pr.xferNs(len(src)))
		if !same {
			ep.nicFree = free
		}
		ep.implicitMax = timing.Max(ep.implicitMax, comp)
		ep.ctr.Amos += int64(n)
		ep.ctr.BytesPut += int64(len(src))
		ep.notifyDst(a.Rank)
		return
	}
	reg.stamps.LockChain() // see amoCommon: chain links must be atomic
	for i := 0; i < n; i++ {
		v := binary.LittleEndian.Uint64(src[i*8:])
		off := a.Off + i*8
		switch op {
		case AmoSum:
			hostatomic.Add(reg.buf, off, v)
		case AmoBand:
			hostatomic.And(reg.buf, off, v)
		case AmoBor:
			hostatomic.Or(reg.buf, off, v)
		case AmoBxor:
			hostatomic.Xor(reg.buf, off, v)
		case AmoReplace:
			hostatomic.Swap(reg.buf, off, v)
		default:
			reg.stamps.UnlockChain()
			panic("simnet: unknown bulk AMO op")
		}
	}
	prev := reg.stamps.MaxRange(a.Off, len(src))
	base := timing.Max(ep.clock, prev)
	comp := ep.schedXfer(a.Rank, base, pr.AmoNs+int64(n)*pr.AmoPerElNs, pr.xferNs(len(src)))
	reg.stamps.SetRange(a.Off, len(src), comp)
	reg.stamps.UnlockChain()
	ep.implicitMax = timing.Max(ep.implicitMax, comp)
	ep.ctr.Amos += int64(n)
	ep.ctr.BytesPut += int64(len(src))
	ep.notifyDst(a.Rank)
}

// ErrNotSameNode reports a shared-mapping request between ranks on different
// nodes: the XPMEM primitive only spans one node, on every backend.
var ErrNotSameNode = errors.New("simnet: XPMEM mapping requires same-node ranks")

// ErrNotMapped reports a shared-mapping request for a region the calling
// process cannot address: the target rank shares the caller's (virtual) node
// but lives in a process whose memory this backend does not map (the
// inter-node backend without a shared arena).
var ErrNotMapped = errors.New("simnet: region is not locally mapped (inter-node backend cannot map remote regions)")

// SharedErr maps a remote region into the caller's address space, the XPMEM
// primitive behind MPI-3 shared-memory windows. It is only legal between
// ranks on the same node; accesses are raw loads and stores with no virtual
// time accounting (call Compute for modelled work). Cross-node requests fail
// with ErrNotSameNode; same-node requests whose memory the backend cannot
// map fail with ErrNotMapped (both via errors.Is).
func (ep *Endpoint) SharedErr(a Addr, n int) ([]byte, error) {
	if !ep.fab.SameNode(ep.rank, a.Rank) {
		return nil, fmt.Errorf("%w (rank %d is on node %d, rank %d on node %d)",
			ErrNotSameNode, ep.rank, ep.node, a.Rank, ep.fab.NodeOf(a.Rank))
	}
	reg := ep.region(a)
	if reg.rmt != nil {
		return nil, fmt.Errorf("%w (rank %d key %d is owned by another process)",
			ErrNotMapped, a.Rank, a.Key)
	}
	reg.check(a.Off, n)
	return reg.buf[a.Off : a.Off+n], nil
}

// Shared is SharedErr for callers that treat an unmappable target as fatal;
// it panics with the typed error (errors.Is works on the recovered value).
func (ep *Endpoint) Shared(a Addr, n int) []byte {
	b, err := ep.SharedErr(a, n)
	if err != nil {
		panic(err)
	}
	return b
}
