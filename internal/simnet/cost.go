package simnet

import "fompi/internal/timing"

// Profile holds the virtual-time cost parameters of one transport path
// (inter-node DMAPP-like or intra-node XPMEM-like) for one transport layer
// (foMPI, UPC, CAF, Cray MPI...). All values are nanoseconds unless noted.
//
// The model is LogGP-shaped: issuing an operation charges InjectNs to the
// issuing CPU; the payload then occupies the source and destination NICs for
// size*NsPerByte and completes remotely LatencyNs after departure. A small
// protocol-change knee (the "DMAPP protocol change" annotation in Figs. 4
// and 5 of the paper) adds SmallKneeNs to messages larger than SmallMax
// bytes, modelling the switch away from the NIC's native 1/4/8/16-byte ops.
type Profile struct {
	InjectNs    int64   // per-op CPU issue overhead (o)
	PutLatNs    int64   // first-byte latency for puts (completion after departure)
	GetLatNs    int64   // round-trip first-byte latency for gets
	NsPerByte   float64 // inverse bandwidth (G)
	AmoNs       int64   // remote completion latency of an 8-byte atomic
	AmoPerElNs  int64   // per-element cost of chained (bulk) atomics
	SmallMax    int     // largest "native chunk" message size
	SmallKneeNs int64   // extra latency for messages > SmallMax
	GsyncNs     int64   // local cost of a bulk-completion (flush) call
	SyncNs      int64   // local cost of a memory-consistency call (mfence)
	PollNs      int64   // cost of one local poll step
	NotifyNs    int64   // issue overhead of a notification riding a data op
	MatchNs     int64   // software overhead per message-passing match (MPI only)
	CopyNsPB    float64 // extra per-byte cost of eager buffer copies (MPI only)
}

// knee returns the protocol-change penalty for a message of n bytes.
func (p *Profile) knee(n int) int64 {
	if n > p.SmallMax {
		return p.SmallKneeNs
	}
	return 0
}

// xferNs returns the serialization (bandwidth) term for n bytes.
func (p *Profile) xferNs(n int) int64 {
	return int64(float64(n) * p.NsPerByte)
}

// CostModel selects the intra- or inter-node profile of one transport layer.
type CostModel struct {
	Name  string
	Inter Profile
	Intra Profile
}

// For returns the profile governing communication with the given locality.
func (cm *CostModel) For(sameNode bool) *Profile {
	if sameNode {
		return &cm.Intra
	}
	return &cm.Inter
}

// Compute converts a wall-clock-style duration into virtual nanoseconds.
func Compute(d float64) timing.Time { return timing.Time(d) }
