package simnet

import (
	"fmt"

	"fompi/internal/hostatomic"
	"fompi/internal/timing"
)

// Notified access (foMPI-NA, Belli & Hoefler IPDPS'15): a put or get may
// carry an 8-byte notification word that the fabric deposits into a bounded
// notification ring at the data's target after the data itself has landed.
// The target learns of the access by polling one local word instead of
// closing a synchronization epoch — the single-word-poll hot path that
// pipelined producer/consumer protocols are built on (DESIGN.md §7).
//
// A ring lives inside registered memory so remote ranks can address it, and
// is self-describing:
//
//	off+0:  producer count (remote fetch-add, one ticket per notification)
//	off+8:  consumer count (owner-advanced after each pop)
//	off+16: capacity (set once by BindNotifyRing; zero means unbound)
//	off+24: capacity × 8-byte slots, slot = ticket mod capacity
//
// Delivery writes the slot, then publishes the ticket, then rings the
// owner's doorbell; the slot is stamped with the notification's virtual
// completion time, which is never earlier than the accompanying data's, so
// a consumer that merges the stamp observes the data causally. Arrivals
// into a full ring fault, modelling the paper's bounded-buffer discipline.

// notifyHeaderBytes is the ring bookkeeping before the slot array.
const notifyHeaderBytes = 24

// notifyValid marks an occupied slot; it is reserved, so notification words
// must fit in 63 bits.
const notifyValid = uint64(1) << 63

// NotifyRingBytes returns the registered bytes a ring of the given capacity
// occupies.
func NotifyRingBytes(capacity int) int { return notifyHeaderBytes + capacity*8 }

// NotifyRing is the owner-side handle of a notification ring embedded in one
// of the owner's registered regions. Like an Endpoint it is confined to the
// owning rank's goroutine; remote ranks address the ring by its base Addr.
type NotifyRing struct {
	reg *Region
	off int
	cap int
}

// BindNotifyRing initializes a notification ring of the given capacity at
// byte offset off inside reg (which the caller must own) and returns the
// owner-side handle. The header and slots are zeroed.
func BindNotifyRing(reg *Region, off, capacity int) *NotifyRing {
	nr := &NotifyRing{}
	nr.Bind(reg, off, capacity)
	return nr
}

// Bind initializes a caller-owned ring handle in place (see BindNotifyRing);
// windows embed the handle instead of allocating one per window.
func (nr *NotifyRing) Bind(reg *Region, off, capacity int) {
	if capacity <= 0 {
		panic("simnet: notification ring needs positive capacity")
	}
	reg.check(off, NotifyRingBytes(capacity))
	if off&7 != 0 {
		panic("simnet: notification ring must be 8-byte aligned")
	}
	for i := 0; i < NotifyRingBytes(capacity); i += 8 {
		hostatomic.Store(reg.buf, off+i, 0)
	}
	hostatomic.Store(reg.buf, off+16, uint64(capacity))
	*nr = NotifyRing{reg: reg, off: off, cap: capacity}
}

// Base returns the fabric address remote ranks pass to PutNotify/GetNotify.
func (nr *NotifyRing) Base() Addr { return Addr{Rank: nr.reg.owner, Key: nr.reg.key, Off: nr.off} }

// Cap returns the ring capacity.
func (nr *NotifyRing) Cap() int { return nr.cap }

// Pending returns the number of delivered, not-yet-popped notifications.
func (nr *NotifyRing) Pending() int {
	prod := hostatomic.Load(nr.reg.buf, nr.off)
	cons := hostatomic.Load(nr.reg.buf, nr.off+8)
	return int(prod - cons)
}

// TryPopStamped removes the oldest notification and returns it with its
// virtual completion stamp, NOT merging the stamp into ep's clock: matching
// layers scan past entries they are not waiting for, and — like the PSCW
// matching list — must pay the time of only the entry they actually consume.
// The caller merges the stamp (ep.AdvanceTo) when it commits to a match.
// ep must be the ring owner's endpoint.
func (nr *NotifyRing) TryPopStamped(ep *Endpoint) (uint64, timing.Time, bool) {
	prod := hostatomic.Load(nr.reg.buf, nr.off)
	cons := hostatomic.Load(nr.reg.buf, nr.off+8)
	if cons == prod {
		return 0, 0, false
	}
	slot := nr.off + notifyHeaderBytes + int(cons%uint64(nr.cap))*8
	w := hostatomic.Load(nr.reg.buf, slot)
	if w&notifyValid == 0 {
		// The producer holds the ticket but has not stored the word yet;
		// indistinguishable from not-yet-arrived.
		return 0, 0, false
	}
	stamp := nr.reg.stamps.Get(slot)
	hostatomic.Store(nr.reg.buf, slot, 0)
	hostatomic.Store(nr.reg.buf, nr.off+8, cons+1)
	ep.ctr.Polls++
	ep.clock += timing.Time(ep.cm.Intra.PollNs)
	return w &^ notifyValid, stamp, true
}

// TryPop removes the oldest notification, merging its completion stamp into
// ep's clock (so the data it announces is causally visible), and reports
// whether one was available.
func (nr *NotifyRing) TryPop(ep *Endpoint) (uint64, bool) {
	w, stamp, ok := nr.TryPopStamped(ep)
	if ok {
		ep.AdvanceTo(stamp)
	}
	return w, ok
}

// Pop blocks until a notification arrives and returns it. Producers ring the
// owner's doorbell, so no busy spinning occurs.
func (nr *NotifyRing) Pop(ep *Endpoint) uint64 {
	var w uint64
	var ok bool
	ep.WaitLocal(func() bool {
		w, ok = nr.TryPop(ep)
		return ok
	})
	return w
}

// deliverNotify deposits word into the remote ring, completing no earlier
// than after (the accompanying data's completion), and returns the
// notification's virtual completion time. A fused notification rides the
// data operation's descriptor (Gemini's completion event) and charges only
// the NotifyNs rider; a standalone one is a full 8-byte flag put.
func (ep *Endpoint) deliverNotify(ring Addr, word uint64, after timing.Time, fused bool) timing.Time {
	if word&notifyValid != 0 {
		panic("simnet: notification word uses reserved bit 63")
	}
	pr := ep.profileFor(ring.Rank)
	reg := ep.region(ring)
	reg.check(ring.Off, notifyHeaderBytes)
	if rm := reg.rmt; rm != nil {
		// Unreachable remote memory: the ring deposit protocol (capacity and
		// overflow checks, ticket, slot store) executes at the owner; the
		// clock charges and the source-NIC half of the flag's transfer stay
		// here, exactly as on the inline path below.
		if fused {
			ep.clock += timing.Time(pr.NotifyNs)
		} else {
			ep.clock += timing.Time(pr.InjectNs + pr.NotifyNs)
			ep.ctr.Puts++
		}
		base := timing.Max(ep.clock, after)
		same := ep.sameNodeTo(ring.Rank)
		depart := base
		if !same {
			depart = ep.srcDepart(base, pr.xferNs(8))
		}
		comp := rm.Notify(ring.Off, word, !same, depart+timing.Time(pr.PutLatNs), pr.xferNs(8))
		ep.ctr.Notifies++
		ep.ctr.BytesPut += 8
		ep.notifyDst(ring.Rank)
		return comp
	}
	capacity := hostatomic.Load(reg.buf, ring.Off+16)
	if capacity == 0 {
		panic(fmt.Sprintf("simnet: notification into unbound ring (rank %d key %d off %d)",
			ring.Rank, ring.Key, ring.Off))
	}
	reg.check(ring.Off, NotifyRingBytes(int(capacity)))
	ticket := hostatomic.Add(reg.buf, ring.Off, 1)
	cons := hostatomic.Load(reg.buf, ring.Off+8)
	if ticket-cons >= capacity {
		panic(fmt.Sprintf("simnet: notification ring of rank %d overflowed (%d in flight, capacity %d)",
			ring.Rank, ticket-cons+1, capacity))
	}
	slot := ring.Off + notifyHeaderBytes + int(ticket%capacity)*8
	if fused {
		ep.clock += timing.Time(pr.NotifyNs)
	} else {
		// A bare notification is physically its own 8-byte flag put.
		ep.clock += timing.Time(pr.InjectNs + pr.NotifyNs)
		ep.ctr.Puts++
	}
	base := timing.Max(ep.clock, after)
	comp := ep.schedXfer(ring.Rank, base, pr.PutLatNs, pr.xferNs(8))
	reg.stamps.Set(slot, comp)
	hostatomic.Store(reg.buf, slot, word|notifyValid)
	ep.ctr.Notifies++
	ep.ctr.BytesPut += 8
	ep.notifyDst(ring.Rank)
	return comp
}

// PutNotify performs an implicit-nonblocking put of src to dst and delivers
// word into the target-side ring once the data is complete (data-before-
// notification ordering). Remote completion of both is guaranteed by Gsync;
// the returned time is the notification's completion (instrumentation).
func (ep *Endpoint) PutNotify(dst Addr, src []byte, ring Addr, word uint64) timing.Time {
	if dst.Rank != ring.Rank {
		panic("simnet: PutNotify ring must live at the data's target rank")
	}
	dataComp := ep.putCommon(dst, src)
	comp := ep.deliverNotify(ring, word, dataComp, true)
	ep.implicitMax = timing.Max(ep.implicitMax, comp)
	return comp
}

// GetNotify performs a blocking get of src into dst and delivers word into a
// ring at the data's owner, informing it that the memory has been read (the
// notified-get of foMPI-NA). The notification completes remotely no earlier
// than the read.
func (ep *Endpoint) GetNotify(dst []byte, src Addr, ring Addr, word uint64) timing.Time {
	if src.Rank != ring.Rank {
		panic("simnet: GetNotify ring must live at the data's owner rank")
	}
	dataComp := ep.getCommon(dst, src)
	ep.AdvanceTo(dataComp)
	comp := ep.deliverNotify(ring, word, dataComp, true)
	ep.implicitMax = timing.Max(ep.implicitMax, comp)
	return comp
}

// Notify delivers a bare notification word with no accompanying data: the
// credit/doorbell primitive of pipelined protocols (a zero-byte PutNotify).
func (ep *Endpoint) Notify(ring Addr, word uint64) timing.Time {
	ep.paceOp()
	comp := ep.deliverNotify(ring, word, 0, false)
	ep.implicitMax = timing.Max(ep.implicitMax, comp)
	return comp
}
