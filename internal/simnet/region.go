package simnet

import (
	"fmt"

	"fompi/internal/hostatomic"
	"fompi/internal/timing"
)

// Region is a registered memory segment: the DMAPP/XPMEM equivalent of a
// memory registration. Remote ranks address it by (owner, key, offset);
// the owner may also access Bytes directly (its own virtual address space).
// On backends whose remote memory is not locally addressable, a region
// resolved for a foreign rank is a proxy: buf and stamps are nil and every
// data/stamp access routes through rmt (see remote.go).
type Region struct {
	owner  int
	key    Key
	buf    []byte
	stamps *timing.Stamps
	rmt    RemoteMem // non-nil on proxies for unreachable remote memory
	rmta   AsyncMem  // rmt's pipelined extension, when it offers one
}

// MakeRegion initializes a registration handle over transport-owned memory.
// Backends use it to materialize local views of regions registered by other
// processes (the owner's handle is built by Endpoint.RegisterBufStampsInto);
// key must be the key the owner's registration was assigned.
func MakeRegion(owner int, key Key, buf []byte, st *timing.Stamps) Region {
	return Region{owner: owner, key: key, buf: buf, stamps: st}
}

// MakeRemoteRegion initializes a proxy handle for a region registered in a
// process this one cannot address (inter-node backends): data, stamp, and
// target-NIC work route through rm. Only Endpoint operations may touch a
// proxy; the owner-side accessors (Bytes, LocalWord, StampMax...) stay with
// the owning process.
func MakeRemoteRegion(owner int, key Key, rm RemoteMem) Region {
	r := Region{owner: owner, key: key, rmt: rm}
	// The pipelined extension is resolved once here, not per operation.
	r.rmta, _ = rm.(AsyncMem)
	return r
}

// Owner returns the owning rank.
func (r *Region) Owner() int { return r.owner }

// Stamps exposes the region's shadow timestamps (backend plumbing).
func (r *Region) Stamps() *timing.Stamps { return r.stamps }

// Key returns the fabric key other ranks use to address this region.
func (r *Region) Key() Key { return r.key }

// Size returns the registered length in bytes.
func (r *Region) Size() int {
	if r.rmt != nil {
		return r.rmt.Size()
	}
	return len(r.buf)
}

// Bytes exposes the backing memory to its owner (local load/store access).
// Remote ranks must go through Endpoint operations; on a proxy region
// (unreachable remote memory) Bytes is nil.
func (r *Region) Bytes() []byte { return r.buf }

// Base returns the address of the first byte of the region.
func (r *Region) Base() Addr { return Addr{Rank: r.owner, Key: r.key} }

// check panics when [off, off+n) exceeds the registration, modelling a
// remote-memory protection fault.
func (r *Region) check(off, n int) {
	if off < 0 || n < 0 || off+n > r.Size() {
		panic(fmt.Sprintf("simnet: access [%d,%d) outside region of %d bytes (rank %d key %d)",
			off, off+n, r.Size(), r.owner, r.key))
	}
}

// atomicLoad reads the 8-byte word at off with a single linearization point.
func (r *Region) atomicLoad(off int) uint64 {
	r.check(off, 8)
	return hostatomic.Load(r.buf, off)
}

// StampMax returns the latest virtual completion stamp in [off, off+n).
// The owner uses it to merge time after a successful local poll.
func (r *Region) StampMax(off, n int) timing.Time { return r.stamps.MaxRange(off, n) }

// LocalWord reads the 8-byte word at off atomically without advancing any
// clock; owners use it inside poll predicates.
func (r *Region) LocalWord(off int) uint64 { return r.atomicLoad(off) }

// LocalWordStore writes the 8-byte word at off atomically, stamping it with
// the owner's time t. It models a local store to exposed memory (free on the
// wire, but it must be stamped so remote pollers merge time correctly).
// Remote ranks must not call this.
func (r *Region) LocalWordStore(off int, v uint64, t timing.Time) {
	r.check(off, 8)
	hostatomic.Store(r.buf, off, v)
	r.stamps.Set(off, t)
}
