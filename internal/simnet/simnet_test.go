package simnet

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"fompi/internal/timing"
)

func newPair(t *testing.T, ranksPerNode int) (*Fabric, *Endpoint, *Endpoint) {
	t.Helper()
	f := NewFabric(2, ranksPerNode)
	return f, f.Endpoint(0, FoMPI()), f.Endpoint(1, FoMPI())
}

func TestPutGetRoundTrip(t *testing.T) {
	_, e0, e1 := newPair(t, 1)
	reg := e1.Register(256)
	src := []byte("hello, remote memory access!")
	e0.Put(reg.Base().Add(16), src)
	dst := make([]byte, len(src))
	e0.Get(dst, reg.Base().Add(16))
	if !bytes.Equal(src, dst) {
		t.Fatalf("round trip mismatch: %q != %q", dst, src)
	}
}

func TestPutAdvancesVirtualTime(t *testing.T) {
	_, e0, e1 := newPair(t, 1) // 2 nodes -> inter-node profile
	reg := e1.Register(64)
	start := e0.Now()
	e0.PutNBI(reg.Base(), make([]byte, 8))
	e0.Gsync()
	lat := e0.Now() - start
	// Paper model: P_put(8B) ≈ 1 µs inter-node.
	if lat.Micros() < 0.8 || lat.Micros() > 1.3 {
		t.Fatalf("inter-node 8B put+flush latency = %.3f µs, want ≈1 µs", lat.Micros())
	}
}

func TestGetLatencyModel(t *testing.T) {
	_, e0, e1 := newPair(t, 1)
	reg := e1.Register(64)
	start := e0.Now()
	e0.Get(make([]byte, 8), reg.Base())
	lat := e0.Now() - start
	// Paper model: P_get(8B) ≈ 1.9 µs inter-node.
	if lat.Micros() < 1.6 || lat.Micros() > 2.3 {
		t.Fatalf("inter-node 8B get latency = %.3f µs, want ≈1.9 µs", lat.Micros())
	}
}

func TestIntraNodeIsCheaper(t *testing.T) {
	f := NewFabric(2, 2) // both ranks on one node
	e0 := f.Endpoint(0, FoMPI())
	e1 := f.Endpoint(1, FoMPI())
	reg := e1.Register(64)
	start := e0.Now()
	e0.PutNBI(reg.Base(), make([]byte, 8))
	e0.Gsync()
	intra := e0.Now() - start

	f2 := NewFabric(2, 1)
	g0 := f2.Endpoint(0, FoMPI())
	g1 := f2.Endpoint(1, FoMPI())
	reg2 := g1.Register(64)
	s2 := g0.Now()
	g0.PutNBI(reg2.Base(), make([]byte, 8))
	g0.Gsync()
	inter := g0.Now() - s2
	if intra >= inter {
		t.Fatalf("intra-node put (%v) should be cheaper than inter-node (%v)", intra, inter)
	}
}

func TestBandwidthDominatesLargeMessages(t *testing.T) {
	_, e0, e1 := newPair(t, 1)
	reg := e1.Register(1 << 20)
	measure := func(n int) float64 {
		start := e0.Now()
		e0.PutNBI(reg.Base(), make([]byte, n))
		e0.Gsync()
		return (e0.Now() - start).Micros()
	}
	t256k := measure(256 << 10)
	t8 := measure(8)
	// 256 KiB at 0.16 ns/B ≈ 42 µs ≫ 1 µs latency floor.
	if t256k < 10*t8 {
		t.Fatalf("large message %.1f µs not bandwidth-dominated vs %.1f µs", t256k, t8)
	}
}

func TestKneeAddsLatency(t *testing.T) {
	_, e0, e1 := newPair(t, 1)
	reg := e1.Register(4096)
	lat := func(n int) timing.Time {
		start := e0.Now()
		e0.PutNBI(reg.Base(), make([]byte, n))
		e0.Gsync()
		return e0.Now() - start
	}
	small, big := lat(16), lat(32)
	extra := int64(big-small) - int64(float64(16)*FoMPI().Inter.NsPerByte)
	if extra < FoMPI().Inter.SmallKneeNs/2 {
		t.Fatalf("expected DMAPP protocol-change knee between 16B and 32B; got extra %d ns", extra)
	}
}

func TestAmoFetchAdd(t *testing.T) {
	_, e0, e1 := newPair(t, 1)
	reg := e1.Register(64)
	if old := e0.FetchAdd(reg.Base(), 5); old != 0 {
		t.Fatalf("first fetch-add returned %d, want 0", old)
	}
	if old := e0.FetchAdd(reg.Base(), 3); old != 5 {
		t.Fatalf("second fetch-add returned %d, want 5", old)
	}
	if v := reg.LocalWord(0); v != 8 {
		t.Fatalf("final value %d, want 8", v)
	}
}

func TestAmoCompareSwap(t *testing.T) {
	_, e0, e1 := newPair(t, 1)
	reg := e1.Register(64)
	if old := e0.CompareSwap(reg.Base(), 0, 42); old != 0 {
		t.Fatalf("CAS from 0 returned %d", old)
	}
	if old := e0.CompareSwap(reg.Base(), 0, 99); old != 42 {
		t.Fatalf("failed CAS should return current value 42, got %d", old)
	}
	if v := reg.LocalWord(0); v != 42 {
		t.Fatalf("failed CAS must not write; value = %d", v)
	}
}

func TestAmoLinearizable(t *testing.T) {
	const ranks, each = 8, 1000
	f := NewFabric(ranks, 4)
	target := f.Endpoint(0, FoMPI()).Register(8)
	var wg sync.WaitGroup
	for r := 1; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep := f.Endpoint(r, FoMPI())
			for i := 0; i < each; i++ {
				ep.FetchAdd(target.Base(), 1)
			}
		}(r)
	}
	wg.Wait()
	if v := target.LocalWord(0); v != (ranks-1)*each {
		t.Fatalf("lost updates: %d != %d", v, (ranks-1)*each)
	}
}

func TestStampCausality(t *testing.T) {
	// A rank polling a flag must land at (or after) the writer's completion
	// time even though its own clock was far behind.
	f := NewFabric(2, 1)
	e0 := f.Endpoint(0, FoMPI())
	e1 := f.Endpoint(1, FoMPI())
	reg := e0.Register(64)

	e1.Compute(500_000) // writer is at t=500 µs
	e1.StoreW(reg.Base(), 1)
	e1.Gsync()

	e0.WaitLocal(func() bool { return reg.LocalWord(0) == 1 })
	e0.MergeStamp(reg, 0, 8)
	if e0.Now() < 500_000 {
		t.Fatalf("reader clock %v did not merge writer completion ≥500µs", e0.Now())
	}
}

func TestPollRemoteWordBlocksUntilWrite(t *testing.T) {
	f := NewFabric(2, 1)
	e0 := f.Endpoint(0, FoMPI())
	reg := f.Endpoint(1, FoMPI()).Register(64)
	done := make(chan uint64)
	go func() {
		done <- e0.PollRemoteWord(reg.Base(), func(v uint64) bool { return v == 7 })
	}()
	w := f.Endpoint(1, FoMPI())
	w.Compute(1000)
	// Unrelated writes wake the poller but do not satisfy it.
	w.StoreW(reg.Base().Add(8), 3)
	select {
	case v := <-done:
		t.Fatalf("poll returned %d before flag written", v)
	default:
	}
	w.StoreW(reg.Base(), 7)
	if v := <-done; v != 7 {
		t.Fatalf("poll returned %d, want 7", v)
	}
}

func TestIncastSerializes(t *testing.T) {
	// Eight senders streaming to one target should complete no faster than
	// the target NIC's bandwidth allows.
	const senders = 8
	const size = 64 << 10
	f := NewFabric(senders+1, 1)
	reg := f.Endpoint(0, FoMPI()).Register(size * senders)
	var wg sync.WaitGroup
	times := make([]timing.Time, senders)
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ep := f.Endpoint(s+1, FoMPI())
			ep.PutNBI(reg.Base().Add(s*size), make([]byte, size))
			ep.Gsync()
			times[s] = ep.Now()
		}(s)
	}
	wg.Wait()
	var latest timing.Time
	for _, tm := range times {
		latest = timing.Max(latest, tm)
	}
	wire := timing.Time(float64(senders*size) * FoMPI().Inter.NsPerByte)
	if latest < wire {
		t.Fatalf("incast finished at %v, faster than wire time %v", latest, wire)
	}
}

func TestHandleExplicitCompletion(t *testing.T) {
	_, e0, e1 := newPair(t, 1)
	reg := e1.Register(1 << 16)
	h := e0.PutNB(reg.Base(), make([]byte, 32<<10))
	if e0.Test(h) {
		t.Fatal("32 KiB put should not complete at issue time")
	}
	before := e0.Now()
	e0.Wait(h)
	if e0.Now() <= before {
		t.Fatal("Wait must advance the clock to completion")
	}
	if !e0.Test(h) {
		t.Fatal("handle must test complete after Wait")
	}
}

func TestRegionBoundsFault(t *testing.T) {
	_, e0, e1 := newPair(t, 1)
	reg := e1.Register(16)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds put must fault")
		}
	}()
	e0.Put(reg.Base().Add(9), make([]byte, 8))
}

func TestUnregisterFaults(t *testing.T) {
	_, e0, e1 := newPair(t, 1)
	reg := e1.Register(16)
	e1.Unregister(reg)
	defer func() {
		if recover() == nil {
			t.Fatal("access after unregister must fault")
		}
	}()
	e0.Put(reg.Base(), make([]byte, 8))
}

func TestMessageRateInjectionLimited(t *testing.T) {
	_, e0, e1 := newPair(t, 1)
	reg := e1.Register(1 << 16)
	const msgs = 1000
	start := e0.Now()
	buf := make([]byte, 8)
	for i := 0; i < msgs; i++ {
		e0.PutNBI(reg.Base(), buf)
	}
	e0.Gsync()
	perMsg := int64(e0.Now()-start) / msgs
	// Paper: 416 ns injection per 8-byte inter-node message.
	if perMsg < 350 || perMsg > 600 {
		t.Fatalf("per-message injection = %d ns, want ≈416 ns", perMsg)
	}
}

func TestPropertyPutGetIdentity(t *testing.T) {
	f := NewFabric(2, 1)
	e0 := f.Endpoint(0, FoMPI())
	reg := f.Endpoint(1, FoMPI()).Register(4096)
	err := quick.Check(func(data []byte, off uint16) bool {
		o := int(off) % (4096 - len(data) - 1)
		if o < 0 {
			o = 0
		}
		e0.Put(reg.Base().Add(o), data)
		out := make([]byte, len(data))
		e0.Get(out, reg.Base().Add(o))
		return bytes.Equal(out, data)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFetchAddSumsAnyOrder(t *testing.T) {
	err := quick.Check(func(deltas []uint8) bool {
		f := NewFabric(2, 1)
		e0 := f.Endpoint(0, FoMPI())
		reg := f.Endpoint(1, FoMPI()).Register(8)
		var want uint64
		for _, d := range deltas {
			e0.FetchAdd(reg.Base(), uint64(d))
			want += uint64(d)
		}
		return reg.LocalWord(0) == want
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClockMonotoneUnderRandomOps(t *testing.T) {
	f := NewFabric(4, 2)
	eps := make([]*Endpoint, 4)
	regs := make([]*Region, 4)
	for i := range eps {
		eps[i] = f.Endpoint(i, FoMPI())
		regs[i] = eps[i].Register(256)
	}
	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, 16)
	for i := 0; i < 2000; i++ {
		ep := eps[rng.Intn(4)]
		dst := regs[rng.Intn(4)].Base().Add(8 * rng.Intn(16))
		before := ep.Now()
		switch rng.Intn(5) {
		case 0:
			ep.Put(dst, buf[:8])
		case 1:
			ep.Get(buf[:8], dst)
		case 2:
			ep.FetchAdd(dst, 1)
		case 3:
			ep.PutNBI(dst, buf[:8])
		case 4:
			ep.Gsync()
		}
		if ep.Now() < before {
			t.Fatalf("clock went backwards at op %d", i)
		}
	}
}

func TestCountersTrackOps(t *testing.T) {
	_, e0, e1 := newPair(t, 1)
	reg := e1.Register(64)
	base := e0.Counters()
	e0.Put(reg.Base(), make([]byte, 8))
	e0.Get(make([]byte, 8), reg.Base())
	e0.FetchAdd(reg.Base(), 1)
	e0.Gsync()
	d := e0.Counters().Sub(base)
	if d.Puts != 1 || d.Gets != 1 || d.Amos != 1 || d.Gsyncs != 1 {
		t.Fatalf("counters wrong: %+v", d)
	}
	if d.RemoteOps() != 3 {
		t.Fatalf("remote ops = %d, want 3", d.RemoteOps())
	}
}

func TestWordEncoding(t *testing.T) {
	// Regions must interoperate with binary encoding of 8-byte values.
	_, e0, e1 := newPair(t, 1)
	reg := e1.Register(64)
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], 0xdeadbeefcafe)
	e0.Put(reg.Base(), w[:])
	if got := reg.LocalWord(0); got != 0xdeadbeefcafe {
		t.Fatalf("LocalWord = %#x", got)
	}
}
