package simnet

import (
	"errors"
	"fmt"
)

// ErrPeerFailed is the abort panic/error carrying *which* rank took the
// world down and (when this process observed the failure first-hand) the
// transport-level cause. The distributed backends deliver it instead of the
// bare ErrAborted once a RANKFAIL verdict names the dead rank, so blocked
// primitives unwind with an error that tells the operator who died.
//
// It matches errors.Is(err, ErrAborted): abort classification written
// against the sentinel keeps working, and layers that care can errors.As
// out the rank.
type ErrPeerFailed struct {
	Rank  int   // the failed rank
	Cause error // transport evidence, nil when learned via RANKFAIL relay
}

func (e *ErrPeerFailed) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("simnet: peer rank %d failed: %v", e.Rank, e.Cause)
	}
	return fmt.Sprintf("simnet: peer rank %d failed", e.Rank)
}

// Unwrap exposes the transport evidence to errors.Is/As chains.
func (e *ErrPeerFailed) Unwrap() error { return e.Cause }

// Is makes every peer failure an abort: errors.Is(err, ErrAborted) holds.
func (e *ErrPeerFailed) Is(target error) bool { return target == ErrAborted }

// IsAbortPanic reports whether a recovered panic value is the world-abort
// unwind — bare ErrAborted or an *ErrPeerFailed. Rank recover blocks use it
// so abort classification survives both panic shapes.
func IsAbortPanic(v any) bool {
	err, ok := v.(error)
	return ok && errors.Is(err, ErrAborted)
}
