package simnet

import (
	"sync"
	"testing"

	"fompi/internal/timing"
)

// notifyWorld builds a fabric of n ranks with one endpoint and one
// ring-backed region per rank.
func notifyWorld(t *testing.T, n, capacity int) (*Fabric, []*Endpoint, []*NotifyRing) {
	t.Helper()
	f := NewFabric(n, 1)
	eps := make([]*Endpoint, n)
	rings := make([]*NotifyRing, n)
	for r := 0; r < n; r++ {
		eps[r] = f.Endpoint(r, FoMPI())
		reg := eps[r].Register(NotifyRingBytes(capacity) + 1024)
		rings[r] = BindNotifyRing(reg, 0, capacity)
	}
	return f, eps, rings
}

func TestNotifyDeliverAndPop(t *testing.T) {
	_, eps, rings := notifyWorld(t, 2, 8)
	comp := eps[0].Notify(rings[1].Base(), 42)
	if comp <= 0 {
		t.Fatal("notification must advance virtual time")
	}
	if got := rings[1].Pending(); got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}
	w, ok := rings[1].TryPop(eps[1])
	if !ok || w != 42 {
		t.Fatalf("pop = (%d, %v), want (42, true)", w, ok)
	}
	if eps[1].Now() < comp {
		t.Errorf("consumer clock %d did not merge notification completion %d", eps[1].Now(), comp)
	}
	if _, ok := rings[1].TryPop(eps[1]); ok {
		t.Error("second pop must find an empty ring")
	}
}

func TestPutNotifyDataBeforeNotification(t *testing.T) {
	_, eps, rings := notifyWorld(t, 2, 8)
	dst := Addr{Rank: 1, Key: rings[1].reg.key, Off: NotifyRingBytes(8)}
	payload := []byte("notified") // 8 bytes
	comp := eps[0].PutNotify(dst, payload, rings[1].Base(), 7)
	w, ok := rings[1].TryPop(eps[1])
	if !ok || w != 7 {
		t.Fatalf("pop = (%d, %v), want (7, true)", w, ok)
	}
	// Consuming the notification must cover the data's completion stamp.
	dataStamp := rings[1].reg.StampMax(dst.Off, len(payload))
	if eps[1].Now() < dataStamp {
		t.Errorf("consumer clock %d below data stamp %d: data not causally visible", eps[1].Now(), dataStamp)
	}
	if comp < dataStamp {
		t.Errorf("notification completion %d precedes data completion %d", comp, dataStamp)
	}
	if got := string(rings[1].reg.Bytes()[dst.Off : dst.Off+8]); got != "notified" {
		t.Errorf("payload = %q", got)
	}
}

func TestGetNotifyNotifiesOwner(t *testing.T) {
	_, eps, rings := notifyWorld(t, 2, 8)
	src := Addr{Rank: 1, Key: rings[1].reg.key, Off: NotifyRingBytes(8)}
	copy(rings[1].reg.Bytes()[src.Off:], "ownerdat")
	dst := make([]byte, 8)
	eps[0].GetNotify(dst, src, rings[1].Base(), 9)
	if string(dst) != "ownerdat" {
		t.Fatalf("get payload = %q", dst)
	}
	if w, ok := rings[1].TryPop(eps[1]); !ok || w != 9 {
		t.Fatalf("owner pop = (%d, %v), want (9, true)", w, ok)
	}
}

func TestNotifyRingOverflowFaults(t *testing.T) {
	_, eps, rings := notifyWorld(t, 2, 4)
	for i := 0; i < 4; i++ {
		eps[0].Notify(rings[1].Base(), uint64(i))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("fifth notification into a capacity-4 ring must fault")
		}
	}()
	eps[0].Notify(rings[1].Base(), 99)
}

func TestNotifyUnboundRingFaults(t *testing.T) {
	f := NewFabric(2, 1)
	ep0 := f.Endpoint(0, FoMPI())
	ep1 := f.Endpoint(1, FoMPI())
	reg := ep1.Register(NotifyRingBytes(4)) // registered but never bound
	defer func() {
		if recover() == nil {
			t.Fatal("notification into an unbound ring must fault")
		}
	}()
	ep0.Notify(Addr{Rank: 1, Key: reg.Key()}, 1)
}

func TestNotifyReservedBitFaults(t *testing.T) {
	_, eps, rings := notifyWorld(t, 2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("word with bit 63 set must fault")
		}
	}()
	eps[0].Notify(rings[1].Base(), 1<<63)
}

func TestNotifyConcurrentProducers(t *testing.T) {
	const producers = 8
	const each = 32
	f, eps, rings := notifyWorld(t, producers+1, producers*each)
	ring := rings[producers].Base()
	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				eps[pr].Notify(ring, uint64(pr*1000+i))
			}
		}(pr)
	}
	// Consume concurrently with production: every word arrives exactly once,
	// and per producer in order.
	got := make(map[uint64]bool, producers*each)
	next := make([]int, producers)
	consumer := eps[producers]
	for n := 0; n < producers*each; n++ {
		w := rings[producers].Pop(consumer)
		if got[w] {
			t.Fatalf("duplicate notification %d", w)
		}
		got[w] = true
		pr, i := int(w/1000), int(w%1000)
		if i != next[pr] {
			t.Fatalf("producer %d delivered out of order: got %d want %d", pr, i, next[pr])
		}
		next[pr]++
	}
	wg.Wait()
	if rings[producers].Pending() != 0 {
		t.Errorf("ring should be drained, %d pending", rings[producers].Pending())
	}
	_ = f
}

func TestNotifyStampMonotonePerProducer(t *testing.T) {
	_, eps, rings := notifyWorld(t, 2, 64)
	// A single producer's notifications complete in nondecreasing virtual
	// time, so the consumer's merged clock after each pop is monotone.
	var comps []timing.Time
	for i := 0; i < 20; i++ {
		comps = append(comps, eps[0].Notify(rings[1].Base(), uint64(i)))
	}
	for i := 1; i < len(comps); i++ {
		if comps[i] < comps[i-1] {
			t.Fatalf("completion %d (%d) earlier than %d (%d)", i, comps[i], i-1, comps[i-1])
		}
	}
	var prev timing.Time
	for i := 0; i < 20; i++ {
		w, ok := rings[1].TryPop(eps[1])
		if !ok || w != uint64(i) {
			t.Fatalf("pop %d = (%d, %v)", i, w, ok)
		}
		if eps[1].Now() < prev {
			t.Fatalf("consumer clock went backwards: %d after %d", eps[1].Now(), prev)
		}
		prev = eps[1].Now()
	}
}

func TestNotifyRingWraps(t *testing.T) {
	_, eps, rings := notifyWorld(t, 2, 3)
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			eps[0].Notify(rings[1].Base(), uint64(round*10+i))
		}
		for i := 0; i < 3; i++ {
			w, ok := rings[1].TryPop(eps[1])
			if !ok || w != uint64(round*10+i) {
				t.Fatalf("round %d pop %d = (%d, %v)", round, i, w, ok)
			}
		}
	}
}

func TestBindNotifyRingValidation(t *testing.T) {
	f := NewFabric(1, 1)
	ep := f.Endpoint(0, FoMPI())
	reg := ep.Register(64)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"zero capacity", func() { BindNotifyRing(reg, 0, 0) }},
		{"misaligned", func() { BindNotifyRing(ep.Register(128), 4, 2) }},
		{"too small", func() { BindNotifyRing(reg, 0, 1000) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: BindNotifyRing must fault", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestNotifyRingBytes(t *testing.T) {
	for _, capacity := range []int{1, 7, 256} {
		want := 24 + capacity*8
		if got := NotifyRingBytes(capacity); got != want {
			t.Errorf("NotifyRingBytes(%d) = %d, want %d", capacity, got, want)
		}
	}
}
