package simnet

import (
	"fompi/internal/hostatomic"
	"fompi/internal/segpool"
	"fompi/internal/timing"
)

// Endpoint is one rank's port into the fabric for one transport layer.
// Several layers (foMPI, UPC, MPI-1...) may hold endpoints for the same rank;
// they share the rank's registered regions and NIC but carry their own cost
// model and virtual clock. An Endpoint is owned by its rank's goroutine and
// must not be shared across goroutines.
type Endpoint struct {
	fab   Transport
	rank  int
	node  int // cached fab.NodeOf(rank): intra/inter decisions are one division
	cm    *CostModel
	drain WireDrainer // fab's pipelined-wire extension, when it has one

	clock       timing.Time
	implicitMax timing.Time
	nicFree     timing.Time // source-side NIC availability (outcast bandwidth)

	// Batched-issue state (BeginBatch/EndBatch). While batchDepth > 0 the
	// per-operation host disciplines are deferred: pacing and the clock
	// publish run once at EndBatch, destination doorbells ring once per
	// distinct node at EndBatch (pendDst, deduplicated through dstMark),
	// and region lookups are memoized in regMemo. None of this touches
	// virtual time — batched issue is bit-identical to unbatched issue.
	batchDepth int
	batchGen   uint32   // current dedup generation; 0 is never valid
	pendDst    []int    // distinct destination ranks with a deferred doorbell
	dstMark    []uint32 // dstMark[r] == batchGen ⇒ r already in pendDst
	regMemo    [regMemoSize]regMemoEnt
	regMemoN   int

	ctr Counters
}

// regMemoSize bounds the per-batch region memo: batches touch few distinct
// (rank, key) pairs, and a miss only costs the regular atomic-load lookup.
const regMemoSize = 8

type regMemoEnt struct {
	rank int32
	key  Key
	reg  *Region
}

// Handle identifies an explicit-nonblocking operation; it completes at a
// known virtual time. On a pipelined wire backend the completion time may
// still be in flight: pend then points at the slot the backend fills when
// the reply drains, and Wait/Test drain the wire before reading it.
type Handle struct {
	comp timing.Time
	pend *timing.Time
}

// NewEndpoint creates an endpoint for rank over any transport backend with
// the layer cost model cm. All timing logic lives here, above the Transport
// line, so layers driving different backends share one cost engine.
func NewEndpoint(t Transport, rank int, cm *CostModel) *Endpoint {
	if rank < 0 || rank >= t.Size() {
		panic("simnet: endpoint rank out of range")
	}
	ep := &Endpoint{fab: t, rank: rank, node: t.NodeOf(rank), cm: cm}
	ep.drain, _ = t.(WireDrainer)
	return ep
}

// drainWire blocks until every pipelined wire operation has delivered its
// completion time (a no-op on backends without an in-flight window).
func (ep *Endpoint) drainWire() {
	if ep.drain != nil {
		ep.drain.DrainWire()
	}
}

// Endpoint creates an endpoint for rank with the layer cost model cm.
func (f *Fabric) Endpoint(rank int, cm *CostModel) *Endpoint {
	return NewEndpoint(f, rank, cm)
}

// Endpoints creates one endpoint per rank with a shared cost model, in a
// single slab (world setup: one allocation instead of one per rank). Each
// endpoint is still confined to its rank's goroutine.
func (f *Fabric) Endpoints(cm *CostModel) []Endpoint {
	eps := make([]Endpoint, f.n)
	for r := range eps {
		eps[r] = Endpoint{fab: f, rank: r, node: f.NodeOf(r), cm: cm}
	}
	return eps
}

// Rank returns the owning rank.
func (ep *Endpoint) Rank() int { return ep.rank }

// Transport returns the underlying transport backend.
func (ep *Endpoint) Transport() Transport { return ep.fab }

// Model returns the endpoint's cost model.
func (ep *Endpoint) Model() *CostModel { return ep.cm }

// Now returns the rank's virtual clock.
func (ep *Endpoint) Now() timing.Time { return ep.clock }

// AdvanceTo raises the clock to at least t.
func (ep *Endpoint) AdvanceTo(t timing.Time) {
	if t > ep.clock {
		ep.clock = t
	}
}

// Compute advances the clock by ns nanoseconds of local computation and
// publishes the new clock for pacing (deferred to EndBatch inside a batch).
func (ep *Endpoint) Compute(ns int64) {
	ep.clock += timing.Time(ns)
	if ep.batchDepth == 0 {
		ep.fab.PublishClock(ep.rank, ep.clock)
	}
}

// Steps charges n software steps (≈CPU instructions) to the layer's
// critical-path accounting without advancing time; the instruction-count
// experiment reads them back through Counters.
func (ep *Endpoint) Steps(n int64) { ep.ctr.SoftSteps += n }

// Counters returns a snapshot of the endpoint's operation counters.
func (ep *Endpoint) Counters() Counters { return ep.ctr }

// ResetCounters zeroes the operation counters.
func (ep *Endpoint) ResetCounters() { ep.ctr = Counters{} }

// BeginBatch opens a batched non-blocking issue scope. Operations issued
// before the matching EndBatch accumulate their virtual-time effects exactly
// as unbatched issue would — clocks, stamps, and NIC bookings are
// bit-identical — but the per-operation host disciplines are coalesced:
// EndBatch performs one clock publish and one pacing check, rings each
// distinct destination node's doorbell once, and region lookups within the
// batch are memoized per (rank, key). Batches nest; only the outermost
// EndBatch flushes. A batch is an issue scope, not a transaction: bytes land
// at issue time, and blocking waits inside a batch (WaitLocal,
// PollRemoteWord) flush the deferred doorbells before parking so a peer
// waiting on a batched write cannot be stranded.
func (ep *Endpoint) BeginBatch() {
	if ep.batchDepth == 0 {
		ep.nextBatchGen()
		ep.regMemoN = 0
	}
	ep.batchDepth++
}

// EndBatch closes a batched issue scope. The outermost EndBatch rings the
// deferred doorbells (one notify per distinct destination node) and runs the
// pacing discipline once over the batch's accumulated clock.
func (ep *Endpoint) EndBatch() {
	if ep.batchDepth <= 0 {
		panic("simnet: EndBatch without BeginBatch")
	}
	ep.batchDepth--
	if ep.batchDepth > 0 {
		return
	}
	ep.flushBatchNotifies()
	ep.fab.Pace(ep.rank, ep.clock)
}

// InBatch reports whether a batched issue scope is open.
func (ep *Endpoint) InBatch() bool { return ep.batchDepth > 0 }

// nextBatchGen advances the doorbell-dedup generation, invalidating every
// dstMark entry in O(1). Generation 0 is reserved (the zero value of a fresh
// dstMark slot), so a wrap clears the marks and restarts at 1.
func (ep *Endpoint) nextBatchGen() {
	ep.batchGen++
	if ep.batchGen == 0 {
		clear(ep.dstMark)
		ep.batchGen = 1
	}
}

// flushBatchNotifies rings every deferred doorbell once and invalidates the
// dedup marks so later writes in the same batch re-arm their destinations.
func (ep *Endpoint) flushBatchNotifies() {
	for _, r := range ep.pendDst {
		ep.fab.RingDoorbell(r)
	}
	ep.pendDst = ep.pendDst[:0]
	ep.nextBatchGen()
}

// flushBeforeBlock releases everything a real-time wait must not hold back:
// deferred doorbells (a peer may be parked on one), the batched clock
// publish (a pace-blocked peer may be waiting for this rank's progress),
// and the pipelined wire window (an async put's bytes must land before this
// rank parks on a reply to them). The batch scope itself stays open.
func (ep *Endpoint) flushBeforeBlock() {
	if ep.batchDepth > 0 {
		ep.flushBatchNotifies()
		ep.fab.PublishClock(ep.rank, ep.clock)
	}
	ep.drainWire()
}

// notifyDst rings dst's doorbell, or defers the ring — deduplicated per
// destination — while a batch is open.
func (ep *Endpoint) notifyDst(dst int) {
	if ep.batchDepth == 0 {
		ep.fab.RingDoorbell(dst)
		return
	}
	if ep.dstMark == nil {
		ep.dstMark = make([]uint32, ep.fab.Size())
	}
	if ep.dstMark[dst] == ep.batchGen {
		return
	}
	ep.dstMark[dst] = ep.batchGen
	ep.pendDst = append(ep.pendDst, dst)
}

// paceOp runs the per-operation pacing discipline; inside a batch it is
// deferred to EndBatch (one check per batch instead of one per op).
func (ep *Endpoint) paceOp() {
	if ep.batchDepth == 0 {
		ep.fab.Pace(ep.rank, ep.clock)
	}
}

// region resolves an address, memoizing lookups per (rank, key) while a
// batch is open. The memo carries the same staleness contract as the
// copy-on-write region table itself: a concurrent unregister may leave a
// reader holding the prior registration for the rest of its (short) batch.
func (ep *Endpoint) region(a Addr) *Region {
	if ep.batchDepth > 0 {
		for i := 0; i < ep.regMemoN; i++ {
			if e := &ep.regMemo[i]; e.rank == int32(a.Rank) && e.key == a.Key {
				return e.reg
			}
		}
		reg := ep.fab.LookupRegion(a)
		if ep.regMemoN < regMemoSize {
			ep.regMemo[ep.regMemoN] = regMemoEnt{rank: int32(a.Rank), key: a.Key, reg: reg}
			ep.regMemoN++
		}
		return reg
	}
	return ep.fab.LookupRegion(a)
}

// Register allocates and registers size bytes of transport-reachable memory
// from the backend's segment allocator (pooled heap in process, the rank's
// shared-memory arena on the multi-process backend).
func (ep *Endpoint) Register(size int) *Region {
	seg := ep.fab.AllocSeg(ep.rank, size)
	return ep.RegisterBufStamps(seg.Buf, seg.St)
}

// AllocSeg returns a zeroed registrable segment of transport-reachable
// memory for this rank (see Transport.AllocSeg).
func (ep *Endpoint) AllocSeg(size int) *segpool.Seg {
	return ep.fab.AllocSeg(ep.rank, size)
}

// RecycleSeg returns a stamp-disciplined segment to the backend allocator,
// wiping only the stamped blocks plus the declared extra extents (see
// segpool.PutScrubbed for the caller obligations).
func (ep *Endpoint) RecycleSeg(s *segpool.Seg, extra ...segpool.Range) {
	ep.fab.RecycleSeg(ep.rank, s, true, extra...)
}

// RecycleSegWiped returns a segment with untracked writes to the backend
// allocator, wiping it fully.
func (ep *Endpoint) RecycleSegWiped(s *segpool.Seg) {
	ep.fab.RecycleSeg(ep.rank, s, false)
}

// RegisterBuf registers caller-provided memory (traditional windows expose
// existing user buffers). The slice must come from make (8-byte aligned).
func (ep *Endpoint) RegisterBuf(buf []byte) *Region {
	return ep.RegisterBufStamps(buf, timing.NewStamps(len(buf)))
}

// RegisterBufStamps registers caller-provided memory with caller-provided
// shadow stamps, which must cover len(buf) and be in the all-zero state
// (timing.Stamps.Reset). The pooled-segment paths use it to recycle the
// shadow arrays across worlds instead of reallocating them per run.
func (ep *Endpoint) RegisterBufStamps(buf []byte, st *timing.Stamps) *Region {
	reg := &Region{}
	ep.RegisterBufStampsInto(reg, buf, st)
	return reg
}

// RegisterBufStampsInto is RegisterBufStamps into a caller-owned Region
// struct — world and window setup embed their regions in slab-allocated
// state instead of allocating one object per registration. reg must not be
// currently registered.
func (ep *Endpoint) RegisterBufStampsInto(reg *Region, buf []byte, st *timing.Stamps) {
	if st == nil || st.Bytes() < len(buf) {
		panic("simnet: stamps do not cover the registered buffer")
	}
	*reg = Region{owner: ep.rank, buf: buf, stamps: st}
	reg.key = ep.fab.RegisterRegion(ep.rank, reg)
}

// Unregister removes a registration; later remote accesses fault.
func (ep *Endpoint) Unregister(reg *Region) { ep.fab.UnregisterRegion(ep.rank, reg.key) }

// profileFor picks the intra/inter profile for a peer rank.
func (ep *Endpoint) profileFor(peer int) *Profile {
	return ep.cm.For(ep.sameNodeTo(peer))
}

// schedXfer models one payload crossing the wire as a pipeline: the source
// NIC serializes departures, the first byte arrives lat after departure,
// and the target NIC is occupied for the xfer serialization time starting
// at first-byte arrival (incast). The payload is fully delivered when the
// target NIC finishes — one bandwidth term end to end, not one per NIC.
func (ep *Endpoint) schedXfer(dst int, depart timing.Time, lat, xfer int64) timing.Time {
	return ep.schedXferOn(ep.sameNodeTo(dst), dst, depart, lat, xfer)
}

// schedXferOn is schedXfer with the intra/inter decision precomputed, so a
// caller that already resolved the peer's profile does not re-derive node
// indices (integer divisions on the per-operation hot path).
func (ep *Endpoint) schedXferOn(same bool, dst int, depart timing.Time, lat, xfer int64) timing.Time {
	if same {
		// Intra-node (XPMEM): the issuing CPU performs the copy itself.
		return depart + timing.Time(lat)
	}
	depart = ep.srcDepart(depart, xfer)
	return ep.fab.ReserveNIC(dst, depart+timing.Time(lat), xfer)
}

// srcDepart serializes a departure through the source NIC (outcast
// bandwidth) and returns the adjusted departure time.
func (ep *Endpoint) srcDepart(depart timing.Time, xfer int64) timing.Time {
	if ep.nicFree > depart {
		depart = ep.nicFree
	}
	ep.nicFree = depart + timing.Time(xfer)
	return depart
}

// xferArrival computes the remote-side arrival time of a transfer departing
// at the current clock: the requester-local half of schedXferOn (source-NIC
// serialization for inter-node transfers), used when the remainder — the
// target-NIC reservation — executes at the region's owner through a
// RemoteMem proxy. Intra-node the returned time is the final completion.
func (ep *Endpoint) xferArrival(same bool, lat, xfer int64) timing.Time {
	depart := ep.clock
	if !same {
		depart = ep.srcDepart(depart, xfer)
	}
	return depart + timing.Time(lat)
}

// sameNodeTo reports whether peer shares this endpoint's node, using the
// endpoint's cached node index (one division instead of two).
func (ep *Endpoint) sameNodeTo(peer int) bool {
	return ep.node == ep.fab.NodeOf(peer)
}

// putIssue moves the bytes now. With sink nil it blocks for the completion
// time and returns it. With sink non-nil the completion is delivered to
// *sink instead — folded with Max when fold is true, assigned otherwise —
// and on a pipelined wire backend the delivery may be deferred to the next
// drain (deferred=true, comp meaningless); everywhere else it happens
// before returning. All clock and cost arithmetic is identical either way.
func (ep *Endpoint) putIssue(dst Addr, src []byte, sink *timing.Time, fold bool) (comp timing.Time, deferred bool) {
	ep.paceOp()
	same := ep.sameNodeTo(dst.Rank)
	pr := ep.cm.For(same)
	reg := ep.region(dst)
	reg.check(dst.Off, len(src))
	ep.clock += timing.Time(pr.InjectNs)
	if same {
		// XPMEM copy occupies the issuing CPU.
		ep.clock += timing.Time(pr.xferNs(len(src)))
	}
	if rm := reg.rmt; rm != nil {
		xfer := pr.xferNs(len(src))
		arrival := ep.xferArrival(same, pr.PutLatNs+pr.knee(len(src)), xfer)
		if sink != nil && reg.rmta != nil {
			reg.rmta.PutAsync(dst.Off, src, !same, arrival, xfer, sink, fold)
			deferred = true
		} else {
			comp = rm.Put(dst.Off, src, !same, arrival, xfer)
		}
	} else {
		copy(reg.buf[dst.Off:dst.Off+len(src)], src)
		comp = ep.schedXferOn(same, dst.Rank, ep.clock, pr.PutLatNs+pr.knee(len(src)), pr.xferNs(len(src)))
		reg.stamps.SetRange(dst.Off, len(src), comp)
	}
	ep.ctr.Puts++
	ep.ctr.BytesPut += int64(len(src))
	ep.notifyDst(dst.Rank)
	if !deferred && sink != nil {
		if fold {
			*sink = timing.Max(*sink, comp)
		} else {
			*sink = comp
		}
	}
	return comp, deferred
}

// putCommon moves the bytes now and returns the virtual completion time.
func (ep *Endpoint) putCommon(dst Addr, src []byte) timing.Time {
	comp, _ := ep.putIssue(dst, src, nil, false)
	return comp
}

// PutNBI issues an implicit-nonblocking put, completed by Gsync.
func (ep *Endpoint) PutNBI(dst Addr, src []byte) {
	ep.putIssue(dst, src, &ep.implicitMax, true)
}

// PutNB issues an explicit-nonblocking put and returns its handle.
func (ep *Endpoint) PutNB(dst Addr, src []byte) Handle {
	if ep.drain == nil {
		return Handle{comp: ep.putCommon(dst, src)}
	}
	// Pipelined backend: the put may go out without waiting for its reply,
	// so the handle carries the slot the drain will fill.
	box := new(timing.Time)
	if _, deferred := ep.putIssue(dst, src, box, false); deferred {
		return Handle{pend: box}
	}
	return Handle{comp: *box}
}

// Put performs a blocking put (remote completion before return).
func (ep *Endpoint) Put(dst Addr, src []byte) {
	ep.AdvanceTo(ep.putCommon(dst, src))
}

// getCommon copies the bytes now and returns the virtual completion time,
// merged with the stamps of the words read (causality).
func (ep *Endpoint) getCommon(dst []byte, src Addr) timing.Time {
	ep.paceOp()
	same := ep.sameNodeTo(src.Rank)
	pr := ep.cm.For(same)
	reg := ep.region(src)
	reg.check(src.Off, len(dst))
	ep.clock += timing.Time(pr.InjectNs)
	ep.ctr.Gets++
	ep.ctr.BytesGot += int64(len(dst))
	if rm := reg.rmt; rm != nil {
		var comp timing.Time
		if same {
			comp = rm.Get(dst, src.Off, ep.clock, false, pr.GetLatNs+pr.xferNs(len(dst)), 0)
			ep.clock = comp
		} else {
			comp = rm.Get(dst, src.Off, ep.clock, true, pr.GetLatNs+pr.knee(len(dst)), pr.xferNs(len(dst)))
		}
		return comp
	}
	copy(dst, reg.buf[src.Off:src.Off+len(dst)])
	base := timing.Max(ep.clock, reg.stamps.MaxRange(src.Off, len(dst)))
	if same {
		// XPMEM read: CPU copies the data itself.
		comp := base + timing.Time(pr.GetLatNs+pr.xferNs(len(dst)))
		ep.clock = comp
		return comp
	}
	xfer := pr.xferNs(len(dst))
	arrive := base + timing.Time(pr.GetLatNs+pr.knee(len(dst)))
	return ep.fab.ReserveNIC(src.Rank, arrive, xfer) // data leaves the target NIC
}

// GetNBI issues an implicit-nonblocking get, completed by Gsync.
func (ep *Endpoint) GetNBI(dst []byte, src Addr) {
	comp := ep.getCommon(dst, src)
	ep.implicitMax = timing.Max(ep.implicitMax, comp)
}

// GetNB issues an explicit-nonblocking get and returns its handle.
func (ep *Endpoint) GetNB(dst []byte, src Addr) Handle {
	return Handle{comp: ep.getCommon(dst, src)}
}

// Get performs a blocking get.
func (ep *Endpoint) Get(dst []byte, src Addr) {
	ep.AdvanceTo(ep.getCommon(dst, src))
}

// amoCommon performs the word operation on the addressed word atomically
// right now. The update becomes visible at the target after a one-way
// latency (that is the word's stamp); the origin-side completion of a
// fetching operation takes the full AMO round trip (AmoNs — the paper's
// P_acc constant).
func (ep *Endpoint) amoCommon(a Addr, op WordOp, o1, o2 uint64) (old uint64, comp timing.Time) {
	ep.paceOp()
	same := ep.sameNodeTo(a.Rank)
	pr := ep.cm.For(same)
	reg := ep.region(a)
	reg.check(a.Off, 8)
	ep.clock += timing.Time(pr.InjectNs)
	var land, base timing.Time
	if rm := reg.rmt; rm != nil {
		var free timing.Time
		old, land, base, free = rm.WordAmo(op, a.Off, o1, o2,
			ep.clock, ep.nicFree, !same, pr.PutLatNs, pr.xferNs(8))
		if !same {
			ep.nicFree = free
		}
	} else {
		// The whole read-apply-stamp sequence holds the chain lock: a racing
		// AMO that read the same prior stamp would overwrite this one's later
		// landing with an earlier time, leaking host scheduling into the
		// stamps that pollers merge.
		reg.stamps.LockChain()
		prev := reg.stamps.Get(a.Off)
		old = applyWordOp(reg.buf, a.Off, op, o1, o2)
		base = timing.Max(ep.clock, prev)
		land = ep.schedXferOn(same, a.Rank, base, pr.PutLatNs, pr.xferNs(8))
		reg.stamps.Set(a.Off, land)
		reg.stamps.UnlockChain()
	}
	comp = timing.Max(land, base+timing.Time(pr.AmoNs))
	ep.ctr.Amos++
	ep.notifyDst(a.Rank)
	return old, comp
}

// FetchAdd atomically adds delta to the remote word and returns the old
// value (blocking: fetching AMOs return data).
func (ep *Endpoint) FetchAdd(a Addr, delta uint64) uint64 {
	old, comp := ep.amoCommon(a, WordAdd, delta, 0)
	ep.AdvanceTo(comp)
	return old
}

// FetchAddNB issues a fetching atomic add without blocking: the previous
// value is returned immediately (the simulation resolves it at issue), and
// the handle completes when the reply would physically arrive. Protocols
// pipeline independent fetching AMOs with it (e.g. PSCW post acquires all k
// matching-list slots in one round trip).
func (ep *Endpoint) FetchAddNB(a Addr, delta uint64) (uint64, Handle) {
	old, comp := ep.amoCommon(a, WordAdd, delta, 0)
	return old, Handle{comp: comp}
}

// CompareSwap atomically compares-and-swaps the remote word, returning the
// value held before the operation.
func (ep *Endpoint) CompareSwap(a Addr, compare, swap uint64) uint64 {
	old, comp := ep.amoCommon(a, WordCas, compare, swap)
	ep.AdvanceTo(comp)
	return old
}

// Swap atomically replaces the remote word, returning the old value.
func (ep *Endpoint) Swap(a Addr, v uint64) uint64 {
	old, comp := ep.amoCommon(a, WordSwap, v, 0)
	ep.AdvanceTo(comp)
	return old
}

// AddNBI issues a non-fetching atomic add with implicit completion.
func (ep *Endpoint) AddNBI(a Addr, delta uint64) {
	_, comp := ep.amoCommon(a, WordAdd, delta, 0)
	ep.implicitMax = timing.Max(ep.implicitMax, comp)
}

// StoreW atomically stores an 8-byte word remotely (an NBI put of one word;
// the flag-update primitive of all synchronization protocols).
func (ep *Endpoint) StoreW(a Addr, v uint64) {
	ep.paceOp()
	same := ep.sameNodeTo(a.Rank)
	pr := ep.cm.For(same)
	reg := ep.region(a)
	reg.check(a.Off, 8)
	ep.clock += timing.Time(pr.InjectNs)
	if reg.rmta != nil {
		// Pipelined wire: the completion folds into implicitMax when the
		// window drains (Gsync drains first; Max is commutative, so the
		// deferral cannot change the fold's result).
		reg.rmta.StoreWordAsync(a.Off, v, !same,
			ep.xferArrival(same, pr.PutLatNs, pr.xferNs(8)), pr.xferNs(8), &ep.implicitMax, true)
	} else if rm := reg.rmt; rm != nil {
		comp := rm.StoreWord(a.Off, v, !same, ep.xferArrival(same, pr.PutLatNs, pr.xferNs(8)), pr.xferNs(8))
		ep.implicitMax = timing.Max(ep.implicitMax, comp)
	} else {
		comp := ep.schedXferOn(same, a.Rank, ep.clock, pr.PutLatNs, pr.xferNs(8))
		hostatomic.Store(reg.buf, a.Off, v)
		reg.stamps.Set(a.Off, comp)
		ep.implicitMax = timing.Max(ep.implicitMax, comp)
	}
	ep.ctr.Puts++
	ep.ctr.BytesPut += 8
	ep.notifyDst(a.Rank)
}

// LoadW atomically reads a remote 8-byte word (blocking get of one word).
// Like every other remote operation it runs through the pacing discipline
// (pace publishes the clock), so paced workloads that poll via LoadW cannot
// run ahead of the pacing window.
func (ep *Endpoint) LoadW(a Addr) uint64 {
	ep.paceOp()
	pr := ep.profileFor(a.Rank)
	reg := ep.region(a)
	v, st := ep.loadWordStamped(reg, a.Off)
	ep.clock = timing.Max(ep.clock+timing.Time(pr.InjectNs), st) +
		timing.Time(pr.GetLatNs+pr.xferNs(8))
	ep.ctr.Gets++
	ep.ctr.BytesGot += 8
	return v
}

// loadWordStamped reads a word and its stamp in one snapshot, routing
// through the proxy on unreachable remote memory.
func (ep *Endpoint) loadWordStamped(reg *Region, off int) (uint64, timing.Time) {
	if rm := reg.rmt; rm != nil {
		reg.check(off, 8)
		return rm.LoadWord(off)
	}
	return reg.atomicLoad(off), reg.stamps.Get(off)
}

// Gsync completes all implicit-nonblocking operations (DMAPP bulk
// completion): the foMPI flush primitive. On a pipelined wire backend it
// drains the in-flight window first, so every deferred completion has
// folded into implicitMax before the clock reads it.
func (ep *Endpoint) Gsync() {
	ep.ctr.Gsyncs++
	ep.drainWire()
	ep.clock = timing.Max(ep.clock+timing.Time(ep.cm.Inter.GsyncNs), ep.implicitMax)
}

// GsyncLocal completes implicit operations locally only (source buffers
// reusable; remote completion not guaranteed). In the simulation source
// data is captured at issue time, so this charges only the call overhead.
func (ep *Endpoint) GsyncLocal() {
	ep.ctr.Gsyncs++
	ep.clock += timing.Time(ep.cm.Inter.GsyncNs)
}

// MemSync models a processor memory fence (MPI_Win_sync).
func (ep *Endpoint) MemSync() {
	ep.ctr.Syncs++
	ep.clock += timing.Time(ep.cm.Intra.SyncNs)
}

// Wait blocks until the explicit-nonblocking operation completes, draining
// the wire window first when the handle's completion is still in flight.
func (ep *Endpoint) Wait(h Handle) {
	if h.pend != nil {
		ep.drainWire()
		ep.AdvanceTo(*h.pend)
		return
	}
	ep.AdvanceTo(h.comp)
}

// Test reports whether h has completed by the rank's current virtual time.
func (ep *Endpoint) Test(h Handle) bool {
	if h.pend != nil {
		ep.drainWire()
		return *h.pend <= ep.clock
	}
	return h.comp <= ep.clock
}

// WaitLocal blocks the goroutine until pred holds. Writers to this rank's
// regions ring its doorbell, so no busy spinning occurs. The caller is
// responsible for merging the stamps of the words that satisfied pred
// (MergeStamp) — polls charge PollNs once on success.
func (ep *Endpoint) WaitLocal(pred func() bool) {
	ep.flushBeforeBlock()
	gen := ep.fab.DoorGen(ep.rank)
	for !pred() {
		gen = ep.fab.WaitDoor(ep.rank, gen)
		ep.ctr.Polls++
	}
	ep.clock += timing.Time(ep.cm.Intra.PollNs)
}

// MergeStamp raises the clock to the latest stamp in [off, off+n) of reg.
func (ep *Endpoint) MergeStamp(reg *Region, off, n int) {
	ep.AdvanceTo(reg.StampMax(off, n))
}

// PollRemoteWord blocks until pred holds for the remote word, re-reading it
// with ideal exponential back-off (one round trip charged on success, as the
// paper's protocols assume congestion-free retries).
func (ep *Endpoint) PollRemoteWord(a Addr, pred func(uint64) bool) uint64 {
	ep.flushBeforeBlock()
	pr := ep.profileFor(a.Rank)
	reg := ep.region(a)
	reg.check(a.Off, 8)
	gen := ep.fab.DoorGen(a.Rank)
	for {
		v, st := ep.loadWordStamped(reg, a.Off)
		if pred(v) {
			ep.clock = timing.Max(ep.clock, st) +
				timing.Time(pr.GetLatNs+pr.xferNs(8))
			ep.ctr.Gets++
			ep.ctr.BytesGot += 8
			return v
		}
		ep.ctr.Polls++
		gen = ep.fab.WaitDoor(a.Rank, gen)
	}
}

// Counters tallies fabric operations issued by an endpoint. The instruction
// count experiment (DESIGN.md xtra-instr) reports these per critical path.
type Counters struct {
	Puts, Gets, Amos int64
	// Notifies counts notification words delivered (riders and bare). A
	// bare Notify also counts as a Put — it is its own wire operation —
	// while a fused rider shares its data op's descriptor.
	Notifies           int64
	Gsyncs, Syncs      int64
	Polls              int64
	BytesPut, BytesGot int64
	SoftSteps          int64
}

// Sub returns c - o field-wise (for windowed measurements).
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Puts: c.Puts - o.Puts, Gets: c.Gets - o.Gets, Amos: c.Amos - o.Amos,
		Notifies: c.Notifies - o.Notifies,
		Gsyncs:   c.Gsyncs - o.Gsyncs, Syncs: c.Syncs - o.Syncs, Polls: c.Polls - o.Polls,
		BytesPut: c.BytesPut - o.BytesPut, BytesGot: c.BytesGot - o.BytesGot,
		SoftSteps: c.SoftSteps - o.SoftSteps,
	}
}

// RemoteOps returns the number of remote operations issued.
func (c Counters) RemoteOps() int64 { return c.Puts + c.Gets + c.Amos }

// CompTime returns the operation's virtual completion time
// (instrumentation). A handle from a pipelined wire backend holds it only
// once the window has drained — after Wait(h) or any other blocking point.
func (h Handle) CompTime() timing.Time {
	if h.pend != nil {
		return *h.pend
	}
	return h.comp
}
