package simnet

import (
	"fompi/internal/hostatomic"
	"fompi/internal/timing"
)

// Endpoint is one rank's port into the fabric for one transport layer.
// Several layers (foMPI, UPC, MPI-1...) may hold endpoints for the same rank;
// they share the rank's registered regions and NIC but carry their own cost
// model and virtual clock. An Endpoint is owned by its rank's goroutine and
// must not be shared across goroutines.
type Endpoint struct {
	fab  *Fabric
	rank int
	cm   *CostModel

	clock       timing.Time
	implicitMax timing.Time
	nicFree     timing.Time // source-side NIC availability (outcast bandwidth)

	ctr Counters
}

// Handle identifies an explicit-nonblocking operation; it completes at a
// known virtual time.
type Handle struct{ comp timing.Time }

// Endpoint creates an endpoint for rank with the layer cost model cm.
func (f *Fabric) Endpoint(rank int, cm *CostModel) *Endpoint {
	if rank < 0 || rank >= f.n {
		panic("simnet: endpoint rank out of range")
	}
	return &Endpoint{fab: f, rank: rank, cm: cm}
}

// Rank returns the owning rank.
func (ep *Endpoint) Rank() int { return ep.rank }

// Fabric returns the underlying fabric.
func (ep *Endpoint) Fabric() *Fabric { return ep.fab }

// Model returns the endpoint's cost model.
func (ep *Endpoint) Model() *CostModel { return ep.cm }

// Now returns the rank's virtual clock.
func (ep *Endpoint) Now() timing.Time { return ep.clock }

// AdvanceTo raises the clock to at least t.
func (ep *Endpoint) AdvanceTo(t timing.Time) {
	if t > ep.clock {
		ep.clock = t
	}
}

// Compute advances the clock by ns nanoseconds of local computation and
// publishes the new clock for pacing.
func (ep *Endpoint) Compute(ns int64) {
	ep.clock += timing.Time(ns)
	ep.fab.publishClock(ep.rank, ep.clock)
}

// Steps charges n software steps (≈CPU instructions) to the layer's
// critical-path accounting without advancing time; the instruction-count
// experiment reads them back through Counters.
func (ep *Endpoint) Steps(n int64) { ep.ctr.SoftSteps += n }

// Counters returns a snapshot of the endpoint's operation counters.
func (ep *Endpoint) Counters() Counters { return ep.ctr }

// ResetCounters zeroes the operation counters.
func (ep *Endpoint) ResetCounters() { ep.ctr = Counters{} }

// Register allocates and registers size bytes of fresh memory.
func (ep *Endpoint) Register(size int) *Region {
	return ep.RegisterBuf(make([]byte, size))
}

// RegisterBuf registers caller-provided memory (traditional windows expose
// existing user buffers). The slice must come from make (8-byte aligned).
func (ep *Endpoint) RegisterBuf(buf []byte) *Region {
	return ep.RegisterBufStamps(buf, timing.NewStamps(len(buf)))
}

// RegisterBufStamps registers caller-provided memory with caller-provided
// shadow stamps, which must cover len(buf) and be in the all-zero state
// (timing.Stamps.Reset). The spmd scratch pool uses it to recycle the
// shadow arrays across worlds instead of reallocating them per run.
func (ep *Endpoint) RegisterBufStamps(buf []byte, st *timing.Stamps) *Region {
	if st == nil || st.Bytes() < len(buf) {
		panic("simnet: stamps do not cover the registered buffer")
	}
	reg := &Region{owner: ep.rank, buf: buf, stamps: st}
	ep.fab.register(ep.rank, reg)
	return reg
}

// Unregister removes a registration; later remote accesses fault.
func (ep *Endpoint) Unregister(reg *Region) { ep.fab.unregister(ep.rank, reg.key) }

// profileFor picks the intra/inter profile for a peer rank.
func (ep *Endpoint) profileFor(peer int) *Profile {
	return ep.cm.For(ep.fab.SameNode(ep.rank, peer))
}

// schedXfer models one payload crossing the wire as a pipeline: the source
// NIC serializes departures, the first byte arrives lat after departure,
// and the target NIC is occupied for the xfer serialization time starting
// at first-byte arrival (incast). The payload is fully delivered when the
// target NIC finishes — one bandwidth term end to end, not one per NIC.
func (ep *Endpoint) schedXfer(dst int, depart timing.Time, lat, xfer int64) timing.Time {
	if ep.fab.SameNode(ep.rank, dst) {
		// Intra-node (XPMEM): the issuing CPU performs the copy itself.
		return depart + timing.Time(lat)
	}
	if ep.nicFree > depart {
		depart = ep.nicFree
	}
	ep.nicFree = depart + timing.Time(xfer)
	return ep.fab.reserveNIC(dst, depart+timing.Time(lat), xfer)
}

// putCommon moves the bytes now and returns the virtual completion time.
func (ep *Endpoint) putCommon(dst Addr, src []byte) timing.Time {
	ep.fab.pace(ep.rank, ep.clock)
	pr := ep.profileFor(dst.Rank)
	reg := ep.fab.region(dst)
	reg.check(dst.Off, len(src))
	ep.clock += timing.Time(pr.InjectNs)
	if ep.fab.SameNode(ep.rank, dst.Rank) {
		// XPMEM copy occupies the issuing CPU.
		ep.clock += timing.Time(pr.xferNs(len(src)))
	}
	copy(reg.buf[dst.Off:dst.Off+len(src)], src)
	comp := ep.schedXfer(dst.Rank, ep.clock, pr.PutLatNs+pr.knee(len(src)), pr.xferNs(len(src)))
	reg.stamps.SetRange(dst.Off, len(src), comp)
	ep.ctr.Puts++
	ep.ctr.BytesPut += int64(len(src))
	ep.fab.nodes[dst.Rank].notify()
	return comp
}

// PutNBI issues an implicit-nonblocking put, completed by Gsync.
func (ep *Endpoint) PutNBI(dst Addr, src []byte) {
	comp := ep.putCommon(dst, src)
	ep.implicitMax = timing.Max(ep.implicitMax, comp)
}

// PutNB issues an explicit-nonblocking put and returns its handle.
func (ep *Endpoint) PutNB(dst Addr, src []byte) Handle {
	return Handle{comp: ep.putCommon(dst, src)}
}

// Put performs a blocking put (remote completion before return).
func (ep *Endpoint) Put(dst Addr, src []byte) {
	ep.AdvanceTo(ep.putCommon(dst, src))
}

// getCommon copies the bytes now and returns the virtual completion time,
// merged with the stamps of the words read (causality).
func (ep *Endpoint) getCommon(dst []byte, src Addr) timing.Time {
	ep.fab.pace(ep.rank, ep.clock)
	pr := ep.profileFor(src.Rank)
	reg := ep.fab.region(src)
	reg.check(src.Off, len(dst))
	ep.clock += timing.Time(pr.InjectNs)
	copy(dst, reg.buf[src.Off:src.Off+len(dst)])
	base := timing.Max(ep.clock, reg.stamps.MaxRange(src.Off, len(dst)))
	if ep.fab.SameNode(ep.rank, src.Rank) {
		// XPMEM read: CPU copies the data itself.
		comp := base + timing.Time(pr.GetLatNs+pr.xferNs(len(dst)))
		ep.clock = comp
		ep.ctr.Gets++
		ep.ctr.BytesGot += int64(len(dst))
		return comp
	}
	xfer := pr.xferNs(len(dst))
	arrive := base + timing.Time(pr.GetLatNs+pr.knee(len(dst)))
	comp := ep.fab.reserveNIC(src.Rank, arrive, xfer) // data leaves the target NIC
	ep.ctr.Gets++
	ep.ctr.BytesGot += int64(len(dst))
	return comp
}

// GetNBI issues an implicit-nonblocking get, completed by Gsync.
func (ep *Endpoint) GetNBI(dst []byte, src Addr) {
	comp := ep.getCommon(dst, src)
	ep.implicitMax = timing.Max(ep.implicitMax, comp)
}

// GetNB issues an explicit-nonblocking get and returns its handle.
func (ep *Endpoint) GetNB(dst []byte, src Addr) Handle {
	return Handle{comp: ep.getCommon(dst, src)}
}

// Get performs a blocking get.
func (ep *Endpoint) Get(dst []byte, src Addr) {
	ep.AdvanceTo(ep.getCommon(dst, src))
}

// amoCommon performs fn on the addressed word atomically right now. The
// update becomes visible at the target after a one-way latency (that is the
// word's stamp); the origin-side completion of a fetching operation takes
// the full AMO round trip (AmoNs — the paper's P_acc constant).
func (ep *Endpoint) amoCommon(a Addr, fn func(reg *Region) uint64) (old uint64, comp timing.Time) {
	ep.fab.pace(ep.rank, ep.clock)
	pr := ep.profileFor(a.Rank)
	reg := ep.fab.region(a)
	reg.check(a.Off, 8)
	ep.clock += timing.Time(pr.InjectNs)
	prev := reg.stamps.Get(a.Off)
	old = fn(reg)
	base := timing.Max(ep.clock, prev)
	land := ep.schedXfer(a.Rank, base, pr.PutLatNs, pr.xferNs(8))
	reg.stamps.Set(a.Off, land)
	comp = timing.Max(land, base+timing.Time(pr.AmoNs))
	ep.ctr.Amos++
	ep.fab.nodes[a.Rank].notify()
	return old, comp
}

// FetchAdd atomically adds delta to the remote word and returns the old
// value (blocking: fetching AMOs return data).
func (ep *Endpoint) FetchAdd(a Addr, delta uint64) uint64 {
	old, comp := ep.amoCommon(a, func(r *Region) uint64 {
		return hostatomic.Add(r.buf, a.Off, delta)
	})
	ep.AdvanceTo(comp)
	return old
}

// FetchAddNB issues a fetching atomic add without blocking: the previous
// value is returned immediately (the simulation resolves it at issue), and
// the handle completes when the reply would physically arrive. Protocols
// pipeline independent fetching AMOs with it (e.g. PSCW post acquires all k
// matching-list slots in one round trip).
func (ep *Endpoint) FetchAddNB(a Addr, delta uint64) (uint64, Handle) {
	old, comp := ep.amoCommon(a, func(r *Region) uint64 {
		return hostatomic.Add(r.buf, a.Off, delta)
	})
	return old, Handle{comp: comp}
}

// CompareSwap atomically compares-and-swaps the remote word, returning the
// value held before the operation.
func (ep *Endpoint) CompareSwap(a Addr, compare, swap uint64) uint64 {
	old, comp := ep.amoCommon(a, func(r *Region) uint64 {
		return hostatomic.Cas(r.buf, a.Off, compare, swap)
	})
	ep.AdvanceTo(comp)
	return old
}

// Swap atomically replaces the remote word, returning the old value.
func (ep *Endpoint) Swap(a Addr, v uint64) uint64 {
	old, comp := ep.amoCommon(a, func(r *Region) uint64 {
		return hostatomic.Swap(r.buf, a.Off, v)
	})
	ep.AdvanceTo(comp)
	return old
}

// AddNBI issues a non-fetching atomic add with implicit completion.
func (ep *Endpoint) AddNBI(a Addr, delta uint64) {
	_, comp := ep.amoCommon(a, func(r *Region) uint64 {
		return hostatomic.Add(r.buf, a.Off, delta)
	})
	ep.implicitMax = timing.Max(ep.implicitMax, comp)
}

// StoreW atomically stores an 8-byte word remotely (an NBI put of one word;
// the flag-update primitive of all synchronization protocols).
func (ep *Endpoint) StoreW(a Addr, v uint64) {
	ep.fab.pace(ep.rank, ep.clock)
	pr := ep.profileFor(a.Rank)
	reg := ep.fab.region(a)
	reg.check(a.Off, 8)
	ep.clock += timing.Time(pr.InjectNs)
	comp := ep.schedXfer(a.Rank, ep.clock, pr.PutLatNs, pr.xferNs(8))
	hostatomic.Store(reg.buf, a.Off, v)
	reg.stamps.Set(a.Off, comp)
	ep.implicitMax = timing.Max(ep.implicitMax, comp)
	ep.ctr.Puts++
	ep.ctr.BytesPut += 8
	ep.fab.nodes[a.Rank].notify()
}

// LoadW atomically reads a remote 8-byte word (blocking get of one word).
// Like every other remote operation it runs through the pacing discipline
// (pace publishes the clock), so paced workloads that poll via LoadW cannot
// run ahead of the pacing window.
func (ep *Endpoint) LoadW(a Addr) uint64 {
	ep.fab.pace(ep.rank, ep.clock)
	pr := ep.profileFor(a.Rank)
	reg := ep.fab.region(a)
	v := reg.atomicLoad(a.Off)
	ep.clock = timing.Max(ep.clock+timing.Time(pr.InjectNs), reg.stamps.Get(a.Off)) +
		timing.Time(pr.GetLatNs+pr.xferNs(8))
	ep.ctr.Gets++
	ep.ctr.BytesGot += 8
	return v
}

// Gsync completes all implicit-nonblocking operations (DMAPP bulk
// completion): the foMPI flush primitive.
func (ep *Endpoint) Gsync() {
	ep.ctr.Gsyncs++
	ep.clock = timing.Max(ep.clock+timing.Time(ep.cm.Inter.GsyncNs), ep.implicitMax)
}

// GsyncLocal completes implicit operations locally only (source buffers
// reusable; remote completion not guaranteed). In the simulation source
// data is captured at issue time, so this charges only the call overhead.
func (ep *Endpoint) GsyncLocal() {
	ep.ctr.Gsyncs++
	ep.clock += timing.Time(ep.cm.Inter.GsyncNs)
}

// MemSync models a processor memory fence (MPI_Win_sync).
func (ep *Endpoint) MemSync() {
	ep.ctr.Syncs++
	ep.clock += timing.Time(ep.cm.Intra.SyncNs)
}

// Wait blocks until the explicit-nonblocking operation completes.
func (ep *Endpoint) Wait(h Handle) { ep.AdvanceTo(h.comp) }

// Test reports whether h has completed by the rank's current virtual time.
func (ep *Endpoint) Test(h Handle) bool { return h.comp <= ep.clock }

// WaitLocal blocks the goroutine until pred holds. Writers to this rank's
// regions ring its doorbell, so no busy spinning occurs. The caller is
// responsible for merging the stamps of the words that satisfied pred
// (MergeStamp) — polls charge PollNs once on success.
func (ep *Endpoint) WaitLocal(pred func() bool) {
	gen := ep.fab.doorGenOf(ep.rank)
	for !pred() {
		gen = ep.fab.waitDoor(ep.rank, gen)
		ep.ctr.Polls++
	}
	ep.clock += timing.Time(ep.cm.Intra.PollNs)
}

// MergeStamp raises the clock to the latest stamp in [off, off+n) of reg.
func (ep *Endpoint) MergeStamp(reg *Region, off, n int) {
	ep.AdvanceTo(reg.StampMax(off, n))
}

// PollRemoteWord blocks until pred holds for the remote word, re-reading it
// with ideal exponential back-off (one round trip charged on success, as the
// paper's protocols assume congestion-free retries).
func (ep *Endpoint) PollRemoteWord(a Addr, pred func(uint64) bool) uint64 {
	pr := ep.profileFor(a.Rank)
	reg := ep.fab.region(a)
	reg.check(a.Off, 8)
	gen := ep.fab.doorGenOf(a.Rank)
	for {
		v := reg.atomicLoad(a.Off)
		if pred(v) {
			ep.clock = timing.Max(ep.clock, reg.stamps.Get(a.Off)) +
				timing.Time(pr.GetLatNs+pr.xferNs(8))
			ep.ctr.Gets++
			ep.ctr.BytesGot += 8
			return v
		}
		ep.ctr.Polls++
		gen = ep.fab.waitDoor(a.Rank, gen)
	}
}

// Counters tallies fabric operations issued by an endpoint. The instruction
// count experiment (DESIGN.md xtra-instr) reports these per critical path.
type Counters struct {
	Puts, Gets, Amos int64
	// Notifies counts notification words delivered (riders and bare). A
	// bare Notify also counts as a Put — it is its own wire operation —
	// while a fused rider shares its data op's descriptor.
	Notifies           int64
	Gsyncs, Syncs      int64
	Polls              int64
	BytesPut, BytesGot int64
	SoftSteps          int64
}

// Sub returns c - o field-wise (for windowed measurements).
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Puts: c.Puts - o.Puts, Gets: c.Gets - o.Gets, Amos: c.Amos - o.Amos,
		Notifies: c.Notifies - o.Notifies,
		Gsyncs:   c.Gsyncs - o.Gsyncs, Syncs: c.Syncs - o.Syncs, Polls: c.Polls - o.Polls,
		BytesPut: c.BytesPut - o.BytesPut, BytesGot: c.BytesGot - o.BytesGot,
		SoftSteps: c.SoftSteps - o.SoftSteps,
	}
}

// RemoteOps returns the number of remote operations issued.
func (c Counters) RemoteOps() int64 { return c.Puts + c.Gets + c.Amos }

// CompTime returns the operation's virtual completion time (instrumentation).
func (h Handle) CompTime() timing.Time { return h.comp }
