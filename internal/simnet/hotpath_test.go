package simnet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fompi/internal/timing"
)

// TestRegionTableConcurrentChurn hammers the copy-on-write region table:
// one goroutine per owner rank registers and unregisters regions while
// remote goroutines resolve and access a pinned region the whole time.
// Run under -race this checks the table publication is properly ordered;
// the assertions check resolution never observes a stale table.
func TestRegionTableConcurrentChurn(t *testing.T) {
	f := NewFabric(4, 2)
	cm := FoMPI()
	owner := f.Endpoint(0, cm)
	pinned := owner.Register(4096) // survives the churn throughout

	const churners = 3
	const accessors = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Churn: register/unregister short-lived regions on rank 0, the same
	// node whose table the accessors resolve against.
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep := f.Endpoint(0, cm)
			for {
				select {
				case <-stop:
					return
				default:
				}
				regs := make([]*Region, 8)
				for i := range regs {
					regs[i] = ep.RegisterBuf(make([]byte, 64))
				}
				for _, r := range regs {
					ep.Unregister(r)
				}
			}
		}()
	}

	var ops atomic.Int64
	for a := 0; a < accessors; a++ {
		wg.Add(1)
		// Disjoint offsets per accessor: concurrent bulk writes to the same
		// words are an application-level race the fabric does not order.
		// The shared FetchAdd word is atomic by contract.
		go func(rank, off int) {
			defer wg.Done()
			ep := f.Endpoint(rank, cm)
			buf := make([]byte, 128)
			dst := Addr{Rank: 0, Key: pinned.Key(), Off: off}
			ctr := Addr{Rank: 0, Key: pinned.Key(), Off: 4088}
			for {
				select {
				case <-stop:
					return
				default:
				}
				ep.Put(dst, buf)
				ep.Get(buf, dst)
				ep.FetchAdd(ctr, 1)
				ops.Add(1)
			}
		}(1+a%3, a*512)
	}

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if ops.Load() == 0 {
		t.Fatal("accessors made no progress during churn")
	}
	// The pinned region must still resolve to the same registration.
	if got := f.region(Addr{Rank: 0, Key: pinned.Key()}); got != pinned {
		t.Fatalf("pinned region resolved to %p, want %p", got, pinned)
	}
}

// TestRegionUnregisterFaults checks the DMAPP-fault contract survives the
// dense-table rewrite: resolving an unregistered key panics, while keys are
// never reused for later registrations.
func TestRegionUnregisterFaults(t *testing.T) {
	f := NewFabric(2, 1)
	ep := f.Endpoint(0, FoMPI())
	r1 := ep.Register(64)
	k1 := r1.Key()
	ep.Unregister(r1)
	r2 := ep.Register(64)
	if r2.Key() == k1 {
		t.Fatalf("key %d reused after unregister", k1)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("access to unregistered region did not fault")
			}
		}()
		f.region(Addr{Rank: 0, Key: k1})
	}()
}

// TestDoorbellFastPath checks the futex-style doorbell: notify with no
// waiter must not wake anyone spuriously, a parked waiter must be woken by
// the next notify, and waitDoor must return without sleeping when the
// generation already moved.
func TestDoorbellFastPath(t *testing.T) {
	f := NewFabric(1, 1)
	nd := f.nodes[0]

	gen := f.doorGenOf(0)
	nd.notify() // nobody waiting: fast path
	if g := f.doorGenOf(0); g != gen+1 {
		t.Fatalf("doorbell generation %d, want %d", g, gen+1)
	}
	// Generation already advanced: waitDoor returns immediately.
	if g := f.waitDoor(0, gen); g != gen+1 {
		t.Fatalf("waitDoor returned %d, want %d", g, gen+1)
	}

	// Park a waiter, then ring: it must wake with the new generation.
	cur := f.doorGenOf(0)
	done := make(chan uint64, 1)
	go func() { done <- f.waitDoor(0, cur) }()
	// Wait for the waiter to register itself so the notify takes the
	// broadcast path (not strictly required for correctness — an early
	// notify is seen via the generation — but exercises the slow path).
	for i := 0; i < 1000 && nd.doorWaiters.Load() == 0; i++ {
		time.Sleep(100 * time.Microsecond)
	}
	nd.notify()
	select {
	case g := <-done:
		if g != cur+1 {
			t.Fatalf("woken waiter saw generation %d, want %d", g, cur+1)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke after notify")
	}
	if w := nd.doorWaiters.Load(); w != 0 {
		t.Fatalf("doorWaiters = %d after wake, want 0", w)
	}
}

// TestPacingShardTracker drives the sharded min-tracker directly: publishes
// establish per-shard minimums, rescans repair stale caches, and pace
// releases a blocked rank exactly when the laggard catches up.
func TestPacingShardTracker(t *testing.T) {
	const n = 130 // three shards: 64 + 64 + 2
	f := NewFabric(n, 4)
	f.SetPacing(1000)

	for r := 0; r < n; r++ {
		f.publishClock(r, timing.Time(10_000+r))
	}
	// An at-minimum publisher rescans its own shard, so after every rank
	// published, the per-shard caches and the fold are fresh.
	for s, want := range []int64{10_000, 10_064, 10_128} {
		if m := atomic.LoadInt64(&f.paceShardMins[s]); m != want {
			t.Fatalf("shard %d cached min = %d, want %d", s, m, want)
		}
	}
	min, arg := f.paceMinCached()
	if min != 10_000 || arg != 0 {
		t.Fatalf("folded min %d (shard %d), want 10000 (shard 0)", min, arg)
	}

	// Raise the global laggard: its own publish rescans the shard and the
	// fold moves to the shard's new slowest rank.
	f.publishClock(0, 50_000)
	if min, _ := f.paceMinCached(); min != 10_001 {
		t.Fatalf("after laggard publish: min %d, want 10001", min)
	}

	// Force a stale-low cache (as a racing rescan would leave behind) and
	// check rescanShard repairs it.
	atomic.StoreInt64(&f.paceShardMins[2], 5)
	if m := f.rescanShard(2); m != 10_128 {
		t.Fatalf("rescan of shard 2 = %d, want 10128", m)
	}

	// A rank inside the window proceeds without blocking.
	start := time.Now()
	f.pace(1, timing.Time(10_001+999))
	if time.Since(start) > time.Second {
		t.Fatal("in-window pace took the blocking path")
	}

	// A rank beyond the window blocks until the laggard catches up. Rank 2
	// is made the designated laggard (everyone else lifted well above it),
	// and a heartbeat keeps inching its clock forward: the minimum MOVES,
	// so neither eligibility nor the stall valve — which fires only on a
	// static minimum — may release the blocked rank early.
	for r := 0; r < n; r++ {
		if r != 2 {
			f.publishClock(r, 15_000)
		}
	}
	released := make(chan struct{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for c := int64(1); ; c++ {
			select {
			case <-stop:
				return
			default:
				// Slow real progress: the min crawls but stays far below
				// the blocked rank's release threshold.
				f.publishClock(2, timing.Time(10_002+c))
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	go func() {
		f.pace(5, 20_000) // way past min+window
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("pace returned while the window was exceeded")
	case <-time.After(20 * time.Millisecond):
	}
	// Stop the crawling laggard first (its republishes must not race the
	// catch-up below back down), then catch every rank up; every shard
	// minimum rises above the window and the blocked rank releases.
	close(stop)
	wg.Wait()
	for r := 0; r < n; r++ {
		f.publishClock(r, 30_000)
	}
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("pace never released after laggards caught up")
	}
}

// TestPacingStallDetector checks the deadlock valve: when no other rank
// publishes progress, a pace-blocked rank must eventually proceed rather
// than spin forever (e.g. every other rank is parked in a local wait).
func TestPacingStallDetector(t *testing.T) {
	f := NewFabric(8, 4)
	f.SetPacing(100)
	done := make(chan struct{})
	go func() {
		// Rank 3 is far ahead of the 7 never-publishing ranks (clock 0).
		f.pace(3, 1_000_000)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stall detector did not release the paced rank")
	}
}

// TestPacingAbortReleases checks a pace-blocked rank unwinds when the
// fabric aborts instead of waiting for laggards that will never publish.
func TestPacingAbortReleases(t *testing.T) {
	f := NewFabric(4, 4)
	f.SetPacing(100)
	// Publish a laggard far behind so rank 1 genuinely blocks, and keep the
	// minimum inching forward so the stall detector (which fires only on a
	// static minimum) never releases it.
	f.publishClock(2, 5_000)
	f.publishClock(3, 5_000)
	f.publishClock(0, 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for c := int64(1); ; c++ {
			select {
			case <-stop:
				return
			default:
				f.publishClock(0, timing.Time(1+c))
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	done := make(chan struct{})
	go func() {
		f.pace(1, 1_000_000)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("pace returned before abort despite laggard")
	case <-time.After(20 * time.Millisecond):
	}
	f.Abort()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("abort did not release the paced rank")
	}
	close(stop)
	wg.Wait()
}
