// Package faultnet is a deterministic, seedable fault-injection layer for
// the TCP transports (netrun, hybridrun). It wraps the dialer and listener
// so that every connection of a world can suffer injected delays, partial
// writes, refused dials, mid-stream resets, and silent write drops — the
// failure modes a 524k-core fabric exhibits as steady state — while staying
// fully reproducible: one seed fixes the whole schedule.
//
// Faults are configured through the FOMPI_FAULTS environment variable (or
// `fompi-run -faults`, which sets it so worker processes inherit it). The
// spec is a comma-separated key=value list:
//
//	seed=7                  PRNG seed (default 1)
//	delayp=0.2              probability of an injected delay per write
//	delaymax=3ms            upper bound of each injected delay
//	partialp=0.3            probability a write is split into two segments
//	dialfailn=2             first N dials per destination fail (retry test)
//	resetafter=400          each conn is reset after N reads+writes
//	dropafter=500           each conn blackholes writes after N reads+writes
//	reseteveryn=300         recurring: a conn is reset each time the process-
//	                        wide op counter crosses a multiple of N
//	dropeveryn=200          recurring: every N ops on a conn open a short
//	                        blackhole window dropping the next `dropfor` writes
//	dropfor=2               width of each dropeveryn blackhole window (writes)
//	plane=data              scope the conn-killing modes (resetafter,
//	                        reseteveryn, dropafter, dropeveryn) to data-plane
//	                        connections, sparing the control/bootstrap streams
//	log=/path/chaos.log     append a line per injected fault (shared, O_APPEND)
//
// Zero values disable the corresponding fault; an empty/unset spec makes
// every wrapper a pass-through with no overhead on the data path.
//
// The recurring modes (reseteveryn, dropeveryn) exist to exercise *recovery*:
// a single resetafter fires once per connection, but a transport that
// transparently reconnects (netrun's session resume) then runs fault-free
// forever after. Recurring resets and periodic blackholes keep re-breaking
// the fresh connections, so one run exercises the reconnect/replay path many
// times. They are usually combined with plane=data: the coordinator's
// control stream has no resume protocol, so killing it turns a transient
// test into a teardown test.
//
// Determinism: each connection draws from its own PRNG seeded by
// (seed, per-process connection counter), and dial-failure counting is per
// destination address — so a fixed seed and a fixed connection order yield
// the same schedule. Across processes the schedule is per-process
// deterministic; the conformance suite relies on the stronger property that
// *virtual time* is invariant under any transient schedule, not on
// reproducing one global schedule.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fompi/internal/telemetry"
)

// EnvVar is the environment variable carrying the fault spec.
const EnvVar = "FOMPI_FAULTS"

// Config is a parsed fault spec. The zero Config injects nothing.
type Config struct {
	Seed        int64         // seed= (default 1 when any fault is enabled)
	DelayProb   float64       // delayp= injected delay probability per write
	DelayMax    time.Duration // delaymax= upper bound per injected delay
	PartialProb float64       // partialp= probability a write is torn in two
	DialFailN   int           // dialfailn= first N dials per address fail
	ResetAfter  int           // resetafter= conn resets after N reads+writes
	DropAfter   int           // dropafter= conn blackholes writes after N ops
	ResetEveryN int           // reseteveryn= recurring reset per N global ops
	DropEveryN  int           // dropeveryn= per-conn periodic blackhole window
	DropFor     int           // dropfor= writes dropped per dropeveryn window
	Plane       string        // plane= "" (all conns) or "data"
	LogPath     string        // log= chaos log file (append mode)
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.DelayProb > 0 || c.PartialProb > 0 || c.DialFailN > 0 ||
		c.ResetAfter > 0 || c.DropAfter > 0 || c.ResetEveryN > 0 || c.DropEveryN > 0
}

// Parse parses a FOMPI_FAULTS spec. An empty spec is a valid, disabled
// Config. Unknown keys and malformed values are errors — a chaos run with a
// typo'd spec must fail loudly, not run fault-free and "pass".
func Parse(spec string) (Config, error) {
	var c Config
	c.Seed = 1
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return c, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return c, fmt.Errorf("faultnet: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "seed":
			c.Seed, err = strconv.ParseInt(v, 10, 64)
		case "delayp":
			c.DelayProb, err = parseProb(v)
		case "delaymax":
			c.DelayMax, err = time.ParseDuration(v)
		case "partialp":
			c.PartialProb, err = parseProb(v)
		case "dialfailn":
			c.DialFailN, err = parseCount(v)
		case "resetafter":
			c.ResetAfter, err = parseCount(v)
		case "dropafter":
			c.DropAfter, err = parseCount(v)
		case "reseteveryn":
			c.ResetEveryN, err = parseCount(v)
		case "dropeveryn":
			c.DropEveryN, err = parseCount(v)
		case "dropfor":
			c.DropFor, err = parseCount(v)
		case "plane":
			if v != "all" && v != "data" {
				return c, fmt.Errorf("faultnet: bad plane=%q (want all or data)", v)
			}
			if v == "data" {
				c.Plane = v
			}
		case "log":
			c.LogPath = v
		default:
			return c, fmt.Errorf("faultnet: unknown key %q (want seed, delayp, delaymax, partialp, dialfailn, resetafter, dropafter, reseteveryn, dropeveryn, dropfor, plane, log)", k)
		}
		if err != nil {
			return c, fmt.Errorf("faultnet: bad %s=%q: %v", k, v, err)
		}
	}
	if c.DelayProb > 0 && c.DelayMax <= 0 {
		c.DelayMax = time.Millisecond
	}
	if c.DropEveryN > 0 && c.DropFor <= 0 {
		c.DropFor = 2
	}
	if c.DropFor > 0 && c.DropEveryN == 0 {
		return c, errors.New("faultnet: dropfor needs dropeveryn")
	}
	return c, nil
}

func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, errors.New("probability outside [0,1]")
	}
	return p, nil
}

func parseCount(v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, errors.New("negative count")
	}
	return n, nil
}

// injector is the per-process fault state for one parsed spec.
type injector struct {
	cfg Config

	// globalOps counts reads+writes across every faulted connection of the
	// process; reseteveryn trips the conn whose op crosses a multiple of N.
	globalOps atomic.Uint64

	mu        sync.Mutex
	connSeq   uint64
	dialFails map[string]int // dials failed so far, per destination address
	logW      *os.File
}

// The active injector is cached per spec string so tests can flip the
// environment between runs (sync.Once would pin the first value forever).
var (
	curMu   sync.Mutex
	curSpec string
	curInj  *injector
	curSet  bool
	warned  bool
)

// Injected-fault metrics, one counter per mode. They feed the same event
// stream as the transports' recovery metrics (net.resumes, net.retransmits),
// so an aggregated snapshot pairs each cause with its observed cure.
var (
	mFaultReset   = telemetry.NewCounter("fault.reset")
	mFaultDrop    = telemetry.NewCounter("fault.drop")
	mFaultDelay   = telemetry.NewCounter("fault.delay")
	mFaultPartial = telemetry.NewCounter("fault.partial")
	mFaultDial    = telemetry.NewCounter("fault.dial")
)

func current() *injector {
	spec := os.Getenv(EnvVar)
	curMu.Lock()
	defer curMu.Unlock()
	if curSet && spec == curSpec {
		return curInj
	}
	cfg, err := Parse(spec)
	if err != nil {
		// A malformed spec set directly in the environment (fompi-run
		// validates its -faults flag before it gets here): warn once and
		// run fault-free rather than silently injecting who-knows-what.
		if !warned {
			fmt.Fprintf(os.Stderr, "faultnet: ignoring malformed %s: %v\n", EnvVar, err)
			warned = true
		}
		cfg = Config{}
	}
	var inj *injector
	if cfg.Enabled() {
		inj = &injector{cfg: cfg, dialFails: make(map[string]int)}
		if cfg.LogPath != "" {
			if f, ferr := os.OpenFile(cfg.LogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); ferr == nil {
				inj.logW = f
			}
		}
	}
	curSpec, curInj, curSet = spec, inj, true
	return inj
}

// Enabled reports whether this process has fault injection configured.
func Enabled() bool { return current() != nil }

// Check validates the spec currently in the environment; launch paths call
// it so a malformed spec fails the run instead of degrading to a warning.
func Check() error {
	_, err := Parse(os.Getenv(EnvVar))
	return err
}

func (inj *injector) logf(format string, args ...any) {
	if inj.logW == nil {
		return
	}
	// O_APPEND keeps concurrent small writes from different worker
	// processes whole; a torn chaos log is diagnostic-only anyway.
	fmt.Fprintf(inj.logW, "faultnet[pid %d]: "+format+"\n", append([]any{os.Getpid()}, args...)...)
}

// errInjected marks faults manufactured by this package; it satisfies
// net.Error so callers treating timeouts specially see a plain fatal error.
type errInjected struct{ msg string }

func (e *errInjected) Error() string { return "faultnet: injected " + e.msg }

// Logf appends one line to the active chaos log (the spec's log= file); it
// is a no-op when injection or logging is off. The transports use it to
// record recovery actions — reconnects, session resumes, replayed replies —
// interleaved with the injected faults that caused them, so one artifact
// tells the whole fault/recovery story.
func Logf(format string, args ...any) {
	if inj := current(); inj != nil {
		inj.logf(format, args...)
	}
}

// Dial dials like net.DialTimeout, injecting dial failures and wrapping the
// resulting connection when fault injection is enabled. Connections made
// through Dial are control-plane: plane=data spares them the conn-killing
// modes.
func Dial(network, addr string, timeout time.Duration) (net.Conn, error) {
	return dialPlane(network, addr, timeout, "")
}

// DialData is Dial for data-plane connections — the requester→owner op
// streams that netrun's session layer can transparently resume. Under
// plane=data, only these (and WrapListenerData accepts) suffer resets and
// blackholes.
func DialData(network, addr string, timeout time.Duration) (net.Conn, error) {
	return dialPlane(network, addr, timeout, "data")
}

func dialPlane(network, addr string, timeout time.Duration, plane string) (net.Conn, error) {
	inj := current()
	if inj == nil {
		return net.DialTimeout(network, addr, timeout)
	}
	inj.mu.Lock()
	nth := inj.dialFails[addr]
	fail := nth < inj.cfg.DialFailN
	if fail {
		inj.dialFails[addr] = nth + 1
	}
	inj.mu.Unlock()
	if fail {
		mFaultDial.Inc()
		telemetry.RecordEvent(telemetry.EvFaultDial, uint64(nth+1), 0)
		inj.logf("dial %s refused (%d/%d)", addr, nth+1, inj.cfg.DialFailN)
		return nil, &errInjected{msg: "dial failure to " + addr}
	}
	c, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	return inj.wrap(c, "dial->"+addr, plane), nil
}

// WrapListener wraps ln so accepted connections carry fault injection; it
// returns ln unchanged when injection is disabled. The wrapper forwards
// SetDeadline, so callers must assert that capability as an interface, not
// as *net.TCPListener. Accepted connections are control-plane.
func WrapListener(ln net.Listener) net.Listener {
	return wrapListenerPlane(ln, "")
}

// WrapListenerData is WrapListener for data-plane listeners (netrun's per-
// rank op listener): its accepts are eligible for plane=data conn killing.
func WrapListenerData(ln net.Listener) net.Listener {
	return wrapListenerPlane(ln, "data")
}

func wrapListenerPlane(ln net.Listener, plane string) net.Listener {
	if current() == nil {
		return ln
	}
	return &listener{Listener: ln, plane: plane}
}

type listener struct {
	net.Listener
	plane string
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	// Re-resolve per accept: the active spec can change between test runs
	// in one process, and a listener outlives any one spec.
	inj := current()
	if inj == nil {
		return c, nil
	}
	return inj.wrap(c, "accept<-"+c.RemoteAddr().String(), l.plane), nil
}

func (l *listener) SetDeadline(t time.Time) error {
	if d, ok := l.Listener.(interface{ SetDeadline(time.Time) error }); ok {
		return d.SetDeadline(t)
	}
	return nil
}

func (inj *injector) wrap(c net.Conn, label, plane string) net.Conn {
	inj.mu.Lock()
	id := inj.connSeq
	inj.connSeq++
	inj.mu.Unlock()
	return &conn{
		Conn:  c,
		inj:   inj,
		id:    id,
		label: label,
		plane: plane,
		rng:   rand.New(rand.NewPCG(uint64(inj.cfg.Seed), id)),
	}
}

// conn injects faults around one net.Conn. Decision state (PRNG, op
// counters) is guarded by mu; the underlying I/O runs outside the lock so a
// parked Read never blocks a concurrent Write's fault sampling.
type conn struct {
	net.Conn
	inj   *injector
	id    uint64
	label string
	plane string // "" (control) or "data"; plane=data kills only data conns

	mu      sync.Mutex
	rng     *rand.Rand
	ops     int  // reads+writes completed, for resetafter/dropafter
	dropWin int  // writes left in the current dropeveryn blackhole window
	reset   bool // injected reset tripped: all further I/O fails
	dropped bool // blackhole tripped: writes pretend to succeed
}

// step advances the op counter and samples this op's faults.
func (c *conn) step(isWrite bool) (delay time.Duration, split int, drop, reset bool) {
	cfg := &c.inj.cfg
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reset {
		return 0, 0, false, true
	}
	c.ops++
	// The conn-killing modes honor plane=data scoping; the byte-level
	// faults below (delays, partial writes) stay on for every connection.
	if cfg.Plane != "data" || c.plane == "data" {
		if cfg.ResetAfter > 0 && c.ops > cfg.ResetAfter {
			c.reset = true
			return 0, 0, false, true
		}
		if cfg.ResetEveryN > 0 &&
			c.inj.globalOps.Add(1)%uint64(cfg.ResetEveryN) == 0 {
			c.reset = true
			return 0, 0, false, true
		}
		if cfg.DropAfter > 0 && c.ops > cfg.DropAfter {
			c.dropped = true
		}
		if cfg.DropEveryN > 0 && c.ops%cfg.DropEveryN == 0 {
			c.dropWin = cfg.DropFor
		}
	}
	if c.dropped {
		return 0, 0, true, false
	}
	if isWrite && c.dropWin > 0 {
		c.dropWin--
		return 0, 0, true, false
	}
	if isWrite {
		if cfg.DelayProb > 0 && c.rng.Float64() < cfg.DelayProb {
			delay = time.Duration(c.rng.Int64N(int64(cfg.DelayMax))) + 1
		}
		if cfg.PartialProb > 0 && c.rng.Float64() < cfg.PartialProb {
			split = 1 // caller splits at len/2; flag only
		}
	}
	return delay, split, false, false
}

func (c *conn) tripReset() error {
	c.mu.Lock()
	ops := c.ops
	c.mu.Unlock()
	mFaultReset.Inc()
	telemetry.RecordEvent(telemetry.EvFaultReset, uint64(c.id), uint64(ops))
	c.inj.logf("conn %d (%s) reset at op %d", c.id, c.label, ops)
	c.Conn.Close()
	return &errInjected{msg: "connection reset"}
}

// SetNoDelay forwards Nagle control to the underlying TCP connection so the
// transports' latency tuning survives wrapping; callers assert it as an
// interface rather than as *net.TCPConn.
func (c *conn) SetNoDelay(v bool) error {
	if t, ok := c.Conn.(interface{ SetNoDelay(bool) error }); ok {
		return t.SetNoDelay(v)
	}
	return nil
}

func (c *conn) Read(p []byte) (int, error) {
	_, _, drop, reset := c.step(false)
	if reset {
		return 0, c.tripReset()
	}
	// A blackholed conn still reads normally: "drop" models lost outbound
	// bytes, so starvation arrives naturally when the peer never replies.
	_ = drop
	return c.Conn.Read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	delay, split, drop, reset := c.step(true)
	if reset {
		return 0, c.tripReset()
	}
	if drop {
		mFaultDrop.Inc()
		telemetry.RecordEvent(telemetry.EvFaultDrop, uint64(c.id), uint64(len(p)))
		c.inj.logf("conn %d (%s) dropped %d-byte write", c.id, c.label, len(p))
		return len(p), nil // swallowed: peer starves, deadlines must save us
	}
	if delay > 0 {
		mFaultDelay.Inc()
		telemetry.RecordEvent(telemetry.EvFaultDelay, uint64(c.id), uint64(delay))
		c.inj.logf("conn %d (%s) delayed write %v", c.id, c.label, delay)
		time.Sleep(delay)
	}
	if split != 0 && len(p) > 1 {
		mFaultPartial.Inc()
		telemetry.RecordEvent(telemetry.EvFaultPartial, uint64(c.id), uint64(len(p)))
		c.inj.logf("conn %d (%s) partial write %d+%d", c.id, c.label, len(p)/2, len(p)-len(p)/2)
		n, err := c.Conn.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		time.Sleep(50 * time.Microsecond)
		m, err := c.Conn.Write(p[len(p)/2:])
		return n + m, err
	}
	return c.Conn.Write(p)
}
