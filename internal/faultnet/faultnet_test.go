package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

func TestParse(t *testing.T) {
	c, err := Parse("seed=7, delayp=0.25, delaymax=3ms, partialp=0.5, dialfailn=2, resetafter=400, dropafter=500, log=/tmp/x.log")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := Config{Seed: 7, DelayProb: 0.25, DelayMax: 3 * time.Millisecond,
		PartialProb: 0.5, DialFailN: 2, ResetAfter: 400, DropAfter: 500, LogPath: "/tmp/x.log"}
	if c != want {
		t.Fatalf("Parse = %+v, want %+v", c, want)
	}
	if !c.Enabled() {
		t.Fatalf("full spec not Enabled")
	}
}

func TestParseDefaults(t *testing.T) {
	c, err := Parse("")
	if err != nil || c.Enabled() {
		t.Fatalf("empty spec: cfg %+v, err %v; want disabled, nil", c, err)
	}
	// delayp alone gets a usable delay bound and the default seed.
	c, err = Parse("delayp=0.5")
	if err != nil {
		t.Fatalf("Parse(delayp): %v", err)
	}
	if c.Seed != 1 || c.DelayMax <= 0 {
		t.Fatalf("delayp-only spec: seed %d, delaymax %v; want default seed 1 and a positive bound", c.Seed, c.DelayMax)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"frobnicate=1",    // unknown key
		"delayp",          // not key=value
		"delayp=1.5",      // probability out of range
		"dialfailn=-3",    // negative count
		"delaymax=banana", // not a duration
		"resetafter=many", // not a number
		"dropfor=2",       // dropfor without its dropeveryn period
		"plane=ctl",       // plane is all|data only
		"reseteveryn=-1",  // negative count
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", spec)
		}
	}
}

// TestParseRecurring pins the recurring-mode keys: reseteveryn/dropeveryn
// parse, dropfor defaults to a short window, and plane=data is recorded
// (plane=all being the no-op spelling of the default).
func TestParseRecurring(t *testing.T) {
	c, err := Parse("seed=9,reseteveryn=300,dropeveryn=50,dropfor=3,plane=data")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := Config{Seed: 9, ResetEveryN: 300, DropEveryN: 50, DropFor: 3, Plane: "data"}
	if c != want {
		t.Fatalf("Parse = %+v, want %+v", c, want)
	}
	if !c.Enabled() {
		t.Fatalf("recurring spec not Enabled")
	}
	c, err = Parse("dropeveryn=50")
	if err != nil || c.DropFor <= 0 {
		t.Fatalf("dropeveryn without dropfor: cfg %+v, err %v; want a positive default window", c, err)
	}
	c, err = Parse("plane=all,delayp=0.1")
	if err != nil || c.Plane != "" {
		t.Fatalf("plane=all: cfg %+v, err %v; want the empty (all-conns) default", c, err)
	}
}

// TestDisabledPassthrough pins the zero-cost contract: with no spec, Dial
// returns the raw connection and WrapListener returns its argument.
func TestDisabledPassthrough(t *testing.T) {
	t.Setenv(EnvVar, "")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	if got := WrapListener(ln); got != ln {
		t.Fatalf("WrapListener wrapped despite injection being disabled")
	}
	c, err := Dial("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, ok := c.(*conn); ok {
		t.Fatalf("Dial wrapped the connection despite injection being disabled")
	}
}

// TestDialFailN pins the retry-fodder contract: exactly the first N dials
// per destination fail, and the N+1st succeeds.
func TestDialFailN(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	t.Setenv(EnvVar, "dialfailn=2")
	addr := ln.Addr().String()
	for i := 0; i < 2; i++ {
		if _, err := Dial("tcp", addr, time.Second); err == nil {
			t.Fatalf("dial %d succeeded, want injected failure", i+1)
		}
	}
	c, err := Dial("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("dial 3 after dialfailn=2: %v", err)
	}
	c.Close()
}

// pipePair builds a wrapped client conn talking to a raw server conn over
// loopback TCP, with the current FOMPI_FAULTS spec applied to the client.
func pipePair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(done)
			return
		}
		done <- c
	}()
	client, err = Dial("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	server, ok := <-done
	if !ok {
		t.Fatalf("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

// TestResetAfter pins the mid-stream reset: the conn works for N ops, then
// every further operation fails with the injected reset.
func TestResetAfter(t *testing.T) {
	t.Setenv(EnvVar, "resetafter=3")
	client, server := pipePair(t)
	go io.Copy(io.Discard, server)
	for i := 0; i < 3; i++ {
		if _, err := client.Write([]byte("x")); err != nil {
			t.Fatalf("write %d before the reset budget: %v", i+1, err)
		}
	}
	if _, err := client.Write([]byte("x")); err == nil || !strings.Contains(err.Error(), "reset") {
		t.Fatalf("write past resetafter: err %v, want injected reset", err)
	}
	if _, err := client.Write([]byte("x")); err == nil {
		t.Fatalf("a reset conn came back to life")
	}
}

// TestDropAfter pins the blackhole: writes past the budget report success
// but deliver nothing, while reads keep working.
func TestDropAfter(t *testing.T) {
	t.Setenv(EnvVar, "dropafter=1")
	client, server := pipePair(t)
	if n, err := client.Write([]byte("live")); err != nil || n != 4 {
		t.Fatalf("write inside the budget: n %d, err %v", n, err)
	}
	if n, err := client.Write([]byte("dead")); err != nil || n != 4 {
		t.Fatalf("blackholed write must pretend success: n %d, err %v", n, err)
	}
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	n, _ := server.Read(buf)
	if !bytes.Equal(buf[:n], []byte("live")) {
		t.Fatalf("server read %q, want only the pre-drop bytes %q", buf[:n], "live")
	}
	if n, err := server.Read(buf); err == nil {
		t.Fatalf("blackholed bytes arrived anyway: %q", buf[:n])
	}
}

// TestPartialAndDelayPreserveBytes pins that torn and delayed writes are
// faults of timing, not of content: the byte stream arrives intact.
func TestPartialAndDelayPreserveBytes(t *testing.T) {
	t.Setenv(EnvVar, "seed=3,partialp=1,delayp=1,delaymax=1ms")
	client, server := pipePair(t)
	msg := []byte("0123456789abcdef0123456789abcdef")
	go func() {
		for i := 0; i < 8; i++ {
			if _, err := client.Write(msg); err != nil {
				return
			}
		}
	}()
	server.SetReadDeadline(time.Now().Add(10 * time.Second))
	got := make([]byte, 8*len(msg))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	for i := 0; i < 8; i++ {
		if !bytes.Equal(got[i*len(msg):(i+1)*len(msg)], msg) {
			t.Fatalf("chunk %d corrupted by partial/delayed writes", i)
		}
	}
}

// TestDeterministicSchedule pins seed determinism: two conns created in the
// same per-process order under the same seed draw identical fault schedules.
func TestDeterministicSchedule(t *testing.T) {
	sample := func(seed string) []time.Duration {
		t.Setenv(EnvVar, "seed="+seed+",delayp=0.5,delaymax=4ms")
		inj := current()
		if inj == nil {
			t.Fatalf("injector disabled under an enabled spec")
		}
		// Reset the per-process connection counter by taking a fresh
		// injector (new spec string → new injector), then sample one conn's
		// write-fault schedule directly.
		c := inj.wrap(nopConn{}, "test", "").(*conn)
		var ds []time.Duration
		for i := 0; i < 64; i++ {
			d, _, _, _ := c.step(true)
			ds = append(ds, d)
		}
		return ds
	}
	a := sample("42")
	// Force a fresh injector (and a fresh conn counter) for the second
	// sample: the cache re-resolves only when the spec string changes.
	t.Setenv(EnvVar, "")
	Enabled()
	b := sample("42")
	if len(a) != len(b) {
		t.Fatalf("sample lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d under one seed: %v vs %v", i, a[i], b[i])
		}
	}
}

// freshInjector re-resolves the injector under spec with a clean conn
// counter and global op counter, by cycling the cache through a disabled
// spec first.
func freshInjector(t *testing.T, spec string) *injector {
	t.Helper()
	t.Setenv(EnvVar, "")
	Enabled()
	t.Setenv(EnvVar, spec)
	inj := current()
	if inj == nil {
		t.Fatalf("injector disabled under spec %q", spec)
	}
	return inj
}

// TestResetEveryNRecurs pins the recurring reset: the process-wide op
// counter, not any one conn's, trips a reset every N ops — so fresh
// connections keep getting broken, each on schedule.
func TestResetEveryNRecurs(t *testing.T) {
	inj := freshInjector(t, "reseteveryn=4")
	// First conn: ops 1..3 clean, op 4 crosses the multiple and resets.
	c := inj.wrap(nopConn{}, "a", "").(*conn)
	for i := 0; i < 3; i++ {
		if _, _, _, reset := c.step(true); reset {
			t.Fatalf("conn a reset at global op %d, want at 4", i+1)
		}
	}
	if _, _, _, reset := c.step(true); !reset {
		t.Fatalf("conn a not reset at global op 4")
	}
	// A replacement conn inherits the global counter (now 4): its ops run
	// 5..7 clean, then op 8 trips the next multiple. Recurrence, not
	// once-per-conn.
	c2 := inj.wrap(nopConn{}, "b", "").(*conn)
	for i := 0; i < 3; i++ {
		if _, _, _, reset := c2.step(true); reset {
			t.Fatalf("conn b reset at global op %d, want at 8", 5+i)
		}
	}
	if _, _, _, reset := c2.step(true); !reset {
		t.Fatalf("conn b not reset at global op 8")
	}
}

// TestDropEveryNWindow pins the periodic blackhole: every N ops on a conn
// open a window dropping the next dropfor writes, then the conn heals.
func TestDropEveryNWindow(t *testing.T) {
	inj := freshInjector(t, "dropeveryn=4,dropfor=2")
	c := inj.wrap(nopConn{}, "w", "").(*conn)
	var got []bool
	for i := 0; i < 12; i++ {
		_, _, drop, reset := c.step(true)
		if reset {
			t.Fatalf("dropeveryn tripped a reset at op %d", i+1)
		}
		got = append(got, drop)
	}
	// Ops 4,5 and 8,9 and 12 fall in windows (the op crossing the multiple
	// opens the window and is itself dropped).
	want := []bool{false, false, false, true, true, false, false, true, true, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d: drop=%v, want %v (schedule %v)", i+1, got[i], want[i], got)
		}
	}
}

// TestPlaneScoping pins plane=data: conn-killing modes spare control-plane
// connections entirely while data-plane conns still die on schedule.
func TestPlaneScoping(t *testing.T) {
	inj := freshInjector(t, "plane=data,resetafter=2")
	ctl := inj.wrap(nopConn{}, "ctl", "").(*conn)
	for i := 0; i < 10; i++ {
		if _, _, _, reset := ctl.step(true); reset {
			t.Fatalf("control conn reset under plane=data at op %d", i+1)
		}
	}
	data := inj.wrap(nopConn{}, "data", "data").(*conn)
	for i := 0; i < 2; i++ {
		if _, _, _, reset := data.step(true); reset {
			t.Fatalf("data conn reset inside its budget at op %d", i+1)
		}
	}
	if _, _, _, reset := data.step(true); !reset {
		t.Fatalf("data conn survived past resetafter under plane=data")
	}
}

// TestDialDataPlane pins the public wiring: DialData produces a data-plane
// conn, Dial a control one, under the same live spec.
func TestDialDataPlane(t *testing.T) {
	freshInjector(t, "plane=data,resetafter=1")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()
	ctl, err := Dial("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer ctl.Close()
	for i := 0; i < 4; i++ {
		if _, err := ctl.Write([]byte("x")); err != nil {
			t.Fatalf("control write %d died under plane=data: %v", i+1, err)
		}
	}
	data, err := DialData("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("DialData: %v", err)
	}
	defer data.Close()
	if _, err := data.Write([]byte("x")); err != nil {
		t.Fatalf("data write inside the budget: %v", err)
	}
	if _, err := data.Write([]byte("x")); err == nil || !strings.Contains(err.Error(), "reset") {
		t.Fatalf("data write past resetafter: err %v, want injected reset", err)
	}
}

// nopConn is a do-nothing net.Conn for schedule sampling.
type nopConn struct{}

func (nopConn) Read(p []byte) (int, error)       { return 0, errors.New("nop") }
func (nopConn) Write(p []byte) (int, error)      { return len(p), nil }
func (nopConn) Close() error                     { return nil }
func (nopConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (nopConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (nopConn) SetDeadline(time.Time) error      { return nil }
func (nopConn) SetReadDeadline(time.Time) error  { return nil }
func (nopConn) SetWriteDeadline(time.Time) error { return nil }
