package hostatomic

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestLoadStoreAddCasSwap(t *testing.T) {
	b := make([]byte, 64)
	Store(b, 8, 42)
	if Load(b, 8) != 42 {
		t.Fatal("store/load")
	}
	if old := Add(b, 8, 8); old != 42 || Load(b, 8) != 50 {
		t.Fatalf("add: old=%d now=%d", old, Load(b, 8))
	}
	if old := Cas(b, 8, 50, 99); old != 50 || Load(b, 8) != 99 {
		t.Fatal("cas success path")
	}
	if old := Cas(b, 8, 50, 7); old != 99 || Load(b, 8) != 99 {
		t.Fatal("cas failure must not write")
	}
	if old := Swap(b, 8, 1); old != 99 || Load(b, 8) != 1 {
		t.Fatal("swap")
	}
}

func TestBitwiseOps(t *testing.T) {
	f := func(init, v uint64) bool {
		b := make([]byte, 8)
		Store(b, 0, init)
		if And(b, 0, v) != init || Load(b, 0) != init&v {
			return false
		}
		Store(b, 0, init)
		if Or(b, 0, v) != init || Load(b, 0) != init|v {
			return false
		}
		Store(b, 0, init)
		if Xor(b, 0, v) != init || Load(b, 0) != init^v {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAddLinearizes(t *testing.T) {
	b := make([]byte, 8)
	const gs, per = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				Add(b, 0, 1)
			}
		}()
	}
	wg.Wait()
	if Load(b, 0) != gs*per {
		t.Fatalf("lost updates: %d != %d", Load(b, 0), gs*per)
	}
}

func TestConcurrentCasOneWinnerPerValue(t *testing.T) {
	b := make([]byte, 8)
	const gs = 32
	wins := make(chan int, gs)
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if Cas(b, 0, 0, uint64(g)+1) == 0 {
				wins <- g
			}
		}(g)
	}
	wg.Wait()
	close(wins)
	count := 0
	for range wins {
		count++
	}
	if count != 1 {
		t.Fatalf("%d CAS winners, want exactly 1", count)
	}
}

func TestMaxI64(t *testing.T) {
	var m int64
	MaxI64(&m, 5)
	MaxI64(&m, 3)
	MaxI64(&m, 9)
	if m != 9 {
		t.Fatalf("m = %d", m)
	}
}

func TestUnalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unaligned offset")
		}
	}()
	b := make([]byte, 16)
	Load(b, 3)
}
