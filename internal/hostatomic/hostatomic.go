// Package hostatomic implements host-CPU atomic operations on 8-byte-aligned
// words inside byte slices. It is the software stand-in for the CPU atomics
// (x86 lock prefix) that foMPI uses over XPMEM mappings and for the NIC-side
// atomic units that DMAPP exposes; the simulated fabric funnels every AMO
// through this package so all ranks observe a single linearization per word.
//
// Alignment: Go guarantees that the backing array of a slice allocated with
// make is 64-bit aligned, so any offset that is a multiple of 8 within such
// a slice is safely addressable with 8-byte atomics.
package hostatomic

import (
	"sync/atomic"
	"unsafe"
)

func word(b []byte, off int) *uint64 {
	if off&7 != 0 {
		panic("hostatomic: misaligned 8-byte atomic access")
	}
	// Bounds-check by length only: a plain read of b[off+7] would race with
	// concurrent atomic stores to the same word under the race detector.
	if off < 0 || off+8 > len(b) {
		panic("hostatomic: 8-byte access outside slice")
	}
	return (*uint64)(unsafe.Pointer(&b[off]))
}

// Load atomically reads the 8-byte word at off.
func Load(b []byte, off int) uint64 { return atomic.LoadUint64(word(b, off)) }

// Store atomically writes the 8-byte word at off.
func Store(b []byte, off int, v uint64) { atomic.StoreUint64(word(b, off), v) }

// Add atomically adds delta to the word at off and returns the old value.
func Add(b []byte, off int, delta uint64) (old uint64) {
	return atomic.AddUint64(word(b, off), delta) - delta
}

// Cas performs a compare-and-swap on the word at off and returns the value
// held before the operation (equal to compare iff the swap happened).
func Cas(b []byte, off int, compare, swap uint64) (old uint64) {
	w := word(b, off)
	for {
		cur := atomic.LoadUint64(w)
		if cur != compare {
			return cur
		}
		if atomic.CompareAndSwapUint64(w, compare, swap) {
			return compare
		}
	}
}

// Swap atomically replaces the word at off and returns the old value.
func Swap(b []byte, off int, v uint64) (old uint64) {
	return atomic.SwapUint64(word(b, off), v)
}

// rmw applies f atomically via a CAS loop and returns the old value.
func rmw(b []byte, off int, f func(uint64) uint64) (old uint64) {
	w := word(b, off)
	for {
		cur := atomic.LoadUint64(w)
		if atomic.CompareAndSwapUint64(w, cur, f(cur)) {
			return cur
		}
	}
}

// And atomically ANDs v into the word at off, returning the old value.
func And(b []byte, off int, v uint64) uint64 {
	return rmw(b, off, func(c uint64) uint64 { return c & v })
}

// Or atomically ORs v into the word at off, returning the old value.
func Or(b []byte, off int, v uint64) uint64 {
	return rmw(b, off, func(c uint64) uint64 { return c | v })
}

// Xor atomically XORs v into the word at off, returning the old value.
func Xor(b []byte, off int, v uint64) uint64 {
	return rmw(b, off, func(c uint64) uint64 { return c ^ v })
}

// MaxU32 atomically raises the uint32 at p to at least v.
func MaxU32(p *uint32, v uint32) {
	for {
		cur := atomic.LoadUint32(p)
		if v <= cur || atomic.CompareAndSwapUint32(p, cur, v) {
			return
		}
	}
}

// MaxI64 atomically raises the int64 at p to at least v.
func MaxI64(p *int64, v int64) {
	for {
		cur := atomic.LoadInt64(p)
		if v <= cur || atomic.CompareAndSwapInt64(p, cur, v) {
			return
		}
	}
}
