package stencil

import (
	"testing"

	"fompi/internal/spmd"
)

func run(t *testing.T, n, rpn int, body func(p *spmd.Proc)) {
	t.Helper()
	if err := spmd.Run(spmd.Config{Ranks: n, RanksPerNode: rpn}, body); err != nil {
		t.Fatal(err)
	}
}

func TestVariantsMatchReference(t *testing.T) {
	prm := Params{NX: 32, NY: 16, Iters: 8, Seed: 3}
	for _, n := range []int{1, 2, 4, 8} {
		run(t, n, 4, func(p *spmd.Proc) {
			fence := RunFence(p, prm)
			notif := RunNotify(p, prm)
			ref := RunReference(p, prm)
			if fence.Checksum != notif.Checksum {
				t.Errorf("p=%d: fence checksum %v != notified %v", n, fence.Checksum, notif.Checksum)
			}
			Verify(fence, notif, ref)
		})
	}
}

func TestNotifiedBeatsFence(t *testing.T) {
	prm := Params{NX: 32, NY: 16, Iters: 8, Seed: 3}
	run(t, 8, 4, func(p *spmd.Proc) {
		fence := RunFence(p, prm)
		wf := p.Allreduce8(spmd.OpMax, uint64(fence.Elapsed))
		notif := RunNotify(p, prm)
		wn := p.Allreduce8(spmd.OpMax, uint64(notif.Elapsed))
		if p.Rank() == 0 && wn >= wf {
			t.Errorf("notified halo exchange (%d ns) should beat double fence (%d ns)", wn, wf)
		}
	})
}

func TestSingleRankNeedsNoExchange(t *testing.T) {
	prm := Params{NX: 16, NY: 8, Iters: 4}
	run(t, 1, 1, func(p *spmd.Proc) {
		fence := RunFence(p, prm)
		notif := RunNotify(p, prm)
		Verify(fence, notif, RunReference(p, prm))
	})
}
