// Package stencil is the workload the notified-access extension exists for:
// a 2-D Jacobi heat stencil with a 1-D row decomposition whose halo exchange
// is implemented two ways over identical arithmetic —
//
//   - Fence: the MPI-3 active-target baseline. Every iteration closes two
//     full MPI_Win_fence epochs (one to complete the halo puts, one to keep
//     neighbors from overwriting a halo that is still being read), paying
//     2×O(log p) collective synchronization per sweep.
//   - Notified: the foMPI-NA pipeline. Halos travel as PutNotify into
//     double-buffered landing rows inside one lock_all epoch; the receiver
//     consumes each halo with a tag-matched WaitNotify (a single-word local
//     poll) and returns a credit Notify that frees the landing buffer two
//     iterations later. No collective synchronization appears anywhere on
//     the iteration's critical path.
//
// Both variants run the same sweeps over the same data, so their checksums
// agree bit-for-bit; the virtual-time difference is pure synchronization.
package stencil

import (
	"encoding/binary"
	"fmt"
	"math"

	"fompi/internal/core"
	"fompi/internal/spmd"
	"fompi/internal/timing"
)

// Params configures one stencil solve.
type Params struct {
	// NX is the row width in cells (the exchanged halo is one row of NX
	// float64s). Default 64.
	NX int
	// NY is the per-rank interior row count (weak scaling). Default 64.
	NY int
	// Iters is the number of Jacobi sweeps. Default 16.
	Iters int
	// NsPerCell calibrates the virtual compute cost of updating one cell.
	// Default 2 ns (a handful of flops at node rate).
	NsPerCell float64
	// Seed varies the deterministic initial condition. Default 1.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.NX <= 0 {
		p.NX = 64
	}
	if p.NY <= 0 {
		p.NY = 64
	}
	if p.Iters <= 0 {
		p.Iters = 16
	}
	if p.NsPerCell <= 0 {
		p.NsPerCell = 2
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Result is one rank's outcome.
type Result struct {
	Elapsed  timing.Time // virtual time of the full solve
	Checksum float64     // global interior sum after the last sweep
	Cells    int         // local interior cells
}

// initCell is the deterministic initial value at global coordinates (x, gy).
func initCell(seed int64, x, gy int) float64 {
	h := uint64(seed)*0x9e3779b97f4a7c15 + uint64(x)*0xbf58476d1ce4e5b9 + uint64(gy)*0x94d049bb133111eb
	h ^= h >> 31
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(int64(h>>11)) / float64(1<<52)
}

// grid is one rank's field storage: NY interior rows plus one ghost row on
// each side, each row NX cells. Two copies for the Jacobi ping-pong.
type grid struct {
	Params
	rank, ranks int
	cur, next   []float64 // (NY+2)×NX
}

func newGrid(prm Params, rank, ranks int) *grid {
	g := &grid{Params: prm, rank: rank, ranks: ranks,
		cur:  make([]float64, (prm.NY+2)*prm.NX),
		next: make([]float64, (prm.NY+2)*prm.NX)}
	for y := 0; y < prm.NY+2; y++ {
		gy := rank*prm.NY + y - 1 // ghost rows take the neighbor's coordinates
		for x := 0; x < prm.NX; x++ {
			g.cur[y*prm.NX+x] = initCell(prm.Seed, x, gy)
		}
	}
	copy(g.next, g.cur)
	return g
}

func (g *grid) row(buf []float64, y int) []float64 { return buf[y*g.NX : (y+1)*g.NX] }

// sweep runs one Jacobi update of the interior (ghost rows and the first and
// last columns are Dirichlet boundaries) and charges the virtual compute
// cost. Global edge rows of the domain stay fixed too.
func (g *grid) sweep(p *spmd.Proc) {
	for y := 1; y <= g.NY; y++ {
		gy := g.rank*g.NY + y - 1
		if gy == 0 || gy == g.ranks*g.NY-1 {
			copy(g.row(g.next, y), g.row(g.cur, y))
			continue
		}
		for x := 1; x < g.NX-1; x++ {
			i := y*g.NX + x
			g.next[i] = 0.25 * (g.cur[i-g.NX] + g.cur[i+g.NX] + g.cur[i-1] + g.cur[i+1])
		}
	}
	g.cur, g.next = g.next, g.cur
	p.Compute(int64(g.NsPerCell * float64(g.NY*g.NX)))
}

// checksum folds the interior into one float64, reduced across ranks so all
// variants can be compared bit-for-bit.
func (g *grid) checksum(p *spmd.Proc) float64 {
	var s float64
	for y := 1; y <= g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			s += g.cur[y*g.NX+x]
		}
	}
	return math.Float64frombits(p.Allreduce8(spmd.OpFSum, math.Float64bits(s)))
}

// rowBytes converts a float64 row to its wire form inside the window.
func putRow(dst []byte, src []float64) {
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(v))
	}
}

func getRow(dst []float64, src []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
	}
}

// Window layout: four landing rows of NX cells each —
// slot (parity*2 + side), side 0 = halo arriving from above, 1 = from below.
// The fence variant uses parity 0 only.
func slotOff(nx, parity, side int) int { return (parity*2 + side) * nx * 8 }

// Notification tags: halo arrivals and buffer credits, keyed by the side the
// *receiver* sees and the iteration parity.
func tagHalo(side, parity int) uint32   { return uint32(side*2 + parity) }
func tagCredit(side, parity int) uint32 { return uint32(4 + side*2 + parity) }

// RunFence executes the solve with the double-fence halo exchange.
func RunFence(p *spmd.Proc, prm Params) Result {
	prm = prm.withDefaults()
	g := newGrid(prm, p.Rank(), p.Size())
	w, mem := core.Allocate(p, 4*prm.NX*8, core.Config{})
	defer w.Free()
	up, down := p.Rank()-1, p.Rank()+1
	rowBuf := make([]byte, prm.NX*8)
	p.Barrier()
	t0 := p.Now()
	w.Fence()
	for it := 0; it < prm.Iters; it++ {
		if up >= 0 { // my top interior row becomes up's from-below halo
			putRow(rowBuf, g.row(g.cur, 1))
			w.Put(rowBuf, up, slotOff(prm.NX, 0, 1))
		}
		if down < p.Size() {
			putRow(rowBuf, g.row(g.cur, g.NY))
			w.Put(rowBuf, down, slotOff(prm.NX, 0, 0))
		}
		w.Fence() // halos complete everywhere
		if up >= 0 {
			getRow(g.row(g.cur, 0), mem[slotOff(prm.NX, 0, 0):])
		}
		if down < p.Size() {
			getRow(g.row(g.cur, g.NY+1), mem[slotOff(prm.NX, 0, 1):])
		}
		g.sweep(p)
		w.Fence() // keep neighbors from clobbering rows still being read
	}
	el := p.Now() - t0
	return Result{Elapsed: el, Checksum: g.checksum(p), Cells: prm.NX * prm.NY}
}

// RunNotify executes the solve with the notified-access pipeline: PutNotify
// halos into parity-alternating landing rows, tag-matched WaitNotify on the
// receive side, and credit Notify messages for flow control. One lock_all
// epoch spans the whole solve.
func RunNotify(p *spmd.Proc, prm Params) Result {
	prm = prm.withDefaults()
	g := newGrid(prm, p.Rank(), p.Size())
	w, mem := core.Allocate(p, 4*prm.NX*8, core.Config{})
	defer w.Free()
	up, down := p.Rank()-1, p.Rank()+1
	rowBuf := make([]byte, prm.NX*8)
	p.Barrier()
	t0 := p.Now()
	w.LockAll()
	for it := 0; it < prm.Iters; it++ {
		q := it & 1
		// A landing row of parity q is free again once its owner credited
		// the consumption of iteration it-2 (same parity).
		if up >= 0 {
			if it >= 2 {
				w.WaitNotify(tagCredit(1, q)) // up consumed its side-1 row
			}
			putRow(rowBuf, g.row(g.cur, 1))
			w.PutNotify(rowBuf, up, slotOff(prm.NX, q, 1), tagHalo(1, q))
		}
		if down < p.Size() {
			if it >= 2 {
				w.WaitNotify(tagCredit(0, q))
			}
			putRow(rowBuf, g.row(g.cur, g.NY))
			w.PutNotify(rowBuf, down, slotOff(prm.NX, q, 0), tagHalo(0, q))
		}
		if up >= 0 {
			w.WaitNotify(tagHalo(0, q))
			getRow(g.row(g.cur, 0), mem[slotOff(prm.NX, q, 0):])
			w.Notify(up, tagCredit(0, q))
		}
		if down < p.Size() {
			w.WaitNotify(tagHalo(1, q))
			getRow(g.row(g.cur, g.NY+1), mem[slotOff(prm.NX, q, 1):])
			w.Notify(down, tagCredit(1, q))
		}
		g.sweep(p)
	}
	w.UnlockAll()
	el := p.Now() - t0
	return Result{Elapsed: el, Checksum: g.checksum(p), Cells: prm.NX * prm.NY}
}

// RunReference computes the checksum with a rank-0 sequential solve over the
// global domain: the ground truth the transports must match.
func RunReference(p *spmd.Proc, prm Params) float64 {
	prm = prm.withDefaults()
	var sum float64
	if p.Rank() == 0 {
		nyg := p.Size() * prm.NY
		cur := make([]float64, nyg*prm.NX)
		next := make([]float64, nyg*prm.NX)
		for y := 0; y < nyg; y++ {
			for x := 0; x < prm.NX; x++ {
				cur[y*prm.NX+x] = initCell(prm.Seed, x, y)
			}
		}
		copy(next, cur)
		for it := 0; it < prm.Iters; it++ {
			for y := 1; y < nyg-1; y++ {
				for x := 1; x < prm.NX-1; x++ {
					i := y*prm.NX + x
					next[i] = 0.25 * (cur[i-prm.NX] + cur[i+prm.NX] + cur[i-1] + cur[i+1])
				}
			}
			cur, next = next, cur
		}
		for y := 0; y < nyg; y++ {
			for x := 0; x < prm.NX; x++ {
				sum += cur[y*prm.NX+x]
			}
		}
	}
	return math.Float64frombits(p.Bcast8(0, math.Float64bits(sum)))
}

// Verify panics unless the two variants' checksums match the reference; it
// exists so examples and benches fail loudly on protocol bugs.
func Verify(fence, notify Result, ref float64) {
	if fence.Checksum != notify.Checksum {
		panic(fmt.Sprintf("stencil: fence checksum %v != notified %v", fence.Checksum, notify.Checksum))
	}
	if math.Abs(fence.Checksum-ref) > 1e-9*math.Max(1, math.Abs(ref)) {
		panic(fmt.Sprintf("stencil: checksum %v diverges from reference %v", fence.Checksum, ref))
	}
}
