package fft

import (
	"math"
	"math/cmplx"
	"sync"
	"testing"
	"testing/quick"

	"fompi/internal/mpi1"
	"fompi/internal/spmd"
	"fompi/internal/timing"
)

// naiveDFT computes the length-n DFT directly, the oracle for fft1.
func naiveDFT(v []complex128) []complex128 {
	n := len(v)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += v[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func almostEqual(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func TestFFT1AgainstNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		v := make([]complex128, n)
		for i := range v {
			v[i] = Input(i, n, 3*i+1)
		}
		want := naiveDFT(v)
		got := append([]complex128(nil), v...)
		fft1(got)
		for i := range want {
			if !almostEqual(got[i], want[i], 1e-9*float64(n)) {
				t.Fatalf("n=%d: bin %d = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFT1Linearity(t *testing.T) {
	// FFT(a·x + y) == a·FFT(x) + FFT(y): a property-based check on the
	// transform core.
	f := func(seed uint8, scale int8) bool {
		n := 16
		x := make([]complex128, n)
		y := make([]complex128, n)
		for i := range x {
			x[i] = Input(i, int(seed), 1)
			y[i] = Input(i, int(seed), 2)
		}
		a := complex(float64(scale), 0)
		mix := make([]complex128, n)
		for i := range mix {
			mix[i] = a*x[i] + y[i]
		}
		fft1(mix)
		fft1(x)
		fft1(y)
		for i := range mix {
			if !almostEqual(mix[i], a*x[i]+y[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFFT1ParsevalProperty(t *testing.T) {
	// sum |x|² == (1/n) sum |X|² for any input (Parseval's theorem).
	f := func(s1, s2 uint8) bool {
		n := 32
		v := make([]complex128, n)
		var tIn float64
		for i := range v {
			v[i] = Input(i, int(s1), int(s2))
			tIn += real(v[i])*real(v[i]) + imag(v[i])*imag(v[i])
		}
		fft1(v)
		var tOut float64
		for i := range v {
			tOut += real(v[i])*real(v[i]) + imag(v[i])*imag(v[i])
		}
		return math.Abs(tIn-tOut/float64(n)) < 1e-6*tIn+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// checkVariant verifies one parallel variant's local cubes against the
// sequential reference transform.
func checkVariant(t *testing.T, prm Params, ranks int, cubes [][]complex128) {
	t.Helper()
	for r := 0; r < ranks; r++ {
		want := ReferenceSlab(prm, r, ranks)
		got := cubes[r]
		if len(got) != len(want) {
			t.Fatalf("rank %d: got %d elements, want %d", r, len(got), len(want))
		}
		scale := math.Sqrt(float64(prm.NX * prm.NY * prm.NZ))
		for i := range want {
			if !almostEqual(got[i], want[i], 1e-8*scale) {
				t.Fatalf("rank %d: element %d = %v, want %v", r, i, got[i], want[i])
			}
		}
	}
}

// runVariants executes all three variants at the given rank count and
// returns their per-rank phase-2 cubes. The cube is recovered by re-running
// unpack on the final receive state, so each variant re-derives it the same
// way it computed its checksum.
func runAll(t *testing.T, prm Params, ranks int) (m1, upc, fo []Result) {
	t.Helper()
	m1 = make([]Result, ranks)
	upc = make([]Result, ranks)
	fo = make([]Result, ranks)
	spmd.MustRun(spmd.Config{Ranks: ranks, RanksPerNode: 2}, func(p *spmd.Proc) {
		c := mpi1.Dial(p)
		m1[p.Rank()] = RunMPI1(c, prm)
		upc[p.Rank()] = RunUPC(p, prm)
		fo[p.Rank()] = RunFoMPI(p, prm)
	})
	return m1, upc, fo
}

func TestVariantsAgreeAndMatchReference(t *testing.T) {
	prm := Params{NX: 8, NY: 8, NZ: 8, Iters: 1}
	const ranks = 4
	var mu sync.Mutex
	cubes := map[string][][]complex128{
		"mpi1": make([][]complex128, ranks),
		"upc":  make([][]complex128, ranks),
		"fo":   make([][]complex128, ranks),
	}
	// Run each variant capturing the actual cube via a checksum re-check:
	// the public API exposes checksums; for the element-level check we
	// recompute the reference decomposition per rank below.
	m1, upc, fo := runAll(t, prm, ranks)
	mu.Lock()
	defer mu.Unlock()
	_ = cubes
	for r := 0; r < ranks; r++ {
		if m1[r].Checksum != upc[r].Checksum || upc[r].Checksum != fo[r].Checksum {
			t.Fatalf("rank %d checksums disagree: mpi1=%v upc=%v fompi=%v",
				r, m1[r].Checksum, upc[r].Checksum, fo[r].Checksum)
		}
	}
	// Reference checksum: fold the reference slab the same way.
	for r := 0; r < ranks; r++ {
		slab := ReferenceSlab(prm, r, ranks)
		var want complex128
		for i := 0; i < len(slab); i += 17 {
			want += slab[i]
		}
		if !almostEqual(m1[r].Checksum, want, 1e-7*math.Sqrt(float64(prm.NX*prm.NY*prm.NZ))) {
			t.Fatalf("rank %d checksum %v, want reference %v", r, m1[r].Checksum, want)
		}
	}
}

func TestReferenceMatchesNaive3D(t *testing.T) {
	prm := Params{NX: 4, NY: 4, NZ: 4}
	got := Reference(prm)
	// Naive 3-D DFT.
	nx, ny, nz := 4, 4, 4
	for kx := 0; kx < nx; kx++ {
		for ky := 0; ky < ny; ky++ {
			for kz := 0; kz < nz; kz++ {
				var s complex128
				for x := 0; x < nx; x++ {
					for y := 0; y < ny; y++ {
						for z := 0; z < nz; z++ {
							ang := -2 * math.Pi * (float64(kx*x)/float64(nx) +
								float64(ky*y)/float64(ny) + float64(kz*z)/float64(nz))
							s += Input(x, y, z) * cmplx.Exp(complex(0, ang))
						}
					}
				}
				if !almostEqual(got[(kx*ny+ky)*nz+kz], s, 1e-8) {
					t.Fatalf("bin (%d,%d,%d) = %v, want %v", kx, ky, kz, got[(kx*ny+ky)*nz+kz], s)
				}
			}
		}
	}
}

func TestMultiIterationRuns(t *testing.T) {
	prm := Params{NX: 8, NY: 4, NZ: 8, Iters: 3}
	const ranks = 2
	res := make([]Result, ranks)
	spmd.MustRun(spmd.Config{Ranks: ranks}, func(p *spmd.Proc) {
		res[p.Rank()] = RunFoMPI(p, prm)
	})
	for r, x := range res {
		if x.Elapsed <= 0 || x.GFlops <= 0 {
			t.Fatalf("rank %d: nonpositive elapsed/gflops: %+v", r, x)
		}
	}
}

func TestOverlapBeatsBulkInVirtualTime(t *testing.T) {
	// The slab variants communicate during compute, so when communication
	// is a substantial share of the runtime (fast cores, large transposed
	// volume — the Blue Waters regime of Fig. 7c), the foMPI overlap run
	// must beat the MPI-1 bulk run. NsPerFlop 0.02 models a node-rate
	// "rank" (~50 GFlop/s) against the same NIC.
	prm := Params{NX: 32, NY: 32, NZ: 32, Iters: 1, NsPerFlop: 0.02}
	const ranks = 4
	m1, _, fo := runAll(t, prm, ranks)
	var tm, tf timing.Time
	for r := 0; r < ranks; r++ {
		tm = timing.Max(tm, m1[r].Elapsed)
		tf = timing.Max(tf, fo[r].Elapsed)
	}
	if tf > tm {
		t.Fatalf("foMPI slab (%v) slower than MPI-1 bulk (%v)", tf, tm)
	}
}

func TestParamsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two dimension")
		}
	}()
	spmd.MustRun(spmd.Config{Ranks: 1}, func(p *spmd.Proc) {
		RunFoMPI(p, Params{NX: 12, NY: 8, NZ: 8})
	})
}
