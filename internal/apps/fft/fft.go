// Package fft implements the paper's third motif (§4.3, Fig. 7c): a
// three-dimensional Fast Fourier Transform in the style of the NAS FT
// benchmark, decomposed into slabs along the last dimension. Three variants
// reproduce the paper's comparison:
//
//   - MPI-1 "nonblocking": all planes are transformed first, then the
//     global transpose runs as one bulk nonblocking message exchange, then
//     the final 1-D transforms — no overlap between compute and transpose.
//   - UPC "slab": each plane's contribution is communicated (one-sided
//     deferred put) as soon as the plane is transformed, completing as late
//     as possible — the overlap scheme of Nishtala et al. and Bell et
//     al. [7,28].
//   - foMPI "slab": the identical decomposition and communication scheme
//     over MPI-3 RMA with fence epochs, as the paper requires for a fair
//     comparison ("minimal code changes resulting in the same code
//     complexity").
//
// The transform itself is a real radix-2 complex Cooley-Tukey FFT (stdlib
// only); every variant produces bit-identical spectra, which the tests
// verify against a naive DFT.
package fft

import (
	"fmt"
	"math"
	"math/bits"

	"fompi/internal/core"
	"fompi/internal/mpi1"
	"fompi/internal/pgas"
	"fompi/internal/spmd"
	"fompi/internal/timing"
)

// Params configures one 3-D FFT run. NX, NY, NZ must be powers of two; NZ
// and NX must be divisible by the rank count.
type Params struct {
	NX, NY, NZ int
	// Iters repeats the forward transform (the NAS FT time step loop);
	// default 1.
	Iters int
	// NsPerFlop calibrates the virtual compute cost; default 0.5 ns/flop
	// (≈2 GFlop/s per core, an Interlagos-core-like scalar rate).
	NsPerFlop float64
}

func (p Params) withDefaults() Params {
	if p.NX == 0 {
		p.NX = 32
	}
	if p.NY == 0 {
		p.NY = 32
	}
	if p.NZ == 0 {
		p.NZ = 32
	}
	if p.Iters <= 0 {
		p.Iters = 1
	}
	if p.NsPerFlop <= 0 {
		p.NsPerFlop = 0.5
	}
	return p
}

func (p Params) check(ranks int) {
	for _, n := range []int{p.NX, p.NY, p.NZ} {
		if n&(n-1) != 0 || n == 0 {
			panic(fmt.Sprintf("fft: dimensions must be powers of two, got %d×%d×%d", p.NX, p.NY, p.NZ))
		}
	}
	if p.NZ%ranks != 0 || p.NX%ranks != 0 {
		panic(fmt.Sprintf("fft: NZ=%d and NX=%d must divide by %d ranks", p.NZ, p.NX, ranks))
	}
}

// flops returns the total floating-point operations of one 3-D transform
// (the 5·N·log2 N convention the NAS FT benchmark reports).
func (p Params) flops() float64 {
	n := float64(p.NX) * float64(p.NY) * float64(p.NZ)
	return 5 * n * math.Log2(n)
}

// Result is one rank's outcome.
type Result struct {
	Elapsed timing.Time // virtual time of the full Iters-transform run
	GFlops  float64     // aggregate rate: Iters·5N·log2 N / Elapsed
	// Checksum is the NAS-FT-style complex sum over a stride of spectrum
	// entries of the local slab, for cross-variant verification.
	Checksum complex128
}

// Input generates the deterministic initial field value at global grid
// coordinates; every variant and the reference transform use it.
func Input(x, y, z int) complex128 {
	h := uint64(x)*0x9e3779b97f4a7c15 ^ uint64(y)*0xc2b2ae3d27d4eb4f ^ uint64(z)*0x165667b19e3779f9
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	re := float64(int64(h>>32))/float64(1<<31) - 1
	im := float64(int64(h&0xffffffff))/float64(1<<31) - 1
	return complex(re, im)
}

// fft1 runs an in-place radix-2 decimation-in-time FFT over v.
func fft1(v []complex128) {
	n := len(v)
	if n <= 1 {
		return
	}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			v[i], v[j] = v[j], v[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		ang := -2 * math.Pi / float64(size)
		wn := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < size/2; k++ {
				a := v[start+k]
				b := v[start+k+size/2] * w
				v[start+k] = a + b
				v[start+k+size/2] = a - b
				w *= wn
			}
		}
	}
}

// flops1 is the conventional flop count of one length-n 1-D FFT.
func flops1(n int) float64 { return 5 * float64(n) * math.Log2(float64(n)) }

// plan holds the per-rank decomposition.
type plan struct {
	Params
	rank, ranks int
	lz          int // planes (z indices) owned in phase 1
	lx          int // x columns owned in phase 2
}

func newPlan(prm Params, rank, ranks int) *plan {
	prm.check(ranks)
	return &plan{Params: prm, rank: rank, ranks: ranks, lz: prm.NZ / ranks, lx: prm.NX / ranks}
}

// load fills the rank's phase-1 slab, indexed [z][y][x] (z local).
func (pl *plan) load() []complex128 {
	s := make([]complex128, pl.lz*pl.NY*pl.NX)
	for z := 0; z < pl.lz; z++ {
		gz := pl.rank*pl.lz + z
		for y := 0; y < pl.NY; y++ {
			for x := 0; x < pl.NX; x++ {
				s[(z*pl.NY+y)*pl.NX+x] = Input(x, y, gz)
			}
		}
	}
	return s
}

// planeFFT transforms one local plane in x then y, charging its flops.
func (pl *plan) planeFFT(compute func(ns int64), slab []complex128, z int) {
	base := z * pl.NY * pl.NX
	for y := 0; y < pl.NY; y++ {
		fft1(slab[base+y*pl.NX : base+(y+1)*pl.NX])
	}
	col := make([]complex128, pl.NY)
	for x := 0; x < pl.NX; x++ {
		for y := 0; y < pl.NY; y++ {
			col[y] = slab[base+y*pl.NX+x]
		}
		fft1(col)
		for y := 0; y < pl.NY; y++ {
			slab[base+y*pl.NX+x] = col[y]
		}
	}
	compute(int64(pl.NsPerFlop * (float64(pl.NY)*flops1(pl.NX) + float64(pl.NX)*flops1(pl.NY))))
}

// packBlock serializes plane z's columns destined for dest: a [y][x-lox]
// block of lx columns, 16 bytes per element.
func (pl *plan) packBlock(slab []complex128, z, dest int, buf []byte) {
	base := z * pl.NY * pl.NX
	lox := dest * pl.lx
	i := 0
	for y := 0; y < pl.NY; y++ {
		for x := 0; x < pl.lx; x++ {
			putComplex(buf[i:], slab[base+y*pl.NX+lox+x])
			i += 16
		}
	}
}

// blockBytes is the wire size of one (plane, dest) block.
func (pl *plan) blockBytes() int { return pl.NY * pl.lx * 16 }

// recvOff is the receive-buffer offset of the block for global plane gz.
func (pl *plan) recvOff(gz int) int { return gz * pl.blockBytes() }

// recvBytes is the phase-2 receive buffer size: all NZ planes' blocks.
func (pl *plan) recvBytes() int { return pl.NZ * pl.blockBytes() }

// unpack transposes the receive buffer into the phase-2 layout [x][y][z]
// (x local), ready for the z transforms.
func (pl *plan) unpack(recv []byte) []complex128 {
	out := make([]complex128, pl.lx*pl.NY*pl.NZ)
	for gz := 0; gz < pl.NZ; gz++ {
		blk := recv[pl.recvOff(gz):]
		i := 0
		for y := 0; y < pl.NY; y++ {
			for x := 0; x < pl.lx; x++ {
				out[(x*pl.NY+y)*pl.NZ+gz] = getComplex(blk[i:])
				i += 16
			}
		}
	}
	return out
}

// zFFT runs the final transforms along z for every owned (x, y) line.
func (pl *plan) zFFT(compute func(ns int64), cube []complex128) {
	for l := 0; l < pl.lx*pl.NY; l++ {
		fft1(cube[l*pl.NZ : (l+1)*pl.NZ])
	}
	compute(int64(pl.NsPerFlop * float64(pl.lx*pl.NY) * flops1(pl.NZ)))
}

// checksum folds a deterministic stride of the local spectrum.
func (pl *plan) checksum(cube []complex128) complex128 {
	var s complex128
	for i := 0; i < len(cube); i += 17 {
		s += cube[i]
	}
	return s
}

func putComplex(b []byte, v complex128) {
	putF64(b, real(v))
	putF64(b[8:], imag(v))
}

func getComplex(b []byte) complex128 { return complex(getF64(b), getF64(b[8:])) }

func putF64(b []byte, f float64) {
	u := math.Float64bits(f)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

func getF64(b []byte) float64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(u)
}

// result assembles the Result from a timed run.
func (pl *plan) result(elapsed timing.Time, cube []complex128) Result {
	g := 0.0
	if elapsed > 0 {
		g = float64(pl.Iters) * pl.flops() / float64(elapsed) // flops/ns = GFlop/s
	}
	return Result{Elapsed: elapsed, GFlops: g, Checksum: pl.checksum(cube)}
}

// RunMPI1 is the paper's "nonblocking MPI" baseline: transform every plane,
// then transpose with bulk nonblocking sends, then transform along z.
func RunMPI1(c *mpi1.Comm, prm Params) Result {
	pl := newPlan(prm.withDefaults(), c.Rank(), c.Size())
	var cube []complex128
	c.Barrier()
	start := c.Now()
	for it := 0; it < pl.Iters; it++ {
		slab := pl.load()
		for z := 0; z < pl.lz; z++ {
			pl.planeFFT(c.Compute, slab, z)
		}
		// Bulk transpose: one message per destination carrying all planes.
		sendBufs := make([][]byte, pl.ranks)
		var reqs []*mpi1.Request
		for d := 0; d < pl.ranks; d++ {
			dest := (pl.rank + d) % pl.ranks
			buf := make([]byte, pl.lz*pl.blockBytes())
			for z := 0; z < pl.lz; z++ {
				pl.packBlock(slab, z, dest, buf[z*pl.blockBytes():])
			}
			sendBufs[dest] = buf
			if dest != pl.rank {
				reqs = append(reqs, c.Isend(dest, it, buf))
			}
		}
		recv := make([]byte, pl.recvBytes())
		copy(recv[pl.recvOff(pl.rank*pl.lz):], sendBufs[pl.rank])
		for d := 1; d < pl.ranks; d++ {
			tmp := make([]byte, pl.lz*pl.blockBytes())
			from, _, _ := c.Recv(mpi1.AnySource, it, tmp)
			copy(recv[pl.recvOff(from*pl.lz):], tmp)
		}
		c.WaitAll(reqs)
		cube = pl.unpack(recv)
		pl.zFFT(c.Compute, cube)
		c.Barrier()
	}
	return pl.result(c.Now()-start, cube)
}

// RunUPC is the "UPC slab" overlap variant: each plane's blocks are put
// (deferred one-sided) the moment the plane is transformed; the fence and
// barrier close the transpose as late as possible.
func RunUPC(p *spmd.Proc, prm Params) Result {
	pl := newPlan(prm.withDefaults(), p.Rank(), p.Size())
	l := pgas.DialUPC(p, pl.recvBytes())
	defer l.Free()
	var cube []complex128
	l.Barrier()
	start := l.Now()
	for it := 0; it < pl.Iters; it++ {
		slab := pl.load()
		buf := make([]byte, pl.blockBytes())
		for z := 0; z < pl.lz; z++ {
			pl.planeFFT(l.Compute, slab, z)
			gz := pl.rank*pl.lz + z
			for d := 0; d < pl.ranks; d++ {
				pl.packBlock(slab, z, d, buf)
				l.Put(d, pl.recvOff(gz), buf) // upc_memput, defer_sync
			}
		}
		l.Barrier() // upc_fence + upc_barrier: transpose complete everywhere
		cube = pl.unpack(l.Local())
		pl.zFFT(l.Compute, cube)
		l.Barrier()
	}
	return pl.result(l.Now()-start, cube)
}

// RunFoMPI is the foMPI slab variant: the identical overlap scheme over
// MPI-3 RMA, with fence synchronization closing each transpose epoch.
func RunFoMPI(p *spmd.Proc, prm Params) Result {
	pl := newPlan(prm.withDefaults(), p.Rank(), p.Size())
	w, mem := core.Allocate(p, pl.recvBytes(), core.Config{})
	defer w.Free()
	var cube []complex128
	w.Fence()
	start := p.Now()
	for it := 0; it < pl.Iters; it++ {
		slab := pl.load()
		buf := make([]byte, pl.blockBytes())
		for z := 0; z < pl.lz; z++ {
			pl.planeFFT(p.Compute, slab, z)
			gz := pl.rank*pl.lz + z
			for d := 0; d < pl.ranks; d++ {
				pl.packBlock(slab, z, d, buf)
				w.Put(buf, d, pl.recvOff(gz))
			}
		}
		w.Fence() // transpose epoch closed: all blocks globally visible
		cube = pl.unpack(mem)
		pl.zFFT(p.Compute, cube)
		w.Fence()
	}
	return pl.result(p.Now()-start, cube)
}

// Reference computes the full 3-D spectrum sequentially (FFT per axis) for
// verification; layout [x][y][z] like the parallel phase-2 cube.
func Reference(prm Params) []complex128 {
	prm = prm.withDefaults()
	nx, ny, nz := prm.NX, prm.NY, prm.NZ
	cube := make([]complex128, nx*ny*nz) // [x][y][z]
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			for z := 0; z < nz; z++ {
				cube[(x*ny+y)*nz+z] = Input(x, y, z)
			}
		}
	}
	line := make([]complex128, nx)
	for y := 0; y < ny; y++ {
		for z := 0; z < nz; z++ {
			for x := 0; x < nx; x++ {
				line[x] = cube[(x*ny+y)*nz+z]
			}
			fft1(line)
			for x := 0; x < nx; x++ {
				cube[(x*ny+y)*nz+z] = line[x]
			}
		}
	}
	col := make([]complex128, ny)
	for x := 0; x < nx; x++ {
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				col[y] = cube[(x*ny+y)*nz+z]
			}
			fft1(col)
			for y := 0; y < ny; y++ {
				cube[(x*ny+y)*nz+z] = col[y]
			}
		}
	}
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			fft1(cube[(x*ny+y)*nz : (x*ny+y+1)*nz])
		}
	}
	return cube
}

// ReferenceSlab returns the [x][y][z] cube restricted to rank's x range, for
// comparing a parallel run's local result.
func ReferenceSlab(prm Params, rank, ranks int) []complex128 {
	prm = prm.withDefaults()
	full := Reference(prm)
	lx := prm.NX / ranks
	out := make([]complex128, lx*prm.NY*prm.NZ)
	copy(out, full[rank*lx*prm.NY*prm.NZ:(rank+1)*lx*prm.NY*prm.NZ])
	return out
}
