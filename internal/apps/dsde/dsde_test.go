package dsde

import (
	"sort"
	"testing"
	"testing/quick"

	"fompi/internal/mpi1"
	"fompi/internal/simnet"
	"fompi/internal/spmd"
)

// sorted returns a sorted copy for multiset comparison.
func sorted(xs []uint64) []uint64 {
	s := append([]uint64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

func equal(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runAll executes every protocol in one world and checks each rank received
// exactly the expected multiset.
func runAll(t *testing.T, ranks int, prm Params) {
	t.Helper()
	var fab simnet.Transport
	type got struct {
		name string
		recv []uint64
	}
	results := make([][]got, ranks)
	err := spmd.Run(spmd.Config{Ranks: ranks, RanksPerNode: 4}, func(p *spmd.Proc) {
		c := mpi1.Dial(p)
		fab = p.Fabric()
		add := func(name string, r Result) {
			results[p.Rank()] = append(results[p.Rank()], got{name, r.Received})
		}
		add("alltoall", RunAlltoall(c, prm))
		add("reduce_scatter", RunReduceScatter(c, prm))
		add("nbx", RunNBX(c, prm))
		add("rma-fompi", RunFoMPI(p, prm))
		add("rma-mpi22", RunMPI22(p, prm))
	})
	mpi1.Release(fab)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < ranks; r++ {
		want := Expected(prm, r, ranks)
		for _, g := range results[r] {
			if !equal(sorted(g.recv), want) {
				t.Fatalf("rank %d %s: got %v want %v", r, g.name, sorted(g.recv), want)
			}
		}
	}
}

func TestAllProtocolsDeliverExactMultiset(t *testing.T) {
	runAll(t, 8, Params{K: 3, Seed: 1})
	runAll(t, 16, Params{K: 6, Seed: 2})
}

func TestPropertyRandomSeedsAndK(t *testing.T) {
	f := func(seed int16, kSel, nSel uint8) bool {
		n := 8 + int(nSel%3)*4 // 8, 12, 16
		k := 1 + int(kSel)%(n-2)
		if k > 7 {
			k = 7
		}
		var fab simnet.Transport
		ok := true
		spmd.MustRun(spmd.Config{Ranks: n, RanksPerNode: 4}, func(p *spmd.Proc) {
			prm := Params{K: k, Seed: int64(seed)}
			c := mpi1.Dial(p)
			fab = p.Fabric()
			for _, recv := range [][]uint64{
				RunNBX(c, prm).Received,
				RunFoMPI(p, prm).Received,
			} {
				if !equal(sorted(recv), Expected(prm, p.Rank(), n)) {
					ok = false
				}
			}
		})
		mpi1.Release(fab)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedIsConsistentAcrossRanks(t *testing.T) {
	// The union of all ranks' expectations must be exactly p·k payloads.
	prm := Params{K: 4, Seed: 11}
	const n = 12
	total := 0
	for r := 0; r < n; r++ {
		total += len(Expected(prm, r, n))
	}
	if total != n*4 {
		t.Fatalf("expected %d total payloads, got %d", n*4, total)
	}
}

func TestKValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for K >= ranks")
		}
	}()
	targetsOf(Params{K: 8}, 0, 8)
}
