// Package dsde implements the paper's second motif (§4.2): the dynamic
// sparse data exchange, where every rank has small messages for k random
// targets and no rank knows who will send to it. The four protocols of
// Hoefler, Siebert & Lumsdaine [15] are implemented, matching Fig. 7b:
//
//   - Alltoall: a dense personalized exchange carrying mostly empty slots.
//   - Reduce_scatter: count the senders per target, then send/recv.
//   - NBX: nonblocking barrier (ibarrier) combined with synchronous sends.
//   - RMA: one-sided accumulates in active target mode — a remote
//     fetch-and-add reserves a slot, a put deposits the payload, and a
//     fence closes the exchange. Run over both foMPI and the Cray
//     MPI-2.2 comparator.
package dsde

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"fompi/internal/core"
	"fompi/internal/mpi1"
	"fompi/internal/pgas"
	"fompi/internal/spmd"
	"fompi/internal/timing"
)

// Params configures one exchange.
type Params struct {
	K    int   // random targets per rank (the paper uses 6)
	Seed int64 // target selection; varied per repetition
}

func (p Params) withDefaults() Params {
	if p.K <= 0 {
		p.K = 6
	}
	return p
}

// Result is one rank's outcome: the received payloads and the virtual time
// of the complete exchange.
type Result struct {
	Elapsed  timing.Time
	Received []uint64
}

// payload encodes sender and sequence so receivers can verify the multiset.
func payload(rank, i int) uint64 { return uint64(rank)<<32 | uint64(i) }

// targetsOf returns the k (distinct) targets rank draws for this seed.
func targetsOf(prm Params, rank, ranks int) []int {
	rng := rand.New(rand.NewSource(prm.Seed*7919 + int64(rank)))
	if prm.K >= ranks {
		panic("dsde: K must be below the rank count")
	}
	seen := map[int]bool{}
	var ts []int
	for len(ts) < prm.K {
		t := rng.Intn(ranks)
		if !seen[t] {
			seen[t] = true
			ts = append(ts, t)
		}
	}
	return ts
}

// Expected computes the multiset every rank must receive (verification).
func Expected(prm Params, rank, ranks int) []uint64 {
	prm = prm.withDefaults()
	var out []uint64
	for s := 0; s < ranks; s++ {
		for i, t := range targetsOf(prm, s, ranks) {
			if t == rank {
				out = append(out, payload(s, i))
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// RunAlltoall exchanges via a dense alltoall: every rank ships a (flag,
// value) slot to every other rank, occupied or not — the O(p) lower bound
// that makes this protocol collapse at scale.
func RunAlltoall(c *mpi1.Comm, prm Params) Result {
	prm = prm.withDefaults()
	n := c.Size()
	send := make([]byte, n*16)
	for i, t := range targetsOf(prm, c.Rank(), n) {
		binary.LittleEndian.PutUint64(send[t*16:], 1)
		binary.LittleEndian.PutUint64(send[t*16+8:], payload(c.Rank(), i))
	}
	c.Barrier()
	start := c.Now()
	got := c.Alltoall(send, 16)
	elapsed := c.Now() - start
	var recv []uint64
	for s := 0; s < n; s++ {
		if binary.LittleEndian.Uint64(got[s*16:]) == 1 {
			recv = append(recv, binary.LittleEndian.Uint64(got[s*16+8:]))
		}
	}
	return Result{Elapsed: elapsed, Received: recv}
}

// RunReduceScatter first learns how many messages to expect via a
// reduce_scatter over the 0/1 target vector, then exchanges point-to-point.
func RunReduceScatter(c *mpi1.Comm, prm Params) Result {
	prm = prm.withDefaults()
	n := c.Size()
	targets := targetsOf(prm, c.Rank(), n)
	vec := make([]uint64, n)
	for _, t := range targets {
		vec[t]++
	}
	c.Barrier()
	start := c.Now()
	expect := c.ReduceScatterSum(vec)
	const tag = 11
	var reqs []*mpi1.Request
	for i, t := range targets {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], payload(c.Rank(), i))
		reqs = append(reqs, c.Isend(t, tag, b[:]))
	}
	recv := make([]uint64, 0, expect)
	for uint64(len(recv)) < expect {
		var b [8]byte
		c.Recv(mpi1.AnySource, tag, b[:])
		recv = append(recv, binary.LittleEndian.Uint64(b[:]))
	}
	c.WaitAll(reqs)
	return Result{Elapsed: c.Now() - start, Received: recv}
}

// RunNBX is the nonblocking-barrier protocol proved optimal in [15]:
// synchronous sends, opportunistic receives, and an ibarrier entered once
// the local sends completed; the exchange ends when the barrier does.
func RunNBX(c *mpi1.Comm, prm Params) Result {
	prm = prm.withDefaults()
	n := c.Size()
	targets := targetsOf(prm, c.Rank(), n)
	c.Barrier()
	start := c.Now()
	const tag = 12
	var reqs []*mpi1.Request
	for i, t := range targets {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], payload(c.Rank(), i))
		reqs = append(reqs, c.Issend(t, tag, b[:]))
	}
	var recv []uint64
	var ib *mpi1.IBarrier
	for {
		var b [8]byte
		if _, _, _, ok := c.TryRecv(mpi1.AnySource, tag, b[:]); ok {
			recv = append(recv, binary.LittleEndian.Uint64(b[:]))
			continue
		}
		if ib == nil {
			all := true
			for _, r := range reqs {
				if !c.Test(r) {
					all = false
					break
				}
			}
			if all {
				ib = c.IbarrierBegin()
			}
		} else if c.TestIB(ib) {
			break
		}
	}
	return Result{Elapsed: c.Now() - start, Received: recv}
}

// rmaLayer abstracts the one-sided operations the RMA protocol needs so it
// runs identically over foMPI and the Cray MPI-2.2 comparator.
type rmaLayer interface {
	fadd(rank, off int, delta uint64) uint64
	put8(rank, off int, v uint64)
	fence() // close the active-target epoch, all ops complete everywhere
	now() timing.Time
	localWord(off int) uint64
}

// rmaExchange is the shared protocol body: slot reservation by remote
// fetch-and-add, payload deposit, fence, local harvest.
func rmaExchange(l rmaLayer, prm Params, rank, ranks, cells int) Result {
	targets := targetsOf(prm, rank, ranks)
	l.fence()
	start := l.now()
	for i, t := range targets {
		idx := l.fadd(t, 0, 1)
		if int(idx) >= cells {
			panic(fmt.Sprintf("dsde: receive buffer exhausted at rank %d", t))
		}
		l.put8(t, 8+int(idx)*8, payload(rank, i))
	}
	l.fence()
	count := l.localWord(0)
	recv := make([]uint64, 0, count)
	for i := uint64(0); i < count; i++ {
		recv = append(recv, l.localWord(8+int(i)*8))
	}
	elapsed := l.now() - start
	return Result{Elapsed: elapsed, Received: recv}
}

// fompiLayer adapts a foMPI window.
type fompiLayer struct {
	p *spmd.Proc
	w *core.Win
	m []byte
}

func (f fompiLayer) fadd(r, off int, d uint64) uint64 {
	return f.w.FetchAndOp(core.AccSum, d, r, off)
}
func (f fompiLayer) put8(r, off int, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	f.w.Put(b[:], r, off)
}
func (f fompiLayer) fence()           { f.w.Fence() }
func (f fompiLayer) now() timing.Time { return f.p.Now() }
func (f fompiLayer) localWord(off int) uint64 {
	return binary.LittleEndian.Uint64(f.m[off:])
}

// RunFoMPI runs the RMA protocol over MPI-3 (foMPI).
func RunFoMPI(p *spmd.Proc, prm Params) Result {
	prm = prm.withDefaults()
	cells := cellsFor(prm, p.Size())
	w, mem := core.Allocate(p, 8+cells*8, core.Config{})
	defer w.Free()
	for i := range mem {
		mem[i] = 0
	}
	res := rmaExchange(fompiLayer{p, w, mem}, prm, p.Rank(), p.Size(), cells)
	return res
}

// mpi22Layer adapts the Cray MPI-2.2 one-sided comparator.
type mpi22Layer struct{ l *pgas.Lang }

func (m mpi22Layer) fadd(r, off int, d uint64) uint64 { return m.l.FetchAdd(r, off, d) }
func (m mpi22Layer) put8(r, off int, v uint64)        { m.l.StoreW(r, off, v) }
func (m mpi22Layer) fence()                           { m.l.Barrier() }
func (m mpi22Layer) now() timing.Time                 { return m.l.Now() }
func (m mpi22Layer) localWord(off int) uint64         { return m.l.LocalWord(off) }

// RunMPI22 runs the RMA protocol over the Cray MPI-2.2 comparator.
func RunMPI22(p *spmd.Proc, prm Params) Result {
	prm = prm.withDefaults()
	cells := cellsFor(prm, p.Size())
	l := pgas.DialMPI22(p, 8+cells*8)
	defer l.Free()
	return rmaExchange(mpi22Layer{l}, prm, p.Rank(), p.Size(), cells)
}

// cellsFor bounds the receive buffer: k senders on average, with slack for
// the random-target skew.
func cellsFor(prm Params, ranks int) int {
	c := prm.K*8 + 64
	if c > ranks*prm.K {
		c = ranks * prm.K
	}
	return c
}
