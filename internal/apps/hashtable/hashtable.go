// Package hashtable is the paper's first application motif (§4.1): a
// distributed hashtable standing in for data-analytics workloads with
// random access into distributed structures. Each rank owns a local volume
// — a fixed-size slot table plus an overflow heap with a next-free pointer —
// and elements are 8-byte integers.
//
// Three implementations mirror the paper's comparison:
//
//   - foMPI MPI-3.0: passive-target; one lock_all epoch; CAS into the slot,
//     fetch-and-add to acquire an overflow cell, second CAS to link it.
//   - UPC: the identical scheme over Cray-UPC-style proprietary atomics.
//   - MPI-1: an active-message scheme over Send/Recv; the owner performs
//     the insert, and termination uses all-to-all notification.
package hashtable

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"fompi/internal/core"
	"fompi/internal/mpi1"
	"fompi/internal/pgas"
	"fompi/internal/spmd"
	"fompi/internal/timing"
)

// Params sizes the table and the workload.
type Params struct {
	TableSlots     int // hash slots per rank
	OverflowCells  int // collision heap cells per rank
	InsertsPerRank int
	Seed           int64
}

func (p Params) withDefaults() Params {
	if p.TableSlots <= 0 {
		p.TableSlots = 1 << 12
	}
	if p.OverflowCells <= 0 {
		p.OverflowCells = p.InsertsPerRank + 16
	}
	if p.InsertsPerRank <= 0 {
		p.InsertsPerRank = 1 << 10
	}
	return p
}

// Result reports one rank's measurement.
type Result struct {
	Elapsed timing.Time // virtual time from first to last insert (incl. sync)
	Inserts int
}

// Volume layout (8-byte words):
//
//	w0:                 next-free overflow index
//	w1 .. w1+2T-1:      table slots  {value, next}
//	then 2H words:      overflow     {value, next}
//
// next encodes 0 = nil, i+1 = overflow cell i.
const wordsPerCell = 2

func volumeBytes(p Params) int {
	return 8 * (1 + wordsPerCell*(p.TableSlots+p.OverflowCells))
}

func slotOff(slot int) int { return 8 * (1 + wordsPerCell*slot) }
func overflowOff(p Params, i int) int {
	return 8 * (1 + wordsPerCell*(p.TableSlots+i))
}

// home and slot derive the owner rank and slot index of a key.
func home(key uint64, ranks int) int  { return int(key % uint64(ranks)) }
func slotOf(key uint64, p Params) int { return int((key / 1000003) % uint64(p.TableSlots)) }
func keyFor(rank, i int, rng *rand.Rand) uint64 {
	// Unique nonzero value per (rank, i) with a random home/slot.
	return (rng.Uint64() &^ 0xffffff) | uint64(rank)<<12 | uint64(i)&0xfff | 1<<23
}

// insertRMA performs one insert through an abstract one-sided interface, so
// the foMPI and UPC variants share the exact protocol.
type rmaOps interface {
	cas(rank, off int, compare, swap uint64) uint64
	fadd(rank, off int, delta uint64) uint64
	put8(rank, off int, v uint64)
	load(rank, off int) uint64
	flush()
}

func insertRMA(ops rmaOps, prm Params, ranks int, key uint64) {
	h := home(key, ranks)
	so := slotOff(slotOf(key, prm))
	// Fast path: claim the empty slot.
	if ops.cas(h, so, 0, key) == 0 {
		return
	}
	// Collision: acquire an overflow cell, fill it, and push it onto the
	// slot's chain with a second CAS.
	idx := ops.fadd(h, 0, 1)
	if idx >= uint64(prm.OverflowCells) {
		panic(fmt.Sprintf("hashtable: overflow heap exhausted at rank %d", h))
	}
	co := overflowOff(prm, int(idx))
	ops.put8(h, co, key)
	for {
		cur := ops.load(h, so+8)
		ops.put8(h, co+8, cur)
		ops.flush()
		if ops.cas(h, so+8, cur, idx+1) == cur {
			return
		}
	}
}

// fompiOps adapts a foMPI window (inside a lock_all epoch).
type fompiOps struct{ w *core.Win }

func (o fompiOps) cas(r, off int, c, s uint64) uint64 { return o.w.CompareAndSwap(c, s, r, off) }
func (o fompiOps) fadd(r, off int, d uint64) uint64   { return o.w.FetchAndOp(core.AccSum, d, r, off) }
func (o fompiOps) put8(r, off int, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	o.w.Put(b[:], r, off)
}
func (o fompiOps) load(r, off int) uint64 { return o.w.FetchAndOp(core.AccNoOp, 0, r, off) }
func (o fompiOps) flush()                 { o.w.FlushAll() }

// upcOps adapts the UPC layer.
type upcOps struct{ l *pgas.Lang }

func (o upcOps) cas(r, off int, c, s uint64) uint64 { return o.l.CompareSwap(r, off, c, s) }
func (o upcOps) fadd(r, off int, d uint64) uint64   { return o.l.FetchAdd(r, off, d) }
func (o upcOps) put8(r, off int, v uint64)          { o.l.StoreW(r, off, v) }
func (o upcOps) load(r, off int) uint64             { return o.l.LoadW(r, off) }
func (o upcOps) flush()                             { o.l.Fence() }

// RunFoMPI inserts prm.InsertsPerRank random elements through MPI-3 RMA and
// returns the rank's timing. The local volume bytes are returned for
// verification.
func RunFoMPI(p *spmd.Proc, prm Params) (Result, []byte) {
	prm = prm.withDefaults()
	w, mem := core.Allocate(p, volumeBytes(prm), core.Config{})
	defer w.Free()
	rng := rand.New(rand.NewSource(prm.Seed + int64(p.Rank())))
	w.LockAll()
	p.Barrier()
	start := p.Now()
	ops := fompiOps{w}
	for i := 0; i < prm.InsertsPerRank; i++ {
		insertRMA(ops, prm, p.Size(), keyFor(p.Rank(), i, rng))
	}
	w.FlushAll()
	p.Barrier()
	elapsed := p.Now() - start
	w.UnlockAll()
	out := append([]byte(nil), mem...)
	p.Barrier()
	return Result{Elapsed: elapsed, Inserts: prm.InsertsPerRank}, out
}

// RunUPC is the UPC comparator: same structure, Cray-extension atomics.
func RunUPC(p *spmd.Proc, prm Params) (Result, []byte) {
	prm = prm.withDefaults()
	l := pgas.DialUPC(p, volumeBytes(prm))
	defer l.Free()
	rng := rand.New(rand.NewSource(prm.Seed + int64(p.Rank())))
	l.Barrier()
	start := l.Now()
	ops := upcOps{l}
	for i := 0; i < prm.InsertsPerRank; i++ {
		insertRMA(ops, prm, p.Size(), keyFor(p.Rank(), i, rng))
	}
	l.Barrier()
	elapsed := l.Now() - start
	out := append([]byte(nil), l.Local()...)
	l.Barrier()
	return Result{Elapsed: elapsed, Inserts: prm.InsertsPerRank}, out
}

// RunMPI1 is the active-message comparator: each insert becomes a message
// to the owner, who applies it locally; termination is all-to-all
// notification (§4.1).
func RunMPI1(p *spmd.Proc, prm Params) (Result, []byte) {
	prm = prm.withDefaults()
	vol := make([]byte, volumeBytes(prm))
	c := mpi1.Dial(p)
	rng := rand.New(rand.NewSource(prm.Seed + int64(p.Rank())))
	const tagInsert, tagDone = 1, 2
	c.Barrier()
	start := c.Now()

	insertLocal := func(key uint64) {
		so := slotOff(slotOf(key, prm))
		if binary.LittleEndian.Uint64(vol[so:]) == 0 {
			binary.LittleEndian.PutUint64(vol[so:], key)
			return
		}
		idx := binary.LittleEndian.Uint64(vol)
		binary.LittleEndian.PutUint64(vol, idx+1)
		if idx >= uint64(prm.OverflowCells) {
			panic("hashtable: overflow heap exhausted")
		}
		co := overflowOff(prm, int(idx))
		binary.LittleEndian.PutUint64(vol[co:], key)
		binary.LittleEndian.PutUint64(vol[co+8:], binary.LittleEndian.Uint64(vol[so+8:]))
		binary.LittleEndian.PutUint64(vol[so+8:], idx+1)
	}

	var buf [8]byte
	donesSeen := 0
	drain := func(block bool) {
		for {
			var from int
			var ok bool
			var tag int
			if block {
				from, tag, _ = c.Recv(mpi1.AnySource, mpi1.AnyTag, buf[:])
				ok = true
			} else {
				from, tag, _, ok = c.TryRecv(mpi1.AnySource, mpi1.AnyTag, buf[:])
			}
			if !ok {
				return
			}
			_ = from
			if tag == tagDone {
				donesSeen++
			} else {
				key := binary.LittleEndian.Uint64(buf[:])
				// The owner invokes the insert handler (charged as compute).
				c.Compute(120)
				insertLocal(key)
			}
			if block {
				return
			}
		}
	}

	for i := 0; i < prm.InsertsPerRank; i++ {
		key := keyFor(p.Rank(), i, rng)
		h := home(key, p.Size())
		if h == p.Rank() {
			insertLocal(key)
		} else {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], key)
			c.Send(h, tagInsert, b[:])
		}
		drain(false) // service incoming inserts while producing
	}
	for r := 0; r < p.Size(); r++ {
		if r != p.Rank() {
			c.Send(r, tagDone, buf[:])
		}
	}
	for donesSeen < p.Size()-1 {
		drain(true)
	}
	elapsed := c.Now() - start
	c.Barrier()
	// The layer is left attached: releasing here would race with peers
	// re-dialing the same fabric. Callers release after the world exits.
	return Result{Elapsed: elapsed, Inserts: prm.InsertsPerRank}, vol
}

// Collect extracts every element stored in a volume (verification helper).
func Collect(prm Params, vol []byte) []uint64 {
	prm = prm.withDefaults()
	var out []uint64
	for s := 0; s < prm.TableSlots; s++ {
		so := slotOff(s)
		if v := binary.LittleEndian.Uint64(vol[so:]); v != 0 {
			out = append(out, v)
		}
		next := binary.LittleEndian.Uint64(vol[so+8:])
		for next != 0 {
			co := overflowOff(prm, int(next-1))
			if v := binary.LittleEndian.Uint64(vol[co:]); v != 0 {
				out = append(out, v)
			}
			next = binary.LittleEndian.Uint64(vol[co+8:])
		}
	}
	return out
}

// Keys regenerates the exact key sequence a rank inserts (verification).
func Keys(prm Params, rank, ranks int) []uint64 {
	prm = prm.withDefaults()
	rng := rand.New(rand.NewSource(prm.Seed + int64(rank)))
	keys := make([]uint64, prm.InsertsPerRank)
	for i := range keys {
		keys[i] = keyFor(rank, i, rng)
	}
	return keys
}
