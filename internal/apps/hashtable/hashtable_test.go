package hashtable

import (
	"sort"
	"testing"
	"testing/quick"

	"fompi/internal/mpi1"
	"fompi/internal/simnet"
	"fompi/internal/spmd"
)

// expectedKeys returns the sorted multiset of all keys every rank inserts.
func expectedKeys(prm Params, ranks int) []uint64 {
	var all []uint64
	for r := 0; r < ranks; r++ {
		all = append(all, Keys(prm, r, ranks)...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

// collectAll extracts the stored keys from every rank's volume.
func collectAll(prm Params, vols [][]byte) []uint64 {
	var all []uint64
	for _, v := range vols {
		all = append(all, Collect(prm, v)...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

func equal(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runVariant executes one implementation and verifies the table contents
// equal the inserted multiset.
func runVariant(t *testing.T, name string, ranks int, prm Params,
	run func(p *spmd.Proc) (Result, []byte)) {
	t.Helper()
	vols := make([][]byte, ranks)
	var fab simnet.Transport
	err := spmd.Run(spmd.Config{Ranks: ranks, RanksPerNode: 4, PaceWindowNs: 50000},
		func(p *spmd.Proc) {
			fab = p.Fabric()
			_, vol := run(p)
			vols[p.Rank()] = vol
		})
	mpi1.Release(fab)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	got := collectAll(prm, vols)
	want := expectedKeys(prm, ranks)
	if !equal(got, want) {
		t.Fatalf("%s: stored %d keys, want %d (multisets differ)", name, len(got), len(want))
	}
}

func TestAllVariantsStoreExactKeyMultiset(t *testing.T) {
	const ranks = 8
	prm := Params{TableSlots: 256, OverflowCells: 4096, InsertsPerRank: 300, Seed: 5}
	runVariant(t, "fompi", ranks, prm, func(p *spmd.Proc) (Result, []byte) {
		return RunFoMPI(p, prm)
	})
	runVariant(t, "upc", ranks, prm, func(p *spmd.Proc) (Result, []byte) {
		return RunUPC(p, prm)
	})
	runVariant(t, "mpi1", ranks, prm, func(p *spmd.Proc) (Result, []byte) {
		return RunMPI1(p, prm)
	})
}

func TestHeavyCollisions(t *testing.T) {
	// A tiny table forces nearly every insert through the overflow-chain
	// protocol (fetch-and-add + linked CAS), the paper's collision path.
	const ranks = 4
	prm := Params{TableSlots: 8, OverflowCells: 2048, InsertsPerRank: 256, Seed: 9}
	runVariant(t, "fompi-collide", ranks, prm, func(p *spmd.Proc) (Result, []byte) {
		return RunFoMPI(p, prm)
	})
}

func TestPropertyRandomSeeds(t *testing.T) {
	f := func(seed int16) bool {
		const ranks = 4
		prm := Params{TableSlots: 64, OverflowCells: 1024, InsertsPerRank: 100,
			Seed: int64(seed)}
		vols := make([][]byte, ranks)
		spmd.MustRun(spmd.Config{Ranks: ranks, RanksPerNode: 2, PaceWindowNs: 50000},
			func(p *spmd.Proc) {
				_, vol := RunFoMPI(p, prm)
				vols[p.Rank()] = vol
			})
		return equal(collectAll(prm, vols), expectedKeys(prm, ranks))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestKeysAreUniqueAndNonZero(t *testing.T) {
	prm := Params{InsertsPerRank: 512, Seed: 1}.withDefaults()
	seen := map[uint64]bool{}
	for r := 0; r < 8; r++ {
		for _, k := range Keys(prm, r, 8) {
			if k == 0 {
				t.Fatal("zero key (collides with the empty-slot sentinel)")
			}
			if seen[k] {
				t.Fatalf("duplicate key %#x", k)
			}
			seen[k] = true
		}
	}
}
