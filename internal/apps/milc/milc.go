// Package milc is the proxy for the paper's full-application study (§4.4,
// Fig. 8): the MIMD Lattice Computation su3_rmd code. MILC's dominant cost
// is a conjugate-gradient solver over a four-dimensional lattice with
// nearest-neighbor (8-direction) halo exchange plus global allreductions.
// The paper changes only the communication layer, so this proxy implements
// exactly that layer three ways over one real 4-D stencil CG:
//
//   - MPI-1: nonblocking sends/receives of the packed halo faces.
//   - UPC: the scheme of Shan et al. [34] — the sender initializes its
//     "send" buffer, notifies each neighbor with an atomic add, and
//     neighbors pull the data with Cray's nonblocking upc_memget_nb.
//   - foMPI MPI-3: the identical scheme with MPI_Fetch_and_op notification
//     and MPI_Get + MPI_Win_flush inside a single lock_all epoch.
//
// All variants run the same arithmetic on the same data, so residuals agree
// bit-for-bit across transports, which the tests verify against a
// sequential reference solver.
package milc

import (
	"fmt"
	"math"

	"fompi/internal/core"
	"fompi/internal/mpi1"
	"fompi/internal/pgas"
	"fompi/internal/simnet"
	"fompi/internal/spmd"
	"fompi/internal/timing"
)

// Params configures one CG run on a weak-scaled lattice.
type Params struct {
	// Local is the per-rank lattice extent in each of the four dimensions
	// (the paper's weak-scaling benchmark uses 4×4×4×8 per process).
	Local [4]int
	// Grid is the process grid; Grid[0]*Grid[1]*Grid[2]*Grid[3] must equal
	// the rank count. Zero means a 1-D decomposition along t.
	Grid [4]int
	// Iters is the fixed number of CG iterations (the solver always runs
	// them all so every transport does identical work). Default 25.
	Iters int
	// Mass is the mass term; (8+m²) keeps the operator positive definite.
	// Default 0.1.
	Mass float64
	// NsPerFlop calibrates virtual compute cost. Default 0.5.
	NsPerFlop float64
	// Seed selects the right-hand side. Default 1.
	Seed int64
}

func (p Params) withDefaults(ranks int) Params {
	if p.Local == [4]int{} {
		p.Local = [4]int{4, 4, 4, 8}
	}
	if p.Grid == [4]int{} {
		p.Grid = [4]int{1, 1, 1, ranks}
	}
	if p.Iters <= 0 {
		p.Iters = 25
	}
	if p.Mass == 0 {
		p.Mass = 0.1
	}
	if p.NsPerFlop <= 0 {
		p.NsPerFlop = 0.5
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Grid[0]*p.Grid[1]*p.Grid[2]*p.Grid[3] != ranks {
		panic(fmt.Sprintf("milc: grid %v does not cover %d ranks", p.Grid, ranks))
	}
	for d := 0; d < 4; d++ {
		if p.Local[d] < 1 {
			panic("milc: local lattice dimensions must be at least 1")
		}
	}
	return p
}

// Result is one rank's outcome.
type Result struct {
	Elapsed  timing.Time // virtual time of the full solve
	Residual float64     // final global residual norm ||b - A·x||
	Sites    int         // local lattice sites
}

// rhs generates the deterministic right-hand side value at global site
// coordinates, shared by all variants and the reference solver.
func rhs(seed int64, g [4]int) float64 {
	h := uint64(seed) * 0x9e3779b97f4a7c15
	for _, c := range g {
		h ^= uint64(c) + 0x9e3779b97f4a7c15 + h<<6 + h>>2
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(int64(h>>11))/float64(1<<52) - 1
}

// lattice holds one rank's field storage with one ghost layer per face.
type lattice struct {
	Params
	rank, ranks int
	coord       [4]int // this rank's position in the process grid
	dims        [4]int // Local
	vol         int    // product of Local
	faceLen     [4]int // sites on the face normal to dimension d
}

func newLattice(prm Params, rank, ranks int) *lattice {
	l := &lattice{Params: prm, rank: rank, ranks: ranks, dims: prm.Local}
	r := rank
	for d := 0; d < 4; d++ {
		l.coord[d] = r % prm.Grid[d]
		r /= prm.Grid[d]
	}
	l.vol = 1
	for d := 0; d < 4; d++ {
		l.vol *= l.dims[d]
	}
	for d := 0; d < 4; d++ {
		l.faceLen[d] = l.vol / l.dims[d]
	}
	return l
}

// neighbor returns the rank one step along dimension d (dir ±1), with
// periodic (toroidal) boundaries, as MILC uses.
func (l *lattice) neighbor(d, dir int) int {
	c := l.coord
	c[d] = (c[d] + dir + l.Grid[d]) % l.Grid[d]
	r := 0
	for dd := 3; dd >= 0; dd-- {
		r = r*l.Grid[dd] + c[dd]
	}
	return r
}

// idx flattens local coordinates (x fastest).
func (l *lattice) idx(c [4]int) int {
	return ((c[3]*l.dims[2]+c[2])*l.dims[1]+c[1])*l.dims[0] + c[0]
}

// global returns the global coordinates of a local site.
func (l *lattice) global(c [4]int) [4]int {
	var g [4]int
	for d := 0; d < 4; d++ {
		g[d] = l.coord[d]*l.dims[d] + c[d]
	}
	return g
}

// forEachSite visits all local sites.
func (l *lattice) forEachSite(f func(c [4]int, i int)) {
	var c [4]int
	for c[3] = 0; c[3] < l.dims[3]; c[3]++ {
		for c[2] = 0; c[2] < l.dims[2]; c[2]++ {
			for c[1] = 0; c[1] < l.dims[1]; c[1]++ {
				for c[0] = 0; c[0] < l.dims[0]; c[0]++ {
					f(c, l.idx(c))
				}
			}
		}
	}
}

// faceSites lists the local indices of the face at the low (dir=-1) or high
// (dir=+1) boundary of dimension d, in a deterministic order shared by
// sender and receiver.
func (l *lattice) faceSites(d, dir int) []int {
	edge := 0
	if dir > 0 {
		edge = l.dims[d] - 1
	}
	out := make([]int, 0, l.faceLen[d])
	l.forEachSite(func(c [4]int, i int) {
		if c[d] == edge {
			out = append(out, i)
		}
	})
	return out
}

// halo is the ghost storage: for each dimension and direction, the face
// received from that neighbor.
type halo [4][2][]float64

func (l *lattice) newHalo() *halo {
	var h halo
	for d := 0; d < 4; d++ {
		h[d][0] = make([]float64, l.faceLen[d])
		h[d][1] = make([]float64, l.faceLen[d])
	}
	return &h
}

// exchanger abstracts the three communication variants: fill the ghost
// faces of h from the 8 neighbors' boundary values of v.
type exchanger interface {
	exchange(v []float64, h *halo)
	allreduceSum(x float64) float64
	now() timing.Time
	compute(ns int64)
	name() string
}

// applyD computes out = (8+m²)·v − Σ_{d,±} v(neighbor), reading ghost faces
// for off-rank neighbors, and charges the stencil flops.
func (l *lattice) applyD(v []float64, h *halo, out []float64, ex exchanger) {
	m2 := 8 + l.Mass*l.Mass
	// Precompute halo lookup: position of each boundary site within its face.
	l.forEachSite(func(c [4]int, i int) {
		acc := m2 * v[i]
		for d := 0; d < 4; d++ {
			// low neighbor
			if c[d] > 0 {
				cc := c
				cc[d]--
				acc -= v[l.idx(cc)]
			} else {
				acc -= h[d][0][l.faceIndex(d, c)]
			}
			// high neighbor
			if c[d] < l.dims[d]-1 {
				cc := c
				cc[d]++
				acc -= v[l.idx(cc)]
			} else {
				acc -= h[d][1][l.faceIndex(d, c)]
			}
		}
		out[i] = acc
	})
	ex.compute(int64(l.NsPerFlop * float64(l.vol) * 10)) // 8 subs + mul + add
}

// faceIndex maps a boundary site to its position within the face normal to
// d (the flattened index with dimension d removed).
func (l *lattice) faceIndex(d int, c [4]int) int {
	i := 0
	for dd := 3; dd >= 0; dd-- {
		if dd == d {
			continue
		}
		i = i*l.dims[dd] + c[dd]
	}
	return i
}

// pack gathers the boundary face (d, dir) of v into buf.
func (l *lattice) pack(v []float64, d, dir int, buf []float64) {
	for j, i := range l.faceSites(d, dir) {
		buf[j] = v[i]
	}
}

// dot computes the global inner product, charging local flops and one
// allreduce.
func (l *lattice) dot(a, b []float64, ex exchanger) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	ex.compute(int64(l.NsPerFlop * float64(l.vol) * 2))
	return ex.allreduceSum(s)
}

// axpy computes y += alpha·x, charging flops.
func (l *lattice) axpy(alpha float64, x, y []float64, ex exchanger) {
	for i := range y {
		y[i] += alpha * x[i]
	}
	ex.compute(int64(l.NsPerFlop * float64(l.vol) * 2))
}

// cg runs Iters conjugate-gradient iterations solving D·x = b and returns
// the result with the final residual.
func (l *lattice) cg(ex exchanger) Result {
	b := make([]float64, l.vol)
	l.forEachSite(func(c [4]int, i int) { b[i] = rhs(l.Seed, l.global(c)) })
	x := make([]float64, l.vol)
	r := append([]float64(nil), b...) // r = b − D·0
	p := append([]float64(nil), b...)
	ap := make([]float64, l.vol)
	h := l.newHalo()

	start := ex.now()
	rr := l.dot(r, r, ex)
	for it := 0; it < l.Iters; it++ {
		ex.exchange(p, h)
		l.applyD(p, h, ap, ex)
		pap := l.dot(p, ap, ex)
		alpha := rr / pap
		l.axpy(alpha, p, x, ex)
		l.axpy(-alpha, ap, r, ex)
		rrNew := l.dot(r, r, ex)
		beta := rrNew / rr
		rr = rrNew
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		ex.compute(int64(l.NsPerFlop * float64(l.vol) * 2))
	}
	return Result{Elapsed: ex.now() - start, Residual: math.Sqrt(rr), Sites: l.vol}
}

// ---------------------------------------------------------------------------
// MPI-1 variant

type mpi1Ex struct {
	l *lattice
	c *mpi1.Comm
	// packed send buffers, retained across the nonblocking sends
	sendBuf [4][2][]byte
}

func newMPI1Ex(l *lattice, c *mpi1.Comm) *mpi1Ex {
	ex := &mpi1Ex{l: l, c: c}
	for d := 0; d < 4; d++ {
		ex.sendBuf[d][0] = make([]byte, l.faceLen[d]*8)
		ex.sendBuf[d][1] = make([]byte, l.faceLen[d]*8)
	}
	return ex
}

func (ex *mpi1Ex) name() string { return "CrayMPI1" }

// tag encodes (dimension, direction) so concurrent faces match correctly.
func tagOf(d, dir int) int {
	if dir > 0 {
		return d*2 + 1
	}
	return d * 2
}

func (ex *mpi1Ex) exchange(v []float64, h *halo) {
	l := ex.l
	var reqs []*mpi1.Request
	face := make([]float64, 0)
	for d := 0; d < 4; d++ {
		for di, dir := range [2]int{-1, +1} {
			if cap(face) < l.faceLen[d] {
				face = make([]float64, l.faceLen[d])
			}
			face = face[:l.faceLen[d]]
			l.pack(v, d, dir, face)
			buf := ex.sendBuf[d][di]
			for j, f := range face {
				putU64(buf[j*8:], math.Float64bits(f))
			}
			// My high face is the neighbor's low ghost and vice versa.
			reqs = append(reqs, ex.c.Isend(l.neighbor(d, dir), tagOf(d, dir), buf))
		}
	}
	recv := make([]byte, 0)
	for d := 0; d < 4; d++ {
		for di, dir := range [2]int{-1, +1} {
			if cap(recv) < l.faceLen[d]*8 {
				recv = make([]byte, l.faceLen[d]*8)
			}
			recv = recv[:l.faceLen[d]*8]
			// Receive the face the neighbor sent toward me: its direction is
			// opposite, so it carries tagOf(d, -dir).
			ex.c.Recv(l.neighbor(d, dir), tagOf(d, -dir), recv)
			dst := h[d][di]
			for j := range dst {
				dst[j] = math.Float64frombits(getU64(recv[j*8:]))
			}
		}
	}
	ex.c.WaitAll(reqs)
}

func (ex *mpi1Ex) allreduceSum(x float64) float64 {
	return math.Float64frombits(ex.c.Allreduce8(mpi1.FSum, math.Float64bits(x)))
}
func (ex *mpi1Ex) now() timing.Time { return ex.c.Now() }
func (ex *mpi1Ex) compute(ns int64) { ex.c.Compute(ns) }

// RunMPI1 solves with the MPI-1 nonblocking halo exchange.
func RunMPI1(p *spmd.Proc, prm Params) Result {
	prm = prm.withDefaults(p.Size())
	l := newLattice(prm, p.Rank(), p.Size())
	c := mpi1.Dial(p)
	c.Barrier()
	return l.cg(newMPI1Ex(l, c))
}

// ---------------------------------------------------------------------------
// One-sided variants (UPC and foMPI share the notify+get scheme)

// segment layout per rank: 8 flag words (one per direction) followed by the
// 8 outgoing face buffers at fixed offsets.
type segLayout struct {
	flagOff [4][2]int
	faceOff [4][2]int
	bytes   int
}

func layoutFor(l *lattice) segLayout {
	var s segLayout
	off := 0
	for d := 0; d < 4; d++ {
		for di := 0; di < 2; di++ {
			s.flagOff[d][di] = off
			off += 8
		}
	}
	for d := 0; d < 4; d++ {
		for di := 0; di < 2; di++ {
			s.faceOff[d][di] = off
			off += l.faceLen[d] * 8
		}
	}
	s.bytes = off
	return s
}

// oneSided abstracts the few primitives the notify+get scheme needs, so UPC
// and foMPI run the identical protocol body.
type oneSided interface {
	// atomicAddFlag adds 1 to the flag word at the given rank's segment.
	atomicAddFlag(rank, off int)
	// waitFlagLocal blocks until the local flag word at off reaches want.
	waitFlagLocal(off int, want uint64)
	// writeFace stores the packed face into the LOCAL segment at off.
	writeFace(off int, face []float64)
	// getFace starts a nonblocking read from rank's segment at off into dst.
	getFace(dst []byte, rank, off int) simnet.Handle
	waitGet(h simnet.Handle)
	// fence makes local segment writes visible before the notify.
	fence()
}

type osEx struct {
	l    *lattice
	lay  segLayout
	os   oneSided
	nm   string
	ar   func(float64) float64
	nowF func() timing.Time
	cmp  func(int64)
	gen  uint64 // epoch counter: flags count notifications per direction
}

func (ex *osEx) name() string                   { return ex.nm }
func (ex *osEx) allreduceSum(x float64) float64 { return ex.ar(x) }
func (ex *osEx) now() timing.Time               { return ex.nowF() }
func (ex *osEx) compute(ns int64)               { ex.cmp(ns) }

func (ex *osEx) exchange(v []float64, h *halo) {
	l, lay := ex.l, ex.lay
	ex.gen++
	face := make([]float64, 0)
	// 1. Initialize the send buffers, make them visible, notify neighbors.
	for d := 0; d < 4; d++ {
		for di, dir := range [2]int{-1, +1} {
			if cap(face) < l.faceLen[d] {
				face = make([]float64, l.faceLen[d])
			}
			face = face[:l.faceLen[d]]
			l.pack(v, d, dir, face)
			ex.os.writeFace(lay.faceOff[d][di], face)
		}
	}
	ex.os.fence()
	for d := 0; d < 4; d++ {
		for di, dir := range [2]int{-1, +1} {
			// Tell the neighbor in direction (d,dir) that the face it will
			// read from me (my (d,di) buffer) is ready. Its ghost direction
			// index for data coming from me is the opposite one.
			ex.os.atomicAddFlag(l.neighbor(d, dir), lay.flagOff[d][1-di])
		}
	}
	// 2. Wait for all neighbors' notifications, then pull their faces.
	handles := make([]simnet.Handle, 0, 8)
	bufs := make([][]byte, 0, 8)
	dsts := make([][]float64, 0, 8)
	for d := 0; d < 4; d++ {
		for di, dir := range [2]int{-1, +1} {
			ex.os.waitFlagLocal(lay.flagOff[d][di], ex.gen)
			// Neighbor (d,dir)'s face pointing back at me is its (d,1-di)
			// buffer.
			buf := make([]byte, l.faceLen[d]*8)
			handles = append(handles, ex.os.getFace(buf, l.neighbor(d, dir), lay.faceOff[d][1-di]))
			bufs = append(bufs, buf)
			dsts = append(dsts, h[d][di])
		}
	}
	for i, hd := range handles {
		ex.os.waitGet(hd)
		for j := range dsts[i] {
			dsts[i][j] = math.Float64frombits(getU64(bufs[i][j*8:]))
		}
	}
}

// upcSided adapts the pgas UPC layer.
type upcSided struct {
	l *pgas.Lang
}

func (u upcSided) atomicAddFlag(rank, off int) { u.l.Add(rank, off, 1) }
func (u upcSided) waitFlagLocal(off int, want uint64) {
	u.l.WaitLocalWord(off, func(v uint64) bool { return v >= want })
}
func (u upcSided) writeFace(off int, face []float64) {
	b := u.l.Local()[off : off+len(face)*8]
	for j, f := range face {
		putU64(b[j*8:], math.Float64bits(f))
	}
}
func (u upcSided) getFace(dst []byte, rank, off int) simnet.Handle {
	return u.l.GetNB(dst, rank, off)
}
func (u upcSided) waitGet(h simnet.Handle) { u.l.WaitNB(h) }
func (u upcSided) fence()                  { u.l.Fence() }

// RunUPC solves with the Shan et al. UPC notify+get scheme.
func RunUPC(p *spmd.Proc, prm Params) Result {
	prm = prm.withDefaults(p.Size())
	l := newLattice(prm, p.Rank(), p.Size())
	lay := layoutFor(l)
	lang := pgas.DialUPC(p, lay.bytes)
	defer lang.Free()
	clearSegment(lang.Local(), lay)
	lang.Barrier()
	ex := &osEx{
		l: l, lay: lay, os: upcSided{lang}, nm: "CrayUPC",
		ar: func(x float64) float64 {
			lang.Fence() // the collective doubles as the epoch's memory sync
			return lang.FAllreduce(x)
		},
		nowF: func() timing.Time { return lang.Now() },
		cmp:  func(ns int64) { lang.Compute(ns) },
	}
	return l.cg(ex)
}

// fompiSided adapts a foMPI window in a lock_all epoch.
type fompiSided struct {
	w   *core.Win
	mem []byte
}

func (f fompiSided) atomicAddFlag(rank, off int) {
	// MPI_Accumulate(SUM) of one element: a nonblocking atomic add whose
	// remote completion the epoch's flush guarantees — the notify the
	// paper's MILC port issues (a fetching AMO would serialize on its
	// round trip here).
	var one [8]byte
	one[0] = 1
	f.w.Accumulate(core.AccSum, one[:], rank, off)
}
func (f fompiSided) waitFlagLocal(off int, want uint64) {
	f.w.WaitLocalWord(off, func(v uint64) bool { return v >= want })
}
func (f fompiSided) writeFace(off int, face []float64) {
	b := f.mem[off : off+len(face)*8]
	for j, v := range face {
		putU64(b[j*8:], math.Float64bits(v))
	}
}
func (f fompiSided) getFace(dst []byte, rank, off int) simnet.Handle {
	return f.w.RGet(dst, rank, off)
}
func (f fompiSided) waitGet(h simnet.Handle) { f.w.WaitRequest(h) }
func (f fompiSided) fence()                  { f.w.Sync(); f.w.FlushAll() }

// RunFoMPI solves with the MPI-3 RMA scheme: one lock_all epoch, atomic
// notify (MPI_Fetch_and_op), MPI_Rget pulls, MPI_Win_flush completion.
func RunFoMPI(p *spmd.Proc, prm Params) Result {
	prm = prm.withDefaults(p.Size())
	l := newLattice(prm, p.Rank(), p.Size())
	lay := layoutFor(l)
	w, mem := core.Allocate(p, lay.bytes, core.Config{})
	defer w.Free()
	clearSegment(mem, lay)
	p.Barrier()
	w.LockAll()
	defer w.UnlockAll()
	ex := &osEx{
		l: l, lay: lay, os: fompiSided{w, mem}, nm: "foMPI",
		ar: func(x float64) float64 {
			w.FlushAll()
			return math.Float64frombits(p.Allreduce8(spmd.OpFSum, math.Float64bits(x)))
		},
		nowF: func() timing.Time { return p.Now() },
		cmp:  func(ns int64) { p.Compute(ns) },
	}
	return l.cg(ex)
}

func clearSegment(b []byte, lay segLayout) {
	for i := 0; i < lay.bytes; i++ {
		b[i] = 0
	}
}

// Reference solves the same system sequentially on the full global lattice
// and returns the residual norm after the same iteration count, the oracle
// the parallel variants must match.
func Reference(prm Params, ranks int) float64 {
	prm = prm.withDefaults(ranks)
	full := prm
	for d := 0; d < 4; d++ {
		full.Local[d] = prm.Local[d] * prm.Grid[d]
	}
	full.Grid = [4]int{1, 1, 1, 1}
	l := newLattice(full, 0, 1)
	ex := &seqEx{l: l}
	return l.cg(ex).Residual
}

// seqEx is the trivial single-rank exchanger: ghosts wrap around locally
// (periodic boundaries on one rank read the opposite face directly).
type seqEx struct {
	l *lattice
	t timing.Time
}

func (s *seqEx) name() string                   { return "reference" }
func (s *seqEx) allreduceSum(x float64) float64 { return x }
func (s *seqEx) now() timing.Time               { return s.t }
func (s *seqEx) compute(ns int64)               { s.t += timing.Time(ns) }

func (s *seqEx) exchange(v []float64, h *halo) {
	l := s.l
	face := make([]float64, 0)
	for d := 0; d < 4; d++ {
		for di, dir := range [2]int{-1, +1} {
			// The ghost face in direction (d,di) is the opposite boundary
			// face of the same (single) rank.
			if cap(face) < l.faceLen[d] {
				face = make([]float64, l.faceLen[d])
			}
			face = face[:l.faceLen[d]]
			l.pack(v, d, -dir, face)
			copy(h[d][di], face)
		}
	}
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
