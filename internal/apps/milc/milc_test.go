package milc

import (
	"math"
	"testing"
	"testing/quick"

	"fompi/internal/spmd"
	"fompi/internal/timing"
)

// runAll executes all three variants in one world and returns per-rank
// results.
func runAll(t *testing.T, prm Params, ranks, rpn int) (m1, upc, fo []Result) {
	t.Helper()
	m1 = make([]Result, ranks)
	upc = make([]Result, ranks)
	fo = make([]Result, ranks)
	spmd.MustRun(spmd.Config{Ranks: ranks, RanksPerNode: rpn}, func(p *spmd.Proc) {
		m1[p.Rank()] = RunMPI1(p, prm)
		upc[p.Rank()] = RunUPC(p, prm)
		fo[p.Rank()] = RunFoMPI(p, prm)
	})
	return m1, upc, fo
}

func TestVariantsMatchReferenceResidual(t *testing.T) {
	prm := Params{Local: [4]int{2, 2, 2, 4}, Grid: [4]int{1, 1, 2, 2}, Iters: 10}
	const ranks = 4
	m1, upc, fo := runAll(t, prm, ranks, 2)
	want := Reference(prm, ranks)
	for r := 0; r < ranks; r++ {
		for _, res := range []Result{m1[r], upc[r], fo[r]} {
			if math.Abs(res.Residual-want)/want > 1e-9 {
				t.Fatalf("rank %d residual %g, reference %g", r, res.Residual, want)
			}
		}
	}
}

func TestVariantsAgreeBitwise(t *testing.T) {
	prm := Params{Local: [4]int{3, 2, 2, 3}, Grid: [4]int{2, 1, 1, 2}, Iters: 7, Seed: 5}
	const ranks = 4
	m1, upc, fo := runAll(t, prm, ranks, 4)
	for r := 0; r < ranks; r++ {
		if m1[r].Residual != upc[r].Residual || upc[r].Residual != fo[r].Residual {
			t.Fatalf("rank %d residuals diverge: mpi1=%v upc=%v fompi=%v",
				r, m1[r].Residual, upc[r].Residual, fo[r].Residual)
		}
	}
}

func TestCGConverges(t *testing.T) {
	// CG on the positive-definite operator must shrink the residual
	// substantially over enough iterations.
	prm := Params{Local: [4]int{4, 4, 4, 8}, Grid: [4]int{1, 1, 1, 2}, Iters: 40}
	const ranks = 2
	res := make([]Result, ranks)
	spmd.MustRun(spmd.Config{Ranks: ranks}, func(p *spmd.Proc) {
		res[p.Rank()] = RunFoMPI(p, prm)
	})
	l := newLattice(prm.withDefaults(ranks), 0, ranks)
	b := make([]float64, l.vol)
	l.forEachSite(func(c [4]int, i int) { b[i] = rhs(prm.Seed+1, l.global(c)) }) // ~unit-scale rhs
	if res[0].Residual > 1e-6 {
		t.Fatalf("residual %g after %d iterations; CG is not converging", res[0].Residual, prm.Iters)
	}
}

func TestDecompositionInvariance(t *testing.T) {
	// The same global lattice decomposed differently must give identical
	// residuals (communication correctness across all 8 directions).
	base := Params{Iters: 6, Seed: 9}
	shapes := []struct {
		local [4]int
		grid  [4]int
	}{
		{[4]int{4, 4, 2, 2}, [4]int{1, 1, 2, 2}},
		{[4]int{2, 4, 4, 2}, [4]int{2, 1, 1, 2}},
		{[4]int{4, 2, 2, 4}, [4]int{1, 2, 2, 1}},
	}
	var first float64
	for i, sh := range shapes {
		prm := base
		prm.Local = sh.local
		prm.Grid = sh.grid
		const ranks = 4
		res := make([]Result, ranks)
		spmd.MustRun(spmd.Config{Ranks: ranks, RanksPerNode: 2}, func(p *spmd.Proc) {
			res[p.Rank()] = RunFoMPI(p, prm)
		})
		if i == 0 {
			first = res[0].Residual
		} else if math.Abs(res[0].Residual-first)/first > 1e-12 {
			t.Fatalf("shape %d residual %g differs from %g", i, res[0].Residual, first)
		}
	}
}

func TestFaceIndexConsistentWithFaceSites(t *testing.T) {
	// faceIndex(c) must equal the position of c in faceSites order — the
	// property that makes sender packing and receiver ghost lookup agree.
	f := func(dx, dy, dz, dt uint8, d uint8, hi bool) bool {
		dims := [4]int{int(dx%3) + 1, int(dy%3) + 1, int(dz%3) + 1, int(dt%3) + 1}
		dim := int(d % 4)
		l := newLattice(Params{Local: dims, Grid: [4]int{1, 1, 1, 1}, Iters: 1,
			Mass: 0.1, NsPerFlop: 1, Seed: 1}, 0, 1)
		dir := -1
		if hi {
			dir = 1
		}
		for j, site := range l.faceSites(dim, dir) {
			var c [4]int
			rest := site
			for dd := 0; dd < 4; dd++ {
				c[dd] = rest % l.dims[dd]
				rest /= l.dims[dd]
			}
			if l.faceIndex(dim, c) != j {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFoMPIBeatsMPI1AtScale(t *testing.T) {
	// The paper's Fig. 8 effect: with the 4³×8 local lattice, small halo
	// faces make MPI-1's per-message matching and eager copies dominate,
	// and the one-sided variants win.
	prm := Params{Local: [4]int{4, 4, 4, 8}, Grid: [4]int{1, 1, 2, 4}, Iters: 10}
	const ranks = 8
	m1, upc, fo := runAll(t, prm, ranks, 4)
	var tm, tu, tf timing.Time
	for r := 0; r < ranks; r++ {
		tm = timing.Max(tm, m1[r].Elapsed)
		tu = timing.Max(tu, upc[r].Elapsed)
		tf = timing.Max(tf, fo[r].Elapsed)
	}
	if tf >= tm {
		t.Fatalf("foMPI (%v) not faster than MPI-1 (%v)", tf, tm)
	}
	// The paper reports foMPI and UPC as essentially equal with foMPI
	// marginally ahead (its fast path has lower per-op overhead, Fig. 4);
	// UPC's advantage over MPI-1 only materializes at scale, so here we
	// assert only foMPI's edge over UPC.
	if tf > tu {
		t.Fatalf("foMPI (%v) slower than UPC (%v)", tf, tu)
	}
}

func TestGridValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched grid")
		}
	}()
	Params{Grid: [4]int{1, 1, 1, 3}}.withDefaults(4)
}
