// Package fompi is a Go reproduction of foMPI — the scalable MPI-3.0
// remote-memory-access (RMA) library of Gerstenberger, Besta and Hoefler,
// "Enabling Highly-Scalable Remote Memory Access Programming with MPI-3 One
// Sided" (SC'13) — together with the simulated RDMA substrate it runs on.
//
// Ranks are goroutines launched by Run; each receives a *Proc. Windows
// expose memory for one-sided access with the four MPI-3 flavours and all
// synchronization modes; the protocols underneath are the paper's: O(log p)
// window creation, free-storage-managed matching lists for general active
// target, and a two-level global/local lock hierarchy for passive target.
//
// A minimal program:
//
//	fompi.MustRun(fompi.Config{Ranks: 4}, func(p *fompi.Proc) {
//		win, mem := fompi.WinAllocate(p, 4096)
//		defer win.Free()
//		win.Fence()
//		if p.Rank() == 0 {
//			win.Put([]byte("hello"), 1, 0)
//		}
//		win.Fence()
//		_ = mem
//	})
//
// Beyond the SC'13 protocols, the library implements notified access (the
// foMPI-NA extension of Belli & Hoefler, IPDPS'15): Win.PutNotify and
// Win.GetNotify move data like Put/Get but additionally deposit a tagged
// notification in the target's bounded per-window ring once the data has
// landed, and the target consumes it with Win.WaitNotify / Win.TestNotify —
// a single-word local poll, with no fence, PSCW, or lock epoch on the
// consumer's critical path. Win.Notify sends a bare tag (credit/doorbell for
// pipelined protocols). Tags are 31-bit; WinConfig.MaxNotify bounds the ring
// and the unmatched list, and overflow faults loudly, consistent with the
// paper's bounded-buffer discipline.
//
// Every operation advances a per-rank virtual clock calibrated to the
// paper's Cray XE6 (Gemini) measurements; p.Now() reads it, so latency
// studies are reproducible on any host. See DESIGN.md and EXPERIMENTS.md.
package fompi

import (
	"os"

	"fompi/internal/core"
	"fompi/internal/datatype"
	"fompi/internal/simnet"
	"fompi/internal/spmd"
	"fompi/internal/timing"
)

// Config describes an SPMD world: rank count, node width (ranks sharing the
// XPMEM fast path), optionally a non-default transport cost model, and the
// transport backend (Config.Backend).
type Config = spmd.Config

// Backend selects the transport substrate of a world: BackendInProc runs
// ranks as goroutines over the in-process fabric, BackendMP runs each rank
// as an OS process with RMA through a mmap-shared segment and doorbells over
// Unix sockets, BackendNet runs each rank as an OS process on (potentially)
// a different machine with RMA as framed messages over TCP, and
// BackendHybrid groups the inter-node backend's ranks by physical host:
// co-located ranks share one mmap arena (direct loads/stores, shared
// windows), while off-host ranks are reached over the TCP wire (see
// internal/mprun, internal/netrun, internal/hybridrun and cmd/fompi-run).
// Virtual time lives above the transport line, so checksums and virtual-time
// figures are bit-identical across backends.
type Backend = spmd.Backend

// Backend selectors for Config.Backend.
const (
	BackendInProc = spmd.BackendInProc
	BackendMP     = spmd.BackendMP
	BackendNet    = spmd.BackendNet
	BackendHybrid = spmd.BackendHybrid
)

// BackendFromEnv reads the FOMPI_BACKEND environment variable ("proc",
// "mp", "net" or "hybrid"; empty means in-process), the convention the
// cmd/fompi-run launcher and the examples use to select a backend without
// code changes.
func BackendFromEnv() Backend {
	return Backend(os.Getenv("FOMPI_BACKEND"))
}

// Typed shared-mapping errors (re-exported from the fabric): SharedSlice and
// WinAllocateShared fail wrapping ErrNotSameNode when the target rank is on
// another node, and SharedSlice fails wrapping ErrNotMapped when the backend
// cannot map a same-node target's memory into this process.
var (
	ErrNotSameNode = simnet.ErrNotSameNode
	ErrNotMapped   = simnet.ErrNotMapped
)

// Proc is one rank's handle: rank/size, virtual clock, collectives.
type Proc = spmd.Proc

// Win is an MPI-3 window handle.
type Win = core.Win

// WinConfig bounds a window's fixed protocol buffers.
type WinConfig = core.Config

// Time is a virtual-time instant or interval in nanoseconds.
type Time = timing.Time

// Datatype describes a (possibly non-contiguous) memory layout for PutD
// and GetD.
type Datatype = datatype.Datatype

// Lock modes of Win.Lock.
const (
	LockShared    = core.LockShared
	LockExclusive = core.LockExclusive
)

// Accumulate operators for Win.Accumulate, GetAccumulate and FetchAndOp.
const (
	AccSum     = core.AccSum
	AccBand    = core.AccBand
	AccBor     = core.AccBor
	AccBxor    = core.AccBxor
	AccReplace = core.AccReplace
	AccMin     = core.AccMin
	AccMax     = core.AccMax
	AccFSum    = core.AccFSum
	AccNoOp    = core.AccNoOp
)

// Run launches cfg.Ranks ranks executing body and waits for them; a rank
// panic aborts the world and is returned as an error. On the default
// in-process backend ranks are goroutines; with Config.Backend == BackendMP
// the calling process becomes a launcher that re-executes itself once per
// rank, and in those worker processes Run exits the process after body — so
// keep all per-rank output inside body (rank-0-guarded), as the examples do.
func Run(cfg Config, body func(*Proc)) error { return spmd.Run(cfg, body) }

// MustRun is Run but panics on error.
func MustRun(cfg Config, body func(*Proc)) { spmd.MustRun(cfg, body) }

// WinAllocate creates an allocated window (MPI_Win_allocate): library-
// provided symmetric memory, O(1) remote-addressing state. Collective.
func WinAllocate(p *Proc, size int) (*Win, []byte) {
	return core.Allocate(p, size, core.Config{})
}

// WinAllocateCfg is WinAllocate with explicit protocol-buffer bounds.
func WinAllocateCfg(p *Proc, size int, cfg WinConfig) (*Win, []byte) {
	return core.Allocate(p, size, cfg)
}

// WinCreate creates a traditional window (MPI_Win_create) over existing
// user memory; requires Ω(p) addressing state per rank and is kept for
// compatibility, as in the paper. Collective.
func WinCreate(p *Proc, buf []byte) *Win { return core.Create(p, buf, core.Config{}) }

// WinCreateDynamic creates a dynamic window (MPI_Win_create_dynamic); use
// Win.Attach/Win.Detach and PutDyn/GetDyn. Collective.
func WinCreateDynamic(p *Proc) *Win { return core.CreateDynamic(p, core.Config{}) }

// WinAllocateShared creates a shared-memory window
// (MPI_Win_allocate_shared); all ranks must share one node, and
// Win.SharedSlice gives direct load/store access. Collective.
func WinAllocateShared(p *Proc, size int) (*Win, []byte) {
	return core.AllocateShared(p, size, core.Config{})
}

// Derived-datatype constructors (the MPITypes-equivalent engine).
var (
	TypeByte    = datatype.Byte
	TypeInt32   = datatype.Int32
	TypeInt64   = datatype.Int64
	TypeUint64  = datatype.Uint64
	TypeFloat32 = datatype.Float32
	TypeDouble  = datatype.Double
)

// TypeContiguous is MPI_Type_contiguous.
func TypeContiguous(count int, elem *Datatype) *Datatype {
	return datatype.Contiguous(count, elem)
}

// TypeVector is MPI_Type_vector (counts and strides in elements).
func TypeVector(count, blocklen, stride int, elem *Datatype) *Datatype {
	return datatype.Vector(count, blocklen, stride, elem)
}

// TypeIndexed is MPI_Type_indexed.
func TypeIndexed(blocklens, displs []int, elem *Datatype) *Datatype {
	return datatype.Indexed(blocklens, displs, elem)
}

// TypeStruct is MPI_Type_create_struct (byte displacements).
func TypeStruct(blocklens, displs []int, types []*Datatype) *Datatype {
	return datatype.Struct(blocklens, displs, types)
}

// DefaultModel returns the calibrated foMPI transport cost model, useful
// for building a Config with modified constants.
func DefaultModel() *simnet.CostModel { return simnet.FoMPI() }
